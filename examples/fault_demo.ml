(* Fault injection: what a crash-stopped thread does to its survivors.

   The simulator can kill a thread at an exact scheduling decision
   (crash-stop: whatever it held — a lock, a half-linked node — stays
   exactly as it died), stall it for a bounded window, or slow a whole
   socket.  Ascy_harness.Fault_run turns this into chaos testing with
   progress oracles: a global-progress watchdog that reports what every
   survivor was spinning on, per-thread starvation gaps, and post-fault
   structural validation + per-key conservation (with ±1 slack on the
   corpse's in-flight key).

   This demo crash-stops thread 0 after each of its store/CAS commit
   points in turn — crash-holding-lock for the lazy list, crash-mid-CAS
   for the Harris list — on the same contended workload:

   - ll-lazy (lock-based) wedges: the corpse dies holding a node lock
     and both survivors spin on it forever;
   - ll-harris (lock-free) shrugs: every placement completes and the
     exact correctness oracles stay clean.

   The wedge is then serialized as a FAULT_*.json counterexample
   (Replay schema v2: schedule prefix + fault plan in the same decision
   coordinates) and replayed bit-for-bit, the same loop `bin/ascy_chaos`
   and the CI chaos job run over the whole registry.

   Run with: dune exec examples/fault_demo.exe *)

module Fault = Ascy_harness.Fault_run
module Sim = Ascy_mem.Sim

let file = "FAULT_demo_ll-lazy.json"

(* Crash t0 after each of its commit points; return the first wedge. *)
let sweep name ~check =
  let spec = Fault.chaos_spec name in
  let cands = Fault.crash_candidates ~victim:0 spec in
  Printf.printf "%-10s %d crash placements (t0's store/CAS commits)\n%!" name
    (List.length cands);
  let wedge = ref None in
  List.iter
    (fun d ->
      if !wedge = None then begin
        let faults = [ { Sim.fe_at = d; fe_tid = 0; fe_fault = Sim.F_crash } ] in
        let out = Fault.run_spec ~watchdog:1_000 ~check ~faults spec in
        match (out.Fault.verdict, out.Fault.violation) with
        | Fault.Wedged _, _ -> wedge := Some (faults, Option.get out.Fault.violation)
        | Fault.Completed, Some v ->
            Printf.printf "%-10s oracle failure under %s: %s\n" name (Fault.plan_str faults) v;
            exit 1
        | Fault.Completed, None -> ()
      end)
    cands;
  (match !wedge with
  | None ->
      Printf.printf "%-10s every placement survived, oracles clean (non-blocking)\n\n" name
  | Some (faults, v) ->
      Printf.printf "%-10s WEDGED under %s\n           %s\n\n" name (Fault.plan_str faults) v);
  !wedge

let () =
  print_endline "crash-stopping thread 0 after each of its commit points:\n";
  (* the corpse may die holding a lock, so no post-run oracles here —
     even reading the structure back could spin behind it *)
  let wedge = sweep "ll-lazy" ~check:false in
  (* lock-free: sound to demand full correctness after every crash *)
  ignore (sweep "ll-harris" ~check:true);
  match wedge with
  | None ->
      print_endline "ll-lazy never wedged — unexpected for a lock-based list";
      exit 1
  | Some (faults, violation) ->
      Printf.printf "serializing the lock-holder wedge to %s ...\n" file;
      Fault.save_finding ~path:file (Fault.chaos_spec "ll-lazy") ~faults ~violation
        ~watchdog:1_000;
      let _, _, expected, results = Fault.replay_file ~times:2 file in
      let ok =
        match expected with
        | Some v -> List.for_all (fun r -> r = Some v) results
        | None -> false
      in
      Printf.printf "replay x2: %s\n" (if ok then "reproduces bit-for-bit" else "DOES NOT REPRODUCE");
      Sys.remove file;
      if not ok then exit 1
