(* Compositional transactions from the multi-word-CAS layer: move a key
   between two independent PathCAS lists with ONE k-CAS, so no observer
   ever sees the key in both sets or in neither.

   [Pathcas_ll.prepare_remove]/[prepare_insert] return one attempt's
   commit triples without committing them; concatenating the two
   structures' triples into a single [Mem.kcas] makes the transfer
   all-or-nothing — the path validation of both structures and both
   pointer swings commit atomically.

   The demo runs the same transfer code twice: deterministically inside
   the multicore simulator (4 simulated threads on the Tilera model),
   then on real domains over native atomics.  In both runs, [tokens]
   keys bounce between account lists A and B under contention, and at
   the end every token must live in exactly one of the two lists
   (conservation) with sizes summing to the initial count.

   Run with: dune exec examples/kcas_transfer.exe *)

module Transfer (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_linkedlist.Pathcas_ll.Make (Mem)

  (* One transfer attempt: remove [k] from [src] and insert it into
     [dst] atomically.  [None] from either side (key absent from [src],
     or already in [dst]) aborts the attempt for free — nothing was
     written.  The two structures' cells are disjoint, so the combined
     op list is a valid k-CAS. *)
  let try_transfer src dst k v =
    match L.prepare_remove src k with
    | None -> false
    | Some rm -> (
        match L.prepare_insert dst k v with
        | None -> false
        | Some ins -> Mem.kcas (rm @ ins))

  (* Bounce token [k] once: whichever side currently holds it, move it
     to the other.  Retries while the k-CAS loses races; gives up when
     the token keeps moving under us. *)
  let bounce a b k v =
    let rec go tries =
      if tries = 0 then false
      else if try_transfer a b k v then true
      else if try_transfer b a k v then true
      else go (tries - 1)
    in
    let moved = go 8 in
    L.op_done a;
    L.op_done b;
    moved

  let conserved a b tokens =
    let ok = ref (L.size a + L.size b = tokens) in
    for k = 1 to tokens do
      let in_a = L.search a k <> None and in_b = L.search b k <> None in
      if in_a = in_b then ok := false (* in both, or in neither *)
    done;
    !ok
end

let tokens = 24
let nthreads = 4

(* --- deterministic run inside the simulator ------------------------ *)

module Sim = Ascy_mem.Sim
module Engine = Ascy_harness.Engine
module T_sim = Transfer (Sim.Mem)

let () =
  let platform = Ascy_platform.Platform.tilera in
  let cfg = Engine.default ~platform ~nthreads in
  Engine.with_session cfg (fun session ->
      let sim = session.Engine.sim in
      let a = T_sim.L.create () and b = T_sim.L.create () in
      for k = 1 to tokens do
        assert (T_sim.L.insert a k 0)
      done;
      Sim.warm sim;
      let moved = Array.make nthreads 0 in
      let body tid () =
        let rng = Ascy_util.Xorshift.create (tid + 11) in
        for _ = 1 to 30 do
          let k = 1 + Ascy_util.Xorshift.below rng tokens in
          if T_sim.bounce a b k tid then moved.(tid) <- moved.(tid) + 1
        done
      in
      let makespan = Engine.run session (Array.init nthreads body) in
      let total = Array.fold_left ( + ) 0 moved in
      Printf.printf "simulator: %d transfers under contention, %d cycles\n" total makespan;
      assert (T_sim.conserved a b tokens);
      print_endline "simulator: every token in exactly one account — conservation holds")

(* --- the same code on real domains --------------------------------- *)

module T_nat = Transfer (Ascy_mem.Mem_native)

let () =
  let a = T_nat.L.create () and b = T_nat.L.create () in
  for k = 1 to tokens do
    assert (T_nat.L.insert a k 0)
  done;
  let domains =
    Array.init nthreads (fun d ->
        Domain.spawn (fun () ->
            let rng = Ascy_util.Xorshift.create (d + 101) in
            let moved = ref 0 in
            for _ = 1 to 2_000 do
              let k = 1 + Ascy_util.Xorshift.below rng tokens in
              if T_nat.bounce a b k d then incr moved
            done;
            !moved))
  in
  let total = Array.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  Printf.printf "native: %d transfers across %d domains\n" total nthreads;
  assert (T_nat.conserved a b tokens);
  print_endline "native: every token in exactly one account — conservation holds"
