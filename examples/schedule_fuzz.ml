(* Systematic schedule exploration: the simulator as a bounded model
   checker.

   This example used to fuzz 200 random seeds and hope an interleaving
   broke the asynchronized list.  It now drives the SCT engine
   (Ascy_sct + Ascy_harness.Sct_run): a DFS over the simulator's
   scheduling decisions, bounded by preemptions, pruned with
   DPOR-style backtrack points and sleep sets, with every explored
   schedule checked for crashes, data races (the happens-before
   detector of Ascy_analysis.Race), structural damage, set conservation
   and linearizability.

   The asynchronized (sequential) list is deliberately unsafe when
   shared — that is the paper's whole point.  SCT finds a violating
   interleaving deterministically, minimizes it, serializes it to
   JSON, and replays it bit-for-bit.  The lazy list survives the same
   bounds exhaustively.

   Run with: dune exec examples/schedule_fuzz.exe
   Optionally pick an exploration policy and worker-domain count:
     schedule_fuzz.exe [-policy exhaustive|random|pct|swarm]
                       [-domains N] [-budget N] [-seed N] [-pct-depth N]
   Randomized policies sample the schedule space instead of enumerating
   it (their reports are always incomplete); every policy's findings
   flow through the same minimize/serialize/replay pipeline. *)

module Sct = Ascy_harness.Sct_run
module Explorer = Ascy_sct.Explorer
module Scheduler = Ascy_sct.Scheduler

(* A small adversarial workload: threads race inserts/removes over a
   handful of keys.  Deterministic per-thread scripts; the engine owns
   the interleavings. *)
let spec name =
  Sct.mk_spec ~name
    ~initial:[ 2 ]
    ~script:
      [|
        [| (Sct.Insert, 1); (Sct.Remove, 2); (Sct.Insert, 3) |];
        [| (Sct.Insert, 1); (Sct.Insert, 2); (Sct.Remove, 3) |];
        [| (Sct.Remove, 1); (Sct.Insert, 2) |];
      |]
    ()

let bounds = Explorer.default_bounds

let file = "SCT_counterexample_ll-async.json"

let policy = ref Explorer.Exhaustive
let domains = ref 1

let () =
  let budget = ref 64 in
  let seed = ref 1 in
  let pct_depth = ref 3 in
  let pname = ref "exhaustive" in
  let rec parse = function
    | [] -> ()
    | "-policy" :: p :: rest -> pname := p; parse rest
    | "-domains" :: n :: rest -> domains := int_of_string n; parse rest
    | "-budget" :: n :: rest -> budget := int_of_string n; parse rest
    | "-seed" :: n :: rest -> seed := int_of_string n; parse rest
    | "-pct-depth" :: n :: rest -> pct_depth := int_of_string n; parse rest
    | a :: _ -> failwith ("unknown argument: " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  policy :=
    match !pname with
    | "exhaustive" -> Explorer.Exhaustive
    | "random" -> Explorer.Random { seed = !seed; schedules = !budget }
    | "pct" -> Explorer.Pct { seed = !seed; depth = !pct_depth; schedules = !budget }
    | "swarm" ->
        Explorer.Swarm
          { seeds = List.init 4 (fun i -> !seed + i); schedules = max 1 (!budget / 4) }
    | p -> failwith ("unknown policy: " ^ p)

let hunt name =
  (match !policy with
  | Explorer.Exhaustive ->
      Printf.printf "%-12s exploring (DPOR, <=%d preemptions) ...\n%!" name
        (match bounds.Explorer.preemptions with Some p -> p | None -> max_int)
  | p ->
      Printf.printf "%-12s exploring (policy %s, %d domain(s)) ...\n%!" name
        (Explorer.policy_name p) !domains);
  let finding, report =
    Sct.explore ~mode:Explorer.Dpor ~bounds ~races:true ~policy:!policy ~domains:!domains
      (spec name)
  in
  Printf.printf "%-12s %d schedules, %d decisions%s\n" name report.Explorer.schedules
    report.Explorer.steps
    (if report.Explorer.complete then " (schedule space exhausted)"
     else
       match !policy with
       | Explorer.Exhaustive -> ""  (* historical output, byte-stable *)
       | _ -> " (incomplete: sampled, not exhausted)");
  (finding, report)

let () =
  print_endline "Hunting the asynchronized list (expected: a violation, fast):";
  (match hunt "ll-async" with
  | Some f, _ ->
      Printf.printf "ll-async     VIOLATION: %s\n" f.Sct.violation;
      Printf.printf "ll-async     schedule: %d decisions, minimized to %d (%d context switches)\n"
        (Array.length f.Sct.schedule) (Array.length f.Sct.minimized)
        (max 0 (List.length (Scheduler.to_chunks f.Sct.minimized) - 1));
      Sct.save_finding ~races:true ~path:file (spec "ll-async") f
  | None, _ ->
      prerr_endline "FATAL: SCT failed to break the asynchronized list";
      exit 1);
  Printf.printf "\nReplaying %s twice (determinism check):\n" file;
  let _, expected, results = Sct.replay_file ~times:2 file in
  List.iteri
    (fun i r ->
      Printf.printf "replay %d: %s\n" (i + 1)
        (match r with Some v -> v | None -> "no violation (!)"))
    results;
  (match (expected, results) with
  | Some v, [ Some a; Some b ] when a = v && b = v ->
      print_endline "counterexample reproduces bit-for-bit"
  | _ ->
      prerr_endline "FATAL: counterexample did not reproduce deterministically";
      exit 1);
  print_endline "\nExploring the lazy list under the same bounds (expected: clean):";
  (match hunt "ll-lazy" with
  | None, report when report.Explorer.complete ->
      print_endline "ll-lazy      no violation in the entire bounded schedule space"
  | None, _ -> print_endline "ll-lazy      no violation (budget reached before exhaustion)"
  | Some f, _ ->
      Printf.printf "FATAL: lazy list broken?! %s\n" f.Sct.violation;
      exit 1);
  print_endline "\nThis is how the test suite hunts interleaving bugs: bounded";
  print_endline "DPOR exploration instead of seed lotteries, and any failure";
  print_endline "ships as a schedule file that replays deterministically.";
  Sys.remove file
