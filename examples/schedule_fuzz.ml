(* Deterministic schedule fuzzing: the simulator as a concurrency-bug
   hunter.

   The asynchronized (sequential) list is deliberately unsafe when
   shared — that is the paper's whole point.  We fuzz seeds until an
   interleaving breaks set semantics (a successful insert whose key then
   cannot be found, or conservation violations), then replay the exact
   seed twice to show the failure reproduces bit-for-bit.  The same
   harness run against the lazy list finds nothing.

   Run with: dune exec examples/schedule_fuzz.exe *)

module Sim = Ascy_mem.Sim
module P = Ascy_platform.Platform

(* Run one seeded schedule; return the number of conservation violations. *)
let violations (module A : Ascy_core.Set_intf.MAKER) ~seed =
  let module M = A (Sim.Mem) in
  Sim.with_sim ~seed ~jitter:3 ~platform:P.xeon20 ~nthreads:4 (fun sim ->
      let t = M.create ~hint:8 () in
      let keys = 8 and ops = 60 in
      let net = Array.make_matrix 4 keys 0 in
      let body tid () =
        let rng = Ascy_util.Xorshift.create (seed + (tid * 7919)) in
        for _ = 1 to ops do
          let k = Ascy_util.Xorshift.below rng keys in
          if Ascy_util.Xorshift.below rng 2 = 0 then begin
            if M.insert t k tid then net.(tid).(k) <- net.(tid).(k) + 1
          end
          else if M.remove t k then net.(tid).(k) <- net.(tid).(k) - 1
        done
      in
      ignore (Sim.run sim (Array.init 4 body));
      let bad = ref 0 in
      for k = 0 to keys - 1 do
        let total = Array.fold_left (fun acc row -> acc + row.(k)) 0 net in
        let present = if M.search t k <> None then 1 else 0 in
        if total <> present then incr bad
      done;
      !bad)

let fuzz name maker =
  let found = ref None in
  let seed = ref 1 in
  while !found = None && !seed <= 200 do
    let bad = violations maker ~seed:!seed in
    if bad > 0 then found := Some (!seed, bad);
    incr seed
  done;
  match !found with
  | Some (s, bad) ->
      Printf.printf "%-12s seed %3d: %d conservation violations (%d schedules explored)\n" name s
        bad (s);
      (* determinism: the same seed reproduces the same violation count *)
      let again = violations maker ~seed:s in
      Printf.printf "%-12s seed %3d replayed: %d violations — %s\n" name s again
        (if again = bad then "bit-for-bit reproducible" else "NOT reproducible (bug in the sim!)")
  | None -> Printf.printf "%-12s no violation in 200 seeded schedules\n" name

(* Second hunter: full linearizability checking (Wing & Gong) over the
   recorded invocation/response history of each seeded schedule.  This
   subsumes conservation: it also catches wrong return values that
   happen to conserve the key count. *)
module H = Ascy_harness.History
module W = Ascy_harness.Workload
module R = Ascy_harness.Sim_run

let lin_violation maker ~seed =
  let h = H.create () in
  let wl = W.make ~initial:4 ~update_pct:60 () in
  ignore (R.run ~seed ~history:h maker ~platform:P.xeon20 ~nthreads:4 ~workload:wl
            ~ops_per_thread:40 ());
  match H.check h with Ok () -> None | Error v -> Some v

let fuzz_lin name maker =
  let found = ref None in
  let seed = ref 1 in
  while !found = None && !seed <= 100 do
    (match lin_violation maker ~seed:!seed with
    | Some v -> found := Some (!seed, v)
    | None -> ());
    incr seed
  done;
  match !found with
  | Some (s, v) ->
      Printf.printf "%-12s seed %3d: NOT linearizable — %s\n" name s (H.pp_violation v);
      (* determinism: the same seed reproduces a violation *)
      let again = lin_violation maker ~seed:s <> None in
      Printf.printf "%-12s seed %3d replayed: %s\n" name s
        (if again then "violation reproduces bit-for-bit" else "NOT reproducible (bug in the sim!)")
  | None -> Printf.printf "%-12s linearizable across 100 seeded schedules\n" name

let () =
  print_endline "Fuzzing the asynchronized list (expected: races found fast):";
  fuzz "ll-async" (module Ascy_linkedlist.Seq_list.Make : Ascy_core.Set_intf.MAKER);
  print_endline "\nFuzzing the lazy list (expected: no violations):";
  fuzz "ll-lazy" (module Ascy_linkedlist.Lazy_list.Make);
  print_endline "\nLinearizability checking of recorded histories:";
  fuzz_lin "ll-async" (module Ascy_linkedlist.Seq_list.Make);
  fuzz_lin "ll-lazy" (module Ascy_linkedlist.Lazy_list.Make);
  (* the correct list must be linearizable on every explored schedule *)
  (match lin_violation (module Ascy_linkedlist.Lazy_list.Make) ~seed:1 with
  | None -> ()
  | Some v ->
      Printf.eprintf "FATAL: lazy list not linearizable: %s\n" (H.pp_violation v);
      exit 1);
  print_endline "\nThis is how the test suite hunts interleaving bugs: every";
  print_endline "conformance suite replays many seeds, and any failure comes";
  print_endline "with the seed that reproduces it deterministically."
