(* Quickstart: pick an algorithm from the registry, instantiate it on
   native atomics, share it across domains.

   Run with: dune exec examples/quickstart.exe *)

(* Any algorithm: functor it over the native memory. *)
module Clht = Ascy_hashtable.Clht_lb.Make (Ascy_mem.Mem_native)

let () =
  let t = Clht.create ~hint:1024 () in

  (* basic single-threaded usage *)
  assert (Clht.insert t 42 "answer");
  assert (not (Clht.insert t 42 "dup"));
  assert (Clht.search t 42 = Some "answer");
  assert (Clht.remove t 42);
  assert (Clht.search t 42 = None);
  print_endline "single-threaded semantics: ok";

  (* shared across domains *)
  let n_domains = 4 and per = 5_000 in
  let domains =
    Array.init n_domains (fun d ->
        Domain.spawn (fun () ->
            let rng = Ascy_util.Xorshift.create (d + 1) in
            let mine = ref 0 in
            for _ = 1 to per do
              let k = Ascy_util.Xorshift.below rng 4096 in
              if Ascy_util.Xorshift.bool rng 0.5 then begin
                if Clht.insert t k (string_of_int k) then incr mine
              end
              else if Clht.remove t k then decr mine
            done;
            !mine))
  in
  let net = Array.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  Printf.printf "concurrent net insertions: %d, final size: %d\n" net (Clht.size t);
  assert (net = Clht.size t);
  (match Clht.validate t with
  | Ok () -> print_endline "structure validates: ok"
  | Error e -> failwith e);

  (* the same code runs on ANY of the 35 implementations via the registry *)
  let module E = (val (Ascylib.Registry.by_name "sl-fraser-opt").Ascylib.Registry.maker) in
  let module Sl = E (Ascy_mem.Mem_native) in
  let sl = Sl.create () in
  assert (Sl.insert sl 1 "one");
  Printf.printf "registry-driven %s: search 1 -> %s\n" Sl.name
    (Option.value (Sl.search sl 1) ~default:"?")
