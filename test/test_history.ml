(* Adversarial tests for the linearizability checker itself.

   The SCT oracles lean on [Ascy_harness.History.check]; these tests
   feed it hand-built histories whose verdicts are known: legal
   concurrent interleavings it must accept, and classic anomalies —
   lost updates, stale reads, real-time order violations — it must
   reject.  Also pins the [Too_large] cap on per-key history size. *)

module H = Ascy_harness.History

(* Build a history from (tid, kind, key, result, inv, res) tuples. *)
let history ?(initial = []) events =
  let h = H.create () in
  List.iter (H.add_initial h) initial;
  List.iter
    (fun (tid, kind, key, result, inv, res) -> H.record h ~tid ~kind ~key ~result ~inv ~res)
    events;
  h

let accepts msg h = Alcotest.(check bool) msg true (H.linearizable h)

let rejects msg h =
  match H.check h with
  | Ok () -> Alcotest.fail (msg ^ ": checker accepted a non-linearizable history")
  | Error v ->
      (* violations render with the offending key *)
      Alcotest.(check bool) "violation message is non-empty" true
        (String.length (H.pp_violation v) > 0)

(* ------------------------------------------------------------------ *)
(* Histories the checker must accept                                   *)
(* ------------------------------------------------------------------ *)

let test_accept_racing_inserts () =
  (* two concurrent inserts of the same absent key: exactly one wins *)
  accepts "racing inserts, one winner"
    (history
       [ (0, H.Insert, 1, true, 0, 10); (1, H.Insert, 1, false, 5, 15) ])

let test_accept_overlapping_remove_pair () =
  (* remove->false may linearize before the concurrent remove->true
     finishes only if their windows overlap *)
  accepts "overlapping removes commute"
    (history ~initial:[ 1 ]
       [ (0, H.Remove, 1, true, 0, 30); (1, H.Remove, 1, false, 5, 25) ])

let test_accept_disjoint_keys () =
  accepts "independent keys check independently"
    (history ~initial:[ 2 ]
       [
         (0, H.Insert, 1, true, 0, 10);
         (1, H.Remove, 2, true, 0, 12);
         (0, H.Search, 1, true, 12, 20);
         (1, H.Insert, 2, true, 14, 22);
       ])

(* ------------------------------------------------------------------ *)
(* Histories the checker must reject                                   *)
(* ------------------------------------------------------------------ *)

let test_reject_double_insert () =
  (* sequential double insert of the same key both succeeding = lost
     state: the second must observe the first *)
  rejects "double successful insert"
    (history [ (0, H.Insert, 1, true, 0, 10); (1, H.Insert, 1, true, 20, 30) ])

let test_reject_double_remove () =
  rejects "double successful remove of a single key"
    (history ~initial:[ 1 ]
       [ (0, H.Remove, 1, true, 0, 10); (1, H.Remove, 1, true, 20, 30) ])

let test_reject_phantom_search () =
  rejects "search finds a key never inserted"
    (history [ (0, H.Search, 7, true, 0, 5) ])

let test_reject_stale_search () =
  rejects "search misses a stably present key"
    (history ~initial:[ 7 ] [ (0, H.Search, 7, false, 0, 5) ])

let test_reject_real_time_order () =
  (* remove->false completes strictly before remove->true starts: with
     the key initially present there is no legal order (this is the
     anomaly a per-thread clock would smuggle past the checker) *)
  rejects "non-overlapping results contradict real-time order"
    (history ~initial:[ 1 ]
       [ (1, H.Remove, 1, false, 0, 10); (0, H.Remove, 1, true, 20, 30) ])

let test_reject_lost_update () =
  (* the seq-list SCT counterexample shape: two inserts both succeed,
     then a search proves one vanished *)
  rejects "lost update surfaces through a later search"
    (history
       [
         (0, H.Insert, 1, true, 0, 10);
         (1, H.Insert, 1, true, 12, 22);
         (0, H.Search, 1, false, 30, 35);
       ])

let test_reject_one_bad_key_among_good () =
  rejects "a single bad key fails the whole history"
    (history ~initial:[ 2 ]
       [
         (0, H.Insert, 1, true, 0, 10);
         (1, H.Search, 2, true, 0, 8);
         (0, H.Search, 9, true, 12, 20);
       ])

(* ------------------------------------------------------------------ *)
(* Capacity cap                                                        *)
(* ------------------------------------------------------------------ *)

let test_too_large () =
  let h = H.create () in
  for i = 0 to 62 do
    H.record h ~tid:0 ~kind:H.Search ~key:1 ~result:false ~inv:(2 * i) ~res:((2 * i) + 1)
  done;
  Alcotest.check_raises "per-key cap enforced" (H.Too_large 63) (fun () -> ignore (H.check h))

let test_under_cap_still_checked () =
  let h = H.create () in
  for i = 0 to 61 do
    H.record h ~tid:0 ~kind:H.Search ~key:1 ~result:false ~inv:(2 * i) ~res:((2 * i) + 1)
  done;
  Alcotest.(check bool) "62 ops per key still checked" true (H.linearizable h)

let suite =
  [
    Alcotest.test_case "accept: racing inserts" `Quick test_accept_racing_inserts;
    Alcotest.test_case "accept: overlapping removes" `Quick test_accept_overlapping_remove_pair;
    Alcotest.test_case "accept: disjoint keys" `Quick test_accept_disjoint_keys;
    Alcotest.test_case "reject: double insert" `Quick test_reject_double_insert;
    Alcotest.test_case "reject: double remove" `Quick test_reject_double_remove;
    Alcotest.test_case "reject: phantom search" `Quick test_reject_phantom_search;
    Alcotest.test_case "reject: stale search" `Quick test_reject_stale_search;
    Alcotest.test_case "reject: real-time order violation" `Quick test_reject_real_time_order;
    Alcotest.test_case "reject: lost update" `Quick test_reject_lost_update;
    Alcotest.test_case "reject: one bad key among good" `Quick test_reject_one_bad_key_among_good;
    Alcotest.test_case "too-large history raises" `Quick test_too_large;
    Alcotest.test_case "62-op history still checked" `Quick test_under_cap_still_checked;
  ]
