(* Registry sanity: the catalogue is complete, names are unique, every
   maker instantiates and works natively. *)

open Ascylib

let test_counts () =
  (* the total is derived, not pinned: per-family counts are the ground
     truth, and the families must partition the registry *)
  let lists = List.length (Registry.by_family Ascy_core.Ascy.Linked_list) in
  let tables = List.length (Registry.by_family Ascy_core.Ascy.Hash_table) in
  let sls = List.length (Registry.by_family Ascy_core.Ascy.Skip_list) in
  let bsts = List.length (Registry.by_family Ascy_core.Ascy.Bst) in
  Alcotest.(check int) "9 linked lists" 9 lists;
  Alcotest.(check int) "12 hash tables" 12 tables;
  Alcotest.(check int) "5 skip lists" 5 sls;
  Alcotest.(check int) "9 BSTs" 9 bsts;
  Alcotest.(check int) "families partition the registry" (List.length Registry.all)
    (lists + tables + sls + bsts)

let test_unique_names () =
  let names = List.map (fun (x : Registry.entry) -> x.Registry.name) Registry.all in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_by_name () =
  List.iter
    (fun (x : Registry.entry) ->
      Alcotest.(check string) "roundtrip" x.Registry.name (Registry.by_name x.Registry.name).Registry.name)
    Registry.all;
  Alcotest.check_raises "unknown name rejected" (Invalid_argument "unknown algorithm: nope")
    (fun () -> ignore (Registry.by_name "nope"))

let test_every_maker_works () =
  List.iter
    (fun (x : Registry.entry) ->
      let module A = (val x.Registry.maker) in
      let module M = A (Ascy_mem.Mem_native) in
      let t = M.create ~hint:64 () in
      assert (M.insert t 7 "seven");
      assert (M.search t 7 = Some "seven");
      assert (M.remove t 7);
      assert (M.search t 7 = None);
      match M.validate t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: validate: %s" x.Registry.name e)
    Registry.all

let test_async_flags () =
  let asyncs = List.filter (fun (x : Registry.entry) -> x.Registry.asynchronized) Registry.all in
  Alcotest.(check int) "5 asynchronized baselines" 5 (List.length asyncs);
  List.iter
    (fun (x : Registry.entry) ->
      Alcotest.(check bool) "async is sequential" true (x.Registry.sync = Ascy_core.Ascy.Sequential))
    asyncs

let suite =
  [
    Alcotest.test_case "family counts" `Quick test_counts;
    Alcotest.test_case "unique names" `Quick test_unique_names;
    Alcotest.test_case "by_name roundtrip" `Quick test_by_name;
    Alcotest.test_case "every maker instantiates and works" `Quick test_every_maker_works;
    Alcotest.test_case "asynchronized flags" `Quick test_async_flags;
  ]
