(* Harness-level tests: workload mix, simulated-run determinism, and —
   most importantly — that the ASCY patterns are *observable* in the
   simulator's event streams, which is what the whole reproduction
   hinges on. *)

module W = Ascy_harness.Workload
module R = Ascy_harness.Sim_run
module P = Ascy_platform.Platform
module E = Ascy_mem.Event

let maker name = (Ascylib.Registry.by_name name).Ascylib.Registry.maker

let run ?(latency = false) ?(updates = 10) ?(threads = 8) ?(initial = 128) ?(ops = 200) name =
  let wl = W.make ~initial ~update_pct:updates () in
  R.run ~latency (maker name) ~platform:P.xeon20 ~nthreads:threads ~workload:wl
    ~ops_per_thread:ops ()

let test_workload_mix () =
  let wl = W.make ~initial:1024 ~update_pct:20 () in
  let rng = Ascy_util.Xorshift.create 3 in
  let upd = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match W.pick_op wl rng with
    | W.Insert | W.Remove -> incr upd
    | W.Search -> ()
  done;
  let pct = 100.0 *. float_of_int !upd /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "update mix ~20%% (got %.1f)" pct) true
    (pct > 17.0 && pct < 23.0);
  let k = W.pick_key wl rng in
  Alcotest.(check bool) "keys in [1, 2N]" true (k >= 1 && k <= 2048)

(* The update range must split evenly between inserts and removes for
   ANY update_pct, including odd ones: the old single-[below 100] picker
   gave inserts 13 of the 25 values at the paper's high-contention 25%,
   an E[ins - rem] = N/25 size drift.  Unbiased, |ins - rem| is a
   +-sqrt(N) random walk: bound it far below the old bias. *)
let test_pick_op_parity () =
  List.iter
    (fun update_pct ->
      let wl = W.make ~initial:1024 ~update_pct () in
      let rng = Ascy_util.Xorshift.create 11 in
      let ins = ref 0 and rem = ref 0 and n = 200_000 in
      for _ = 1 to n do
        match W.pick_op wl rng with
        | W.Insert -> incr ins
        | W.Remove -> incr rem
        | W.Search -> ()
      done;
      let diff = abs (!ins - !rem) in
      (* old bias at 25%: E[diff] = 8000 over 200k draws; unbiased
         sigma ~= sqrt(50k) ~= 224 *)
      Alcotest.(check bool)
        (Printf.sprintf "pct %d: |ins - rem| = %d small" update_pct diff)
        true (diff < 1_500);
      let pct = 100.0 *. float_of_int (!ins + !rem) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "pct %d: update mix %.2f%%" update_pct pct)
        true
        (Float.abs (pct -. float_of_int update_pct) < 1.0))
    [ 25; 10; 1 ]

(* Cold draws must come from the complement of the hot prefix: the old
   cold branch sampled the whole range, leaking hot_keys/key_range of
   the cold mass back into the prefix (effective 82% instead of 80%
   at hot=10/range=100). *)
let test_pick_key_skewed_exact () =
  let wl = W.make ~key_range:100 ~initial:50 ~update_pct:0 () in
  let skew = { W.hot_keys = 10; hot_pct = 80 } in
  let rng = Ascy_util.Xorshift.create 13 in
  let hot = ref 0 and n = 200_000 in
  for _ = 1 to n do
    let k = W.pick_key_skewed wl skew rng in
    if k < 1 || k > 100 then Alcotest.failf "key %d out of range" k;
    if k <= 10 then incr hot
  done;
  let frac = float_of_int !hot /. float_of_int n in
  (* sigma ~= 0.0009; the old leak sat at 0.82 *)
  Alcotest.(check bool)
    (Printf.sprintf "hot fraction %.4f is exactly 0.80" frac)
    true
    (frac > 0.79 && frac < 0.81);
  (* degenerate case: everything hot falls back to uniform *)
  let all_hot = W.pick_key_skewed wl { W.hot_keys = 200; hot_pct = 0 } rng in
  Alcotest.(check bool) "degenerate stays in range" true (all_hot >= 1 && all_hot <= 100)

let test_determinism () =
  let a = run ~latency:true "ll-lazy" and b = run ~latency:true "ll-lazy" in
  Alcotest.(check (float 0.0)) "same seed, same throughput" a.R.throughput_mops b.R.throughput_mops;
  Alcotest.(check int) "same makespan" a.R.stats.Ascy_mem.Sim.makespan_cycles
    b.R.stats.Ascy_mem.Sim.makespan_cycles

let test_seed_changes_schedule () =
  let wl = W.make ~initial:128 ~update_pct:20 () in
  let a = R.run ~seed:1 (maker "ll-lazy") ~platform:P.xeon20 ~nthreads:8 ~workload:wl ~ops_per_thread:200 () in
  let b = R.run ~seed:2 (maker "ll-lazy") ~platform:P.xeon20 ~nthreads:8 ~workload:wl ~ops_per_thread:200 () in
  Alcotest.(check bool) "different seeds, different makespan" true
    (a.R.stats.Ascy_mem.Sim.makespan_cycles <> b.R.stats.Ascy_mem.Sim.makespan_cycles)

let test_size_stays_near_initial () =
  let r = run ~updates:40 ~initial:256 ~ops:400 "ht-clht-lb" in
  Alcotest.(check bool)
    (Printf.sprintf "size near initial (got %d)" r.R.final_size)
    true
    (r.R.final_size > 128 && r.R.final_size < 512)

(* ASCY1: a read-only workload on an ASCY1 algorithm performs no atomic
   operations and takes no locks; an anti-ASCY design (coupling) locks
   on every hop. *)
let test_ascy1_observable () =
  let lazy_r = run ~updates:0 "ll-lazy" in
  Alcotest.(check int) "lazy searches: no atomics" 0 lazy_r.R.stats.Ascy_mem.Sim.atomics;
  Alcotest.(check int) "lazy searches: no locks" 0 lazy_r.R.stats.Ascy_mem.Sim.events.(E.lock);
  let coup = run ~updates:0 "ll-coupling" in
  Alcotest.(check bool) "coupling searches lock constantly" true
    (coup.R.stats.Ascy_mem.Sim.events.(E.lock) > coup.R.ops)

(* ASCY2: fraser restarts parses; fraser-opt keeps extra parses an order
   of magnitude lower under the same contended workload. *)
let test_ascy2_observable () =
  let fr = run ~updates:40 ~threads:16 ~initial:64 ~ops:400 "sl-fraser" in
  let fo = run ~updates:40 ~threads:16 ~initial:64 ~ops:400 "sl-fraser-opt" in
  Alcotest.(check bool)
    (Printf.sprintf "fraser restarts (%d) > fraser-opt restarts (%d)"
       fr.R.stats.Ascy_mem.Sim.events.(E.restart)
       fo.R.stats.Ascy_mem.Sim.events.(E.restart))
    true
    (fr.R.stats.Ascy_mem.Sim.events.(E.restart) > fo.R.stats.Ascy_mem.Sim.events.(E.restart))

(* ASCY3: with read-only failures, a doomed update costs about a search;
   without, it pays locks.  Compare lock counts on a zero-success
   workload (inserting keys that all exist). *)
let test_ascy3_observable () =
  let module A = (val maker "ht-lazy") in
  let count_locks rof =
    Ascy_mem.Sim.with_sim ~seed:5 ~platform:P.xeon20 ~nthreads:4 (fun sim ->
        let module M = A (Ascy_mem.Sim.Mem) in
        let t = M.create ~hint:64 ~read_only_fail:rof () in
        for k = 1 to 64 do
          ignore (M.insert t k 0)
        done;
        let body _ () =
          for k = 1 to 64 do
            assert (not (M.insert t k 1))
          done
        in
        let makespan = Ascy_mem.Sim.run sim (Array.init 4 body) in
        (Ascy_mem.Sim.stats sim ~makespan).Ascy_mem.Sim.events.(E.lock))
  in
  Alcotest.(check int) "ASCY3: failed inserts take no locks" 0 (count_locks true);
  Alcotest.(check bool) "-no variant locks on every failed insert" true (count_locks false > 200)

(* ASCY4: natarajan uses ~2 atomics per successful update, the helping
   designs measurably more. *)
let test_ascy4_observable () =
  let nat = run ~updates:40 ~threads:8 ~initial:256 ~ops:300 "bst-natarajan" in
  let ell = run ~updates:40 ~threads:8 ~initial:256 ~ops:300 "bst-ellen" in
  let a_nat = R.atomics_per_update nat and a_ell = R.atomics_per_update ell in
  Alcotest.(check bool)
    (Printf.sprintf "natarajan %.2f < ellen %.2f atomics/update" a_nat a_ell)
    true (a_nat < a_ell);
  Alcotest.(check bool) "natarajan close to 2" true (a_nat < 3.0)

(* Latency classes: with ASCY3, failed updates are cheaper than
   successful ones. *)
let test_failed_updates_cheaper () =
  let r = run ~latency:true ~updates:40 ~threads:8 ~initial:256 ~ops:400 "ht-clht-lb" in
  let ok = Ascy_util.Histogram.mean r.R.latencies.R.insert_ok in
  let fail = Ascy_util.Histogram.mean r.R.latencies.R.insert_fail in
  Alcotest.(check bool) (Printf.sprintf "fail %.0f < ok %.0f" fail ok) true (fail < ok)

(* The asynchronized baseline beats (or matches) every correct algorithm
   of its family — the paper's upper-bound methodology. *)
let test_async_upper_bound () =
  let async = run ~updates:10 ~threads:8 "ll-async" in
  List.iter
    (fun name ->
      let r = run ~updates:10 ~threads:8 name in
      Alcotest.(check bool)
        (Printf.sprintf "%s (%.2f) <= async (%.2f) * 1.1" name r.R.throughput_mops
           async.R.throughput_mops)
        true
        (r.R.throughput_mops <= async.R.throughput_mops *. 1.1))
    [ "ll-coupling"; "ll-lazy"; "ll-pugh"; "ll-harris"; "ll-harris-opt" ]

(* Simulated transactions: commit applies writes; conflicts roll back. *)
let test_txn_commit_and_abort () =
  Ascy_mem.Sim.with_sim ~seed:9 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let module M = Ascy_mem.Sim.Mem in
      let a = M.make_fresh 0 and b = M.make_fresh 0 in
      let committed = ref 0 and aborted = ref 0 in
      let body tid () =
        if tid = 0 then begin
          (* make the line "hot" in core 0's cache in modified state *)
          M.set a 100;
          M.work 50
        end
        else begin
          M.work 5;
          (* conflicting txn: reads a line owned by core 0 -> abort *)
          (match M.txn (fun () -> M.set a (M.get a + 1)) with
          | Some _ -> incr committed
          | None -> incr aborted);
          (* non-conflicting txn on a private line -> commit *)
          match M.txn (fun () -> M.set b 42) with
          | Some _ -> incr committed
          | None -> incr aborted
        end
      in
      ignore (Ascy_mem.Sim.run sim (Array.init 2 body));
      Alcotest.(check int) "conflicting txn aborted" 1 !aborted;
      Alcotest.(check int) "private txn committed" 1 !committed;
      Alcotest.(check int) "aborted write rolled back" 100 (M.get a);
      Alcotest.(check int) "committed write applied" 42 (M.get b))

let test_native_txn_is_none () =
  Alcotest.(check bool) "no HTM natively" true (Ascy_mem.Mem_native.txn (fun () -> 1) = None)

(* ------------------------------------------------------------------ *)
(* History recording + linearizability checking                        *)
(* ------------------------------------------------------------------ *)

module Hist = Ascy_harness.History

let ev h ~tid ~kind ~key ~result ~inv ~res = Hist.record h ~tid ~kind ~key ~result ~inv ~res

(* Concurrent insert/search where only one order explains the results:
   the checker must find it. *)
let test_history_accepts_reordering () =
  let h = Hist.create () in
  (* search overlaps the insert and misses: linearize it first *)
  ev h ~tid:0 ~kind:Hist.Insert ~key:1 ~result:true ~inv:0 ~res:100;
  ev h ~tid:1 ~kind:Hist.Search ~key:1 ~result:false ~inv:50 ~res:60;
  (* later search finds it *)
  ev h ~tid:1 ~kind:Hist.Search ~key:1 ~result:true ~inv:200 ~res:210;
  Alcotest.(check bool) "linearizable" true (Hist.linearizable h)

let test_history_respects_realtime_order () =
  let h = Hist.create () in
  (* the search STARTS after the insert RESPONDED, so it cannot be
     linearized before the insert — result false is a violation *)
  ev h ~tid:0 ~kind:Hist.Insert ~key:1 ~result:true ~inv:0 ~res:100;
  ev h ~tid:1 ~kind:Hist.Search ~key:1 ~result:false ~inv:150 ~res:160;
  Alcotest.(check bool) "non-linearizable" false (Hist.linearizable h)

let test_history_double_insert () =
  let h = Hist.create () in
  (* two non-overlapping successful inserts of the same key with no
     remove in between: impossible for a set *)
  ev h ~tid:0 ~kind:Hist.Insert ~key:3 ~result:true ~inv:0 ~res:10;
  ev h ~tid:1 ~kind:Hist.Insert ~key:3 ~result:true ~inv:20 ~res:30;
  (match Hist.check h with
  | Ok () -> Alcotest.fail "double insert accepted"
  | Error v -> Alcotest.(check int) "violating key" 3 v.Hist.v_key);
  (* ...but fine if a remove overlaps the second insert *)
  let h2 = Hist.create () in
  ev h2 ~tid:0 ~kind:Hist.Insert ~key:3 ~result:true ~inv:0 ~res:10;
  ev h2 ~tid:1 ~kind:Hist.Insert ~key:3 ~result:true ~inv:20 ~res:30;
  ev h2 ~tid:2 ~kind:Hist.Remove ~key:3 ~result:true ~inv:15 ~res:35;
  Alcotest.(check bool) "remove in between explains it" true (Hist.linearizable h2)

let test_history_initial_state () =
  let h = Hist.create () in
  Hist.add_initial h 9;
  ev h ~tid:0 ~kind:Hist.Remove ~key:9 ~result:true ~inv:0 ~res:10;
  ev h ~tid:0 ~kind:Hist.Search ~key:9 ~result:false ~inv:20 ~res:30;
  Alcotest.(check bool) "prefilled key removable" true (Hist.linearizable h);
  let h2 = Hist.create () in
  ev h2 ~tid:0 ~kind:Hist.Remove ~key:9 ~result:true ~inv:0 ~res:10;
  Alcotest.(check bool) "remove from empty set fails" false (Hist.linearizable h2)

(* End-to-end: Sim_run with ?history on a correct algorithm. *)
let test_sim_run_history_linearizable () =
  let wl = W.make ~initial:16 ~update_pct:50 () in
  let h = Hist.create () in
  let r =
    R.run ~history:h (maker "ht-clht-lb") ~platform:P.xeon20 ~nthreads:6 ~workload:wl
      ~ops_per_thread:40 ()
  in
  Alcotest.(check int) "every op recorded" r.R.ops (Hist.length h);
  match Hist.check h with
  | Ok () -> ()
  | Error v -> Alcotest.failf "clht history not linearizable: %s" (Hist.pp_violation v)

(* Intentionally seeded non-linearizable mutation: a wrapper whose
   [remove] always claims success.  The checker must catch it. *)
let lying_remove_maker (module A : Ascy_core.Set_intf.MAKER) : (module Ascy_core.Set_intf.MAKER)
    =
  (module functor (Mem : Ascy_mem.Memory.S) -> struct
    include A (Mem)

    let remove t k =
      ignore (remove t k);
      true
  end)

let test_history_catches_seeded_mutation () =
  let wl = W.make ~initial:8 ~update_pct:60 () in
  let h = Hist.create () in
  ignore
    (R.run ~history:h
       (lying_remove_maker (maker "ll-lazy"))
       ~platform:P.xeon20 ~nthreads:4 ~workload:wl ~ops_per_thread:30 ());
  match Hist.check h with
  | Ok () -> Alcotest.fail "seeded lying-remove mutation went undetected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Trace ring buffers                                                  *)
(* ------------------------------------------------------------------ *)

module Sim = Ascy_mem.Sim

let test_trace_records_ops_and_accesses () =
  let wl = W.make ~initial:32 ~update_pct:20 () in
  let nthreads = 4 and ops = 25 in
  let r =
    R.run ~trace_capacity:100_000 (maker "ll-lazy") ~platform:P.xeon20 ~nthreads ~workload:wl
      ~ops_per_thread:ops ()
  in
  ignore r;
  (* with_sim uninstalls the sim, so re-run inside the scope to inspect *)
  Sim.with_sim ~trace_capacity:4096 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      Alcotest.(check bool) "tracing enabled" true (Sim.Trace.enabled sim);
      let x = Sim.Mem.make_fresh 0 in
      let body tid () =
        Sim.Trace.op_start 1;
        for _ = 1 to 5 do
          Sim.Mem.set x (Sim.Mem.get x + tid)
        done;
        Sim.Trace.op_end 1
      in
      ignore (Sim.run sim (Array.init 2 body));
      List.iter
        (fun tid ->
          let entries = Sim.Trace.entries sim tid in
          Alcotest.(check bool) "has entries" true (List.length entries > 0);
          let starts, ends, accesses =
            List.fold_left
              (fun (s, e, a) (en : Sim.Trace.entry) ->
                match en.Sim.Trace.tr_ev with
                | Sim.Trace.T_op_start _ -> (s + 1, e, a)
                | Sim.Trace.T_op_end _ -> (s, e + 1, a)
                | Sim.Trace.T_access _ -> (s, e, a + 1))
              (0, 0, 0) entries
          in
          Alcotest.(check int) "one op_start" 1 starts;
          Alcotest.(check int) "one op_end" 1 ends;
          Alcotest.(check int) "10 traced accesses" 10 accesses;
          (* cycle stamps are nondecreasing within a thread *)
          let rec mono = function
            | (a : Sim.Trace.entry) :: (b : Sim.Trace.entry) :: tl ->
                a.Sim.Trace.tr_cycle <= b.Sim.Trace.tr_cycle && mono (b :: tl)
            | _ -> true
          in
          Alcotest.(check bool) "cycles nondecreasing" true (mono entries))
        [ 0; 1 ])

let test_trace_ring_wraps () =
  Sim.with_sim ~trace_capacity:8 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let x = Sim.Mem.make_fresh 0 in
      let body _ () =
        for _ = 1 to 50 do
          Sim.Mem.set x (Sim.Mem.get x + 1)
        done
      in
      ignore (Sim.run sim [| body 0 |]);
      Alcotest.(check int) "ring keeps capacity entries" 8
        (List.length (Sim.Trace.entries sim 0));
      Alcotest.(check bool) "total counts everything" true (Sim.Trace.total sim 0 >= 100))

let test_trace_off_by_default () =
  Sim.with_sim ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let x = Sim.Mem.make_fresh 0 in
      ignore (Sim.run sim [| (fun () -> Sim.Mem.set x 1) |]);
      Alcotest.(check bool) "tracing off" false (Sim.Trace.enabled sim);
      Alcotest.(check int) "no entries" 0 (List.length (Sim.Trace.entries sim 0));
      Alcotest.(check int) "no totals" 0 (Sim.Trace.total sim 0))

let test_trace_dump_renders () =
  Sim.with_sim ~trace_capacity:64 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let x = Sim.Mem.make_fresh 0 in
      ignore (Sim.run sim [| (fun () -> Sim.Mem.set x 1) |]);
      let tmp = Filename.temp_file "ascy_trace" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove tmp)
        (fun () ->
          let oc = open_out tmp in
          Sim.Trace.dump oc sim;
          close_out oc;
          let ic = open_in tmp in
          let line = input_line ic in
          close_in ic;
          Alcotest.(check bool) "text header present" true
            (String.length line > 0 && String.sub line 0 2 = "--");
          let oc = open_out tmp in
          Sim.Trace.dump ~json:true oc sim;
          close_out oc;
          let ic = open_in tmp in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          match Ascy_util.Json.of_string (String.trim s) with
          | Ascy_util.Json.List (_ :: _) -> ()
          | _ -> Alcotest.fail "json dump is not a non-empty array"))

(* ------------------------------------------------------------------ *)
(* Structured results: schema round-trip + golden file                 *)
(* ------------------------------------------------------------------ *)

module Res = Ascy_harness.Results
module J = Ascy_util.Json

(* A fully deterministic synthetic result: golden-file stability must
   not depend on simulator internals. *)
let synthetic_result () : R.result =
  let lat = R.fresh_latencies () in
  List.iter (Ascy_util.Histogram.add lat.R.search_hit) [ 10.0; 20.0; 30.0; 40.0 ];
  Ascy_util.Histogram.add lat.R.insert_ok 15.0;
  {
    R.algorithm = "golden-algo";
    platform = "Xeon20";
    nthreads = 4;
    seed = 7;
    ops_per_thread = 25;
    workload = W.make ~initial:16 ~update_pct:20 ();
    ops = 100;
    updates_attempted = 20;
    updates_successful = 10;
    seconds = 0.001;
    throughput_mops = 0.1;
    stats =
      {
        Ascy_mem.Sim.makespan_cycles = 2300;
        seconds = 0.001;
        accesses = 1000;
        hits_l1 = 900;
        hits_llc = 50;
        transfers_local = 20;
        transfers_remote = 10;
        fetch_remote = 5;
        misses_mem = 15;
        atomics = 30;
        stores = 120;
        energy_j = 0.5;
        power_w = 500.0;
        events = Array.init Ascy_mem.Event.count (fun i -> i);
      };
    thread_stats =
      [|
        {
          Ascy_mem.Sim.t_tid = 0;
          t_accesses = 500;
          t_l1 = 450;
          t_llc = 25;
          t_c2c_local = 10;
          t_c2c_remote = 5;
          t_llc_remote = 3;
          t_mem = 7;
          t_atomics = 15;
          t_stores = 60;
          t_energy_nj = 0.25e9;
        };
        {
          Ascy_mem.Sim.t_tid = 1;
          t_accesses = 500;
          t_l1 = 450;
          t_llc = 25;
          t_c2c_local = 10;
          t_c2c_remote = 5;
          t_llc_remote = 2;
          t_mem = 8;
          t_atomics = 15;
          t_stores = 60;
          t_energy_nj = 0.25e9;
        };
      |];
    latencies = lat;
    final_size = 17;
  }

let test_results_roundtrip () =
  let j = Res.of_sim_run ~label:"golden" (synthetic_result ()) in
  let j' = J.of_string (J.to_string ~indent:1 j) in
  Alcotest.(check bool) "serialized record parses back equal" true (j = j');
  (* spot-check the fields downstream tooling keys on *)
  let get k = match J.member k j' with Some v -> v | None -> Alcotest.failf "missing %s" k in
  Alcotest.(check (option string)) "algorithm" (Some "golden-algo") (J.to_string_opt (get "algorithm"));
  Alcotest.(check (option int)) "nthreads" (Some 4) (J.to_int_opt (get "nthreads"));
  let stats = get "stats" in
  Alcotest.(check (option int)) "atomics" (Some 30)
    (Option.bind (J.member "atomics" stats) J.to_int_opt);
  let lat = get "latency_ns" in
  let sh = match J.member "search_hit" lat with Some v -> v | None -> Alcotest.fail "no search_hit" in
  Alcotest.(check (option int)) "lat count" (Some 4)
    (Option.bind (J.member "count" sh) J.to_int_opt);
  Alcotest.(check bool) "p99 present" true (J.member "p99" sh <> None);
  Alcotest.(check bool) "empty class is null" true (J.member "remove_ok" lat = Some J.Null)

(* The committed golden file pins the schema: if serialization changes,
   this fails and the schema_version must be bumped (regenerate with
   `dune exec test/gen_golden.exe > test/results_golden.json`). *)
let test_results_golden_file () =
  (* dune runtest runs from _build/default/test; dune exec from the root *)
  let golden =
    if Sys.file_exists "results_golden.json" then "results_golden.json"
    else "test/results_golden.json"
  in
  let ic = open_in golden in
  let n = in_channel_length ic in
  let want = really_input_string ic n in
  close_in ic;
  let got = J.to_string ~indent:1 (Res.of_sim_run ~label:"golden" (synthetic_result ())) ^ "\n" in
  Alcotest.(check string) "golden serialization" want got;
  Alcotest.(check bool) "golden file parses" true
    (match J.of_string (String.trim want) with J.Obj _ -> true | _ -> false)

let suite =
  [
    Alcotest.test_case "workload op mix" `Quick test_workload_mix;
    Alcotest.test_case "workload insert/remove parity" `Quick test_pick_op_parity;
    Alcotest.test_case "workload skew is exact" `Quick test_pick_key_skewed_exact;
    Alcotest.test_case "sim_run determinism" `Quick test_determinism;
    Alcotest.test_case "seed changes schedule" `Quick test_seed_changes_schedule;
    Alcotest.test_case "size stays near initial" `Quick test_size_stays_near_initial;
    Alcotest.test_case "ASCY1 observable (no stores in searches)" `Quick test_ascy1_observable;
    Alcotest.test_case "ASCY2 observable (parse restarts)" `Quick test_ascy2_observable;
    Alcotest.test_case "ASCY3 observable (read-only failures)" `Quick test_ascy3_observable;
    Alcotest.test_case "ASCY4 observable (atomics per update)" `Quick test_ascy4_observable;
    Alcotest.test_case "failed updates cheaper (latency classes)" `Quick test_failed_updates_cheaper;
    Alcotest.test_case "async is the upper bound" `Quick test_async_upper_bound;
    Alcotest.test_case "txn commit and abort" `Quick test_txn_commit_and_abort;
    Alcotest.test_case "native txn unavailable" `Quick test_native_txn_is_none;
    Alcotest.test_case "history: reordering accepted" `Quick test_history_accepts_reordering;
    Alcotest.test_case "history: real-time order enforced" `Quick test_history_respects_realtime_order;
    Alcotest.test_case "history: double insert" `Quick test_history_double_insert;
    Alcotest.test_case "history: initial state" `Quick test_history_initial_state;
    Alcotest.test_case "history: sim_run end-to-end" `Quick test_sim_run_history_linearizable;
    Alcotest.test_case "history: seeded mutation caught" `Quick test_history_catches_seeded_mutation;
    Alcotest.test_case "trace: ops and accesses recorded" `Quick test_trace_records_ops_and_accesses;
    Alcotest.test_case "trace: ring wraps at capacity" `Quick test_trace_ring_wraps;
    Alcotest.test_case "trace: off by default" `Quick test_trace_off_by_default;
    Alcotest.test_case "trace: dump renders text and json" `Quick test_trace_dump_renders;
    Alcotest.test_case "results: schema round-trip" `Quick test_results_roundtrip;
    Alcotest.test_case "results: golden file" `Quick test_results_golden_file;
  ]
