(* Fault-injection engine and progress-oracle tests.

   Covers: the simulator's crash/stall/NUMA fault events and their
   decision-index coordinate system; lock-holder crashes wedging every
   survivor (with the watchdog naming the lock site they spin on);
   SSMEM's stuck-epoch detection and detach path under a crashed thread;
   the Sct_run crash oracle's injected-kill exemption; Replay schema v2
   round-trips (and v1 output staying fault-free byte-for-byte); and
   Fault_run's classify / save_finding / replay_file pipeline. *)

module Sim = Ascy_mem.Sim
module SMem = Ascy_mem.Sim.Mem
module P = Ascy_platform.Platform
module Scheduler = Ascy_sct.Scheduler
module Replay = Ascy_sct.Replay
module Fault = Ascy_harness.Fault_run
module Sct_run = Ascy_harness.Sct_run
module Registry = Ascylib.Registry
module Ascy = Ascy_core.Ascy
module J = Ascy_util.Json

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let crash ~at tid = { Sim.fe_at = at; fe_tid = tid; fe_fault = Sim.F_crash }
let stall ~at ~decisions tid = { Sim.fe_at = at; fe_tid = tid; fe_fault = Sim.F_stall decisions }

(* ---------------- engine: faults in the simulator ---------------- *)

(* A crash-stopped thread never runs again; the survivors finish. *)
let test_crash_stops_thread () =
  Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:3 (fun sim ->
      let prog = Array.make 3 0 in
      let body tid () =
        for i = 1 to 30 do
          SMem.work 3;
          prog.(tid) <- i
        done
      in
      ignore (Sim.run ~faults:[ crash ~at:10 1 ] sim (Array.init 3 body));
      Alcotest.(check bool) "victim crashed" true (Sim.is_crashed sim 1);
      Alcotest.(check (list int)) "crashed tids" [ 1 ] (Sim.crashed_tids sim);
      Alcotest.(check bool) "victim stopped early" true (prog.(1) < 30);
      Alcotest.(check int) "survivor 0 finished" 30 prog.(0);
      Alcotest.(check int) "survivor 2 finished" 30 prog.(2))

(* A stalled thread resumes after its window and still finishes last. *)
let test_stall_delays_thread () =
  Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let order = ref [] in
      let body tid () =
        for _ = 1 to 20 do
          SMem.work 2
        done;
        order := tid :: !order
      in
      ignore (Sim.run ~faults:[ stall ~at:3 ~decisions:300 1 ] sim (Array.init 2 body));
      Alcotest.(check (list int)) "stalled thread finishes last" [ 1; 0 ] !order;
      Alcotest.(check (list int)) "nobody crashed" [] (Sim.crashed_tids sim))

(* When every live thread is stalled the decision counter fast-forwards
   to the earliest expiry instead of spinning. *)
let test_all_stalled_fast_forward () =
  Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let done_ = Array.make 2 false in
      let body tid () =
        for _ = 1 to 5 do
          SMem.work 2
        done;
        done_.(tid) <- true
      in
      let sched = Scheduler.prefix_scheduler ~prefix:[||] () in
      ignore
        (Sim.run ~scheduler:sched
           ~faults:[ stall ~at:2 ~decisions:500 0; stall ~at:2 ~decisions:500 1 ]
           sim (Array.init 2 body));
      Alcotest.(check bool) "both completed" true (done_.(0) && done_.(1));
      Alcotest.(check bool) "decisions jumped past the stall window" true
        (Sim.decisions sim > 500))

(* Transient NUMA slowdown: same schedule shape, strictly larger makespan. *)
let test_numa_slow_costs () =
  let run faults =
    Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
        let cell = SMem.make_fresh 0 in
        let body _ () =
          for _ = 1 to 40 do
            SMem.set cell (SMem.get cell + 1)
          done
        in
        Sim.run ~faults sim (Array.init 2 body))
  in
  let base = run [] in
  let slow =
    run [ { Sim.fe_at = 5; fe_tid = 0; fe_fault = Sim.F_numa_slow { factor = 8.0; window = 500 } } ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "slowed makespan %d > baseline %d" slow base)
    true (slow > base)

let test_fault_unknown_target_rejected () =
  Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let body _ () = SMem.work 1 in
      let raised =
        try
          ignore (Sim.run ~faults:[ crash ~at:1 99 ] sim (Array.init 2 body));
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool) "crash on unknown thread rejected" true raised)

(* ---------------- lock-holder crashes (progress oracles) --------- *)

(* Crash the victim inside its critical section and assert that every
   survivor wedges, with the watchdog's report naming what they spin on.
   The crash point is found by a fault-free probe under the identical
   controlled schedule: the first decision at which the victim is
   observed holding the lock. *)
let lock_holder_crash ?(expect_line = true) ~name ~mk ~acquire ~release () =
  let nthreads = 3 and victim = 0 and watchdog = 1_500 in
  let run ~faults ~cand =
    Sim.with_sim ~seed:1 ~platform:P.xeon20 ~nthreads (fun sim ->
        let line = SMem.new_line () in
        let lock = mk line in
        let holding = ref false in
        let finished = Array.make nthreads false in
        let decisions = ref 0 in
        let last_progress = ref 0 in
        (* most recent memory access each thread was parked on: a spinning
           survivor's is the lock word (backoff steps would otherwise race
           the snapshot at the trip decision) *)
        let last_access = Array.make nthreads "none" in
        let inner = Scheduler.prefix_scheduler ~prefix:[||] () in
        let sched runnable =
          incr decisions;
          for i = 0 to Sim.runnable_count runnable - 1 do
            match Sim.runnable_action runnable i with
            | Sim.A_access _ as a -> last_access.(Sim.runnable_tid runnable i) <- Fault.action_str a
            | _ -> ()
          done;
          (match cand with Some c when !c = 0 && !holding -> c := !decisions | _ -> ());
          if !decisions - !last_progress > watchdog then
            raise
              (Fault.Wedged_exn
                 {
                   at = !decisions;
                   spun =
                     (let spun = ref [] in
                      for i = Sim.runnable_count runnable - 1 downto 0 do
                        let tid = Sim.runnable_tid runnable i in
                        if tid <> victim then spun := (tid, last_access.(tid)) :: !spun
                      done;
                      !spun);
                 });
          inner runnable
        in
        let body tid () =
          if tid = victim then begin
            let h = acquire lock in
            holding := true;
            for _ = 1 to 8 do
              SMem.work 4
            done;
            holding := false;
            release lock h;
            finished.(tid) <- true;
            last_progress := !decisions
          end
          else begin
            (* stagger so the victim reaches the lock first *)
            SMem.work (300 * tid);
            let h = acquire lock in
            SMem.work 4;
            release lock h;
            finished.(tid) <- true;
            last_progress := !decisions
          end
        in
        (line, match Sim.run ~scheduler:sched ~faults sim (Array.init nthreads body) with
               | _ -> Ok finished
               | exception Fault.Wedged_exn { at; spun } -> Error (at, spun)))
  in
  let c = ref 0 in
  (match run ~faults:[] ~cand:(Some c) with
  | _, Ok fin ->
      Alcotest.(check bool) (name ^ ": fault-free probe completes") true (Array.for_all Fun.id fin)
  | _, Error _ -> Alcotest.fail (name ^ ": probe wedged without any fault"));
  Alcotest.(check bool) (name ^ ": probe saw the victim holding the lock") true (!c > 0);
  match run ~faults:[ crash ~at:!c victim ] ~cand:None with
  | _, Ok _ -> Alcotest.fail (name ^ ": survivors completed past a crashed lock holder")
  | line, Error (_, spun) ->
      Alcotest.(check (list int))
        (name ^ ": both survivors blocked")
        [ 1; 2 ]
        (List.sort compare (List.map fst spun));
      if expect_line then
        let site = Printf.sprintf "@line%d" line in
        List.iter
          (fun (tid, a) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: t%d spins on the lock site (%s, got %s)" name tid site a)
              true (contains a site))
          spun

module Ttas_s = Ascy_locks.Ttas.Make (SMem)
module Ticket_s = Ascy_locks.Ticket.Make (SMem)
module Mcs_s = Ascy_locks.Mcs.Make (SMem)
module Rw_s = Ascy_locks.Rw_lock.Make (SMem)
module Seq_s = Ascy_locks.Seqlock.Make (SMem)

let test_ttas_holder_crash =
  lock_holder_crash ~name:"ttas" ~mk:Ttas_s.create
    ~acquire:(fun l -> Ttas_s.acquire l)
    ~release:(fun l () -> Ttas_s.release l)

let test_ticket_holder_crash =
  lock_holder_crash ~name:"ticket" ~mk:Ticket_s.create
    ~acquire:(fun l -> Ticket_s.acquire l)
    ~release:(fun l () -> Ticket_s.release l)

(* MCS waiters spin on their own queue node, not the lock word — assert
   the wedge, not the line. *)
let test_mcs_holder_crash =
  lock_holder_crash ~expect_line:false ~name:"mcs" ~mk:Mcs_s.create ~acquire:Mcs_s.acquire
    ~release:Mcs_s.release

let test_rwlock_holder_crash =
  lock_holder_crash ~name:"rwlock" ~mk:Rw_s.create
    ~acquire:(fun l -> Rw_s.write_acquire l)
    ~release:(fun l () -> Rw_s.write_release l)

let test_seqlock_holder_crash =
  lock_holder_crash ~name:"seqlock" ~mk:Seq_s.create
    ~acquire:(fun l -> ignore (Seq_s.write_acquire l))
    ~release:(fun l () -> Seq_s.write_release l)

(* ---------------- SSMEM under a crashed thread ------------------- *)

module Ssmem_s = Ascy_ssmem.Ssmem.Make (SMem)

(* A thread that announced an epoch and then crash-stops pins every
   batch parked after its announcement: garbage accumulates (bounded,
   reported by [stuck_epochs]), nothing is reclaimed unsafely, and after
   an explicit [detach] the parked batches drain. *)
let test_ssmem_crashed_thread_pins_garbage () =
  (* [after] runs inside the simulation context (collect emits events) *)
  let run ~faults ~cand ~after =
    Sim.with_sim ~seed:1 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
        let t = Ssmem_s.create ~gc_threshold:4 () in
        let quiesced = ref false in
        let decisions = ref 0 in
        let inner = Scheduler.prefix_scheduler ~prefix:[||] () in
        let sched runnable =
          incr decisions;
          (match cand with Some c when !c = 0 && !quiesced -> c := !decisions | _ -> ());
          inner runnable
        in
        let body tid () =
          if tid = 0 then begin
            Ssmem_s.quiesce t;
            (* the epoch announcement the crash freezes *)
            quiesced := true;
            for _ = 1 to 10 do
              SMem.work 5
            done;
            Ssmem_s.quiesce t
          end
          else begin
            SMem.work 400;
            (* let t0 announce first *)
            for i = 1 to 32 do
              Ssmem_s.free t i;
              if i mod 8 = 0 then Ssmem_s.quiesce t
            done
          end
        in
        ignore (Sim.run ~scheduler:sched ~faults sim (Array.init 2 body));
        after t)
  in
  (* probe: the decision right after t0's epoch announcement *)
  let c = ref 0 in
  run ~faults:[] ~cand:(Some c) ~after:ignore;
  Alcotest.(check bool) "probe saw the announcement" true (!c > 0);
  run
    ~faults:[ crash ~at:(!c + 2) 0 ]
    ~cand:None
    ~after:(fun t ->
      let s = Ssmem_s.stats t in
      Alcotest.(check int) "all frees deferred" 32 s.Ssmem_s.freed;
      Alcotest.(check int) "nothing reclaimed behind the frozen epoch" 0 s.Ssmem_s.reclaimed;
      (match Ssmem_s.stuck_epochs t with
      | [ st ] ->
          Alcotest.(check int) "the corpse is the pinner" 0 st.Ssmem_s.tid;
          Alcotest.(check int) "every parked batch is pinned" 8 st.Ssmem_s.batches;
          Alcotest.(check int) "every deferred item is pinned" 32 st.Ssmem_s.items
      | l -> Alcotest.fail (Printf.sprintf "expected one stuck epoch, got %d" (List.length l)));
      (* collection without detach must NOT touch the pinned batches *)
      Ssmem_s.collect_all t;
      Alcotest.(check int) "still nothing reclaimed" 0 (Ssmem_s.stats t).Ssmem_s.reclaimed;
      (* detach the corpse: parked batches drain, exactly once *)
      Ssmem_s.detach t 0;
      Ssmem_s.collect_all t;
      let s = Ssmem_s.stats t in
      Alcotest.(check int) "all batches drained after detach" 32 s.Ssmem_s.reclaimed;
      Alcotest.(check int) "no pending garbage" 0 s.Ssmem_s.pending;
      Alcotest.(check int) "no stuck epochs left" 0 (List.length (Ssmem_s.stuck_epochs t)))

(* ---------------- Sct_run: injected-kill exemption --------------- *)

(* A crash fault terminating a thread mid-operation is NOT a violation:
   the oracle must distinguish Thread_killed from a genuine crash. *)
let test_sct_run_injected_kill_not_a_violation () =
  let spec =
    Sct_run.mk_spec ~name:"ll-harris" ~initial:[ 1; 2 ]
      ~script:
        [|
          [| (Sct_run.Search, 1); (Sct_run.Search, 2); (Sct_run.Search, 1) |];
          [| (Sct_run.Insert, 3); (Sct_run.Remove, 3); (Sct_run.Insert, 4) |];
        |]
      ()
  in
  let (module A) = (Registry.by_name "ll-harris").Registry.maker in
  let violation =
    Sct_run.run_once
      ~faults:[ crash ~at:6 0 ]
      (module A)
      spec
      ~sched:(Scheduler.prefix_scheduler ~prefix:[||] ())
  in
  Alcotest.(check (option string)) "injected kill is exempt" None violation

(* ---------------- Replay schema v2 ------------------------------- *)

let test_replay_v2_roundtrip () =
  let path = Filename.temp_file "fault_rt" ".json" in
  let prefix = [| 0; 0; 0; 1; 1 |] in
  let faults =
    [
      crash ~at:7 1;
      stall ~at:9 ~decisions:40 0;
      { Sim.fe_at = 11; fe_tid = 0; fe_fault = Sim.F_numa_slow { factor = 4.0; window = 250 } };
    ]
  in
  Replay.save ~path ~faults ~prefix ~meta:[ ("note", J.String "chaos") ] ();
  let prefix', faults', meta' = Replay.load path in
  Sys.remove path;
  Alcotest.(check (array int)) "prefix survives" prefix prefix';
  Alcotest.(check int) "all faults survive" 3 (List.length faults');
  Alcotest.(check bool) "fault plan identical" true (faults = faults');
  Alcotest.(check bool) "meta survives" true
    (List.assoc_opt "note" meta' = Some (J.String "chaos"))

(* Fault-free output stays schema v1 with no faults key: the pre-fault
   file format is byte-compatible. *)
let test_replay_v1_unchanged_without_faults () =
  let path = Filename.temp_file "fault_v1" ".json" in
  Replay.save ~path ~prefix:[| 0; 0; 1 |] ();
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let _, faults, _ = Replay.load path in
  Sys.remove path;
  Alcotest.(check bool) "no faults key serialized" false (contains raw "fault");
  Alcotest.(check bool) "schema version stays 1" true (contains raw "1");
  Alcotest.(check bool) "loads with an empty plan" true (faults = [])

(* ---------------- Fault_run: classify + replay ------------------- *)

(* A lock-based design must actually wedge for some lock-holder crash,
   and the witness plan must reproduce deterministically from disk. *)
let test_classify_lock_based_wedges_and_replays () =
  let r = Fault.classify (Registry.by_name "ll-lazy") in
  Alcotest.(check bool) "observed blocking" true (r.Fault.observed = Ascy.Blocking);
  Alcotest.(check bool) "matches its declaration" true (Fault.matches r);
  Alcotest.(check bool) "stall survived" true r.Fault.stall_ok;
  match r.Fault.witness with
  | None -> Alcotest.fail "no wedge witness for a lock-based design"
  | Some (faults, violation) ->
      Alcotest.(check bool) "watchdog described the wedge" true (contains violation "watchdog");
      let path = Filename.temp_file "fault_ll_lazy" ".json" in
      Fault.save_finding ~path (Fault.chaos_spec "ll-lazy") ~faults ~violation;
      let _, faults', expected, results = Fault.replay_file ~times:2 path in
      Sys.remove path;
      Alcotest.(check bool) "plan round-trips" true (faults = faults');
      Alcotest.(check (option string)) "expected violation stored" (Some violation) expected;
      List.iteri
        (fun i got ->
          Alcotest.(check (option string))
            (Printf.sprintf "replay %d reproduces" (i + 1))
            (Some violation) got)
        results

(* A lock-free design survives every crash placement with clean oracles. *)
let test_classify_lock_free_survives () =
  let r = Fault.classify (Registry.by_name "ll-harris") in
  Alcotest.(check bool) "observed non-blocking" true (r.Fault.observed = Ascy.Non_blocking);
  Alcotest.(check bool) "matches its declaration" true (Fault.matches r);
  Alcotest.(check bool) "no oracle failures" true (r.Fault.oracle_failures = []);
  Alcotest.(check bool) "several crash placements probed" true (r.Fault.crash_probes > 3)

let suite =
  [
    Alcotest.test_case "crash stops a thread" `Quick test_crash_stops_thread;
    Alcotest.test_case "stall delays a thread" `Quick test_stall_delays_thread;
    Alcotest.test_case "all-stalled fast-forward" `Quick test_all_stalled_fast_forward;
    Alcotest.test_case "numa slowdown costs cycles" `Quick test_numa_slow_costs;
    Alcotest.test_case "unknown fault target rejected" `Quick test_fault_unknown_target_rejected;
    Alcotest.test_case "ttas holder crash wedges survivors" `Quick test_ttas_holder_crash;
    Alcotest.test_case "ticket holder crash wedges survivors" `Quick test_ticket_holder_crash;
    Alcotest.test_case "mcs holder crash wedges survivors" `Quick test_mcs_holder_crash;
    Alcotest.test_case "rwlock holder crash wedges survivors" `Quick test_rwlock_holder_crash;
    Alcotest.test_case "seqlock holder crash wedges survivors" `Quick test_seqlock_holder_crash;
    Alcotest.test_case "ssmem: crashed thread pins garbage until detach" `Quick
      test_ssmem_crashed_thread_pins_garbage;
    Alcotest.test_case "sct_run: injected kill is not a violation" `Quick
      test_sct_run_injected_kill_not_a_violation;
    Alcotest.test_case "replay v2 roundtrip (prefix + faults + meta)" `Quick
      test_replay_v2_roundtrip;
    Alcotest.test_case "replay v1 output unchanged without faults" `Quick
      test_replay_v1_unchanged_without_faults;
    Alcotest.test_case "classify: lock-based wedges and replays" `Quick
      test_classify_lock_based_wedges_and_replays;
    Alcotest.test_case "classify: lock-free survives every placement" `Quick
      test_classify_lock_free_survives;
  ]
