(* Conformance suites for all nine BST algorithms. *)

module B = Ascy_bst

let suites =
  [
    ("bst-async-int", Conformance.suite ~concurrent:false "bst-async-int" (module B.Seq_int_bst.Make));
    ("bst-async-ext", Conformance.suite ~concurrent:false "bst-async-ext" (module B.Seq_ext_bst.Make));
    ("bst-tk", Conformance.suite "bst-tk" (module B.Bst_tk.Make));
    ("bst-natarajan", Conformance.suite "bst-natarajan" (module B.Natarajan.Make));
    ("bst-ellen", Conformance.suite "bst-ellen" (module B.Ellen.Make));
    ("bst-howley", Conformance.suite "bst-howley" (module B.Howley.Make));
    ("bst-bronson", Conformance.suite "bst-bronson" (module B.Bronson.Make));
    ("bst-drachsler", Conformance.suite "bst-drachsler" (module B.Drachsler.Make));
    ("bst-pathcas", Conformance.suite "bst-pathcas" (module B.Pathcas_bst.Make));
  ]
