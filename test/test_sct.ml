(* Systematic concurrency testing: the SCT engine explored end-to-end.

   These tests exercise the full stack — pluggable scheduler, DPOR
   explorer, oracles, minimizer, schedule serialization — on real CSDS
   implementations:

   - the asynchronized list loses an update within the default bounds,
     the counterexample minimizes and replays bit-for-bit (the
     engine's whole point);
   - one lock-based algorithm per family survives an *exhaustive*
     bounded exploration of the same adversarial workload;
   - DPOR visits strictly fewer schedules than naive enumeration while
     agreeing with it on the verdict;
   - schedules round-trip through their run-length-encoded JSON form. *)

module Sct = Ascy_harness.Sct_run
module Explorer = Ascy_sct.Explorer
module Scheduler = Ascy_sct.Scheduler
module Replay = Ascy_sct.Replay

(* Two threads race an insert of the same absent key; enough to break
   any structure without concurrency control. *)
let duel name =
  Sct.mk_spec ~name ~initial:[ 2 ]
    ~script:
      [|
        [| (Sct.Insert, 1); (Sct.Remove, 2) |];
        [| (Sct.Insert, 1); (Sct.Insert, 2) |];
      |]
    ()

(* Small bounds that every family exhausts in well under a second. *)
let small_bounds =
  {
    Explorer.preemptions = Some 1;
    delays = Some 3;
    max_steps = 50_000;
    max_schedules = Some 50_000;
  }

(* ------------------------------------------------------------------ *)
(* Acceptance: find, minimize, replay                                  *)
(* ------------------------------------------------------------------ *)

let test_seq_list_counterexample () =
  let spec = duel "ll-async" in
  let finding, report = Sct.explore ~mode:Explorer.Dpor spec in
  match finding with
  | None -> Alcotest.fail "SCT failed to break the asynchronized list"
  | Some f ->
      Alcotest.(check bool) "found within a few schedules" true (report.Explorer.schedules < 100);
      Alcotest.(check bool)
        "minimized schedule is no longer than the original" true
        (Array.length f.Sct.minimized <= Array.length f.Sct.schedule);
      (* serialize, then replay twice: identical violation both times *)
      let path = Filename.temp_file "sct_counterexample" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Sct.save_finding ~path spec f;
          let _, expected, results = Sct.replay_file ~times:2 path in
          Alcotest.(check (option string))
            "stored violation matches the finding" (Some f.Sct.min_violation) expected;
          Alcotest.(check (list (option string)))
            "both replays reproduce the identical violation"
            [ Some f.Sct.min_violation; Some f.Sct.min_violation ]
            results)

let test_naive_agrees () =
  (* ground truth: naive enumeration also rejects the asynchronized list *)
  let finding, _ = Sct.explore ~mode:Explorer.Naive (duel "ll-async") in
  Alcotest.(check bool) "naive exploration also finds a violation" true (finding <> None)

(* ------------------------------------------------------------------ *)
(* Exhaustive small-bound exploration, one algorithm per family        *)
(* ------------------------------------------------------------------ *)

let exhaustive name () =
  let finding, report = Sct.explore ~mode:Explorer.Dpor ~bounds:small_bounds (duel name) in
  (match finding with
  | Some f -> Alcotest.fail (name ^ " violated: " ^ f.Sct.min_violation)
  | None -> ());
  Alcotest.(check bool) "bounded schedule space exhausted" true report.Explorer.complete

(* The same workload, same (default) bounds that break the
   asynchronized list: the lazy list survives them exhaustively. *)
let test_lazy_survives_default_bounds () =
  let finding, report = Sct.explore ~mode:Explorer.Dpor (duel "ll-lazy") in
  (match finding with
  | Some f -> Alcotest.fail ("ll-lazy violated: " ^ f.Sct.min_violation)
  | None -> ());
  Alcotest.(check bool) "schedule space exhausted at default bounds" true
    report.Explorer.complete

(* ------------------------------------------------------------------ *)
(* DPOR prunes                                                         *)
(* ------------------------------------------------------------------ *)

let test_dpor_prunes () =
  let _, naive = Sct.explore ~mode:Explorer.Naive ~bounds:small_bounds (duel "ll-lazy") in
  let _, dpor = Sct.explore ~mode:Explorer.Dpor ~bounds:small_bounds (duel "ll-lazy") in
  Alcotest.(check bool) "naive exploration exhausts" true naive.Explorer.complete;
  Alcotest.(check bool) "dpor exploration exhausts" true dpor.Explorer.complete;
  Alcotest.(check bool)
    (Printf.sprintf "dpor (%d) explores strictly fewer schedules than naive (%d)"
       dpor.Explorer.schedules naive.Explorer.schedules)
    true
    (dpor.Explorer.schedules < naive.Explorer.schedules)

(* ------------------------------------------------------------------ *)
(* Serialization round-trips                                           *)
(* ------------------------------------------------------------------ *)

let test_chunks_roundtrip () =
  let scheds =
    [ [||]; [| 0 |]; [| 0; 0; 1; 0 |]; [| 2; 2; 2; 1; 0; 0; 2 |]; Array.make 100 3 ]
  in
  List.iter
    (fun s ->
      Alcotest.(check (array int))
        "of_chunks (to_chunks s) = s" s
        (Scheduler.of_chunks (Scheduler.to_chunks s)))
    scheds

let test_schedule_file_roundtrip () =
  let prefix = [| 0; 0; 1; 1; 1; 0; 2 |] in
  let meta = [ ("algorithm", Ascy_util.Json.String "ll-lazy") ] in
  let path = Filename.temp_file "sct_roundtrip" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Replay.save ~path ~meta ~prefix ();
      let prefix', faults', meta' = Replay.load path in
      Alcotest.(check (array int)) "prefix round-trips" prefix prefix';
      Alcotest.(check bool) "no faults in a v1 file" true (faults' = []);
      Alcotest.(check bool) "meta round-trips" true
        (List.assoc_opt "algorithm" meta' = Some (Ascy_util.Json.String "ll-lazy")))

(* ------------------------------------------------------------------ *)
(* Cross-policy conformance                                            *)
(* ------------------------------------------------------------------ *)

(* The 3-thread adversarial workload of examples/schedule_fuzz — the
   spec behind the ll-lazy "2099 schedules" exhaustive pin. *)
let fuzz name =
  Sct.mk_spec ~name ~initial:[ 2 ]
    ~script:
      [|
        [| (Sct.Insert, 1); (Sct.Remove, 2); (Sct.Insert, 3) |];
        [| (Sct.Insert, 1); (Sct.Insert, 2); (Sct.Remove, 3) |];
        [| (Sct.Remove, 1); (Sct.Insert, 2) |];
      |]
    ()

(* Every randomized policy must find the known seq-list violation,
   push it through the same minimize/serialize pipeline, and replay it
   bit-for-bit — replay runs under the prefix scheduler, i.e. the
   exhaustive path's machinery, so this also checks that a randomized
   finding is an ordinary counterexample to the rest of the engine. *)
let policy_conformance policy () =
  let spec = duel "ll-async" in
  let finding, report = Sct.explore ~mode:Explorer.Dpor ~policy spec in
  match finding with
  | None ->
      Alcotest.fail
        (Explorer.policy_name policy ^ " failed to find the seq-list violation")
  | Some f ->
      Alcotest.(check bool)
        "randomized reports are never complete" false report.Explorer.complete;
      Alcotest.(check bool)
        "minimized schedule is no longer than the original" true
        (Array.length f.Sct.minimized <= Array.length f.Sct.schedule);
      let path = Filename.temp_file "sct_policy" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Sct.save_finding ~path spec f;
          let _, expected, results = Sct.replay_file ~times:2 path in
          Alcotest.(check (option string))
            "stored violation matches the finding" (Some f.Sct.min_violation) expected;
          Alcotest.(check (list (option string)))
            "both replays reproduce the identical violation"
            [ Some f.Sct.min_violation; Some f.Sct.min_violation ]
            results)

(* Same policy, same seed, run twice: byte-identical counterexample —
   the determinism contract randomized policies promise. *)
let test_policy_deterministic () =
  let policy = Explorer.Random { seed = 1; schedules = 64 } in
  let get () =
    match Sct.explore ~policy (duel "ll-async") with
    | Some f, _ -> (f.Sct.violation, f.Sct.schedule, f.Sct.minimized)
    | None, _ -> Alcotest.fail "random policy failed to find the violation"
  in
  let v1, s1, m1 = get () in
  let v2, s2, m2 = get () in
  Alcotest.(check string) "same violation" v1 v2;
  Alcotest.(check (array int)) "same schedule" s1 s2;
  Alcotest.(check (array int)) "same minimized prefix" m1 m2

(* The lazy list stays clean under a random budget as large as the
   exhaustive pin (2099 schedules on this very spec): sampling finds
   no false positives on a correct lock-based algorithm — this is the
   regression test for the scheduler's spin-fairness (an unfair random
   chooser starves lock holders into bogus step-limit verdicts). *)
let test_lazy_clean_under_random_budget () =
  let policy = Explorer.Random { seed = 1; schedules = 2099 } in
  let finding, report =
    Sct.explore ~model:(Ascy_mem.Sim.model_of_name "flat") ~policy (fuzz "ll-lazy")
  in
  (match finding with
  | Some f -> Alcotest.fail ("ll-lazy violated under random sampling: " ^ f.Sct.min_violation)
  | None -> ());
  Alcotest.(check int) "probe + full budget executed" 2100 report.Explorer.schedules;
  Alcotest.(check bool) "sampling never proves exhaustion" false report.Explorer.complete

(* PCT stays clean on algorithms that spin *with side effects*:
   sl-herlihy's insert retries its whole find on meeting a marked
   node and bst-tk's version try-lock fails a CAS per retry, so the
   read-level spin detector cannot demote them — only the chooser's
   priority-aging backstop (Scheduler.stall_limit) stops the
   top-priority thread from monopolizing the run into a bogus
   step-limit "livelock".  Both used to false-positive. *)
let test_pct_effectful_spin_fairness () =
  List.iter
    (fun name ->
      let policy = Explorer.Pct { seed = 1; depth = 3; schedules = 64 } in
      let finding, report =
        Sct.explore ~model:(Ascy_mem.Sim.model_of_name "flat") ~policy (fuzz name)
      in
      (match finding with
      | Some f ->
          Alcotest.fail
            (Printf.sprintf "%s violated under PCT sampling: %s" name f.Sct.min_violation)
      | None -> ());
      Alcotest.(check int)
        (name ^ ": probe + full budget executed")
        65 report.Explorer.schedules)
    [ "sl-herlihy"; "bst-tk" ]

(* The fuzz workload used to break bst-howley: a stale splice helper,
   unable to tell that another helper's unlink had already landed,
   released the frozen node back to [Clean] after it was unlinked — an
   insert could then attach a child to the unreachable node and report
   success (set conservation: net 2, membership 1).  The fix gives the
   splice record one shared unlink-outcome cell.  Exhaustive DPOR over
   the repaired protocol proves the whole 3-thread space clean, and
   pinning its size turns any future protocol change into a moved
   number rather than a silent re-shaping of the space. *)
let test_howley_fuzz_space_clean_and_pinned () =
  let finding, report =
    Sct.explore ~mode:Explorer.Dpor
      ~model:(Ascy_mem.Sim.model_of_name "flat")
      (fuzz "bst-howley")
  in
  (match finding with
  | Some f -> Alcotest.fail ("bst-howley violated: " ^ f.Sct.min_violation)
  | None -> ());
  Alcotest.(check bool) "schedule space exhausted" true report.Explorer.complete;
  Alcotest.(check int) "schedule-space size pinned" 3415 report.Explorer.schedules

(* The PathCAS list: every update is a single k-CAS commit, so its
   whole schedule space is small — exhaustive DPOR (with the race
   detector armed) proves the 2-thread duel and the 3-thread fuzz
   spaces clean, and pins their sizes: any change to the k-CAS commit's
   scheduling semantics (one decision point per commit, every touched
   line a write for dependency purposes) re-shapes these spaces. *)
let test_pathcas_spaces_clean_and_pinned () =
  let explore spec =
    let finding, report =
      Sct.explore ~mode:Explorer.Dpor ~races:true
        ~model:(Ascy_mem.Sim.model_of_name "flat")
        spec
    in
    (match finding with
    | Some f -> Alcotest.fail ("ll-pathcas violated: " ^ f.Sct.min_violation)
    | None -> ());
    Alcotest.(check bool) "schedule space exhausted" true report.Explorer.complete;
    report.Explorer.schedules
  in
  Alcotest.(check int) "duel schedule-space size pinned" 6 (explore (duel "ll-pathcas"));
  Alcotest.(check int) "fuzz schedule-space size pinned" 50 (explore (fuzz "ll-pathcas"))

(* PCT's depth guarantee, both directions: at depth 1 there are no
   change points, so every schedule is a serial execution ordered by
   thread priority — a race needing one preemption mid-operation
   cannot manifest, at any seed or budget.  At depth 2 the single
   change point provides exactly that preemption. *)
let test_pct_depth_guarantee () =
  let spec = duel "ll-async" in
  let explore depth =
    fst (Sct.explore ~policy:(Explorer.Pct { seed = 1; depth; schedules = 64 }) spec)
  in
  (match explore 1 with
  | Some f ->
      Alcotest.fail ("depth-1 PCT (serial executions) manifested the bug: " ^ f.Sct.violation)
  | None -> ());
  Alcotest.(check bool) "depth-2 PCT finds the violation" true (explore 2 <> None)

(* ------------------------------------------------------------------ *)
(* The incomplete flag                                                 *)
(* ------------------------------------------------------------------ *)

(* A budget-exhausted exploration is not a proof of absence; the
   explorer always knew (report.complete) but summaries dropped it.
   report_json must carry it both ways. *)
let test_incomplete_flag_propagates () =
  let module J = Ascy_util.Json in
  let field name = function
    | J.Obj fields -> List.assoc name fields
    | _ -> Alcotest.fail "report_json did not produce an object"
  in
  (* truncated: a 5-schedule budget cannot exhaust ll-lazy's space *)
  let truncated = { small_bounds with Explorer.max_schedules = Some 5 } in
  let finding, report = Sct.explore ~bounds:truncated (duel "ll-lazy") in
  Alcotest.(check bool) "no violation in the truncated prefix" true (finding = None);
  Alcotest.(check bool) "report knows it is incomplete" false report.Explorer.complete;
  let j = Sct.report_json report in
  Alcotest.(check bool) "incomplete surfaces in JSON" true (field "incomplete" j = J.Bool true);
  Alcotest.(check bool) "complete mirrors it" true (field "complete" j = J.Bool false);
  (* exhausted: the same exploration under real bounds *)
  let _, full = Sct.explore ~bounds:small_bounds (duel "ll-lazy") in
  let j = Sct.report_json ~policy:Explorer.Exhaustive ~domains:1 full in
  Alcotest.(check bool) "exhausted space is not incomplete" true
    (field "incomplete" j = J.Bool false);
  Alcotest.(check bool) "policy name serialized" true
    (field "policy" j = J.String "exhaustive")

let test_bad_schedule_file () =
  let path = Filename.temp_file "sct_bad" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"version\": 1, \"kind\": \"something-else\"}";
      close_out oc;
      Alcotest.check_raises "wrong kind rejected"
        (Replay.Bad_schedule "not an ascy-sct-schedule") (fun () ->
          ignore (Replay.load path)))

let suite =
  [
    Alcotest.test_case "seq list: find, minimize, replay bit-for-bit" `Quick
      test_seq_list_counterexample;
    Alcotest.test_case "seq list: naive agrees" `Quick test_naive_agrees;
    Alcotest.test_case "lazy list survives default bounds exhaustively" `Quick
      test_lazy_survives_default_bounds;
    Alcotest.test_case "exhaustive: ll-lazy (list)" `Quick (exhaustive "ll-lazy");
    Alcotest.test_case "exhaustive: ht-lazy (hash table)" `Quick (exhaustive "ht-lazy");
    Alcotest.test_case "exhaustive: sl-herlihy (skip list)" `Quick (exhaustive "sl-herlihy");
    Alcotest.test_case "exhaustive: bst-tk (BST)" `Quick (exhaustive "bst-tk");
    Alcotest.test_case "dpor explores strictly fewer schedules" `Quick test_dpor_prunes;
    Alcotest.test_case "chunk encoding round-trips" `Quick test_chunks_roundtrip;
    Alcotest.test_case "schedule file round-trips" `Quick test_schedule_file_roundtrip;
    Alcotest.test_case "malformed schedule file rejected" `Quick test_bad_schedule_file;
    Alcotest.test_case "random policy: find, minimize, replay bit-for-bit" `Quick
      (policy_conformance (Explorer.Random { seed = 1; schedules = 64 }));
    Alcotest.test_case "pct policy: find, minimize, replay bit-for-bit" `Quick
      (policy_conformance (Explorer.Pct { seed = 1; depth = 2; schedules = 64 }));
    Alcotest.test_case "swarm policy: find, minimize, replay bit-for-bit" `Quick
      (policy_conformance (Explorer.Swarm { seeds = [ 1; 2; 3; 4 ]; schedules = 16 }));
    Alcotest.test_case "random policy is seed-deterministic" `Quick test_policy_deterministic;
    Alcotest.test_case "lazy list clean under a 2099-schedule random budget" `Quick
      test_lazy_clean_under_random_budget;
    Alcotest.test_case "pct stays fair under effect-ful spin loops" `Quick
      test_pct_effectful_spin_fairness;
    Alcotest.test_case "pct depth guarantee: missed at d-1, found at d" `Quick
      test_pct_depth_guarantee;
    Alcotest.test_case "bst-howley fuzz space clean and pinned" `Quick
      test_howley_fuzz_space_clean_and_pinned;
    Alcotest.test_case "ll-pathcas duel+fuzz spaces clean and pinned" `Quick
      test_pathcas_spaces_clean_and_pinned;
    Alcotest.test_case "incomplete flag propagates into report JSON" `Quick
      test_incomplete_flag_propagates;
  ]
