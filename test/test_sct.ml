(* Systematic concurrency testing: the SCT engine explored end-to-end.

   These tests exercise the full stack — pluggable scheduler, DPOR
   explorer, oracles, minimizer, schedule serialization — on real CSDS
   implementations:

   - the asynchronized list loses an update within the default bounds,
     the counterexample minimizes and replays bit-for-bit (the
     engine's whole point);
   - one lock-based algorithm per family survives an *exhaustive*
     bounded exploration of the same adversarial workload;
   - DPOR visits strictly fewer schedules than naive enumeration while
     agreeing with it on the verdict;
   - schedules round-trip through their run-length-encoded JSON form. *)

module Sct = Ascy_harness.Sct_run
module Explorer = Ascy_sct.Explorer
module Scheduler = Ascy_sct.Scheduler
module Replay = Ascy_sct.Replay

(* Two threads race an insert of the same absent key; enough to break
   any structure without concurrency control. *)
let duel name =
  Sct.mk_spec ~name ~initial:[ 2 ]
    ~script:
      [|
        [| (Sct.Insert, 1); (Sct.Remove, 2) |];
        [| (Sct.Insert, 1); (Sct.Insert, 2) |];
      |]
    ()

(* Small bounds that every family exhausts in well under a second. *)
let small_bounds =
  {
    Explorer.preemptions = Some 1;
    delays = Some 3;
    max_steps = 50_000;
    max_schedules = Some 50_000;
  }

(* ------------------------------------------------------------------ *)
(* Acceptance: find, minimize, replay                                  *)
(* ------------------------------------------------------------------ *)

let test_seq_list_counterexample () =
  let spec = duel "ll-async" in
  let finding, report = Sct.explore ~mode:Explorer.Dpor spec in
  match finding with
  | None -> Alcotest.fail "SCT failed to break the asynchronized list"
  | Some f ->
      Alcotest.(check bool) "found within a few schedules" true (report.Explorer.schedules < 100);
      Alcotest.(check bool)
        "minimized schedule is no longer than the original" true
        (Array.length f.Sct.minimized <= Array.length f.Sct.schedule);
      (* serialize, then replay twice: identical violation both times *)
      let path = Filename.temp_file "sct_counterexample" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Sct.save_finding ~path spec f;
          let _, expected, results = Sct.replay_file ~times:2 path in
          Alcotest.(check (option string))
            "stored violation matches the finding" (Some f.Sct.min_violation) expected;
          Alcotest.(check (list (option string)))
            "both replays reproduce the identical violation"
            [ Some f.Sct.min_violation; Some f.Sct.min_violation ]
            results)

let test_naive_agrees () =
  (* ground truth: naive enumeration also rejects the asynchronized list *)
  let finding, _ = Sct.explore ~mode:Explorer.Naive (duel "ll-async") in
  Alcotest.(check bool) "naive exploration also finds a violation" true (finding <> None)

(* ------------------------------------------------------------------ *)
(* Exhaustive small-bound exploration, one algorithm per family        *)
(* ------------------------------------------------------------------ *)

let exhaustive name () =
  let finding, report = Sct.explore ~mode:Explorer.Dpor ~bounds:small_bounds (duel name) in
  (match finding with
  | Some f -> Alcotest.fail (name ^ " violated: " ^ f.Sct.min_violation)
  | None -> ());
  Alcotest.(check bool) "bounded schedule space exhausted" true report.Explorer.complete

(* The same workload, same (default) bounds that break the
   asynchronized list: the lazy list survives them exhaustively. *)
let test_lazy_survives_default_bounds () =
  let finding, report = Sct.explore ~mode:Explorer.Dpor (duel "ll-lazy") in
  (match finding with
  | Some f -> Alcotest.fail ("ll-lazy violated: " ^ f.Sct.min_violation)
  | None -> ());
  Alcotest.(check bool) "schedule space exhausted at default bounds" true
    report.Explorer.complete

(* ------------------------------------------------------------------ *)
(* DPOR prunes                                                         *)
(* ------------------------------------------------------------------ *)

let test_dpor_prunes () =
  let _, naive = Sct.explore ~mode:Explorer.Naive ~bounds:small_bounds (duel "ll-lazy") in
  let _, dpor = Sct.explore ~mode:Explorer.Dpor ~bounds:small_bounds (duel "ll-lazy") in
  Alcotest.(check bool) "naive exploration exhausts" true naive.Explorer.complete;
  Alcotest.(check bool) "dpor exploration exhausts" true dpor.Explorer.complete;
  Alcotest.(check bool)
    (Printf.sprintf "dpor (%d) explores strictly fewer schedules than naive (%d)"
       dpor.Explorer.schedules naive.Explorer.schedules)
    true
    (dpor.Explorer.schedules < naive.Explorer.schedules)

(* ------------------------------------------------------------------ *)
(* Serialization round-trips                                           *)
(* ------------------------------------------------------------------ *)

let test_chunks_roundtrip () =
  let scheds =
    [ [||]; [| 0 |]; [| 0; 0; 1; 0 |]; [| 2; 2; 2; 1; 0; 0; 2 |]; Array.make 100 3 ]
  in
  List.iter
    (fun s ->
      Alcotest.(check (array int))
        "of_chunks (to_chunks s) = s" s
        (Scheduler.of_chunks (Scheduler.to_chunks s)))
    scheds

let test_schedule_file_roundtrip () =
  let prefix = [| 0; 0; 1; 1; 1; 0; 2 |] in
  let meta = [ ("algorithm", Ascy_util.Json.String "ll-lazy") ] in
  let path = Filename.temp_file "sct_roundtrip" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Replay.save ~path ~meta ~prefix ();
      let prefix', faults', meta' = Replay.load path in
      Alcotest.(check (array int)) "prefix round-trips" prefix prefix';
      Alcotest.(check bool) "no faults in a v1 file" true (faults' = []);
      Alcotest.(check bool) "meta round-trips" true
        (List.assoc_opt "algorithm" meta' = Some (Ascy_util.Json.String "ll-lazy")))

let test_bad_schedule_file () =
  let path = Filename.temp_file "sct_bad" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"version\": 1, \"kind\": \"something-else\"}";
      close_out oc;
      Alcotest.check_raises "wrong kind rejected"
        (Replay.Bad_schedule "not an ascy-sct-schedule") (fun () ->
          ignore (Replay.load path)))

let suite =
  [
    Alcotest.test_case "seq list: find, minimize, replay bit-for-bit" `Quick
      test_seq_list_counterexample;
    Alcotest.test_case "seq list: naive agrees" `Quick test_naive_agrees;
    Alcotest.test_case "lazy list survives default bounds exhaustively" `Quick
      test_lazy_survives_default_bounds;
    Alcotest.test_case "exhaustive: ll-lazy (list)" `Quick (exhaustive "ll-lazy");
    Alcotest.test_case "exhaustive: ht-lazy (hash table)" `Quick (exhaustive "ht-lazy");
    Alcotest.test_case "exhaustive: sl-herlihy (skip list)" `Quick (exhaustive "sl-herlihy");
    Alcotest.test_case "exhaustive: bst-tk (BST)" `Quick (exhaustive "bst-tk");
    Alcotest.test_case "dpor explores strictly fewer schedules" `Quick test_dpor_prunes;
    Alcotest.test_case "chunk encoding round-trips" `Quick test_chunks_roundtrip;
    Alcotest.test_case "schedule file round-trips" `Quick test_schedule_file_roundtrip;
    Alcotest.test_case "malformed schedule file rejected" `Quick test_bad_schedule_file;
  ]
