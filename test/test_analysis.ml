(* The analysis layer: happens-before race detection and ASCY
   conformance classification.

   Race detector, seeded both ways:
   - unsynchronized plain writes from two threads are flagged;
   - CAS-ordered, ttas-lock-protected and seqlock-ordered writes are
     not (every handoff is an RMW acquire of the releasing store);
   - a plain writer against a plain reader is deliberately not flagged
     (asynchronized searches race with updates by design — ASCY1);
   - through the SCT engine, the asynchronized list is rejected with a
     data-race violation, and one lock-based algorithm per family
     survives a bounded exploration with the oracle armed.

   Conformance, golden observed vectors:
   - ll-harris fails ASCY1-2 for the declared reason (restarting,
     cleaning searches; restarting parses) and passes 3-4;
   - ll-harris-opt, ll-lazy and the asynchronized baseline measure
     fully compliant, the baseline at ratio exactly 1. *)

module Sim = Ascy_mem.Sim
module Mem = Ascy_mem.Sim.Mem
module P = Ascy_platform.Platform
module Race = Ascy_analysis.Race
module Check = Ascy_analysis.Ascy_check
module Registry = Ascylib.Registry
module Sct = Ascy_harness.Sct_run
module Explorer = Ascy_sct.Explorer

(* Run [body] (per-tid thunks) under the simulator with the race
   detector installed; return the distinct-race count. *)
let races_of ~nthreads body =
  Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads (fun sim ->
      let setup = body () in
      Sim.warm sim;
      let d = Race.create ~nthreads in
      Sim.set_observer sim (Some (Race.observer d));
      ignore (Sim.run sim (Array.init nthreads setup));
      Race.total d)

(* ------------------------------------------------------------------ *)
(* Seeded races: the detector must fire                                *)
(* ------------------------------------------------------------------ *)

let test_unsync_writers_flagged () =
  let n =
    races_of ~nthreads:2 (fun () ->
        let c = Mem.make_fresh 0 in
        fun tid () ->
          for i = 1 to 50 do
            Mem.set c ((tid * 1000) + i)
          done)
  in
  Alcotest.(check bool) "two plain writers race" true (n > 0)

let test_unsync_counter_flagged () =
  (* the classic lost-update pattern: read, add, plain store *)
  let n =
    races_of ~nthreads:3 (fun () ->
        let c = Mem.make_fresh 0 in
        fun _tid () ->
          for _ = 1 to 30 do
            Mem.set c (Mem.get c + 1)
          done)
  in
  Alcotest.(check bool) "unsynchronized counter races" true (n > 0)

(* ------------------------------------------------------------------ *)
(* Synchronized patterns: the detector must stay silent                *)
(* ------------------------------------------------------------------ *)

let test_cas_ordered_clean () =
  let n =
    races_of ~nthreads:4 (fun () ->
        let c = Mem.make_fresh 0 in
        fun _tid () ->
          for _ = 1 to 50 do
            let rec incr () =
              let v = Mem.get c in
              if not (Mem.cas c v (v + 1)) then incr ()
            in
            incr ()
          done)
  in
  Alcotest.(check int) "CAS-only updates are ordered" 0 n

let test_lock_protected_clean () =
  let module L = Ascy_locks.Ttas.Make (Mem) in
  let n =
    races_of ~nthreads:4 (fun () ->
        let lock = L.create_fresh () in
        let data = Mem.make_fresh 0 in
        fun tid () ->
          for i = 1 to 40 do
            L.acquire lock;
            Mem.set data ((tid * 1000) + i);
            L.release lock
          done)
  in
  Alcotest.(check int) "ttas-protected plain stores are ordered" 0 n

let test_seqlock_ordered_clean () =
  let module S = Ascy_locks.Seqlock.Make (Mem) in
  let n =
    races_of ~nthreads:3 (fun () ->
        let sl = S.create_fresh () in
        let data = Mem.make_fresh 0 in
        fun tid () ->
          if tid = 0 then
            (* optimistic readers: retries, never writes *)
            for _ = 1 to 40 do
              ignore (S.read sl (fun () -> Mem.get data))
            done
          else
            for i = 1 to 40 do
              ignore (S.write_acquire sl);
              Mem.set data ((tid * 1000) + i);
              S.write_release sl
            done)
  in
  Alcotest.(check int) "seqlock write sections are ordered" 0 n

let test_write_read_not_flagged () =
  (* an ASCY1 search racing an update is the paper's designed behavior *)
  let n =
    races_of ~nthreads:2 (fun () ->
        let c = Mem.make_fresh 0 in
        fun tid () ->
          if tid = 0 then
            for i = 1 to 50 do
              Mem.set c i
            done
          else
            for _ = 1 to 50 do
              ignore (Mem.get c)
            done)
  in
  Alcotest.(check int) "plain write vs plain read is exempt" 0 n

(* ------------------------------------------------------------------ *)
(* Through the SCT engine                                              *)
(* ------------------------------------------------------------------ *)

let duel name =
  Sct.mk_spec ~name ~initial:[ 2 ]
    ~script:
      [|
        [| (Sct.Insert, 1); (Sct.Remove, 2) |];
        [| (Sct.Insert, 1); (Sct.Insert, 2) |];
      |]
    ()

let small_bounds =
  {
    Explorer.preemptions = Some 1;
    delays = Some 3;
    max_steps = 50_000;
    max_schedules = Some 50_000;
  }

let test_sct_flags_async_list () =
  let finding, _ = Sct.explore ~mode:Explorer.Dpor ~races:true (duel "ll-async") in
  match finding with
  | None -> Alcotest.fail "race oracle missed the asynchronized list"
  | Some f ->
      let is_race v =
        (* the race oracle runs before the structural/linearizability
           oracles, so the violation must be a data race *)
        let re = "data race" in
        let n = String.length v and m = String.length re in
        let rec at i = i + m <= n && (String.sub v i m = re || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "violation is a data race" true (is_race f.Sct.min_violation)

let race_free name () =
  let finding, _ =
    Sct.explore ~mode:Explorer.Dpor ~bounds:small_bounds ~races:true (duel name)
  in
  match finding with
  | None -> ()
  | Some f ->
      Alcotest.fail (Printf.sprintf "%s violated under race oracle: %s" name f.Sct.min_violation)

(* ------------------------------------------------------------------ *)
(* Conformance goldens                                                 *)
(* ------------------------------------------------------------------ *)

let golden_names = [ "ll-async"; "ll-lazy"; "ll-harris"; "ll-harris-opt" ]

let golden_reports =
  lazy (Check.sweep ~entries:(List.map Registry.by_name golden_names) ())

let report_of name =
  List.find
    (fun (r : Check.report) -> r.Check.entry.Registry.name = name)
    (Lazy.force golden_reports)

let check_vector name expected () =
  let r = report_of name in
  Alcotest.(check string)
    (name ^ " observed vector") expected
    (Ascy_core.Ascy.to_string r.Check.observed);
  Alcotest.(check bool) (name ^ " matches declared") true (Check.matches r)

let test_harris_fails_for_the_right_reason () =
  let r = report_of "ll-harris" in
  let m = r.Check.measured in
  Alcotest.(check bool) "some searches restarted or cleaned" true (m.Check.m_search_bad > 0);
  Alcotest.(check bool) "some parses restarted" true (m.Check.m_parse_bad > 0);
  Alcotest.(check bool) "still within the failed-update bound (ASCY3)" true
    (m.Check.m_failed_frac <= 0.10);
  Alcotest.(check int) "no waiting on successful updates (ASCY4)" 0 m.Check.m_success_waits;
  Alcotest.(check bool) "witness profiles recorded for each violated rule" true
    (List.mem_assoc "ascy1" r.Check.witnesses && List.mem_assoc "ascy2" r.Check.witnesses)

let test_async_baseline_ratio_is_one () =
  let r = report_of "ll-async" in
  Alcotest.(check (float 0.001)) "baseline measures itself at 1.0" 1.0
    r.Check.measured.Check.m_ratio

let suite =
  [
    Alcotest.test_case "race: unsynchronized writers flagged" `Quick test_unsync_writers_flagged;
    Alcotest.test_case "race: unsynchronized counter flagged" `Quick test_unsync_counter_flagged;
    Alcotest.test_case "race: CAS-ordered clean" `Quick test_cas_ordered_clean;
    Alcotest.test_case "race: ttas-protected clean" `Quick test_lock_protected_clean;
    Alcotest.test_case "race: seqlock-ordered clean" `Quick test_seqlock_ordered_clean;
    Alcotest.test_case "race: write vs read exempt" `Quick test_write_read_not_flagged;
    Alcotest.test_case "race+sct: async list rejected" `Quick test_sct_flags_async_list;
    Alcotest.test_case "race+sct: ll-lazy race-free" `Slow (race_free "ll-lazy");
    Alcotest.test_case "race+sct: ht-clht-lb race-free" `Slow (race_free "ht-clht-lb");
    Alcotest.test_case "race+sct: sl-herlihy race-free" `Slow (race_free "sl-herlihy");
    Alcotest.test_case "race+sct: bst-tk race-free" `Slow (race_free "bst-tk");
    Alcotest.test_case "conformance: ll-async fully compliant" `Slow
      (check_vector "ll-async" "1234");
    Alcotest.test_case "conformance: ll-lazy fully compliant" `Slow
      (check_vector "ll-lazy" "1234");
    Alcotest.test_case "conformance: ll-harris fails ASCY1-2 only" `Slow
      (check_vector "ll-harris" "--34");
    Alcotest.test_case "conformance: ll-harris-opt fully compliant" `Slow
      (check_vector "ll-harris-opt" "1234");
    Alcotest.test_case "conformance: harris violations are the declared ones" `Slow
      test_harris_fails_for_the_right_reason;
    Alcotest.test_case "conformance: baseline ratio 1.0" `Slow
      test_async_baseline_ratio_is_one;
  ]
