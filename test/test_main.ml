let () =
  let suites =
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("kcas", Test_kcas.suite);
      ("locks", Test_locks.suite);
      ("ssmem+rcu", Test_ssmem.suite);
    ]
    @ Test_linkedlist.suites @ Test_hashtable.suites @ Test_skiplist.suites @ Test_bst.suites
    @ [
        ("registry", Test_registry.suite);
        ("harness", Test_harness.suite);
        ("history", Test_history.suite);
        ("sct", Test_sct.suite);
        ("explore", Test_explore.suite);
        ("fault", Test_fault.suite);
        ("analysis", Test_analysis.suite);
        ("models", Test_models.suite);
        ("service", Test_service.suite);
        ("internals", Test_internals.suite);
      ]
  in
  Alcotest.run "ascylib" suites
