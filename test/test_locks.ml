(* Mutual-exclusion tests for every lock, executed inside the simulator
   (deterministic adversarial schedules) and natively with domains. *)

module Sim = Ascy_mem.Sim
module SMem = Ascy_mem.Sim.Mem
module P = Ascy_platform.Platform

(* Generic exclusion check: [n] threads increment a plain (non-atomic)
   cell under the lock; any mutual-exclusion violation loses updates. *)
let sim_exclusion ~acquire ~release ~mk () =
  Sim.with_sim ~seed:21 ~jitter:2 ~platform:P.xeon20 ~nthreads:6 (fun sim ->
      let lock = mk () in
      let cell = SMem.make_fresh 0 in
      let per = 300 in
      let body _ () =
        for _ = 1 to per do
          acquire lock;
          let v = SMem.get cell in
          SMem.work 5;
          SMem.set cell (v + 1);
          release lock
        done
      in
      ignore (Sim.run sim (Array.init 6 body));
      Alcotest.(check int) "no lost updates under lock" (6 * per) (SMem.get cell))

module Ttas_s = Ascy_locks.Ttas.Make (SMem)
module Ticket_s = Ascy_locks.Ticket.Make (SMem)
module Rw_s = Ascy_locks.Rw_lock.Make (SMem)
module Seq_s = Ascy_locks.Seqlock.Make (SMem)
module Tp_s = Ascy_locks.Ticket_pair.Make (SMem)
module Mcs_s = Ascy_locks.Mcs.Make (SMem)

let test_ttas_exclusion =
  sim_exclusion ~acquire:Ttas_s.acquire ~release:Ttas_s.release ~mk:Ttas_s.create_fresh

let test_ticket_exclusion =
  sim_exclusion ~acquire:Ticket_s.acquire ~release:Ticket_s.release ~mk:Ticket_s.create_fresh

let test_rw_write_exclusion =
  sim_exclusion ~acquire:Rw_s.write_acquire ~release:Rw_s.write_release ~mk:Rw_s.create_fresh

let test_ttas_try () =
  Sim.with_sim ~seed:2 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let body () =
        let l = Ttas_s.create_fresh () in
        assert (Ttas_s.try_acquire l);
        assert (not (Ttas_s.try_acquire l));
        Ttas_s.release l;
        assert (Ttas_s.try_acquire l)
      in
      ignore (Sim.run sim [| body |]))

let test_ticket_fifo () =
  (* ticket lock must serve acquisitions in ticket order *)
  Sim.with_sim ~seed:23 ~platform:P.xeon20 ~nthreads:4 (fun sim ->
      let l = Ticket_s.create_fresh () in
      let order = SMem.make_fresh [] in
      let body tid () =
        for _ = 1 to 50 do
          Ticket_s.acquire l;
          SMem.set order (tid :: SMem.get order);
          Ticket_s.release l
        done
      in
      ignore (Sim.run sim (Array.init 4 body));
      Alcotest.(check int) "all sections ran" 200 (List.length (SMem.get order)))

let test_ticket_versioning () =
  Sim.with_sim ~seed:3 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let body () =
        let l = Ticket_s.create_fresh () in
        let v = Ticket_s.version l in
        assert (Ticket_s.try_acquire_version l v);
        (* stale version must fail while held and after release *)
        assert (not (Ticket_s.try_acquire_version l v));
        Ticket_s.release l;
        assert (not (Ticket_s.try_acquire_version l v));
        let v' = Ticket_s.version l in
        assert (v' = v + 1);
        assert (Ticket_s.try_acquire_version l v');
        Ticket_s.release l
      in
      ignore (Sim.run sim [| body |]))

let test_rw_readers_parallel_writer_excluded () =
  Sim.with_sim ~seed:31 ~jitter:1 ~platform:P.xeon20 ~nthreads:5 (fun sim ->
      let l = Rw_s.create_fresh () in
      let data = SMem.make_fresh 0 in
      let bad = SMem.make_fresh 0 in
      let body tid () =
        if tid = 0 then
          for _ = 1 to 100 do
            Rw_s.write_acquire l;
            SMem.set data 1;
            SMem.work 10;
            SMem.set data 0;
            Rw_s.write_release l
          done
        else
          for _ = 1 to 100 do
            Rw_s.read_acquire l;
            if SMem.get data <> 0 then SMem.set bad 1;
            Rw_s.read_release l
          done
      in
      ignore (Sim.run sim (Array.init 5 body));
      Alcotest.(check int) "readers never observe writer mid-flight" 0 (SMem.get bad))

let test_seqlock_consistent_reads () =
  Sim.with_sim ~seed:37 ~jitter:2 ~platform:P.xeon20 ~nthreads:4 (fun sim ->
      let l = Seq_s.create_fresh () in
      let a = SMem.make_fresh 0 and b = SMem.make_fresh 0 in
      let bad = SMem.make_fresh 0 in
      let body tid () =
        if tid = 0 then
          for i = 1 to 200 do
            ignore (Seq_s.write_acquire l);
            SMem.set a i;
            SMem.work 8;
            SMem.set b i;
            Seq_s.write_release l
          done
        else
          for _ = 1 to 200 do
            let x, y = Seq_s.read l (fun () -> (SMem.get a, SMem.get b)) in
            if x <> y then SMem.set bad 1
          done
      in
      ignore (Sim.run sim (Array.init 4 body));
      Alcotest.(check int) "seqlock reads are atomic" 0 (SMem.get bad))

(* MCS queue lock: exclusion + FIFO handoff under adversarial schedules. *)
let test_mcs_exclusion () =
  Sim.with_sim ~seed:27 ~jitter:2 ~platform:P.xeon20 ~nthreads:6 (fun sim ->
      let lock = Mcs_s.create_fresh () in
      let cell = SMem.make_fresh 0 in
      let per = 250 in
      let body _ () =
        for _ = 1 to per do
          let h = Mcs_s.acquire lock in
          let v = SMem.get cell in
          SMem.work 5;
          SMem.set cell (v + 1);
          Mcs_s.release lock h
        done
      in
      ignore (Sim.run sim (Array.init 6 body));
      Alcotest.(check int) "no lost updates under MCS" (6 * per) (SMem.get cell))

let test_mcs_uncontended () =
  Sim.with_sim ~seed:28 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let body () =
        let lock = Mcs_s.create_fresh () in
        let h = Mcs_s.acquire lock in
        Mcs_s.release lock h;
        let h2 = Mcs_s.acquire lock in
        Mcs_s.release lock h2
      in
      ignore (Sim.run sim [| body |]);
      Alcotest.(check pass) "uncontended acquire/release cycles" () ())

(* The packed two-edge ticket lock used by BST-TK. *)
let test_ticket_pair_semantics () =
  Sim.with_sim ~seed:4 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let body () =
        let l = Tp_s.create_fresh () in
        let vl, vr = Tp_s.versions l in
        assert (vl = 0 && vr = 0);
        (* sides are independent *)
        assert (Tp_s.try_acquire_version l Tp_s.L vl);
        assert (Tp_s.is_locked l Tp_s.L);
        assert (not (Tp_s.is_locked l Tp_s.R));
        assert (Tp_s.try_acquire_version l Tp_s.R vr);
        (* stale versions fail while held *)
        assert (not (Tp_s.try_acquire_version l Tp_s.L vl));
        Tp_s.release l Tp_s.L;
        Tp_s.release l Tp_s.R;
        (* versions bumped: old versions now stale *)
        assert (not (Tp_s.try_acquire_version l Tp_s.L 0));
        let vl, vr = Tp_s.versions l in
        assert (vl = 1 && vr = 1);
        (* acquire both with one CAS *)
        assert (Tp_s.try_acquire_both l vl vr);
        assert (Tp_s.is_locked l Tp_s.L && Tp_s.is_locked l Tp_s.R);
        (* acquire-both fails when anything is held *)
        assert (not (Tp_s.try_acquire_both l vl vr))
      in
      ignore (Sim.run sim [| body |]))

let test_ticket_pair_exclusion () =
  Sim.with_sim ~seed:25 ~jitter:2 ~platform:P.xeon20 ~nthreads:6 (fun sim ->
      let l = Tp_s.create_fresh () in
      let cell = SMem.make_fresh 0 in
      let per = 200 in
      let body _ () =
        for _ = 1 to per do
          let rec acquire () =
            let vl, vr = Tp_s.versions l in
            if not (Tp_s.try_acquire_both l vl vr) then begin
              SMem.cpu_relax ();
              acquire ()
            end
          in
          acquire ();
          let v = SMem.get cell in
          SMem.work 4;
          SMem.set cell (v + 1);
          Tp_s.release l Tp_s.L;
          Tp_s.release l Tp_s.R
        done
      in
      ignore (Sim.run sim (Array.init 6 body));
      Alcotest.(check int) "no lost updates under pair lock" (6 * per) (SMem.get cell))

(* ---- Systematic exploration: exclusion/handoff on every schedule ---- *)

module Explorer = Ascy_sct.Explorer

let sct_bounds =
  {
    Explorer.preemptions = Some 2;
    delays = Some 4;
    max_steps = 50_000;
    max_schedules = Some 20_000;
  }

(* Mutual exclusion and handoff under SCT: explore *every* bounded
   interleaving of two threads taking the lock twice each.  Exclusion is
   tracked with a plain OCaml counter — the scheduler can only switch
   threads at simulated memory accesses, so a second thread inside the
   section is observed exactly.  Handoff is the run terminating at all:
   a release that failed to wake the waiter would spin past the step
   budget and be reported as a livelock.  The exploration must exhaust
   its bounds — a "pass" that only sampled the space proves nothing. *)
let sct_exclusion ~acquire ~release ~mk () =
  let nthreads = 2 and per = 2 in
  let run ~sched =
    Sim.with_sim ~seed:1 ~platform:P.xeon20 ~nthreads (fun sim ->
        let lock = mk () in
        let cell = SMem.make_fresh 0 in
        let inside = ref 0 in
        let overlap = ref false in
        let body _ () =
          for _ = 1 to per do
            let h = acquire lock in
            incr inside;
            if !inside > 1 then overlap := true;
            let v = SMem.get cell in
            SMem.work 3;
            SMem.set cell (v + 1);
            decr inside;
            release lock h
          done
        in
        match Sim.run ~scheduler:sched sim (Array.init nthreads body) with
        | exception Sim.Thread_failure (tid, e, _) ->
            Some (Printf.sprintf "thread %d crashed: %s" tid (Printexc.to_string e))
        | _ ->
            if !overlap then Some "two threads inside the critical section"
            else if SMem.get cell <> nthreads * per then
              Some
                (Printf.sprintf "lost updates under lock: %d of %d" (SMem.get cell)
                   (nthreads * per))
            else None)
  in
  let r = Explorer.explore ~mode:Explorer.Dpor ~bounds:sct_bounds ~run () in
  (match r.Explorer.failure with Some f -> Alcotest.fail f.Explorer.f_desc | None -> ());
  Alcotest.(check bool) "bounded schedule space exhausted" true r.Explorer.complete

let test_sct_ttas =
  sct_exclusion ~acquire:(fun l -> Ttas_s.acquire l) ~release:(fun l () -> Ttas_s.release l)
    ~mk:Ttas_s.create_fresh

let test_sct_ticket =
  sct_exclusion
    ~acquire:(fun l -> Ticket_s.acquire l)
    ~release:(fun l () -> Ticket_s.release l)
    ~mk:Ticket_s.create_fresh

let test_sct_mcs =
  sct_exclusion ~acquire:Mcs_s.acquire ~release:Mcs_s.release ~mk:Mcs_s.create_fresh

let test_sct_rw_writers =
  sct_exclusion
    ~acquire:(fun l -> Rw_s.write_acquire l)
    ~release:(fun l () -> Rw_s.write_release l)
    ~mk:Rw_s.create_fresh

(* Seqlock: a writer keeps a = b; on every bounded interleaving the
   reader's snapshot must be consistent (the retry protocol is what is
   under test, so the reader does not lock). *)
let test_sct_seqlock () =
  let run ~sched =
    Sim.with_sim ~seed:1 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
        let l = Seq_s.create_fresh () in
        let a = SMem.make_fresh 0 and b = SMem.make_fresh 0 in
        let torn = ref None in
        let writer () =
          for i = 1 to 2 do
            ignore (Seq_s.write_acquire l);
            SMem.set a i;
            SMem.work 3;
            SMem.set b i;
            Seq_s.write_release l
          done
        in
        let reader () =
          for _ = 1 to 2 do
            let x, y = Seq_s.read l (fun () -> (SMem.get a, SMem.get b)) in
            if x <> y then torn := Some (x, y)
          done
        in
        match Sim.run ~scheduler:sched sim [| writer; reader |] with
        | exception Sim.Thread_failure (tid, e, _) ->
            Some (Printf.sprintf "thread %d crashed: %s" tid (Printexc.to_string e))
        | _ -> (
            match !torn with
            | Some (x, y) -> Some (Printf.sprintf "torn seqlock read: (%d, %d)" x y)
            | None -> None))
  in
  let r = Explorer.explore ~mode:Explorer.Dpor ~bounds:sct_bounds ~run () in
  (match r.Explorer.failure with Some f -> Alcotest.fail f.Explorer.f_desc | None -> ());
  Alcotest.(check bool) "bounded schedule space exhausted" true r.Explorer.complete

(* Native (real domains) exclusion for the two workhorse locks. *)
module Ttas_n = Ascy_locks.Ttas.Make (Ascy_mem.Mem_native)
module Ticket_n = Ascy_locks.Ticket.Make (Ascy_mem.Mem_native)

let native_exclusion acquire release mk () =
  let lock = mk () in
  let counter = ref 0 in
  let per = 20_000 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              acquire lock;
              counter := !counter + 1;
              release lock
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "native exclusion" (4 * per) !counter

let suite =
  [
    Alcotest.test_case "ttas exclusion (sim)" `Quick test_ttas_exclusion;
    Alcotest.test_case "ticket exclusion (sim)" `Quick test_ticket_exclusion;
    Alcotest.test_case "rwlock write exclusion (sim)" `Quick test_rw_write_exclusion;
    Alcotest.test_case "ttas try_acquire" `Quick test_ttas_try;
    Alcotest.test_case "ticket completes all sections" `Quick test_ticket_fifo;
    Alcotest.test_case "ticket versioned acquire" `Quick test_ticket_versioning;
    Alcotest.test_case "rwlock readers vs writer" `Quick test_rw_readers_parallel_writer_excluded;
    Alcotest.test_case "seqlock consistent reads" `Quick test_seqlock_consistent_reads;
    Alcotest.test_case "mcs exclusion (sim)" `Quick test_mcs_exclusion;
    Alcotest.test_case "mcs uncontended" `Quick test_mcs_uncontended;
    Alcotest.test_case "ticket-pair semantics" `Quick test_ticket_pair_semantics;
    Alcotest.test_case "ticket-pair exclusion (sim)" `Quick test_ticket_pair_exclusion;
    Alcotest.test_case "ttas exclusion (SCT, exhaustive)" `Quick test_sct_ttas;
    Alcotest.test_case "ticket exclusion (SCT, exhaustive)" `Quick test_sct_ticket;
    Alcotest.test_case "mcs exclusion (SCT, exhaustive)" `Quick test_sct_mcs;
    Alcotest.test_case "rwlock writer exclusion (SCT, exhaustive)" `Quick test_sct_rw_writers;
    Alcotest.test_case "seqlock snapshot consistency (SCT, exhaustive)" `Quick test_sct_seqlock;
    Alcotest.test_case "ttas exclusion (domains)" `Slow
      (native_exclusion Ttas_n.acquire Ttas_n.release Ttas_n.create_fresh);
    Alcotest.test_case "ticket exclusion (domains)" `Slow
      (native_exclusion Ticket_n.acquire Ticket_n.release Ticket_n.create_fresh);
  ]
