(* Conformance suites for all nine linked-list algorithms. *)

module Ll = Ascy_linkedlist

let suites =
  [
    ("ll-async", Conformance.suite ~concurrent:false "ll-async" (module Ll.Seq_list.Make));
    ("ll-coupling", Conformance.suite "ll-coupling" (module Ll.Coupling.Make));
    ("ll-pugh", Conformance.suite "ll-pugh" (module Ll.Pugh.Make));
    ("ll-lazy", Conformance.suite "ll-lazy" (module Ll.Lazy_list.Make));
    ("ll-copy", Conformance.suite "ll-copy" (module Ll.Copy_list.Make));
    ("ll-harris", Conformance.suite "ll-harris" (module Ll.Harris.Make));
    ("ll-michael", Conformance.suite "ll-michael" (module Ll.Michael.Make));
    ("ll-harris-opt", Conformance.suite "ll-harris-opt" (module Ll.Harris_opt.Make));
    ("ll-pathcas", Conformance.suite "ll-pathcas" (module Ll.Pathcas_ll.Make));
  ]
