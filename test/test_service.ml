(* Service-layer tests: shard routing, the crash-tolerant MPSC request
   ring, and end-to-end scenario runs on the simulator — seeded
   determinism of the structured results, key conservation across
   rolling shard restarts, a linearizability spot-check of one shard
   under the zipf flash crowd, and the golden-pinned
   BENCH_service.json record schema. *)

module J = Ascy_util.Json
module H = Ascy_util.Histogram
module Sim = Ascy_mem.Sim
module Router = Ascy_service.Router
module Scenario = Ascy_service.Scenario
module Service_run = Ascy_service.Service_run
module Service_native = Ascy_service.Service_native
module Service_results = Ascy_service.Service_results

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let test_router_in_range () =
  List.iter
    (fun policy ->
      for key = -50 to 5_000 do
        let s = Router.route policy ~nshards:8 key in
        if s < 0 || s >= 8 then
          Alcotest.failf "%s routed key %d to shard %d" (Router.policy_name policy) key s;
        Alcotest.(check int) "deterministic" s (Router.route policy ~nshards:8 key)
      done)
    [ Router.Mult; Router.Mod ]

let test_router_covers_all_shards () =
  List.iter
    (fun policy ->
      let hit = Array.make 8 0 in
      for key = 1 to 1_000 do
        let s = Router.route policy ~nshards:8 key in
        hit.(s) <- hit.(s) + 1
      done;
      Array.iteri
        (fun s n ->
          if n = 0 then Alcotest.failf "%s leaves shard %d empty" (Router.policy_name policy) s)
        hit)
    [ Router.Mult; Router.Mod ]

let test_router_names () =
  List.iter
    (fun p -> Alcotest.(check bool) "name roundtrip" true (Router.policy_of_name (Router.policy_name p) = p))
    [ Router.Mult; Router.Mod ]

(* ------------------------------------------------------------------ *)
(* Shard queue (sequential semantics on native cells)                  *)
(* ------------------------------------------------------------------ *)

module Q = Ascy_service.Shard_queue.Make (Ascy_mem.Mem_native)

let test_queue_fifo () =
  let q = Q.create ~cap:4 in
  Alcotest.(check bool) "fresh queue empty" true (Q.is_empty q);
  Alcotest.(check bool) "peek on empty" true (Q.peek q = None);
  for v = 1 to 4 do
    Alcotest.(check int) "no wait below cap" 0 (Q.enqueue q v)
  done;
  Alcotest.(check int) "backlog" 4 (Q.length q);
  (* peek does not consume; commit does *)
  Alcotest.(check bool) "peek head" true (Q.peek q = Some 1);
  Alcotest.(check bool) "peek again" true (Q.peek q = Some 1);
  Q.commit q;
  Alcotest.(check bool) "next" true (Q.peek q = Some 2);
  Q.commit q;
  (* ring wraps: freed slots accept new tickets *)
  ignore (Q.enqueue q 5);
  ignore (Q.enqueue q 6);
  let got = ref [] in
  let rec drain () =
    match Q.peek q with
    | Some v ->
        got := v :: !got;
        Q.commit q;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo across wrap" [ 3; 4; 5; 6 ] (List.rev !got);
  Alcotest.(check bool) "drained empty" true (Q.is_empty q)

(* ------------------------------------------------------------------ *)
(* End-to-end scenario runs (smoke scale)                              *)
(* ------------------------------------------------------------------ *)

let smoke name = Scenario.by_name Scenario.Smoke name

(* Same seed -> byte-identical structured record (the sole wall-clock
   field of a BENCH file lives at file level, not in the run record). *)
let test_seeded_determinism () =
  let once () =
    J.to_string (Service_results.of_run ~label:"det" (Service_run.run ~seed:42 (smoke "flash-crowd")))
  in
  Alcotest.(check string) "same seed, same record" (once ()) (once ())

let test_seed_matters () =
  let once seed =
    let r = Service_run.run ~seed (smoke "churn-heavy") in
    r.Service_run.stats.Sim.makespan_cycles
  in
  Alcotest.(check bool) "different seeds, different makespan" true (once 1 <> once 2)

(* Rolling restarts: every primary is crash-stopped, every standby takes
   over, and the per-key conservation oracle (with its +-1 in-flight
   slack) plus structural validation still pass. *)
let test_rolling_restart_conserves () =
  let sc = smoke "rolling-restart" in
  let r = Service_run.run ~seed:3 sc in
  Alcotest.(check (option string)) "conservation + validation" None r.Service_run.violation;
  Alcotest.(check bool) "oracles ran" true r.Service_run.checked;
  Alcotest.(check int) "every primary crashed" sc.Scenario.nshards
    (List.length r.Service_run.crashed);
  Alcotest.(check bool)
    (Printf.sprintf "standbys took over (got %d)" r.Service_run.takeovers)
    true
    (r.Service_run.takeovers >= 1);
  Alcotest.(check bool) "nothing lost (re-apply allowed)" true
    (r.Service_run.ops_applied >= r.Service_run.ops_requested)

let test_flash_crowd_shard0_linearizable () =
  let r = Service_run.run ~seed:5 ~spotcheck:true (smoke "flash-crowd") in
  Alcotest.(check (option string)) "oracle clean" None r.Service_run.violation;
  Alcotest.(check bool) "shard-0 history checked and linearizable" true
    (r.Service_run.linearizable = Some true)

let test_pinned_skew_lands_on_shard0 () =
  let r = Service_run.run ~seed:7 (smoke "shard-skew") in
  let applied sid = r.Service_run.shard_stats.(sid).Service_run.ss_applied in
  for sid = 1 to Array.length r.Service_run.shard_stats - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "shard 0 (%d) hotter than shard %d (%d)" (applied 0) sid (applied sid))
      true
      (applied 0 > applied sid)
  done

let test_counters_add_up () =
  let r = Service_run.run ~seed:9 (smoke "read-mostly") in
  Alcotest.(check int) "applied = requested without crashes" r.Service_run.ops_requested
    r.Service_run.ops_applied;
  let by_class =
    Array.fold_left
      (fun a (ss : Service_run.shard_stat) ->
        a + ss.Service_run.ss_search_ok + ss.Service_run.ss_search_miss
        + ss.Service_run.ss_insert_ok + ss.Service_run.ss_insert_fail
        + ss.Service_run.ss_remove_ok + ss.Service_run.ss_remove_fail)
      0 r.Service_run.shard_stats
  in
  Alcotest.(check int) "per-class counters partition applied" r.Service_run.ops_applied by_class;
  Alcotest.(check int) "sojourn sampled per applied op" r.Service_run.ops_applied
    (H.count r.Service_run.sojourn)

let test_native_smoke () =
  let sc = { (smoke "churn-heavy") with Scenario.sessions = 16; nclients = 2; nshards = 2 } in
  let r = Service_native.run ~seed:11 sc in
  Alcotest.(check (option string)) "native oracle clean" None r.Service_native.violation;
  Alcotest.(check int) "all ops applied" (Scenario.total_ops sc) r.Service_native.ops_applied;
  Alcotest.(check int) "per-shard sums to total" r.Service_native.ops_applied
    (Array.fold_left ( + ) 0 r.Service_native.per_shard_applied)

(* ------------------------------------------------------------------ *)
(* Golden-pinned record schema                                         *)
(* ------------------------------------------------------------------ *)

(* A fully deterministic synthetic result: golden stability must not
   depend on simulator or algorithm internals.  MUST stay in sync with
   [Gen_service_golden.synthetic_result] (regenerate with
   `dune exec test/gen_service_golden.exe > test/service_golden.json`). *)
let synthetic_result () : Service_run.result =
  let hist vals =
    let h = H.create () in
    List.iter (H.add h) vals;
    h
  in
  let shard sid =
    {
      Service_run.ss_sid = sid;
      ss_applied = 50;
      ss_search_ok = 20;
      ss_search_miss = 15;
      ss_insert_ok = 5;
      ss_insert_fail = 3;
      ss_remove_ok = 4;
      ss_remove_fail = 3;
      ss_batches = 10;
      ss_max_batch = 8;
      ss_takeovers = sid;
      ss_throughput_mops = 0.5;
      ss_sojourn = hist [ 100.0; 200.0; 300.0; 400.0 ];
      ss_service = hist [ 10.0; 20.0 ];
      ss_final_size = 40;
    }
  in
  {
    Service_run.scenario = { (Scenario.base Scenario.Smoke) with Scenario.name = "golden" };
    algorithm = "golden-algo";
    platform = "Xeon20";
    nthreads = 6;
    seed = 7;
    model = "mesi";
    ops_requested = 100;
    ops_applied = 100;
    seconds = 0.001;
    throughput_mops = 0.1;
    shard_stats = [| shard 0; shard 1 |];
    sojourn = hist [ 100.0; 200.0; 300.0; 400.0; 100.0; 200.0; 300.0; 400.0 ];
    service = hist [ 10.0; 20.0; 10.0; 20.0 ];
    enq_waits = 12;
    takeovers = 1;
    crashed = [ 3 ];
    faults = [ { Sim.fe_at = 500; fe_tid = 3; fe_fault = Sim.F_crash } ];
    checked = true;
    violation = None;
    linearizable = Some true;
    final_size = 80;
    stats =
      {
        Sim.makespan_cycles = 2300;
        seconds = 0.001;
        accesses = 1000;
        hits_l1 = 900;
        hits_llc = 50;
        transfers_local = 20;
        transfers_remote = 10;
        fetch_remote = 5;
        misses_mem = 15;
        atomics = 30;
        stores = 120;
        energy_j = 0.5;
        power_w = 500.0;
        events = Array.init Ascy_mem.Event.count (fun i -> i);
      };
  }

let test_record_roundtrip () =
  let j = Service_results.of_run ~label:"golden" (synthetic_result ()) in
  let j' = J.of_string (J.to_string ~indent:1 j) in
  Alcotest.(check bool) "serialized record parses back equal" true (j = j');
  let get k = match J.member k j' with Some v -> v | None -> Alcotest.failf "missing %s" k in
  Alcotest.(check (option string)) "kind" (Some "service") (J.to_string_opt (get "kind"));
  Alcotest.(check (option int)) "takeovers" (Some 1) (J.to_int_opt (get "takeovers"));
  let lat = get "latency_ns" in
  let soj = match J.member "sojourn" lat with Some v -> v | None -> Alcotest.fail "no sojourn" in
  Alcotest.(check (option int)) "sojourn count" (Some 8)
    (Option.bind (J.member "count" soj) J.to_int_opt);
  Alcotest.(check bool) "p999 present" true (J.member "p999" soj <> None);
  match get "shards" with
  | J.List [ s0; _ ] ->
      Alcotest.(check (option int)) "shard sid" (Some 0) (Option.bind (J.member "sid" s0) J.to_int_opt)
  | _ -> Alcotest.fail "shards is not a 2-list"

(* The committed golden file pins schema v1: if serialization changes,
   this fails and the change must be deliberate (regenerate with
   `dune exec test/gen_service_golden.exe > test/service_golden.json`). *)
let test_service_golden_file () =
  (* dune runtest runs from _build/default/test; dune exec from the root *)
  let golden =
    if Sys.file_exists "service_golden.json" then "service_golden.json"
    else "test/service_golden.json"
  in
  let ic = open_in golden in
  let n = in_channel_length ic in
  let want = really_input_string ic n in
  close_in ic;
  let got =
    J.to_string ~indent:1 (Service_results.of_run ~label:"golden" (synthetic_result ())) ^ "\n"
  in
  Alcotest.(check string) "golden serialization" want got;
  Alcotest.(check bool) "golden file parses" true
    (match J.of_string (String.trim want) with J.Obj _ -> true | _ -> false)

let suite =
  [
    Alcotest.test_case "router: shards in range" `Quick test_router_in_range;
    Alcotest.test_case "router: covers all shards" `Quick test_router_covers_all_shards;
    Alcotest.test_case "router: policy names roundtrip" `Quick test_router_names;
    Alcotest.test_case "queue: fifo peek/commit across wrap" `Quick test_queue_fifo;
    Alcotest.test_case "run: seeded determinism" `Quick test_seeded_determinism;
    Alcotest.test_case "run: seed changes schedule" `Quick test_seed_matters;
    Alcotest.test_case "run: rolling restart conserves keys" `Quick test_rolling_restart_conserves;
    Alcotest.test_case "run: flash-crowd shard 0 linearizable" `Quick
      test_flash_crowd_shard0_linearizable;
    Alcotest.test_case "run: pinned skew lands on shard 0" `Quick test_pinned_skew_lands_on_shard0;
    Alcotest.test_case "run: counters partition applied ops" `Quick test_counters_add_up;
    Alcotest.test_case "native: smoke run clean" `Quick test_native_smoke;
    Alcotest.test_case "results: record roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "results: golden file" `Quick test_service_golden_file;
  ]
