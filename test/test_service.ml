(* Service-layer tests: shard routing, the crash-tolerant MPSC request
   ring, and end-to-end scenario runs on the simulator — seeded
   determinism of the structured results, key conservation across
   rolling shard restarts, a linearizability spot-check of one shard
   under the zipf flash crowd, and the golden-pinned
   BENCH_service.json record schema. *)

module J = Ascy_util.Json
module H = Ascy_util.Histogram
module Sim = Ascy_mem.Sim
module Router = Ascy_service.Router
module Scenario = Ascy_service.Scenario
module Service_run = Ascy_service.Service_run
module Service_native = Ascy_service.Service_native
module Service_results = Ascy_service.Service_results
module Resilience = Ascy_service.Resilience
module P = Ascy_platform.Platform

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let test_router_in_range () =
  List.iter
    (fun policy ->
      for key = -50 to 5_000 do
        let s = Router.route policy ~nshards:8 key in
        if s < 0 || s >= 8 then
          Alcotest.failf "%s routed key %d to shard %d" (Router.policy_name policy) key s;
        Alcotest.(check int) "deterministic" s (Router.route policy ~nshards:8 key)
      done)
    [ Router.Mult; Router.Mod ]

let test_router_covers_all_shards () =
  List.iter
    (fun policy ->
      let hit = Array.make 8 0 in
      for key = 1 to 1_000 do
        let s = Router.route policy ~nshards:8 key in
        hit.(s) <- hit.(s) + 1
      done;
      Array.iteri
        (fun s n ->
          if n = 0 then Alcotest.failf "%s leaves shard %d empty" (Router.policy_name policy) s)
        hit)
    [ Router.Mult; Router.Mod ]

let test_router_names () =
  List.iter
    (fun p -> Alcotest.(check bool) "name roundtrip" true (Router.policy_of_name (Router.policy_name p) = p))
    [ Router.Mult; Router.Mod ]

(* ------------------------------------------------------------------ *)
(* Shard queue (sequential semantics on native cells)                  *)
(* ------------------------------------------------------------------ *)

module Q = Ascy_service.Shard_queue.Make (Ascy_mem.Mem_native)

let test_queue_fifo () =
  let q = Q.create ~cap:4 in
  Alcotest.(check bool) "fresh queue empty" true (Q.is_empty q);
  Alcotest.(check bool) "peek on empty" true (Q.peek q = None);
  for v = 1 to 4 do
    Alcotest.(check int) "no wait below cap" 0 (Q.enqueue q v)
  done;
  Alcotest.(check int) "backlog" 4 (Q.length q);
  (* peek does not consume; commit does *)
  Alcotest.(check bool) "peek head" true (Q.peek q = Some 1);
  Alcotest.(check bool) "peek again" true (Q.peek q = Some 1);
  Q.commit q;
  Alcotest.(check bool) "next" true (Q.peek q = Some 2);
  Q.commit q;
  (* ring wraps: freed slots accept new tickets *)
  ignore (Q.enqueue q 5);
  ignore (Q.enqueue q 6);
  let got = ref [] in
  let rec drain () =
    match Q.peek q with
    | Some v ->
        got := v :: !got;
        Q.commit q;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo across wrap" [ 3; 4; 5; 6 ] (List.rev !got);
  Alcotest.(check bool) "drained empty" true (Q.is_empty q)

(* try_enqueue: explicit backpressure instead of the producer spin — a
   full ring answers Overloaded without claiming a ticket, so no ghost
   ticket can ever wedge the consumer. *)
let test_queue_try_enqueue_overloaded () =
  let q = Q.create ~cap:2 in
  Alcotest.(check int) "capacity" 2 (Q.capacity q);
  (match Q.try_enqueue q 1 with
  | Ascy_service.Shard_queue.Enqueued 0 -> ()
  | _ -> Alcotest.fail "uncontended enqueue must claim without retries");
  (match Q.try_enqueue q 2 with
  | Ascy_service.Shard_queue.Enqueued _ -> ()
  | _ -> Alcotest.fail "second slot must accept");
  Alcotest.(check bool) "full ring rejects" true
    (Q.try_enqueue q 3 = Ascy_service.Shard_queue.Overloaded);
  Alcotest.(check int) "depth signal at cap" 2 (Q.length q);
  Alcotest.(check bool) "rejected item never visible" true (Q.peek q = Some 1);
  Q.commit q;
  (match Q.try_enqueue q 3 with
  | Ascy_service.Shard_queue.Enqueued _ -> ()
  | _ -> Alcotest.fail "freed slot must accept");
  let got = ref [] in
  let rec drain () =
    match Q.peek q with
    | Some v ->
        got := v :: !got;
        Q.commit q;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo across a rejection, no ghost ticket" [ 2; 3 ] (List.rev !got)

(* ------------------------------------------------------------------ *)
(* End-to-end scenario runs (smoke scale)                              *)
(* ------------------------------------------------------------------ *)

let smoke name = Scenario.by_name Scenario.Smoke name

(* Same seed -> byte-identical structured record (the sole wall-clock
   field of a BENCH file lives at file level, not in the run record). *)
let test_seeded_determinism () =
  let once () =
    J.to_string (Service_results.of_run ~label:"det" (Service_run.run ~seed:42 (smoke "flash-crowd")))
  in
  Alcotest.(check string) "same seed, same record" (once ()) (once ())

let test_seed_matters () =
  let once seed =
    let r = Service_run.run ~seed (smoke "churn-heavy") in
    r.Service_run.stats.Sim.makespan_cycles
  in
  Alcotest.(check bool) "different seeds, different makespan" true (once 1 <> once 2)

(* Rolling restarts: every primary is crash-stopped, every standby takes
   over, and the per-key conservation oracle (with its +-1 in-flight
   slack) plus structural validation still pass. *)
let test_rolling_restart_conserves () =
  let sc = smoke "rolling-restart" in
  let r = Service_run.run ~seed:3 sc in
  Alcotest.(check (option string)) "conservation + validation" None r.Service_run.violation;
  Alcotest.(check bool) "oracles ran" true r.Service_run.checked;
  Alcotest.(check int) "every primary crashed" sc.Scenario.nshards
    (List.length r.Service_run.crashed);
  Alcotest.(check bool)
    (Printf.sprintf "standbys took over (got %d)" r.Service_run.takeovers)
    true
    (r.Service_run.takeovers >= 1);
  Alcotest.(check bool) "nothing lost (re-apply allowed)" true
    (r.Service_run.ops_applied >= r.Service_run.ops_requested)

let test_flash_crowd_shard0_linearizable () =
  let r = Service_run.run ~seed:5 ~spotcheck:true (smoke "flash-crowd") in
  Alcotest.(check (option string)) "oracle clean" None r.Service_run.violation;
  Alcotest.(check bool) "shard-0 history checked and linearizable" true
    (r.Service_run.linearizable = Some true)

let test_pinned_skew_lands_on_shard0 () =
  let r = Service_run.run ~seed:7 (smoke "shard-skew") in
  let applied sid = r.Service_run.shard_stats.(sid).Service_run.ss_applied in
  for sid = 1 to Array.length r.Service_run.shard_stats - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "shard 0 (%d) hotter than shard %d (%d)" (applied 0) sid (applied sid))
      true
      (applied 0 > applied sid)
  done

let test_counters_add_up () =
  let r = Service_run.run ~seed:9 (smoke "read-mostly") in
  Alcotest.(check int) "applied = requested without crashes" r.Service_run.ops_requested
    r.Service_run.ops_applied;
  let by_class =
    Array.fold_left
      (fun a (ss : Service_run.shard_stat) ->
        a + ss.Service_run.ss_search_ok + ss.Service_run.ss_search_miss
        + ss.Service_run.ss_insert_ok + ss.Service_run.ss_insert_fail
        + ss.Service_run.ss_remove_ok + ss.Service_run.ss_remove_fail)
      0 r.Service_run.shard_stats
  in
  Alcotest.(check int) "per-class counters partition applied" r.Service_run.ops_applied by_class;
  Alcotest.(check int) "sojourn sampled per applied op" r.Service_run.ops_applied
    (H.count r.Service_run.sojourn)

let test_native_smoke () =
  let sc = { (smoke "churn-heavy") with Scenario.sessions = 16; nclients = 2; nshards = 2 } in
  let r = Service_native.run ~seed:11 sc in
  Alcotest.(check (option string)) "native oracle clean" None r.Service_native.violation;
  Alcotest.(check int) "all ops applied" (Scenario.total_ops sc) r.Service_native.ops_applied;
  Alcotest.(check int) "per-shard sums to total" r.Service_native.ops_applied
    (Array.fold_left ( + ) 0 r.Service_native.per_shard_applied)

(* ------------------------------------------------------------------ *)
(* Resilient request layer                                             *)
(* ------------------------------------------------------------------ *)

let matrix_plan name sc ~decisions = Service_run.Fault_matrix.plan name sc ~platform:P.xeon20 ~decisions

(* Retry/backoff jitter draws from an Xorshift stream split off the run
   seed, so a faulted run — drops forcing deadline misses, backoffs,
   re-submissions — must still serialize to the same bytes twice. *)
let test_resil_retry_determinism () =
  let once () =
    let r =
      Service_run.run ~seed:21 ~resil:Resilience.default
        ~fault_plan:(matrix_plan "drop" (smoke "read-mostly"))
        (smoke "read-mostly")
    in
    (J.to_string (Service_results.of_run ~label:"resil-det" r), r.Service_run.rmetrics)
  in
  let s1, m1 = once () in
  let s2, m2 = once () in
  Alcotest.(check string) "same seed, same bytes under drops + retries" s1 s2;
  Alcotest.(check bool) "drops enacted" true (m1.Resilience.m_fault_drops > 0);
  Alcotest.(check bool) "retries exercised the jittered backoff" true
    (m1.Resilience.m_retries > 0);
  Alcotest.(check int) "retry count replays exactly" m1.Resilience.m_retries
    m2.Resilience.m_retries

(* The closed -> open -> half-open -> closed cycle of the breaker state
   machine, plus the failed-probe re-open and the trip counter. *)
let test_breaker_cycle () =
  let b = Resilience.mk_breaker { Resilience.trip_after = 2; cooldown = 100; probes = 2 } in
  Alcotest.(check string) "starts closed" "closed" (Resilience.state_name b);
  Alcotest.(check bool) "closed admits" true (Resilience.allow b ~now:0);
  Resilience.on_failure b ~now:10;
  Alcotest.(check string) "below threshold stays closed" "closed" (Resilience.state_name b);
  Resilience.on_failure b ~now:20;
  Alcotest.(check string) "consecutive failures trip it open" "open" (Resilience.state_name b);
  Alcotest.(check bool) "open rejects before cooldown" false (Resilience.allow b ~now:50);
  Alcotest.(check bool) "cooldown elapses: probe admitted" true (Resilience.allow b ~now:130);
  Alcotest.(check string) "half-open" "half-open" (Resilience.state_name b);
  Alcotest.(check bool) "second probe admitted" true (Resilience.allow b ~now:131);
  Alcotest.(check bool) "probe budget exhausted" false (Resilience.allow b ~now:132);
  Resilience.on_success b;
  Alcotest.(check string) "successful probe closes" "closed" (Resilience.state_name b);
  Resilience.on_failure b ~now:200;
  Resilience.on_failure b ~now:201;
  Alcotest.(check string) "re-trips" "open" (Resilience.state_name b);
  Alcotest.(check bool) "probe after second cooldown" true (Resilience.allow b ~now:400);
  Resilience.on_failure b ~now:401;
  Alcotest.(check string) "failed probe re-opens immediately" "open" (Resilience.state_name b);
  Alcotest.(check int) "every trip counted" 3 b.Resilience.b_trips

(* Gray failure end-to-end: a slowed shard socket makes deadlines miss,
   the per-shard breaker trips, and — because the slow window ends —
   the service recovers and the run still passes every oracle. *)
let test_breaker_trips_under_slow_shard () =
  let sc = smoke "read-mostly" in
  (* deadline sits a few x above the fault-free p999 sojourn (~1k cycles)
     and far below the 32x-slowed one, so misses come from the gray
     failure, not from baseline noise *)
  let rcfg =
    {
      Resilience.default with
      Resilience.deadline = 4_000;
      hedge_after = 0;
      retry = { Resilience.max_attempts = 3; backoff_base = 500; backoff_mult = 2; jitter = 250 };
      breaker = Some { Resilience.trip_after = 3; cooldown = 20_000; probes = 2 };
    }
  in
  let fault_plan ~decisions =
    Service_run.Fault_matrix.slow_shard ~factor:32.0 sc ~platform:P.xeon20 ~decisions
  in
  let r = Service_run.run ~seed:13 ~resil:rcfg ~fault_plan sc in
  let m = r.Service_run.rmetrics in
  Alcotest.(check (option string)) "oracles clean through the gray failure" None
    r.Service_run.violation;
  Alcotest.(check bool)
    (Printf.sprintf "deadline misses observed (got %d)" m.Resilience.m_deadline_miss)
    true (m.Resilience.m_deadline_miss > 0);
  Alcotest.(check bool)
    (Printf.sprintf "breaker tripped (got %d)" m.Resilience.m_breaker_trips)
    true
    (m.Resilience.m_breaker_trips >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "service recovered: most requests still acked (%d)" m.Resilience.m_acked)
    true
    (m.Resilience.m_acked > Scenario.total_ops sc / 2)

(* Duplicate deliveries with the dedup window armed: every duplicate is
   suppressed drainer-side, each logical op applies exactly once, and
   the at-most-once oracle stays clean. *)
let test_dedup_window_suppresses_duplicates () =
  let sc = smoke "read-mostly" in
  let r =
    Service_run.run ~seed:17 ~resil:Resilience.default ~fault_plan:(matrix_plan "dup" sc) sc
  in
  let m = r.Service_run.rmetrics in
  Alcotest.(check (option string)) "at-most-once holds with dedup on" None
    r.Service_run.violation;
  Alcotest.(check bool) "duplicates were injected" true (m.Resilience.m_fault_dups > 0);
  Alcotest.(check bool)
    (Printf.sprintf "every injected duplicate suppressed (%d dups, %d suppressed)"
       m.Resilience.m_fault_dups m.Resilience.m_dup_suppressed)
    true
    (m.Resilience.m_dup_suppressed >= m.Resilience.m_fault_dups);
  Alcotest.(check int) "each logical op applied exactly once" r.Service_run.ops_requested
    r.Service_run.ops_applied

(* Oracle teeth: the same duplicated-delivery run with the dedup window
   disabled must FAIL at-most-once — proving the oracle detects real
   double-applies rather than vacuously passing. *)
let test_at_most_once_oracle_has_teeth () =
  let sc = smoke "read-mostly" in
  let no_dedup = { Resilience.default with Resilience.dedup_window = 0 } in
  let r = Service_run.run ~seed:17 ~resil:no_dedup ~fault_plan:(matrix_plan "dup" sc) sc in
  match r.Service_run.violation with
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "violation names at-most-once: %s" v)
        true
        (let rec find i =
           i + 12 <= String.length v && (String.sub v i 12 = "at-most-once" || find (i + 1))
         in
         find 0)
  | None -> Alcotest.fail "dedup disabled + duplicated deliveries must violate at-most-once"

(* Drops + retries under the full adversarial plan: at-most-once must
   hold (retries carry the same idempotency token) and every client-acked
   request must really have applied (no-lost-ack). *)
let test_drop_retry_at_most_once () =
  let sc = smoke "churn-heavy" in
  let r =
    Service_run.run ~seed:23 ~resil:Resilience.default ~fault_plan:(matrix_plan "drop" sc) sc
  in
  let m = r.Service_run.rmetrics in
  Alcotest.(check (option string)) "delivery oracles clean under drop + retry" None
    r.Service_run.violation;
  Alcotest.(check bool) "drops enacted" true (m.Resilience.m_fault_drops > 0);
  Alcotest.(check bool) "acked + gave-up partition the sessions' requests" true
    (m.Resilience.m_acked + m.Resilience.m_gave_up + m.Resilience.m_sheds
    >= Scenario.total_ops sc)

(* ------------------------------------------------------------------ *)
(* Golden-pinned record schema                                         *)
(* ------------------------------------------------------------------ *)

(* A fully deterministic synthetic result: golden stability must not
   depend on simulator or algorithm internals.  MUST stay in sync with
   [Gen_service_golden.synthetic_result] (regenerate with
   `dune exec test/gen_service_golden.exe > test/service_golden.json`). *)
let synthetic_result () : Service_run.result =
  let hist vals =
    let h = H.create () in
    List.iter (H.add h) vals;
    h
  in
  let shard sid =
    {
      Service_run.ss_sid = sid;
      ss_applied = 50;
      ss_search_ok = 20;
      ss_search_miss = 15;
      ss_insert_ok = 5;
      ss_insert_fail = 3;
      ss_remove_ok = 4;
      ss_remove_fail = 3;
      ss_batches = 10;
      ss_max_batch = 8;
      ss_takeovers = sid;
      ss_throughput_mops = 0.5;
      ss_sojourn = hist [ 100.0; 200.0; 300.0; 400.0 ];
      ss_service = hist [ 10.0; 20.0 ];
      ss_final_size = 40;
    }
  in
  {
    Service_run.scenario = { (Scenario.base Scenario.Smoke) with Scenario.name = "golden" };
    algorithm = "golden-algo";
    platform = "Xeon20";
    nthreads = 6;
    seed = 7;
    model = "mesi";
    ops_requested = 100;
    ops_applied = 100;
    seconds = 0.001;
    throughput_mops = 0.1;
    shard_stats = [| shard 0; shard 1 |];
    sojourn = hist [ 100.0; 200.0; 300.0; 400.0; 100.0; 200.0; 300.0; 400.0 ];
    service = hist [ 10.0; 20.0; 10.0; 20.0 ];
    enq_waits = 12;
    takeovers = 1;
    crashed = [ 3 ];
    faults = [ { Sim.fe_at = 500; fe_tid = 3; fe_fault = Sim.F_crash } ];
    checked = true;
    violation = None;
    linearizable = Some true;
    final_size = 80;
    stats =
      {
        Sim.makespan_cycles = 2300;
        seconds = 0.001;
        accesses = 1000;
        hits_l1 = 900;
        hits_llc = 50;
        transfers_local = 20;
        transfers_remote = 10;
        fetch_remote = 5;
        misses_mem = 15;
        atomics = 30;
        stores = 120;
        energy_j = 0.5;
        power_w = 500.0;
        events = Array.init Ascy_mem.Event.count (fun i -> i);
      };
    resil = Ascy_service.Resilience.disabled;
    rmetrics = Ascy_service.Resilience.fresh_metrics ();
  }

let test_record_roundtrip () =
  let j = Service_results.of_run ~label:"golden" (synthetic_result ()) in
  let j' = J.of_string (J.to_string ~indent:1 j) in
  Alcotest.(check bool) "serialized record parses back equal" true (j = j');
  let get k = match J.member k j' with Some v -> v | None -> Alcotest.failf "missing %s" k in
  Alcotest.(check (option string)) "kind" (Some "service") (J.to_string_opt (get "kind"));
  Alcotest.(check (option int)) "takeovers" (Some 1) (J.to_int_opt (get "takeovers"));
  let lat = get "latency_ns" in
  let soj = match J.member "sojourn" lat with Some v -> v | None -> Alcotest.fail "no sojourn" in
  Alcotest.(check (option int)) "sojourn count" (Some 8)
    (Option.bind (J.member "count" soj) J.to_int_opt);
  Alcotest.(check bool) "p999 present" true (J.member "p999" soj <> None);
  match get "shards" with
  | J.List [ s0; _ ] ->
      Alcotest.(check (option int)) "shard sid" (Some 0) (Option.bind (J.member "sid" s0) J.to_int_opt)
  | _ -> Alcotest.fail "shards is not a 2-list"

(* The committed golden file pins schema v1: if serialization changes,
   this fails and the change must be deliberate (regenerate with
   `dune exec test/gen_service_golden.exe > test/service_golden.json`). *)
let test_service_golden_file () =
  (* dune runtest runs from _build/default/test; dune exec from the root *)
  let golden =
    if Sys.file_exists "service_golden.json" then "service_golden.json"
    else "test/service_golden.json"
  in
  let ic = open_in golden in
  let n = in_channel_length ic in
  let want = really_input_string ic n in
  close_in ic;
  let got =
    J.to_string ~indent:1 (Service_results.of_run ~label:"golden" (synthetic_result ())) ^ "\n"
  in
  Alcotest.(check string) "golden serialization" want got;
  Alcotest.(check bool) "golden file parses" true
    (match J.of_string (String.trim want) with J.Obj _ -> true | _ -> false)

let suite =
  [
    Alcotest.test_case "router: shards in range" `Quick test_router_in_range;
    Alcotest.test_case "router: covers all shards" `Quick test_router_covers_all_shards;
    Alcotest.test_case "router: policy names roundtrip" `Quick test_router_names;
    Alcotest.test_case "queue: fifo peek/commit across wrap" `Quick test_queue_fifo;
    Alcotest.test_case "queue: try_enqueue backpressure" `Quick test_queue_try_enqueue_overloaded;
    Alcotest.test_case "run: seeded determinism" `Quick test_seeded_determinism;
    Alcotest.test_case "run: seed changes schedule" `Quick test_seed_matters;
    Alcotest.test_case "run: rolling restart conserves keys" `Quick test_rolling_restart_conserves;
    Alcotest.test_case "run: flash-crowd shard 0 linearizable" `Quick
      test_flash_crowd_shard0_linearizable;
    Alcotest.test_case "run: pinned skew lands on shard 0" `Quick test_pinned_skew_lands_on_shard0;
    Alcotest.test_case "run: counters partition applied ops" `Quick test_counters_add_up;
    Alcotest.test_case "native: smoke run clean" `Quick test_native_smoke;
    Alcotest.test_case "resil: retry/backoff byte determinism" `Quick test_resil_retry_determinism;
    Alcotest.test_case "resil: breaker state cycle" `Quick test_breaker_cycle;
    Alcotest.test_case "resil: breaker trips under slow shard" `Quick
      test_breaker_trips_under_slow_shard;
    Alcotest.test_case "resil: dedup window suppresses duplicates" `Quick
      test_dedup_window_suppresses_duplicates;
    Alcotest.test_case "resil: at-most-once oracle has teeth" `Quick
      test_at_most_once_oracle_has_teeth;
    Alcotest.test_case "resil: drop+retry keeps at-most-once" `Quick
      test_drop_retry_at_most_once;
    Alcotest.test_case "results: record roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "results: golden file" `Quick test_service_golden_file;
  ]
