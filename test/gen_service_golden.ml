(* Regenerates the golden serialization pinned by
   test_service.test_service_golden_file:

     dune exec test/gen_service_golden.exe > test/service_golden.json

   The synthetic result below MUST stay in sync with
   [Test_service.synthetic_result]; regenerating the golden file is the
   deliberate act of changing the BENCH_service.json record schema. *)

module H = Ascy_util.Histogram
module Sim = Ascy_mem.Sim
module Scenario = Ascy_service.Scenario
module Service_run = Ascy_service.Service_run
module Service_results = Ascy_service.Service_results

let synthetic_result () : Service_run.result =
  let hist vals =
    let h = H.create () in
    List.iter (H.add h) vals;
    h
  in
  let shard sid =
    {
      Service_run.ss_sid = sid;
      ss_applied = 50;
      ss_search_ok = 20;
      ss_search_miss = 15;
      ss_insert_ok = 5;
      ss_insert_fail = 3;
      ss_remove_ok = 4;
      ss_remove_fail = 3;
      ss_batches = 10;
      ss_max_batch = 8;
      ss_takeovers = sid;
      ss_throughput_mops = 0.5;
      ss_sojourn = hist [ 100.0; 200.0; 300.0; 400.0 ];
      ss_service = hist [ 10.0; 20.0 ];
      ss_final_size = 40;
    }
  in
  {
    Service_run.scenario = { (Scenario.base Scenario.Smoke) with Scenario.name = "golden" };
    algorithm = "golden-algo";
    platform = "Xeon20";
    nthreads = 6;
    seed = 7;
    model = "mesi";
    ops_requested = 100;
    ops_applied = 100;
    seconds = 0.001;
    throughput_mops = 0.1;
    shard_stats = [| shard 0; shard 1 |];
    sojourn = hist [ 100.0; 200.0; 300.0; 400.0; 100.0; 200.0; 300.0; 400.0 ];
    service = hist [ 10.0; 20.0; 10.0; 20.0 ];
    enq_waits = 12;
    takeovers = 1;
    crashed = [ 3 ];
    faults = [ { Sim.fe_at = 500; fe_tid = 3; fe_fault = Sim.F_crash } ];
    checked = true;
    violation = None;
    linearizable = Some true;
    final_size = 80;
    stats =
      {
        Sim.makespan_cycles = 2300;
        seconds = 0.001;
        accesses = 1000;
        hits_l1 = 900;
        hits_llc = 50;
        transfers_local = 20;
        transfers_remote = 10;
        fetch_remote = 5;
        misses_mem = 15;
        atomics = 30;
        stores = 120;
        energy_j = 0.5;
        power_w = 500.0;
        events = Array.init Ascy_mem.Event.count (fun i -> i);
      };
    resil = Ascy_service.Resilience.disabled;
    rmetrics = Ascy_service.Resilience.fresh_metrics ();
  }

let () =
  print_string
    (Ascy_util.Json.to_string ~indent:1
       (Service_results.of_run ~label:"golden" (synthetic_result ())));
  print_newline ()
