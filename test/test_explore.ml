(* Parallel exploration determinism: Ascy_sct.Par_explore partitions
   the DPOR frontier (or a randomized policy's schedule budget) across
   OCaml domains, and its whole contract is that the partition changes
   only wall-clock — verdicts, schedule-space sizes and counterexamples
   are invariant under the domain count.  These tests run the *task
   machinery itself* at 1 and 4 domains (Par_explore.explore never
   delegates to the plain sequential explorer, precisely so this
   equality is testable) and compare everything.

   Also here: the seeded-stream primitives the randomized policies'
   determinism rests on (Xorshift.split / jump). *)

module Sct = Ascy_harness.Sct_run
module Explorer = Ascy_sct.Explorer
module Par = Ascy_sct.Par_explore
module Registry = Ascylib.Registry
module Xorshift = Ascy_util.Xorshift

let duel name =
  Sct.mk_spec ~name ~initial:[ 2 ]
    ~script:
      [|
        [| (Sct.Insert, 1); (Sct.Remove, 2) |];
        [| (Sct.Insert, 1); (Sct.Insert, 2) |];
      |]
    ()

let small_bounds =
  {
    Explorer.preemptions = Some 1;
    delays = Some 3;
    max_steps = 50_000;
    max_schedules = Some 50_000;
  }

(* The exploration driver Par_explore expects: one full oracle-checked
   run of the spec under a given scheduler. *)
let run_of spec =
  let maker = (Registry.by_name spec.Sct.name).Registry.maker in
  fun ~sched -> Sct.run_once maker spec ~sched

(* ------------------------------------------------------------------ *)
(* Exhaustive partition: 1 domain = 4 domains                          *)
(* ------------------------------------------------------------------ *)

(* One correct algorithm per family: the partitioned DPOR must exhaust
   the identical schedule space — same verdict, same schedule count,
   same decision count, same task fixed point — at any domain count. *)
let partition_deterministic name () =
  let explore domains =
    Par.explore ~bounds:small_bounds ~domains ~run:(run_of (duel name)) ()
  in
  let r1 = explore 1 and r4 = explore 4 in
  Alcotest.(check bool) "no violation at 1 domain" true
    (r1.Par.p_report.Explorer.failure = None);
  Alcotest.(check bool) "no violation at 4 domains" true
    (r4.Par.p_report.Explorer.failure = None);
  Alcotest.(check int) "identical schedule-space size"
    r1.Par.p_report.Explorer.schedules r4.Par.p_report.Explorer.schedules;
  Alcotest.(check int) "identical decision count" r1.Par.p_report.Explorer.steps
    r4.Par.p_report.Explorer.steps;
  Alcotest.(check bool) "both complete" true
    (r1.Par.p_report.Explorer.complete && r4.Par.p_report.Explorer.complete);
  Alcotest.(check int) "identical task fixed point" r1.Par.p_tasks r4.Par.p_tasks

(* The 3-thread fuzz spec that exposed (and now regression-tests) the
   bst-howley splice-resurrection bug: the repaired protocol must stay
   clean under the partitioned DPOR at any domain count, with the
   identical exhausted space. *)
let fuzz name =
  Sct.mk_spec ~name ~initial:[ 2 ]
    ~script:
      [|
        [| (Sct.Insert, 1); (Sct.Remove, 2); (Sct.Insert, 3) |];
        [| (Sct.Insert, 1); (Sct.Insert, 2); (Sct.Remove, 3) |];
        [| (Sct.Remove, 1); (Sct.Insert, 2) |];
      |]
    ()

let test_howley_fuzz_partition_invariant () =
  let spec = fuzz "bst-howley" in
  let maker = (Registry.by_name spec.Sct.name).Registry.maker in
  let run ~sched =
    Sct.run_once ~model:(Ascy_mem.Sim.model_of_name "flat") maker spec ~sched
  in
  let explore domains = Par.explore ~bounds:Explorer.default_bounds ~domains ~run () in
  let r1 = explore 1 and r4 = explore 4 in
  Alcotest.(check bool) "clean at 1 domain" true (r1.Par.p_report.Explorer.failure = None);
  Alcotest.(check bool) "clean at 4 domains" true (r4.Par.p_report.Explorer.failure = None);
  Alcotest.(check int) "identical schedule-space size"
    r1.Par.p_report.Explorer.schedules r4.Par.p_report.Explorer.schedules;
  Alcotest.(check bool) "both complete" true
    (r1.Par.p_report.Explorer.complete && r4.Par.p_report.Explorer.complete)

(* On a failing spec every domain count must report the byte-identical
   canonical counterexample (recomputed sequentially), and it must be
   the one the plain sequential explorer finds. *)
let test_canonical_counterexample () =
  let run = run_of (duel "ll-async") in
  let seq = Explorer.explore ~bounds:small_bounds ~run () in
  let f_seq =
    match seq.Explorer.failure with
    | Some f -> f
    | None -> Alcotest.fail "sequential explorer missed the seq-list violation"
  in
  List.iter
    (fun domains ->
      let r = Par.explore ~bounds:small_bounds ~domains ~run () in
      match r.Par.p_report.Explorer.failure with
      | None ->
          Alcotest.fail
            (Printf.sprintf "%d-domain exploration missed the violation" domains)
      | Some f ->
          Alcotest.(check string)
            (Printf.sprintf "violation at %d domains matches sequential" domains)
            f_seq.Explorer.f_desc f.Explorer.f_desc;
          Alcotest.(check (array int))
            (Printf.sprintf "schedule at %d domains matches sequential" domains)
            f_seq.Explorer.f_schedule f.Explorer.f_schedule)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Randomized partition: 1 domain = 4 domains                          *)
(* ------------------------------------------------------------------ *)

(* A clean spec runs the full budget at any domain count: probe + N. *)
let test_random_partition_clean () =
  let run = run_of (duel "ll-lazy") in
  let policy = Explorer.Random { seed = 1; schedules = 64 } in
  let explore domains = Par.explore ~bounds:small_bounds ~policy ~domains ~run () in
  let r1 = explore 1 and r4 = explore 4 in
  Alcotest.(check bool) "clean at both domain counts" true
    (r1.Par.p_report.Explorer.failure = None && r4.Par.p_report.Explorer.failure = None);
  Alcotest.(check int) "identical schedule count (probe + budget)" 65
    r1.Par.p_report.Explorer.schedules;
  Alcotest.(check int) "domain count does not change the budget"
    r1.Par.p_report.Explorer.schedules r4.Par.p_report.Explorer.schedules;
  Alcotest.(check bool) "never complete" false
    (r1.Par.p_report.Explorer.complete || r4.Par.p_report.Explorer.complete)

(* A failing spec reports the lowest failing schedule index whoever
   finds it first — the counterexample is domain-count invariant. *)
let test_random_partition_failure () =
  let run = run_of (duel "ll-async") in
  let policy = Explorer.Random { seed = 1; schedules = 64 } in
  let explore domains =
    match (Par.explore ~policy ~domains ~run ()).Par.p_report.Explorer.failure with
    | Some f -> f
    | None ->
        Alcotest.fail (Printf.sprintf "%d-domain random sampling missed the bug" domains)
  in
  let f1 = explore 1 and f4 = explore 4 in
  Alcotest.(check string) "same violation" f1.Explorer.f_desc f4.Explorer.f_desc;
  Alcotest.(check (array int)) "same failing schedule" f1.Explorer.f_schedule
    f4.Explorer.f_schedule

(* ------------------------------------------------------------------ *)
(* Seeded stream primitives                                            *)
(* ------------------------------------------------------------------ *)

let draws rng n bound = List.init n (fun _ -> Xorshift.below rng bound)

(* split: children are deterministic functions of the parent state and
   pairwise-distinct streams. *)
let test_split_deterministic () =
  let children seed =
    let parent = Xorshift.create seed in
    List.init 4 (fun _ -> draws (Xorshift.split parent) 64 1000)
  in
  Alcotest.(check bool) "same seed, same children" true (children 42 = children 42);
  let cs = children 42 in
  List.iteri
    (fun i c ->
      List.iteri
        (fun j c' ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "children %d and %d differ" i j)
              false (c = c'))
        cs)
    cs

(* split streams look uniform: bucket counts of a long run stay near
   the expected value.  Deterministic (fixed seed), so the tolerance
   just documents the observed spread rather than gambling. *)
let test_split_distribution () =
  let parent = Xorshift.create 7 in
  let child = Xorshift.split parent in
  let buckets = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let b = Xorshift.below child 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expect = n / 10 in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 15%% of uniform (%d)" i c)
        true
        (abs (c - expect) < expect * 15 / 100))
    buckets

(* jump: deterministic, state-changing, and the jumped stream does not
   replay the original's output. *)
let test_jump () =
  let a = Xorshift.create 11 in
  let b = Xorshift.copy a in
  Xorshift.jump b;
  Alcotest.(check bool) "jumped stream diverges from the original" false
    (draws a 64 1_000_000 = draws b 64 1_000_000);
  let c = Xorshift.create 11 in
  let d = Xorshift.copy c in
  Xorshift.jump c;
  Xorshift.jump d;
  Alcotest.(check bool) "jump is deterministic" true
    (draws c 64 1_000_000 = draws d 64 1_000_000)

let suite =
  [
    Alcotest.test_case "partitioned DPOR deterministic: ll-lazy" `Quick
      (partition_deterministic "ll-lazy");
    Alcotest.test_case "partitioned DPOR deterministic: ht-lazy" `Quick
      (partition_deterministic "ht-lazy");
    Alcotest.test_case "partitioned DPOR deterministic: sl-herlihy" `Quick
      (partition_deterministic "sl-herlihy");
    Alcotest.test_case "partitioned DPOR deterministic: bst-tk" `Quick
      (partition_deterministic "bst-tk");
    Alcotest.test_case "partitioned DPOR deterministic: ll-pathcas" `Quick
      (partition_deterministic "ll-pathcas");
    Alcotest.test_case "canonical counterexample across domain counts" `Quick
      test_canonical_counterexample;
    Alcotest.test_case "bst-howley fuzz clean across domain counts" `Quick
      test_howley_fuzz_partition_invariant;
    Alcotest.test_case "random partition: clean spec, invariant budget" `Quick
      test_random_partition_clean;
    Alcotest.test_case "random partition: invariant counterexample" `Quick
      test_random_partition_failure;
    Alcotest.test_case "xorshift split is deterministic and distinct" `Quick
      test_split_deterministic;
    Alcotest.test_case "xorshift split streams look uniform" `Quick test_split_distribution;
    Alcotest.test_case "xorshift jump advances deterministically" `Quick test_jump;
  ]
