(* Cross-model equivalence and golden pins for the pluggable coherence
   layer (Ascy_mem.Sim.model / Cohmodel).

   The load-bearing claim: controlled schedulers make program behavior
   latency-independent, so everything *functional* — SCT schedule
   counts, oracle verdicts, minimized counterexamples — must be
   identical under the MESI directory model, the O(1) flat model and
   the Opteron-style MOESI variant.  Only *costs* (makespans, miss
   classes, energy) may differ, and they must actually differ, or a
   "model" is silently aliasing another.  The MESI default additionally
   pins the pre-refactor golden numbers bit-for-bit. *)

module Sim = Ascy_mem.Sim
module Mem = Ascy_mem.Sim.Mem
module P = Ascy_platform.Platform
module Sct = Ascy_harness.Sct_run
module Engine = Ascy_harness.Engine
module Explorer = Ascy_sct.Explorer

let mesi = Sim.model_of_name "mesi"
let flat = Sim.model_of_name "flat"
let moesi = Sim.model_of_name "moesi"

(* the 3-thread adversarial script of examples/schedule_fuzz — the
   workload behind the repo's pinned 2099-schedule ll-lazy space *)
let spec name =
  Sct.mk_spec ~name ~initial:[ 2 ]
    ~script:
      [|
        [| (Sct.Insert, 1); (Sct.Remove, 2); (Sct.Insert, 3) |];
        [| (Sct.Insert, 1); (Sct.Insert, 2); (Sct.Remove, 3) |];
        [| (Sct.Remove, 1); (Sct.Insert, 2) |];
      |]
    ()

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  Alcotest.(check (list string)) "registry names" [ "mesi"; "flat"; "moesi" ] (Sim.model_names ());
  Alcotest.(check string) "default is mesi" "mesi" (Sim.model_name_of Sim.default_model);
  Alcotest.(check string)
    "lookup is case-insensitive" "moesi"
    (Sim.model_name_of (Sim.model_of_name "MOESI"));
  Alcotest.check_raises "unknown model rejected"
    (Invalid_argument "unknown coherence model: mesix (expected one of: mesi, flat, moesi)")
    (fun () -> ignore (Sim.model_of_name "mesix"))

(* ------------------------------------------------------------------ *)
(* Functional equivalence under controlled scheduling                  *)
(* ------------------------------------------------------------------ *)

(* fixed deterministic scheduler: always run the lowest runnable tid *)
let lowest_tid r = Sim.runnable_tid r 0

let test_run_once_verdict_invariant () =
  let verdict model name =
    let maker = (Ascylib.Registry.by_name name).Ascylib.Registry.maker in
    Sct.run_once ~races:true ~model maker (spec name) ~sched:lowest_tid
  in
  List.iter
    (fun name ->
      let m = verdict mesi name and f = verdict flat name and o = verdict moesi name in
      Alcotest.(check (option string)) (name ^ ": flat = mesi") m f;
      Alcotest.(check (option string)) (name ^ ": moesi = mesi") m o)
    [ "ll-lazy"; "ll-async"; "ht-java"; "sl-fraser"; "bst-tk"; "ll-pathcas"; "bst-pathcas" ]

let explore_stats model name =
  let finding, report = Sct.explore ~mode:Explorer.Dpor ~model (spec name) in
  ( report.Explorer.schedules,
    report.Explorer.steps,
    report.Explorer.complete,
    Option.map (fun (f : Sct.finding) -> f.Sct.violation) finding )

let test_schedule_space_invariant () =
  (* ll-harris: a fast, exhaustively-explorable space *)
  let m = explore_stats mesi "ll-harris" in
  Alcotest.(check bool) "flat explores the same space" true (explore_stats flat "ll-harris" = m);
  Alcotest.(check bool) "moesi explores the same space" true (explore_stats moesi "ll-harris" = m)

let test_flat_ll_lazy_golden_space () =
  (* the repo's pinned schedule space, explored under the cheap model:
     any drift in either the flat model or the scheduler core moves
     these numbers *)
  let schedules, steps, complete, violation = explore_stats flat "ll-lazy" in
  Alcotest.(check int) "ll-lazy schedules" 2099 schedules;
  Alcotest.(check int) "ll-lazy decisions" 609_932 steps;
  Alcotest.(check bool) "space exhausted" true complete;
  Alcotest.(check (option string)) "no violation" None violation

let test_pathcas_space_invariant () =
  (* the k-CAS commit must be priced per touched line by every model
     yet scheduled identically: same exhausted space, same verdict,
     under the directory model and the O(1) flat model *)
  let m = explore_stats mesi "ll-pathcas" in
  Alcotest.(check bool) "flat explores the same ll-pathcas space" true
    (explore_stats flat "ll-pathcas" = m);
  let schedules, _, complete, violation = m in
  Alcotest.(check int) "ll-pathcas fuzz schedules" 50 schedules;
  Alcotest.(check bool) "space exhausted" true complete;
  Alcotest.(check (option string)) "no violation" None violation

let test_minimized_counterexample_invariant () =
  let hunt model =
    let finding, _ = Sct.explore ~mode:Explorer.Dpor ~races:true ~model (spec "ll-async") in
    match finding with
    | None -> Alcotest.fail "SCT failed to break the asynchronized list"
    | Some f -> f
  in
  let m = hunt mesi and f = hunt flat in
  Alcotest.(check string) "same violation" m.Sct.violation f.Sct.violation;
  Alcotest.(check (array int)) "same failing schedule" m.Sct.schedule f.Sct.schedule;
  Alcotest.(check (array int)) "same minimized prefix" m.Sct.minimized f.Sct.minimized;
  Alcotest.(check string) "same minimized violation" m.Sct.min_violation f.Sct.min_violation

(* ------------------------------------------------------------------ *)
(* Replay files record and re-arm the model                            *)
(* ------------------------------------------------------------------ *)

let test_replay_rearms_model () =
  let finding, _ = Sct.explore ~mode:Explorer.Dpor ~races:true ~model:flat (spec "ll-async") in
  let f = Option.get finding in
  let path = Filename.temp_file "model_roundtrip" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sct.save_finding ~races:true ~model:flat ~path (spec "ll-async") f;
      let meta =
        let _, _, meta = Ascy_sct.Replay.load path in
        meta
      in
      Alcotest.(check string)
        "non-default model recorded in meta" "flat"
        (Sim.model_name_of (Engine.model_of_meta meta));
      let _, expected, results = Sct.replay_file ~times:2 path in
      Alcotest.(check bool)
        "replay reproduces under the recorded model" true
        (match (expected, results) with
        | Some v, [ Some a; Some b ] -> a = v && b = v
        | _ -> false))

let test_default_model_meta_is_empty () =
  (* mesi replay files must stay byte-identical to pre-refactor ones:
     the default model adds no metadata *)
  Alcotest.(check int) "mesi adds no meta" 0 (List.length (Engine.model_meta mesi));
  Alcotest.(check string)
    "absent meta defaults to mesi" "mesi"
    (Sim.model_name_of (Engine.model_of_meta []))

(* ------------------------------------------------------------------ *)
(* Costs: models must actually be different models                     *)
(* ------------------------------------------------------------------ *)

(* two threads ping-ponging RMWs on one line: maximal coherence traffic *)
let pingpong model platform =
  Sim.with_sim ~seed:7 ~model ~platform ~nthreads:2 (fun sim ->
      let r = Mem.make_fresh 0 in
      let body _ () =
        for _ = 1 to 200 do
          ignore (Mem.fetch_and_add r 1)
        done
      in
      let makespan = Sim.run sim (Array.init 2 body) in
      (Mem.get r, makespan, Sim.stats sim ~makespan))

(* one writer, one reader on a single line: MESI demotes the dirty line
   to Shared on every read (with an LLC writeback), MOESI leaves it
   Owned in the writer's cache — so the two price this pattern
   differently, while a pure RMW ping-pong (always write-intent) costs
   the same under both *)
let write_read_share model platform =
  Sim.with_sim ~seed:7 ~model ~platform ~nthreads:2 (fun sim ->
      let r = Mem.make_fresh 0 in
      let bodies =
        [|
          (fun () ->
            for i = 1 to 300 do
              Mem.set r i
            done);
          (fun () ->
            for _ = 1 to 300 do
              ignore (Mem.get r)
            done);
        |]
      in
      let makespan = Sim.run sim bodies in
      (makespan, Sim.stats sim ~makespan))

let test_models_priced_differently () =
  let v_mesi, m_mesi, _ = pingpong mesi P.opteron in
  let v_flat, m_flat, _ = pingpong flat P.opteron in
  let v_moesi, m_moesi, _ = pingpong moesi P.opteron in
  Alcotest.(check int) "mesi: no lost updates" 400 v_mesi;
  Alcotest.(check int) "flat: no lost updates" 400 v_flat;
  Alcotest.(check int) "moesi: no lost updates" 400 v_moesi;
  Alcotest.(check bool) "flat is cheaper than mesi" true (m_flat < m_mesi);
  Alcotest.(check int) "rmw ping-pong costs the same under moesi" m_mesi m_moesi;
  let wr_mesi, st_mesi = write_read_share mesi P.opteron in
  let wr_moesi, st_moesi = write_read_share moesi P.opteron in
  Alcotest.(check bool) "moesi prices dirty-read sharing differently" true (wr_moesi <> wr_mesi);
  Alcotest.(check bool)
    "moesi never demotes into the llc" true
    (st_moesi.Sim.hits_llc < st_mesi.Sim.hits_llc)

let test_flat_is_uniform () =
  (* under flat, every access costs an L1 hit: a shared ping-pong and a
     private loop of the same length have identical access costs *)
  let _, _, st = pingpong flat P.xeon20 in
  Alcotest.(check int) "no transfers counted" 0 (st.Sim.transfers_local + st.Sim.transfers_remote);
  Alcotest.(check int) "no llc hits counted" 0 (st.Sim.hits_llc + st.Sim.fetch_remote);
  Alcotest.(check int) "no memory accesses counted" 0 st.Sim.misses_mem;
  Alcotest.(check int) "everything is an l1 hit" st.Sim.accesses st.Sim.hits_l1

(* ------------------------------------------------------------------ *)
(* MESI golden pins                                                    *)
(* ------------------------------------------------------------------ *)

let test_mesi_default_identity () =
  (* the implicit default must be the very same run as explicit mesi *)
  let explicit = pingpong mesi P.xeon20 in
  let implicit =
    Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
        let r = Mem.make_fresh 0 in
        let body _ () =
          for _ = 1 to 200 do
            ignore (Mem.fetch_and_add r 1)
          done
        in
        let makespan = Sim.run sim (Array.init 2 body) in
        (Mem.get r, makespan, Sim.stats sim ~makespan))
  in
  Alcotest.(check bool) "default model = mesi, bit for bit" true (explicit = implicit)

let test_mesi_golden_stats () =
  (* bit-for-bit pin of the pre-refactor directory model on a fixed
     contended workload; any change to MESI's state machine, the charge
     order, or the scheduler moves at least one of these numbers *)
  let _, makespan, st = pingpong mesi P.xeon20 in
  Alcotest.(check int) "makespan" 17_022 makespan;
  Alcotest.(check int) "accesses" 400 st.Sim.accesses;
  Alcotest.(check int) "atomics" 400 st.Sim.atomics;
  Alcotest.(check int) "l1 hits" 13 st.Sim.hits_l1;
  Alcotest.(check int) "local transfers" 386 st.Sim.transfers_local

let suite =
  [
    Alcotest.test_case "model registry" `Quick test_registry;
    Alcotest.test_case "controlled verdicts model-invariant" `Quick test_run_once_verdict_invariant;
    Alcotest.test_case "schedule space model-invariant" `Slow test_schedule_space_invariant;
    Alcotest.test_case "flat ll-lazy pins 2099 schedules" `Slow test_flat_ll_lazy_golden_space;
    Alcotest.test_case "ll-pathcas space model-invariant" `Slow test_pathcas_space_invariant;
    Alcotest.test_case "minimized counterexample model-invariant" `Slow
      test_minimized_counterexample_invariant;
    Alcotest.test_case "replay re-arms recorded model" `Quick test_replay_rearms_model;
    Alcotest.test_case "default model leaves meta empty" `Quick test_default_model_meta_is_empty;
    Alcotest.test_case "models priced differently" `Quick test_models_priced_differently;
    Alcotest.test_case "flat is uniform cost" `Quick test_flat_is_uniform;
    Alcotest.test_case "default = explicit mesi" `Quick test_mesi_default_identity;
    Alcotest.test_case "mesi golden stats" `Quick test_mesi_golden_stats;
  ]
