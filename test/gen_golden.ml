(* Regenerates the golden serialization pinned by
   test_harness.test_results_golden_file:

     dune exec test/gen_golden.exe > test/results_golden.json

   The synthetic result below MUST stay in sync with
   [Test_harness.synthetic_result]; regenerating the golden file is the
   deliberate act of changing the schema (bump
   [Ascy_harness.Results.schema_version] when the change is not
   backward compatible). *)

module R = Ascy_harness.Sim_run
module W = Ascy_harness.Workload
module H = Ascy_util.Histogram

let synthetic_result () : R.result =
  let lat = R.fresh_latencies () in
  List.iter (H.add lat.R.search_hit) [ 10.0; 20.0; 30.0; 40.0 ];
  H.add lat.R.insert_ok 15.0;
  {
    R.algorithm = "golden-algo";
    platform = "Xeon20";
    nthreads = 4;
    seed = 7;
    ops_per_thread = 25;
    workload = W.make ~initial:16 ~update_pct:20 ();
    ops = 100;
    updates_attempted = 20;
    updates_successful = 10;
    seconds = 0.001;
    throughput_mops = 0.1;
    stats =
      {
        Ascy_mem.Sim.makespan_cycles = 2300;
        seconds = 0.001;
        accesses = 1000;
        hits_l1 = 900;
        hits_llc = 50;
        transfers_local = 20;
        transfers_remote = 10;
        fetch_remote = 5;
        misses_mem = 15;
        atomics = 30;
        stores = 120;
        energy_j = 0.5;
        power_w = 500.0;
        events = Array.init Ascy_mem.Event.count (fun i -> i);
      };
    thread_stats =
      [|
        {
          Ascy_mem.Sim.t_tid = 0;
          t_accesses = 500;
          t_l1 = 450;
          t_llc = 25;
          t_c2c_local = 10;
          t_c2c_remote = 5;
          t_llc_remote = 3;
          t_mem = 7;
          t_atomics = 15;
          t_stores = 60;
          t_energy_nj = 0.25e9;
        };
        {
          Ascy_mem.Sim.t_tid = 1;
          t_accesses = 500;
          t_l1 = 450;
          t_llc = 25;
          t_c2c_local = 10;
          t_c2c_remote = 5;
          t_llc_remote = 2;
          t_mem = 8;
          t_atomics = 15;
          t_stores = 60;
          t_energy_nj = 0.25e9;
        };
      |];
    latencies = lat;
    final_size = 17;
  }

let () =
  print_string
    (Ascy_util.Json.to_string ~indent:1
       (Ascy_harness.Results.of_sim_run ~label:"golden" (synthetic_result ())));
  print_newline ()
