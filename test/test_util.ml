(* Unit + property tests for the ascy_util substrate. *)

open Ascy_util

let test_xorshift_determinism () =
  let a = Xorshift.create 5 and b = Xorshift.create 5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same seed, same stream" (Xorshift.next a) (Xorshift.next b)
  done

let test_xorshift_range () =
  let r = Xorshift.create 9 in
  for _ = 1 to 1000 do
    let x = Xorshift.below r 17 in
    Alcotest.(check bool) "below in range" true (x >= 0 && x < 17)
  done

let test_xorshift_below_determinism () =
  let a = Xorshift.create 31 and b = Xorshift.create 31 in
  for _ = 1 to 500 do
    Alcotest.(check int) "below: same seed, same stream" (Xorshift.below a 1000)
      (Xorshift.below b 1000)
  done

(* Rejection sampling must stay in range even for bounds where
   [next mod n] is badly biased (n close to max_int). *)
let test_xorshift_below_large_n () =
  let r = Xorshift.create 13 in
  let n = (max_int / 2) + 3 in
  for _ = 1 to 200 do
    let x = Xorshift.below r n in
    Alcotest.(check bool) "large-n below in range" true (x >= 0 && x < n)
  done;
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Xorshift.below: n must be positive")
    (fun () -> ignore (Xorshift.below r 0))

let test_xorshift_below_roughly_uniform () =
  let r = Xorshift.create 77 in
  let buckets = Array.make 7 0 in
  let n = 70_000 in
  for _ = 1 to n do
    let x = Xorshift.below r 7 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d count %d within 10%% of %d" i c (n / 7))
        true
        (abs (c - (n / 7)) < n / 70))
    buckets

let test_vec_push_get () =
  let v = Vec.create 0 in
  for i = 0 to 999 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "get 37" (37 * 37) (Vec.get v 37);
  Vec.set v 5 42;
  Alcotest.(check int) "set/get" 42 (Vec.get v 5)

let test_vec_sort () =
  let v = Vec.create 0 in
  List.iter (Vec.push v) [ 5; 1; 4; 2; 3 ];
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (Array.to_list (Vec.to_array v))

let test_bits_basic () =
  let b = Bits.create 100 in
  Bits.add b 0;
  Bits.add b 63;
  Bits.add b 64;
  Bits.add b 99;
  Alcotest.(check bool) "mem 63" true (Bits.mem b 63);
  Alcotest.(check bool) "mem 64" true (Bits.mem b 64);
  Alcotest.(check bool) "not mem 1" false (Bits.mem b 1);
  Alcotest.(check int) "cardinal" 4 (Bits.cardinal b);
  Bits.remove b 63;
  Alcotest.(check bool) "removed" false (Bits.mem b 63);
  Alcotest.(check int) "choose smallest" 0 (Bits.choose b);
  Bits.clear b;
  Alcotest.(check bool) "empty after clear" true (Bits.is_empty b)

let prop_bits_model =
  QCheck.Test.make ~count:200 ~name:"bitset agrees with a list model"
    QCheck.(list (pair bool (int_bound 199)))
    (fun ops ->
      let b = Ascy_util.Bits.create 200 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Ascy_util.Bits.add b i;
            Hashtbl.replace model i ()
          end
          else begin
            Ascy_util.Bits.remove b i;
            Hashtbl.remove model i
          end)
        ops;
      Ascy_util.Bits.cardinal b = Hashtbl.length model
      && Hashtbl.fold (fun i () acc -> acc && Ascy_util.Bits.mem b i) model true)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i)
  done;
  Alcotest.(check (float 0.001)) "p50" 50.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.001)) "p99" 99.0 (Histogram.percentile h 99.0);
  Alcotest.(check (float 0.001)) "p1" 1.0 (Histogram.percentile h 1.0);
  Alcotest.(check (float 0.001)) "mean" 50.5 (Histogram.mean h)

let test_histogram_nearest_rank () =
  (* nearest-rank on a known 10-sample set *)
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 9.0; 1.0; 7.0; 3.0; 5.0; 10.0; 2.0; 8.0; 4.0; 6.0 ];
  List.iter
    (fun (p, want) ->
      Alcotest.(check (float 0.0)) (Printf.sprintf "p%.0f" p) want (Histogram.percentile h p))
    [ (1.0, 1.0); (25.0, 3.0); (50.0, 5.0); (75.0, 8.0); (99.0, 10.0); (100.0, 10.0) ]

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Histogram.mean h);
  Alcotest.(check (float 0.0)) "percentile" 0.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "summary" 0.0 (Histogram.summary h).(2)

let test_histogram_add_after_percentile () =
  (* the lazy sort must be invalidated by later adds *)
  let h = Histogram.create () in
  Histogram.add h 10.0;
  Alcotest.(check (float 0.0)) "p50 of {10}" 10.0 (Histogram.percentile h 50.0);
  Histogram.add h 1.0;
  Histogram.add h 2.0;
  Alcotest.(check (float 0.0)) "p50 re-sorted" 2.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "p1 re-sorted" 1.0 (Histogram.percentile h 1.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1.0; 2.0 ];
  List.iter (Histogram.add b) [ 3.0; 4.0 ];
  let m = Histogram.merge a b in
  Alcotest.(check bool) "merge returns target" true (m == a);
  Alcotest.(check int) "merged count" 4 (Histogram.count a);
  Alcotest.(check int) "source untouched" 2 (Histogram.count b);
  Alcotest.(check (float 0.0)) "merged p99" 4.0 (Histogram.percentile a 99.0);
  let e = Histogram.create () in
  ignore (Histogram.merge a e);
  Alcotest.(check int) "merge with empty is no-op" 4 (Histogram.count a);
  ignore (Histogram.merge a a);
  Alcotest.(check int) "self-merge is a no-op" 4 (Histogram.count a);
  Alcotest.(check (float 0.0)) "mean stable after self-merge" 2.5 (Histogram.mean a)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 3.25);
        ("tiny", Json.Float 1.0000000000000002e-9);
        ("str", Json.String "a \"quoted\"\n\ttab\\slash");
        ("null", Json.Null);
        ("flag", Json.Bool false);
        ("list", Json.List [ Json.Int 1; Json.Obj [ ("k", Json.Bool true) ]; Json.List [] ]);
        ("empty", Json.Obj []);
      ]
  in
  Alcotest.(check bool) "compact round-trip" true (Json.of_string (Json.to_string v) = v);
  Alcotest.(check bool) "pretty round-trip" true (Json.of_string (Json.to_string ~indent:2 v) = v)

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed input: %s" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let prop_histogram_bounds =
  QCheck.Test.make ~count:100 ~name:"percentiles are within sample bounds"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (float_bound_exclusive 1000.0))
    (fun xs ->
      let h = Ascy_util.Histogram.create () in
      List.iter (Ascy_util.Histogram.add h) xs;
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      List.for_all
        (fun p ->
          let v = Ascy_util.Histogram.percentile h p in
          v >= lo && v <= hi)
        [ 1.0; 25.0; 50.0; 75.0; 99.0 ])

let suite =
  [
    Alcotest.test_case "xorshift determinism" `Quick test_xorshift_determinism;
    Alcotest.test_case "xorshift range" `Quick test_xorshift_range;
    Alcotest.test_case "xorshift below determinism" `Quick test_xorshift_below_determinism;
    Alcotest.test_case "xorshift below large n (rejection)" `Quick test_xorshift_below_large_n;
    Alcotest.test_case "xorshift below uniformity" `Quick test_xorshift_below_roughly_uniform;
    Alcotest.test_case "vec push/get/set" `Quick test_vec_push_get;
    Alcotest.test_case "vec sort" `Quick test_vec_sort;
    Alcotest.test_case "bits basic" `Quick test_bits_basic;
    QCheck_alcotest.to_alcotest prop_bits_model;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram nearest-rank" `Quick test_histogram_nearest_rank;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram add after percentile" `Quick test_histogram_add_after_percentile;
    Alcotest.test_case "histogram merge (incl. self/empty)" `Quick test_histogram_merge;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    QCheck_alcotest.to_alcotest prop_histogram_bounds;
  ]
