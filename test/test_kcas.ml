(* The multi-word-CAS layer (Memory.S.kcas) on both backends.

   Native (Harris RDCSS/k-CAS with helping): semantics, duplicate
   rejection, the helping path driven directly through the backend's
   acquire hook (a committer "crash-stopped" mid-commit is finished by
   the next ordinary access), and a cross-domain transfer stress whose
   conservation invariant only holds if commits are all-or-nothing.

   Simulator (atomic multi-line commit): the same semantics, the
   per-line RMW accounting the ASCY4 k-word policy builds on, probe
   k-CASes that can never witness a half-applied commit, and
   disjoint-vs-overlapping thread interaction. *)

module N = Ascy_mem.Mem_native
module Sim = Ascy_mem.Sim
module SM = Ascy_mem.Sim.Mem
module P = Ascy_platform.Platform

(* ------------------------------------------------------------------ *)
(* Native backend                                                      *)
(* ------------------------------------------------------------------ *)

let ncell v = N.make (N.new_line ()) v

let test_native_semantics () =
  let a = ncell 1 and b = ncell 2 and c = ncell 3 in
  Alcotest.(check bool) "empty k-CAS is true" true (N.kcas []);
  Alcotest.(check bool) "1-op k-CAS is a CAS" true
    (N.kcas [ N.kcas_op a ~expected:1 ~desired:10 ]);
  Alcotest.(check int) "1-op applied" 10 (N.get a);
  Alcotest.(check bool) "1-op k-CAS fails like a CAS" false
    (N.kcas [ N.kcas_op a ~expected:1 ~desired:99 ]);
  Alcotest.(check bool) "3-op success" true
    (N.kcas
       [
         N.kcas_op a ~expected:10 ~desired:11;
         N.kcas_op b ~expected:2 ~desired:22;
         N.kcas_op c ~expected:3 ~desired:33;
       ]);
  Alcotest.(check (list int)) "all three applied" [ 11; 22; 33 ]
    [ N.get a; N.get b; N.get c ];
  Alcotest.(check bool) "one stale expected fails the whole commit" false
    (N.kcas
       [
         N.kcas_op a ~expected:11 ~desired:12;
         N.kcas_op b ~expected:2 ~desired:0 (* stale *);
         N.kcas_op c ~expected:33 ~desired:34;
       ]);
  Alcotest.(check (list int)) "nothing applied on failure" [ 11; 22; 33 ]
    [ N.get a; N.get b; N.get c ]

let test_native_duplicate_rejected () =
  let a = ncell 1 and b = ncell 2 in
  Alcotest.check_raises "same cell twice rejected"
    (Invalid_argument "Memory.kcas: duplicate cell") (fun () ->
      ignore
        (N.kcas
           [
             N.kcas_op a ~expected:1 ~desired:2;
             N.kcas_op b ~expected:2 ~desired:3;
             N.kcas_op a ~expected:2 ~desired:3;
           ]))

(* A committer stalls (modeled as an exception out of the backend's
   acquire hook) after phase-1-acquiring the first cell: its descriptor
   is left published.  Reads peek through the undecided descriptor and
   still see pre-commit values; the next write-intent access helps the
   stalled commit to completion before doing its own work. *)
let test_native_helping () =
  let a = ncell 0 and b = ncell 10 in
  N.kdx_acquire_hook := (fun n -> if n = 1 then raise Exit);
  Fun.protect
    ~finally:(fun () -> N.kdx_acquire_hook := (fun _ -> ()))
    (fun () ->
      (try
         ignore
           (N.kcas [ N.kcas_op a ~expected:0 ~desired:1; N.kcas_op b ~expected:10 ~desired:11 ]);
         Alcotest.fail "acquire hook did not fire"
       with Exit -> ());
      (* cells were created in order, so [a] has the lower id and is the
         one acquired before the stall *)
      Alcotest.(check int) "read peeks through the undecided descriptor" 0 (N.get a);
      Alcotest.(check int) "unacquired cell untouched" 10 (N.get b));
  (* hook reset: an ordinary CAS on the occupied cell must first help
     the stalled k-CAS to its decision, so it fails against the
     committed value — and both cells carry the committer's update *)
  Alcotest.(check bool) "helper's own CAS loses to the commit" false (N.cas a 0 5);
  Alcotest.(check int) "helper completed the stalled commit (a)" 1 (N.get a);
  Alcotest.(check int) "helper completed the stalled commit (b)" 11 (N.get b)

let test_native_disjoint_domains () =
  (* disjoint cell sets never conflict: every commit must succeed *)
  let pairs = Array.init 4 (fun _ -> (ncell 0, ncell 0)) in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            let x, y = pairs.(d) in
            let ok = ref true in
            for i = 0 to 999 do
              ok :=
                !ok
                && N.kcas
                     [ N.kcas_op x ~expected:i ~desired:(i + 1);
                       N.kcas_op y ~expected:(-i) ~desired:(-i - 1) ]
            done;
            !ok))
  in
  Array.iter (fun d -> Alcotest.(check bool) "disjoint k-CAS never fails" true (Domain.join d)) domains;
  Array.iter
    (fun (x, y) ->
      Alcotest.(check int) "x counted up" 1000 (N.get x);
      Alcotest.(check int) "y counted down" (-1000) (N.get y))
    pairs

let test_native_overlapping_transfer_stress () =
  (* 4 domains race transfers over 8 shared cells; overlapping commits
     fail and retry.  The total is conserved iff every commit was
     all-or-nothing, including ones finished by helpers. *)
  let n = 8 in
  let cells = Array.init n (fun _ -> ncell 100) in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Ascy_util.Xorshift.create (d + 17) in
            let moved = ref 0 in
            for _ = 1 to 5_000 do
              let i = Ascy_util.Xorshift.below rng n in
              let j = (i + 1 + Ascy_util.Xorshift.below rng (n - 1)) mod n in
              let vi = N.get cells.(i) and vj = N.get cells.(j) in
              if
                vi > 0
                && N.kcas
                     [
                       N.kcas_op cells.(i) ~expected:vi ~desired:(vi - 1);
                       N.kcas_op cells.(j) ~expected:vj ~desired:(vj + 1);
                     ]
              then incr moved
            done;
            !moved))
  in
  let moved = Array.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  let total = Array.fold_left (fun acc c -> acc + N.get c) 0 cells in
  Alcotest.(check bool) "some transfers landed" true (moved > 0);
  Alcotest.(check int) "sum conserved across all commits" (n * 100) total

(* ------------------------------------------------------------------ *)
(* Simulator backend                                                   *)
(* ------------------------------------------------------------------ *)

let test_sim_semantics_and_accounting () =
  Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let a = SM.make_fresh 0 and b = SM.make_fresh 10 in
      let results = ref [] in
      let body () =
        let push x = results := x :: !results in
        push (SM.kcas []);
        push (SM.kcas [ SM.kcas_op a ~expected:0 ~desired:1; SM.kcas_op b ~expected:10 ~desired:11 ]);
        (* stale expected: whole commit refused, nothing written *)
        push (SM.kcas [ SM.kcas_op a ~expected:0 ~desired:2; SM.kcas_op b ~expected:11 ~desired:12 ]);
        push (SM.get a = 1 && SM.get b = 11)
      in
      let makespan = Sim.run sim [| body |] in
      Alcotest.(check (list bool)) "empty/success/stale/final" [ true; true; false; true ]
        (List.rev !results);
      let st = Sim.stats sim ~makespan in
      (* the ASCY4 k-word policy's accounting: each commit attempt
         charges one RMW per distinct touched line — two 2-line commits
         (one failed) = 4 atomics *)
      Alcotest.(check int) "one rmw per line per commit attempt" 4 st.Sim.atomics)

let test_sim_duplicate_rejected () =
  Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let failed = ref false in
      let body () =
        let a = SM.make_fresh 0 in
        try ignore (SM.kcas [ SM.kcas_op a ~expected:0 ~desired:1; SM.kcas_op a ~expected:1 ~desired:2 ])
        with Invalid_argument m -> failed := m = "Memory.kcas: duplicate cell"
      in
      ignore (Sim.run sim [| body |]);
      Alcotest.(check bool) "same cell twice rejected in the simulator" true !failed)

let test_sim_probe_atomicity () =
  (* a 2-line commit flips (0, 0) to (1, 1); a concurrent 2-word probe
     k-CAS — itself atomic — can witness either state but never the
     forbidden mixed ones, no matter how the commit interleaves with
     the prober's loop *)
  Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let a = SM.make_fresh 0 and b = SM.make_fresh 0 in
      let mixed = ref 0 and consistent = ref 0 in
      let bodies =
        [|
          (fun () ->
            SM.work 40;
            assert (SM.kcas [ SM.kcas_op a ~expected:0 ~desired:1; SM.kcas_op b ~expected:0 ~desired:1 ]));
          (fun () ->
            for _ = 1 to 20 do
              if
                SM.kcas [ SM.kcas_op a ~expected:0 ~desired:0; SM.kcas_op b ~expected:1 ~desired:1 ]
                || SM.kcas [ SM.kcas_op a ~expected:1 ~desired:1; SM.kcas_op b ~expected:0 ~desired:0 ]
              then incr mixed;
              if
                SM.kcas [ SM.kcas_op a ~expected:0 ~desired:0; SM.kcas_op b ~expected:0 ~desired:0 ]
                || SM.kcas [ SM.kcas_op a ~expected:1 ~desired:1; SM.kcas_op b ~expected:1 ~desired:1 ]
              then incr consistent
            done);
        |]
      in
      ignore (Sim.run sim bodies);
      Alcotest.(check int) "no probe ever sees a half-applied commit" 0 !mixed;
      Alcotest.(check int) "every probe round sees a consistent state" 20 !consistent;
      Alcotest.(check bool) "commit landed" true (SM.get a = 1 && SM.get b = 1))

let test_sim_disjoint_and_overlapping () =
  Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let a = SM.make_fresh 0 and b = SM.make_fresh 0 and c = SM.make_fresh 0 in
      let d = SM.make_fresh 0 and e = SM.make_fresh 0 in
      (* each thread owns a private cell and both bump the shared [b]:
         read-validate-retry on b, like a PathCAS commit *)
      let bump priv delta () =
        let rec go tries =
          if tries > 100 then Alcotest.fail "overlapping k-CAS starved"
          else
            let v = SM.get b in
            if
              not
                (SM.kcas
                   [ SM.kcas_op b ~expected:v ~desired:(v + delta); SM.kcas_op priv ~expected:0 ~desired:1 ])
            then go (tries + 1)
        in
        go 0
      in
      let bodies =
        [|
          (fun () ->
            (* disjoint pair (d, e): cannot conflict with the other thread *)
            assert (SM.kcas [ SM.kcas_op d ~expected:0 ~desired:1; SM.kcas_op e ~expected:0 ~desired:1 ]);
            bump a 1 ());
          bump c 10;
        |]
      in
      ignore (Sim.run sim bodies);
      Alcotest.(check bool) "disjoint pair committed" true (SM.get d = 1 && SM.get e = 1);
      Alcotest.(check int) "shared cell carries both overlapping updates" 11 (SM.get b);
      Alcotest.(check bool) "both private cells committed" true (SM.get a = 1 && SM.get c = 1))

let suite =
  [
    Alcotest.test_case "native: k-CAS semantics" `Quick test_native_semantics;
    Alcotest.test_case "native: duplicate cell rejected" `Quick test_native_duplicate_rejected;
    Alcotest.test_case "native: stalled committer finished by helper" `Quick test_native_helping;
    Alcotest.test_case "native: disjoint sets never fail (4 domains)" `Quick
      test_native_disjoint_domains;
    Alcotest.test_case "native: overlapping transfer stress conserves (4 domains)" `Quick
      test_native_overlapping_transfer_stress;
    Alcotest.test_case "sim: semantics + per-line rmw accounting" `Quick
      test_sim_semantics_and_accounting;
    Alcotest.test_case "sim: duplicate cell rejected" `Quick test_sim_duplicate_rejected;
    Alcotest.test_case "sim: probes never see a half-applied commit" `Quick
      test_sim_probe_atomicity;
    Alcotest.test_case "sim: disjoint vs overlapping commits" `Quick
      test_sim_disjoint_and_overlapping;
  ]
