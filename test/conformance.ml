(* Generic conformance suite applied to every CSDS implementation.

   Three layers:
   - sequential semantics (native mode, single thread);
   - qcheck model-based testing against a reference set (native mode);
   - deterministic concurrency tests inside the simulator: random
     workloads under several seeds/schedules, then per-key conservation
     (net successful inserts - removes per key must equal final
     membership), structural validation, and size consistency. *)

module Set_intf = Ascy_core.Set_intf
module Sim = Ascy_mem.Sim

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

module Seq_tests (M : Set_intf.SET) = struct
  let empty () =
    let t = M.create () in
    check "search misses on empty" false (M.search t 5 <> None);
    check "remove fails on empty" false (M.remove t 5);
    checki "size 0" 0 (M.size t);
    check "validate ok" true (M.validate t = Ok ())

  let basic () =
    let t = M.create () in
    check "insert 10" true (M.insert t 10 "a");
    check "insert 10 again fails" false (M.insert t 10 "b");
    check "found" true (M.search t 10 = Some "a");
    check "insert 5" true (M.insert t 5 "c");
    check "insert 15" true (M.insert t 15 "d");
    checki "size 3" 3 (M.size t);
    check "remove 10" true (M.remove t 10);
    check "remove 10 again fails" false (M.remove t 10);
    check "10 gone" true (M.search t 10 = None);
    check "5 intact" true (M.search t 5 = Some "c");
    check "15 intact" true (M.search t 15 = Some "d");
    check "reinsert 10" true (M.insert t 10 "e");
    check "new value visible" true (M.search t 10 = Some "e");
    check "validate ok" true (M.validate t = Ok ())

  let bulk () =
    let t = M.create () in
    let n = 200 in
    let keys = Array.init n (fun i -> (i * 37) + 1) in
    (* shuffle deterministically *)
    let rng = Ascy_util.Xorshift.create 7 in
    for i = n - 1 downto 1 do
      let j = Ascy_util.Xorshift.below rng (i + 1) in
      let tmp = keys.(i) in
      keys.(i) <- keys.(j);
      keys.(j) <- tmp
    done;
    Array.iter (fun k -> check "bulk insert" true (M.insert t k (string_of_int k))) keys;
    checki "bulk size" n (M.size t);
    Array.iter (fun k -> check "bulk search" true (M.search t k = Some (string_of_int k))) keys;
    check "validate ok" true (M.validate t = Ok ());
    (* remove every other key *)
    Array.iteri (fun i k -> if i mod 2 = 0 then check "bulk remove" true (M.remove t k)) keys;
    checki "half size" (n / 2) (M.size t);
    Array.iteri
      (fun i k ->
        let expect = i mod 2 = 1 in
        check "post-remove membership" expect (M.search t k <> None))
      keys;
    check "validate ok after removes" true (M.validate t = Ok ())

  let boundaries () =
    let t = M.create () in
    check "insert min_key" true (M.insert t Set_intf.min_key "lo");
    check "insert max_key" true (M.insert t Set_intf.max_key "hi");
    check "find min_key" true (M.search t Set_intf.min_key = Some "lo");
    check "find max_key" true (M.search t Set_intf.max_key = Some "hi");
    check "remove min_key" true (M.remove t Set_intf.min_key);
    check "remove max_key" true (M.remove t Set_intf.max_key);
    checki "empty again" 0 (M.size t)

  let no_read_only_fail () =
    (* the ASCY3 toggle must not change semantics *)
    let t = M.create ~read_only_fail:false () in
    check "insert" true (M.insert t 3 "x");
    check "dup insert fails" false (M.insert t 3 "y");
    check "remove missing fails" false (M.remove t 4);
    check "remove" true (M.remove t 3);
    check "gone" true (M.search t 3 = None)

  let model_arb =
    QCheck.make
      ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | `Insert k -> Printf.sprintf "i%d" k
               | `Remove k -> Printf.sprintf "r%d" k
               | `Search k -> Printf.sprintf "s%d" k)
             ops))
      QCheck.Gen.(
        list_size (int_range 1 120)
          (oneof
             [
               map (fun k -> `Insert (k land 31)) small_nat;
               map (fun k -> `Remove (k land 31)) small_nat;
               map (fun k -> `Search (k land 31)) small_nat;
             ]))

  let model_prop ops =
    let t = M.create () in
    let model = Hashtbl.create 32 in
    List.for_all
      (fun o ->
        match o with
        | `Insert k ->
            let expect = not (Hashtbl.mem model k) in
            if expect then Hashtbl.replace model k k;
            M.insert t k k = expect
        | `Remove k ->
            let expect = Hashtbl.mem model k in
            Hashtbl.remove model k;
            M.remove t k = expect
        | `Search k -> M.search t k = (if Hashtbl.mem model k then Some k else None))
      ops
    && M.size t = Hashtbl.length model
    && M.validate t = Ok ()
end

(* ------------------------------------------------------------------ *)

(* Simulated concurrent workload: [nthreads] threads perform random
   mixed operations; afterwards we check conservation per key. *)
let sim_stress (module Maker : Set_intf.MAKER) ~seed ~nthreads ~key_range ~ops ~updates () =
  let module M = Maker (Sim.Mem) in
  Sim.with_sim ~seed ~jitter:3 ~platform:Ascy_platform.Platform.xeon20 ~nthreads (fun sim ->
      let t = M.create ~hint:key_range () in
      (* prefill half the range so removes succeed early *)
      for k = 0 to key_range - 1 do
        if k land 1 = 0 then ignore (M.insert t k (-1))
      done;
      let net = Array.make_matrix nthreads key_range 0 in
      let body tid () =
        let rng = Ascy_util.Xorshift.create (seed + (tid * 7919)) in
        for _ = 1 to ops do
          let k = Ascy_util.Xorshift.below rng key_range in
          let r = Ascy_util.Xorshift.below rng 100 in
          if r < updates / 2 then begin
            if M.insert t k tid then net.(tid).(k) <- net.(tid).(k) + 1
          end
          else if r < updates then begin
            if M.remove t k then net.(tid).(k) <- net.(tid).(k) - 1
          end
          else ignore (M.search t k);
          M.op_done t
        done
      in
      ignore (Sim.run sim (Array.init nthreads body));
      (* conservation: initial + net inserts == final membership *)
      for k = 0 to key_range - 1 do
        let initial = if k land 1 = 0 then 1 else 0 in
        let total = Array.fold_left (fun acc row -> acc + row.(k)) initial net in
        let present = M.search t k <> None in
        if total <> if present then 1 else 0 then
          Alcotest.failf "conservation violated for key %d: net=%d present=%b (seed %d)" k total
            present seed
      done;
      (match M.validate t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "validate failed after stress: %s (seed %d)" e seed);
      let live = ref 0 in
      for k = 0 to key_range - 1 do
        if M.search t k <> None then incr live
      done;
      checki "size agrees with membership" !live (M.size t))

(* Linearizability: record every operation's invocation/response cycle
   stamps and result under a contended simulated schedule, then check
   the history against the sequential set semantics (History.check). *)
let lin_stress (module Maker : Set_intf.MAKER) ~seed ~nthreads ~key_range ~ops ~updates () =
  let module M = Maker (Sim.Mem) in
  let module H = Ascy_harness.History in
  Sim.with_sim ~seed ~jitter:3 ~platform:Ascy_platform.Platform.xeon20 ~nthreads (fun sim ->
      let t = M.create ~hint:key_range () in
      let h = H.create () in
      for k = 0 to key_range - 1 do
        if k land 1 = 0 && M.insert t k (-1) then H.add_initial h k
      done;
      let body tid () =
        let rng = Ascy_util.Xorshift.create (seed + (tid * 7919)) in
        for _ = 1 to ops do
          let k = Ascy_util.Xorshift.below rng key_range in
          let r = Ascy_util.Xorshift.below rng 100 in
          let inv = Sim.now () in
          let kind, result =
            if r < updates / 2 then (H.Insert, M.insert t k tid)
            else if r < updates then (H.Remove, M.remove t k)
            else (H.Search, M.search t k <> None)
          in
          H.record h ~tid ~kind ~key:k ~result ~inv ~res:(Sim.now ());
          M.op_done t
        done
      in
      ignore (Sim.run sim (Array.init nthreads body));
      match H.check h with
      | Ok () -> ()
      | Error v ->
          Alcotest.failf "history of %d ops not linearizable (seed %d): %s" (H.length h) seed
            (H.pp_violation v))

(* Same stress with ASCY3 disabled ("-no" variants): exercises the
   lock-then-fail paths concurrently. *)
let no_rof_maker (module A : Set_intf.MAKER) : (module Set_intf.MAKER) =
  (module functor (Mem : Ascy_mem.Memory.S) -> struct
    include A (Mem)

    let create ?hint ?read_only_fail:_ () = create ?hint ~read_only_fail:false ()
  end)

(* Native stress with real domains (preemptive interleavings even on one
   core). *)
let native_stress (module Maker : Set_intf.MAKER) ~nthreads ~key_range ~ops ~updates () =
  let module M = Maker (Ascy_mem.Mem_native) in
  let t = M.create ~hint:key_range () in
  for k = 0 to key_range - 1 do
    if k land 1 = 0 then ignore (M.insert t k (-1))
  done;
  let net = Array.make_matrix nthreads key_range 0 in
  let body tid () =
    let rng = Ascy_util.Xorshift.create (tid * 7919) in
    for _ = 1 to ops do
      let k = Ascy_util.Xorshift.below rng key_range in
      let r = Ascy_util.Xorshift.below rng 100 in
      if r < updates / 2 then begin
        if M.insert t k tid then net.(tid).(k) <- net.(tid).(k) + 1
      end
      else if r < updates then begin
        if M.remove t k then net.(tid).(k) <- net.(tid).(k) - 1
      end
      else ignore (M.search t k);
      M.op_done t
    done
  in
  let domains = Array.init nthreads (fun tid -> Domain.spawn (body tid)) in
  Array.iter Domain.join domains;
  for k = 0 to key_range - 1 do
    let initial = if k land 1 = 0 then 1 else 0 in
    let total = Array.fold_left (fun acc row -> acc + row.(k)) initial net in
    let present = M.search t k <> None in
    if total <> if present then 1 else 0 then
      Alcotest.failf "native conservation violated for key %d: net=%d present=%b" k total present
  done;
  match M.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate failed after native stress: %s" e

(** Build the full alcotest case list for one implementation.
    [concurrent = false] for the asynchronized baselines, which are not
    expected to survive concurrent execution. *)
let suite ?(concurrent = true) name (module Maker : Set_intf.MAKER) =
  let module N = Maker (Ascy_mem.Mem_native) in
  let module T = Seq_tests (N) in
  let seq =
    [
      Alcotest.test_case (name ^ ": empty") `Quick T.empty;
      Alcotest.test_case (name ^ ": basic semantics") `Quick T.basic;
      Alcotest.test_case (name ^ ": bulk ordered") `Quick T.bulk;
      Alcotest.test_case (name ^ ": boundary keys") `Quick T.boundaries;
      Alcotest.test_case (name ^ ": read_only_fail=false") `Quick T.no_read_only_fail;
      QCheck_alcotest.to_alcotest ~verbose:false
        (QCheck.Test.make ~count:120
           ~name:(name ^ ": model-based random traces")
           T.model_arb T.model_prop);
    ]
  in
  let conc =
    if not concurrent then []
    else
      List.concat_map
        (fun seed ->
          [
            Alcotest.test_case
              (Printf.sprintf "%s: sim stress 4 thr seed %d" name seed)
              `Quick
              (sim_stress (module Maker) ~seed ~nthreads:4 ~key_range:16 ~ops:300 ~updates:60);
            Alcotest.test_case
              (Printf.sprintf "%s: sim stress 8 thr seed %d" name seed)
              `Quick
              (sim_stress (module Maker) ~seed:(seed + 100) ~nthreads:8 ~key_range:24 ~ops:200
                 ~updates:40);
          ])
        [ 1; 2; 3 ]
      @ [
          Alcotest.test_case (name ^ ": linearizable, 4 thr") `Quick
            (lin_stress (module Maker) ~seed:21 ~nthreads:4 ~key_range:8 ~ops:60 ~updates:60);
          Alcotest.test_case (name ^ ": linearizable, 8 thr") `Quick
            (lin_stress (module Maker) ~seed:22 ~nthreads:8 ~key_range:12 ~ops:40 ~updates:50);
          Alcotest.test_case
            (name ^ ": sim stress 6 thr, read_only_fail=false")
            `Quick
            (sim_stress (no_rof_maker (module Maker)) ~seed:11 ~nthreads:6 ~key_range:16 ~ops:250
               ~updates:50);
          Alcotest.test_case (name ^ ": native domain stress") `Slow
            (native_stress (module Maker) ~nthreads:4 ~key_range:32 ~ops:2000 ~updates:40);
        ]
  in
  seq @ conc
