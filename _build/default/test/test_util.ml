(* Unit + property tests for the ascy_util substrate. *)

open Ascy_util

let test_xorshift_determinism () =
  let a = Xorshift.create 5 and b = Xorshift.create 5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same seed, same stream" (Xorshift.next a) (Xorshift.next b)
  done

let test_xorshift_range () =
  let r = Xorshift.create 9 in
  for _ = 1 to 1000 do
    let x = Xorshift.below r 17 in
    Alcotest.(check bool) "below in range" true (x >= 0 && x < 17)
  done

let test_vec_push_get () =
  let v = Vec.create 0 in
  for i = 0 to 999 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "get 37" (37 * 37) (Vec.get v 37);
  Vec.set v 5 42;
  Alcotest.(check int) "set/get" 42 (Vec.get v 5)

let test_vec_sort () =
  let v = Vec.create 0 in
  List.iter (Vec.push v) [ 5; 1; 4; 2; 3 ];
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (Array.to_list (Vec.to_array v))

let test_bits_basic () =
  let b = Bits.create 100 in
  Bits.add b 0;
  Bits.add b 63;
  Bits.add b 64;
  Bits.add b 99;
  Alcotest.(check bool) "mem 63" true (Bits.mem b 63);
  Alcotest.(check bool) "mem 64" true (Bits.mem b 64);
  Alcotest.(check bool) "not mem 1" false (Bits.mem b 1);
  Alcotest.(check int) "cardinal" 4 (Bits.cardinal b);
  Bits.remove b 63;
  Alcotest.(check bool) "removed" false (Bits.mem b 63);
  Alcotest.(check int) "choose smallest" 0 (Bits.choose b);
  Bits.clear b;
  Alcotest.(check bool) "empty after clear" true (Bits.is_empty b)

let prop_bits_model =
  QCheck.Test.make ~count:200 ~name:"bitset agrees with a list model"
    QCheck.(list (pair bool (int_bound 199)))
    (fun ops ->
      let b = Ascy_util.Bits.create 200 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Ascy_util.Bits.add b i;
            Hashtbl.replace model i ()
          end
          else begin
            Ascy_util.Bits.remove b i;
            Hashtbl.remove model i
          end)
        ops;
      Ascy_util.Bits.cardinal b = Hashtbl.length model
      && Hashtbl.fold (fun i () acc -> acc && Ascy_util.Bits.mem b i) model true)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i)
  done;
  Alcotest.(check (float 0.001)) "p50" 50.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.001)) "p99" 99.0 (Histogram.percentile h 99.0);
  Alcotest.(check (float 0.001)) "p1" 1.0 (Histogram.percentile h 1.0);
  Alcotest.(check (float 0.001)) "mean" 50.5 (Histogram.mean h)

let prop_histogram_bounds =
  QCheck.Test.make ~count:100 ~name:"percentiles are within sample bounds"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (float_bound_exclusive 1000.0))
    (fun xs ->
      let h = Ascy_util.Histogram.create () in
      List.iter (Ascy_util.Histogram.add h) xs;
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      List.for_all
        (fun p ->
          let v = Ascy_util.Histogram.percentile h p in
          v >= lo && v <= hi)
        [ 1.0; 25.0; 50.0; 75.0; 99.0 ])

let suite =
  [
    Alcotest.test_case "xorshift determinism" `Quick test_xorshift_determinism;
    Alcotest.test_case "xorshift range" `Quick test_xorshift_range;
    Alcotest.test_case "vec push/get/set" `Quick test_vec_push_get;
    Alcotest.test_case "vec sort" `Quick test_vec_sort;
    Alcotest.test_case "bits basic" `Quick test_bits_basic;
    QCheck_alcotest.to_alcotest prop_bits_model;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    QCheck_alcotest.to_alcotest prop_histogram_bounds;
  ]
