(* Tests of the discrete-event multicore simulator: coherence accounting,
   determinism, atomicity of simulated RMWs, and topology-sensitive
   costs. *)

module Sim = Ascy_mem.Sim
module Mem = Ascy_mem.Sim.Mem
module P = Ascy_platform.Platform

let run_counter ~platform ~nthreads ~increments =
  Sim.with_sim ~seed:11 ~platform ~nthreads (fun sim ->
      let c = Mem.make_fresh 0 in
      let body _ () =
        for _ = 1 to increments do
          let rec cas_incr () =
            let v = Mem.get c in
            if not (Mem.cas c v (v + 1)) then cas_incr ()
          in
          cas_incr ()
        done
      in
      let makespan = Sim.run sim (Array.init nthreads body) in
      (Mem.get c, makespan, Sim.stats sim ~makespan))

let test_atomic_counter () =
  let v, _, _ = run_counter ~platform:P.xeon20 ~nthreads:8 ~increments:500 in
  Alcotest.(check int) "no lost updates" 4000 v

let test_determinism () =
  let _, m1, _ = run_counter ~platform:P.xeon20 ~nthreads:4 ~increments:200 in
  let _, m2, _ = run_counter ~platform:P.xeon20 ~nthreads:4 ~increments:200 in
  Alcotest.(check int) "same seed, same makespan" m1 m2

let test_contention_slows_down () =
  let _, m1, _ = run_counter ~platform:P.xeon20 ~nthreads:1 ~increments:1000 in
  let _, m8, _ = run_counter ~platform:P.xeon20 ~nthreads:8 ~increments:1000 in
  (* contended CAS loop must cost more per op than uncontended *)
  Alcotest.(check bool) "contention increases makespan" true (m8 > m1 * 2)

let test_private_reads_are_cheap () =
  Sim.with_sim ~seed:3 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let r = Mem.make_fresh 0 in
      let body () = for _ = 1 to 1000 do ignore (Mem.get r) done in
      let makespan = Sim.run sim [| body |] in
      let st = Sim.stats sim ~makespan in
      Alcotest.(check bool) "almost all hits" true (st.Sim.hits_l1 >= 999);
      Alcotest.(check bool)
        "cheap per-access cost" true
        (makespan < 1000 * (P.xeon20.P.c_l1 + P.xeon20.P.c_instr + 3)))

let test_sharing_costs_transfers () =
  (* two threads ping-ponging writes on one line must generate transfers *)
  Sim.with_sim ~seed:5 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let r = Mem.make_fresh 0 in
      let body _ () = for _ = 1 to 500 do Mem.set r 1 done in
      let makespan = Sim.run sim (Array.init 2 body) in
      let st = Sim.stats sim ~makespan in
      Alcotest.(check bool) "many line transfers" true (st.Sim.transfers_local > 300))

let test_remote_socket_costlier () =
  (* threads 0 and 1 on Xeon20 share a socket (cores 0,1); a line
     ping-ponged between sockets costs more. *)
  let makespan_for pair =
    Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads:20 (fun sim ->
        let r = Mem.make_fresh 0 in
        let body tid () =
          if List.mem tid pair then for _ = 1 to 300 do Mem.set r 1 done
        in
        Sim.run sim (Array.init 20 body))
  in
  (* same socket: cores 0 and 1; cross socket: cores 0 and 10 *)
  let local = makespan_for [ 0; 1 ] and remote = makespan_for [ 0; 10 ] in
  Alcotest.(check bool)
    (Printf.sprintf "cross-socket (%d) dearer than in-socket (%d)" remote local)
    true (remote > local)

let test_line_grouping_false_sharing () =
  (* two cells on the SAME line contend even though they are distinct *)
  let makespan shared =
    Sim.with_sim ~seed:9 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
        let line = Mem.new_line () in
        let a = if shared then Mem.make line 0 else Mem.make_fresh 0 in
        let b = if shared then Mem.make line 0 else Mem.make_fresh 0 in
        let body tid () =
          let r = if tid = 0 then a else b in
          for _ = 1 to 500 do
            Mem.set r 1
          done
        in
        Sim.run sim (Array.init 2 body))
  in
  Alcotest.(check bool)
    "false sharing is slower" true
    (makespan true > makespan false * 3 / 2)

let test_smt_scaling_t44 () =
  (* on the T4-4, 8 threads land on 8 distinct cores; with 8x SMT they
     would share.  Verify co-located threads run slower per-thread. *)
  let tput nthreads =
    Sim.with_sim ~seed:13 ~platform:P.t44 ~nthreads (fun sim ->
        let body _ () =
          let r = Mem.make_fresh 0 in
          for _ = 1 to 500 do
            Mem.set r 1
          done
        in
        let makespan = Sim.run sim (Array.init nthreads body) in
        float_of_int (nthreads * 500) /. float_of_int makespan)
  in
  let t32 = tput 32 (* one thread per core *) in
  let t256 = tput 256 (* eight threads per core *) in
  Alcotest.(check bool) "smt gives sublinear scaling" true (t256 /. t32 < 6.0);
  Alcotest.(check bool) "smt still helps in aggregate" true (t256 > t32)

let test_work_charges_cycles () =
  Sim.with_sim ~seed:15 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let body () = Mem.work 12345 in
      let makespan = Sim.run sim [| body |] in
      Alcotest.(check bool) "work charged" true (makespan >= 12345))

let test_thread_failure_propagates () =
  Alcotest.check_raises "failure surfaces as Thread_failure" (Failure "boom")
    (fun () ->
      try
        Sim.with_sim ~seed:1 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
            let body tid () = if tid = 1 then failwith "boom" in
            ignore (Sim.run sim (Array.init 2 body)))
      with Sim.Thread_failure (_, e, _) -> raise e)

let suite =
  [
    Alcotest.test_case "simulated CAS counter is atomic" `Quick test_atomic_counter;
    Alcotest.test_case "simulation is deterministic" `Quick test_determinism;
    Alcotest.test_case "contention slows the counter" `Quick test_contention_slows_down;
    Alcotest.test_case "private reads hit L1" `Quick test_private_reads_are_cheap;
    Alcotest.test_case "write sharing generates transfers" `Quick test_sharing_costs_transfers;
    Alcotest.test_case "cross-socket transfers cost more" `Quick test_remote_socket_costlier;
    Alcotest.test_case "false sharing on one line" `Quick test_line_grouping_false_sharing;
    Alcotest.test_case "SMT issue sharing on T4-4" `Quick test_smt_scaling_t44;
    Alcotest.test_case "work() advances the clock" `Quick test_work_charges_cycles;
    Alcotest.test_case "thread exceptions propagate" `Quick test_thread_failure_propagates;
  ]
