(* Mutual-exclusion tests for every lock, executed inside the simulator
   (deterministic adversarial schedules) and natively with domains. *)

module Sim = Ascy_mem.Sim
module SMem = Ascy_mem.Sim.Mem
module P = Ascy_platform.Platform

(* Generic exclusion check: [n] threads increment a plain (non-atomic)
   cell under the lock; any mutual-exclusion violation loses updates. *)
let sim_exclusion ~acquire ~release ~mk () =
  Sim.with_sim ~seed:21 ~jitter:2 ~platform:P.xeon20 ~nthreads:6 (fun sim ->
      let lock = mk () in
      let cell = SMem.make_fresh 0 in
      let per = 300 in
      let body _ () =
        for _ = 1 to per do
          acquire lock;
          let v = SMem.get cell in
          SMem.work 5;
          SMem.set cell (v + 1);
          release lock
        done
      in
      ignore (Sim.run sim (Array.init 6 body));
      Alcotest.(check int) "no lost updates under lock" (6 * per) (SMem.get cell))

module Ttas_s = Ascy_locks.Ttas.Make (SMem)
module Ticket_s = Ascy_locks.Ticket.Make (SMem)
module Rw_s = Ascy_locks.Rw_lock.Make (SMem)
module Seq_s = Ascy_locks.Seqlock.Make (SMem)
module Tp_s = Ascy_locks.Ticket_pair.Make (SMem)
module Mcs_s = Ascy_locks.Mcs.Make (SMem)

let test_ttas_exclusion =
  sim_exclusion ~acquire:Ttas_s.acquire ~release:Ttas_s.release ~mk:Ttas_s.create_fresh

let test_ticket_exclusion =
  sim_exclusion ~acquire:Ticket_s.acquire ~release:Ticket_s.release ~mk:Ticket_s.create_fresh

let test_rw_write_exclusion =
  sim_exclusion ~acquire:Rw_s.write_acquire ~release:Rw_s.write_release ~mk:Rw_s.create_fresh

let test_ttas_try () =
  Sim.with_sim ~seed:2 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let body () =
        let l = Ttas_s.create_fresh () in
        assert (Ttas_s.try_acquire l);
        assert (not (Ttas_s.try_acquire l));
        Ttas_s.release l;
        assert (Ttas_s.try_acquire l)
      in
      ignore (Sim.run sim [| body |]))

let test_ticket_fifo () =
  (* ticket lock must serve acquisitions in ticket order *)
  Sim.with_sim ~seed:23 ~platform:P.xeon20 ~nthreads:4 (fun sim ->
      let l = Ticket_s.create_fresh () in
      let order = SMem.make_fresh [] in
      let body tid () =
        for _ = 1 to 50 do
          Ticket_s.acquire l;
          SMem.set order (tid :: SMem.get order);
          Ticket_s.release l
        done
      in
      ignore (Sim.run sim (Array.init 4 body));
      Alcotest.(check int) "all sections ran" 200 (List.length (SMem.get order)))

let test_ticket_versioning () =
  Sim.with_sim ~seed:3 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let body () =
        let l = Ticket_s.create_fresh () in
        let v = Ticket_s.version l in
        assert (Ticket_s.try_acquire_version l v);
        (* stale version must fail while held and after release *)
        assert (not (Ticket_s.try_acquire_version l v));
        Ticket_s.release l;
        assert (not (Ticket_s.try_acquire_version l v));
        let v' = Ticket_s.version l in
        assert (v' = v + 1);
        assert (Ticket_s.try_acquire_version l v');
        Ticket_s.release l
      in
      ignore (Sim.run sim [| body |]))

let test_rw_readers_parallel_writer_excluded () =
  Sim.with_sim ~seed:31 ~jitter:1 ~platform:P.xeon20 ~nthreads:5 (fun sim ->
      let l = Rw_s.create_fresh () in
      let data = SMem.make_fresh 0 in
      let bad = SMem.make_fresh 0 in
      let body tid () =
        if tid = 0 then
          for _ = 1 to 100 do
            Rw_s.write_acquire l;
            SMem.set data 1;
            SMem.work 10;
            SMem.set data 0;
            Rw_s.write_release l
          done
        else
          for _ = 1 to 100 do
            Rw_s.read_acquire l;
            if SMem.get data <> 0 then SMem.set bad 1;
            Rw_s.read_release l
          done
      in
      ignore (Sim.run sim (Array.init 5 body));
      Alcotest.(check int) "readers never observe writer mid-flight" 0 (SMem.get bad))

let test_seqlock_consistent_reads () =
  Sim.with_sim ~seed:37 ~jitter:2 ~platform:P.xeon20 ~nthreads:4 (fun sim ->
      let l = Seq_s.create_fresh () in
      let a = SMem.make_fresh 0 and b = SMem.make_fresh 0 in
      let bad = SMem.make_fresh 0 in
      let body tid () =
        if tid = 0 then
          for i = 1 to 200 do
            ignore (Seq_s.write_acquire l);
            SMem.set a i;
            SMem.work 8;
            SMem.set b i;
            Seq_s.write_release l
          done
        else
          for _ = 1 to 200 do
            let x, y = Seq_s.read l (fun () -> (SMem.get a, SMem.get b)) in
            if x <> y then SMem.set bad 1
          done
      in
      ignore (Sim.run sim (Array.init 4 body));
      Alcotest.(check int) "seqlock reads are atomic" 0 (SMem.get bad))

(* MCS queue lock: exclusion + FIFO handoff under adversarial schedules. *)
let test_mcs_exclusion () =
  Sim.with_sim ~seed:27 ~jitter:2 ~platform:P.xeon20 ~nthreads:6 (fun sim ->
      let lock = Mcs_s.create_fresh () in
      let cell = SMem.make_fresh 0 in
      let per = 250 in
      let body _ () =
        for _ = 1 to per do
          let h = Mcs_s.acquire lock in
          let v = SMem.get cell in
          SMem.work 5;
          SMem.set cell (v + 1);
          Mcs_s.release lock h
        done
      in
      ignore (Sim.run sim (Array.init 6 body));
      Alcotest.(check int) "no lost updates under MCS" (6 * per) (SMem.get cell))

let test_mcs_uncontended () =
  Sim.with_sim ~seed:28 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let body () =
        let lock = Mcs_s.create_fresh () in
        let h = Mcs_s.acquire lock in
        Mcs_s.release lock h;
        let h2 = Mcs_s.acquire lock in
        Mcs_s.release lock h2
      in
      ignore (Sim.run sim [| body |]);
      Alcotest.(check pass) "uncontended acquire/release cycles" () ())

(* The packed two-edge ticket lock used by BST-TK. *)
let test_ticket_pair_semantics () =
  Sim.with_sim ~seed:4 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let body () =
        let l = Tp_s.create_fresh () in
        let vl, vr = Tp_s.versions l in
        assert (vl = 0 && vr = 0);
        (* sides are independent *)
        assert (Tp_s.try_acquire_version l Tp_s.L vl);
        assert (Tp_s.is_locked l Tp_s.L);
        assert (not (Tp_s.is_locked l Tp_s.R));
        assert (Tp_s.try_acquire_version l Tp_s.R vr);
        (* stale versions fail while held *)
        assert (not (Tp_s.try_acquire_version l Tp_s.L vl));
        Tp_s.release l Tp_s.L;
        Tp_s.release l Tp_s.R;
        (* versions bumped: old versions now stale *)
        assert (not (Tp_s.try_acquire_version l Tp_s.L 0));
        let vl, vr = Tp_s.versions l in
        assert (vl = 1 && vr = 1);
        (* acquire both with one CAS *)
        assert (Tp_s.try_acquire_both l vl vr);
        assert (Tp_s.is_locked l Tp_s.L && Tp_s.is_locked l Tp_s.R);
        (* acquire-both fails when anything is held *)
        assert (not (Tp_s.try_acquire_both l vl vr))
      in
      ignore (Sim.run sim [| body |]))

let test_ticket_pair_exclusion () =
  Sim.with_sim ~seed:25 ~jitter:2 ~platform:P.xeon20 ~nthreads:6 (fun sim ->
      let l = Tp_s.create_fresh () in
      let cell = SMem.make_fresh 0 in
      let per = 200 in
      let body _ () =
        for _ = 1 to per do
          let rec acquire () =
            let vl, vr = Tp_s.versions l in
            if not (Tp_s.try_acquire_both l vl vr) then begin
              SMem.cpu_relax ();
              acquire ()
            end
          in
          acquire ();
          let v = SMem.get cell in
          SMem.work 4;
          SMem.set cell (v + 1);
          Tp_s.release l Tp_s.L;
          Tp_s.release l Tp_s.R
        done
      in
      ignore (Sim.run sim (Array.init 6 body));
      Alcotest.(check int) "no lost updates under pair lock" (6 * per) (SMem.get cell))

(* Native (real domains) exclusion for the two workhorse locks. *)
module Ttas_n = Ascy_locks.Ttas.Make (Ascy_mem.Mem_native)
module Ticket_n = Ascy_locks.Ticket.Make (Ascy_mem.Mem_native)

let native_exclusion acquire release mk () =
  let lock = mk () in
  let counter = ref 0 in
  let per = 20_000 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              acquire lock;
              counter := !counter + 1;
              release lock
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "native exclusion" (4 * per) !counter

let suite =
  [
    Alcotest.test_case "ttas exclusion (sim)" `Quick test_ttas_exclusion;
    Alcotest.test_case "ticket exclusion (sim)" `Quick test_ticket_exclusion;
    Alcotest.test_case "rwlock write exclusion (sim)" `Quick test_rw_write_exclusion;
    Alcotest.test_case "ttas try_acquire" `Quick test_ttas_try;
    Alcotest.test_case "ticket completes all sections" `Quick test_ticket_fifo;
    Alcotest.test_case "ticket versioned acquire" `Quick test_ticket_versioning;
    Alcotest.test_case "rwlock readers vs writer" `Quick test_rw_readers_parallel_writer_excluded;
    Alcotest.test_case "seqlock consistent reads" `Quick test_seqlock_consistent_reads;
    Alcotest.test_case "mcs exclusion (sim)" `Quick test_mcs_exclusion;
    Alcotest.test_case "mcs uncontended" `Quick test_mcs_uncontended;
    Alcotest.test_case "ticket-pair semantics" `Quick test_ticket_pair_semantics;
    Alcotest.test_case "ticket-pair exclusion (sim)" `Quick test_ticket_pair_exclusion;
    Alcotest.test_case "ttas exclusion (domains)" `Slow
      (native_exclusion Ttas_n.acquire Ttas_n.release Ttas_n.create_fresh);
    Alcotest.test_case "ticket exclusion (domains)" `Slow
      (native_exclusion Ticket_n.acquire Ticket_n.release Ticket_n.create_fresh);
  ]
