(* Conformance suites for all five skip-list algorithms. *)

module Sl = Ascy_skiplist

let suites =
  [
    ("sl-async", Conformance.suite ~concurrent:false "sl-async" (module Sl.Seq_sl.Make));
    ("sl-pugh", Conformance.suite "sl-pugh" (module Sl.Pugh_sl.Make));
    ("sl-herlihy", Conformance.suite "sl-herlihy" (module Sl.Herlihy_sl.Make));
    ("sl-fraser", Conformance.suite "sl-fraser" (module Sl.Fraser.Make));
    ("sl-fraser-opt", Conformance.suite "sl-fraser-opt" (module Sl.Fraser_opt.Make));
  ]
