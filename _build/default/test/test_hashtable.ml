(* Conformance suites for all hash-table algorithms. *)

module Ht = Ascy_hashtable

let suites =
  [
    ("ht-async", Conformance.suite ~concurrent:false "ht-async" (module Ht.Makers.Seq));
    ("ht-coupling", Conformance.suite "ht-coupling" (module Ht.Makers.Coupling));
    ("ht-pugh", Conformance.suite "ht-pugh" (module Ht.Makers.Pugh));
    ("ht-lazy", Conformance.suite "ht-lazy" (module Ht.Makers.Lazy));
    ("ht-copy", Conformance.suite "ht-copy" (module Ht.Makers.Copy));
    ("ht-harris", Conformance.suite "ht-harris" (module Ht.Makers.Harris));
    ("ht-urcu", Conformance.suite "ht-urcu" (module Ht.Urcu_ht.Make));
    ("ht-urcu-ssmem", Conformance.suite "ht-urcu-ssmem" (module Ht.Urcu_ht.Make_ssmem));
    ("ht-java", Conformance.suite "ht-java" (module Ht.Java_ht.Make));
    ("ht-tbb", Conformance.suite "ht-tbb" (module Ht.Tbb_ht.Make));
    ("ht-clht-lb", Conformance.suite "ht-clht-lb" (module Ht.Clht_lb.Make));
    ("ht-clht-lf", Conformance.suite "ht-clht-lf" (module Ht.Clht_lf.Make));
  ]
