(* Property tests on the bit-twiddling internals: CLHT-LF's snapshot_t
   word, the packed ticket-pair lock, and the hash mixer. *)

module Clht = Ascy_hashtable.Clht_lf.Make (Ascy_mem.Mem_native)
module Tp = Ascy_locks.Ticket_pair.Make (Ascy_mem.Mem_native)
module Hash = Ascy_hashtable.Hash

let prop_snapshot_state_roundtrip =
  QCheck.Test.make ~count:500 ~name:"clht-lf snapshot: with_state sets exactly one slot"
    QCheck.(triple (int_bound 1000000) (int_bound 2) (int_bound 2))
    (fun (word, slot, st) ->
      let w' = Clht.with_state word slot st in
      Clht.state_of w' slot = st
      && List.for_all
           (fun i -> i = slot || Clht.state_of w' i = Clht.state_of word i)
           [ 0; 1; 2 ])

let prop_snapshot_version_bumps =
  QCheck.Test.make ~count:500 ~name:"clht-lf snapshot: every state change bumps the version"
    QCheck.(triple (int_bound 1000000) (int_bound 2) (int_bound 2))
    (fun (word, slot, st) ->
      let w' = Clht.with_state word slot st in
      w' lsr (2 * 3) = (word lsr (2 * 3)) + 1)

let test_ticket_pair_pack_roundtrip () =
  (* pack/unpack all four fields across the 15-bit range edges *)
  List.iter
    (fun (ln, lo, rn, ro) ->
      let w = Tp.pack ln lo rn ro in
      Alcotest.(check int) "l_next" ln (Tp.l_next w);
      Alcotest.(check int) "l_now" lo (Tp.l_now w);
      Alcotest.(check int) "r_next" rn (Tp.r_next w);
      Alcotest.(check int) "r_now" ro (Tp.r_now w))
    [
      (0, 0, 0, 0);
      (1, 2, 3, 4);
      (32767, 32767, 32767, 32767);
      (32767, 0, 0, 32767);
      (12345, 23456, 7, 31000);
    ]

let prop_ticket_pair_pack =
  QCheck.Test.make ~count:300 ~name:"ticket-pair pack/unpack roundtrip"
    QCheck.(
      quad (int_bound 32767) (int_bound 32767) (int_bound 32767) (int_bound 32767))
    (fun (a, b, c, d) ->
      let w = Tp.pack a b c d in
      Tp.l_next w = a && Tp.l_now w = b && Tp.r_next w = c && Tp.r_now w = d)

let prop_hash_in_range =
  QCheck.Test.make ~count:500 ~name:"hash bucket always within mask"
    QCheck.(pair int (int_bound 14))
    (fun (k, bits) ->
      let mask = (1 lsl (bits + 1)) - 1 in
      let b = Hash.bucket k mask in
      b >= 0 && b <= mask)

let test_hash_spreads () =
  (* sequential keys must not all collide *)
  let mask = 255 in
  let seen = Hashtbl.create 64 in
  for k = 1 to 256 do
    Hashtbl.replace seen (Hash.bucket k mask) ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "sequential keys spread over %d/256 buckets" (Hashtbl.length seen))
    true
    (Hashtbl.length seen > 128)

let test_pow2 () =
  Alcotest.(check int) "pow2 64" 64 (Hash.pow2_at_least 64 1);
  Alcotest.(check int) "pow2 65 -> 128" 128 (Hash.pow2_at_least 65 1);
  Alcotest.(check int) "pow2 1" 1 (Hash.pow2_at_least 1 1)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_snapshot_state_roundtrip;
    QCheck_alcotest.to_alcotest prop_snapshot_version_bumps;
    Alcotest.test_case "ticket-pair pack edges" `Quick test_ticket_pair_pack_roundtrip;
    QCheck_alcotest.to_alcotest prop_ticket_pair_pack;
    QCheck_alcotest.to_alcotest prop_hash_in_range;
    Alcotest.test_case "hash spreads sequential keys" `Quick test_hash_spreads;
    Alcotest.test_case "pow2_at_least" `Quick test_pow2;
  ]
