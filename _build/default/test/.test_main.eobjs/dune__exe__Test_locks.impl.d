test/test_locks.ml: Alcotest Array Ascy_locks Ascy_mem Ascy_platform Domain List
