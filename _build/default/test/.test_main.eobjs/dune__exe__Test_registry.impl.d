test/test_registry.ml: Alcotest Ascy_core Ascy_mem Ascylib List Registry
