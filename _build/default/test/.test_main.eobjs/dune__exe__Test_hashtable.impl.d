test/test_hashtable.ml: Ascy_hashtable Conformance
