test/test_ssmem.ml: Alcotest Array Ascy_mem Ascy_platform Ascy_rcu Ascy_ssmem Printf
