test/test_linkedlist.ml: Ascy_linkedlist Conformance
