test/test_harness.ml: Alcotest Array Ascy_harness Ascy_mem Ascy_platform Ascy_util Ascylib List Printf
