test/test_sim.ml: Alcotest Array Ascy_mem Ascy_platform List Printf
