test/test_internals.ml: Alcotest Ascy_hashtable Ascy_locks Ascy_mem Hashtbl List Printf QCheck QCheck_alcotest
