test/test_skiplist.ml: Ascy_skiplist Conformance
