test/test_util.ml: Alcotest Array Ascy_util Bits Hashtbl Histogram List QCheck QCheck_alcotest Vec Xorshift
