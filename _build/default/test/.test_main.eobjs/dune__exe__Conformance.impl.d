test/conformance.ml: Alcotest Array Ascy_core Ascy_mem Ascy_platform Ascy_util Domain Hashtbl List Printf QCheck QCheck_alcotest String
