test/test_bst.ml: Ascy_bst Conformance
