(* Tests for SSMEM (epoch-based reclamation) and RCU. *)

module Sim = Ascy_mem.Sim
module SMem = Ascy_mem.Sim.Mem
module P = Ascy_platform.Platform
module Ssmem_s = Ascy_ssmem.Ssmem.Make (SMem)
module Rcu_s = Ascy_rcu.Rcu.Make (SMem)

let test_no_reclaim_before_quiescence () =
  Sim.with_sim ~seed:41 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let a = Ssmem_s.create ~gc_threshold:4 () in
      let body tid () =
        if tid = 0 then begin
          (* free a lot without thread 1 ever quiescing *)
          for i = 1 to 40 do
            Ssmem_s.free a i;
            Ssmem_s.quiesce a
          done
        end
        else
          (* thread 1 stays "active": bump once, then never again *)
          SMem.work 10
      in
      ignore (Sim.run sim (Array.init 2 body));
      let st = Ssmem_s.stats a in
      Alcotest.(check int) "all frees recorded" 40 st.Ssmem_s.freed;
      (* thread 1's ts is 0 and never moved -> but the stamp treats 0 as
         idle, so batches should reclaim *)
      Alcotest.(check bool) "gc passes happened" true (st.Ssmem_s.gc_passes > 0))

let test_blocked_by_active_reader () =
  Sim.with_sim ~seed:43 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let a = Ssmem_s.create ~gc_threshold:4 () in
      let body tid () =
        if tid = 1 then begin
          (* announce activity once (ts becomes 1), then go silent while
             thread 0 frees: reclamation must stall *)
          Ssmem_s.quiesce a;
          SMem.work 5
        end
        else begin
          SMem.work 2000 (* let thread 1 tick first *);
          for i = 1 to 40 do
            Ssmem_s.free a i
          done
        end
      in
      ignore (Sim.run sim (Array.init 2 body));
      let st = Ssmem_s.stats a in
      Alcotest.(check bool)
        (Printf.sprintf "pending garbage is held back (pending=%d)" st.Ssmem_s.pending)
        true
        (st.Ssmem_s.pending > 0))

let test_reclaim_after_all_quiesce () =
  Sim.with_sim ~seed:45 ~platform:P.xeon20 ~nthreads:3 (fun sim ->
      let a = Ssmem_s.create ~gc_threshold:8 () in
      let body tid () =
        if tid = 0 then
          for i = 1 to 100 do
            Ssmem_s.free a i;
            Ssmem_s.quiesce a
          done
        else
          (* peers must keep quiescing across the whole simulated span of
             thread 0, otherwise late batches rightfully stall *)
          for _ = 1 to 500 do
            Ssmem_s.quiesce a;
            SMem.work 100
          done
      in
      ignore (Sim.run sim (Array.init 3 body));
      (* one more free cycle from a fresh run would reclaim; check most got
         reclaimed during the run *)
      let st = Ssmem_s.stats a in
      Alcotest.(check bool)
        (Printf.sprintf "most garbage reclaimed (%d/%d)" st.Ssmem_s.reclaimed st.Ssmem_s.freed)
        true
        (st.Ssmem_s.reclaimed > st.Ssmem_s.freed / 2))

let test_reclaimer_callback () =
  Sim.with_sim ~seed:47 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let hit = ref 0 in
      let a = Ssmem_s.create ~gc_threshold:2 ~reclaimer:(fun _ -> incr hit) () in
      let body _ () =
        for i = 1 to 20 do
          Ssmem_s.free a i;
          Ssmem_s.quiesce a
        done
      in
      ignore (Sim.run sim (Array.init 2 body));
      Alcotest.(check bool) "reclaimer invoked" true (!hit > 0))

let test_rcu_readers_never_see_freed () =
  (* writer swaps a boxed value and synchronizes before "freeing" (we mark
     the box poisoned); readers must never observe a poisoned box. *)
  Sim.with_sim ~seed:49 ~jitter:2 ~platform:P.xeon20 ~nthreads:4 (fun sim ->
      let rcu = Rcu_s.create () in
      let box = SMem.make_fresh (SMem.make_fresh 1) in
      let bad = SMem.make_fresh 0 in
      let body tid () =
        if tid = 0 then
          for i = 2 to 60 do
            let old = SMem.get box in
            SMem.set box (SMem.make_fresh i);
            Rcu_s.synchronize rcu;
            SMem.set old 0 (* poison: safe only after grace period *)
          done
        else
          for _ = 1 to 150 do
            Rcu_s.read_lock rcu;
            let b = SMem.get box in
            SMem.work 4;
            if SMem.get b = 0 then SMem.set bad 1;
            Rcu_s.read_unlock rcu
          done
      in
      ignore (Sim.run sim (Array.init 4 body));
      Alcotest.(check int) "grace periods protect readers" 0 (SMem.get bad))

let test_rcu_synchronize_no_readers () =
  Sim.with_sim ~seed:51 ~platform:P.xeon20 ~nthreads:1 (fun sim ->
      let rcu = Rcu_s.create () in
      let body () = Rcu_s.synchronize rcu in
      ignore (Sim.run sim [| body |]);
      Alcotest.(check pass) "synchronize with no readers returns" () ())

let suite =
  [
    Alcotest.test_case "idle threads don't block reclamation" `Quick
      test_no_reclaim_before_quiescence;
    Alcotest.test_case "active reader blocks reclamation" `Quick test_blocked_by_active_reader;
    Alcotest.test_case "reclaim after quiescence" `Quick test_reclaim_after_all_quiesce;
    Alcotest.test_case "reclaimer callback fires" `Quick test_reclaimer_callback;
    Alcotest.test_case "rcu grace periods protect readers" `Quick test_rcu_readers_never_see_freed;
    Alcotest.test_case "rcu synchronize with no readers" `Quick test_rcu_synchronize_no_readers;
  ]
