(* Harness-level tests: workload mix, simulated-run determinism, and —
   most importantly — that the ASCY patterns are *observable* in the
   simulator's event streams, which is what the whole reproduction
   hinges on. *)

module W = Ascy_harness.Workload
module R = Ascy_harness.Sim_run
module P = Ascy_platform.Platform
module E = Ascy_mem.Event

let maker name = (Ascylib.Registry.by_name name).Ascylib.Registry.maker

let run ?(latency = false) ?(updates = 10) ?(threads = 8) ?(initial = 128) ?(ops = 200) name =
  let wl = W.make ~initial ~update_pct:updates () in
  R.run ~latency (maker name) ~platform:P.xeon20 ~nthreads:threads ~workload:wl
    ~ops_per_thread:ops ()

let test_workload_mix () =
  let wl = W.make ~initial:1024 ~update_pct:20 () in
  let rng = Ascy_util.Xorshift.create 3 in
  let upd = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match W.pick_op wl rng with
    | W.Insert | W.Remove -> incr upd
    | W.Search -> ()
  done;
  let pct = 100.0 *. float_of_int !upd /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "update mix ~20%% (got %.1f)" pct) true
    (pct > 17.0 && pct < 23.0);
  let k = W.pick_key wl rng in
  Alcotest.(check bool) "keys in [1, 2N]" true (k >= 1 && k <= 2048)

let test_determinism () =
  let a = run ~latency:true "ll-lazy" and b = run ~latency:true "ll-lazy" in
  Alcotest.(check (float 0.0)) "same seed, same throughput" a.R.throughput_mops b.R.throughput_mops;
  Alcotest.(check int) "same makespan" a.R.stats.Ascy_mem.Sim.makespan_cycles
    b.R.stats.Ascy_mem.Sim.makespan_cycles

let test_seed_changes_schedule () =
  let wl = W.make ~initial:128 ~update_pct:20 () in
  let a = R.run ~seed:1 (maker "ll-lazy") ~platform:P.xeon20 ~nthreads:8 ~workload:wl ~ops_per_thread:200 () in
  let b = R.run ~seed:2 (maker "ll-lazy") ~platform:P.xeon20 ~nthreads:8 ~workload:wl ~ops_per_thread:200 () in
  Alcotest.(check bool) "different seeds, different makespan" true
    (a.R.stats.Ascy_mem.Sim.makespan_cycles <> b.R.stats.Ascy_mem.Sim.makespan_cycles)

let test_size_stays_near_initial () =
  let r = run ~updates:40 ~initial:256 ~ops:400 "ht-clht-lb" in
  Alcotest.(check bool)
    (Printf.sprintf "size near initial (got %d)" r.R.final_size)
    true
    (r.R.final_size > 128 && r.R.final_size < 512)

(* ASCY1: a read-only workload on an ASCY1 algorithm performs no atomic
   operations and takes no locks; an anti-ASCY design (coupling) locks
   on every hop. *)
let test_ascy1_observable () =
  let lazy_r = run ~updates:0 "ll-lazy" in
  Alcotest.(check int) "lazy searches: no atomics" 0 lazy_r.R.stats.Ascy_mem.Sim.atomics;
  Alcotest.(check int) "lazy searches: no locks" 0 lazy_r.R.stats.Ascy_mem.Sim.events.(E.lock);
  let coup = run ~updates:0 "ll-coupling" in
  Alcotest.(check bool) "coupling searches lock constantly" true
    (coup.R.stats.Ascy_mem.Sim.events.(E.lock) > coup.R.ops)

(* ASCY2: fraser restarts parses; fraser-opt keeps extra parses an order
   of magnitude lower under the same contended workload. *)
let test_ascy2_observable () =
  let fr = run ~updates:40 ~threads:16 ~initial:64 ~ops:400 "sl-fraser" in
  let fo = run ~updates:40 ~threads:16 ~initial:64 ~ops:400 "sl-fraser-opt" in
  Alcotest.(check bool)
    (Printf.sprintf "fraser restarts (%d) > fraser-opt restarts (%d)"
       fr.R.stats.Ascy_mem.Sim.events.(E.restart)
       fo.R.stats.Ascy_mem.Sim.events.(E.restart))
    true
    (fr.R.stats.Ascy_mem.Sim.events.(E.restart) > fo.R.stats.Ascy_mem.Sim.events.(E.restart))

(* ASCY3: with read-only failures, a doomed update costs about a search;
   without, it pays locks.  Compare lock counts on a zero-success
   workload (inserting keys that all exist). *)
let test_ascy3_observable () =
  let module A = (val maker "ht-lazy") in
  let count_locks rof =
    Ascy_mem.Sim.with_sim ~seed:5 ~platform:P.xeon20 ~nthreads:4 (fun sim ->
        let module M = A (Ascy_mem.Sim.Mem) in
        let t = M.create ~hint:64 ~read_only_fail:rof () in
        for k = 1 to 64 do
          ignore (M.insert t k 0)
        done;
        let body _ () =
          for k = 1 to 64 do
            assert (not (M.insert t k 1))
          done
        in
        let makespan = Ascy_mem.Sim.run sim (Array.init 4 body) in
        (Ascy_mem.Sim.stats sim ~makespan).Ascy_mem.Sim.events.(E.lock))
  in
  Alcotest.(check int) "ASCY3: failed inserts take no locks" 0 (count_locks true);
  Alcotest.(check bool) "-no variant locks on every failed insert" true (count_locks false > 200)

(* ASCY4: natarajan uses ~2 atomics per successful update, the helping
   designs measurably more. *)
let test_ascy4_observable () =
  let nat = run ~updates:40 ~threads:8 ~initial:256 ~ops:300 "bst-natarajan" in
  let ell = run ~updates:40 ~threads:8 ~initial:256 ~ops:300 "bst-ellen" in
  let a_nat = R.atomics_per_update nat and a_ell = R.atomics_per_update ell in
  Alcotest.(check bool)
    (Printf.sprintf "natarajan %.2f < ellen %.2f atomics/update" a_nat a_ell)
    true (a_nat < a_ell);
  Alcotest.(check bool) "natarajan close to 2" true (a_nat < 3.0)

(* Latency classes: with ASCY3, failed updates are cheaper than
   successful ones. *)
let test_failed_updates_cheaper () =
  let r = run ~latency:true ~updates:40 ~threads:8 ~initial:256 ~ops:400 "ht-clht-lb" in
  let ok = Ascy_util.Histogram.mean r.R.latencies.R.insert_ok in
  let fail = Ascy_util.Histogram.mean r.R.latencies.R.insert_fail in
  Alcotest.(check bool) (Printf.sprintf "fail %.0f < ok %.0f" fail ok) true (fail < ok)

(* The asynchronized baseline beats (or matches) every correct algorithm
   of its family — the paper's upper-bound methodology. *)
let test_async_upper_bound () =
  let async = run ~updates:10 ~threads:8 "ll-async" in
  List.iter
    (fun name ->
      let r = run ~updates:10 ~threads:8 name in
      Alcotest.(check bool)
        (Printf.sprintf "%s (%.2f) <= async (%.2f) * 1.1" name r.R.throughput_mops
           async.R.throughput_mops)
        true
        (r.R.throughput_mops <= async.R.throughput_mops *. 1.1))
    [ "ll-coupling"; "ll-lazy"; "ll-pugh"; "ll-harris"; "ll-harris-opt" ]

(* Simulated transactions: commit applies writes; conflicts roll back. *)
let test_txn_commit_and_abort () =
  Ascy_mem.Sim.with_sim ~seed:9 ~platform:P.xeon20 ~nthreads:2 (fun sim ->
      let module M = Ascy_mem.Sim.Mem in
      let a = M.make_fresh 0 and b = M.make_fresh 0 in
      let committed = ref 0 and aborted = ref 0 in
      let body tid () =
        if tid = 0 then begin
          (* make the line "hot" in core 0's cache in modified state *)
          M.set a 100;
          M.work 50
        end
        else begin
          M.work 5;
          (* conflicting txn: reads a line owned by core 0 -> abort *)
          (match M.txn (fun () -> M.set a (M.get a + 1)) with
          | Some _ -> incr committed
          | None -> incr aborted);
          (* non-conflicting txn on a private line -> commit *)
          match M.txn (fun () -> M.set b 42) with
          | Some _ -> incr committed
          | None -> incr aborted
        end
      in
      ignore (Ascy_mem.Sim.run sim (Array.init 2 body));
      Alcotest.(check int) "conflicting txn aborted" 1 !aborted;
      Alcotest.(check int) "private txn committed" 1 !committed;
      Alcotest.(check int) "aborted write rolled back" 100 (M.get a);
      Alcotest.(check int) "committed write applied" 42 (M.get b))

let test_native_txn_is_none () =
  Alcotest.(check bool) "no HTM natively" true (Ascy_mem.Mem_native.txn (fun () -> 1) = None)

let suite =
  [
    Alcotest.test_case "workload op mix" `Quick test_workload_mix;
    Alcotest.test_case "sim_run determinism" `Quick test_determinism;
    Alcotest.test_case "seed changes schedule" `Quick test_seed_changes_schedule;
    Alcotest.test_case "size stays near initial" `Quick test_size_stays_near_initial;
    Alcotest.test_case "ASCY1 observable (no stores in searches)" `Quick test_ascy1_observable;
    Alcotest.test_case "ASCY2 observable (parse restarts)" `Quick test_ascy2_observable;
    Alcotest.test_case "ASCY3 observable (read-only failures)" `Quick test_ascy3_observable;
    Alcotest.test_case "ASCY4 observable (atomics per update)" `Quick test_ascy4_observable;
    Alcotest.test_case "failed updates cheaper (latency classes)" `Quick test_failed_updates_cheaper;
    Alcotest.test_case "async is the upper bound" `Quick test_async_upper_bound;
    Alcotest.test_case "txn commit and abort" `Quick test_txn_commit_and_abort;
    Alcotest.test_case "native txn unavailable" `Quick test_native_txn_is_none;
  ]
