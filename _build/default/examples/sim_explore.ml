(* Exploring portable scalability with the multicore simulator: the same
   lazy-list workload on two very different machines (uniform Tilera vs
   NUMA Opteron), versus the asynchronized upper bound — Figure 2's
   methodology in twenty lines.

   Run with: dune exec examples/sim_explore.exe *)

module W = Ascy_harness.Workload
module R = Ascy_harness.Sim_run
module P = Ascy_platform.Platform

let () =
  let wl = W.make ~initial:256 ~update_pct:10 () in
  let algos = [ "ll-async"; "ll-lazy"; "ll-coupling" ] in
  List.iter
    (fun platform ->
      Printf.printf "\n%s (%d cores, %d sockets):\n" platform.P.name platform.P.cores
        platform.P.sockets;
      List.iter
        (fun name ->
          let entry = Ascylib.Registry.by_name name in
          let tput n =
            (R.run entry.Ascylib.Registry.maker ~platform ~nthreads:n ~workload:wl
               ~ops_per_thread:150 ())
              .R.throughput_mops
          in
          let t1 = tput 1 and t16 = tput 16 in
          Printf.printf "  %-12s 1 thr: %6.3f Mops/s   16 thr: %6.3f Mops/s   scalability: %.1fx\n"
            name t1 t16 (t16 /. t1))
        algos)
    [ P.tilera; P.opteron ];
  print_endline "\nNote how hand-over-hand locking (coupling) not only fails to scale";
  print_endline "but collapses, while the ASCY-compliant lazy list tracks the";
  print_endline "asynchronized upper bound on both machines."
