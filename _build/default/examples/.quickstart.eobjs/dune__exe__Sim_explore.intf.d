examples/sim_explore.mli:
