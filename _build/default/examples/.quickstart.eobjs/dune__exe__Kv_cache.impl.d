examples/kv_cache.ml: Array Ascy_hashtable Ascy_mem Ascy_util Atomic Domain Printf Unix
