examples/kv_cache.mli:
