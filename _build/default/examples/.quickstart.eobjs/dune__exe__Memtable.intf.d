examples/memtable.mli:
