examples/schedule_fuzz.mli:
