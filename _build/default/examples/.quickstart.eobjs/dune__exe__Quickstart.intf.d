examples/quickstart.mli:
