examples/quickstart.ml: Array Ascy_hashtable Ascy_mem Ascy_util Ascylib Domain Option Printf
