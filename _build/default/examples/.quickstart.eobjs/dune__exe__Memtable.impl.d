examples/memtable.ml: Array Ascy_mem Ascy_skiplist Ascy_util Atomic Domain Mutex Printf Unix
