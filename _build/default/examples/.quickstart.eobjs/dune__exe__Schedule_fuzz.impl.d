examples/schedule_fuzz.ml: Array Ascy_core Ascy_linkedlist Ascy_mem Ascy_platform Ascy_util Printf
