examples/sim_explore.ml: Ascy_harness Ascy_platform Ascylib List Printf
