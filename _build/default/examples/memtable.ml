(* A RocksDB-style memtable: a concurrent skip list absorbing a write
   burst from several domains, periodically "flushed" when it exceeds a
   size budget (the paper's intro: "skip lists are the backbone of
   key-value stores such as RocksDB").

   Run with: dune exec examples/memtable.exe *)

module Memtable = Ascy_skiplist.Fraser_opt.Make (Ascy_mem.Mem_native)

let () =
  let flush_threshold = 20_000 in
  let table = ref (Memtable.create ~hint:flush_threshold ()) in
  let table_lock = Mutex.create () in
  let flushes = ref 0 in
  let flushed_entries = ref 0 in
  let writes = Atomic.make 0 in

  let n_writers = 4 and per_writer = 40_000 in
  let writer d =
    let rng = Ascy_util.Xorshift.create (d + 1001) in
    for i = 1 to per_writer do
      (* keys are roughly increasing, like log-structured writes *)
      let k = (i * 16) + Ascy_util.Xorshift.below rng 16 + (d * per_writer * 32) in
      if Memtable.insert !table k (Printf.sprintf "v%d.%d" d i) then
        Atomic.incr writes;
      (* cheap read-your-writes check *)
      if i land 1023 = 0 then assert (Memtable.search !table k <> None);
      (* flush when over budget: swap in a fresh memtable *)
      if i land 255 = 0 && Memtable.size !table > flush_threshold then begin
        Mutex.lock table_lock;
        if Memtable.size !table > flush_threshold then begin
          let old = !table in
          table := Memtable.create ~hint:flush_threshold ();
          incr flushes;
          flushed_entries := !flushed_entries + Memtable.size old
          (* `old` would now stream to an SSTable; the GC reclaims it *)
        end;
        Mutex.unlock table_lock
      end
    done
  in
  let t0 = Unix.gettimeofday () in
  let domains = Array.init n_writers (fun d -> Domain.spawn (fun () -> writer d)) in
  Array.iter Domain.join domains;
  let dt = Unix.gettimeofday () -. t0 in
  let live = Memtable.size !table in
  Printf.printf "memtable (%s): %d writers x %d writes in %.2fs (%.2f Mops/s)\n" "sl-fraser-opt"
    n_writers per_writer dt
    (float_of_int (Atomic.get writes) /. dt /. 1e6);
  Printf.printf "  flushes: %d (%d entries flushed), live entries: %d\n" !flushes !flushed_entries
    live;
  match Memtable.validate !table with
  | Ok () -> print_endline "  memtable validates: ok"
  | Error e -> failwith e
