(* A memcached-style concurrent KV cache on CLHT (the paper's motivating
   use-case: concurrent hash tables are the backbone of memcached).

   Several domains serve get/set/delete requests with a skewed key
   popularity; the cache reports hit rate and throughput.

   Run with: dune exec examples/kv_cache.exe *)

module Cache = Ascy_hashtable.Clht_lb.Make (Ascy_mem.Mem_native)

type stats = { mutable gets : int; mutable hits : int; mutable sets : int; mutable dels : int }

let () =
  let cache = Cache.create ~hint:16384 () in
  let n_domains = 4 and duration = 2.0 in
  let hot_keys = 1024 and cold_keys = 65536 in
  let stop = Atomic.make false in
  let worker d =
    let rng = Ascy_util.Xorshift.create (d * 131 + 7) in
    let st = { gets = 0; hits = 0; sets = 0; dels = 0 } in
    while not (Atomic.get stop) do
      (* 80% of traffic on the hot set, zipf-ish *)
      let k =
        if Ascy_util.Xorshift.bool rng 0.8 then Ascy_util.Xorshift.below rng hot_keys
        else hot_keys + Ascy_util.Xorshift.below rng cold_keys
      in
      let r = Ascy_util.Xorshift.below rng 100 in
      if r < 85 then begin
        st.gets <- st.gets + 1;
        match Cache.search cache k with
        | Some _ -> st.hits <- st.hits + 1
        | None ->
            (* miss: fetch from the (simulated) backend and populate *)
            ignore (Cache.insert cache k (Printf.sprintf "value-%d" k));
            st.sets <- st.sets + 1
      end
      else if r < 95 then begin
        ignore (Cache.insert cache k (Printf.sprintf "value-%d" k));
        st.sets <- st.sets + 1
      end
      else begin
        ignore (Cache.remove cache k);
        st.dels <- st.dels + 1
      end
    done;
    st
  in
  let t0 = Unix.gettimeofday () in
  let domains = Array.init n_domains (fun d -> Domain.spawn (fun () -> worker d)) in
  Unix.sleepf duration;
  Atomic.set stop true;
  let sts = Array.map Domain.join domains in
  let dt = Unix.gettimeofday () -. t0 in
  let gets = Array.fold_left (fun a s -> a + s.gets) 0 sts in
  let hits = Array.fold_left (fun a s -> a + s.hits) 0 sts in
  let sets = Array.fold_left (fun a s -> a + s.sets) 0 sts in
  let dels = Array.fold_left (fun a s -> a + s.dels) 0 sts in
  Printf.printf "kv-cache on %s: %d domains, %.1fs\n" "ht-clht-lb" n_domains dt;
  Printf.printf "  gets: %d (hit rate %.1f%%)\n" gets (100.0 *. float_of_int hits /. float_of_int (max gets 1));
  Printf.printf "  sets: %d  deletes: %d\n" sets dels;
  Printf.printf "  throughput: %.2f Mops/s\n" (float_of_int (gets + sets + dels) /. dt /. 1e6);
  Printf.printf "  resident entries: %d\n" (Cache.size cache);
  match Cache.validate cache with
  | Ok () -> print_endline "  cache validates: ok"
  | Error e -> failwith e
