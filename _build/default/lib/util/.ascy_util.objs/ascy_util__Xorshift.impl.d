lib/util/xorshift.ml: Int64
