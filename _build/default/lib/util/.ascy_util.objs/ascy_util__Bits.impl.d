lib/util/bits.ml: Array Sys
