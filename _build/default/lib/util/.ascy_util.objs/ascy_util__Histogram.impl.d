lib/util/histogram.ml: Vec
