(** Fixed-capacity bitsets over dense small-integer universes.

    Used by the coherence directory to track which cores hold a shared copy
    of a cache line (up to 256 hardware threads on the T4-4 model). *)

type t = { words : int array }

let word_bits = Sys.int_size (* 63 on 64-bit *)

let create n = { words = Array.make ((n + word_bits - 1) / word_bits) 0 }

let capacity t = Array.length t.words * word_bits

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let add t i = t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits))

let remove t i =
  t.words.(i / word_bits) <- t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

let mem t i = t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let is_empty t =
  let rec go i = i >= Array.length t.words || (t.words.(i) = 0 && go (i + 1)) in
  go 0

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

(** [iter f t] applies [f] to every member in increasing order. *)
let iter f t =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to word_bits - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * word_bits) + b)
        done)
    t.words

(** [choose t] returns the smallest member, or [-1] if empty. *)
let choose t =
  let n = Array.length t.words in
  let rec go wi =
    if wi >= n then -1
    else if t.words.(wi) = 0 then go (wi + 1)
    else begin
      let w = t.words.(wi) in
      let rec bit b = if w land (1 lsl b) <> 0 then b else bit (b + 1) in
      (wi * word_bits) + bit 0
    end
  in
  go 0

(** [exists f t] is true if some member satisfies [f]. *)
let exists f t =
  let found = ref false in
  (try
     iter (fun i -> if f i then begin found := true; raise Exit end) t
   with Exit -> ());
  !found
