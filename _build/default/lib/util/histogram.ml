(** Latency histograms with logarithmic buckets and exact percentile support
    for moderate sample counts.

    The harness records one sample per measured operation (or a sampled
    subset); percentiles are computed by sorting the raw samples, matching
    how the paper reports 1/25/50/75/99-percentile latency distributions. *)

type t = { samples : float Vec.t; mutable sum : float; mutable count : int }

let create () = { samples = Vec.create ~capacity:1024 0.0; sum = 0.0; count = 0 }

let add t x =
  Vec.push t.samples x;
  t.sum <- t.sum +. x;
  t.count <- t.count + 1

let count t = t.count

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

(** [percentile t p] returns the [p]-th percentile (0 <= p <= 100) using the
    nearest-rank method; 0 when the histogram is empty. *)
let percentile t p =
  if t.count = 0 then 0.0
  else begin
    Vec.sort compare t.samples;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let idx = max 0 (min (t.count - 1) (rank - 1)) in
    Vec.get t.samples idx
  end

(** The five percentiles the paper plots: 1, 25, 50, 75, 99. *)
let summary t =
  [| percentile t 1.0; percentile t 25.0; percentile t 50.0; percentile t 75.0; percentile t 99.0 |]

let merge a b =
  Vec.iter (fun x -> add a x) b.samples;
  a
