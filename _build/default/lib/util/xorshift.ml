(** Xorshift128+ pseudo-random number generator.

    A small, fast, seedable PRNG used by workload generators and by the
    simulator's deterministic choices.  Not cryptographic.  Each generator is
    an independent state, so per-thread generators never contend. *)

type t = { mutable s0 : int64; mutable s1 : int64 }

let create seed =
  (* SplitMix64 to spread the seed over both words. *)
  let z = ref (Int64.of_int (seed lxor 0x9E3779B9)) in
  let next () =
    z := Int64.add !z 0x9E3779B97F4A7C15L;
    let x = !z in
    let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
    let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
    Int64.logxor x (Int64.shift_right_logical x 31)
  in
  let s0 = next () in
  let s1 = next () in
  let s1 = if s0 = 0L && s1 = 0L then 1L else s1 in
  { s0; s1 }

let next_int64 t =
  let s1 = t.s0 and s0 = t.s1 in
  t.s0 <- s0;
  let s1 = Int64.logxor s1 (Int64.shift_left s1 23) in
  let s1 =
    Int64.logxor (Int64.logxor s1 (Int64.shift_right_logical s1 17))
      (Int64.logxor s0 (Int64.shift_right_logical s0 26))
  in
  t.s1 <- s1;
  Int64.add s1 s0

(** [next t] returns a non-negative random [int]. *)
let next t = Int64.to_int (next_int64 t) land max_int

(** [below t n] returns a uniform integer in [\[0, n)].  Requires [n > 0]. *)
let below t n =
  assert (n > 0);
  next t mod n

(** [float t] returns a uniform float in [\[0, 1)]. *)
let float t = float_of_int (next t) /. (float_of_int max_int +. 1.)

(** [bool t p] is [true] with probability [p]. *)
let bool t p = float t < p
