lib/bst/natarajan.ml: Ascy_core Ascy_mem Ascy_ssmem
