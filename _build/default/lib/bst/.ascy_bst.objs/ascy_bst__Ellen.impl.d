lib/bst/ellen.ml: Ascy_core Ascy_mem Ascy_ssmem
