lib/bst/drachsler.ml: Ascy_core Ascy_locks Ascy_mem Ascy_ssmem List
