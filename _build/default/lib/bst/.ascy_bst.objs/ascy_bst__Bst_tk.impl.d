lib/bst/bst_tk.ml: Ascy_core Ascy_locks Ascy_mem Ascy_ssmem
