lib/bst/howley.ml: Ascy_core Ascy_mem Ascy_ssmem
