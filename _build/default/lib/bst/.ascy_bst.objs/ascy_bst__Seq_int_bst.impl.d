lib/bst/seq_int_bst.ml: Ascy_mem
