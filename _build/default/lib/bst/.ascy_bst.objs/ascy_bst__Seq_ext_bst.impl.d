lib/bst/seq_ext_bst.ml: Ascy_mem
