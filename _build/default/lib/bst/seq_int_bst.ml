(** Sequential internal BST — asynchronized baseline (Table 1
    "async-int").  Elements live in every node; deleting a node with two
    children replaces its key/value with its in-order successor's. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  type 'v node = Nil | Node of 'v info

  and 'v info = {
    line : Mem.line;
    key : int Mem.r;
    value : 'v Mem.r;
    left : 'v node Mem.r;
    right : 'v node Mem.r;
  }

  type 'v t = { root : 'v node Mem.r }

  let name = "bst-async-int"

  let create ?hint:_ ?read_only_fail:_ () = { root = Mem.make_fresh Nil }

  let mk_node k v =
    let line = Mem.new_line () in
    Node
      {
        line;
        key = Mem.make line k;
        value = Mem.make line v;
        left = Mem.make line Nil;
        right = Mem.make line Nil;
      }

  (* cell holding the node with key k (or the Nil where it would go) *)
  let locate t k =
    let rec go cell =
      match Mem.get cell with
      | Nil -> cell
      | Node n ->
          Mem.touch n.line;
          let nk = Mem.get n.key in
          if k = nk then cell else go (if k < nk then n.left else n.right)
    in
    go t.root

  let search t k =
    match Mem.get (locate t k) with Node n -> Some (Mem.get n.value) | Nil -> None

  let insert t k v =
    let cell = locate t k in
    match Mem.get cell with
    | Node _ -> false
    | Nil ->
        Mem.set cell (mk_node k v);
        true

  let remove t k =
    let cell = locate t k in
    match Mem.get cell with
    | Nil -> false
    | Node n -> (
        match (Mem.get n.left, Mem.get n.right) with
        | Nil, other | other, Nil ->
            Mem.set cell other;
            true
        | Node _, Node r ->
            (* two children: pull up the in-order successor *)
            let rec min_cell cell =
              match Mem.get cell with
              | Node m -> ( match Mem.get m.left with Nil -> cell | Node _ -> min_cell m.left)
              | Nil -> assert false
            in
            let scell = min_cell n.right in
            (match Mem.get scell with
            | Node s ->
                Mem.set n.key (Mem.get s.key);
                Mem.set n.value (Mem.get s.value);
                Mem.set scell (Mem.get s.right)
            | Nil -> assert false);
            ignore r;
            true)

  let size t =
    let rec go = function
      | Nil -> 0
      | Node n -> 1 + go (Mem.get n.left) + go (Mem.get n.right)
    in
    go (Mem.get t.root)

  let validate t =
    let rec go nd lo hi =
      match nd with
      | Nil -> Ok ()
      | Node n ->
          let k = Mem.get n.key in
          if k <= lo || k >= hi then Error "BST order violated"
          else
            (match go (Mem.get n.left) lo k with
            | Error _ as e -> e
            | Ok () -> go (Mem.get n.right) k hi)
    in
    go (Mem.get t.root) min_int max_int

  let op_done _ = ()
end
