(** Sequential external BST — asynchronized baseline (Table 1
    "async-ext").  Elements live only in leaves; internal (router) nodes
    carry keys for routing.  Insertion replaces a leaf with a router over
    two leaves; removal deletes the leaf and its router parent. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  type 'v node =
    | Leaf of { key : int; value : 'v option; line : Mem.line }
    | Router of 'v router

  and 'v router = {
    key : int;
    line : Mem.line;
    left : 'v node Mem.r;
    right : 'v node Mem.r;
  }

  (* Sentinel keys: all user keys are smaller (Set_intf caps user keys at
     max_int - 2). *)
  let inf1 = max_int - 1
  let inf2 = max_int

  type 'v t = { root : 'v router }

  let name = "bst-async-ext"

  let mk_leaf key value =
    let line = Mem.new_line () in
    Leaf { key; value; line }

  let mk_router key left right =
    let line = Mem.new_line () in
    { key; line; left = Mem.make line left; right = Mem.make line right }

  let create ?hint:_ ?read_only_fail:_ () =
    (* natarajan-style initialization: R(inf2) -> S(inf1) + leaf(inf2);
       S -> leaf(inf1) + leaf(inf2); user data grows under S.left *)
    let s = mk_router inf1 (mk_leaf inf1 None) (mk_leaf inf2 None) in
    { root = mk_router inf2 (Router s) (mk_leaf inf2 None) }

  let go_left r k = k < r.key

  (* (grandparent cell, parent router, leaf) for key k *)
  let seek t k =
    let rec go gcell (p : 'v router) =
      let cell = if go_left p k then p.left else p.right in
      match Mem.get cell with
      | Leaf l as lf ->
          Mem.touch l.line;
          (gcell, p, cell, lf)
      | Router r ->
          Mem.touch r.line;
          go cell r
    in
    go (if go_left t.root k then t.root.left else t.root.right) t.root

  let search t k =
    match seek t k with
    | _, _, _, Leaf l when l.key = k -> l.value
    | _ -> None

  let insert t k v =
    let _, _, cell, lf = seek t k in
    match lf with
    | Leaf l when l.key = k -> false
    | Leaf l ->
        let nl = mk_leaf k (Some v) in
        let r =
          if k < l.key then mk_router l.key nl lf else mk_router k lf nl
        in
        Mem.set cell (Router r);
        true
    | Router _ -> assert false

  let remove t k =
    let gcell, p, cell, lf = seek t k in
    match lf with
    | Leaf l when l.key = k ->
        let sibling = Mem.get (if go_left p k then p.right else p.left) in
        ignore cell;
        Mem.set gcell sibling;
        true
    | _ -> false

  let size t =
    let rec go nd =
      match nd with
      | Leaf l -> if l.value = None then 0 else 1
      | Router r -> go (Mem.get r.left) + go (Mem.get r.right)
    in
    go (Router t.root)

  let validate t =
    let rec go nd lo hi =
      match nd with
      | Leaf l ->
          if l.value <> None && not (l.key >= lo && l.key < hi) then
            Error "leaf key outside router bounds"
          else Ok ()
      | Router r ->
          if not (r.key > lo && r.key <= hi) then Error "router key outside bounds"
          else
            (match go (Mem.get r.left) lo r.key with
            | Error _ as e -> e
            | Ok () -> go (Mem.get r.right) r.key hi)
    in
    go (Router t.root) min_int max_int

  let op_done _ = ()
end
