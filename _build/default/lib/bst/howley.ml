(** Internal lock-free BST with operation records and helping, after
    Howley & Jones (Table 1 "howley"; SPAA 2012).

    Every child-pointer mutation goes through the owning node's [op]
    field: a thread claims the node with a CAS installing a [ChildCAS]
    record, performs the child CAS, publishes the outcome in the record
    and releases the node — and {e any} thread that encounters a pending
    record helps complete it, searches included ("all three operations
    perform helping and might need to restart", exactly the ASCY1/2
    violations the paper quantifies on this algorithm).  Three atomic
    operations per structural update, against natarajan's ~two.

    Faithful simplification (documented in DESIGN.md): where Howley
    relocates the successor's key into a deleted two-child node, we
    tombstone the node in place (its [value] cell becomes [None], equal
    keys route right) and splice tombstones with at most one child; the
    synchronization structure — op claiming, helping, restarts — is the
    algorithm's. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info

  and 'v info = {
    key : int;
    line : Mem.line;
    value : 'v option Mem.r; (* None = tombstone (routing) *)
    op : 'v op Mem.r;
    left : 'v node Mem.r;
    right : 'v node Mem.r;
  }

  and 'v op =
    | Clean
    | Dead (* frozen for splicing; terminal unless the splice aborts *)
    | ChildCAS of 'v ccas

  and 'v ccas = {
    cell : 'v node Mem.r;
    expected : 'v node;
    update : 'v node;
    outcome : int Mem.r; (* 0 pending / 1 success / 2 failure *)
  }

  type 'v t = { root : 'v info; ssmem : S.t }

  let name = "bst-howley"

  let mk_info key value =
    let line = Mem.new_line () in
    {
      key;
      line;
      value = Mem.make line value;
      op = Mem.make line Clean;
      left = Mem.make line Nil;
      right = Mem.make line Nil;
    }

  (* root sentinel: routes every user key to its left *)
  let create ?hint:_ ?read_only_fail:_ () =
    { root = mk_info max_int None; ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold () }

  (* Equal keys route right (tombstones are routers). *)
  let child (n : 'v info) k = if k < n.key then n.left else n.right

  (* Complete a claimed ChildCAS: perform the swap, publish the outcome,
     release the owner.  Within the claim window the cell can only change
     through this record, and [update] is a unique block, so reading the
     cell disambiguates who won. *)
  let perform (owner : 'v info) (u : 'v op) (c : 'v ccas) =
    if Mem.cas c.cell c.expected c.update then ignore (Mem.cas c.outcome 0 1)
    else if Mem.get c.cell == c.update then ignore (Mem.cas c.outcome 0 1)
    else ignore (Mem.cas c.outcome 0 2);
    (* release against the stored ChildCAS block [u] (physical CAS) *)
    ignore (Mem.cas owner.op u Clean)

  let help (owner : 'v info) (u : 'v op) =
    match u with
    | ChildCAS c ->
        Mem.emit E.help;
        perform owner u c
    | Clean | Dead -> ()

  (* Claim [owner] and run [c]; true iff the child CAS took effect. *)
  let rec execute (owner : 'v info) (c : 'v ccas) =
    match Mem.get owner.op with
    | Clean ->
        let u = ChildCAS c in
        if Mem.cas owner.op Clean u then begin
          perform owner u c;
          Mem.get c.outcome = 1
        end
        else begin
          Mem.emit E.cas_fail;
          execute owner c
        end
    | ChildCAS _ as u ->
        help owner u;
        execute owner c
    | Dead -> false (* owner is being spliced out *)

  (* Descent that helps pending operations it encounters. *)
  let descend t k ~helping =
    let rec go (p : 'v info) (n : 'v info) =
      (if helping then
         match Mem.get n.op with
         | ChildCAS _ as u -> help n u
         | Clean | Dead -> ());
      if n.key = k && Mem.get n.value <> None then `Found (p, n)
      else
        match Mem.get (child n k) with
        | Nil -> `Missing (p, n)
        | Node m ->
            Mem.touch m.line;
            go n m
    in
    go t.root t.root

  let search t k =
    match descend t k ~helping:true with
    | `Found (_, n) -> Mem.get n.value
    | `Missing _ -> None

  (* Try to splice tombstone [n] (child of [p], <= 1 child) out. *)
  let try_splice t (p : 'v info) (n : 'v info) =
    if n != t.root then begin
      (* freeze n so its children cannot change under the splice *)
      match Mem.get n.op with
      | Clean when Mem.cas n.op Clean Dead -> (
          match (Mem.get n.left, Mem.get n.right) with
          | Node _, Node _ ->
              (* gained a second child: abort the freeze *)
              ignore (Mem.cas n.op Dead Clean)
          | (Nil, only | only, Nil) ->
              if Mem.get n.value <> None then ignore (Mem.cas n.op Dead Clean)
              else begin
                let cell =
                  match Mem.get p.left with Node m when m == n -> p.left | _ -> p.right
                in
                (* the expected value must be the stored block, not a
                   fresh [Node n] wrapper *)
                match Mem.get cell with
                | Node m as stored when m == n ->
                    let c = { cell; expected = stored; update = only; outcome = Mem.make_fresh 0 } in
                    if execute p c then S.free t.ssmem n
                    else ignore (Mem.cas n.op Dead Clean)
                | _ -> ignore (Mem.cas n.op Dead Clean) (* p is stale *)
              end)
      | _ -> ()
    end

  let insert t k v =
    let rec attempt () =
      Mem.emit E.parse;
      match descend t k ~helping:true with
      | `Found _ -> false
      | `Missing (_, n) ->
          let cell = child n k in
          let c =
            {
              cell;
              expected = Nil;
              update = Node (mk_info k (Some v));
              outcome = Mem.make_fresh 0;
            }
          in
          if execute n c then true
          else begin
            Mem.emit E.restart;
            attempt ()
          end
    in
    attempt ()

  let remove t k =
    match descend t k ~helping:true with
    | `Missing _ -> false
    | `Found (p, n) -> (
        match Mem.get n.value with
        | None -> false
        | Some _ as v ->
            if Mem.cas n.value v None then begin
              (* physical cleanup when it is cheap *)
              (match (Mem.get n.left, Mem.get n.right) with
              | Node _, Node _ -> () (* stays as a routing tombstone *)
              | _ -> try_splice t p n);
              true
            end
            else false (* another remove won *))

  let size t =
    let rec go = function
      | Nil -> 0
      | Node n ->
          (if Mem.get n.value = None then 0 else 1) + go (Mem.get n.left) + go (Mem.get n.right)
    in
    go (Mem.get t.root.left)

  let validate t =
    (* equal keys route right: lo is inclusive for tombstone duplicates *)
    let rec go nd lo hi =
      match nd with
      | Nil -> Ok ()
      | Node n ->
          if n.key < lo || n.key >= hi then Error "BST order violated"
          else (
            match go (Mem.get n.left) lo n.key with
            | Error _ as e -> e
            | Ok () -> go (Mem.get n.right) n.key hi)
    in
    go (Mem.get t.root.left) min_int max_int

  let op_done t = S.quiesce t.ssmem
end
