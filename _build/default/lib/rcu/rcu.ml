(** Userspace read-copy-update (substrate for the [urcu] hash table).

    Classic per-thread counter scheme (Desnoyers et al.): a reader makes
    its counter odd for the duration of the read-side critical section;
    [synchronize] snapshots all counters and waits until every reader that
    was inside a critical section has left it (counter changed or even).
    Writers that removed nodes call [synchronize] before freeing them —
    which is exactly the update-side cost the paper contrasts with
    ASCY4-style designs. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module B = Ascy_locks.Backoff.Make (Mem)

  type t = { ctr : int Mem.r array }

  let create () = { ctr = Array.init (Mem.max_threads ()) (fun _ -> Mem.make_fresh 0) }

  let read_lock t =
    let c = t.ctr.(Mem.self ()) in
    Mem.set c (Mem.get c + 1) (* becomes odd *)

  let read_unlock t =
    let c = t.ctr.(Mem.self ()) in
    Mem.set c (Mem.get c + 1) (* becomes even *)

  (** Wait for all current readers to finish their critical sections. *)
  let synchronize t =
    Mem.emit Ascy_mem.Event.wait;
    let snap = Array.map Mem.get t.ctr in
    Array.iteri
      (fun i s ->
        if s land 1 = 1 then begin
          let b = B.create () in
          while Mem.get t.ctr.(i) = s do
            B.once b
          done
        end)
      snap
end
