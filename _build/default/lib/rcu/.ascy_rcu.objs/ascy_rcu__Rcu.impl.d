lib/rcu/rcu.ml: Array Ascy_locks Ascy_mem
