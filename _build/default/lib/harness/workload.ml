(** Workload definitions matching the paper's experimental settings (§4):
    the structure is initialized with [initial] elements; operations pick
    keys uniformly in [1 .. 2*initial] so on average half the operations
    are successful and the size stays near [initial]; the update
    percentage is split between insertions and removals. *)

type t = {
  initial : int;
  key_range : int;
  update_pct : int; (* 0..100; half inserts, half removes *)
}

let make ?key_range ~initial ~update_pct () =
  {
    initial;
    key_range = (match key_range with Some r -> r | None -> 2 * initial);
    update_pct;
  }

(* The three contention levels of Figure 2. *)
let average = make ~initial:4096 ~update_pct:10 ()
let high = make ~initial:512 ~update_pct:25 ()
let low = make ~initial:16384 ~update_pct:10 ()

type op = Search | Insert | Remove

(** Zipf-like skewed key popularity (for the paper's brief "non-uniform
    workloads" experiments): a fraction [hot_pct] of accesses hit a
    [hot_keys]-sized prefix of the key range. *)
type skew = { hot_keys : int; hot_pct : int }

let pick_key_skewed w skew rng =
  if Ascy_util.Xorshift.below rng 100 < skew.hot_pct then
    1 + Ascy_util.Xorshift.below rng (min skew.hot_keys w.key_range)
  else 1 + Ascy_util.Xorshift.below rng w.key_range

let pick_op w rng =
  let r = Ascy_util.Xorshift.below rng 100 in
  if r >= w.update_pct then Search else if r land 1 = 0 then Insert else Remove

let pick_key w rng = 1 + Ascy_util.Xorshift.below rng w.key_range
