(** Run one CSDS workload inside the multicore simulator and collect the
    paper's four scalability dimensions: throughput, average latency,
    latency distribution, and power (plus the memory-event counters used
    by Figures 3 and 7). *)

module Sim = Ascy_mem.Sim
module P = Ascy_platform.Platform
module H = Ascy_util.Histogram

type latency_class = {
  search_hit : H.t;
  search_miss : H.t;
  insert_ok : H.t;
  insert_fail : H.t;
  remove_ok : H.t;
  remove_fail : H.t;
}

let fresh_latencies () =
  {
    search_hit = H.create ();
    search_miss = H.create ();
    insert_ok = H.create ();
    insert_fail = H.create ();
    remove_ok = H.create ();
    remove_fail = H.create ();
  }

type result = {
  algorithm : string;
  platform : string;
  nthreads : int;
  ops : int;
  updates_attempted : int;
  updates_successful : int;
  seconds : float;
  throughput_mops : float;
  stats : Sim.run_stats;
  latencies : latency_class;
  final_size : int;
}

(** [run ?seed ?latency (module A) ~platform ~nthreads ~workload
    ~ops_per_thread] executes the workload deterministically on the
    simulated machine and returns every metric of one experiment point.
    [latency = true] records a per-operation latency sample (ns). *)
let run ?(seed = 1) ?(latency = false) (module A : Ascy_core.Set_intf.MAKER) ~platform ~nthreads
    ~(workload : Workload.t) ~ops_per_thread () =
  let module M = A (Sim.Mem) in
  Sim.with_sim ~seed ~platform ~nthreads (fun sim ->
      (* build + prefill happen outside simulated time *)
      let t = M.create ~hint:workload.Workload.initial () in
      let rng0 = Ascy_util.Xorshift.create (seed * 31 + 7) in
      let filled = ref 0 in
      while !filled < workload.Workload.initial do
        if M.insert t (Workload.pick_key workload rng0) 0 then incr filled
      done;
      Sim.warm sim;
      let lat = fresh_latencies () in
      let upd_att = Array.make nthreads 0 in
      let upd_ok = Array.make nthreads 0 in
      let ghz = platform.P.ghz in
      let body tid () =
        let rng = Ascy_util.Xorshift.create ((seed * 7919) + (tid * 104729) + 13) in
        for _ = 1 to ops_per_thread do
          let k = Workload.pick_key workload rng in
          let op = Workload.pick_op workload rng in
          if latency then begin
            let t0 = Sim.now () in
            let record h =
              let cycles = Sim.now () - t0 in
              H.add h (float_of_int cycles /. ghz)
            in
            match op with
            | Workload.Search ->
                let r = M.search t k in
                record (if r <> None then lat.search_hit else lat.search_miss)
            | Workload.Insert ->
                upd_att.(tid) <- upd_att.(tid) + 1;
                let r = M.insert t k tid in
                if r then upd_ok.(tid) <- upd_ok.(tid) + 1;
                record (if r then lat.insert_ok else lat.insert_fail)
            | Workload.Remove ->
                upd_att.(tid) <- upd_att.(tid) + 1;
                let r = M.remove t k in
                if r then upd_ok.(tid) <- upd_ok.(tid) + 1;
                record (if r then lat.remove_ok else lat.remove_fail)
          end
          else begin
            match op with
            | Workload.Search -> ignore (M.search t k)
            | Workload.Insert ->
                upd_att.(tid) <- upd_att.(tid) + 1;
                if M.insert t k tid then upd_ok.(tid) <- upd_ok.(tid) + 1
            | Workload.Remove ->
                upd_att.(tid) <- upd_att.(tid) + 1;
                if M.remove t k then upd_ok.(tid) <- upd_ok.(tid) + 1
          end;
          M.op_done t
        done
      in
      let makespan = Sim.run sim (Array.init nthreads body) in
      let stats = Sim.stats sim ~makespan in
      let ops = nthreads * ops_per_thread in
      {
        algorithm = M.name;
        platform = platform.P.name;
        nthreads;
        ops;
        updates_attempted = Array.fold_left ( + ) 0 upd_att;
        updates_successful = Array.fold_left ( + ) 0 upd_ok;
        seconds = stats.Sim.seconds;
        throughput_mops =
          (if stats.Sim.seconds > 0.0 then float_of_int ops /. stats.Sim.seconds /. 1e6 else 0.0);
        stats;
        latencies = lat;
        final_size = M.size t;
      })

(** Misses per operation — Figure 3's metric. *)
let misses_per_op r = float_of_int (Sim.misses r.stats) /. float_of_int (max r.ops 1)

(** Atomic (RMW) operations per successful update — Figure 7's metric. *)
let atomics_per_update r =
  float_of_int r.stats.Sim.atomics /. float_of_int (max r.updates_successful 1)

(** Extra parses beyond one per update, as a percentage — §5's
    fraser vs fraser-opt numbers. *)
let extra_parse_pct r =
  let parses = r.stats.Sim.events.(Ascy_mem.Event.parse) in
  if parses = 0 then 0.0
  else
    100.0
    *. float_of_int (parses - r.updates_attempted)
    /. float_of_int (max r.updates_attempted 1)
