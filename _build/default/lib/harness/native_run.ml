(** Run a CSDS workload natively on OCaml domains and measure wall-clock
    throughput.  On a single-core host this measures per-operation cost
    and scheduler interleaving rather than parallel speedup; the
    simulator ({!Sim_run}) is the instrument for scalability shapes. *)

type result = {
  algorithm : string;
  nthreads : int;
  ops : int;
  seconds : float;
  throughput_mops : float;
  final_size : int;
}

let run ?(seed = 1) (module A : Ascy_core.Set_intf.MAKER) ~nthreads ~(workload : Workload.t)
    ~duration () =
  let module M = A (Ascy_mem.Mem_native) in
  let t = M.create ~hint:workload.Workload.initial () in
  let rng0 = Ascy_util.Xorshift.create (seed * 31 + 7) in
  let filled = ref 0 in
  while !filled < workload.Workload.initial do
    if M.insert t (Workload.pick_key workload rng0) 0 then incr filled
  done;
  let stop = Atomic.make false in
  let go = Atomic.make false in
  let counts = Array.make nthreads 0 in
  let body tid () =
    let rng = Ascy_util.Xorshift.create ((seed * 7919) + (tid * 104729) + 13) in
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    let n = ref 0 in
    while not (Atomic.get stop) do
      let k = Workload.pick_key workload rng in
      (match Workload.pick_op workload rng with
      | Workload.Search -> ignore (M.search t k)
      | Workload.Insert -> ignore (M.insert t k tid)
      | Workload.Remove -> ignore (M.remove t k));
      M.op_done t;
      incr n
    done;
    counts.(tid) <- !n
  in
  let domains = Array.init nthreads (fun tid -> Domain.spawn (body tid)) in
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  Unix.sleepf duration;
  Atomic.set stop true;
  Array.iter Domain.join domains;
  let dt = Unix.gettimeofday () -. t0 in
  let ops = Array.fold_left ( + ) 0 counts in
  {
    algorithm = M.name;
    nthreads;
    ops;
    seconds = dt;
    throughput_mops = float_of_int ops /. dt /. 1e6;
    final_size = M.size t;
  }
