lib/harness/report.ml: Array Ascy_util List Printf String
