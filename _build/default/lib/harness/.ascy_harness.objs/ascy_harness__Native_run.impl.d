lib/harness/native_run.ml: Array Ascy_core Ascy_mem Ascy_util Atomic Domain Unix Workload
