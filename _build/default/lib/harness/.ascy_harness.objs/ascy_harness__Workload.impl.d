lib/harness/workload.ml: Ascy_util
