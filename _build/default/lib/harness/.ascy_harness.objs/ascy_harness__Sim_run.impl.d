lib/harness/sim_run.ml: Array Ascy_core Ascy_mem Ascy_platform Ascy_util Workload
