lib/hashtable/clht_lb.ml: Array Ascy_core Ascy_locks Ascy_mem Hash Hashtbl
