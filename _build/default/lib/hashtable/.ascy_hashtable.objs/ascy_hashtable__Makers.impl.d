lib/hashtable/makers.ml: Ascy_linkedlist Ascy_mem Bucket_table
