lib/hashtable/bucket_table.ml: Array Ascy_core Ascy_mem Hash String
