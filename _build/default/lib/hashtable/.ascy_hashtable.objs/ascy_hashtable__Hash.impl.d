lib/hashtable/hash.ml:
