lib/hashtable/urcu_ht.ml: Array Ascy_core Ascy_locks Ascy_mem Ascy_rcu Ascy_ssmem Hash Hashtbl
