lib/hashtable/java_ht.ml: Array Ascy_core Ascy_locks Ascy_mem Hash Hashtbl
