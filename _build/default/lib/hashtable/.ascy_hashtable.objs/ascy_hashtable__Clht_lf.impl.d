lib/hashtable/clht_lf.ml: Array Ascy_core Ascy_locks Ascy_mem Hash Hashtbl
