(** The hash-table catalogue (Table 1): chained tables built from the
    list algorithms, the three library-style designs, and CLHT. *)

module Ll = Ascy_linkedlist

(** Asynchronized (sequential lists in each bucket): the upper bound. *)
module Seq (Mem : Ascy_mem.Memory.S) = Bucket_table.Make (Mem) (Ll.Seq_list.Make (Mem))

(** One lock-coupling list per bucket (fully lock-based). *)
module Coupling (Mem : Ascy_mem.Memory.S) = Bucket_table.Make (Mem) (Ll.Coupling.Make (Mem))

(** One Pugh list per bucket. *)
module Pugh (Mem : Ascy_mem.Memory.S) = Bucket_table.Make (Mem) (Ll.Pugh.Make (Mem))

(** One lazy list per bucket. *)
module Lazy (Mem : Ascy_mem.Memory.S) = Bucket_table.Make (Mem) (Ll.Lazy_list.Make (Mem))

(** One copy-on-write list per bucket. *)
module Copy (Mem : Ascy_mem.Memory.S) = Bucket_table.Make (Mem) (Ll.Copy_list.Make (Mem))

(** One Harris (ASCY-optimised) lock-free list per bucket; the paper's
    "harris" hash table uses the harris-opt list. *)
module Harris (Mem : Ascy_mem.Memory.S) = Bucket_table.Make (Mem) (Ll.Harris_opt.Make (Mem))
