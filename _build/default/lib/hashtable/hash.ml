(** Key-to-bucket hashing shared by all hash tables.

    Fibonacci (multiplicative) hashing: cheap, and spreads the uniform or
    clustered integer keys the workloads generate.  Bucket counts are
    always powers of two. *)

let phi = 0x1E3779B97F4A7C15 (* golden-ratio constant, truncated to 61 bits *)

(* Keep the result non-negative on 63-bit ints. *)
let mix k = (k * phi) lxor ((k * phi) asr 29) land max_int

let bucket k mask = mix k land mask

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)
