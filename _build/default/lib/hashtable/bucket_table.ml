(** Hash table as a fixed array of per-bucket list sets.

    This is how the paper builds its [coupling], [pugh], [lazy], [copy]
    and [harris] hash tables: "uses one <list> per bucket" (Table 1), each
    bucket protected by whatever synchronization the list itself uses.
    The table inherits the ASCY compliance of its bucket list. *)

module Make (Mem : Ascy_mem.Memory.S) (L : Ascy_core.Set_intf.SET) = struct
  type 'v t = { buckets : 'v L.t array; mask : int; rr : int array }

  let name =
    let base = L.name in
    let base =
      if String.length base > 3 && String.sub base 0 3 = "ll-" then
        String.sub base 3 (String.length base - 3)
      else base
    in
    "ht-" ^ base

  let create ?hint ?read_only_fail () =
    let n =
      Hash.pow2_at_least
        (match hint with Some h -> max 1 h | None -> !Ascy_core.Config.default_buckets)
        1
    in
    {
      buckets = Array.init n (fun _ -> L.create ?read_only_fail ());
      mask = n - 1;
      rr = Array.make (Mem.max_threads ()) 0;
    }

  let bucket t k = t.buckets.(Hash.bucket k t.mask)

  let search t k = L.search (bucket t k) k
  let insert t k v = L.insert (bucket t k) k v
  let remove t k = L.remove (bucket t k) k
  let size t = Array.fold_left (fun acc b -> acc + L.size b) 0 t.buckets

  let validate t =
    Array.fold_left
      (fun acc b -> match acc with Error _ -> acc | Ok () -> L.validate b)
      (Ok ()) t.buckets

  (* Each bucket list owns its reclamation state; tick them round-robin so
     every bucket's epochs keep advancing at O(1) cost per operation. *)
  let op_done t =
    let me = Mem.self () in
    let i = t.rr.(me) in
    t.rr.(me) <- (i + 1) land t.mask;
    L.op_done t.buckets.(i)
end
