(** The concurrent-search-data-structure interface (paper §2).

    Every implementation in ASCYLIB-OCaml — linked lists, hash tables,
    skip lists, BSTs; sequential, lock-based and lock-free — provides
    {!SET}, as a functor over the shared-memory abstraction
    ({!Ascy_mem.Memory.S}), so the same algorithm runs natively on OCaml
    domains or inside the multicore simulator.

    Semantics (linearizable, except the [seq]/asynchronized variants which
    are deliberately unsynchronized upper bounds):
    - [search t k] returns the value bound to [k], if any;
    - [insert t k v] adds the binding iff [k] is absent; returns success;
    - [remove t k] deletes the binding iff [k] is present; returns success.

    Keys are [int]s in [[min_key, max_key]]; the extremes are reserved for
    internal sentinels.  Values are arbitrary (['v]). *)

let min_key = min_int + 2
let max_key = max_int - 2

module type SET = sig
  type 'v t

  val name : string

  val create : ?hint:int -> ?read_only_fail:bool -> unit -> 'v t
  (** [hint] sizes table-like structures (bucket count).
      [read_only_fail] toggles ASCY3 ("an update whose parse fails performs
      no stores") on the algorithms the paper applies it to; [true] by
      default.  Ignored by algorithms where it does not apply. *)

  val search : 'v t -> int -> 'v option
  val insert : 'v t -> int -> 'v -> bool
  val remove : 'v t -> int -> bool

  val size : 'v t -> int
  (** Number of elements; O(n) traversal, not linearizable. *)

  val validate : 'v t -> (unit, string) result
  (** Check structural invariants (ordering, reachability, no duplicates).
      Intended for quiescent moments in tests. *)

  val op_done : 'v t -> unit
  (** Announce a quiescent point for memory reclamation (SSMEM/RCU).
      Harnesses call it after each complete operation; a no-op for
      structures without deferred reclamation. *)
end

module type MAKER = functor (Mem : Ascy_mem.Memory.S) -> SET
