lib/core/set_intf.ml: Ascy_mem
