lib/core/ascy.ml: Printf
