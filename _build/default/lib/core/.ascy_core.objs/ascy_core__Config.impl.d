lib/core/config.ml:
