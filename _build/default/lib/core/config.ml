(** Global tuning knobs read by implementations at [create] time.

    The paper tunes SSMEM's garbage threshold per platform (512 on most
    machines, 128 on the Tilera whose TLB is tiny); benches set these
    before creating structures. *)

let ssmem_threshold = ref 512

(** Default bucket count for hash tables when [?hint] is omitted. *)
let default_buckets = ref 1024

(** Maximum levels for skip lists. *)
let skiplist_levels = ref 20

(** Use HTM-style lock elision in CLHT-LB updates (read at [create]
    time; only effective where the memory layer provides transactions,
    i.e. the simulator). *)
let clht_htm = ref false
