(** Sequential sorted linked list — the {e asynchronized} baseline
    (Table 1, "async").

    No synchronization whatsoever: deployed shared it is incorrect, but its
    performance is the paper's practical upper bound for what any correct
    concurrent list can hope to achieve.  All memory accesses still go
    through {!Ascy_mem.Memory.S} so the simulator charges it the same
    coherence costs as the concurrent algorithms. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  type 'v node = Nil | Node of { key : int; value : 'v; line : Mem.line; next : 'v node Mem.r }

  type 'v t = { head : 'v node Mem.r; head_line : Mem.line }

  let name = "ll-async"

  let create ?hint:_ ?read_only_fail:_ () =
    let head_line = Mem.new_line () in
    { head = Mem.make head_line Nil; head_line }

  let node key value next_node =
    let line = Mem.new_line () in
    Node { key; value; line; next = Mem.make line next_node }

  (* Returns the cell whose content is the first node with key >= k, plus
     that node (possibly Nil). *)
  let locate t k =
    let rec go cell =
      match Mem.get cell with
      | Nil -> (cell, Nil)
      | Node n as nd ->
          Mem.touch n.line;
          if n.key < k then go n.next else (cell, nd)
    in
    Mem.touch t.head_line;
    go t.head

  let search t k =
    match locate t k with
    | _, Node n when n.key = k -> Some n.value
    | _ -> None

  let insert t k v =
    let cell, succ = locate t k in
    match succ with
    | Node n when n.key = k -> false
    | _ ->
        Mem.set cell (node k v succ);
        true

  let remove t k =
    match locate t k with
    | cell, Node n when n.key = k ->
        Mem.set cell (Mem.get n.next);
        true
    | _ -> false

  let size t =
    let rec go cell acc =
      match Mem.get cell with Nil -> acc | Node n -> go n.next (acc + 1)
    in
    go t.head 0

  let validate t =
    let rec go cell last =
      match Mem.get cell with
      | Nil -> Ok ()
      | Node n -> if n.key <= last then Error "keys not strictly increasing" else go n.next n.key
    in
    go t.head min_int

  let op_done _ = ()
end
