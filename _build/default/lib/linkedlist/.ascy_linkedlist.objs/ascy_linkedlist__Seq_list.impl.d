lib/linkedlist/seq_list.ml: Ascy_mem
