lib/linkedlist/harris_opt.ml: Ascy_core Ascy_mem Ascy_ssmem
