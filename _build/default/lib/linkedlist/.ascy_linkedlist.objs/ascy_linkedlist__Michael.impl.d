lib/linkedlist/michael.ml: Ascy_core Ascy_mem Ascy_ssmem
