lib/linkedlist/harris.ml: Ascy_core Ascy_mem Ascy_ssmem
