lib/linkedlist/copy_list.ml: Array Ascy_locks Ascy_mem
