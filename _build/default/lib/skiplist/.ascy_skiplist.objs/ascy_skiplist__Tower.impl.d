lib/skiplist/tower.ml: Array Ascy_mem
