lib/skiplist/level_gen.ml: Array Ascy_core Ascy_mem Ascy_util
