lib/skiplist/herlihy_sl.ml: Array Ascy_core Ascy_locks Ascy_mem Ascy_ssmem Level_gen List Option
