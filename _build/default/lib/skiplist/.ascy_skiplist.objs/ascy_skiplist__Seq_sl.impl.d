lib/skiplist/seq_sl.ml: Array Ascy_mem Level_gen Option
