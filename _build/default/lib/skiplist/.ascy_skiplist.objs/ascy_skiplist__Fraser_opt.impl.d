lib/skiplist/fraser_opt.ml: Array Ascy_core Ascy_mem Ascy_ssmem Level_gen Option Tower
