(** Shared node representation for the lock-free skip lists (fraser and
    fraser-opt): a tower of per-level next pointers, each holding an
    immutable [link] record whose [mark] bit logically deletes the node at
    that level (the OCaml equivalent of Fraser's tagged pointers). *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  type 'v node = Nil | Node of 'v info
  and 'v info = { key : int; value : 'v option; line : Mem.line; nexts : 'v link Mem.r array }
  and 'v link = { mark : bool; succ : 'v node }

  let mk_info key value height =
    let line = Mem.new_line () in
    {
      key;
      value;
      line;
      nexts = Array.init height (fun _ -> Mem.make line { mark = false; succ = Nil });
    }

  (* Number of live (unmarked-at-level-0) elements. *)
  let size_of head =
    let rec go (l : 'v link) acc =
      match l.succ with
      | Nil -> acc
      | Node n ->
          let nl = Mem.get n.nexts.(0) in
          go nl (if nl.mark then acc else acc + 1)
    in
    go (Mem.get head.nexts.(0)) 0

  (* Level-0 live keys strictly increasing. *)
  let validate_of head =
    let rec go (l : 'v link) last =
      match l.succ with
      | Nil -> Ok ()
      | Node n ->
          let nl = Mem.get n.nexts.(0) in
          if nl.mark then go nl last
          else if n.key <= last then Error "live keys not strictly increasing"
          else go nl n.key
    in
    go (Mem.get head.nexts.(0)) min_int
end
