(** Sequential skip list — the asynchronized baseline (Table 1 "async").
    Same caveat as {!Ascy_linkedlist.Seq_list}: incorrect when shared, but
    the practical performance upper bound. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module Lg = Level_gen.Make (Mem)

  type 'v node = Nil | Node of 'v info
  and 'v info = { key : int; value : 'v option; line : Mem.line; nexts : 'v node Mem.r array }

  type 'v t = { head : 'v info; levels : Lg.t }

  let name = "sl-async"

  let mk_info key value height =
    let line = Mem.new_line () in
    { key; value; line; nexts = Array.init height (fun _ -> Mem.make line Nil) }

  let create ?hint ?read_only_fail:_ () =
    let max_level = Lg.max_for_hint (Option.value hint ~default:1024) in
    { head = mk_info min_int None max_level; levels = Lg.create max_level }

  let height t = Array.length t.head.nexts

  (* preds.(lvl) = last info with key < k at level lvl *)
  let parse t k =
    let preds = Array.make (height t) t.head in
    let rec go info lvl =
      if lvl < 0 then preds
      else
        match Mem.get info.nexts.(lvl) with
        | Node n when n.key < k ->
            Mem.touch n.line;
            go n lvl
        | _ ->
            preds.(lvl) <- info;
            go info (lvl - 1)
    in
    go t.head (height t - 1)

  let search t k =
    let rec go info lvl =
      if lvl < 0 then None
      else
        match Mem.get info.nexts.(lvl) with
        | Node n when n.key < k ->
            Mem.touch n.line;
            go n lvl
        | Node n when n.key = k -> n.value
        | _ -> go info (lvl - 1)
    in
    go t.head (height t - 1)

  let insert t k v =
    let preds = parse t k in
    match Mem.get preds.(0).nexts.(0) with
    | Node n when n.key = k -> false
    | _ ->
        let h = Lg.next t.levels in
        let n = mk_info k (Some v) h in
        for lvl = 0 to h - 1 do
          Mem.set n.nexts.(lvl) (Mem.get preds.(lvl).nexts.(lvl));
          Mem.set preds.(lvl).nexts.(lvl) (Node n)
        done;
        true

  let remove t k =
    let preds = parse t k in
    match Mem.get preds.(0).nexts.(0) with
    | Node n when n.key = k ->
        for lvl = 0 to Array.length n.nexts - 1 do
          if lvl < Array.length preds.(lvl).nexts then
            match Mem.get preds.(lvl).nexts.(lvl) with
            | Node m when m == n -> Mem.set preds.(lvl).nexts.(lvl) (Mem.get n.nexts.(lvl))
            | _ -> ()
        done;
        true
    | _ -> false

  let size t =
    let rec go info acc =
      match Mem.get info.nexts.(0) with Nil -> acc | Node n -> go n (acc + 1)
    in
    go t.head 0

  let validate t =
    let rec level0 info last =
      match Mem.get info.nexts.(0) with
      | Nil -> Ok ()
      | Node n -> if n.key <= last then Error "keys not strictly increasing" else level0 n n.key
    in
    level0 t.head min_int

  let op_done _ = ()
end
