(** Per-thread geometric level generator for skip lists (p = 1/2).

    One PRNG per thread id keeps level choice deterministic inside the
    simulator and contention-free natively. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  type t = { rngs : Ascy_util.Xorshift.t option array; max : int }

  let create max = { rngs = Array.make (Mem.max_threads ()) None; max }

  let next t =
    let me = Mem.self () in
    let rng =
      match t.rngs.(me) with
      | Some r -> r
      | None ->
          let r = Ascy_util.Xorshift.create (0x5EED + (me * 104729)) in
          t.rngs.(me) <- Some r;
          r
    in
    let rec go h = if h < t.max && Ascy_util.Xorshift.below rng 2 = 0 then go (h + 1) else h in
    go 1

  (** Pick the tower height for an expected structure size [hint]. *)
  let max_for_hint hint =
    let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
    max 4 (min !Ascy_core.Config.skiplist_levels (log2 (max 2 hint) 0 + 2))
end
