lib/platform/platform.ml: List String
