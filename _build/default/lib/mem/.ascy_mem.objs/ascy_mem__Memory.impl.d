lib/mem/memory.ml:
