lib/mem/mem_native.ml: Array Atomic Domain Event
