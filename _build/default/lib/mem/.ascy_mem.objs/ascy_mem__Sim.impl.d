lib/mem/sim.ml: Array Ascy_platform Ascy_util Effect Event Fun List Memory Printexc Printf
