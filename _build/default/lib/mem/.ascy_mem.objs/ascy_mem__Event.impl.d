lib/mem/event.ml:
