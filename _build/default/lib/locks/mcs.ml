(** MCS queue lock (Mellor-Crummey & Scott).

    Each waiter spins on its {e own} qnode — one line per waiter — so a
    release invalidates exactly one remote cache line instead of waking
    every spinner, the property that made queue locks the scalable
    alternative the paper's SOSP'13 companion study benchmarks.  Provided
    for completeness and for the lock micro-comparisons; the CSDSs
    themselves follow the paper in using TTAS/ticket locks. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  type qnode = { locked : bool Mem.r; next : qnode option Mem.r }

  type t = { tail : qnode option Mem.r }

  let create line = { tail = Mem.make line None }
  let create_fresh () = create (Mem.new_line ())

  let mk_qnode () =
    let line = Mem.new_line () in
    { locked = Mem.make line false; next = Mem.make line None }

  (* the handle keeps the exact [Some] block stored in the tail, so the
     release CAS (physical equality) can match it *)
  type handle = { me : qnode; opt : qnode option }

  (** Acquire with a fresh qnode; returns the handle for {!release}. *)
  let acquire t =
    let me = mk_qnode () in
    let opt = Some me in
    let rec swap_tail () =
      let prev = Mem.get t.tail in
      if Mem.cas t.tail prev opt then prev else swap_tail ()
    in
    (match swap_tail () with
    | None -> () (* lock was free *)
    | Some pred ->
        Mem.set me.locked true;
        Mem.set pred.next opt;
        while Mem.get me.locked do
          Mem.cpu_relax ()
        done);
    Mem.emit Ascy_mem.Event.lock;
    { me; opt }

  let release t h =
    match Mem.get h.me.next with
    | Some succ -> Mem.set succ.locked false
    | None ->
        (* no known successor: try to swing the tail back to empty *)
        if Mem.cas t.tail h.opt None then ()
        else begin
          (* a successor is linking itself in; wait for it *)
          let rec wait () =
            match Mem.get h.me.next with
            | Some succ -> Mem.set succ.locked false
            | None ->
                Mem.cpu_relax ();
                wait ()
          in
          wait ()
        end
end
