(** Sequence lock: optimistic readers, single versioned writer.

    Writers make the version odd while writing; readers retry if they saw
    an odd version or the version changed across their read.  Used by the
    emulated-HTM fallback path. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module B = Backoff.Make (Mem)

  type t = int Mem.r

  let create line : t = Mem.make line 0
  let create_fresh () : t = Mem.make_fresh 0

  (** Begin a write section; returns the (odd) version. *)
  let write_acquire (t : t) =
    let b = B.create () in
    let rec loop () =
      let v = Mem.get t in
      if v land 1 = 0 && Mem.cas t v (v + 1) then v + 1
      else begin
        B.once b;
        loop ()
      end
    in
    let v = loop () in
    Mem.emit Ascy_mem.Event.lock;
    v

  let write_release (t : t) = Mem.set t (Mem.get t + 1)

  (** [read t f] runs [f ()] until it executes entirely within one version
      (no concurrent writer). *)
  let read (t : t) f =
    let b = B.create () in
    let rec loop () =
      let v0 = Mem.get t in
      if v0 land 1 = 1 then begin
        B.once b;
        loop ()
      end
      else begin
        let x = f () in
        if Mem.get t = v0 then x
        else begin
          Mem.emit Ascy_mem.Event.restart;
          B.once b;
          loop ()
        end
      end
    in
    loop ()

  let version (t : t) = Mem.get t
end
