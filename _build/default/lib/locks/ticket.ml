(** Ticket lock with a versioned try-acquire interface.

    A ticket lock already embeds a version number (the now-serving
    counter); BST-TK (paper §6.2) exploits this to merge optimistic
    validation with lock acquisition: the parse phase records the version
    it observed, and [try_acquire_version] succeeds only if no update has
    slipped in since.  [release] increments the version, publishing the
    update. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module B = Backoff.Make (Mem)

  type t = { next : int Mem.r; now : int Mem.r }

  let create line = { next = Mem.make line 0; now = Mem.make line 0 }
  let create_fresh () = create (Mem.new_line ())

  (** Blocking FIFO acquire. *)
  let acquire t =
    let my = Mem.fetch_and_add t.next 1 in
    let b = B.create () in
    while Mem.get t.now <> my do
      B.once b
    done;
    Mem.emit Ascy_mem.Event.lock

  let release t = Mem.set t.now (Mem.get t.now + 1)

  (** The version observed by an optimistic parse. *)
  let version t = Mem.get t.now

  (** [try_acquire_version t v] atomically acquires the lock iff it is free
      and its version is still [v] (i.e. no one updated the protected data
      since the caller read [v]).  On success the caller must [release],
      which bumps the version to [v + 1]. *)
  let try_acquire_version t v =
    if Mem.get t.now <> v then false
    else if Mem.cas t.next v (v + 1) then begin
      Mem.emit Ascy_mem.Event.lock;
      true
    end
    else false

  let is_locked t = Mem.get t.next <> Mem.get t.now
end
