(** Test-and-test-and-set spinlock.

    The default per-node lock of the lock-based CSDSs.  Spins reading
    (cheap: the line stays shared) and only attempts the atomic when the
    lock looks free, with exponential backoff on failure. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module B = Backoff.Make (Mem)

  type t = int Mem.r

  (** [create line] allocates the lock on [line] so that it shares a cache
      line with the node it protects (as the C implementations do). *)
  let create line : t = Mem.make line 0

  let create_fresh () : t = Mem.make_fresh 0

  let try_acquire (t : t) = Mem.get t = 0 && Mem.cas t 0 1

  let acquire (t : t) =
    if not (try_acquire t) then begin
      let b = B.create () in
      let rec loop () =
        if Mem.get t <> 0 then begin
          B.once b;
          loop ()
        end
        else if not (Mem.cas t 0 1) then begin
          B.once b;
          loop ()
        end
      in
      loop ()
    end;
    Mem.emit Ascy_mem.Event.lock

  let release (t : t) = Mem.set t 0
  let is_locked (t : t) = Mem.get t <> 0
end
