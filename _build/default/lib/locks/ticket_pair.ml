(** A pair of small ticket locks packed into one word — the BST-TK node
    lock (paper §6.2: "two smaller ticket locks to each node, so that the
    left and the right pointers can be locked separately").

    Packing both (ticket, now-serving) pairs into a single word lets a
    removal acquire {e both} edges of a node with one CAS, and lets
    [try_acquire_version] merge optimistic validation with acquisition:
    it succeeds only if the edge is free {e and} its version still equals
    what the parse observed.

    Layout (15 bits each, wrap-around like the 16-bit C fields):
    [l_next | l_now | r_next | r_now]. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  type t = int Mem.r

  type side = L | R

  let bits = 15
  let mask = (1 lsl bits) - 1

  let l_next w = (w lsr (3 * bits)) land mask
  let l_now w = (w lsr (2 * bits)) land mask
  let r_next w = (w lsr bits) land mask
  let r_now w = w land mask

  let pack ln lo rn ro = (ln lsl (3 * bits)) lor (lo lsl (2 * bits)) lor (rn lsl bits) lor ro

  let create line : t = Mem.make line 0
  let create_fresh () : t = Mem.make_fresh 0

  (** Current version (now-serving counter) of one edge. *)
  let version (t : t) side =
    let w = Mem.get t in
    match side with L -> l_now w | R -> r_now w

  (** Both versions from a single read: (left, right). *)
  let versions (t : t) =
    let w = Mem.get t in
    (l_now w, r_now w)

  let bump v = (v + 1) land mask

  (** Acquire one edge iff it is free and its version is still [v]. *)
  let try_acquire_version (t : t) side v =
    let w = Mem.get t in
    let ok =
      match side with
      | L -> l_now w = v && l_next w = v
      | R -> r_now w = v && r_next w = v
    in
    ok
    &&
    let w' =
      match side with
      | L -> pack (bump v) (l_now w) (r_next w) (r_now w)
      | R -> pack (l_next w) (l_now w) (bump v) (r_now w)
    in
    if Mem.cas t w w' then begin
      Mem.emit Ascy_mem.Event.lock;
      true
    end
    else false

  (** Acquire both edges with a single CAS iff both are free at the
      observed versions. *)
  let try_acquire_both (t : t) vl vr =
    let w = Mem.get t in
    l_now w = vl && l_next w = vl && r_now w = vr && r_next w = vr
    &&
    if Mem.cas t w (pack (bump vl) vl (bump vr) vr) then begin
      Mem.emit Ascy_mem.Event.lock;
      true
    end
    else false

  (** Release one edge, bumping its version (publishes the update). *)
  let release (t : t) side =
    let rec loop () =
      let w = Mem.get t in
      let w' =
        match side with
        | L -> pack (l_next w) (bump (l_now w)) (r_next w) (r_now w)
        | R -> pack (l_next w) (l_now w) (r_next w) (bump (r_now w))
      in
      if not (Mem.cas t w w') then loop ()
    in
    loop ()

  let is_locked (t : t) side =
    let w = Mem.get t in
    match side with L -> l_next w <> l_now w | R -> r_next w <> r_now w
end
