lib/locks/seqlock.ml: Ascy_mem Backoff
