lib/locks/backoff.ml: Ascy_mem
