lib/locks/mcs.ml: Ascy_mem
