lib/locks/ttas.ml: Ascy_mem Backoff
