lib/locks/rw_lock.ml: Ascy_mem Backoff
