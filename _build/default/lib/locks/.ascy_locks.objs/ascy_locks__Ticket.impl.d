lib/locks/ticket.ml: Ascy_mem Backoff
