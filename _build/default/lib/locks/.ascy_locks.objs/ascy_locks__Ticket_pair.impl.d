lib/locks/ticket_pair.ml: Ascy_mem
