lib/ascylib/registry.ml: Ascy_bst Ascy_core Ascy_hashtable Ascy_linkedlist Ascy_skiplist List
