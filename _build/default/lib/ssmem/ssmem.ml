(** SSMEM: an epoch-based memory reclamation scheme (paper §3).

    Freed nodes are not reusable until a garbage-collection pass proves
    that no thread can still hold a reference, using per-thread activity
    timestamps (quiescent-state-based reclamation, as in the C SSMEM):

    - every thread bumps its own timestamp between operations
      ([quiesce], wired to [Set_intf.op_done]);
    - [free] buffers garbage in the calling thread's current batch;
    - once [gc_threshold] objects have accumulated, the batch is stamped
      with a snapshot of all timestamps and parked; parked batches whose
      every stamp has since advanced are reclaimed.

    In OCaml the runtime GC already guarantees memory safety and ABA
    freedom, so "reclaiming" here feeds a statistics channel and an
    optional recycler rather than a raw allocator; what is preserved from
    the paper is the *behaviour*: deferred reuse, configurable garbage
    thresholds (the Tilera runs use 128 instead of 512), GC-pass counts,
    and the non-blocking design based on per-thread counters. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  type garbage = Garbage : 'a -> garbage

  type batch = { stamp : int array; items : garbage list; size : int }

  type thread_state = {
    mutable current : garbage list;
    mutable current_size : int;
    mutable parked : batch list;
    mutable freed : int;
    mutable reclaimed : int;
    mutable gc_passes : int;
  }

  type t = {
    gc_threshold : int;
    ts : int Mem.r array; (* per-thread activity timestamps *)
    states : thread_state option array; (* lazily created, owner-only *)
    reclaimer : (garbage -> unit) option;
  }

  let create ?(gc_threshold = 512) ?reclaimer () =
    let n = Mem.max_threads () in
    {
      gc_threshold;
      ts = Array.init n (fun _ -> Mem.make_fresh 0);
      states = Array.make n None;
      reclaimer;
    }

  let state t =
    let me = Mem.self () in
    match t.states.(me) with
    | Some s -> s
    | None ->
        let s =
          { current = []; current_size = 0; parked = []; freed = 0; reclaimed = 0; gc_passes = 0 }
        in
        t.states.(me) <- Some s;
        s

  let snapshot t = Array.map Mem.get t.ts

  (* A parked batch is safe once every thread's timestamp moved past the
     one recorded when the batch was parked (threads that never registered
     stay at their initial value only if they never run operations; they
     hold no references, so a strictly-greater check on changed entries
     suffices: we require ts > stamp OR stamp = ts = 0 meaning idle). *)
  let batch_safe t b =
    let ok = ref true in
    Array.iteri
      (fun i s -> if not (Mem.get t.ts.(i) > s || s = 0) then ok := false)
      b.stamp;
    !ok

  let collect t s =
    s.gc_passes <- s.gc_passes + 1;
    Mem.emit Ascy_mem.Event.gc_pass;
    let ready, still = List.partition (batch_safe t) s.parked in
    s.parked <- still;
    List.iter
      (fun b ->
        s.reclaimed <- s.reclaimed + b.size;
        match t.reclaimer with
        | Some r -> List.iter r b.items
        | None -> ())
      ready

  (** Announce a quiescent point: the calling thread holds no references
      into any structure using this allocator.  Call between operations. *)
  let quiesce t =
    let me = Mem.self () in
    Mem.set t.ts.(me) (Mem.get t.ts.(me) + 1);
    (* opportunistically retire parked batches, as the C allocator does on
       its allocation path *)
    match t.states.(me) with
    | Some s when s.parked <> [] -> collect t s
    | _ -> ()


  (** Defer [x] for reclamation. *)
  let free t x =
    let s = state t in
    s.current <- Garbage x :: s.current;
    s.current_size <- s.current_size + 1;
    s.freed <- s.freed + 1;
    if s.current_size >= t.gc_threshold then begin
      let stamp = snapshot t in
      (* mark our own slot as always-safe: we are parking, not reading *)
      stamp.(Mem.self ()) <- 0;
      s.parked <- { stamp; items = s.current; size = s.current_size } :: s.parked;
      s.current <- [];
      s.current_size <- 0;
      collect t s
    end

  type stats = { freed : int; reclaimed : int; pending : int; gc_passes : int }

  (** Aggregate statistics across all threads. *)
  let stats t =
    let freed = ref 0 and reclaimed = ref 0 and passes = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some (s : thread_state) ->
            freed := !freed + s.freed;
            reclaimed := !reclaimed + s.reclaimed;
            passes := !passes + s.gc_passes)
      t.states;
    { freed = !freed; reclaimed = !reclaimed; pending = !freed - !reclaimed; gc_passes = !passes }
end
