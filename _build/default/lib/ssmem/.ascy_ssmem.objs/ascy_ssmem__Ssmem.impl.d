lib/ssmem/ssmem.ml: Array Ascy_mem List
