(* Table 1: the algorithm catalogue, with synchronization class and ASCY
   compliance under the default configuration. *)

open Ascylib

let run () =
  Bench_config.section "Table 1 — CSDS algorithms in ASCYLIB-OCaml";
  let rows =
    List.map
      (fun (x : Registry.entry) ->
        [
          x.Registry.name;
          Ascy_core.Ascy.family_to_string x.Registry.family;
          Ascy_core.Ascy.sync_to_string x.Registry.sync;
          Ascy_core.Ascy.to_string x.Registry.ascy;
          x.Registry.desc;
        ])
      Registry.all
  in
  Ascy_harness.Report.table ~title:(Printf.sprintf "%d implementations" (List.length Registry.all))
    [ "name"; "family"; "type"; "ASCY"; "description" ]
    rows
