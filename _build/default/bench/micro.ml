(* Bechamel micro-benchmarks: real (native, single-thread) per-operation
   cost of every implementation — the one hardware measurement a
   single-core host supports honestly.  One grouped Test per Table-1
   family. *)

open Bechamel
open Toolkit

let mixed_test (x : Ascylib.Registry.entry) =
  let module A = (val x.Ascylib.Registry.maker : Ascy_core.Set_intf.MAKER) in
  let module M = A (Ascy_mem.Mem_native) in
  Test.make ~name:x.Ascylib.Registry.name
    (Staged.stage (fun () ->
         let t = M.create ~hint:256 () in
         for i = 1 to 128 do
           ignore (M.insert t ((i * 37) land 255) i)
         done;
         for i = 1 to 256 do
           ignore (M.search t ((i * 53) land 255));
           ignore (M.insert t ((i * 11) land 255) i);
           ignore (M.remove t ((i * 29) land 255))
         done))

let family_tests family name =
  Test.make_grouped ~name
    (List.map mixed_test (Ascylib.Registry.by_family family))

let benchmark () =
  let tests =
    [
      family_tests Ascy_core.Ascy.Linked_list "linked-list";
      family_tests Ascy_core.Ascy.Hash_table "hash-table";
      family_tests Ascy_core.Ascy.Skip_list "skip-list";
      family_tests Ascy_core.Ascy.Bst "bst";
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  List.map
    (fun test ->
      Benchmark.all cfg instances test)
    tests

let analyze results =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  List.map (fun r -> Analyze.all ols Instance.monotonic_clock r) results

let run () =
  Bench_config.section "Bechamel — native single-thread mixed-op cost (512 ops per run)";
  let results = benchmark () in
  let analyses = analyze results in
  List.iter
    (fun a ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/iteration\n" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        a)
    analyses
