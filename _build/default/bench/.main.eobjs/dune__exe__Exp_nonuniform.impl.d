bench/exp_nonuniform.ml: Array Ascy_harness Ascy_mem Ascy_platform Ascy_util Ascylib Bench_config List Registry
