bench/exp_table1.ml: Ascy_core Ascy_harness Ascylib Bench_config List Printf Registry
