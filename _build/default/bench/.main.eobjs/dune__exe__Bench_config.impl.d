bench/bench_config.ml: Ascy_platform Printf Sys
