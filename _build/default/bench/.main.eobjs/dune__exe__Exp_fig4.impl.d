bench/exp_fig4.ml: Ascy_harness Ascy_mem Ascy_platform Ascy_util Ascylib Bench_config List Printf Registry
