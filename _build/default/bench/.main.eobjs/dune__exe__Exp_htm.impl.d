bench/exp_htm.ml: Ascy_core Ascy_harness Ascy_platform Ascylib Bench_config Fun List Printf Registry
