bench/main.mli:
