bench/exp_ssmem.ml: Array Ascy_core Ascy_harness Ascy_mem Ascy_platform Ascylib Bench_config Fun List Registry
