bench/micro.ml: Analyze Ascy_core Ascy_mem Ascylib Bechamel Bench_config Benchmark Hashtbl Instance List Measure Printf Staged Test Time Toolkit
