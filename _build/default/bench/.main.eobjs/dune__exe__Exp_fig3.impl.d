bench/exp_fig3.ml: Ascy_core Ascy_harness Ascy_platform Ascylib Bench_config List Registry
