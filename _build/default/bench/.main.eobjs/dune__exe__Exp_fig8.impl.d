bench/exp_fig8.ml: Ascy_harness Ascy_platform Ascylib Bench_config List Printf Registry
