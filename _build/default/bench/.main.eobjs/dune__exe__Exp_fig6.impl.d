bench/exp_fig6.ml: Ascy_core Ascy_harness Ascy_mem Ascy_platform Ascy_util Ascylib Bench_config List Printf Registry
