bench/main.ml: Exp_fig2 Exp_fig3 Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig7 Exp_fig8 Exp_fig9 Exp_htm Exp_nonuniform Exp_ssmem Exp_table1 List Micro Printf String Sys Unix
