bench/exp_fig2.ml: Ascy_core Ascy_harness Ascy_platform Ascylib Bench_config List Printf Registry
