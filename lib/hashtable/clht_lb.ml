(** CLHT-LB: the cache-line hash table, lock-based variant (paper §6.1 —
    one of the two algorithms designed from scratch with ASCY).

    Every bucket occupies a {e single cache line} holding the concurrency
    word (a lock), three key/value pairs and a next pointer, so operations
    complete with at most one cache-line transfer.  Updates are in-place:
    no node allocation, no per-node garbage collection.  Searches acquire
    an atomic snapshot of a key/value pair (read value, re-check key and
    value) instead of locking.  Updates first search the bucket, so
    unsuccessful updates are read-only (ASCY3 by construction).

    In the simulator, placing the whole bucket on one modeled line
    reproduces the single-transfer behaviour exactly; natively the slots
    are separate [Atomic.t] cells (OCaml exposes no cache-line control)
    but the algorithm is unchanged. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module E = Ascy_mem.Event

  let entries = 3
  let empty_key = min_int

  type 'v bucket = {
    line : Mem.line;
    lock : L.t;
    keys : int Mem.r array;
    vals : 'v option Mem.r array;
    next : 'v bucket option Mem.r;
  }

  type 'v table = { buckets : 'v bucket array; mask : int; expands : int Mem.r }

  type 'v t = { tbl : 'v table Mem.r; resize_lock : L.t; htm : bool }

  let name = "ht-clht-lb"

  let mk_bucket () =
    let line = Mem.new_line () in
    {
      line;
      lock = L.create line;
      keys = Array.init entries (fun _ -> Mem.make line empty_key);
      vals = Array.init entries (fun _ -> Mem.make line None);
      next = Mem.make line None;
    }

  let mk_table n =
    { buckets = Array.init n (fun _ -> mk_bucket ()); mask = n - 1; expands = Mem.make_fresh 0 }

  let create ?hint ?read_only_fail:_ () =
    let n =
      Hash.pow2_at_least (match hint with Some h -> max 1 h | None -> !Ascy_core.Config.default_buckets) 1
    in
    {
      tbl = Mem.make_fresh (mk_table n);
      resize_lock = L.create_fresh ();
      htm = !Ascy_core.Config.clht_htm;
    }

  (* Atomic snapshot of slot [i]: read the value, then re-check that the
     key still matches and the value is unchanged. *)
  let snapshot b i k =
    let v = Mem.get b.vals.(i) in
    match v with
    | Some _ when Mem.get b.keys.(i) = k && Mem.get b.vals.(i) == v -> v
    | _ -> None

  let search t k =
    let tbl = Mem.get t.tbl in
    let rec scan b =
      Mem.touch b.line;
      let rec slot i =
        if i = entries then match Mem.get b.next with Some nb -> scan nb | None -> None
        else if Mem.get b.keys.(i) = k then
          match snapshot b i k with Some _ as r -> r | None -> slot (i + 1)
        else slot (i + 1)
      in
      slot 0
    in
    scan tbl.buckets.(Hash.bucket k tbl.mask)

  (* Lock the head bucket for [k], revalidating against resizes. *)
  let rec lock_head t k =
    let tbl = Mem.get t.tbl in
    let b = tbl.buckets.(Hash.bucket k tbl.mask) in
    L.acquire b.lock;
    if Mem.get t.tbl == tbl then (tbl, b)
    else begin
      L.release b.lock;
      Mem.emit E.restart;
      lock_head t k
    end

  (* Under the head lock: find the slot holding [k], or an empty slot. *)
  let chain_scan b k =
    let rec go b empty pos =
      let rec slot i =
        if i = entries then `Next
        else if Mem.get b.keys.(i) = k then `Found (b, i)
        else slot (i + 1)
      in
      match slot 0 with
      | `Found (b, i) -> `Found (b, i)
      | `Next -> (
          let empty =
            match empty with
            | Some _ -> empty
            | None ->
                let rec free_slot i =
                  if i = entries then None
                  else if Mem.get b.keys.(i) = empty_key then Some (b, i)
                  else free_slot (i + 1)
                in
                free_slot 0
          in
          match Mem.get b.next with
          | Some nb -> go nb empty (pos + 1)
          | None -> `Empty (empty, b, pos))
    in
    go b None 0

  (* Grow the table 2x: freeze all writers (every head lock), migrate,
     publish. *)
  let resize t =
    if L.try_acquire t.resize_lock then begin
      let old = Mem.get t.tbl in
      Array.iter (fun b -> L.acquire b.lock) old.buckets;
      let fresh = mk_table (2 * (old.mask + 1)) in
      let insert_fresh k v =
        let rec go b =
          let rec slot i =
            if i = entries then
              match Mem.get b.next with
              | Some nb -> go nb
              | None ->
                  let nb = mk_bucket () in
                  Mem.set nb.vals.(0) v;
                  Mem.set nb.keys.(0) k;
                  Mem.set b.next (Some nb)
            else if Mem.get b.keys.(i) = empty_key then begin
              Mem.set b.vals.(i) v;
              Mem.set b.keys.(i) k
            end
            else slot (i + 1)
          in
          slot 0
        in
        go fresh.buckets.(Hash.bucket k fresh.mask)
      in
      Array.iter
        (fun b ->
          let rec walk b =
            for i = 0 to entries - 1 do
              let k = Mem.get b.keys.(i) in
              if k <> empty_key then insert_fresh k (Mem.get b.vals.(i))
            done;
            match Mem.get b.next with Some nb -> walk nb | None -> ()
          in
          walk b)
        old.buckets;
      Mem.set t.tbl fresh;
      Array.iter (fun b -> L.release b.lock) old.buckets;
      L.release t.resize_lock
    end

  (* HTM-style elision (paper 4, "hardware considerations"): attempt the
     update as a best-effort transaction that reads the bucket lock
     (elision: abort-by-conflict if someone locks it) and performs the
     in-place update without acquiring it; fall back to the lock path on
     abort or when the fast path does not apply. *)
  let txn_insert t k v =
    Mem.txn (fun () ->
        let tbl = Mem.get t.tbl in
        let b = tbl.buckets.(Hash.bucket k tbl.mask) in
        if L.is_locked b.lock then `Fallback
        else
          match chain_scan b k with
          | `Found _ -> `Done false
          | `Empty (Some (eb, i), _, _) ->
              Mem.set eb.vals.(i) (Some v);
              Mem.set eb.keys.(i) k;
              `Done true
          | `Empty (None, _, _) -> `Fallback (* bucket append: take the lock *))

  let txn_remove t k =
    Mem.txn (fun () ->
        let tbl = Mem.get t.tbl in
        let b = tbl.buckets.(Hash.bucket k tbl.mask) in
        if L.is_locked b.lock then `Fallback
        else
          match chain_scan b k with
          | `Found (fb, i) ->
              Mem.set fb.keys.(i) empty_key;
              Mem.set fb.vals.(i) None;
              `Done true
          | `Empty _ -> `Done false)

  let insert t k v =
    Mem.emit E.parse;
    let doomed = search t k <> None in
    Mem.emit E.parse_end;
    if doomed then false (* ASCY3: read-only when doomed *)
    else begin
      let locked_path () =
        let _tbl, head = lock_head t k in
        match chain_scan head k with
        | `Found _ ->
            L.release head.lock;
            false
        | `Empty (Some (b, i), _, _) ->
            (* in-place publication: value first, then the key *)
            Mem.set b.vals.(i) (Some v);
            Mem.set b.keys.(i) k;
            L.release head.lock;
            true
        | `Empty (None, last, pos) ->
            let nb = mk_bucket () in
            Mem.set nb.vals.(0) (Some v);
            Mem.set nb.keys.(0) k;
            Mem.set last.next (Some nb);
            L.release head.lock;
            (* resize once a meaningful fraction of buckets has chained
               (the C CLHT's expansion counter), not on any long chain *)
            ignore pos;
            let tbl = Mem.get t.tbl in
            let e = Mem.fetch_and_add tbl.expands 1 in
            if e > (tbl.mask + 1) / 8 then resize t;
            true
      in
      if t.htm then
        match txn_insert t k v with
        | Some (`Done r) -> r
        | Some `Fallback | None -> locked_path ()
      else locked_path ()
    end

  let remove t k =
    Mem.emit E.parse;
    let doomed = search t k = None in
    Mem.emit E.parse_end;
    if doomed then false (* ASCY3 *)
    else begin
      let locked_path () =
        let _tbl, head = lock_head t k in
        match chain_scan head k with
        | `Found (b, i) ->
            (* key first so no reader can snapshot a half-dead slot *)
            Mem.set b.keys.(i) empty_key;
            Mem.set b.vals.(i) None;
            L.release head.lock;
            true
        | `Empty _ ->
            L.release head.lock;
            false
      in
      if t.htm then
        match txn_remove t k with
        | Some (`Done r) -> r
        | Some `Fallback | None -> locked_path ()
      else locked_path ()
    end

  let fold t f acc =
    let tbl = Mem.get t.tbl in
    Array.fold_left
      (fun acc b ->
        let rec walk b acc =
          let acc = ref acc in
          for i = 0 to entries - 1 do
            let k = Mem.get b.keys.(i) in
            if k <> empty_key then acc := f !acc k
          done;
          match Mem.get b.next with Some nb -> walk nb !acc | None -> !acc
        in
        walk b acc)
      acc tbl.buckets

  let size t = fold t (fun acc _ -> acc + 1) 0

  let validate t =
    let seen = Hashtbl.create 64 in
    let tbl = Mem.get t.tbl in
    let ok = ref (Ok ()) in
    Array.iteri
      (fun idx b ->
        let rec walk b =
          for i = 0 to entries - 1 do
            let k = Mem.get b.keys.(i) in
            if k <> empty_key then begin
              if Hashtbl.mem seen k then ok := Error "duplicate key";
              Hashtbl.replace seen k ();
              if Hash.bucket k tbl.mask <> idx then ok := Error "key in wrong bucket";
              if Mem.get b.vals.(i) = None then ok := Error "live key with no value"
            end
          done;
          match Mem.get b.next with Some nb -> walk nb | None -> ()
        in
        walk b)
      tbl.buckets;
    !ok

  let op_done _ = ()
end
