(** RCU-based hash table (Table 1 "urcu", after userspace-RCU's hash
    table, Desnoyers et al.).

    Readers run inside RCU read-side critical sections and traverse
    immutable bucket chains without locks.  Writers lock the bucket,
    republish a copied chain, and — the expensive part the paper calls
    out — every successful removal calls [synchronize] to wait for all
    ongoing readers before the victim can be freed.  The table resizes by
    doubling when chains grow.

    {!Make_ssmem} is the paper's re-engineered variant (§3): identical
    except removals hand victims to SSMEM's epoch reclamation instead of
    waiting for a grace period, moving the design closer to ASCY4. *)

module Inner (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module Rcu = Ascy_rcu.Rcu.Make (Mem)
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v chain = Nil | Cons of { key : int; value : 'v; line : Mem.line; next : 'v chain }

  type 'v table = { slots : 'v chain Mem.r array; locks : L.t array; mask : int }

  type 'v t = {
    tbl : 'v table Mem.r;
    rcu : Rcu.t;
    ssmem : S.t;
    resize_lock : L.t;
    defer_rcu : bool; (* wait for a grace period on removal? *)
    rof : bool;
  }

  let mk_table n =
    {
      slots = Array.init n (fun _ -> Mem.make_fresh Nil);
      locks = Array.init n (fun _ -> L.create_fresh ());
      mask = n - 1;
    }

  let create_inner ~defer_rcu ?hint ?(read_only_fail = true) () =
    let n =
      Hash.pow2_at_least (match hint with Some h -> max 1 h | None -> !Ascy_core.Config.default_buckets) 1
    in
    {
      tbl = Mem.make_fresh (mk_table n);
      rcu = Rcu.create ();
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
      resize_lock = L.create_fresh ();
      defer_rcu;
      rof = read_only_fail;
    }

  let rec chain_find c k =
    match c with
    | Nil -> None
    | Cons n ->
        Mem.touch n.line;
        if n.key = k then Some n.value else chain_find n.next k

  let cons k v next =
    let line = Mem.new_line () in
    Cons { key = k; value = v; line; next }

  let search t k =
    Rcu.read_lock t.rcu;
    let tbl = Mem.get t.tbl in
    let res = chain_find (Mem.get tbl.slots.(Hash.bucket k tbl.mask)) k in
    Rcu.read_unlock t.rcu;
    res

  let chain_len c =
    let rec go c acc = match c with Nil -> acc | Cons n -> go n.next (acc + 1) in
    go c 0

  (* Lock the bucket for [k] in the current table, retrying if a resize
     swapped the table while we were acquiring. *)
  let rec lock_bucket t k =
    let tbl = Mem.get t.tbl in
    let i = Hash.bucket k tbl.mask in
    L.acquire tbl.locks.(i);
    if Mem.get t.tbl == tbl then (tbl, i)
    else begin
      L.release tbl.locks.(i);
      Mem.emit E.restart;
      lock_bucket t k
    end

  let resize t =
    if L.try_acquire t.resize_lock then begin
      let old = Mem.get t.tbl in
      (* take every bucket lock, in order, to freeze writers *)
      Array.iter L.acquire old.locks;
      if Mem.get t.tbl == old then begin
        let fresh = mk_table ((old.mask + 1) * 2) in
        Array.iter
          (fun slot ->
            let rec rehash c =
              match c with
              | Nil -> ()
              | Cons n ->
                  let i = Hash.bucket n.key fresh.mask in
                  Mem.set fresh.slots.(i) (cons n.key n.value (Mem.get fresh.slots.(i)));
                  rehash n.next
            in
            rehash (Mem.get slot))
          old.slots;
        Mem.set t.tbl fresh
      end;
      Array.iter L.release old.locks;
      (* grace period before the old table and chains can be retired *)
      Rcu.synchronize t.rcu;
      L.release t.resize_lock
    end

  (* Unlocked parse: the bucket chain is immutable, so a plain traversal
     decides presence without synchronizing (read-only fail, ASCY3). *)
  let chain_has t k =
    let tbl = Mem.get t.tbl in
    chain_find (Mem.get tbl.slots.(Hash.bucket k tbl.mask)) k <> None

  let insert t k v =
    Mem.emit E.parse;
    let quick_fail = t.rof && chain_has t k in
    Mem.emit E.parse_end;
    if quick_fail then false
    else begin
    let tbl, i = lock_bucket t k in
    let c = Mem.get tbl.slots.(i) in
    if chain_find c k <> None then begin
      L.release tbl.locks.(i);
      false
    end
    else begin
      Mem.set tbl.slots.(i) (cons k v c);
      let long = chain_len c >= 4 in
      L.release tbl.locks.(i);
      if long then resize t;
      true
    end
    end

  let remove t k =
    Mem.emit E.parse;
    let quick_fail = t.rof && not (chain_has t k) in
    Mem.emit E.parse_end;
    if quick_fail then false
    else begin
    let tbl, i = lock_bucket t k in
    let c = Mem.get tbl.slots.(i) in
    if chain_find c k = None then begin
      L.release tbl.locks.(i);
      false
    end
    else begin
      (* copy the chain without the victim *)
      let rec rebuild c =
        match c with
        | Nil -> Nil
        | Cons n -> if n.key = k then n.next else cons n.key n.value (rebuild n.next)
      in
      Mem.set tbl.slots.(i) (rebuild c);
      L.release tbl.locks.(i);
      if t.defer_rcu then Rcu.synchronize t.rcu (* wait for ongoing readers *)
      else S.free t.ssmem k (* epoch-deferred instead *);
      true
    end
    end

  let size t =
    let tbl = Mem.get t.tbl in
    Array.fold_left (fun acc slot -> acc + chain_len (Mem.get slot)) 0 tbl.slots

  let validate t =
    let tbl = Mem.get t.tbl in
    let seen = Hashtbl.create 64 in
    let ok = ref (Ok ()) in
    Array.iteri
      (fun i slot ->
        let rec go c =
          match c with
          | Nil -> ()
          | Cons n ->
              if Hashtbl.mem seen n.key then ok := Error "duplicate key"
              else Hashtbl.replace seen n.key ();
              if Hash.bucket n.key tbl.mask <> i then ok := Error "key in wrong bucket";
              go n.next
        in
        go (Mem.get slot))
      tbl.slots;
    !ok

  let op_done t = S.quiesce t.ssmem
end

module Make (Mem : Ascy_mem.Memory.S) = struct
  include Inner (Mem)

  let name = "ht-urcu"
  let create ?hint ?read_only_fail () = create_inner ~defer_rcu:true ?hint ?read_only_fail ()
end

(** The ASCY4-leaning re-engineering: SSMEM instead of grace periods. *)
module Make_ssmem (Mem : Ascy_mem.Memory.S) = struct
  include Inner (Mem)

  let name = "ht-urcu-ssmem"
  let create ?hint ?read_only_fail () = create_inner ~defer_rcu:false ?hint ?read_only_fail ()
end
