(** Reader-writer-locked hash table in the style of Intel TBB's
    [concurrent_hash_map] (Table 1 "tbb").

    Fully lock-based: even searches acquire the bucket's reader-writer
    lock, so every operation stores to shared memory — the design whose
    poor portable scalability Figure 2 documents (it collapses entirely
    on the T4-4).  Buckets are sorted mutable lists.

    Deviation: TBB rehashes lazily by segments; we keep a fixed bucket
    array (chains grow).  The synchronization pattern — the property under
    study — is preserved. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module Rw = Ascy_locks.Rw_lock.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info
  and 'v info = { key : int; value : 'v; line : Mem.line; next : 'v node Mem.r }

  type 'v bucket = { lock : Rw.t; head : 'v node Mem.r }

  type 'v t = { buckets : 'v bucket array; mask : int }

  let name = "ht-tbb"

  let create ?hint ?read_only_fail:_ () =
    let n =
      Hash.pow2_at_least (match hint with Some h -> max 1 h | None -> !Ascy_core.Config.default_buckets) 1
    in
    {
      buckets =
        Array.init n (fun _ ->
            let line = Mem.new_line () in
            { lock = Rw.create line; head = Mem.make line Nil });
      mask = n - 1;
    }

  let bucket t k = t.buckets.(Hash.bucket k t.mask)

  (* cell whose contents is the first node with key >= k *)
  let locate b k =
    let rec go cell =
      match Mem.get cell with
      | Nil -> (cell, Nil)
      | Node n as nd ->
          Mem.touch n.line;
          if n.key < k then go n.next else (cell, nd)
    in
    go b.head

  let search t k =
    let b = bucket t k in
    Rw.read_acquire b.lock;
    let res = match locate b k with _, Node n when n.key = k -> Some n.value | _ -> None in
    Rw.read_release b.lock;
    res

  let insert t k v =
    let b = bucket t k in
    Mem.emit E.parse;
    Rw.write_acquire b.lock;
    let cell, succ = locate b k in
    Mem.emit E.parse_end;
    let ok =
      match succ with
      | Node n when n.key = k -> false
      | _ ->
          let line = Mem.new_line () in
          Mem.set cell (Node { key = k; value = v; line; next = Mem.make line succ });
          true
    in
    Rw.write_release b.lock;
    ok

  let remove t k =
    let b = bucket t k in
    Mem.emit E.parse;
    Rw.write_acquire b.lock;
    let loc = locate b k in
    Mem.emit E.parse_end;
    let ok =
      match loc with
      | cell, Node n when n.key = k ->
          Mem.set cell (Mem.get n.next);
          true
      | _ -> false
    in
    Rw.write_release b.lock;
    ok

  let size t =
    Array.fold_left
      (fun acc b ->
        let rec go cell acc =
          match Mem.get cell with Nil -> acc | Node n -> go n.next (acc + 1)
        in
        go b.head acc)
      0 t.buckets

  let validate t =
    let ok = ref (Ok ()) in
    Array.iteri
      (fun i b ->
        let rec go cell last =
          match Mem.get cell with
          | Nil -> ()
          | Node n ->
              if n.key <= last then ok := Error "bucket keys not increasing";
              if Hash.bucket n.key t.mask <> i then ok := Error "key in wrong bucket";
              go n.next n.key
        in
        go b.head min_int)
      t.buckets;
    !ok

  let op_done _ = ()
end
