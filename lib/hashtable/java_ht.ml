(** Striped-lock hash table in the style of Java's ConcurrentHashMap
    (Table 1 "java"; Lea's util.concurrent, segment design).

    A fixed array of 512 segments (the paper's 512 locks), each owning its
    own bucket table, element count and lock.  Searches are lock-free:
    they read the segment's table pointer and walk immutable chains.
    Updates lock only their segment; a segment whose load factor exceeds
    the threshold doubles its own table ("fine-grained resizing", which is
    also what spreads the table across memory and saves the Opteron runs
    in Figure 2).

    [read_only_fail] applies ASCY3: an update first runs a plain search
    and returns without locking when it cannot succeed — the paper's
    "java" vs "java-no" comparison of Figure 6, worth up to 12.5%
    throughput. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module E = Ascy_mem.Event

  let n_segments = 512
  let seg_shift = 9 (* log2 n_segments *)

  type 'v chain = Nil | Cons of { key : int; value : 'v; line : Mem.line; next : 'v chain }

  type 'v segment = {
    lock : L.t;
    table : 'v chain Mem.r array Mem.r;
    count : int Mem.r;
  }

  type 'v t = { segments : 'v segment array; rof : bool }

  let name = "ht-java"

  let mk_table n = Array.init n (fun _ -> Mem.make_fresh Nil)

  let create ?hint ?(read_only_fail = true) () =
    let hint = match hint with Some h -> max 1 h | None -> !Ascy_core.Config.default_buckets in
    let per_seg = Hash.pow2_at_least (max 1 (hint / n_segments)) 1 in
    {
      segments =
        Array.init n_segments (fun _ ->
            let line = Mem.new_line () in
            {
              lock = L.create line;
              table = Mem.make line (mk_table per_seg);
              count = Mem.make line 0;
            });
      rof = read_only_fail;
    }

  let segment t k = t.segments.(Hash.mix k land (n_segments - 1))

  let slot_of tbl k = Hash.mix k lsr seg_shift land (Array.length tbl - 1)

  let rec chain_find c k =
    match c with
    | Nil -> None
    | Cons n ->
        Mem.touch n.line;
        if n.key = k then Some n.value else chain_find n.next k

  let cons k v next =
    let line = Mem.new_line () in
    Cons { key = k; value = v; line; next }

  let search t k =
    let seg = segment t k in
    let tbl = Mem.get seg.table in
    chain_find (Mem.get tbl.(slot_of tbl k)) k

  (* Double this segment's table; called with the segment lock held. *)
  let grow seg =
    let old = Mem.get seg.table in
    let fresh = mk_table (2 * Array.length old) in
    Array.iter
      (fun slot ->
        let rec rehash c =
          match c with
          | Nil -> ()
          | Cons n ->
              let i = slot_of fresh n.key in
              Mem.set fresh.(i) (cons n.key n.value (Mem.get fresh.(i)));
              rehash n.next
        in
        rehash (Mem.get slot))
      old;
    Mem.set seg.table fresh

  let insert t k v =
    Mem.emit E.parse;
    let quick_fail = t.rof && search t k <> None in
    Mem.emit E.parse_end;
    if quick_fail then false
    else begin
      let seg = segment t k in
      L.acquire seg.lock;
      let tbl = Mem.get seg.table in
      let i = slot_of tbl k in
      let c = Mem.get tbl.(i) in
      if chain_find c k <> None then begin
        L.release seg.lock;
        false
      end
      else begin
        Mem.set tbl.(i) (cons k v c);
        let n = Mem.get seg.count + 1 in
        Mem.set seg.count n;
        if n > 2 * Array.length tbl then grow seg;
        L.release seg.lock;
        true
      end
    end

  let remove t k =
    Mem.emit E.parse;
    let quick_fail = t.rof && search t k = None in
    Mem.emit E.parse_end;
    if quick_fail then false
    else begin
      let seg = segment t k in
      L.acquire seg.lock;
      let tbl = Mem.get seg.table in
      let i = slot_of tbl k in
      let c = Mem.get tbl.(i) in
      if chain_find c k = None then begin
        L.release seg.lock;
        false
      end
      else begin
        let rec rebuild c =
          match c with
          | Nil -> Nil
          | Cons n -> if n.key = k then n.next else cons n.key n.value (rebuild n.next)
        in
        Mem.set tbl.(i) (rebuild c);
        Mem.set seg.count (Mem.get seg.count - 1);
        L.release seg.lock;
        true
      end
    end

  let size t = Array.fold_left (fun acc seg -> acc + Mem.get seg.count) 0 t.segments

  let validate t =
    let seen = Hashtbl.create 64 in
    let ok = ref (Ok ()) in
    Array.iter
      (fun seg ->
        let tbl = Mem.get seg.table in
        let counted = ref 0 in
        Array.iteri
          (fun i slot ->
            let rec go c =
              match c with
              | Nil -> ()
              | Cons n ->
                  incr counted;
                  if Hashtbl.mem seen n.key then ok := Error "duplicate key"
                  else Hashtbl.replace seen n.key ();
                  if slot_of tbl n.key <> i then ok := Error "key in wrong slot";
                  go n.next
            in
            go (Mem.get slot))
          tbl;
        if !counted <> Mem.get seg.count then ok := Error "segment count mismatch")
      t.segments;
    !ok

  let op_done _ = ()
end
