(** CLHT-LF: the lock-free cache-line hash table (paper §6.1).

    The concurrency word of each bucket is a [snapshot_t]: a version
    number plus a small map of per-slot states (invalid / valid /
    inserting), manipulated with CAS on the whole word.  In-place updates:

    - {b remove} is a single CAS that flips the slot's state from valid to
      invalid against the exact snapshot observed — one cache-line
      transfer, nothing else;
    - {b insert} claims an invalid slot (CAS to inserting), writes the
      key/value into the slot it now owns, re-scans the bucket chain for
      a concurrent duplicate, then publishes with a CAS to valid.  If the
      scan finds the key valid elsewhere the claim is rolled back and the
      insert fails; if it finds a concurrent {e inserting} duplicate the
      racer {e help-aborts} it (CAS the peer's slot back to invalid) and
      rescans (at least one of any racing pair is guaranteed to see the
      other, because each writes its key before scanning).  Help-abort
      rather than symmetric self-rollback matters for crash tolerance: a
      thread that dies between claiming a slot and publishing leaves an
      [inserting] claim behind forever, and deferring to it would turn a
      lock-free insert into a blocking one.  The flip side is that a
      commit must verify its own claim is still [inserting] — a racer may
      have aborted it — so both commit and rollback go through the
      guarded {!resolve}, never a blind state overwrite.

    Searches are snapshot-based and store-free (ASCY1); failed updates
    are read-only (ASCY3). *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module B = Ascy_locks.Backoff.Make (Mem)
  module E = Ascy_mem.Event

  let entries = 3
  let empty_key = min_int

  (* snapshot_t: low 2*entries bits = per-slot states, rest = version *)
  let st_invalid = 0
  let st_valid = 1
  let st_inserting = 2
  let map_bits = 2 * entries
  let map_mask = (1 lsl map_bits) - 1

  let state_of s i = (s lsr (2 * i)) land 3

  (* new word with slot [i] set to [st] and the version bumped *)
  let with_state s i st =
    let m = s land map_mask in
    let m = m land lnot (3 lsl (2 * i)) lor (st lsl (2 * i)) in
    (((s lsr map_bits) + 1) lsl map_bits) lor m

  type 'v bucket = {
    line : Mem.line;
    snap : int Mem.r;
    keys : int Mem.r array;
    vals : 'v option Mem.r array;
    next : 'v bucket option Mem.r;
  }

  type 'v t = { buckets : 'v bucket array; mask : int }

  let name = "ht-clht-lf"

  let mk_bucket () =
    let line = Mem.new_line () in
    {
      line;
      snap = Mem.make line 0;
      keys = Array.init entries (fun _ -> Mem.make line empty_key);
      vals = Array.init entries (fun _ -> Mem.make line None);
      next = Mem.make line None;
    }

  let create ?hint ?read_only_fail:_ () =
    let n =
      Hash.pow2_at_least (match hint with Some h -> max 1 h | None -> !Ascy_core.Config.default_buckets) 1
    in
    { buckets = Array.init n (fun _ -> mk_bucket ()); mask = n - 1 }

  let head t k = t.buckets.(Hash.bucket k t.mask)

  let search t k =
    let rec scan b =
      Mem.touch b.line;
      let rec slot i =
        if i = entries then match Mem.get b.next with Some nb -> scan nb | None -> None
        else begin
          let s = Mem.get b.snap in
          if state_of s i = st_valid && Mem.get b.keys.(i) = k then begin
            let v = Mem.get b.vals.(i) in
            (* version check makes the key/value read atomic *)
            if Mem.get b.snap = s then v else slot i
          end
          else slot (i + 1)
        end
      in
      slot 0
    in
    scan (head t k)

  (* Move slot [i] of [b] from [st_inserting] to [st].  Guarded, never
     blind: the claim may have been help-aborted by a racing inserter (it
     is not ours any more) or may belong to a racer we are aborting and
     that just committed — in both cases overwriting the state would
     corrupt the bucket.  Returns [false] iff the slot is no longer
     [st_inserting]; CAS failures on unrelated bits retry. *)
  let rec resolve b i st =
    let s = Mem.get b.snap in
    if state_of s i <> st_inserting then false
    else if Mem.cas b.snap s (with_state s i st) then true
    else begin
      Mem.emit E.cas_fail;
      resolve b i st
    end

  (* Claim an invalid slot anywhere in the chain (appending a bucket when
     full); returns (bucket, slot, chain_position). *)
  let rec claim b pos =
    let rec slot i =
      if i = entries then `Full
      else begin
        let s = Mem.get b.snap in
        if state_of s i = st_invalid then
          if Mem.cas b.snap s (with_state s i st_inserting) then `Claimed i
          else begin
            Mem.emit E.cas_fail;
            slot i (* re-read and retry this bucket *)
          end
        else slot (i + 1)
      end
    in
    match slot 0 with
    | `Claimed i -> (b, i, pos)
    | `Full -> (
        match Mem.get b.next with
        | Some nb -> claim nb (pos + 1)
        | None ->
            let nb = mk_bucket () in
            (* pre-claim slot 0 of the fresh bucket *)
            Mem.set nb.snap (with_state 0 0 st_inserting);
            if Mem.cas b.next None (Some nb) then (nb, 0, pos + 1)
            else begin
              Mem.emit E.cas_fail;
              match Mem.get b.next with
              | Some nb' -> claim nb' (pos + 1)
              | None -> claim b pos
            end)

  (* Scan the chain for another slot holding [k]; [mine] identifies our
     claimed slot.  Detects both committed duplicates and races. *)
  let conflict t k ~mine =
    let my_b, my_i = mine in
    let rec scan b =
      let rec slot i =
        if i = entries then
          match Mem.get b.next with Some nb -> scan nb | None -> `None
        else if b == my_b && i = my_i then slot (i + 1)
        else begin
          let s = Mem.get b.snap in
          let st = state_of s i in
          if (st = st_valid || st = st_inserting) && Mem.get b.keys.(i) = k then
            if st = st_valid then `Valid
            else `Racing (b, i)
          else slot (i + 1)
        end
      in
      match slot 0 with `None -> `None | r -> r
    in
    scan (head t k)

  let insert t k v =
    Mem.emit E.parse;
    let doomed = search t k <> None in
    Mem.emit E.parse_end;
    if doomed then false (* ASCY3 *)
    else begin
      let bo = B.create () in
      let rec attempt () =
        let b, i, _pos = claim (head t k) 0 in
        (* we own the slot: publish value then key, then scan, then commit *)
        Mem.set b.vals.(i) (Some v);
        Mem.set b.keys.(i) k;
        let rec settle () =
          match conflict t k ~mine:(b, i) with
          | `None ->
              if resolve b i st_valid then true
              else begin
                (* a racer help-aborted our claim before we committed:
                   the slot is theirs to recycle now, start over *)
                Mem.emit E.restart;
                B.once bo;
                attempt ()
              end
          | `Valid ->
              ignore (resolve b i st_invalid);
              false
          | `Racing (ob, oi) ->
              (* help-abort the racing claim instead of deferring to it:
                 its owner may be crash-stopped mid-insert, and waiting
                 on (or symmetric-rollback racing with) a corpse would
                 block forever.  If the CAS finds the slot no longer
                 inserting the racer resolved itself; rescan either way. *)
              ignore (resolve ob oi st_invalid);
              Mem.emit E.restart;
              settle ()
        in
        settle ()
      in
      attempt ()
    end

  let remove t k =
    Mem.emit E.parse;
    let rec scan b =
      let rec slot i =
        if i = entries then
          match Mem.get b.next with Some nb -> scan nb | None -> false
        else begin
          let s = Mem.get b.snap in
          if state_of s i = st_valid && Mem.get b.keys.(i) = k then begin
            Mem.emit E.parse_end;
            (* single-CAS removal against the exact observed snapshot *)
            if Mem.cas b.snap s (with_state s i st_invalid) then true
            else begin
              Mem.emit E.cas_fail;
              Mem.emit E.parse;
              scan (head t k) (* something moved: rescan the chain *)
            end
          end
          else slot (i + 1)
        end
      in
      slot 0
    in
    scan (head t k)

  let fold t f acc =
    Array.fold_left
      (fun acc b ->
        let rec walk b acc =
          let acc = ref acc in
          let s = Mem.get b.snap in
          for i = 0 to entries - 1 do
            if state_of s i = st_valid then acc := f !acc (Mem.get b.keys.(i))
          done;
          match Mem.get b.next with Some nb -> walk nb !acc | None -> !acc
        in
        walk b acc)
      acc t.buckets

  let size t = fold t (fun acc _ -> acc + 1) 0

  let validate t =
    let seen = Hashtbl.create 64 in
    let ok = ref (Ok ()) in
    Array.iteri
      (fun idx b ->
        let rec walk b =
          let s = Mem.get b.snap in
          for i = 0 to entries - 1 do
            if state_of s i = st_valid then begin
              let k = Mem.get b.keys.(i) in
              if Hashtbl.mem seen k then ok := Error "duplicate valid key";
              Hashtbl.replace seen k ();
              if Hash.bucket k t.mask <> idx then ok := Error "key in wrong bucket"
            end
          done;
          match Mem.get b.next with Some nb -> walk nb | None -> ()
        in
        walk b)
      t.buckets;
    !ok

  let op_done _ = ()
end
