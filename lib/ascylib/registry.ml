(** The catalogue of every CSDS implementation in ASCYLIB-OCaml —
    Table 1 of the paper plus the ASCY re-engineered variants, the two
    from-scratch designs (CLHT, BST-TK), and the PathCAS family built on
    the multi-word-CAS memory layer ({!Ascy_mem.Memory.S.kcas}).

    Each entry carries the synchronization class, a short description
    (Table 1's wording), and the ASCY compliance vector under the default
    configuration ([read_only_fail = true] where applicable). *)

open Ascy_core.Ascy

type entry = {
  name : string;
  family : family;
  sync : sync;
  ascy : compliance;
  asynchronized : bool;  (** sequential upper bound — incorrect if shared *)
  progress : progress;
      (** declared crash-tolerance (Table 1): does a thread crash-stopped
          mid-operation block the others?  Checked against observed
          behavior by the chaos sweep ([Ascy_harness.Fault_run]). *)
  budget : float option;
      (** per-entry override of the family's {!ascy4_budget} *)
  desc : string;
  maker : (module Ascy_core.Set_intf.MAKER);
}

let e name family sync ascy ?(asynchronized = false) ?progress ?budget desc maker =
  let progress =
    match progress with Some p -> p | None -> progress_of_sync sync
  in
  { name; family; sync; ascy; asynchronized; progress; budget; desc; maker }

let c a1 a2 a3 a4 = { a1; a2; a3; a4 }

let linked_lists =
  [
    e "ll-async" Linked_list Sequential full ~asynchronized:true
      "sequential linked list; incorrect asynchronized upper bound"
      (module Ascy_linkedlist.Seq_list.Make : Ascy_core.Set_intf.MAKER);
    e "ll-coupling" Linked_list Fully_lock_based none
      "hand-over-hand locking while parsing the list"
      (module Ascy_linkedlist.Coupling.Make);
    e "ll-pugh" Linked_list Lock_based full
      "optimistic parse; updates lock and revalidate in place; removals use pointer reversal"
      (module Ascy_linkedlist.Pugh.Make);
    e "ll-lazy" Linked_list Lock_based full
      "two-step deletion (mark, then unlink); searches ignore marks"
      (module Ascy_linkedlist.Lazy_list.Make);
    e "ll-copy" Linked_list Lock_based (c true true true false)
      "copy-on-write array behind a global lock (CopyOnWriteArrayList)"
      (module Ascy_linkedlist.Copy_list.Make);
    e "ll-harris" Linked_list Lock_free (c false false true true)
      "mark with CAS, delete with a second CAS; searches clean up and restart"
      (module Ascy_linkedlist.Harris.Make);
    e "ll-michael" Linked_list Lock_free (c false false true true)
      "harris refactored for easier memory management (one-at-a-time unlinks)"
      (module Ascy_linkedlist.Michael.Make);
    e "ll-harris-opt" Linked_list Lock_free full
      "harris re-engineered with ASCY1-2: wait-free search, never-restarting parse"
      (module Ascy_linkedlist.Harris_opt.Make);
    e "ll-pathcas" Linked_list Lock_free full
      "PathCAS: version-stamped parse; one k-CAS validates the path and swings the pointer"
      (module Ascy_linkedlist.Pathcas_ll.Make);
  ]

let hash_tables =
  [
    e "ht-async" Hash_table Sequential full ~asynchronized:true
      "sequential hash table; incorrect asynchronized upper bound"
      (module Ascy_hashtable.Makers.Seq : Ascy_core.Set_intf.MAKER);
    e "ht-coupling" Hash_table Fully_lock_based none "one coupling list per bucket"
      (module Ascy_hashtable.Makers.Coupling);
    e "ht-pugh" Hash_table Lock_based full ~budget:6.0
      "one pugh list per bucket"
      (* pointer-reversal removals store back along the search path, the
         same inherent cost its linked-list sibling pays (ratio ~5.3),
         so it carries the linked-list ASCY4 budget *)
      (module Ascy_hashtable.Makers.Pugh);
    e "ht-lazy" Hash_table Lock_based full "one lazy list per bucket"
      (module Ascy_hashtable.Makers.Lazy);
    e "ht-copy" Hash_table Lock_based (c true true true false) "one copy-on-write list per bucket"
      (module Ascy_hashtable.Makers.Copy);
    e "ht-urcu" Hash_table Lock_based (c false true true false)
      "userspace-RCU style: removals wait for all ongoing readers; resizable"
      (module Ascy_hashtable.Urcu_ht.Make);
    e "ht-urcu-ssmem" Hash_table Lock_based (c false true true true)
      "urcu re-engineered: SSMEM epochs instead of grace-period waits (closer to ASCY4)"
      (module Ascy_hashtable.Urcu_ht.Make_ssmem);
    e "ht-java" Hash_table Lock_based full
      "ConcurrentHashMap-style: 512 segments, lock-free reads, per-segment resizing"
      (module Ascy_hashtable.Java_ht.Make);
    e "ht-tbb" Hash_table Fully_lock_based none
      "TBB-style: reader-writer lock per bucket (even searches synchronize)"
      (module Ascy_hashtable.Tbb_ht.Make);
    e "ht-harris" Hash_table Lock_free full "one (ASCY-optimised) harris list per bucket"
      (module Ascy_hashtable.Makers.Harris);
    e "ht-clht-lb" Hash_table Lock_based full
      "NEW (paper 6.1): cache-line buckets, in-place updates, at most one line transfer"
      (module Ascy_hashtable.Clht_lb.Make);
    e "ht-clht-lf" Hash_table Lock_free full
      "NEW (paper 6.1): lock-free CLHT with snapshot_t versioned slot map"
      (module Ascy_hashtable.Clht_lf.Make);
  ]

let skip_lists =
  [
    e "sl-async" Skip_list Sequential full ~asynchronized:true
      "sequential skip list; incorrect asynchronized upper bound"
      (module Ascy_skiplist.Seq_sl.Make : Ascy_core.Set_intf.MAKER);
    e "sl-pugh" Skip_list Lock_based full
      "several levels of pugh lists; parses toward the target without locking"
      (module Ascy_skiplist.Pugh_sl.Make);
    e "sl-herlihy" Skip_list Lock_based full
      "optimistic: find, lock preds at all levels, validate, update"
      (module Ascy_skiplist.Herlihy_sl.Make);
    e "sl-fraser" Skip_list Lock_free (c false false true true)
      "CAS at each level; search restarts on marked nodes or failed clean-ups"
      (module Ascy_skiplist.Fraser.Make);
    e "sl-fraser-opt" Skip_list Lock_free full
      "fraser re-engineered with ASCY1-2 (wait-free search, local-retry parse)"
      (module Ascy_skiplist.Fraser_opt.Make);
  ]

let bsts =
  [
    e "bst-async-int" Bst Sequential full ~asynchronized:true
      "sequential internal BST; incorrect asynchronized upper bound"
      (module Ascy_bst.Seq_int_bst.Make : Ascy_core.Set_intf.MAKER);
    e "bst-async-ext" Bst Sequential full ~asynchronized:true
      "sequential external BST; incorrect asynchronized upper bound"
      (module Ascy_bst.Seq_ext_bst.Make);
    e "bst-bronson" Bst Lock_based (c false false false false)
      "partially external; optimistic versions; searches can block on concurrent updates"
      (module Ascy_bst.Bronson.Make);
    e "bst-drachsler" Bst Lock_based (c true true true false)
      "internal with logical ordering (pred/succ overlay); >= 3 locks per removal"
      (module Ascy_bst.Drachsler.Make);
    e "bst-ellen" Bst Lock_free (c true true true false)
      "external; updates flag nodes with info records and help pending operations"
      (module Ascy_bst.Ellen.Make);
    e "bst-howley" Bst Lock_free (c false false true false)
      "internal; all three operations help and may restart"
      (module Ascy_bst.Howley.Make);
    e "bst-natarajan" Bst Lock_free full
      "external; edge flags/tags minimize atomics; optimistic parse"
      (module Ascy_bst.Natarajan.Make);
    e "bst-tk" Bst Lock_based full
      "NEW (paper 6.2): external with per-edge ticket locks; 1 lock per insert, 2 per remove"
      (module Ascy_bst.Bst_tk.Make);
    e "bst-pathcas" Bst Lock_free full
      "PathCAS external BST: stamped routers; one k-CAS per insert (2 words) or splice (3 words)"
      (module Ascy_bst.Pathcas_bst.Make);
  ]

(** All 35 implementations, grouped as in Table 1. *)
let all = linked_lists @ hash_tables @ skip_lists @ bsts

let by_name name =
  match List.find_opt (fun x -> x.name = name) all with
  | Some x -> x
  | None -> invalid_arg ("unknown algorithm: " ^ name)

let by_family f = List.filter (fun x -> x.family = f) all

(** The asynchronized (sequential) baseline of a family. *)
let async_of = function
  | Linked_list -> by_name "ll-async"
  | Hash_table -> by_name "ht-async"
  | Skip_list -> by_name "sl-async"
  | Bst -> by_name "bst-async-ext"

(** ASCY4 store budget per family: the observed (weighted)
    stores-per-successful-update of a compliant algorithm may exceed its
    family's asynchronized baseline by at most this factor (paper §5:
    "close to those of its sequential counterpart").  Families whose
    baselines are leaner (a linked-list insert is two stores) tolerate a
    proportionally larger factor than the write-richer trees.  Checked by
    [Ascy_analysis.Ascy_check]; {!entry.budget} overrides per entry. *)
let ascy4_budget = function
  | Linked_list -> 6.0
  | Hash_table -> 5.0
  | Skip_list -> 5.0
  | Bst -> 4.0

let budget_of entry =
  match entry.budget with Some b -> b | None -> ascy4_budget entry.family
