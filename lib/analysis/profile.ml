(** Per-operation access profiles over the simulator's observer stream.

    A {!t} attaches to a run through {!Ascy_mem.Sim.set_observer} and
    splits every committed access and algorithm event of every operation
    into a {e parse} and a {e modify} bucket — exactly the accounting the
    ASCY patterns (paper §5) are stated in:

    - the parse phase opens at {!Ascy_mem.Event.parse} and closes at
      {!Ascy_mem.Event.parse_end} (or at the next restart that re-emits
      [parse], which re-opens it); everything outside an open parse is
      the modify phase;
    - plain stores and RMWs are counted separately, and a CAS is
      attributed by its {e outcome} (a failed CAS wrote nothing, which
      matters for ASCY3: a lost decision CAS must not read as a store);
    - semantic events (restarts, waits, lock acquisitions, clean-ups,
      helping) are folded into the bucket they occur in.

    Operations are delimited by the harness's existing
    {!Ascy_mem.Sim.Trace.op_start}/[op_end] brackets, which reach the
    observer even when the trace rings are off — profiling is always
    available and costs nothing when no observer is installed.  The
    operation's outcome is supplied by the runner via {!set_outcome}
    before the closing bracket. *)

module Sim = Ascy_mem.Sim
module E = Ascy_mem.Event
module J = Ascy_util.Json

(** Access/event counts of one phase of one operation. *)
type counts = {
  mutable writes : int;  (** plain stores *)
  mutable rmw_ok : int;  (** successful CAS / fetch-and-add *)
  mutable rmw_fail : int;  (** failed CAS (no store took place) *)
  mutable reads : int;
  mutable restarts : int;
  mutable waits : int;
  mutable locks : int;
  mutable cleanups : int;
  mutable helps : int;
  mutable cas_fails : int;  (** [E.cas_fail] emissions *)
}

let fresh_counts () =
  {
    writes = 0;
    rmw_ok = 0;
    rmw_fail = 0;
    reads = 0;
    restarts = 0;
    waits = 0;
    locks = 0;
    cleanups = 0;
    helps = 0;
    cas_fails = 0;
  }

(** Stores that took effect in this phase: plain writes plus successful
    RMWs. *)
let stores c = c.writes + c.rmw_ok

(** Weighted store cost: a successful RMW counts double, reflecting the
    paper's separate accounting of stores and CAS (an atomic costs about
    two plain stores' worth of coherence traffic). *)
let weighted c = c.writes + (2 * c.rmw_ok)

type op_profile = {
  p_tid : int;
  p_op : int;  (** harness op code: 0 search / 1 insert / 2 remove *)
  mutable p_ok : bool;
  p_parse : counts;
  p_modify : counts;
}

let is_update p = p.p_op <> 0

(* Per-thread profiling state. *)
type tstate = { mutable cur : op_profile option; mutable in_parse : bool }

type t = {
  threads : tstate array;
  mutable ops : op_profile list; (* newest first *)
  mutable nops : int;
}

let create ~nthreads =
  {
    threads = Array.init nthreads (fun _ -> { cur = None; in_parse = false });
    ops = [];
    nops = 0;
  }

(* The active bucket of [tid], if an operation is open; accesses outside
   any op (op_done reclamation, harness glue) are not attributed. *)
let bucket t tid =
  let ts = t.threads.(tid) in
  match ts.cur with
  | None -> None
  | Some p -> Some (if ts.in_parse then p.p_parse else p.p_modify)

let on_access t tid kind _line =
  match bucket t tid with
  | None -> ()
  | Some b -> (
      match (kind : Sim.access_kind) with
      | Sim.Read -> b.reads <- b.reads + 1
      | Sim.Write -> b.writes <- b.writes + 1
      | Sim.Rmw -> () (* attributed on outcome, in on_rmw *))

let on_rmw t tid ok =
  match bucket t tid with
  | None -> ()
  | Some b -> if ok then b.rmw_ok <- b.rmw_ok + 1 else b.rmw_fail <- b.rmw_fail + 1

let on_event t tid code =
  let ts = t.threads.(tid) in
  if code = E.parse then ts.in_parse <- ts.cur <> None
  else if code = E.parse_end then ts.in_parse <- false
  else
    match bucket t tid with
    | None -> ()
    | Some b ->
        if code = E.restart then b.restarts <- b.restarts + 1
        else if code = E.wait then b.waits <- b.waits + 1
        else if code = E.lock then b.locks <- b.locks + 1
        else if code = E.cleanup then b.cleanups <- b.cleanups + 1
        else if code = E.help then b.helps <- b.helps + 1
        else if code = E.cas_fail then b.cas_fails <- b.cas_fails + 1

let on_op_start t tid code =
  let ts = t.threads.(tid) in
  ts.in_parse <- false;
  ts.cur <-
    Some { p_tid = tid; p_op = code; p_ok = false; p_parse = fresh_counts (); p_modify = fresh_counts () }

let on_op_end t tid _code =
  let ts = t.threads.(tid) in
  (match ts.cur with
  | Some p ->
      t.ops <- p :: t.ops;
      t.nops <- t.nops + 1
  | None -> ());
  ts.cur <- None;
  ts.in_parse <- false

(** Record the outcome of [tid]'s open operation; the runner calls this
    after the operation returns and before {!Ascy_mem.Sim.Trace.op_end}. *)
let set_outcome t ~tid ~ok =
  match t.threads.(tid).cur with Some p -> p.p_ok <- ok | None -> ()

(** The observer feeding this collector; install it with
    {!Ascy_mem.Sim.set_observer}. *)
let observer t : Sim.observer =
  {
    Sim.obs_access = (fun tid kind line -> on_access t tid kind line);
    obs_rmw = (fun tid ok -> on_rmw t tid ok);
    obs_event = (fun tid code -> on_event t tid code);
    obs_op_start = (fun tid code -> on_op_start t tid code);
    obs_op_end = (fun tid code -> on_op_end t tid code);
  }

(** Recorded operation profiles, oldest first. *)
let ops t = List.rev t.ops

(* ------------------------------------------------------------------ *)
(* Serialization (offending-op evidence in ASCY_CHECK.json)            *)
(* ------------------------------------------------------------------ *)

let counts_json c =
  J.Obj
    [
      ("writes", J.Int c.writes);
      ("rmw_ok", J.Int c.rmw_ok);
      ("rmw_fail", J.Int c.rmw_fail);
      ("reads", J.Int c.reads);
      ("restarts", J.Int c.restarts);
      ("waits", J.Int c.waits);
      ("locks", J.Int c.locks);
      ("cleanups", J.Int c.cleanups);
      ("helps", J.Int c.helps);
      ("cas_fails", J.Int c.cas_fails);
    ]

let op_name = function 0 -> "search" | 1 -> "insert" | 2 -> "remove" | c -> string_of_int c

let op_json p =
  J.Obj
    [
      ("tid", J.Int p.p_tid);
      ("op", J.String (op_name p.p_op));
      ("ok", J.Bool p.p_ok);
      ("parse", counts_json p.p_parse);
      ("modify", counts_json p.p_modify);
    ]
