(** Observed ASCY1–4 compliance, derived from per-operation access
    profiles and checked against each registry entry's declared vector
    (paper Table 1).

    Two deterministic profiling runs per algorithm:
    - a {e contended} run (4 threads, small key range, 50% updates) that
      exercises the contention-dependent anti-patterns — search
      clean-ups and restarts, parse-phase restarts, waiting behind
      concurrent operations;
    - a {e single-threaded} run whose successful-update store counts are
      compared against the family's asynchronized ([*-async]) baseline
      under the identical workload — ASCY4's "close to sequential"
      measured as a ratio with a per-family budget
      ({!Ascylib.Registry.ascy4_budget}).

    The observed vector:
    - {b ASCY1}: no search performs a store (plain, successful {e or}
      attempted CAS), waits, restarts, or takes a lock;
    - {b ASCY2}: no update's parse phase waits, restarts, or locks, and
      any store it performs is accounted for by clean-up/helping
      emissions;
    - {b ASCY3}: at most {!max_failed_frac} of failed updates perform
      unaccounted stores (the slack tolerates rare lock-then-lose races
      in otherwise read-only-fail designs; lock-first designs fail on
      every unsuccessful update and blow far past it);
    - {b ASCY4}: no successful update ever waits, and the
      single-threaded weighted stores per successful update stay within
      the family budget of the asynchronized baseline.

    Asynchronized (sequential) entries are profiled single-threaded
    only — sharing them is incorrect by declaration, which is not what
    this analyzer measures. *)

module Sim = Ascy_mem.Sim
module P = Ascy_platform.Platform
module J = Ascy_util.Json
module Registry = Ascylib.Registry
module Ascy = Ascy_core.Ascy

(* ------------------------------------------------------------------ *)
(* Profiling runs                                                      *)
(* ------------------------------------------------------------------ *)

type cfg = {
  nthreads : int;
  initial : int;
  key_range : int;
  update_pct : int;
  ops_per_thread : int;
  seed : int;
}

let contended_cfg =
  { nthreads = 4; initial = 64; key_range = 128; update_pct = 50; ops_per_thread = 1500; seed = 1 }

let single_cfg =
  { nthreads = 1; initial = 128; key_range = 256; update_pct = 50; ops_per_thread = 4000; seed = 1 }

(* Structure-size hint per entry.  Defaults to the prefill size (one
   bucket per element for the tables, as the throughput harness does);
   overridden where the declared compliance is about asymptotic behavior
   the default load factor would mask:
   - ht-copy / ht-coupling: few buckets, so per-bucket snapshots and
     hand-over-hand chains operate at the load their ASCY4/ASCY1 entries
     describe;
   - ht-tbb: few buckets, so reader/writer lock contention (the
     anti-ASCY4 waiting) is actually exercised;
   - ht-urcu*: many buckets, so no resize is triggered — resizing takes
     every bucket lock and waits for a grace period, which is a
     different (and rare) code path than the per-operation pattern
     Table 1 declares. *)
let hint_for (entry : Registry.entry) cfg =
  match entry.Registry.name with
  | "ht-copy" | "ht-coupling" -> 4
  | "ht-tbb" -> 16
  | "ht-urcu" | "ht-urcu-ssmem" -> 8 * cfg.initial
  | _ -> cfg.initial

(** Profile one deterministic run of [entry] under [cfg]; returns every
    operation's phase-split access profile.  [model] selects the
    coherence cost model.  The profiles only count {e what} each
    operation does (stores, CAS outcomes, waits, restarts), never how
    long it takes — but the free-running schedule is latency-driven, so
    a different model can interleave the contended run differently and
    shift the contention-dependent counts.  The observed ASCY vectors
    are expected (and CI-checked) to be model-invariant; the raw counts
    are not. *)
let profile_run ?(model = Sim.default_model) (entry : Registry.entry) cfg =
  let module A = (val entry.Registry.maker : Ascy_core.Set_intf.MAKER) in
  let module M = A (Sim.Mem) in
  let saved = !Ascy_core.Config.ssmem_threshold in
  (* keep epoch-GC passes (batched, not per-op) out of the op profiles *)
  Ascy_core.Config.ssmem_threshold := 1_000_000;
  Fun.protect
    ~finally:(fun () -> Ascy_core.Config.ssmem_threshold := saved)
    (fun () ->
      Sim.with_sim ~seed:cfg.seed ~platform:P.xeon20 ~model ~nthreads:cfg.nthreads (fun sim ->
          let t = M.create ~hint:(hint_for entry cfg) () in
          let rng0 = Ascy_util.Xorshift.create ((cfg.seed * 31) + 7) in
          let filled = ref 0 in
          while !filled < cfg.initial do
            let k = 1 + Ascy_util.Xorshift.below rng0 cfg.key_range in
            if M.insert t k 0 then incr filled
          done;
          Sim.warm sim;
          let col = Profile.create ~nthreads:cfg.nthreads in
          Sim.set_observer sim (Some (Profile.observer col));
          let body tid () =
            let rng = Ascy_util.Xorshift.create ((cfg.seed * 7919) + (tid * 104729) + 13) in
            for _ = 1 to cfg.ops_per_thread do
              let k = 1 + Ascy_util.Xorshift.below rng cfg.key_range in
              let r = Ascy_util.Xorshift.below rng 100 in
              let op = if r >= cfg.update_pct then 0 else if r land 1 = 0 then 1 else 2 in
              Sim.Trace.op_start op;
              let ok =
                match op with
                | 0 -> M.search t k <> None
                | 1 -> M.insert t k tid
                | _ -> M.remove t k
              in
              Profile.set_outcome col ~tid ~ok;
              Sim.Trace.op_end op;
              M.op_done t
            done
          in
          ignore (Sim.run sim (Array.init cfg.nthreads body));
          Sim.set_observer sim None;
          Profile.ops col))

(* ------------------------------------------------------------------ *)
(* Observed-compliance rules                                           *)
(* ------------------------------------------------------------------ *)

let max_failed_frac = 0.10

let comb f (p : Profile.op_profile) = f p.Profile.p_parse + f p.Profile.p_modify

(* ASCY1: a search stores nothing (not even a failed CAS), never waits,
   restarts or locks. *)
let search_violation p =
  (not (Profile.is_update p))
  && comb (fun c -> c.Profile.writes + c.Profile.rmw_ok + c.Profile.rmw_fail) p
     + comb (fun c -> c.Profile.waits) p
     + comb (fun c -> c.Profile.restarts) p
     + comb (fun c -> c.Profile.locks) p
     > 0

(* ASCY2: an update's parse phase never waits/restarts/locks, and any
   store it performs is clean-up or helping (which the algorithm marks). *)
let parse_violation p =
  Profile.is_update p
  &&
  let c = p.Profile.p_parse in
  c.Profile.waits > 0 || c.Profile.restarts > 0 || c.Profile.locks > 0
  || (Profile.stores c > 0 && c.Profile.cleanups + c.Profile.helps = 0)

(* ASCY3: a failed update performs no stores beyond parse clean-up. *)
let failed_violation p =
  Profile.is_update p
  && (not p.Profile.p_ok)
  && (Profile.stores p.Profile.p_modify > 0
     ||
     let c = p.Profile.p_parse in
     Profile.stores c > 0 && c.Profile.cleanups + c.Profile.helps = 0)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

type measured = {
  m_searches : int;
  m_search_bad : int;
  m_updates : int;
  m_parse_bad : int;
  m_failed : int;
  m_failed_bad : int;
  m_failed_frac : float;
  m_successes : int;
  m_success_waits : int;
  m_wstores : float;  (** weighted stores / successful update, 1-thread run *)
  m_baseline_wstores : float;  (** same, for the family's async baseline *)
  m_ratio : float;
  m_budget : float;
}

type report = {
  entry : Registry.entry;
  observed : Ascy.compliance;
  measured : measured;
  witnesses : (string * Profile.op_profile) list;
      (** rule tag -> first offending op profile, for each observed-false
          dimension *)
}

let matches r = r.observed = r.entry.Registry.ascy

let avg_weighted_success ops =
  let n = ref 0 and sum = ref 0 in
  List.iter
    (fun p ->
      if Profile.is_update p && p.Profile.p_ok then begin
        incr n;
        sum := !sum + comb Profile.weighted p
      end)
    ops;
  if !n = 0 then 0.0 else float_of_int !sum /. float_of_int !n

(** Weighted stores per successful update of [entry]'s family baseline
    under the single-threaded profiling workload. *)
let baseline_wstores ?model family =
  avg_weighted_success (profile_run ?model (Registry.async_of family) single_cfg)

(** Derive [entry]'s observed compliance vector.  [baseline] avoids
    re-profiling the family baseline in sweeps. *)
let classify ?baseline ?model (entry : Registry.entry) =
  let single = profile_run ?model entry single_cfg in
  let contended =
    if entry.Registry.asynchronized || contended_cfg.nthreads = 1 then []
    else profile_run ?model entry contended_cfg
  in
  let all = single @ contended in
  let base =
    match baseline with Some b -> b | None -> baseline_wstores ?model entry.Registry.family
  in
  let count f = List.fold_left (fun acc p -> if f p then acc + 1 else acc) 0 all in
  let first f = List.find_opt f all in
  let searches = count (fun p -> not (Profile.is_update p)) in
  let search_bad = count search_violation in
  let updates = count Profile.is_update in
  let parse_bad = count parse_violation in
  let failed = count (fun p -> Profile.is_update p && not p.Profile.p_ok) in
  let failed_bad = count failed_violation in
  let failed_frac =
    if failed = 0 then 0.0 else float_of_int failed_bad /. float_of_int failed
  in
  let successes = count (fun p -> Profile.is_update p && p.Profile.p_ok) in
  let success_wait p =
    Profile.is_update p && p.Profile.p_ok && comb (fun c -> c.Profile.waits) p > 0
  in
  let success_waits = count success_wait in
  let wstores = avg_weighted_success single in
  let ratio = if base > 0.0 then wstores /. base else 1.0 in
  let budget = Registry.budget_of entry in
  let observed =
    {
      Ascy.a1 = search_bad = 0;
      a2 = parse_bad = 0;
      a3 = failed_frac <= max_failed_frac;
      a4 = success_waits = 0 && ratio <= budget;
    }
  in
  let witnesses =
    List.filter_map
      (fun (tag, violated, f) -> if violated then Option.map (fun p -> (tag, p)) (first f) else None)
      [
        ("ascy1", not observed.Ascy.a1, search_violation);
        ("ascy2", not observed.Ascy.a2, parse_violation);
        ("ascy3", not observed.Ascy.a3, failed_violation);
        ("ascy4", not observed.Ascy.a4, success_wait);
      ]
  in
  {
    entry;
    observed;
    measured =
      {
        m_searches = searches;
        m_search_bad = search_bad;
        m_updates = updates;
        m_parse_bad = parse_bad;
        m_failed = failed;
        m_failed_bad = failed_bad;
        m_failed_frac = failed_frac;
        m_successes = successes;
        m_success_waits = success_waits;
        m_wstores = wstores;
        m_baseline_wstores = base;
        m_ratio = ratio;
        m_budget = budget;
      };
    witnesses;
  }

(** Classify every registry algorithm, profiling each family baseline
    once.  Returns the reports in registry order. *)
let sweep ?(entries = Registry.all) ?model () =
  let baselines = Hashtbl.create 4 in
  let baseline_for family =
    match Hashtbl.find_opt baselines family with
    | Some b -> b
    | None ->
        let b = baseline_wstores ?model family in
        Hashtbl.add baselines family b;
        b
  in
  List.map (fun e -> classify ~baseline:(baseline_for e.Registry.family) ?model e) entries

(* ------------------------------------------------------------------ *)
(* Serialization (ASCY_CHECK.json)                                     *)
(* ------------------------------------------------------------------ *)

let compliance_json (c : Ascy.compliance) =
  J.Obj
    [
      ("a1", J.Bool c.Ascy.a1);
      ("a2", J.Bool c.Ascy.a2);
      ("a3", J.Bool c.Ascy.a3);
      ("a4", J.Bool c.Ascy.a4);
    ]

let measured_json m =
  J.Obj
    [
      ("searches", J.Int m.m_searches);
      ("search_violations", J.Int m.m_search_bad);
      ("updates", J.Int m.m_updates);
      ("parse_violations", J.Int m.m_parse_bad);
      ("failed_updates", J.Int m.m_failed);
      ("failed_update_violations", J.Int m.m_failed_bad);
      ("failed_violation_frac", J.Float m.m_failed_frac);
      ("successful_updates", J.Int m.m_successes);
      ("successful_updates_waiting", J.Int m.m_success_waits);
      ("weighted_stores_per_update", J.Float m.m_wstores);
      ("baseline_weighted_stores", J.Float m.m_baseline_wstores);
      ("store_ratio", J.Float m.m_ratio);
      ("store_budget", J.Float m.m_budget);
    ]

let report_json r =
  J.Obj
    [
      ("name", J.String r.entry.Registry.name);
      ("family", J.String (Ascy.family_to_string r.entry.Registry.family));
      ("sync", J.String (Ascy.sync_to_string r.entry.Registry.sync));
      ("declared", compliance_json r.entry.Registry.ascy);
      ("observed", compliance_json r.observed);
      ("match", J.Bool (matches r));
      ("measured", measured_json r.measured);
      ( "witnesses",
        J.List
          (List.map
             (fun (tag, p) -> J.Obj [ ("rule", J.String tag); ("op", Profile.op_json p) ])
             r.witnesses) );
    ]

let check_json reports =
  J.Obj
    [
      ("schema_version", J.Int 1);
      ( "workloads",
        J.Obj
          [
            ( "contended",
              J.Obj
                [
                  ("nthreads", J.Int contended_cfg.nthreads);
                  ("initial", J.Int contended_cfg.initial);
                  ("key_range", J.Int contended_cfg.key_range);
                  ("update_pct", J.Int contended_cfg.update_pct);
                  ("ops_per_thread", J.Int contended_cfg.ops_per_thread);
                ] );
            ( "single",
              J.Obj
                [
                  ("nthreads", J.Int single_cfg.nthreads);
                  ("initial", J.Int single_cfg.initial);
                  ("key_range", J.Int single_cfg.key_range);
                  ("update_pct", J.Int single_cfg.update_pct);
                  ("ops_per_thread", J.Int single_cfg.ops_per_thread);
                ] );
          ] );
      ("entries", J.List (List.map report_json reports));
    ]
