(** Happens-before data-race detection over the simulator's access
    stream, in the FastTrack tradition (vector clocks, per-location write
    epochs), adapted to the codebase's synchronization idiom:

    - {b RMW accesses are the synchronization operations.}  Every lock in
      the tree acquires through [Mem.cas]/[fetch_and_add], and lock-free
      designs publish through CAS.  A successful RMW on a line is an
      acquire {e and} release on that line; a failed CAS acquires only
      (it read the line but wrote nothing).
    - {b Plain writes release into their line} — [Mem.set] is how every
      lock here is handed off ([release] is a plain store of 0), so the
      next successful RMW on the line inherits the critical section's
      clock.  The release alone creates no order: it matters only if a
      later RMW acquires it.
    - {b Races are unordered plain-write pairs to the same line.}
      Write-read pairs are deliberately not flagged: asynchronized reads
      against concurrent writers are the paper's whole point (ASCY1
      searches race with updates by design), and under the simulator's
      sequentially-consistent memory they are benign.  Plain-write vs RMW
      pairs are also exempt: nodes share a cache line with their lock
      word, so a field store under the lock "conflicts" with a peer's
      (failed) acquire CAS on line granularity without any actual
      overlap.  What remains — two plain stores to the same line with no
      happens-before path — is exactly the pattern that is unsound no
      matter the memory model.

    Setup/prefill accesses never reach the observer, so initialization is
    implicitly ordered before every thread. *)

module Sim = Ascy_mem.Sim

type race = {
  r_line : int;
  r_tid_prev : int;  (** thread of the earlier unordered plain write *)
  r_tid : int;  (** thread whose write detected the race *)
}

let describe r =
  Printf.sprintf "data race: plain writes to line %d by threads %d and %d unordered by happens-before"
    r.r_line r.r_tid_prev r.r_tid

(* Per-line state, allocated on first write/RMW. *)
type line_state = {
  lvc : int array;  (** accumulated releases into this line *)
  lw : int array;  (** per-thread clock of its last plain write *)
}

type t = {
  n : int;
  vcs : int array array;  (** per-thread vector clocks *)
  lines : (int, line_state) Hashtbl.t;
  pending : int array;  (** line of the in-flight RMW per thread, or -1 *)
  seen : (int * int * int, unit) Hashtbl.t;
  mutable races : race list; (* newest first *)
  mutable count : int;
}

let max_recorded = 1000

let create ~nthreads =
  {
    n = nthreads;
    vcs = Array.init nthreads (fun _ -> Array.make nthreads 0);
    lines = Hashtbl.create 256;
    pending = Array.make nthreads (-1);
    seen = Hashtbl.create 64;
    races = [];
    count = 0;
  }

let line_state t line =
  match Hashtbl.find_opt t.lines line with
  | Some ls -> ls
  | None ->
      let ls = { lvc = Array.make t.n 0; lw = Array.make t.n 0 } in
      Hashtbl.add t.lines line ls;
      ls

let join dst src =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let record t line prev tid =
  let a, b = if prev < tid then (prev, tid) else (tid, prev) in
  if not (Hashtbl.mem t.seen (line, a, b)) then begin
    Hashtbl.add t.seen (line, a, b) ();
    t.count <- t.count + 1;
    if t.count <= max_recorded then
      t.races <- { r_line = line; r_tid_prev = prev; r_tid = tid } :: t.races
  end

let on_access t tid kind line =
  match (kind : Sim.access_kind) with
  | Sim.Read -> ()
  | Sim.Rmw -> t.pending.(tid) <- line (* sync effect applied on outcome *)
  | Sim.Write ->
      let ls = line_state t line in
      let vc = t.vcs.(tid) in
      for u = 0 to t.n - 1 do
        if u <> tid && ls.lw.(u) > vc.(u) then record t line u tid
      done;
      ls.lw.(tid) <- vc.(tid);
      join ls.lvc vc;
      vc.(tid) <- vc.(tid) + 1

let on_rmw t tid ok =
  let line = t.pending.(tid) in
  if line >= 0 then begin
    t.pending.(tid) <- -1;
    let ls = line_state t line in
    let vc = t.vcs.(tid) in
    join vc ls.lvc;
    (* acquire *)
    if ok then begin
      join ls.lvc vc;
      (* release *)
      vc.(tid) <- vc.(tid) + 1
    end
  end

(** The observer feeding this detector; install it with
    {!Ascy_mem.Sim.set_observer}. *)
let observer t : Sim.observer =
  {
    Sim.obs_access = (fun tid kind line -> on_access t tid kind line);
    obs_rmw = (fun tid ok -> on_rmw t tid ok);
    obs_event = (fun _ _ -> ());
    obs_op_start = (fun _ _ -> ());
    obs_op_end = (fun _ _ -> ());
  }

(** Distinct races detected so far (capped at 1000 records), oldest
    first.  [total] counts every distinct (line, thread-pair) race even
    past the cap. *)
let races t = List.rev t.races

let total t = t.count

let race_json r =
  Ascy_util.Json.Obj
    [
      ("line", Ascy_util.Json.Int r.r_line);
      ("tid_prev", Ascy_util.Json.Int r.r_tid_prev);
      ("tid", Ascy_util.Json.Int r.r_tid);
    ]
