(** The four ASCY patterns (paper §5) as first-class metadata.

    Used by the registry, the Table-1 report and the documentation to
    state which patterns each implementation follows. *)

type pattern = ASCY1 | ASCY2 | ASCY3 | ASCY4

let describe = function
  | ASCY1 -> "the search operation does not involve any waiting, retries, or stores"
  | ASCY2 ->
      "the parse phase of an update performs no stores other than clean-up and never waits or \
       restarts"
  | ASCY3 -> "an update whose parse is unsuccessful performs no stores besides parse clean-up"
  | ASCY4 ->
      "the number and region of stores in a successful update are close to a sequential \
       implementation"

(** Compliance vector: [a1..a4] tell whether the algorithm follows each
    pattern (for sequential algorithms all four hold trivially). *)
type compliance = { a1 : bool; a2 : bool; a3 : bool; a4 : bool }

let full = { a1 = true; a2 = true; a3 = true; a4 = true }
let none = { a1 = false; a2 = false; a3 = false; a4 = false }

let to_string c =
  let f b s = if b then s else "-" in
  Printf.sprintf "%s%s%s%s" (f c.a1 "1") (f c.a2 "2") (f c.a3 "3") (f c.a4 "4")

(** Synchronization class of an algorithm (Table 1's "type" column). *)
type sync = Sequential | Fully_lock_based | Lock_based | Lock_free

let sync_to_string = function
  | Sequential -> "seq"
  | Fully_lock_based -> "flb"
  | Lock_based -> "lb"
  | Lock_free -> "lf"

(** Progress guarantee — the practical meaning of Table 1's "type"
    column.  A [Non_blocking] structure tolerates a thread crash-stopped
    mid-operation: every other thread still completes.  A [Blocking] one
    can be wedged forever behind the corpse (it died holding a lock).
    Sequential (asynchronized) algorithms hold no locks, so a corpse
    blocks nobody — they are [Non_blocking] here even though sharing
    them is incorrect for other reasons. *)
type progress = Blocking | Non_blocking

let progress_to_string = function
  | Blocking -> "blocking"
  | Non_blocking -> "non-blocking"

let progress_of_sync = function
  | Sequential | Lock_free -> Non_blocking
  | Fully_lock_based | Lock_based -> Blocking

(** Data-structure families studied by the paper. *)
type family = Linked_list | Hash_table | Skip_list | Bst

let family_to_string = function
  | Linked_list -> "linked list"
  | Hash_table -> "hash table"
  | Skip_list -> "skip list"
  | Bst -> "bst"
