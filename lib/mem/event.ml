(** Algorithm-level event codes.

    CSDS implementations report *semantic* events (restarts, clean-ups,
    helping, lock acquisitions...) through {!Memory.S.emit}; the harness
    aggregates them per run.  Memory-level events (cache hits, misses,
    line transfers, atomic operations) are counted by the simulator itself
    and need no emission. *)

let restart = 0 (* an operation or parse had to restart from scratch *)
let cleanup = 1 (* physically unlinked a logically deleted node *)
let help = 2 (* helped complete another thread's operation *)
let cas_fail = 3 (* a CAS used by the algorithm failed *)
let lock = 4 (* acquired a lock *)
let parse = 5 (* started a parse phase (extra parses = parse - updates) *)
let wait = 6 (* blocked/waited for a concurrent operation *)
let gc_pass = 7 (* SSMEM garbage-collection pass *)
let parse_end = 8 (* parse phase over: decision made, modify phase begins *)

let count = 9

let name = function
  | 0 -> "restart"
  | 1 -> "cleanup"
  | 2 -> "help"
  | 3 -> "cas_fail"
  | 4 -> "lock"
  | 5 -> "parse"
  | 6 -> "wait"
  | 7 -> "gc_pass"
  | 8 -> "parse_end"
  | _ -> invalid_arg "Event.name"
