(** Native implementation of {!Memory.S} on OCaml 5 atomics and domains.

    Cache lines are not modeled ([line = unit] and [touch]/[work] are
    no-ops).  Thread ids are dense indices assigned on first use per
    domain.  Event counters are kept per thread id so the harness can
    aggregate them after a run.

    Cells are one indirection richer than a bare [Atomic.t] so that
    {!Memory.S.kcas} can be lock-free: a cell holds either a plain value
    ([Kdx_v]) or a published piece of an in-flight multi-word CAS — a
    k-CAS descriptor entry ([Kdx_k]) or an RDCSS sub-descriptor
    ([Kdx_r]), in the style of Harris, Fraser & Pratt, "A practical
    multi-word compare-and-swap operation" (DISC 2002).  Any thread that
    runs into a descriptor {e helps} finish it, so a committer that
    stalls (or dies) mid-commit never blocks the others.

    The two-phase protocol:
    - {e acquire} (phase 1): for each entry, in ascending cell-id order
      (which bounds recursive helping — a cycle would need two
      descriptors each holding a cell the other acquired later in the
      same order), an RDCSS conditionally installs the descriptor: the
      sub-descriptor only resolves to the descriptor while its status is
      still [Kdx_undecided], so no entry can be acquired after the
      descriptor was already decided.  A non-expected value decides
      failure.
    - {e decide}: one CAS on the status — the linearization point.
    - {e release} (phase 2): each acquired cell is CASed from the
      descriptor to the desired (success) or expected (failure) value.

    All descriptor internals carry the [kdx_] prefix: [ascy_lint]'s
    rule C confines that prefix to the two backend files, so CSDS code
    can only reach k-CAS through [Memory.S.kcas]. *)

let max_threads_limit = 512

let next_id = Atomic.make 0

let key : int Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let id = Atomic.fetch_and_add next_id 1 in
      if id >= max_threads_limit then failwith "Mem_native: too many threads";
      id)

(* Event counters: one int array per thread id, allocated eagerly; rows are
   only ever written by their owning thread, so plain arrays suffice. *)
let events = Array.init max_threads_limit (fun _ -> Array.make Event.count 0)

(** Reset all event counters (call between measured runs). *)
let reset_events () = Array.iter (fun row -> Array.fill row 0 Event.count 0) events

(** Aggregate event counters across all threads. *)
let total_events () =
  let tot = Array.make Event.count 0 in
  Array.iter (fun row -> Array.iteri (fun i v -> tot.(i) <- tot.(i) + v) row) events;
  tot

type line = unit

let new_line () = ()

type kdx_status = Kdx_undecided | Kdx_succeeded | Kdx_failed

type 'a content =
  | Kdx_v of 'a  (** a plain value *)
  | Kdx_k of kdx_desc * 'a * 'a  (** descriptor, expected, desired *)
  | Kdx_r of kdx_rd  (** RDCSS sub-descriptor (conditional install) *)

and kdx_desc = { kdx_st : kdx_status Atomic.t; kdx_entries : kdx_entry array }

and kdx_entry = Kdx_e : { kdx_c : 'a r; kdx_exp : 'a; kdx_des : 'a } -> kdx_entry

and kdx_rd =
  | Kdx_rd : {
      kdx_rd_desc : kdx_desc;
      kdx_rd_cell : 'a r;
      kdx_rd_old : 'a content;  (** the witnessed [Kdx_v] box to restore *)
      kdx_rd_new : 'a content;  (** the [Kdx_k] box to install *)
    }
      -> kdx_rd

and 'a r = { kdx_id : int; kdx_cell : 'a content Atomic.t }

let kdx_next_cell = Atomic.make 0

let make () v = { kdx_id = Atomic.fetch_and_add kdx_next_cell 1; kdx_cell = Atomic.make (Kdx_v v) }
let make_fresh v = make () v

(* Resolve an RDCSS sub-descriptor found in its cell: install the k-CAS
   descriptor if it is still undecided, otherwise restore the witnessed
   value.  The CAS expects the exact content box we just read, so a
   helper who lost the race is a harmless no-op. *)
let kdx_complete (rd : kdx_rd) =
  match rd with
  | Kdx_rd r -> (
      match Atomic.get r.kdx_rd_cell.kdx_cell with
      | Kdx_r rd' as cur when rd' == rd ->
          let next =
            if Atomic.get r.kdx_rd_desc.kdx_st = Kdx_undecided then r.kdx_rd_new
            else r.kdx_rd_old
          in
          ignore (Atomic.compare_and_set r.kdx_rd_cell.kdx_cell cur next)
      | _ -> ())

(** Test-only: called after each successful phase-1 acquisition with the
    number of entries acquired so far.  The helping unit test raises out
    of it to model a committer crash-stopped mid-commit, then lets an
    ordinary access finish the descriptor. *)
let kdx_acquire_hook : (int -> unit) ref = ref (fun _ -> ())

exception Kdx_done of kdx_status

(* Run [d] to completion (any thread may call this on any descriptor it
   encounters); returns the final status. *)
let rec kdx_help (d : kdx_desc) : kdx_status =
  let n = Array.length d.kdx_entries in
  let proposed =
    try
      for i = 0 to n - 1 do
        (match d.kdx_entries.(i) with
        | Kdx_e e ->
        let rec acquire () =
          if Atomic.get d.kdx_st <> Kdx_undecided then raise (Kdx_done (Atomic.get d.kdx_st));
          match Atomic.get e.kdx_c.kdx_cell with
          | Kdx_k (d', _, _) when d' == d -> () (* acquired (maybe by a helper) *)
          | Kdx_k (d', _, _) ->
              ignore (kdx_help d');
              acquire ()
          | Kdx_r rd ->
              kdx_complete rd;
              acquire ()
          | Kdx_v v as witnessed ->
              if v != e.kdx_exp then raise (Kdx_done Kdx_failed);
              let rd =
                Kdx_rd
                  {
                    kdx_rd_desc = d;
                    kdx_rd_cell = e.kdx_c;
                    kdx_rd_old = witnessed;
                    kdx_rd_new = Kdx_k (d, e.kdx_exp, e.kdx_des);
                  }
              in
              if Atomic.compare_and_set e.kdx_c.kdx_cell witnessed (Kdx_r rd) then
                kdx_complete rd;
              (* re-check: the sub-descriptor resolved to the descriptor,
                 or was rolled back because the status was decided *)
              acquire ()
        in
        acquire ());
        !kdx_acquire_hook (i + 1)
      done;
      Kdx_succeeded
    with Kdx_done s -> s
  in
  ignore (Atomic.compare_and_set d.kdx_st Kdx_undecided proposed);
  let final = Atomic.get d.kdx_st in
  (* release every cell still publishing this descriptor *)
  Array.iter
    (fun entry ->
      match entry with
      | Kdx_e e ->
          let rec release () =
            match Atomic.get e.kdx_c.kdx_cell with
            | Kdx_k (d', _, _) as cur when d' == d ->
                let out = if final = Kdx_succeeded then Kdx_v e.kdx_des else Kdx_v e.kdx_exp in
                if not (Atomic.compare_and_set e.kdx_c.kdx_cell cur out) then release ()
            | _ -> ()
          in
          release ())
    d.kdx_entries;
  final

(* Read the cell's logical value.  A decided/undecided descriptor entry
   is peeked through (the read linearizes before or after the commit);
   an RDCSS sub-descriptor is completed first, because its witnessed
   value is existentially typed away. *)
let rec get r =
  match Atomic.get r.kdx_cell with
  | Kdx_v v -> v
  | Kdx_k (d, exp, des) -> (
      match Atomic.get d.kdx_st with Kdx_succeeded -> des | Kdx_undecided | Kdx_failed -> exp)
  | Kdx_r rd ->
      kdx_complete rd;
      get r

let rec set r v =
  match Atomic.get r.kdx_cell with
  | Kdx_v _ as cur -> if not (Atomic.compare_and_set r.kdx_cell cur (Kdx_v v)) then set r v
  | Kdx_k (d, _, _) ->
      ignore (kdx_help d);
      set r v
  | Kdx_r rd ->
      kdx_complete rd;
      set r v

let rec cas r expected desired =
  match Atomic.get r.kdx_cell with
  | Kdx_v v as cur ->
      if v != expected then false
      else if Atomic.compare_and_set r.kdx_cell cur (Kdx_v desired) then true
      else cas r expected desired
  | Kdx_k (d, _, _) ->
      ignore (kdx_help d);
      cas r expected desired
  | Kdx_r rd ->
      kdx_complete rd;
      cas r expected desired

let rec fetch_and_add r n =
  match Atomic.get r.kdx_cell with
  | Kdx_v v as cur ->
      if Atomic.compare_and_set r.kdx_cell cur (Kdx_v (v + n)) then v else fetch_and_add r n
  | Kdx_k (d, _, _) ->
      ignore (kdx_help d);
      fetch_and_add r n
  | Kdx_r rd ->
      kdx_complete rd;
      fetch_and_add r n

type kcas_op = kdx_entry

let kcas_op (type a) (r : a r) ~(expected : a) ~(desired : a) : kcas_op =
  Kdx_e { kdx_c = r; kdx_exp = expected; kdx_des = desired }

let kcas = function
  | [] -> true
  | [ Kdx_e e ] -> cas e.kdx_c e.kdx_exp e.kdx_des
  | ops ->
      let entries = Array.of_list ops in
      let id_of entry = match entry with Kdx_e e -> e.kdx_c.kdx_id in
      Array.sort (fun a b -> compare (id_of a) (id_of b)) entries;
      for i = 1 to Array.length entries - 1 do
        if id_of entries.(i - 1) = id_of entries.(i) then
          invalid_arg "Memory.kcas: duplicate cell"
      done;
      let d = { kdx_st = Atomic.make Kdx_undecided; kdx_entries = entries } in
      kdx_help d = Kdx_succeeded

let touch () = ()
let work (_ : int) = ()
let cpu_relax = Domain.cpu_relax
let self () = Domain.DLS.get key
let max_threads () = max_threads_limit
let emit code = events.(self ()).(code) <- events.(self ()).(code) + 1
let txn _f = None (* no HTM on stock OCaml; callers use their lock path *)
