(** Native implementation of {!Memory.S} on OCaml 5 atomics and domains.

    Cells are [Atomic.t]; cache lines are not modeled ([line = unit] and
    [touch]/[work] are no-ops).  Thread ids are dense indices assigned on
    first use per domain.  Event counters are kept per thread id so the
    harness can aggregate them after a run. *)

let max_threads_limit = 512

let next_id = Atomic.make 0

let key : int Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let id = Atomic.fetch_and_add next_id 1 in
      if id >= max_threads_limit then failwith "Mem_native: too many threads";
      id)

(* Event counters: one int array per thread id, allocated eagerly; rows are
   only ever written by their owning thread, so plain arrays suffice. *)
let events = Array.init max_threads_limit (fun _ -> Array.make Event.count 0)

(** Reset all event counters (call between measured runs). *)
let reset_events () = Array.iter (fun row -> Array.fill row 0 Event.count 0) events

(** Aggregate event counters across all threads. *)
let total_events () =
  let tot = Array.make Event.count 0 in
  Array.iter (fun row -> Array.iteri (fun i v -> tot.(i) <- tot.(i) + v) row) events;
  tot

type line = unit

let new_line () = ()

type 'a r = 'a Atomic.t

let make () v = Atomic.make v
let make_fresh v = Atomic.make v
let get = Atomic.get
let set = Atomic.set
let cas = Atomic.compare_and_set
let fetch_and_add = Atomic.fetch_and_add
let touch () = ()
let work (_ : int) = ()
let cpu_relax = Domain.cpu_relax
let self () = Domain.DLS.get key
let max_threads () = max_threads_limit
let emit code = events.(self ()).(code) <- events.(self ()).(code) + 1
let txn _f = None (* no HTM on stock OCaml; callers use their lock path *)
