(** The pluggable cache-coherence cost model contract.

    The simulator core ({!Sim}) owns threads, continuations, scheduling,
    faults and the counters/trace/observer layer; everything that
    depends on {e where a cache line lives} — latency classes, line
    state, private/LLC tag arrays, energy per service class — lives
    behind this signature.  Three implementations ship:

    - {!Coh_mesi} (default): the MESI-like inclusive-LLC directory
      model the repository has always used.  Byte-identical to the
      pre-refactor monolith: schedule counts, golden results and replay
      files are unchanged.
    - {!Coh_flat}: O(1) uniform cost, no line state at all.  For
      SCT/DPOR exploration and analysis sweeps, where the schedule is
      controlled and timing fidelity is irrelevant — it skips the
      multi-megabyte tag arrays a directory model allocates per run.
    - {!Coh_moesi}: an Opteron-style non-inclusive (victim) LLC with an
      Owned state, for reproducing the paper's cross-platform shape
      differences (Opteron's HT-interconnect LLC vs. the Xeons'
      inclusive one).

    Contract details a conforming model must honor:

    - [access] is called once per committed non-transactional access,
      {e after} the core has charged [accesses]/[writes] and notified
      the observer.  The model updates the service-class counters
      ([l1]/[llc]/[c2c_*]/[llc_remote]/[mem]), [rmw] (for [Rmw]
      accesses) and the class-dependent [energy_nj] of [cnt], mutates
      its own line/tag state, and returns the access latency in cycles
      (including any atomic-op surcharge) plus the service class for
      the trace ring.  It must not touch [accesses], [writes] or the
      per-instruction energy — the core owns those.
    - [on_new_line] is called once per allocated line id, in order.
    - [txn_*] back the best-effort transaction path: [txn_conflict]
      says whether a line is dirty in another core's cache (abort),
      [txn_line_cost] estimates one buffered access (private-hit vs
      LLC-hit), and [txn_commit] applies ownership for one written
      line at commit.
    - [warm ~nlines] installs the steady state a long-running benchmark
      reaches (the paper measures 5-second runs); what that means is
      model-specific.
    - Determinism: same call sequence, same results.  No randomness, no
      wall-clock, no global state outside [t]. *)

module P = Ascy_platform.Platform

module type S = sig
  type t

  val name : string
  (** Stable identifier used on CLIs and recorded in replay files
      ("mesi", "flat", "moesi"). *)

  val create : platform:P.t -> t

  val on_new_line : t -> int -> unit
  (** A new line id was allocated (ids are dense, ascending from 0). *)

  val access :
    t ->
    Simtypes.mem_counters ->
    core:int ->
    socket:int ->
    Simtypes.access_kind ->
    int ->
    int * Simtypes.trace_class
  (** [access t cnt ~core ~socket kind line] charges one committed
      access; returns (latency in cycles, service class). *)

  val txn_conflict : t -> core:int -> int -> bool
  (** Line is in modified state in another core's cache: the
      transaction must abort. *)

  val txn_line_cost : t -> core:int -> int -> int
  (** Estimated cycles for one buffered transactional access. *)

  val txn_commit : t -> core:int -> socket:int -> int -> unit
  (** Commit one written line: it becomes exclusively [core]'s. *)

  val warm : t -> nlines:int -> unit
end

(** A model packed with one live instance, so {!Sim} can hold any model
    without a type parameter. *)
type inst = Inst : (module S with type t = 'a) * 'a -> inst

(** A model constructor, as selected on CLIs / stored in configs. *)
type spec = (module S)

let instantiate ((module M : S) : spec) ~platform = Inst ((module M), M.create ~platform)

let name ((module M : S) : spec) = M.name
