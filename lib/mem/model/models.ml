(** The coherence-model registry: every {!Cohmodel.S} implementation,
    addressable by the stable name CLIs use and replay files record. *)

let mesi : Cohmodel.spec = (module Coh_mesi)
let flat : Cohmodel.spec = (module Coh_flat)
let moesi : Cohmodel.spec = (module Coh_moesi)

(** The default everywhere a model is not explicitly selected.  The
    entire pre-refactor behavior — golden results, schedule counts,
    replay files — is the behavior of this model. *)
let default = mesi

let all = [ mesi; flat; moesi ]

let names = List.map Cohmodel.name all

let by_name name =
  match List.find_opt (fun m -> Cohmodel.name m = String.lowercase_ascii name) all with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "unknown coherence model: %s (expected one of: %s)" name
           (String.concat ", " names))
