(** The O(1) uniform-cost model ({!Cohmodel.S}): every access is a
    private-cache hit; atomics pay the platform's atomic surcharge on
    top.  No line state, no tag arrays, no per-line directory — creating
    an instance allocates nothing beyond the record, where the MESI
    directory model allocates multi-megabyte tag arrays per simulation.

    Use it where timing fidelity is irrelevant and run volume is the
    bottleneck: SCT/DPOR exploration re-executes the program once per
    explored schedule under a {e controlled} scheduler, so program
    behavior, oracle verdicts, DPOR dependence (per-line read/write
    conflicts) and therefore schedule counts are identical under any
    cost model — only the clock values differ.  The same holds for
    analysis sweeps driven by controlled schedules.

    Do not use it to {e measure} anything: throughput, latency classes,
    power and NUMA effects all degenerate by construction (every access
    reports class [Tc_l1]).  The default free-running policy is also
    latency-driven, so interleavings of uncontrolled runs differ from
    the MESI model's. *)

module P = Ascy_platform.Platform
open Simtypes

let name = "flat"

type t = { plat : P.t }

let create ~platform = { plat = platform }

let on_new_line _ _ = ()

let em = P.energy_model

let access t cnt ~core:_ ~socket:_ kind _line =
  cnt.l1 <- cnt.l1 + 1;
  cnt.energy_nj <- cnt.energy_nj +. em.P.nj_l1;
  match kind with
  | Read | Write -> (t.plat.P.c_l1, Tc_l1)
  | Rmw ->
      cnt.rmw <- cnt.rmw + 1;
      (t.plat.P.c_l1 + t.plat.P.c_atomic, Tc_l1)

(* No line is ever dirty elsewhere: transactions only abort on
   capacity. *)
let txn_conflict _ ~core:_ _ = false
let txn_line_cost t ~core:_ _ = t.plat.P.c_l1
let txn_commit _ ~core:_ ~socket:_ _ = ()
let warm _ ~nlines:_ = ()
