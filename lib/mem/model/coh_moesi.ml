(** An Opteron-style MOESI model with a non-inclusive (victim) LLC
    ({!Cohmodel.S}), for reproducing the paper's cross-platform {e shape}
    differences.

    Two mechanisms distinguish the Opteron from the inclusive-LLC Xeons
    in the paper's measurements, and both are modeled here:

    - {b Owned state}: a read of a line that is dirty in another core's
      cache is served cache-to-cache, but the owner {e keeps} the line
      (state O) instead of demoting to shared-clean.  The next write by
      the owner is a private hit again — but every other core's read
      keeps paying the transfer, so reader/writer sharing stays
      expensive for the readers (the paper's "loads of an Owned line
      are serviced from the remote cache").
    - {b Non-inclusive victim LLC}: the LLC is filled by private-cache
      {e evictions}, not by fetches.  A clean line read from DRAM or a
      remote socket does not get a local LLC backing copy, so re-fetches
      after private eviction keep paying the long path — the
      directory-less HT broadcast behavior that makes the Opteron's
      uncontended latencies worse and its cross-socket sharing costs
      flatter than the Xeons'.

    Writes invalidate every LLC copy (the only valid copy is the
    writer's private one), so a subsequent remote read is a c2c
    transfer, never a stale LLC hit.  Latency constants still come from
    the platform record; this model changes {e which} class an access
    falls in, which is what shapes the curves. *)

module P = Ascy_platform.Platform
open Simtypes

let name = "moesi"

type line_state = { mutable owner : int; sharers : Ascy_util.Bits.t }

type t = {
  plat : P.t;
  lines : line_state Ascy_util.Vec.t;
  priv : int array array;
  priv_mask : int;
  llc_tags : int array array; (* per-socket victim LLC *)
  llc_mask : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let dummy_line = { owner = -1; sharers = Ascy_util.Bits.create 1 }

let create ~platform =
  let priv_slots = pow2_at_least (min platform.P.l1_lines 16384) 64 in
  let llc_slots = pow2_at_least (min platform.P.llc_lines 524288) 1024 in
  {
    plat = platform;
    lines = Ascy_util.Vec.create ~capacity:4096 dummy_line;
    priv = Array.init platform.P.cores (fun _ -> Array.make priv_slots (-1));
    priv_mask = priv_slots - 1;
    llc_tags = Array.init platform.P.sockets (fun _ -> Array.make llc_slots (-1));
    llc_mask = llc_slots - 1;
  }

let on_new_line t _id =
  Ascy_util.Vec.push t.lines { owner = -1; sharers = Ascy_util.Bits.create t.plat.P.cores }

let em = P.energy_model

let install_llc t socket line = t.llc_tags.(socket).(line land t.llc_mask) <- line
let in_llc t socket line = t.llc_tags.(socket).(line land t.llc_mask) = line

let evict_llc t socket line =
  let slot = line land t.llc_mask in
  if t.llc_tags.(socket).(slot) = line then t.llc_tags.(socket).(slot) <- -1

(* Victim-cache fill: a line evicted from a private cache lands in its
   socket's LLC — the only way the LLC is filled outside [warm]. *)
let install_priv t core socket line =
  let slot = line land t.priv_mask in
  let old = t.priv.(core).(slot) in
  if old >= 0 && old <> line then begin
    let ols = Ascy_util.Vec.get t.lines old in
    Ascy_util.Bits.remove ols.sharers core;
    if ols.owner = core then ols.owner <- -1 (* writeback into the victim LLC *)
  end;
  if old >= 0 && old <> line then install_llc t socket old;
  t.priv.(core).(slot) <- line

let in_priv t core line = t.priv.(core).(line land t.priv_mask) = line

let access t cnt ~core:c ~socket:s kind line =
  let p = t.plat in
  let ls = Ascy_util.Vec.get t.lines line in
  let tcls = ref Tc_l1 in
  let have_copy = in_priv t c line && (ls.owner = c || Ascy_util.Bits.mem ls.sharers c) in
  let lat =
    match kind with
    | Read ->
        if have_copy then begin
          cnt.l1 <- cnt.l1 + 1;
          cnt.energy_nj <- cnt.energy_nj +. em.P.nj_l1;
          p.P.c_l1
        end
        else begin
          let lat =
            if ls.owner >= 0 then begin
              (* dirty elsewhere: served cache-to-cache; the owner keeps
                 the line in Owned state (no demotion — the MOESI
                 difference) *)
              let osock = ls.owner / P.cores_per_socket p in
              cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
              if osock = s then begin
                cnt.c2c_local <- cnt.c2c_local + 1;
                tcls := Tc_c2c_local;
                p.P.c_c2c_local
              end
              else begin
                cnt.c2c_remote <- cnt.c2c_remote + 1;
                tcls := Tc_c2c_remote;
                p.P.c_c2c_remote
              end
            end
            else if in_llc t s line then begin
              cnt.llc <- cnt.llc + 1;
              cnt.energy_nj <- cnt.energy_nj +. em.P.nj_llc;
              tcls := Tc_llc;
              p.P.c_llc
            end
            else begin
              let remote = ref false in
              for os = 0 to p.P.sockets - 1 do
                if os <> s && in_llc t os line then remote := true
              done;
              if !remote then begin
                cnt.llc_remote <- cnt.llc_remote + 1;
                cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
                tcls := Tc_llc_remote;
                p.P.c_llc_remote
              end
              else begin
                cnt.mem <- cnt.mem + 1;
                cnt.energy_nj <- cnt.energy_nj +. em.P.nj_mem;
                tcls := Tc_mem;
                p.P.c_mem
              end
            end
          in
          Ascy_util.Bits.add ls.sharers c;
          (* non-inclusive: the fetched copy goes to the private cache
             only; no LLC fill on a fetch *)
          install_priv t c s line;
          lat
        end
    | Write | Rmw ->
        let base =
          if ls.owner = c && in_priv t c line then begin
            cnt.l1 <- cnt.l1 + 1;
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_l1;
            p.P.c_l1
          end
          else if ls.owner >= 0 then begin
            let osock = ls.owner / P.cores_per_socket p in
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
            if osock = s then begin
              cnt.c2c_local <- cnt.c2c_local + 1;
              tcls := Tc_c2c_local;
              p.P.c_c2c_local
            end
            else begin
              cnt.c2c_remote <- cnt.c2c_remote + 1;
              tcls := Tc_c2c_remote;
              p.P.c_c2c_remote
            end
          end
          else if not (Ascy_util.Bits.is_empty ls.sharers) || in_llc t s line then begin
            (* upgrade: without an inclusive directory the invalidation
               is an HT broadcast probe — remote-priced whenever any
               remote cache could hold a copy *)
            let remote_copy =
              Ascy_util.Bits.exists (fun core -> core / P.cores_per_socket p <> s) ls.sharers
              ||
              let r = ref false in
              for os = 0 to p.P.sockets - 1 do
                if os <> s && in_llc t os line then r := true
              done;
              !r
            in
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
            if remote_copy then begin
              cnt.llc_remote <- cnt.llc_remote + 1;
              tcls := Tc_llc_remote;
              p.P.c_llc_remote
            end
            else begin
              cnt.llc <- cnt.llc + 1;
              tcls := Tc_llc;
              p.P.c_llc
            end
          end
          else begin
            cnt.mem <- cnt.mem + 1;
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_mem;
            tcls := Tc_mem;
            p.P.c_mem
          end
        in
        Ascy_util.Bits.clear ls.sharers;
        ls.owner <- c;
        install_priv t c s line;
        (* every LLC copy is now stale: the only valid copy is the
           writer's private (M-state) one *)
        for os = 0 to p.P.sockets - 1 do
          evict_llc t os line
        done;
        let extra =
          match kind with
          | Rmw ->
              cnt.rmw <- cnt.rmw + 1;
              p.P.c_atomic
          | Read | Write -> 0
        in
        base + extra
  in
  (lat, !tcls)

let txn_conflict t ~core line =
  let ls = Ascy_util.Vec.get t.lines line in
  ls.owner >= 0 && ls.owner <> core

let txn_line_cost t ~core line = if in_priv t core line then t.plat.P.c_l1 else t.plat.P.c_llc

let txn_commit t ~core ~socket line =
  let ls = Ascy_util.Vec.get t.lines line in
  Ascy_util.Bits.clear ls.sharers;
  ls.owner <- core;
  install_priv t core socket line

(* Steady state: the victim LLCs have absorbed a long run's evictions,
   so every line has a backing copy on every socket. *)
let warm t ~nlines =
  for line = 0 to nlines - 1 do
    for s = 0 to t.plat.P.sockets - 1 do
      install_llc t s line
    done
  done
