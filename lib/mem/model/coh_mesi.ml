(** The default MESI-like inclusive-LLC directory model ({!Cohmodel.S}).

    This is the cost model the repository has always used, extracted
    verbatim from the pre-refactor [Sim] monolith — every counter
    update, energy charge and latency is byte-identical, so existing
    golden results, SCT schedule counts and replay files are unchanged.

    State:
    - a per-core direct-mapped private cache (tag array sized like
      L1+L2),
    - a per-socket inclusive LLC (direct-mapped tag array),
    - a directory per line tracking the owning core (modified state) and
      the sharer set.

    Costs: private hits, local LLC hits, in-socket and cross-socket
    dirty-line transfers, remote clean fetches and DRAM — exactly the
    mechanism the paper identifies as the scalability limiter (stores to
    shared lines invalidate copies and turn other threads' future loads
    into coherence misses). *)

module P = Ascy_platform.Platform
open Simtypes

let name = "mesi"

type line_state = { mutable owner : int; sharers : Ascy_util.Bits.t }

type t = {
  plat : P.t;
  lines : line_state Ascy_util.Vec.t;
  priv : int array array; (* per-core direct-mapped private-cache tags *)
  priv_mask : int;
  llc_tags : int array array; (* per-socket LLC tags *)
  llc_mask : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let dummy_line = { owner = -1; sharers = Ascy_util.Bits.create 1 }

let create ~platform =
  let priv_slots = pow2_at_least (min platform.P.l1_lines 16384) 64 in
  let llc_slots = pow2_at_least (min platform.P.llc_lines 524288) 1024 in
  {
    plat = platform;
    lines = Ascy_util.Vec.create ~capacity:4096 dummy_line;
    priv = Array.init platform.P.cores (fun _ -> Array.make priv_slots (-1));
    priv_mask = priv_slots - 1;
    llc_tags = Array.init platform.P.sockets (fun _ -> Array.make llc_slots (-1));
    llc_mask = llc_slots - 1;
  }

let on_new_line t _id =
  Ascy_util.Vec.push t.lines { owner = -1; sharers = Ascy_util.Bits.create t.plat.P.cores }

let em = P.energy_model

(* Install [line] in [core]'s private cache, evicting (and de-registering)
   whatever direct-mapped slot it lands on. *)
let install_priv t core line =
  let slot = line land t.priv_mask in
  let old = t.priv.(core).(slot) in
  if old >= 0 && old <> line then begin
    let ols = Ascy_util.Vec.get t.lines old in
    Ascy_util.Bits.remove ols.sharers core;
    if ols.owner = core then ols.owner <- -1 (* silent writeback *)
  end;
  t.priv.(core).(slot) <- line

let in_priv t core line = t.priv.(core).(line land t.priv_mask) = line

let install_llc t socket line = t.llc_tags.(socket).(line land t.llc_mask) <- line
let in_llc t socket line = t.llc_tags.(socket).(line land t.llc_mask) = line

let access t cnt ~core:c ~socket:s kind line =
  let p = t.plat in
  let ls = Ascy_util.Vec.get t.lines line in
  let tcls = ref Tc_l1 in
  let have_copy = in_priv t c line && (ls.owner = c || Ascy_util.Bits.mem ls.sharers c) in
  let lat =
    match kind with
    | Read ->
        if have_copy then begin
          cnt.l1 <- cnt.l1 + 1;
          cnt.energy_nj <- cnt.energy_nj +. em.P.nj_l1;
          p.P.c_l1
        end
        else begin
          let lat =
            if ls.owner >= 0 then begin
              (* dirty elsewhere: cache-to-cache transfer, owner demotes *)
              let osock = ls.owner / P.cores_per_socket p in
              Ascy_util.Bits.add ls.sharers ls.owner;
              ls.owner <- -1;
              cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
              if osock = s then begin
                cnt.c2c_local <- cnt.c2c_local + 1;
                tcls := Tc_c2c_local;
                p.P.c_c2c_local
              end
              else begin
                cnt.c2c_remote <- cnt.c2c_remote + 1;
                tcls := Tc_c2c_remote;
                p.P.c_c2c_remote
              end
            end
            else if in_llc t s line then begin
              cnt.llc <- cnt.llc + 1;
              cnt.energy_nj <- cnt.energy_nj +. em.P.nj_llc;
              tcls := Tc_llc;
              p.P.c_llc
            end
            else begin
              (* clean copy on a remote socket? *)
              let remote = ref false in
              for os = 0 to p.P.sockets - 1 do
                if os <> s && in_llc t os line then remote := true
              done;
              if !remote then begin
                cnt.llc_remote <- cnt.llc_remote + 1;
                cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
                tcls := Tc_llc_remote;
                p.P.c_llc_remote
              end
              else begin
                cnt.mem <- cnt.mem + 1;
                cnt.energy_nj <- cnt.energy_nj +. em.P.nj_mem;
                tcls := Tc_mem;
                p.P.c_mem
              end
            end
          in
          Ascy_util.Bits.add ls.sharers c;
          install_priv t c line;
          install_llc t s line;
          lat
        end
    | Write | Rmw ->
        let base =
          if ls.owner = c && in_priv t c line then begin
            cnt.l1 <- cnt.l1 + 1;
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_l1;
            p.P.c_l1
          end
          else if ls.owner >= 0 then begin
            let osock = ls.owner / P.cores_per_socket p in
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
            if osock = s then begin
              cnt.c2c_local <- cnt.c2c_local + 1;
              tcls := Tc_c2c_local;
              p.P.c_c2c_local
            end
            else begin
              cnt.c2c_remote <- cnt.c2c_remote + 1;
              tcls := Tc_c2c_remote;
              p.P.c_c2c_remote
            end
          end
          else if not (Ascy_util.Bits.is_empty ls.sharers) || in_llc t s line then begin
            (* upgrade: invalidate sharers; pay more if any are remote *)
            let remote_sharer =
              Ascy_util.Bits.exists (fun core -> core / P.cores_per_socket p <> s) ls.sharers
            in
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
            if remote_sharer then begin
              cnt.llc_remote <- cnt.llc_remote + 1;
              tcls := Tc_llc_remote;
              p.P.c_llc_remote
            end
            else begin
              cnt.llc <- cnt.llc + 1;
              tcls := Tc_llc;
              p.P.c_llc
            end
          end
          else begin
            cnt.mem <- cnt.mem + 1;
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_mem;
            tcls := Tc_mem;
            p.P.c_mem
          end
        in
        (* Invalidate every other copy; this write owns the line. *)
        Ascy_util.Bits.clear ls.sharers;
        ls.owner <- c;
        install_priv t c line;
        install_llc t s line;
        let extra =
          match kind with
          | Rmw ->
              cnt.rmw <- cnt.rmw + 1;
              p.P.c_atomic
          | Read | Write -> 0
        in
        base + extra
  in
  (lat, !tcls)

let txn_conflict t ~core line =
  let ls = Ascy_util.Vec.get t.lines line in
  ls.owner >= 0 && ls.owner <> core

let txn_line_cost t ~core line = if in_priv t core line then t.plat.P.c_l1 else t.plat.P.c_llc

let txn_commit t ~core ~socket line =
  let ls = Ascy_util.Vec.get t.lines line in
  Ascy_util.Bits.clear ls.sharers;
  ls.owner <- core;
  install_priv t core line;
  install_llc t socket line

(* Install every allocated line into every socket's LLC: first accesses
   pay LLC latency, not DRAM, and private caches still start cold. *)
let warm t ~nlines =
  for line = 0 to nlines - 1 do
    for s = 0 to t.plat.P.sockets - 1 do
      install_llc t s line
    done
  done
