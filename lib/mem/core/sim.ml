(** A deterministic discrete-event multicore simulator built on OCaml 5
    effect handlers, with a pluggable cache-coherence cost model.

    Simulated threads are ordinary OCaml closures written against
    {!Memory.S}; each shared-memory access performs an effect.  The
    scheduler always resumes the thread with the smallest local clock and
    charges the access a latency taken from the installed coherence
    model ({!Cohmodel.S}):

    - {!Coh_mesi} (default): a MESI-like inclusive-LLC directory model —
      per-core private caches, per-socket LLCs, a directory per line
      tracking owner and sharer set, with costs for private hits, local
      LLC hits, in-socket and cross-socket dirty-line transfers, remote
      clean fetches and DRAM;
    - {!Coh_flat}: O(1) uniform cost, for SCT/analysis runs where timing
      fidelity is irrelevant;
    - {!Coh_moesi}: an Opteron-style non-inclusive/Owned-state variant
      for cross-platform shape reproduction.

    The MESI model captures exactly the mechanism the paper identifies
    as the scalability limiter — stores to shared lines invalidate
    copies and turn other threads' future loads into coherence misses —
    so the relative throughput/latency/power shapes of CSDS algorithms
    are preserved even though no real multicore is present.

    The same machinery doubles as a deterministic concurrency tester:
    running a workload under different seeds (schedule jitter) explores
    many interleavings reproducibly, and a controlled [~scheduler] turns
    the simulator into a systematic concurrency tester.

    Layering (see DESIGN.md): this module owns threads, continuations,
    scheduling, faults and the counters/trace/observer plumbing; shared
    types live in {!Simtypes} (re-exported here, so callers only ever
    name [Sim]); everything line-state/latency-class-specific lives
    behind {!Cohmodel.S}. *)

module P = Ascy_platform.Platform

(* ------------------------------------------------------------------ *)
(* Re-exports from the shared types layer                              *)
(* ------------------------------------------------------------------ *)

type access_kind = Simtypes.access_kind = Read | Write | Rmw

type action = Simtypes.action =
  | A_start
  | A_access of access_kind * int
  | A_work of int
  | A_kcas of int array

let dependent = Simtypes.dependent
let kcas_touches = Simtypes.kcas_touches

type runnable = Simtypes.runnable = {
  mutable rn : int;
  r_tids : int array;
  r_acts : action array;
}

let runnable_count = Simtypes.runnable_count
let runnable_tid = Simtypes.runnable_tid
let runnable_action = Simtypes.runnable_action
let runnable_find = Simtypes.runnable_find
let runnable_copy = Simtypes.runnable_copy

type scheduler = Simtypes.scheduler

type msg_fault = Simtypes.msg_fault = Msg_drop | Msg_dup | Msg_delay of int

type fault = Simtypes.fault =
  | F_crash
  | F_stall of int
  | F_numa_slow of { factor : float; window : int }
  | F_msg of msg_fault

type fault_event = Simtypes.fault_event = { fe_at : int; fe_tid : int; fe_fault : fault }

exception Thread_killed = Simtypes.Thread_killed

type mem_counters = Simtypes.mem_counters = {
  mutable accesses : int;
  mutable l1 : int;
  mutable llc : int;
  mutable c2c_local : int;
  mutable c2c_remote : int;
  mutable llc_remote : int;
  mutable mem : int;
  mutable rmw : int;
  mutable writes : int;
  mutable energy_nj : float;
}

let fresh_counters = Simtypes.fresh_counters

type trace_class = Simtypes.trace_class =
  | Tc_l1
  | Tc_llc
  | Tc_c2c_local
  | Tc_c2c_remote
  | Tc_llc_remote
  | Tc_mem

type observer = Simtypes.observer = {
  obs_access : int -> access_kind -> int -> unit;
  obs_rmw : int -> bool -> unit;
  obs_event : int -> int -> unit;
  obs_op_start : int -> int -> unit;
  obs_op_end : int -> int -> unit;
}

let compose_observers = Simtypes.compose_observers

(* ------------------------------------------------------------------ *)
(* Coherence-model selection                                           *)
(* ------------------------------------------------------------------ *)

(** A coherence cost model, selectable per simulation ([?model] on
    {!create} / {!with_sim}).  The default, {!Models.mesi}, reproduces
    the repository's historical behavior bit-for-bit; see {!Models} for
    the registry. *)
type model = Cohmodel.spec

let default_model : model = Models.default
let model_of_name : string -> model = Models.by_name
let model_name_of : model -> string = Cohmodel.name
let model_names () = Models.names

(* ------------------------------------------------------------------ *)
(* Core state                                                          *)
(* ------------------------------------------------------------------ *)

type pending =
  | P_access of access_kind * int
  | P_work of int
  | P_kcas of int array (* multi-word CAS: one atomic commit, charged per line *)
  | P_none

type step = Finished | Blocked

type thread = {
  tid : int;
  core : int;
  socket : int;
  instr_scale : float; (* SMT issue-sharing multiplier for this thread *)
  mutable clock : int; (* local time, cycles *)
  mutable pend : pending;
  mutable act : action; (* scheduler lookahead, cached when the effect
                           is performed so listing the runnable set
                           allocates nothing *)
  mutable cont : (unit, step) Effect.Deep.continuation option;
  mutable finished : bool;
  mutable crashed : bool; (* crash-stopped by an injected fault *)
  mutable stalled_until : int; (* not runnable until this decision count *)
}

type trace_event =
  | T_op_start of int  (** harness-assigned operation code *)
  | T_op_end of int
  | T_access of access_kind * int * trace_class  (** kind, line id, service class *)

type trace_entry = { tr_cycle : int; tr_ev : trace_event }

(* Fixed-capacity ring: the newest [cap] entries survive; older ones are
   overwritten ([total] still counts every event ever pushed). *)
type trace_buf = {
  tr_cap : int;
  tr_buf : trace_entry array;
  mutable tr_n : int; (* live entries, <= cap *)
  mutable tr_next : int; (* slot the next push writes *)
  mutable tr_total : int;
}

let dummy_trace_entry = { tr_cycle = 0; tr_ev = T_op_start 0 }

(* In-flight best-effort transaction of the currently-running simulated
   thread (the simulator is cooperative, so one slot suffices). *)
type txn_state = {
  mutable t_cost : int;
  mutable t_undo : (unit -> unit) list; (* newest first *)
  mutable t_lines : int list; (* touched lines, deduplicated *)
  mutable t_written : int list;
  mutable t_nlines : int;
}

type t = {
  plat : P.t;
  nthreads : int;
  jitter : int;
  rng : Ascy_util.Xorshift.t;
  threads : thread array;
  coh_spec : model;
  coh : Cohmodel.inst; (* all line/tag state lives in here *)
  mutable nlines : int; (* allocated line ids (dense, from 0) *)
  counters : mem_counters array;
  events : int array array; (* per-thread algorithm events *)
  mutable cur : int; (* currently-executing simulated thread, or -1 *)
  mutable live : int;
  mutable txn : txn_state option;
  mutable observer : observer option; (* analysis hook; None = zero cost *)
  tracing : bool; (* cheap flag checked on the access hot path *)
  trace : trace_buf array; (* per-thread rings; empty array when off *)
  (* fault-injection state; inert (any_fault = false) unless run is
     given a fault plan, so default paths stay byte-identical *)
  mutable any_fault : bool;
  mutable decisions : int; (* executed steps in the current run *)
  mutable pending_faults : fault_event list; (* sorted by fe_at *)
  mutable crashed_tids : int list; (* newest first *)
  slow_factor : float array; (* per-socket NUMA slowdown multiplier *)
  slow_until : int array; (* decision count the slowdown expires at *)
  pending_msgs : msg_fault list array; (* per-thread FIFO of F_msg tokens *)
}

let create ?(seed = 42) ?(jitter = 0) ?(trace_capacity = 0) ?(model = default_model)
    ~platform ~nthreads () =
  if nthreads < 1 || nthreads > P.hw_threads platform then
    invalid_arg
      (Printf.sprintf "Sim.create: nthreads %d out of range 1..%d for %s" nthreads
         (P.hw_threads platform) platform.P.name);
  (* Count busy hardware threads per core to scale instruction overhead. *)
  let busy = Array.make platform.P.cores 0 in
  for t = 0 to nthreads - 1 do
    let c = P.core_of platform t in
    busy.(c) <- busy.(c) + 1
  done;
  let threads =
    Array.init nthreads (fun tid ->
        let core = P.core_of platform tid in
        let scale = 1.0 +. (platform.P.smt_penalty *. float_of_int (busy.(core) - 1)) in
        {
          tid;
          core;
          socket = P.socket_of platform tid;
          instr_scale = scale;
          clock = 0;
          pend = P_none;
          act = A_start;
          cont = None;
          finished = false;
          crashed = false;
          stalled_until = 0;
        })
  in
  {
    plat = platform;
    nthreads;
    jitter;
    rng = Ascy_util.Xorshift.create seed;
    threads;
    coh_spec = model;
    coh = Cohmodel.instantiate model ~platform;
    nlines = 0;
    counters = Array.init nthreads (fun _ -> fresh_counters ());
    events = Array.init nthreads (fun _ -> Array.make Event.count 0);
    cur = -1;
    live = 0;
    txn = None;
    observer = None;
    any_fault = false;
    decisions = 0;
    pending_faults = [];
    crashed_tids = [];
    slow_factor = Array.make platform.P.sockets 1.0;
    slow_until = Array.make platform.P.sockets 0;
    pending_msgs = Array.make nthreads [];
    tracing = trace_capacity > 0;
    trace =
      (if trace_capacity > 0 then
         Array.init nthreads (fun _ ->
             {
               tr_cap = trace_capacity;
               tr_buf = Array.make trace_capacity dummy_trace_entry;
               tr_n = 0;
               tr_next = 0;
               tr_total = 0;
             })
       else [||]);
  }

(** The coherence model [sim] was created with. *)
let model sim = sim.coh_spec

(** Name of the coherence model [sim] was created with. *)
let model_name sim = model_name_of sim.coh_spec

(* The simulation the calling domain is currently driving.  The
   simulator is single-threaded *per domain*: one domain-local slot
   (Domain.DLS) lets the parallel explorer ([Ascy_sct.Par_explore])
   re-execute independent schedule prefixes on separate domains, each
   driving its own installed simulation, while a single-domain process
   behaves exactly as with the historical global slot. *)
let current_key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get current_key

let new_line_id sim =
  let id = sim.nlines in
  sim.nlines <- id + 1;
  let (Cohmodel.Inst ((module C), cm)) = sim.coh in
  C.on_new_line cm id;
  id

(* ------------------------------------------------------------------ *)
(* Access accounting                                                   *)
(* ------------------------------------------------------------------ *)

let em = P.energy_model

(* Append one event to [tid]'s trace ring (caller checks [sim.tracing]). *)
let trace_push sim tid cycle ev =
  let b = sim.trace.(tid) in
  b.tr_buf.(b.tr_next) <- { tr_cycle = cycle; tr_ev = ev };
  b.tr_next <- (b.tr_next + 1) mod b.tr_cap;
  if b.tr_n < b.tr_cap then b.tr_n <- b.tr_n + 1;
  b.tr_total <- b.tr_total + 1

(* Charge and account one memory access; returns its latency in cycles.
   The core charges the model-independent parts (access/store counts,
   observer notification, instruction overhead and its energy, NUMA
   fault scaling, trace, jitter); the installed coherence model charges
   the service class, its energy, any atomic surcharge, and mutates its
   own line state.  [~notify:false] suppresses only the observer
   callback: a k-CAS commit charges its lines here but reports each
   access/outcome pair itself, in order, from the commit code. *)
let access_cost ?(notify = true) sim th kind line =
  let p = sim.plat in
  let s = th.socket in
  let cnt = sim.counters.(th.tid) in
  cnt.accesses <- cnt.accesses + 1;
  (match kind with Write -> cnt.writes <- cnt.writes + 1 | Read | Rmw -> ());
  (if notify then
     match sim.observer with Some o -> o.obs_access th.tid kind line | None -> ());
  let (Cohmodel.Inst ((module C), cm)) = sim.coh in
  let lat, tcls = C.access cm cnt ~core:th.core ~socket:s kind line in
  (* transient NUMA degradation: scale the memory latency (not the
     instruction overhead) while the thread's socket is slowed *)
  let lat =
    if sim.any_fault && sim.slow_until.(s) > sim.decisions then
      int_of_float (float_of_int lat *. sim.slow_factor.(s))
    else lat
  in
  let instr = int_of_float (float_of_int p.P.c_instr *. th.instr_scale) in
  cnt.energy_nj <- cnt.energy_nj +. em.P.nj_instr;
  if sim.tracing then trace_push sim th.tid th.clock (T_access (kind, line, tcls));
  let j = if sim.jitter > 0 then Ascy_util.Xorshift.below sim.rng (sim.jitter + 1) else 0 in
  lat + instr + j

(* ------------------------------------------------------------------ *)
(* Effects & the MEMORY instance                                       *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Access : access_kind * int -> unit Effect.t
  | Work_eff : int -> unit Effect.t
  | Kcas_eff : int array -> unit Effect.t
        (** multi-word CAS commit point; the array holds the touched
            lines, sorted and distinct *)

exception Txn_abort

(* Transaction capacity: lines an L1-resident read/write set can hold. *)
let txn_capacity = 64

(* Account one access inside a transaction: abort on conflict (line in
   modified state in another core's cache) or capacity overflow; charge a
   private-hit or LLC-hit estimate.  No coherence state changes until
   commit. *)
let txn_access sim (tx : txn_state) kind line =
  let th = sim.threads.(sim.cur) in
  let (Cohmodel.Inst ((module C), cm)) = sim.coh in
  if C.txn_conflict cm ~core:th.core line then raise Txn_abort;
  if not (List.mem line tx.t_lines) then begin
    tx.t_nlines <- tx.t_nlines + 1;
    if tx.t_nlines > txn_capacity then raise Txn_abort;
    tx.t_lines <- line :: tx.t_lines
  end;
  (match kind with
  | Write | Rmw -> if not (List.mem line tx.t_written) then tx.t_written <- line :: tx.t_written
  | Read -> ());
  let base = C.txn_line_cost cm ~core:th.core line in
  tx.t_cost <- tx.t_cost + base + sim.plat.P.c_instr

let running () = match !(current ()) with Some sim -> sim.cur >= 0 | None -> false

let the_sim () =
  match !(current ()) with
  | Some sim -> sim
  | None -> failwith "Sim: no simulation installed (use Sim.with_sim)"

(** Install (or clear) the analysis {!observer} of [sim].  The hook costs
    one option test per access when unset. *)
let set_observer sim obs = sim.observer <- obs

(* Report an RMW outcome to the observer.  Called after the [Rmw] access
   effect returned, i.e. after the access was committed and charged, on
   the same (still-running) simulated thread. *)
let notify_rmw ok =
  match !(current ()) with
  | Some sim when sim.cur >= 0 && sim.txn = None -> (
      match sim.observer with Some o -> o.obs_rmw sim.cur ok | None -> ())
  | _ -> ()

(** The {!Memory.S} implementation backed by the installed simulation.
    Cells created while a simulation is installed but no simulated thread
    is running (structure setup) cost nothing and start uncached. *)
module Mem : Memory.S with type line = int = struct
  type line = int

  let new_line () = new_line_id (the_sim ())

  type 'a r = { line : int; mutable v : 'a }

  (* Route an access: inside a transaction it is buffered/accounted by
     txn_access; otherwise it is an effect handled by the scheduler. *)
  let access kind line =
    match !(current ()) with
    | Some sim when sim.cur >= 0 -> (
        match sim.txn with
        | Some tx -> txn_access sim tx kind line
        | None -> Effect.perform (Access (kind, line)))
    | _ -> ()

  let in_txn () = match !(current ()) with Some sim -> sim.txn | None -> None

  let log_undo r =
    match in_txn () with
    | Some tx ->
        let old = r.v in
        tx.t_undo <- (fun () -> r.v <- old) :: tx.t_undo
    | None -> ()

  let make line v =
    access Write line;
    { line; v }

  let make_fresh v = make (new_line ()) v

  let get r =
    access Read r.line;
    r.v

  let set r v =
    access Write r.line;
    log_undo r;
    r.v <- v

  let cas r expected desired =
    access Rmw r.line;
    if r.v == expected then begin
      log_undo r;
      r.v <- desired;
      notify_rmw true;
      true
    end
    else begin
      notify_rmw false;
      false
    end

  let fetch_and_add r n =
    access Rmw r.line;
    let old = r.v in
    log_undo r;
    r.v <- old + n;
    notify_rmw true;
    old

  (* Multi-word CAS.  The descriptor internals carry the [kdx_] prefix
     ([ascy_lint] rule C confines it to the backend files).  One
     [Kcas_eff] effect is the single scheduling point: the compare, the
     writes and the observer notifications all happen atomically after
     the scheduler resumes us, exactly like the post-effect body of
     [cas], so the commit is one indivisible multi-line step whose
     coherence cost was charged per line at the commit decision. *)
  type kcas_op = Kdx_op : { kdx_cell : 'a r; kdx_exp : 'a; kdx_des : 'a } -> kcas_op

  let kcas_op r ~expected ~desired = Kdx_op { kdx_cell = r; kdx_exp = expected; kdx_des = desired }

  let kdx_check_dup ops =
    let cells = List.map (fun op -> match op with Kdx_op o -> Obj.repr o.kdx_cell) ops in
    let rec dup = function
      | [] -> false
      | c :: rest -> List.exists (fun c' -> c' == c) rest || dup rest
    in
    if dup cells then invalid_arg "Memory.kcas: duplicate cell"

  let kdx_lines ops =
    Array.of_list
      (List.sort_uniq compare (List.map (fun op -> match op with Kdx_op o -> o.kdx_cell.line) ops))

  let kdx_match ops =
    List.for_all (fun op -> match op with Kdx_op o -> o.kdx_cell.v == o.kdx_exp) ops

  let kdx_write ops =
    List.iter
      (fun op ->
        match op with
        | Kdx_op o ->
            log_undo o.kdx_cell;
            o.kdx_cell.v <- o.kdx_des)
      ops

  let kdx_apply ops =
    let ok = kdx_match ops in
    if ok then kdx_write ops;
    ok

  let cas_of_op op = match op with Kdx_op o -> cas o.kdx_cell o.kdx_exp o.kdx_des

  let kcas ops =
    match ops with
    | [] -> true
    | [ op ] -> cas_of_op op (* a 1-CAS is a CAS, with identical accounting *)
    | _ -> (
        kdx_check_dup ops;
        match !(current ()) with
        | Some sim when sim.cur >= 0 -> (
            let lines = kdx_lines ops in
            match sim.txn with
            | Some tx ->
                (* buffered like any transactional RMW, one per line *)
                Array.iter (fun line -> txn_access sim tx Rmw line) lines;
                kdx_apply ops
            | None ->
                Effect.perform (Kcas_eff lines);
                let ok = kdx_apply ops in
                (match sim.observer with
                | Some o ->
                    Array.iter
                      (fun line ->
                        o.obs_access sim.cur Rmw line;
                        o.obs_rmw sim.cur ok)
                      lines
                | None -> ());
                ok)
        | _ -> kdx_apply ops (* setup/prefill: free, like every access *))

  let touch line = access Read line

  let work n =
    match !(current ()) with
    | Some sim when sim.cur >= 0 -> (
        match sim.txn with
        | Some tx -> tx.t_cost <- tx.t_cost + n
        | None -> Effect.perform (Work_eff n))
    | _ -> ()

  let cpu_relax () = work 6

  let self () =
    let sim = the_sim () in
    if sim.cur < 0 then 0 else sim.cur

  let max_threads () = (the_sim ()).nthreads

  let emit code =
    let sim = the_sim () in
    if sim.cur >= 0 then begin
      sim.events.(sim.cur).(code) <- sim.events.(sim.cur).(code) + 1;
      match sim.observer with Some o -> o.obs_event sim.cur code | None -> ()
    end

  let txn f =
    match !(current ()) with
    | Some sim when sim.cur >= 0 && sim.txn = None ->
        let tx =
          { t_cost = sim.plat.P.c_atomic; t_undo = []; t_lines = []; t_written = []; t_nlines = 0 }
        in
        sim.txn <- Some tx;
        (match f () with
        | v ->
            sim.txn <- None;
            (* commit: written lines become exclusively ours *)
            let th = sim.threads.(sim.cur) in
            let (Cohmodel.Inst ((module C), cm)) = sim.coh in
            List.iter
              (fun line -> C.txn_commit cm ~core:th.core ~socket:th.socket line)
              tx.t_written;
            Effect.perform (Work_eff (tx.t_cost + sim.plat.P.c_atomic));
            Some v
        | exception Txn_abort ->
            sim.txn <- None;
            List.iter (fun undo -> undo ()) tx.t_undo;
            sim.counters.(sim.cur).rmw <- sim.counters.(sim.cur).rmw + 1;
            Effect.perform (Work_eff (tx.t_cost + (2 * sim.plat.P.c_atomic)));
            None)
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

(* Binary min-heap of thread ids keyed by thread clocks (ties by tid for
   determinism). *)
module Heap = struct
  type h = { mutable a : int array; mutable n : int; key : int -> int }

  let create cap key = { a = Array.make (max cap 1) 0; n = 0; key }
  let less h x y = h.key x < h.key y || (h.key x = h.key y && x < y)

  let push h x =
    if h.n = Array.length h.a then begin
      let a = Array.make (2 * h.n) 0 in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- x;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && less h h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    assert (h.n > 0);
    let top = h.a.(0) in
    h.n <- h.n - 1;
    if h.n > 0 then begin
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < h.n && less h h.a.(l) h.a.(!s) then s := l;
        if r < h.n && less h h.a.(r) h.a.(!s) then s := r;
        if !s = !i then continue := false
        else begin
          let tmp = h.a.(!s) in
          h.a.(!s) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !s
        end
      done
    end;
    top

  let is_empty h = h.n = 0
end

(** Wraps any exception escaping a simulated thread body: carries the
    tid, the original exception and its backtrace, so harness oracles
    can attribute the failure. *)
exception Thread_failure of int * exn * string

(** [run ?scheduler sim bodies] runs one simulated thread per element of
    [bodies] (length must equal [nthreads]) to completion.  Deterministic
    for a given seed.  Returns the largest thread clock (the makespan, in
    cycles).

    Without [scheduler], threads are resumed smallest-clock-first (plus
    optional jitter folded into access costs) — the free-running hardware
    model.  With [scheduler], every resume decision is delegated to it:
    the callback sees the {!runnable} set with each thread's next
    {!action} and picks the thread to resume, which makes the simulator
    a controlled concurrency tester (see [Ascy_sct]).  The [runnable]
    record passed to the callback is {e reused} across decisions — the
    per-decision hot path allocates nothing — so schedulers must copy
    ({!runnable_copy}) anything they retain past the callback.

    [faults] injects {!fault_event}s keyed by decision index (see
    {!decisions}); with an empty plan both scheduling modes behave
    bit-for-bit as before. *)
let run ?scheduler ?(faults = []) sim bodies =
  if Array.length bodies <> sim.nthreads then invalid_arg "Sim.run: wrong number of bodies";
  (match !(current ()) with
  | Some s when s != sim -> failwith "Sim.run: a different simulation is installed"
  | _ -> current () := Some sim);
  Array.iter
    (fun th ->
      th.clock <- 0;
      th.pend <- P_none;
      th.act <- A_start;
      th.cont <- None;
      th.finished <- false;
      th.crashed <- false;
      th.stalled_until <- 0)
    sim.threads;
  sim.decisions <- 0;
  sim.any_fault <- faults <> [];
  sim.pending_faults <- List.stable_sort (fun a b -> compare a.fe_at b.fe_at) faults;
  sim.crashed_tids <- [];
  Array.fill sim.slow_factor 0 (Array.length sim.slow_factor) 1.0;
  Array.fill sim.slow_until 0 (Array.length sim.slow_until) 0;
  Array.fill sim.pending_msgs 0 (Array.length sim.pending_msgs) [];
  List.iter
    (fun fe ->
      match fe.fe_fault with
      | F_crash | F_stall _ | F_msg _ ->
          if fe.fe_tid < 0 || fe.fe_tid >= sim.nthreads then
            invalid_arg "Sim.run: fault targets an unknown thread"
      | F_numa_slow _ ->
          if fe.fe_tid < 0 || fe.fe_tid >= sim.plat.P.sockets then
            invalid_arg "Sim.run: fault targets an unknown socket")
    faults;
  let handler : (unit, step) Effect.Deep.handler =
    {
      retc = (fun () -> Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Access (kind, line) ->
              Some
                (fun (k : (a, step) Effect.Deep.continuation) ->
                  let th = sim.threads.(sim.cur) in
                  th.pend <- P_access (kind, line);
                  th.act <- A_access (kind, line);
                  th.cont <- Some k;
                  Blocked)
          | Work_eff n ->
              Some
                (fun (k : (a, step) Effect.Deep.continuation) ->
                  let th = sim.threads.(sim.cur) in
                  th.pend <- P_work n;
                  th.act <- A_work n;
                  th.cont <- Some k;
                  Blocked)
          | Kcas_eff lines ->
              Some
                (fun (k : (a, step) Effect.Deep.continuation) ->
                  let th = sim.threads.(sim.cur) in
                  th.pend <- P_kcas lines;
                  th.act <- A_kcas lines;
                  th.cont <- Some k;
                  Blocked)
          | _ -> None);
    }
  in
  let fresh = Array.map (fun b -> Some b) bodies in
  sim.live <- sim.nthreads;
  let makespan = ref 0 in
  (* Resume [tid]: commit its pending access (charging latency), run it
     to its next effect, and record completion.  Returns the step kind. *)
  let exec_step tid =
    let th = sim.threads.(tid) in
    sim.cur <- tid;
    sim.decisions <- sim.decisions + 1;
    let step =
      match fresh.(tid) with
      | Some body ->
          fresh.(tid) <- None;
          (try Effect.Deep.match_with body () handler
           with e -> raise (Thread_failure (tid, e, Printexc.get_backtrace ())))
      | None -> (
          (* commit the pending access, charge its latency, resume *)
          (match th.pend with
          | P_access (kind, line) -> th.clock <- th.clock + access_cost sim th kind line
          | P_work n -> th.clock <- th.clock + int_of_float (float_of_int n *. th.instr_scale)
          | P_kcas lines ->
              (* one atomic commit, but every touched line pays its own
                 RMW coherence cost under the installed model; the
                 observer hears each access/outcome pair from the commit
                 code instead, which knows the outcome *)
              Array.iter
                (fun line -> th.clock <- th.clock + access_cost ~notify:false sim th Rmw line)
                lines
          | P_none -> ());
          th.pend <- P_none;
          match th.cont with
          | Some k ->
              th.cont <- None;
              (try Effect.Deep.continue k ()
               with e -> raise (Thread_failure (tid, e, Printexc.get_backtrace ())))
          | None -> Finished)
    in
    (match step with
    | Finished ->
        th.finished <- true;
        sim.live <- sim.live - 1;
        if th.clock > !makespan then makespan := th.clock
    | Blocked -> ());
    sim.cur <- -1;
    step
  in
  (* Crash-stop [tid]: it never runs again.  A parked continuation is
     discontinued with {!Thread_killed} so wrapping test code can clean
     up; CSDS code installs no such handlers, so anything the corpse
     held — a lock, a half-linked node — stays exactly as it died.  If
     the body swallows the kill, its replacement continuation is
     dropped: the thread is dead either way. *)
  let kill tid =
    let th = sim.threads.(tid) in
    if not (th.finished || th.crashed) then begin
      th.crashed <- true;
      th.pend <- P_none;
      sim.live <- sim.live - 1;
      sim.crashed_tids <- tid :: sim.crashed_tids;
      fresh.(tid) <- None;
      match th.cont with
      | None -> ()
      | Some k ->
          th.cont <- None;
          sim.cur <- tid;
          (try
             match Effect.Deep.discontinue k Thread_killed with Finished | Blocked -> ()
           with
          | Thread_killed -> ()
          | e ->
              sim.cur <- -1;
              raise (Thread_failure (tid, e, Printexc.get_backtrace ())));
          th.cont <- None;
          sim.cur <- -1
    end
  in
  let apply_due_faults () =
    let rec go () =
      match sim.pending_faults with
      | fe :: rest when fe.fe_at <= sim.decisions ->
          sim.pending_faults <- rest;
          (match fe.fe_fault with
          | F_crash -> kill fe.fe_tid
          | F_stall n ->
              let th = sim.threads.(fe.fe_tid) in
              if not (th.finished || th.crashed) then
                th.stalled_until <- sim.decisions + max 0 n
          | F_numa_slow { factor; window } ->
              sim.slow_factor.(fe.fe_tid) <- factor;
              sim.slow_until.(fe.fe_tid) <- sim.decisions + max 0 window
          | F_msg m ->
              (* queue the token; the target thread's next polled message
                 boundary consumes it.  Appended, so a plan that stacks
                 several tokens on one thread delivers them in fe_at
                 order. *)
              sim.pending_msgs.(fe.fe_tid) <- sim.pending_msgs.(fe.fe_tid) @ [ m ]);
          go ()
      | _ -> ()
    in
    go ()
  in
  (match scheduler with
  | None when not sim.any_fault ->
      let heap = Heap.create sim.nthreads (fun tid -> sim.threads.(tid).clock) in
      for tid = 0 to sim.nthreads - 1 do
        Heap.push heap tid
      done;
      while not (Heap.is_empty heap) do
        let tid = Heap.pop heap in
        match exec_step tid with Finished -> () | Blocked -> Heap.push heap tid
      done
  | None ->
      (* Fault-aware free-running loop.  Stalled threads park on a
         waiting list instead of the clock heap; crashed threads are
         dropped wherever they surface.  When every live thread is
         stalled, the decision counter fast-forwards to the earliest
         expiry (nothing else can make progress in between). *)
      let heap = Heap.create sim.nthreads (fun tid -> sim.threads.(tid).clock) in
      for tid = 0 to sim.nthreads - 1 do
        Heap.push heap tid
      done;
      let waiting = ref [] in
      let release_expired () =
        let still, ready =
          List.partition
            (fun tid ->
              let th = sim.threads.(tid) in
              (not th.crashed) && th.stalled_until > sim.decisions)
            !waiting
        in
        waiting := still;
        List.iter (fun tid -> if not sim.threads.(tid).crashed then Heap.push heap tid) ready
      in
      let running = ref true in
      while !running do
        apply_due_faults ();
        release_expired ();
        if Heap.is_empty heap then
          match !waiting with
          | [] -> running := false
          | w ->
              let wake =
                List.fold_left (fun acc tid -> min acc sim.threads.(tid).stalled_until) max_int w
              in
              sim.decisions <- max sim.decisions wake
        else begin
          let tid = Heap.pop heap in
          let th = sim.threads.(tid) in
          if th.crashed then ()
          else if th.stalled_until > sim.decisions then waiting := tid :: !waiting
          else match exec_step tid with Finished -> () | Blocked -> Heap.push heap tid
        end
      done
  | Some choose ->
      (* Controlled loop.  One runnable record is reused for every
         decision: refilling it is plain stores into preallocated
         arrays, and each thread's lookahead action was cached on the
         thread when its effect was performed, so the decision hot path
         allocates nothing. *)
      let runnable =
        {
          Simtypes.rn = 0;
          r_tids = Array.make sim.nthreads 0;
          r_acts = Array.make sim.nthreads A_start;
        }
      in
      while sim.live > 0 do
        if sim.any_fault then apply_due_faults ();
        if sim.live > 0 then begin
          let n = ref 0 in
          for tid = 0 to sim.nthreads - 1 do
            let th = sim.threads.(tid) in
            if (not th.finished) && (not th.crashed) && th.stalled_until <= sim.decisions
            then begin
              runnable.r_tids.(!n) <- tid;
              runnable.r_acts.(!n) <- (if fresh.(tid) <> None then A_start else th.act);
              incr n
            end
          done;
          runnable.rn <- !n;
          if !n = 0 then begin
            (* every live thread is stalled: jump to the earliest expiry *)
            let wake = ref max_int in
            for tid = 0 to sim.nthreads - 1 do
              let th = sim.threads.(tid) in
              if (not th.finished) && (not th.crashed) && th.stalled_until < !wake then
                wake := th.stalled_until
            done;
            sim.decisions <- max sim.decisions !wake
          end
          else begin
            let tid = choose runnable in
            if
              tid < 0 || tid >= sim.nthreads || sim.threads.(tid).finished
              || sim.threads.(tid).crashed
            then
              invalid_arg (Printf.sprintf "Sim.run: scheduler chose non-runnable thread %d" tid);
            ignore (exec_step tid)
          end
        end
      done);
  sim.cur <- -1;
  !makespan

(** Scheduling decisions executed so far in the current/last {!run}.
    This is the coordinate system fault events ([fe_at]) live in: one
    decision per resumed simulator step, shared with SCT schedule
    prefixes so fault plans compose with recorded schedules. *)
let decisions sim = sim.decisions

let is_crashed sim tid = sim.threads.(tid).crashed

(** Tids crash-stopped by injected faults, in injection order. *)
let crashed_tids sim = List.rev sim.crashed_tids

(** Install the coherence model's steady state for every allocated line,
    emulating what a long-running benchmark reaches (the paper measures
    5-second runs).  For the directory models: every line backed by
    every socket's LLC, private caches still cold. *)
let warm sim =
  let (Cohmodel.Inst ((module C), cm)) = sim.coh in
  C.warm cm ~nlines:sim.nlines

(** [with_sim ?seed ?jitter ?model ~platform ~nthreads f] installs a
    fresh simulation, runs [f sim] (which typically builds a structure
    through {!Mem} and then calls {!run}), and uninstalls it. *)
let with_sim ?seed ?jitter ?trace_capacity ?model ~platform ~nthreads f =
  let sim = create ?seed ?jitter ?trace_capacity ?model ~platform ~nthreads () in
  let saved = !(current ()) in
  current () := Some sim;
  Fun.protect ~finally:(fun () -> current () := saved) (fun () -> f sim)

(** Current clock (cycles) of the executing simulated thread. *)
let now () =
  let sim = the_sim () in
  if sim.cur < 0 then 0 else sim.threads.(sim.cur).clock

(** Pop the next {!msg_fault} token queued (by an [F_msg] fault event)
    for the executing simulated thread, if any.  Message boundaries —
    the service layer's shard-queue sends — call this once per send and
    enact the returned behavior on that message.  [None] always when no
    simulation is installed (native runs), no fault plan is active, or
    the caller isn't a simulated thread, so the polling code needs no
    mode switch. *)
let poll_msg_fault () =
  match !(current ()) with
  | Some sim when sim.any_fault && sim.cur >= 0 -> (
      match sim.pending_msgs.(sim.cur) with
      | [] -> None
      | m :: rest ->
          sim.pending_msgs.(sim.cur) <- rest;
          Some m)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Tracing front-end                                                   *)
(* ------------------------------------------------------------------ *)

(** Per-thread trace ring buffers.  Enabled by passing [~trace_capacity]
    (entries retained per thread) to {!create} / {!with_sim}; when off
    — the default — the only cost on the access path is one boolean
    test.  The simulator records every memory access with the coherence
    path that served it; the harness brackets operations with
    {!Trace.op_start} / {!Trace.op_end}. *)
module Trace = struct
  type event = trace_event =
    | T_op_start of int
    | T_op_end of int
    | T_access of access_kind * int * trace_class

  type entry = trace_entry = { tr_cycle : int; tr_ev : trace_event }

  let class_name = Simtypes.trace_class_name

  let enabled sim = sim.tracing

  (* Marks are no-ops unless a traced simulation is installed and a
     simulated thread is executing. *)
  let mark ev =
    match !(current ()) with
    | Some sim when sim.tracing && sim.cur >= 0 ->
        trace_push sim sim.cur sim.threads.(sim.cur).clock ev
    | _ -> ()

  (* Op brackets also notify the installed observer, whether or not the
     rings are on: profiling must not require (or pay for) full traces. *)
  let notify_op f code =
    match !(current ()) with
    | Some sim when sim.cur >= 0 -> (
        match sim.observer with Some o -> f o sim.cur code | None -> ())
    | _ -> ()

  let op_start code =
    notify_op (fun o tid code -> o.obs_op_start tid code) code;
    mark (T_op_start code)

  let op_end code =
    notify_op (fun o tid code -> o.obs_op_end tid code) code;
    mark (T_op_end code)

  (** Events ever pushed to [tid]'s ring (retained or overwritten). *)
  let total sim tid = if sim.tracing then sim.trace.(tid).tr_total else 0

  (** Retained entries of [tid], oldest first. *)
  let entries sim tid =
    if not sim.tracing then []
    else begin
      let b = sim.trace.(tid) in
      let start = (b.tr_next - b.tr_n + b.tr_cap) mod b.tr_cap in
      List.init b.tr_n (fun i -> b.tr_buf.((start + i) mod b.tr_cap))
    end

  let kind_name = function Read -> "R" | Write -> "W" | Rmw -> "RMW"

  let pp_entry ?(op_name = string_of_int) tid e =
    match e.tr_ev with
    | T_op_start code -> Printf.sprintf "t%-3d @%-10d op_start %s" tid e.tr_cycle (op_name code)
    | T_op_end code -> Printf.sprintf "t%-3d @%-10d op_end   %s" tid e.tr_cycle (op_name code)
    | T_access (kind, line, cls) ->
        Printf.sprintf "t%-3d @%-10d %-3s line=%-6d %s" tid e.tr_cycle (kind_name kind) line
          (class_name cls)

  let entry_json tid e =
    let module J = Ascy_util.Json in
    let common = [ ("tid", J.Int tid); ("cycle", J.Int e.tr_cycle) ] in
    J.Obj
      (match e.tr_ev with
      | T_op_start code -> common @ [ ("ev", J.String "op_start"); ("op", J.Int code) ]
      | T_op_end code -> common @ [ ("ev", J.String "op_end"); ("op", J.Int code) ]
      | T_access (kind, line, cls) ->
          common
          @ [
              ("ev", J.String "access");
              ("kind", J.String (kind_name kind));
              ("line", J.Int line);
              ("class", J.String (class_name cls));
            ])

  (** [dump ?json ?op_name oc sim] renders every thread's retained
      entries, oldest first per thread.  Text (default) is one line per
      event; [~json:true] emits one JSON array of event objects. *)
  let dump ?(json = false) ?op_name oc sim =
    if json then begin
      let entries_json =
        List.concat
          (List.init (Array.length sim.trace) (fun tid ->
               List.map (entry_json tid) (entries sim tid)))
      in
      output_string oc (Ascy_util.Json.to_string ~indent:1 (Ascy_util.Json.List entries_json));
      output_string oc "\n"
    end
    else
      Array.iteri
        (fun tid b ->
          Printf.fprintf oc "-- thread %d: %d events (%d retained)\n" tid b.tr_total b.tr_n;
          List.iter (fun e -> Printf.fprintf oc "%s\n" (pp_entry ?op_name tid e)) (entries sim tid))
        sim.trace
end

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type run_stats = {
  makespan_cycles : int;
  seconds : float;
  accesses : int;
  hits_l1 : int;
  hits_llc : int;
  transfers_local : int;
  transfers_remote : int;
  fetch_remote : int;
  misses_mem : int;
  atomics : int;
  stores : int;  (** plain (non-RMW) stores; stores + atomics = all writes *)
  energy_j : float;  (** dynamic + static energy over the makespan *)
  power_w : float;
  events : int array;
}

(** One thread's memory-event counters (the per-thread slice of
    {!run_stats}): every coherence service class — the [Tc_*] trace
    classes — plus plain stores and RMWs, accumulated unconditionally, so
    stores-per-op and cache-line-transfer breakdowns never require the
    trace rings. *)
type thread_stats = {
  t_tid : int;
  t_accesses : int;
  t_l1 : int;
  t_llc : int;
  t_c2c_local : int;
  t_c2c_remote : int;
  t_llc_remote : int;
  t_mem : int;
  t_atomics : int;
  t_stores : int;
  t_energy_nj : float;
}

(** Per-thread counters of the last {!run}, ascending tid. *)
let per_thread_stats sim =
  Array.mapi
    (fun tid (c : mem_counters) ->
      {
        t_tid = tid;
        t_accesses = c.accesses;
        t_l1 = c.l1;
        t_llc = c.llc;
        t_c2c_local = c.c2c_local;
        t_c2c_remote = c.c2c_remote;
        t_llc_remote = c.llc_remote;
        t_mem = c.mem;
        t_atomics = c.rmw;
        t_stores = c.writes;
        t_energy_nj = c.energy_nj;
      })
    sim.counters

(** Aggregate statistics of the last {!run}.  [makespan] is the value
    {!run} returned. *)
let stats sim ~makespan =
  let seconds = float_of_int makespan /. (sim.plat.P.ghz *. 1e9) in
  let agg = fresh_counters () in
  Array.iter
    (fun (c : mem_counters) ->
      agg.accesses <- agg.accesses + c.accesses;
      agg.l1 <- agg.l1 + c.l1;
      agg.llc <- agg.llc + c.llc;
      agg.c2c_local <- agg.c2c_local + c.c2c_local;
      agg.c2c_remote <- agg.c2c_remote + c.c2c_remote;
      agg.llc_remote <- agg.llc_remote + c.llc_remote;
      agg.mem <- agg.mem + c.mem;
      agg.rmw <- agg.rmw + c.rmw;
      agg.writes <- agg.writes + c.writes;
      agg.energy_nj <- agg.energy_nj +. c.energy_nj)
    sim.counters;
  let busy_cores =
    let seen = Array.make sim.plat.P.cores false in
    Array.iter (fun th -> seen.(th.core) <- true) sim.threads;
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen
  in
  let static_j = em.P.w_static_core *. float_of_int busy_cores *. seconds in
  let energy_j = (agg.energy_nj *. 1e-9) +. static_j in
  let events = Array.make Event.count 0 in
  Array.iter (fun row -> Array.iteri (fun i v -> events.(i) <- events.(i) + v) row) sim.events;
  {
    makespan_cycles = makespan;
    seconds;
    accesses = agg.accesses;
    hits_l1 = agg.l1;
    hits_llc = agg.llc;
    transfers_local = agg.c2c_local;
    transfers_remote = agg.c2c_remote;
    fetch_remote = agg.llc_remote;
    misses_mem = agg.mem;
    atomics = agg.rmw;
    stores = agg.writes;
    energy_j;
    power_w = (if seconds > 0.0 then energy_j /. seconds else 0.0);
    events;
  }

(** All accesses that were not private-cache hits. *)
let misses st =
  st.hits_llc + st.transfers_local + st.transfers_remote + st.fetch_remote + st.misses_mem
