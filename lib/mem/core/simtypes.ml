(** Types shared between the simulator core ({!Sim}), the pluggable
    coherence models ({!Cohmodel} and its implementations) and the
    counters/trace/observer layer.

    This module is the bottom of the layered runtime: it contains no
    behavior beyond trivial constructors and predicates, so every layer
    — core, model, observers — can depend on it without cycles.  {!Sim}
    re-exports everything here under its own name, so external code
    keeps using [Ascy_mem.Sim.Read], [Ascy_mem.Sim.action], ... *)

type access_kind = Read | Write | Rmw

(* ------------------------------------------------------------------ *)
(* Scheduler-visible actions                                           *)
(* ------------------------------------------------------------------ *)

(** What a runnable thread will do when next resumed (one-step
    lookahead).  [A_start] means the thread's body has not run yet, so
    its first action is unknown; starting a thread performs no shared
    access and is independent of everything.  [A_kcas] is a multi-word
    CAS commit: one atomic step that reads {e and may write} every line
    in the (sorted, distinct) array. *)
type action = A_start | A_access of access_kind * int | A_work of int | A_kcas of int array

(* [lines] is sorted ascending, so membership can stop early. *)
let kcas_touches lines l =
  let n = Array.length lines in
  let rec go i = i < n && lines.(i) <= l && (lines.(i) = l || go (i + 1)) in
  go 0

(** [dependent a b] — can the order of [a] and [b] (by different
    threads) affect the memory state or either thread's results?  Two
    accesses conflict iff they touch the same line and at least one
    writes; local work and thread starts never conflict.  A k-CAS
    commit acts as a read-modify-write of every touched line, so it
    conflicts with any access to a member line and with any k-CAS whose
    line set intersects.  This is the per-line read/write dependency
    relation systematic concurrency testing (DPOR) prunes with. *)
let dependent a b =
  match (a, b) with
  | A_access (k1, l1), A_access (k2, l2) -> l1 = l2 && not (k1 = Read && k2 = Read)
  | A_kcas ls, A_access (_, l) | A_access (_, l), A_kcas ls -> kcas_touches ls l
  | A_kcas ls1, A_kcas ls2 -> Array.exists (kcas_touches ls1) ls2
  | _ -> false

(** The runnable-thread set presented to a controlled scheduler at one
    decision point: the first [rn] slots of [r_tids]/[r_acts] hold the
    runnable thread ids (ascending) and their next actions.  The
    simulator reuses one [runnable] record across every decision of a
    run — the per-decision hot path allocates nothing — so schedulers
    must not retain it; callers that need a snapshot (the SCT explorer
    keeps one per DFS node) use {!runnable_copy}. *)
type runnable = {
  mutable rn : int;  (** live slots; only indices [0..rn-1] are valid *)
  r_tids : int array;
  r_acts : action array;
}

let runnable_count r = r.rn

let runnable_tid r i =
  if i < 0 || i >= r.rn then invalid_arg "runnable_tid: index out of range";
  r.r_tids.(i)

let runnable_action r i =
  if i < 0 || i >= r.rn then invalid_arg "runnable_action: index out of range";
  r.r_acts.(i)

(** Index of [tid] among the runnable threads, or [-1]. *)
let runnable_find r tid =
  let rec go i = if i >= r.rn then -1 else if r.r_tids.(i) = tid then i else go (i + 1) in
  go 0

(** A detached snapshot (arrays sized exactly [rn]), safe to retain
    after the decision returns. *)
let runnable_copy r =
  { rn = r.rn; r_tids = Array.sub r.r_tids 0 r.rn; r_acts = Array.sub r.r_acts 0 r.rn }

(** A controlled scheduler: given the runnable threads, return the tid
    to resume.  Called at every resume-decision point of [Sim.run];
    choosing a tid not in the set is an error.  The default (no
    scheduler) policy resumes the thread with the smallest local clock,
    which models free-running hardware; a controlled scheduler instead
    explores or replays a specific interleaving. *)
type scheduler = runnable -> int

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

(** Message-boundary faults: lossy-channel behaviors delivered as
    {e tokens} to a target thread rather than applied by the simulator
    itself.  The simulator only queues them (per thread, FIFO); code
    with a message boundary — the service layer's shard queues — polls
    its thread's queue at each send via [Sim.poll_msg_fault] and enacts
    the token on that one message.  Memory-level simulation is
    untouched, so the same plan replays bit-for-bit on any model.

    - {!Msg_drop}: the send is silently discarded (lost request);
    - {!Msg_dup}: the send is delivered twice (retransmit race);
    - {!Msg_delay n}: the send is held back until [n] later sends by the
      same thread have gone first (reordering/late delivery). *)
type msg_fault = Msg_drop | Msg_dup | Msg_delay of int

(** Injectable faults.  Faults are placed at {e decision points} — the
    same coordinate system controlled schedules use (one decision per
    executed simulator step), so a fault plan composes with a schedule
    prefix into a single replayable artifact and the SCT explorer can
    place faults as systematically as it places context switches.

    - {!F_crash}: crash-stop.  The thread dies at the decision point and
      never runs again: whatever it held (locks, claimed slots, frozen
      SSMEM epochs) stays held forever.
    - {!F_stall n}: the thread is descheduled for the next [n] decisions,
      then resumes — a transparent delay (preemption by the OS, a page
      fault, an SMI).
    - {!F_numa_slow}: a socket's memory-access latencies are multiplied
      by [factor] for the next [window] decisions — a transient NUMA/
      interconnect degradation.  Only observable under the default
      (free-running) policy, where latency decides the schedule.
    - {!F_msg}: queue a {!msg_fault} token for the target thread; its
      next polled message boundary consumes it (see {!msg_fault}). *)
type fault =
  | F_crash
  | F_stall of int
  | F_numa_slow of { factor : float; window : int }
  | F_msg of msg_fault

(** One fault of a plan: [fe_fault] applies once [fe_at] decisions have
    executed (before the [fe_at]-th next decision is taken).  [fe_tid]
    is a thread id for [F_crash]/[F_stall]/[F_msg] and a socket id for
    [F_numa_slow]. *)
type fault_event = { fe_at : int; fe_tid : int; fe_fault : fault }

(** Delivered into a thread being crash-stopped, so test-level
    [Fun.protect] cleanup can run deterministically.  CSDS code installs
    no such handlers, which is the point: the corpse's locks stay
    locked.  Harness oracles must treat this exception as an injected
    fault, never as an algorithm bug. *)
exception Thread_killed

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

(* Per-thread memory-event counters.  The coherence model charges the
   service-class slots (l1/llc/c2c_*/llc_remote/mem), rmw and the
   class-dependent energy; the simulator core charges accesses, writes
   and the per-instruction energy. *)
type mem_counters = {
  mutable accesses : int;
  mutable l1 : int;
  mutable llc : int;
  mutable c2c_local : int;
  mutable c2c_remote : int;
  mutable llc_remote : int;
  mutable mem : int;
  mutable rmw : int;
  mutable writes : int; (* plain (non-RMW) stores *)
  mutable energy_nj : float;
}

let fresh_counters () =
  { accesses = 0; l1 = 0; llc = 0; c2c_local = 0; c2c_remote = 0; llc_remote = 0; mem = 0; rmw = 0; writes = 0; energy_nj = 0.0 }

(* Where an access was served from (which coherence path it took). *)
type trace_class = Tc_l1 | Tc_llc | Tc_c2c_local | Tc_c2c_remote | Tc_llc_remote | Tc_mem

let trace_class_name = function
  | Tc_l1 -> "l1"
  | Tc_llc -> "llc"
  | Tc_c2c_local -> "c2c_local"
  | Tc_c2c_remote -> "c2c_remote"
  | Tc_llc_remote -> "llc_remote"
  | Tc_mem -> "mem"

(* ------------------------------------------------------------------ *)
(* Observers                                                           *)
(* ------------------------------------------------------------------ *)

(** An observer over the committed access/event stream of a run, for
    analysis passes (per-operation profiling, happens-before race
    detection) that need every access but must not depend on the
    off-by-default trace rings.  All callbacks fire only for simulated
    threads (never during setup/prefill, where accesses are free) and in
    commit order — [obs_access] at the moment the scheduler charges the
    access, which is when its memory effect takes place.

    - [obs_access tid kind line]: one committed access;
    - [obs_rmw tid success]: outcome of the RMW ([cas] success or
      [fetch_and_add], which always succeeds) whose [Rmw] access was just
      reported for [tid];
    - [obs_event tid code]: an {!Event} emission;
    - [obs_op_start tid code] / [obs_op_end tid code]: the harness
      operation brackets ([Trace.op_start] / [Trace.op_end]), delivered
      even when tracing is off.

    Transactional ([txn]) accesses are buffered, not committed
    individually, and are not reported. *)
type observer = {
  obs_access : int -> access_kind -> int -> unit;
  obs_rmw : int -> bool -> unit;
  obs_event : int -> int -> unit;
  obs_op_start : int -> int -> unit;
  obs_op_end : int -> int -> unit;
}

(** Fan one access stream out to two observers, [a] first.  Lets the
    harness attach a race detector and a profiler (or any other pair)
    to the same run without the simulator knowing about either. *)
let compose_observers a b =
  {
    obs_access = (fun tid kind line -> a.obs_access tid kind line; b.obs_access tid kind line);
    obs_rmw = (fun tid ok -> a.obs_rmw tid ok; b.obs_rmw tid ok);
    obs_event = (fun tid code -> a.obs_event tid code; b.obs_event tid code);
    obs_op_start = (fun tid code -> a.obs_op_start tid code; b.obs_op_start tid code);
    obs_op_end = (fun tid code -> a.obs_op_end tid code; b.obs_op_end tid code);
  }
