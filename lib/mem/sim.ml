(** A deterministic discrete-event multicore simulator with a MESI-like
    cache-coherence cost model, built on OCaml 5 effect handlers.

    Simulated threads are ordinary OCaml closures written against
    {!Memory.S}; each shared-memory access performs an effect.  The
    scheduler always resumes the thread with the smallest local clock and
    charges the access a latency taken from the {!Ascy_platform.Platform}
    model:

    - a per-core private cache (direct-mapped tag array sized like L1+L2),
    - a per-socket LLC (direct-mapped tag array),
    - a directory per line tracking the owning core (modified state) and
      the sharer set,
    - costs for private hits, local LLC hits, in-socket and cross-socket
      dirty-line transfers, remote clean fetches and DRAM.

    This models exactly the mechanism the paper identifies as the
    scalability limiter — stores to shared lines invalidate copies and
    turn other threads' future loads into coherence misses — so the
    relative throughput/latency/power shapes of CSDS algorithms are
    preserved even though no real multicore is present.

    The same machinery doubles as a deterministic concurrency tester:
    running a workload under different seeds (schedule jitter) explores
    many interleavings reproducibly. *)

module P = Ascy_platform.Platform

type access_kind = Read | Write | Rmw

type pending =
  | P_access of access_kind * int
  | P_work of int
  | P_none

type step = Finished | Blocked

(* ------------------------------------------------------------------ *)
(* Scheduler abstraction                                               *)
(* ------------------------------------------------------------------ *)

(** What a runnable thread will do when next resumed (one-step
    lookahead).  [A_start] means the thread's body has not run yet, so
    its first action is unknown; starting a thread performs no shared
    access and is independent of everything. *)
type action = A_start | A_access of access_kind * int | A_work of int

(** [dependent a b] — can the order of [a] and [b] (by different
    threads) affect the memory state or either thread's results?  Two
    accesses conflict iff they touch the same line and at least one
    writes; local work and thread starts never conflict.  This is the
    per-line read/write dependency relation systematic concurrency
    testing (DPOR) prunes with. *)
let dependent a b =
  match (a, b) with
  | A_access (k1, l1), A_access (k2, l2) -> l1 = l2 && not (k1 = Read && k2 = Read)
  | _ -> false

(** A controlled scheduler: given the runnable threads (ascending tid)
    paired with their next actions, return the tid to resume.  Called at
    every resume-decision point of {!run}; choosing a tid not in the
    array is an error.  The default (no scheduler) policy resumes the
    thread with the smallest local clock, which models free-running
    hardware; a controlled scheduler instead explores or replays a
    specific interleaving. *)
type scheduler = (int * action) array -> int

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

(** Injectable faults.  Faults are placed at {e decision points} — the
    same coordinate system controlled schedules use (one decision per
    executed simulator step), so a fault plan composes with a schedule
    prefix into a single replayable artifact and the SCT explorer can
    place faults as systematically as it places context switches.

    - {!F_crash}: crash-stop.  The thread dies at the decision point and
      never runs again: whatever it held (locks, claimed slots, frozen
      SSMEM epochs) stays held forever.
    - {!F_stall n}: the thread is descheduled for the next [n] decisions,
      then resumes — a transparent delay (preemption by the OS, a page
      fault, an SMI).
    - {!F_numa_slow}: a socket's memory-access latencies are multiplied
      by [factor] for the next [window] decisions — a transient NUMA/
      interconnect degradation.  Only observable under the default
      (free-running) policy, where latency decides the schedule. *)
type fault =
  | F_crash
  | F_stall of int
  | F_numa_slow of { factor : float; window : int }

(** One fault of a plan: [fe_fault] applies once [fe_at] decisions have
    executed (before the [fe_at]-th next decision is taken).  [fe_tid]
    is a thread id for [F_crash]/[F_stall] and a socket id for
    [F_numa_slow]. *)
type fault_event = { fe_at : int; fe_tid : int; fe_fault : fault }

(** Delivered into a thread being crash-stopped, so test-level
    [Fun.protect] cleanup can run deterministically.  CSDS code installs
    no such handlers, which is the point: the corpse's locks stay
    locked.  Harness oracles must treat this exception as an injected
    fault, never as an algorithm bug. *)
exception Thread_killed

type thread = {
  tid : int;
  core : int;
  socket : int;
  instr_scale : float; (* SMT issue-sharing multiplier for this thread *)
  mutable clock : int; (* local time, cycles *)
  mutable pend : pending;
  mutable cont : (unit, step) Effect.Deep.continuation option;
  mutable finished : bool;
  mutable crashed : bool; (* crash-stopped by an injected fault *)
  mutable stalled_until : int; (* not runnable until this decision count *)
}

type line_state = { mutable owner : int; sharers : Ascy_util.Bits.t }

(* Per-thread memory-event counters. *)
type mem_counters = {
  mutable accesses : int;
  mutable l1 : int;
  mutable llc : int;
  mutable c2c_local : int;
  mutable c2c_remote : int;
  mutable llc_remote : int;
  mutable mem : int;
  mutable rmw : int;
  mutable writes : int; (* plain (non-RMW) stores *)
  mutable energy_nj : float;
}

let fresh_counters () =
  { accesses = 0; l1 = 0; llc = 0; c2c_local = 0; c2c_remote = 0; llc_remote = 0; mem = 0; rmw = 0; writes = 0; energy_nj = 0.0 }

(* ------------------------------------------------------------------ *)
(* Observers                                                           *)
(* ------------------------------------------------------------------ *)

(** An observer over the committed access/event stream of a run, for
    analysis passes (per-operation profiling, happens-before race
    detection) that need every access but must not depend on the
    off-by-default trace rings.  All callbacks fire only for simulated
    threads (never during setup/prefill, where accesses are free) and in
    commit order — [obs_access] at the moment the scheduler charges the
    access, which is when its memory effect takes place.

    - [obs_access tid kind line]: one committed access;
    - [obs_rmw tid success]: outcome of the RMW ([cas] success or
      [fetch_and_add], which always succeeds) whose [Rmw] access was just
      reported for [tid];
    - [obs_event tid code]: an {!Event} emission;
    - [obs_op_start tid code] / [obs_op_end tid code]: the harness
      operation brackets ({!Trace.op_start} / {!Trace.op_end}), delivered
      even when tracing is off.

    Transactional ([txn]) accesses are buffered, not committed
    individually, and are not reported. *)
type observer = {
  obs_access : int -> access_kind -> int -> unit;
  obs_rmw : int -> bool -> unit;
  obs_event : int -> int -> unit;
  obs_op_start : int -> int -> unit;
  obs_op_end : int -> int -> unit;
}

(* ------------------------------------------------------------------ *)
(* Trace ring buffers                                                  *)
(* ------------------------------------------------------------------ *)

(* Where an access was served from (which coherence path it took). *)
type trace_class = Tc_l1 | Tc_llc | Tc_c2c_local | Tc_c2c_remote | Tc_llc_remote | Tc_mem

let trace_class_name = function
  | Tc_l1 -> "l1"
  | Tc_llc -> "llc"
  | Tc_c2c_local -> "c2c_local"
  | Tc_c2c_remote -> "c2c_remote"
  | Tc_llc_remote -> "llc_remote"
  | Tc_mem -> "mem"

type trace_event =
  | T_op_start of int  (** harness-assigned operation code *)
  | T_op_end of int
  | T_access of access_kind * int * trace_class  (** kind, line id, service class *)

type trace_entry = { tr_cycle : int; tr_ev : trace_event }

(* Fixed-capacity ring: the newest [cap] entries survive; older ones are
   overwritten ([total] still counts every event ever pushed). *)
type trace_buf = {
  tr_cap : int;
  tr_buf : trace_entry array;
  mutable tr_n : int; (* live entries, <= cap *)
  mutable tr_next : int; (* slot the next push writes *)
  mutable tr_total : int;
}

let dummy_trace_entry = { tr_cycle = 0; tr_ev = T_op_start 0 }

(* In-flight best-effort transaction of the currently-running simulated
   thread (the simulator is cooperative, so one slot suffices). *)
type txn_state = {
  mutable t_cost : int;
  mutable t_undo : (unit -> unit) list; (* newest first *)
  mutable t_lines : int list; (* touched lines, deduplicated *)
  mutable t_written : int list;
  mutable t_nlines : int;
}

type t = {
  plat : P.t;
  nthreads : int;
  jitter : int;
  rng : Ascy_util.Xorshift.t;
  threads : thread array;
  lines : line_state Ascy_util.Vec.t;
  priv : int array array; (* per-core direct-mapped private-cache tags *)
  priv_mask : int;
  llc_tags : int array array; (* per-socket LLC tags *)
  llc_mask : int;
  counters : mem_counters array;
  events : int array array; (* per-thread algorithm events *)
  mutable cur : int; (* currently-executing simulated thread, or -1 *)
  mutable live : int;
  mutable txn : txn_state option;
  mutable observer : observer option; (* analysis hook; None = zero cost *)
  tracing : bool; (* cheap flag checked on the access hot path *)
  trace : trace_buf array; (* per-thread rings; empty array when off *)
  (* fault-injection state; inert (any_fault = false) unless run is
     given a fault plan, so default paths stay byte-identical *)
  mutable any_fault : bool;
  mutable decisions : int; (* executed steps in the current run *)
  mutable pending_faults : fault_event list; (* sorted by fe_at *)
  mutable crashed_tids : int list; (* newest first *)
  slow_factor : float array; (* per-socket NUMA slowdown multiplier *)
  slow_until : int array; (* decision count the slowdown expires at *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let dummy_line = { owner = -1; sharers = Ascy_util.Bits.create 1 }

let create ?(seed = 42) ?(jitter = 0) ?(trace_capacity = 0) ~platform ~nthreads () =
  if nthreads < 1 || nthreads > P.hw_threads platform then
    invalid_arg
      (Printf.sprintf "Sim.create: nthreads %d out of range 1..%d for %s" nthreads
         (P.hw_threads platform) platform.P.name);
  let priv_slots = pow2_at_least (min platform.P.l1_lines 16384) 64 in
  let llc_slots = pow2_at_least (min platform.P.llc_lines 524288) 1024 in
  (* Count busy hardware threads per core to scale instruction overhead. *)
  let busy = Array.make platform.P.cores 0 in
  for t = 0 to nthreads - 1 do
    let c = P.core_of platform t in
    busy.(c) <- busy.(c) + 1
  done;
  let threads =
    Array.init nthreads (fun tid ->
        let core = P.core_of platform tid in
        let scale = 1.0 +. (platform.P.smt_penalty *. float_of_int (busy.(core) - 1)) in
        {
          tid;
          core;
          socket = P.socket_of platform tid;
          instr_scale = scale;
          clock = 0;
          pend = P_none;
          cont = None;
          finished = false;
          crashed = false;
          stalled_until = 0;
        })
  in
  {
    plat = platform;
    nthreads;
    jitter;
    rng = Ascy_util.Xorshift.create seed;
    threads;
    lines = Ascy_util.Vec.create ~capacity:4096 dummy_line;
    priv = Array.init platform.P.cores (fun _ -> Array.make priv_slots (-1));
    priv_mask = priv_slots - 1;
    llc_tags = Array.init platform.P.sockets (fun _ -> Array.make llc_slots (-1));
    llc_mask = llc_slots - 1;
    counters = Array.init nthreads (fun _ -> fresh_counters ());
    events = Array.init nthreads (fun _ -> Array.make Event.count 0);
    cur = -1;
    live = 0;
    txn = None;
    observer = None;
    any_fault = false;
    decisions = 0;
    pending_faults = [];
    crashed_tids = [];
    slow_factor = Array.make platform.P.sockets 1.0;
    slow_until = Array.make platform.P.sockets 0;
    tracing = trace_capacity > 0;
    trace =
      (if trace_capacity > 0 then
         Array.init nthreads (fun _ ->
             {
               tr_cap = trace_capacity;
               tr_buf = Array.make trace_capacity dummy_trace_entry;
               tr_n = 0;
               tr_next = 0;
               tr_total = 0;
             })
       else [||]);
  }

(* The simulation the calling (real) thread is currently driving.  The
   simulator is single-OS-threaded, so one slot suffices. *)
let current : t option ref = ref None

let new_line_id sim =
  let id = Ascy_util.Vec.length sim.lines in
  Ascy_util.Vec.push sim.lines { owner = -1; sharers = Ascy_util.Bits.create sim.plat.P.cores };
  id

(* ------------------------------------------------------------------ *)
(* Coherence model                                                     *)
(* ------------------------------------------------------------------ *)

let em = P.energy_model

(* Install [line] in [core]'s private cache, evicting (and de-registering)
   whatever direct-mapped slot it lands on. *)
let install_priv sim core line =
  let slot = line land sim.priv_mask in
  let old = sim.priv.(core).(slot) in
  if old >= 0 && old <> line then begin
    let ols = Ascy_util.Vec.get sim.lines old in
    Ascy_util.Bits.remove ols.sharers core;
    if ols.owner = core then ols.owner <- -1 (* silent writeback *)
  end;
  sim.priv.(core).(slot) <- line

let in_priv sim core line = sim.priv.(core).(line land sim.priv_mask) = line

let install_llc sim socket line = sim.llc_tags.(socket).(line land sim.llc_mask) <- line
let in_llc sim socket line = sim.llc_tags.(socket).(line land sim.llc_mask) = line

(* Append one event to [tid]'s trace ring (caller checks [sim.tracing]). *)
let trace_push sim tid cycle ev =
  let b = sim.trace.(tid) in
  b.tr_buf.(b.tr_next) <- { tr_cycle = cycle; tr_ev = ev };
  b.tr_next <- (b.tr_next + 1) mod b.tr_cap;
  if b.tr_n < b.tr_cap then b.tr_n <- b.tr_n + 1;
  b.tr_total <- b.tr_total + 1

(* Charge and account one memory access; returns its latency in cycles.
   [tcls] is threaded out so the tracer can record which coherence path
   served the access. *)
let access_cost sim th kind line =
  let p = sim.plat in
  let ls = Ascy_util.Vec.get sim.lines line in
  let c = th.core and s = th.socket in
  let cnt = sim.counters.(th.tid) in
  cnt.accesses <- cnt.accesses + 1;
  (match kind with Write -> cnt.writes <- cnt.writes + 1 | Read | Rmw -> ());
  (match sim.observer with Some o -> o.obs_access th.tid kind line | None -> ());
  let tcls = ref Tc_l1 in
  let have_copy = in_priv sim c line && (ls.owner = c || Ascy_util.Bits.mem ls.sharers c) in
  let lat =
    match kind with
    | Read ->
        if have_copy then begin
          cnt.l1 <- cnt.l1 + 1;
          cnt.energy_nj <- cnt.energy_nj +. em.P.nj_l1;
          p.P.c_l1
        end
        else begin
          let lat =
            if ls.owner >= 0 then begin
              (* dirty elsewhere: cache-to-cache transfer, owner demotes *)
              let osock = ls.owner / P.cores_per_socket p in
              Ascy_util.Bits.add ls.sharers ls.owner;
              ls.owner <- -1;
              cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
              if osock = s then begin
                cnt.c2c_local <- cnt.c2c_local + 1;
                tcls := Tc_c2c_local;
                p.P.c_c2c_local
              end
              else begin
                cnt.c2c_remote <- cnt.c2c_remote + 1;
                tcls := Tc_c2c_remote;
                p.P.c_c2c_remote
              end
            end
            else if in_llc sim s line then begin
              cnt.llc <- cnt.llc + 1;
              cnt.energy_nj <- cnt.energy_nj +. em.P.nj_llc;
              tcls := Tc_llc;
              p.P.c_llc
            end
            else begin
              (* clean copy on a remote socket? *)
              let remote = ref false in
              for os = 0 to p.P.sockets - 1 do
                if os <> s && in_llc sim os line then remote := true
              done;
              if !remote then begin
                cnt.llc_remote <- cnt.llc_remote + 1;
                cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
                tcls := Tc_llc_remote;
                p.P.c_llc_remote
              end
              else begin
                cnt.mem <- cnt.mem + 1;
                cnt.energy_nj <- cnt.energy_nj +. em.P.nj_mem;
                tcls := Tc_mem;
                p.P.c_mem
              end
            end
          in
          Ascy_util.Bits.add ls.sharers c;
          install_priv sim c line;
          install_llc sim s line;
          lat
        end
    | Write | Rmw ->
        let base =
          if ls.owner = c && in_priv sim c line then begin
            cnt.l1 <- cnt.l1 + 1;
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_l1;
            p.P.c_l1
          end
          else if ls.owner >= 0 then begin
            let osock = ls.owner / P.cores_per_socket p in
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
            if osock = s then begin
              cnt.c2c_local <- cnt.c2c_local + 1;
              tcls := Tc_c2c_local;
              p.P.c_c2c_local
            end
            else begin
              cnt.c2c_remote <- cnt.c2c_remote + 1;
              tcls := Tc_c2c_remote;
              p.P.c_c2c_remote
            end
          end
          else if not (Ascy_util.Bits.is_empty ls.sharers) || in_llc sim s line then begin
            (* upgrade: invalidate sharers; pay more if any are remote *)
            let remote_sharer =
              Ascy_util.Bits.exists (fun core -> core / P.cores_per_socket p <> s) ls.sharers
            in
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_transfer;
            if remote_sharer then begin
              cnt.llc_remote <- cnt.llc_remote + 1;
              tcls := Tc_llc_remote;
              p.P.c_llc_remote
            end
            else begin
              cnt.llc <- cnt.llc + 1;
              tcls := Tc_llc;
              p.P.c_llc
            end
          end
          else begin
            cnt.mem <- cnt.mem + 1;
            cnt.energy_nj <- cnt.energy_nj +. em.P.nj_mem;
            tcls := Tc_mem;
            p.P.c_mem
          end
        in
        (* Invalidate every other copy; this write owns the line. *)
        Ascy_util.Bits.clear ls.sharers;
        ls.owner <- c;
        install_priv sim c line;
        install_llc sim s line;
        let extra =
          match kind with
          | Rmw ->
              cnt.rmw <- cnt.rmw + 1;
              p.P.c_atomic
          | Read | Write -> 0
        in
        base + extra
  in
  (* transient NUMA degradation: scale the memory latency (not the
     instruction overhead) while the thread's socket is slowed *)
  let lat =
    if sim.any_fault && sim.slow_until.(s) > sim.decisions then
      int_of_float (float_of_int lat *. sim.slow_factor.(s))
    else lat
  in
  let instr = int_of_float (float_of_int p.P.c_instr *. th.instr_scale) in
  cnt.energy_nj <- cnt.energy_nj +. em.P.nj_instr;
  if sim.tracing then trace_push sim th.tid th.clock (T_access (kind, line, !tcls));
  let j = if sim.jitter > 0 then Ascy_util.Xorshift.below sim.rng (sim.jitter + 1) else 0 in
  lat + instr + j

(* ------------------------------------------------------------------ *)
(* Effects & the MEMORY instance                                       *)
(* ------------------------------------------------------------------ *)

type _ Effect.t += Access : access_kind * int -> unit Effect.t | Work_eff : int -> unit Effect.t

exception Txn_abort

(* Transaction capacity: lines an L1-resident read/write set can hold. *)
let txn_capacity = 64

(* Account one access inside a transaction: abort on conflict (line in
   modified state in another core's cache) or capacity overflow; charge a
   private-hit or LLC-hit estimate.  No coherence state changes until
   commit. *)
let txn_access sim (tx : txn_state) kind line =
  let th = sim.threads.(sim.cur) in
  let ls = Ascy_util.Vec.get sim.lines line in
  if ls.owner >= 0 && ls.owner <> th.core then raise Txn_abort;
  if not (List.mem line tx.t_lines) then begin
    tx.t_nlines <- tx.t_nlines + 1;
    if tx.t_nlines > txn_capacity then raise Txn_abort;
    tx.t_lines <- line :: tx.t_lines
  end;
  (match kind with
  | Write | Rmw -> if not (List.mem line tx.t_written) then tx.t_written <- line :: tx.t_written
  | Read -> ());
  let base = if in_priv sim th.core line then sim.plat.P.c_l1 else sim.plat.P.c_llc in
  tx.t_cost <- tx.t_cost + base + sim.plat.P.c_instr

let running () = match !current with Some sim -> sim.cur >= 0 | None -> false

let the_sim () =
  match !current with
  | Some sim -> sim
  | None -> failwith "Sim: no simulation installed (use Sim.with_sim)"

(** Install (or clear) the analysis {!observer} of [sim].  The hook costs
    one option test per access when unset. *)
let set_observer sim obs = sim.observer <- obs

(* Report an RMW outcome to the observer.  Called after the [Rmw] access
   effect returned, i.e. after the access was committed and charged, on
   the same (still-running) simulated thread. *)
let notify_rmw ok =
  match !current with
  | Some sim when sim.cur >= 0 && sim.txn = None -> (
      match sim.observer with Some o -> o.obs_rmw sim.cur ok | None -> ())
  | _ -> ()

(** The {!Memory.S} implementation backed by the installed simulation.
    Cells created while a simulation is installed but no simulated thread
    is running (structure setup) cost nothing and start uncached. *)
module Mem : Memory.S with type line = int = struct
  type line = int

  let new_line () = new_line_id (the_sim ())

  type 'a r = { line : int; mutable v : 'a }

  (* Route an access: inside a transaction it is buffered/accounted by
     txn_access; otherwise it is an effect handled by the scheduler. *)
  let access kind line =
    match !current with
    | Some sim when sim.cur >= 0 -> (
        match sim.txn with
        | Some tx -> txn_access sim tx kind line
        | None -> Effect.perform (Access (kind, line)))
    | _ -> ()

  let in_txn () = match !current with Some sim -> sim.txn | None -> None

  let log_undo r =
    match in_txn () with
    | Some tx ->
        let old = r.v in
        tx.t_undo <- (fun () -> r.v <- old) :: tx.t_undo
    | None -> ()

  let make line v =
    access Write line;
    { line; v }

  let make_fresh v = make (new_line ()) v

  let get r =
    access Read r.line;
    r.v

  let set r v =
    access Write r.line;
    log_undo r;
    r.v <- v

  let cas r expected desired =
    access Rmw r.line;
    if r.v == expected then begin
      log_undo r;
      r.v <- desired;
      notify_rmw true;
      true
    end
    else begin
      notify_rmw false;
      false
    end

  let fetch_and_add r n =
    access Rmw r.line;
    let old = r.v in
    log_undo r;
    r.v <- old + n;
    notify_rmw true;
    old

  let touch line = access Read line

  let work n =
    match !current with
    | Some sim when sim.cur >= 0 -> (
        match sim.txn with
        | Some tx -> tx.t_cost <- tx.t_cost + n
        | None -> Effect.perform (Work_eff n))
    | _ -> ()

  let cpu_relax () = work 6

  let self () =
    let sim = the_sim () in
    if sim.cur < 0 then 0 else sim.cur

  let max_threads () = (the_sim ()).nthreads

  let emit code =
    let sim = the_sim () in
    if sim.cur >= 0 then begin
      sim.events.(sim.cur).(code) <- sim.events.(sim.cur).(code) + 1;
      match sim.observer with Some o -> o.obs_event sim.cur code | None -> ()
    end

  let txn f =
    match !current with
    | Some sim when sim.cur >= 0 && sim.txn = None ->
        let tx = { t_cost = sim.plat.P.c_atomic; t_undo = []; t_lines = []; t_written = []; t_nlines = 0 } in
        sim.txn <- Some tx;
        (match f () with
        | v ->
            sim.txn <- None;
            (* commit: written lines become exclusively ours *)
            let th = sim.threads.(sim.cur) in
            List.iter
              (fun line ->
                let ls = Ascy_util.Vec.get sim.lines line in
                Ascy_util.Bits.clear ls.sharers;
                ls.owner <- th.core;
                install_priv sim th.core line;
                install_llc sim th.socket line)
              tx.t_written;
            Effect.perform (Work_eff (tx.t_cost + sim.plat.P.c_atomic));
            Some v
        | exception Txn_abort ->
            sim.txn <- None;
            List.iter (fun undo -> undo ()) tx.t_undo;
            sim.counters.(sim.cur).rmw <- sim.counters.(sim.cur).rmw + 1;
            Effect.perform (Work_eff (tx.t_cost + (2 * sim.plat.P.c_atomic)));
            None)
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

(* Binary min-heap of thread ids keyed by thread clocks (ties by tid for
   determinism). *)
module Heap = struct
  type h = { mutable a : int array; mutable n : int; key : int -> int }

  let create cap key = { a = Array.make (max cap 1) 0; n = 0; key }
  let less h x y = h.key x < h.key y || (h.key x = h.key y && x < y)

  let push h x =
    if h.n = Array.length h.a then begin
      let a = Array.make (2 * h.n) 0 in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- x;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && less h h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    assert (h.n > 0);
    let top = h.a.(0) in
    h.n <- h.n - 1;
    if h.n > 0 then begin
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < h.n && less h h.a.(l) h.a.(!s) then s := l;
        if r < h.n && less h h.a.(r) h.a.(!s) then s := r;
        if !s = !i then continue := false
        else begin
          let tmp = h.a.(!s) in
          h.a.(!s) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !s
        end
      done
    end;
    top

  let is_empty h = h.n = 0
end

exception Thread_failure of int * exn * string

(** [run ?scheduler sim bodies] runs one simulated thread per element of
    [bodies] (length must equal [nthreads]) to completion.  Deterministic
    for a given seed.  Returns the largest thread clock (the makespan, in
    cycles).

    Without [scheduler], threads are resumed smallest-clock-first (plus
    optional jitter folded into access costs) — the free-running hardware
    model.  With [scheduler], every resume decision is delegated to it:
    the callback sees each runnable thread's next {!action} and picks the
    thread to resume, which makes the simulator a controlled concurrency
    tester (see [Ascy_sct]).

    [faults] injects {!fault_event}s keyed by decision index (see
    {!decisions}); with an empty plan both scheduling modes behave
    bit-for-bit as before. *)
let run ?scheduler ?(faults = []) sim bodies =
  if Array.length bodies <> sim.nthreads then invalid_arg "Sim.run: wrong number of bodies";
  (match !current with
  | Some s when s != sim -> failwith "Sim.run: a different simulation is installed"
  | _ -> current := Some sim);
  Array.iter
    (fun th ->
      th.clock <- 0;
      th.pend <- P_none;
      th.cont <- None;
      th.finished <- false;
      th.crashed <- false;
      th.stalled_until <- 0)
    sim.threads;
  sim.decisions <- 0;
  sim.any_fault <- faults <> [];
  sim.pending_faults <- List.stable_sort (fun a b -> compare a.fe_at b.fe_at) faults;
  sim.crashed_tids <- [];
  Array.fill sim.slow_factor 0 (Array.length sim.slow_factor) 1.0;
  Array.fill sim.slow_until 0 (Array.length sim.slow_until) 0;
  List.iter
    (fun fe ->
      match fe.fe_fault with
      | F_crash | F_stall _ ->
          if fe.fe_tid < 0 || fe.fe_tid >= sim.nthreads then
            invalid_arg "Sim.run: fault targets an unknown thread"
      | F_numa_slow _ ->
          if fe.fe_tid < 0 || fe.fe_tid >= sim.plat.P.sockets then
            invalid_arg "Sim.run: fault targets an unknown socket")
    faults;
  let handler : (unit, step) Effect.Deep.handler =
    {
      retc = (fun () -> Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Access (kind, line) ->
              Some
                (fun (k : (a, step) Effect.Deep.continuation) ->
                  let th = sim.threads.(sim.cur) in
                  th.pend <- P_access (kind, line);
                  th.cont <- Some k;
                  Blocked)
          | Work_eff n ->
              Some
                (fun (k : (a, step) Effect.Deep.continuation) ->
                  let th = sim.threads.(sim.cur) in
                  th.pend <- P_work n;
                  th.cont <- Some k;
                  Blocked)
          | _ -> None);
    }
  in
  let fresh = Array.map (fun b -> Some b) bodies in
  sim.live <- sim.nthreads;
  let makespan = ref 0 in
  (* Resume [tid]: commit its pending access (charging latency), run it
     to its next effect, and record completion.  Returns the step kind. *)
  let exec_step tid =
    let th = sim.threads.(tid) in
    sim.cur <- tid;
    sim.decisions <- sim.decisions + 1;
    let step =
      match fresh.(tid) with
      | Some body ->
          fresh.(tid) <- None;
          (try Effect.Deep.match_with body () handler
           with e -> raise (Thread_failure (tid, e, Printexc.get_backtrace ())))
      | None -> (
          (* commit the pending access, charge its latency, resume *)
          (match th.pend with
          | P_access (kind, line) -> th.clock <- th.clock + access_cost sim th kind line
          | P_work n ->
              th.clock <- th.clock + int_of_float (float_of_int n *. th.instr_scale)
          | P_none -> ());
          th.pend <- P_none;
          match th.cont with
          | Some k ->
              th.cont <- None;
              (try Effect.Deep.continue k ()
               with e -> raise (Thread_failure (tid, e, Printexc.get_backtrace ())))
          | None -> Finished)
    in
    (match step with
    | Finished ->
        th.finished <- true;
        sim.live <- sim.live - 1;
        if th.clock > !makespan then makespan := th.clock
    | Blocked -> ());
    sim.cur <- -1;
    step
  in
  (* Crash-stop [tid]: it never runs again.  A parked continuation is
     discontinued with {!Thread_killed} so wrapping test code can clean
     up; CSDS code installs no such handlers, so anything the corpse
     held — a lock, a half-linked node — stays exactly as it died.  If
     the body swallows the kill, its replacement continuation is
     dropped: the thread is dead either way. *)
  let kill tid =
    let th = sim.threads.(tid) in
    if not (th.finished || th.crashed) then begin
      th.crashed <- true;
      th.pend <- P_none;
      sim.live <- sim.live - 1;
      sim.crashed_tids <- tid :: sim.crashed_tids;
      fresh.(tid) <- None;
      match th.cont with
      | None -> ()
      | Some k ->
          th.cont <- None;
          sim.cur <- tid;
          (try
             match Effect.Deep.discontinue k Thread_killed with
             | Finished | Blocked -> ()
           with
          | Thread_killed -> ()
          | e ->
              sim.cur <- -1;
              raise (Thread_failure (tid, e, Printexc.get_backtrace ())));
          th.cont <- None;
          sim.cur <- -1
    end
  in
  let apply_due_faults () =
    let rec go () =
      match sim.pending_faults with
      | fe :: rest when fe.fe_at <= sim.decisions ->
          sim.pending_faults <- rest;
          (match fe.fe_fault with
          | F_crash -> kill fe.fe_tid
          | F_stall n ->
              let th = sim.threads.(fe.fe_tid) in
              if not (th.finished || th.crashed) then
                th.stalled_until <- sim.decisions + max 0 n
          | F_numa_slow { factor; window } ->
              sim.slow_factor.(fe.fe_tid) <- factor;
              sim.slow_until.(fe.fe_tid) <- sim.decisions + max 0 window);
          go ()
      | _ -> ()
    in
    go ()
  in
  (match scheduler with
  | None when not sim.any_fault ->
      let heap = Heap.create sim.nthreads (fun tid -> sim.threads.(tid).clock) in
      for tid = 0 to sim.nthreads - 1 do
        Heap.push heap tid
      done;
      while not (Heap.is_empty heap) do
        let tid = Heap.pop heap in
        match exec_step tid with Finished -> () | Blocked -> Heap.push heap tid
      done
  | None ->
      (* Fault-aware free-running loop.  Stalled threads park on a
         waiting list instead of the clock heap; crashed threads are
         dropped wherever they surface.  When every live thread is
         stalled, the decision counter fast-forwards to the earliest
         expiry (nothing else can make progress in between). *)
      let heap = Heap.create sim.nthreads (fun tid -> sim.threads.(tid).clock) in
      for tid = 0 to sim.nthreads - 1 do
        Heap.push heap tid
      done;
      let waiting = ref [] in
      let release_expired () =
        let still, ready =
          List.partition
            (fun tid ->
              let th = sim.threads.(tid) in
              (not th.crashed) && th.stalled_until > sim.decisions)
            !waiting
        in
        waiting := still;
        List.iter (fun tid -> if not sim.threads.(tid).crashed then Heap.push heap tid) ready
      in
      let running = ref true in
      while !running do
        apply_due_faults ();
        release_expired ();
        if Heap.is_empty heap then
          match !waiting with
          | [] -> running := false
          | w ->
              let wake =
                List.fold_left (fun acc tid -> min acc sim.threads.(tid).stalled_until) max_int w
              in
              sim.decisions <- max sim.decisions wake
        else begin
          let tid = Heap.pop heap in
          let th = sim.threads.(tid) in
          if th.crashed then ()
          else if th.stalled_until > sim.decisions then waiting := tid :: !waiting
          else match exec_step tid with Finished -> () | Blocked -> Heap.push heap tid
        end
      done
  | Some choose ->
      let next_action tid =
        if fresh.(tid) <> None then A_start
        else
          match sim.threads.(tid).pend with
          | P_access (kind, line) -> A_access (kind, line)
          | P_work n -> A_work n
          | P_none -> A_start
      in
      let scratch = Array.make sim.nthreads (0, A_start) in
      while sim.live > 0 do
        if sim.any_fault then apply_due_faults ();
        if sim.live > 0 then begin
          let n = ref 0 in
          for tid = 0 to sim.nthreads - 1 do
            let th = sim.threads.(tid) in
            if (not th.finished) && (not th.crashed) && th.stalled_until <= sim.decisions
            then begin
              scratch.(!n) <- (tid, next_action tid);
              incr n
            end
          done;
          if !n = 0 then begin
            (* every live thread is stalled: jump to the earliest expiry *)
            let wake = ref max_int in
            for tid = 0 to sim.nthreads - 1 do
              let th = sim.threads.(tid) in
              if (not th.finished) && (not th.crashed) && th.stalled_until < !wake then
                wake := th.stalled_until
            done;
            sim.decisions <- max sim.decisions !wake
          end
          else begin
            let runnable = Array.sub scratch 0 !n in
            let tid = choose runnable in
            if
              tid < 0 || tid >= sim.nthreads || sim.threads.(tid).finished
              || sim.threads.(tid).crashed
            then
              invalid_arg (Printf.sprintf "Sim.run: scheduler chose non-runnable thread %d" tid);
            ignore (exec_step tid)
          end
        end
      done);
  sim.cur <- -1;
  !makespan

(** Scheduling decisions executed so far in the current/last {!run}.
    This is the coordinate system fault events ([fe_at]) live in: one
    decision per resumed simulator step, shared with SCT schedule
    prefixes so fault plans compose with recorded schedules. *)
let decisions sim = sim.decisions

let is_crashed sim tid = sim.threads.(tid).crashed

(** Tids crash-stopped by injected faults, in injection order. *)
let crashed_tids sim = List.rev sim.crashed_tids

(** Install every allocated line into every socket's LLC, emulating the
    steady state a long-running benchmark reaches (the paper measures
    5-second runs): first accesses pay LLC latency, not DRAM, and private
    caches still start cold. *)
let warm sim =
  for line = 0 to Ascy_util.Vec.length sim.lines - 1 do
    for s = 0 to sim.plat.P.sockets - 1 do
      install_llc sim s line
    done
  done

(** [with_sim ?seed ?jitter ~platform ~nthreads f] installs a fresh
    simulation, runs [f sim] (which typically builds a structure through
    {!Mem} and then calls {!run}), and uninstalls it. *)
let with_sim ?seed ?jitter ?trace_capacity ~platform ~nthreads f =
  let sim = create ?seed ?jitter ?trace_capacity ~platform ~nthreads () in
  let saved = !current in
  current := Some sim;
  Fun.protect ~finally:(fun () -> current := saved) (fun () -> f sim)

(** Current clock (cycles) of the executing simulated thread. *)
let now () =
  let sim = the_sim () in
  if sim.cur < 0 then 0 else sim.threads.(sim.cur).clock

(* ------------------------------------------------------------------ *)
(* Tracing front-end                                                   *)
(* ------------------------------------------------------------------ *)

(** Per-thread trace ring buffers.  Enabled by passing [~trace_capacity]
    (entries retained per thread) to {!create} / {!with_sim}; when off
    — the default — the only cost on the access path is one boolean
    test.  The simulator records every memory access with the coherence
    path that served it; the harness brackets operations with
    {!Trace.op_start} / {!Trace.op_end}. *)
module Trace = struct
  type event = trace_event =
    | T_op_start of int
    | T_op_end of int
    | T_access of access_kind * int * trace_class

  type entry = trace_entry = { tr_cycle : int; tr_ev : trace_event }

  let class_name = trace_class_name

  let enabled sim = sim.tracing

  (* Marks are no-ops unless a traced simulation is installed and a
     simulated thread is executing. *)
  let mark ev =
    match !current with
    | Some sim when sim.tracing && sim.cur >= 0 ->
        trace_push sim sim.cur sim.threads.(sim.cur).clock ev
    | _ -> ()

  (* Op brackets also notify the installed observer, whether or not the
     rings are on: profiling must not require (or pay for) full traces. *)
  let notify_op f code =
    match !current with
    | Some sim when sim.cur >= 0 -> (
        match sim.observer with Some o -> f o sim.cur code | None -> ())
    | _ -> ()

  let op_start code =
    notify_op (fun o tid code -> o.obs_op_start tid code) code;
    mark (T_op_start code)

  let op_end code =
    notify_op (fun o tid code -> o.obs_op_end tid code) code;
    mark (T_op_end code)

  (** Events ever pushed to [tid]'s ring (retained or overwritten). *)
  let total sim tid = if sim.tracing then sim.trace.(tid).tr_total else 0

  (** Retained entries of [tid], oldest first. *)
  let entries sim tid =
    if not sim.tracing then []
    else begin
      let b = sim.trace.(tid) in
      let start = (b.tr_next - b.tr_n + b.tr_cap) mod b.tr_cap in
      List.init b.tr_n (fun i -> b.tr_buf.((start + i) mod b.tr_cap))
    end

  let kind_name = function Read -> "R" | Write -> "W" | Rmw -> "RMW"

  let pp_entry ?(op_name = string_of_int) tid e =
    match e.tr_ev with
    | T_op_start code -> Printf.sprintf "t%-3d @%-10d op_start %s" tid e.tr_cycle (op_name code)
    | T_op_end code -> Printf.sprintf "t%-3d @%-10d op_end   %s" tid e.tr_cycle (op_name code)
    | T_access (kind, line, cls) ->
        Printf.sprintf "t%-3d @%-10d %-3s line=%-6d %s" tid e.tr_cycle (kind_name kind) line
          (class_name cls)

  let entry_json tid e =
    let module J = Ascy_util.Json in
    let common = [ ("tid", J.Int tid); ("cycle", J.Int e.tr_cycle) ] in
    J.Obj
      (match e.tr_ev with
      | T_op_start code -> common @ [ ("ev", J.String "op_start"); ("op", J.Int code) ]
      | T_op_end code -> common @ [ ("ev", J.String "op_end"); ("op", J.Int code) ]
      | T_access (kind, line, cls) ->
          common
          @ [
              ("ev", J.String "access");
              ("kind", J.String (kind_name kind));
              ("line", J.Int line);
              ("class", J.String (class_name cls));
            ])

  (** [dump ?json ?op_name oc sim] renders every thread's retained
      entries, oldest first per thread.  Text (default) is one line per
      event; [~json:true] emits one JSON array of event objects. *)
  let dump ?(json = false) ?op_name oc sim =
    if json then begin
      let entries_json =
        List.concat
          (List.init (Array.length sim.trace) (fun tid ->
               List.map (entry_json tid) (entries sim tid)))
      in
      output_string oc (Ascy_util.Json.to_string ~indent:1 (Ascy_util.Json.List entries_json));
      output_string oc "\n"
    end
    else
      Array.iteri
        (fun tid b ->
          Printf.fprintf oc "-- thread %d: %d events (%d retained)\n" tid b.tr_total b.tr_n;
          List.iter (fun e -> Printf.fprintf oc "%s\n" (pp_entry ?op_name tid e)) (entries sim tid))
        sim.trace
end

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type run_stats = {
  makespan_cycles : int;
  seconds : float;
  accesses : int;
  hits_l1 : int;
  hits_llc : int;
  transfers_local : int;
  transfers_remote : int;
  fetch_remote : int;
  misses_mem : int;
  atomics : int;
  stores : int;  (** plain (non-RMW) stores; stores + atomics = all writes *)
  energy_j : float;  (** dynamic + static energy over the makespan *)
  power_w : float;
  events : int array;
}

(** One thread's memory-event counters (the per-thread slice of
    {!run_stats}): every coherence service class — the [Tc_*] trace
    classes — plus plain stores and RMWs, accumulated unconditionally, so
    stores-per-op and cache-line-transfer breakdowns never require the
    trace rings. *)
type thread_stats = {
  t_tid : int;
  t_accesses : int;
  t_l1 : int;
  t_llc : int;
  t_c2c_local : int;
  t_c2c_remote : int;
  t_llc_remote : int;
  t_mem : int;
  t_atomics : int;
  t_stores : int;
  t_energy_nj : float;
}

(** Per-thread counters of the last {!run}, ascending tid. *)
let per_thread_stats sim =
  Array.mapi
    (fun tid (c : mem_counters) ->
      {
        t_tid = tid;
        t_accesses = c.accesses;
        t_l1 = c.l1;
        t_llc = c.llc;
        t_c2c_local = c.c2c_local;
        t_c2c_remote = c.c2c_remote;
        t_llc_remote = c.llc_remote;
        t_mem = c.mem;
        t_atomics = c.rmw;
        t_stores = c.writes;
        t_energy_nj = c.energy_nj;
      })
    sim.counters

(** Aggregate statistics of the last {!run}.  [makespan] is the value
    {!run} returned. *)
let stats sim ~makespan =
  let seconds = float_of_int makespan /. (sim.plat.P.ghz *. 1e9) in
  let agg = fresh_counters () in
  Array.iter
    (fun (c : mem_counters) ->
      agg.accesses <- agg.accesses + c.accesses;
      agg.l1 <- agg.l1 + c.l1;
      agg.llc <- agg.llc + c.llc;
      agg.c2c_local <- agg.c2c_local + c.c2c_local;
      agg.c2c_remote <- agg.c2c_remote + c.c2c_remote;
      agg.llc_remote <- agg.llc_remote + c.llc_remote;
      agg.mem <- agg.mem + c.mem;
      agg.rmw <- agg.rmw + c.rmw;
      agg.writes <- agg.writes + c.writes;
      agg.energy_nj <- agg.energy_nj +. c.energy_nj)
    sim.counters;
  let busy_cores =
    let seen = Array.make sim.plat.P.cores false in
    Array.iter (fun th -> seen.(th.core) <- true) sim.threads;
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen
  in
  let static_j = em.P.w_static_core *. float_of_int busy_cores *. seconds in
  let energy_j = (agg.energy_nj *. 1e-9) +. static_j in
  let events = Array.make Event.count 0 in
  Array.iter (fun row -> Array.iteri (fun i v -> events.(i) <- events.(i) + v) row) sim.events;
  {
    makespan_cycles = makespan;
    seconds;
    accesses = agg.accesses;
    hits_l1 = agg.l1;
    hits_llc = agg.llc;
    transfers_local = agg.c2c_local;
    transfers_remote = agg.c2c_remote;
    fetch_remote = agg.llc_remote;
    misses_mem = agg.mem;
    atomics = agg.rmw;
    stores = agg.writes;
    energy_j;
    power_w = (if seconds > 0.0 then energy_j /. seconds else 0.0);
    events;
  }

(** All accesses that were not private-cache hits. *)
let misses st = st.hits_llc + st.transfers_local + st.transfers_remote + st.fetch_remote + st.misses_mem
