(** The shared-memory abstraction every CSDS in ASCYLIB-OCaml is written
    against.

    Algorithms are functors over {!S} so the same code runs in two modes:

    - {!Mem_native}: ['a r] is ['a Atomic.t]; programs execute on real
      OCaml 5 domains.  Used for unit tests, domain-based stress tests,
      examples, and the Bechamel micro-benchmarks.
    - {!Sim.Mem}: every access is an OCaml effect handled by a
      discrete-event multicore simulator with a cache-coherence cost model.
      Used to reproduce the paper's cross-platform scalability results and
      for deterministic schedule-fuzzing tests.

    Conventions:
    - [cas] uses {e physical} equality, like a pointer CAS in C.  Use it on
      immediates (ints, constant constructors) or on record/block values
      you previously read from the same cell.
    - A {!line} models a cache line.  Cells created with [make line v] on
      the same line contend as a unit in the simulator (false sharing,
      CLHT's single-line buckets).  [touch line] models reading immutable
      data (keys, values) that lives on the line; call it once per node
      visited during traversals.
    - [kcas] commits a multi-word CAS: every cell still holds its
      expected value (physical equality, as for [cas]) and all desired
      values are installed, or nothing is written.  Natively this is a
      Harris-style RDCSS/k-CAS with helping; under the simulator it is
      one atomic multi-line commit charged per touched line. *)

module type S = sig
  type line
  (** A modeled cache line (simulator) or unit (native). *)

  val new_line : unit -> line

  type 'a r
  (** A shared mutable cell. *)

  val make : line -> 'a -> 'a r
  (** [make line v] allocates a cell holding [v], placed on [line]. *)

  val make_fresh : 'a -> 'a r
  (** [make_fresh v] is [make (new_line ()) v]. *)

  val get : 'a r -> 'a
  val set : 'a r -> 'a -> unit

  val cas : 'a r -> 'a -> 'a -> bool
  (** [cas r expected desired] — atomic compare-and-swap with physical
      equality on [expected]. *)

  val fetch_and_add : int r -> int -> int
  (** Atomic fetch-and-add; returns the previous value. *)

  type kcas_op
  (** One cell/expected/desired triple of a multi-word CAS. *)

  val kcas_op : 'a r -> expected:'a -> desired:'a -> kcas_op
  (** [kcas_op r ~expected ~desired] — the triple, with the cell's value
      type hidden so triples over different cell types compose into one
      commit. *)

  val kcas : kcas_op list -> bool
  (** [kcas ops] atomically checks that every cell holds its expected
      value ({e physical} equality, as for {!cas}) and, if so, installs
      every desired value; otherwise writes nothing.  Returns success.
      All-or-nothing and linearizable on both backends.  [kcas []] is
      [true]; the same cell listed twice raises [Invalid_argument]. *)

  val touch : line -> unit
  (** Model a read of immutable data residing on [line]. *)

  val work : int -> unit
  (** Charge [n] cycles of local computation (no-op natively). *)

  val cpu_relax : unit -> unit
  (** Spin-wait hint. *)

  val self : unit -> int
  (** Dense id of the calling thread (domain or simulated thread). *)

  val max_threads : unit -> int
  (** Upper bound on thread ids, for sizing per-thread arrays. *)

  val emit : int -> unit
  (** Record one algorithm-level event (see {!Event}). *)

  val txn : (unit -> 'a) -> 'a option
  (** Attempt to run [f] as a best-effort hardware transaction (TSX-style
      lock elision).  [None] means the transaction did not run or
      aborted — the caller must fall back to its lock path.  Native
      OCaml has no HTM, so {!Mem_native} always returns [None]; the
      simulator executes [f] atomically, charges its accesses, and
      aborts on conflicts (a touched line owned by another core) or
      capacity overflow, rolling back buffered writes. *)
end
