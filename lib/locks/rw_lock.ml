(** Reader-writer spinlock (one word).

    State encoding: [0] free, [n > 0] that many readers, [-1] one writer.
    Used by the TBB-style hash table, whose buckets are protected by
    reader-writer locks (so even searches synchronize — deliberately
    violating ASCY1, which is the point of that baseline). *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module B = Backoff.Make (Mem)

  type t = int Mem.r

  let create line : t = Mem.make line 0
  let create_fresh () : t = Mem.make_fresh 0

  let read_acquire (t : t) =
    let b = B.create () in
    let rec loop () =
      let v = Mem.get t in
      if v >= 0 && Mem.cas t v (v + 1) then ()
      else begin
        B.once b;
        loop ()
      end
    in
    loop ();
    Mem.emit Ascy_mem.Event.lock

  let read_release (t : t) =
    let rec loop () =
      let v = Mem.get t in
      if not (Mem.cas t v (v - 1)) then loop ()
    in
    loop ()

  let write_acquire (t : t) =
    let b = B.create () in
    let rec loop () =
      if Mem.get t = 0 && Mem.cas t 0 (-1) then ()
      else begin
        (* a writer blocked here is waiting for the readers to drain —
           the structural reader-blocks-writer waiting of the rw design,
           not mere lock-holder contention *)
        Mem.emit Ascy_mem.Event.wait;
        B.once b;
        loop ()
      end
    in
    loop ();
    Mem.emit Ascy_mem.Event.lock

  let write_release (t : t) = Mem.set t 0
end
