(** Bounded exponential backoff for spin loops.

    Keeps contended spinning from melting the simulated (or real)
    interconnect; every CSDS lock in ASCYLIB-OCaml spins through this. *)

(* ascy-lint: allow-mutable-record — the backoff state is created and
   mutated by a single spinning thread; it is never shared. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  type t = { mutable cur : int; init : int; max : int }

  let create ?(init = 2) ?(max = 512) () = { cur = init; init; max }

  (** Spin for the current delay and double it (up to the bound). *)
  let once t =
    for _ = 1 to t.cur do
      Mem.cpu_relax ()
    done;
    if t.cur < t.max then t.cur <- t.cur * 2

  (** Return to the delay the instance was created with (or an explicit
      override). *)
  let reset ?init t = t.cur <- (match init with Some i -> i | None -> t.init)
end
