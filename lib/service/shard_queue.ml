(** Bounded multi-producer / single-consumer request ring, written
    against the shared-memory abstraction so the same queue runs inside
    the simulator (clients and shard workers as simulated threads, every
    access charged by the coherence model) and natively on OCaml domains.

    Design, chosen for crash-tolerant hand-off (rolling shard restarts
    inject {!Ascy_mem.Sim.fault}[.F_crash] into the consumer):

    - producers claim a ticket with one [fetch_and_add] on [tail], wait
      until the slot's previous occupant has been consumed (ring not
      full: [head + cap > ticket]), publish the payload, then announce
      it by writing [ticket + 1] into the slot's [ready] cell;
    - the {e single} consumer (the shard's lease holder) {e peeks} the
      item at [head] without advancing anything, applies it, and only
      then {e commits} by bumping [head] — one plain store.

    [head] is therefore the only consumer-side state: if the consumer
    crash-stops anywhere, a standby taking over the lease resumes from
    [head] and re-applies at most the one uncommitted in-flight request
    (the conservation oracle allows exactly that +-1 per crashed
    worker).  There is no consumer state that can wedge producers: they
    only ever wait on [head] progress, and [head] progress only needs
    {e some} live consumer.

    Payload and [ready] cells of one slot share a cache line (one line
    transfer hands a request from producer to consumer); [head] and
    [tail] live on their own lines. *)

(** Outcome of a non-blocking {!Make.try_enqueue}: [Enqueued w] carries
    the number of claim retries (contention, not fullness — the analog
    of {!Make.enqueue}'s wait count), [Overloaded] means the ring was
    full and the request was {e not} accepted.  Shared across [Mem]
    instantiations so harness code can pattern-match generically. *)
type enq_result = Enqueued of int | Overloaded

module Make (Mem : Ascy_mem.Memory.S) = struct
  type 'a t = {
    cap : int;
    slots : 'a option Mem.r array;
    ready : int Mem.r array;  (** [ticket + 1] once the slot holds that ticket's payload *)
    tail : int Mem.r;  (** next ticket to hand to a producer *)
    head : int Mem.r;  (** next ticket the consumer will apply *)
  }

  let create ~cap =
    if cap <= 0 then invalid_arg "Shard_queue.create: cap must be positive";
    let pairs =
      Array.init cap (fun _ ->
          let line = Mem.new_line () in
          (Mem.make line None, Mem.make line 0))
    in
    {
      cap;
      slots = Array.map fst pairs;
      ready = Array.map snd pairs;
      tail = Mem.make_fresh 0;
      head = Mem.make_fresh 0;
    }

  (** [enqueue q v] publishes [v]; spins (bounded by consumer progress)
      while the ring is full.  Returns the number of full-ring wait
      iterations, for the load generator's backpressure counters. *)
  let enqueue q v =
    let ticket = Mem.fetch_and_add q.tail 1 in
    let waits = ref 0 in
    while Mem.get q.head + q.cap <= ticket do
      incr waits;
      Mem.cpu_relax ()
    done;
    let i = ticket mod q.cap in
    Mem.set q.slots.(i) (Some v);
    Mem.set q.ready.(i) (ticket + 1);
    !waits

  (** [peek q] returns the request at [head] if one is published, without
      consuming it.  Consumer-only. *)
  let peek q =
    let h = Mem.get q.head in
    if Mem.get q.ready.(h mod q.cap) = h + 1 then Mem.get q.slots.(h mod q.cap) else None

  (** [commit q] consumes the previously peeked request — the single
      store that makes its application durable across a consumer crash.
      Consumer-only. *)
  let commit q =
    let h = Mem.get q.head in
    Mem.set q.head (h + 1)

  (** [try_enqueue q v] publishes [v] unless the ring is full, in which
      case it returns {!Overloaded} {e without} claiming a ticket —
      explicit backpressure instead of {!enqueue}'s producer spin.

      Fullness must be decided {e before} the claim: a producer that
      FAA-claimed a ticket and then abandoned it would wedge the ring
      (the consumer peeks tickets in order and would wait forever on the
      never-published slot).  So the claim is a [cas] on [tail] guarded
      by the fullness test; [head] only ever advances, so a ticket that
      passed the test when claimed still owns a free slot. *)
  let try_enqueue q v =
    let rec claim waits =
      let t = Mem.get q.tail in
      if Mem.get q.head + q.cap <= t then Overloaded
      else if Mem.cas q.tail t (t + 1) then begin
        let i = t mod q.cap in
        Mem.set q.slots.(i) (Some v);
        Mem.set q.ready.(i) (t + 1);
        Enqueued waits
      end
      else claim (waits + 1)
    in
    claim 0

  (** No ticket left unconsumed.  Meaningful once producers are done
      (the service closes shards only after every client finished). *)
  let is_empty q = Mem.get q.head >= Mem.get q.tail

  (** Published-but-unconsumed backlog (approximate under concurrency).
      This is the queue-depth signal the resilience layer's breaker and
      load-shed policies read. *)
  let length q = max 0 (Mem.get q.tail - Mem.get q.head)

  (** Ring capacity (the [~cap] it was created with). *)
  let capacity q = q.cap
end
