(** Run one service scenario inside the multicore simulator and collect
    the service-level metrics: per-shard throughput and batching
    behavior, sojourn (enqueue -> completion) and service-time latency
    distributions, fail-over counts, and — after runs that allow it —
    structural validation, per-key conservation, and a per-shard
    linearizability spot-check.

    Rolling-restart scenarios reuse the chaos engine's crash-stop fault
    plans as node failures: the scenario is first executed fault-free to
    calibrate its decision count, then re-executed with every shard
    primary crash-stopped at staggered decision indices, standbys taking
    over the shard lease.  Both executions are deterministic, so the
    whole scenario (including the derived fault plan) reproduces
    bit-for-bit from the seed. *)

module Sim = Ascy_mem.Sim
module P = Ascy_platform.Platform
module H = Ascy_util.Histogram
module W = Ascy_harness.Workload
module Engine = Ascy_harness.Engine
module History = Ascy_harness.History
module Registry = Ascylib.Registry

type shard_stat = {
  ss_sid : int;
  ss_applied : int;
  ss_search_ok : int;
  ss_search_miss : int;
  ss_insert_ok : int;
  ss_insert_fail : int;
  ss_remove_ok : int;
  ss_remove_fail : int;
  ss_batches : int;
  ss_max_batch : int;
  ss_takeovers : int;
  ss_throughput_mops : float;
  ss_sojourn : H.t;  (** enqueue -> completion, ns *)
  ss_service : H.t;  (** apply time alone, ns *)
  ss_final_size : int;
}

type result = {
  scenario : Scenario.t;
  algorithm : string;
  platform : string;
  nthreads : int;
  seed : int;
  model : string;
  ops_requested : int;
  ops_applied : int;  (** >= requested when a standby re-applied an in-flight request *)
  seconds : float;
  throughput_mops : float;
  shard_stats : shard_stat array;
  sojourn : H.t;  (** all shards merged, ns *)
  service : H.t;
  enq_waits : int;  (** producer full-ring wait iterations (backpressure) *)
  takeovers : int;
  crashed : int list;  (** crash-stopped tids (primaries), injection order *)
  faults : Sim.fault_event list;
  checked : bool;  (** post-run validation + conservation oracles ran *)
  violation : string option;  (** their verdict ([None] = clean or unchecked) *)
  linearizable : bool option;  (** shard-0 history spot-check, when requested *)
  final_size : int;
  stats : Sim.run_stats;
  resil : Resilience.config;  (** the resilience policy the run used *)
  rmetrics : Resilience.metrics;  (** merged resilience counters (zero when disabled) *)
}

let hist_kind = function
  | W.Search -> History.Search
  | W.Insert -> History.Insert
  | W.Remove -> History.Remove

(* Staggered crash plan over the first half of the calibrated run: the
   primary of shard [sid] dies at (sid+1)/(2(nshards+1)) of the
   fault-free decision count — a rolling wave of node failures. *)
let restart_plan (sc : Scenario.t) ~decisions =
  List.init sc.Scenario.nshards (fun sid ->
      {
        Sim.fe_at = max 1 (decisions * (sid + 1) / (2 * (sc.Scenario.nshards + 1)));
        fe_tid = Cluster.primary_tid sc sid;
        fe_fault = Sim.F_crash;
      })

(** The queue-layer fault matrix: a named plan generator per gray-failure
    mode, each a function of the calibrated fault-free decision count so
    the events land inside the run and the whole plan lives in the same
    decision coordinate system as crash plans and SCT schedules (one
    replay artifact, composable with {!restart_plan}). *)
module Fault_matrix = struct
  (* [spread n] — n decision indices evenly spread over the middle 60%
     of the calibrated run, cycling over client tids: message faults
     target client send boundaries. *)
  let spread (sc : Scenario.t) ~decisions ~n mk =
    List.init n (fun i ->
        let at = max 1 (decisions * (2 * n + (i * 6)) / (n * 10)) in
        let tid = i mod sc.Scenario.nclients in
        mk ~at ~tid)

  let drop sc ~decisions ~n =
    spread sc ~decisions ~n (fun ~at ~tid ->
        { Sim.fe_at = at; fe_tid = tid; fe_fault = Sim.F_msg Sim.Msg_drop })

  let dup sc ~decisions ~n =
    spread sc ~decisions ~n (fun ~at ~tid ->
        { Sim.fe_at = at; fe_tid = tid; fe_fault = Sim.F_msg Sim.Msg_dup })

  let delay sc ~decisions ~n =
    spread sc ~decisions ~n (fun ~at ~tid ->
        { Sim.fe_at = at; fe_tid = tid; fe_fault = Sim.F_msg (Sim.Msg_delay 2) })

  (* Gray failure: shard 0's primary's socket runs its memory accesses
     [factor] slower for a window in the middle of the run — the
     breaker/deadline machinery, not the fault engine, has to notice. *)
  let slow_shard ?(factor = 8.0) (sc : Scenario.t) ~platform ~decisions =
    let tid = Cluster.primary_tid sc 0 in
    let socket = P.socket_of platform tid in
    [
      {
        Sim.fe_at = max 1 (decisions / 4);
        fe_tid = socket;
        fe_fault = Sim.F_numa_slow { factor; window = max 1 (decisions / 2) };
      };
    ]

  (** [plan name sc ~platform ~decisions] — the named fault plan of the
      resilience matrix, scaled to the calibrated decision count.  On a
      restart scenario the rolling {!restart_plan} crashes are composed
      on top by {!run}, so e.g. ("drop" x rolling-restart) exercises
      message loss during fail-over. *)
  let plan name (sc : Scenario.t) ~platform ~decisions =
    let n = max 4 (Scenario.total_ops sc / 16) in
    match name with
    | "none" -> []
    | "drop" -> drop sc ~decisions ~n
    | "dup" -> dup sc ~decisions ~n
    | "delay" -> delay sc ~decisions ~n
    | "slow-shard" -> slow_shard sc ~platform ~decisions
    | other -> invalid_arg (Printf.sprintf "unknown fault matrix entry %S" other)

  let names = [ "none"; "drop"; "dup"; "delay"; "slow-shard" ]
end

(** [run ?seed ?model ?platform ?check ?spotcheck ?resil ?fault_plan sc]
    executes scenario [sc] and returns every service metric of the run.
    [check] (default: on) runs post-run structural validation and
    conservation — plus the delivery oracles when [resil] is enabled;
    [spotcheck] additionally records shard 0's applied operations as a
    history and checks it for linearizability (keep the per-key
    operation count under {!History.max_ops_per_key}).

    [resil] (default: disabled, the bit-for-bit legacy path) switches
    the cluster to the resilient request layer.  [fault_plan], given the
    calibrated fault-free decision count, returns extra fault events —
    typically a {!Fault_matrix} plan — which are composed with the
    scenario's own rolling-restart crashes; providing one forces the
    calibrate-then-fault double execution even on restart-free
    scenarios. *)
let run ?(seed = 1) ?(model = Sim.default_model) ?(platform = P.xeon20) ?(check = true)
    ?(spotcheck = false) ?(resil = Resilience.disabled) ?fault_plan (sc : Scenario.t) =
  let (module A : Ascy_core.Set_intf.MAKER) = (Registry.by_name sc.Scenario.algo).Registry.maker in
  let module C = Cluster.Make (Sim.Mem) (A) in
  let nthreads = Scenario.nthreads sc in
  let run_once ~faults ~want_result =
    let cfg = { (Engine.default ~platform ~nthreads) with seed; model; faults } in
    Engine.with_session cfg (fun session ->
        let t = C.create ~resil sc in
        C.prefill t ~seed;
        Sim.warm session.Engine.sim;
        let history = if spotcheck && want_result then Some (History.create ()) else None in
        (match history with
        | Some h ->
            Hashtbl.iter
              (fun k () ->
                if Router.route sc.Scenario.routing ~nshards:sc.Scenario.nshards k = 0 then
                  History.add_initial h k)
              t.C.prefilled
        | None -> ());
        let record =
          Option.map
            (fun h ~sid ~op ~key ~ok ~inv ~res ->
              if sid = 0 then History.record h ~tid:0 ~kind:(hist_kind op) ~key ~result:ok ~inv ~res)
            history
        in
        let knobs =
          {
            Cluster.default_knobs with
            Cluster.now = (fun () -> Sim.now ());
            cycle_ns = 1.0 /. platform.P.ghz;
            record;
            poll_fault = (fun () -> Sim.poll_msg_fault ());
          }
        in
        let makespan = Engine.run session (C.bodies t ~knobs ~seed) in
        let decisions = Sim.decisions session.Engine.sim in
        if not want_result then (None, decisions)
        else begin
          let stats = Sim.stats session.Engine.sim ~makespan in
          let crashed = Sim.crashed_tids session.Engine.sim in
          (* in-flight requests of crashed drainers: what a standby
             captured at takeover, or the corpse's frozen marker *)
          let crashed_inflight =
            List.concat_map
              (fun tid ->
                let sid = tid - sc.Scenario.nclients in
                if sid < 0 || sid >= sc.Scenario.nshards then []
                else
                  let sh = t.C.shards.(sid) in
                  match sh.C.s_crash_inflight with
                  | [] -> ( match sh.C.s_inflight with Some x -> [ x ] | None -> [])
                  | l -> l)
              crashed
          in
          let violation =
            if not check then None
            else
              match C.check t ~crashed_inflight with
              | Some _ as v -> v
              | None -> C.check_delivery t
          in
          let linearizable =
            match history with
            | None -> None
            | Some h -> ( try Some (History.linearizable h) with History.Too_large _ -> None)
          in
          let seconds = stats.Sim.seconds in
          let shard_stats =
            Array.map
              (fun (sh : C.shard) ->
                {
                  ss_sid = sh.C.sid;
                  ss_applied = sh.C.s_applied;
                  ss_search_ok = sh.C.s_search_ok;
                  ss_search_miss = sh.C.s_search_miss;
                  ss_insert_ok = sh.C.s_insert_ok;
                  ss_insert_fail = sh.C.s_insert_fail;
                  ss_remove_ok = sh.C.s_remove_ok;
                  ss_remove_fail = sh.C.s_remove_fail;
                  ss_batches = sh.C.s_batches;
                  ss_max_batch = sh.C.s_max_batch;
                  ss_takeovers = sh.C.s_takeovers;
                  ss_throughput_mops =
                    (if seconds > 0.0 then float_of_int sh.C.s_applied /. seconds /. 1e6
                     else 0.0);
                  ss_sojourn = sh.C.s_sojourn;
                  ss_service = sh.C.s_service;
                  ss_final_size = C.M.size sh.C.set;
                })
              t.C.shards
          in
          let merge field =
            Array.fold_left (fun acc sh -> H.merge acc (field sh)) (H.create ()) t.C.shards
          in
          let applied = C.total_applied t in
          let result =
            {
              scenario = sc;
              algorithm = C.M.name;
              platform = platform.P.name;
              nthreads;
              seed;
              model = Sim.model_name_of model;
              ops_requested = Scenario.total_ops sc;
              ops_applied = applied;
              seconds;
              throughput_mops =
                (if seconds > 0.0 then float_of_int applied /. seconds /. 1e6 else 0.0);
              shard_stats;
              sojourn = merge (fun sh -> sh.C.s_sojourn);
              service = merge (fun sh -> sh.C.s_service);
              enq_waits = Array.fold_left ( + ) 0 t.C.c_waits;
              takeovers = Array.fold_left (fun a sh -> a + sh.C.s_takeovers) 0 t.C.shards;
              crashed;
              faults;
              checked = check;
              violation;
              linearizable;
              final_size = C.total_size t;
              stats;
              resil;
              rmetrics = C.resil_metrics t;
            }
          in
          (Some result, decisions)
        end)
  in
  if (not sc.Scenario.restarts) && Option.is_none fault_plan then
    match run_once ~faults:[] ~want_result:true with
    | Some r, _ -> r
    | None, _ -> assert false
  else begin
    (* calibrate the decision count fault-free, then compose the
       scenario's rolling-restart crashes with the caller's plan *)
    let _, decisions = run_once ~faults:[] ~want_result:false in
    let faults =
      (if sc.Scenario.restarts then restart_plan sc ~decisions else [])
      @ (match fault_plan with Some f -> f ~decisions | None -> [])
    in
    match run_once ~faults ~want_result:true with
    | Some r, _ -> r
    | None, _ -> assert false
  end
