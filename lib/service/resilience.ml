(** Resilient-request policy layer for the sharded KV service: request
    deadlines, retry/backoff schedules, idempotency dedup windows,
    per-shard circuit breakers, hedged reads, and the metrics record the
    harness aggregates into [BENCH_service.json] / [RESIL_matrix.json].

    Everything here is host-side policy state — plain OCaml, no [Mem]
    cells — owned by exactly one service thread (a client owns its
    breakers and metrics, a drainer owns its dedup window), so the
    module is backend-agnostic and allocation-free on the request hot
    path.  The cross-thread moving parts (ack cells, queue tickets) stay
    in {!Cluster} where they belong.

    Determinism: every randomized choice (retry jitter) draws from a
    caller-supplied {!Ascy_util.Xorshift} stream that {!Cluster} derives
    from the run seed via [Xorshift.split], so a given seed replays the
    whole retry/hedge schedule bit-for-bit. *)

module J = Ascy_util.Json
module X = Ascy_util.Xorshift

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type retry_cfg = {
  max_attempts : int;  (** total tries, first send included; >= 1 *)
  backoff_base : int;  (** cycles of local work before retry 2 *)
  backoff_mult : int;  (** multiplier per further attempt *)
  jitter : int;  (** uniform [0, jitter) cycles added per backoff; 0 = none *)
}

type breaker_cfg = {
  trip_after : int;  (** consecutive failures that open the breaker *)
  cooldown : int;  (** cycles the breaker stays open before probing *)
  probes : int;  (** half-open probes allowed before re-deciding *)
}

type config = {
  enabled : bool;
      (** [false]: the cluster runs the legacy fire-and-forget client
          path, bit-for-bit identical to the pre-resilience service *)
  deadline : int;  (** per-request deadline, cycles after submit; > 0 when enabled *)
  poll_gap : int;  (** local work per ack poll, cycles *)
  retry : retry_cfg;
  dedup_window : int;
      (** per-shard remembered idempotency tokens (FIFO eviction);
          0 disables dedup — duplicated deliveries then apply twice,
          which the at-most-once oracle reports *)
  breaker : breaker_cfg option;  (** [None] = breakers off *)
  hedge_after : int;
      (** cycles without an ack before a read is hedged (a duplicate
          submission racing the original); 0 = hedging off *)
  staleness_bound : int;
      (** bounded-staleness oracle slack for hedged reads, cycles:
          the apply may predate the submit by at most this much
          (per-thread clocks are only loosely coupled) *)
}

let disabled =
  {
    enabled = false;
    deadline = 0;
    poll_gap = 200;
    retry = { max_attempts = 1; backoff_base = 0; backoff_mult = 2; jitter = 0 };
    dedup_window = 0;
    breaker = None;
    hedge_after = 0;
    staleness_bound = 0;
  }

(** Smoke-scale defaults: deadline and hedge threshold sized against the
    simulator's queue sojourn under the scenario matrix (tens of
    microseconds at a few GHz), generous dedup window, breaker tuned to
    trip within one gray-failure window. *)
let default =
  {
    enabled = true;
    deadline = 400_000;
    poll_gap = 200;
    retry = { max_attempts = 4; backoff_base = 2_000; backoff_mult = 2; jitter = 1_000 };
    dedup_window = 4_096;
    breaker = Some { trip_after = 8; cooldown = 100_000; probes = 2 };
    hedge_after = 150_000;
    staleness_bound = 1_000_000;
  }

let validate cfg =
  if cfg.enabled then begin
    if cfg.deadline <= 0 then invalid_arg "Resilience: enabled config needs deadline > 0";
    if cfg.retry.max_attempts < 1 then invalid_arg "Resilience: max_attempts must be >= 1";
    if cfg.poll_gap <= 0 then invalid_arg "Resilience: poll_gap must be > 0"
  end

(** Backoff before attempt [attempt + 1] (so [attempt = 1] prices the
    first retry): exponential in the attempt index plus seeded jitter.
    Pure function of the config, attempt and the rng stream state. *)
let backoff (r : retry_cfg) ~attempt ~rng =
  let rec pow acc n = if n <= 0 then acc else pow (acc * r.backoff_mult) (n - 1) in
  let base = pow r.backoff_base (attempt - 1) in
  base + if r.jitter > 0 then X.below rng r.jitter else 0

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

(** Classic closed / open / half-open machine, one instance per
    (client, shard) pair: each client trips on its own observations, so
    the state needs no cross-thread cells in either backend.  Failures
    are deadline misses and queue-full rejections; successes are acks. *)
type breaker_state = Closed | Open | Half_open

type breaker = {
  b_cfg : breaker_cfg;
  mutable b_state : breaker_state;
  mutable b_failures : int;  (** consecutive, while closed *)
  mutable b_opened_at : int;  (** clock at the trip *)
  mutable b_probes : int;  (** probes issued while half-open *)
  mutable b_trips : int;  (** lifetime trip count (metric) *)
}

let mk_breaker b_cfg =
  { b_cfg; b_state = Closed; b_failures = 0; b_opened_at = 0; b_probes = 0; b_trips = 0 }

(** May a request be sent now?  Transitions [Open -> Half_open] once the
    cooldown has elapsed; while half-open, admits at most [probes]
    requests.  Callers must report the outcome of every admitted request
    via {!on_success} / {!on_failure}. *)
let allow b ~now =
  match b.b_state with
  | Closed -> true
  | Open ->
      if now - b.b_opened_at >= b.b_cfg.cooldown then begin
        b.b_state <- Half_open;
        b.b_probes <- 1;
        true
      end
      else false
  | Half_open ->
      if b.b_probes < b.b_cfg.probes then begin
        b.b_probes <- b.b_probes + 1;
        true
      end
      else false

let on_success b =
  b.b_failures <- 0;
  b.b_state <- Closed

let on_failure b ~now =
  match b.b_state with
  | Half_open ->
      (* a failed probe re-opens immediately *)
      b.b_state <- Open;
      b.b_opened_at <- now;
      b.b_trips <- b.b_trips + 1
  | Closed ->
      b.b_failures <- b.b_failures + 1;
      if b.b_failures >= b.b_cfg.trip_after then begin
        b.b_state <- Open;
        b.b_opened_at <- now;
        b.b_failures <- 0;
        b.b_trips <- b.b_trips + 1
      end
  | Open -> ()

let state_name b =
  match b.b_state with Closed -> "closed" | Open -> "open" | Half_open -> "half-open"

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

(** Per-thread resilience counters; {!merge_into} folds the per-client
    and per-drainer instances into the run total. *)
type metrics = {
  mutable m_retries : int;  (** re-submissions after a deadline miss / rejection *)
  mutable m_sheds : int;  (** requests dropped client-side (breaker open or retries exhausted) *)
  mutable m_overloads : int;  (** queue-full rejections observed *)
  mutable m_breaker_trips : int;
  mutable m_hedges : int;  (** duplicate reads raced after [hedge_after] *)
  mutable m_hedge_wins : int;  (** hedged reads that still acked in time *)
  mutable m_deadline_miss : int;
  mutable m_acked : int;  (** logical requests acknowledged *)
  mutable m_gave_up : int;  (** logical requests abandoned after all attempts *)
  mutable m_dup_suppressed : int;  (** drainer-side dedup-window hits *)
  mutable m_fault_drops : int;  (** Msg_drop tokens enacted at send *)
  mutable m_fault_dups : int;  (** Msg_dup tokens enacted at send *)
  mutable m_fault_delays : int;  (** Msg_delay tokens enacted at send *)
}

let fresh_metrics () =
  {
    m_retries = 0;
    m_sheds = 0;
    m_overloads = 0;
    m_breaker_trips = 0;
    m_hedges = 0;
    m_hedge_wins = 0;
    m_deadline_miss = 0;
    m_acked = 0;
    m_gave_up = 0;
    m_dup_suppressed = 0;
    m_fault_drops = 0;
    m_fault_dups = 0;
    m_fault_delays = 0;
  }

let merge_into ~(into : metrics) (m : metrics) =
  into.m_retries <- into.m_retries + m.m_retries;
  into.m_sheds <- into.m_sheds + m.m_sheds;
  into.m_overloads <- into.m_overloads + m.m_overloads;
  into.m_breaker_trips <- into.m_breaker_trips + m.m_breaker_trips;
  into.m_hedges <- into.m_hedges + m.m_hedges;
  into.m_hedge_wins <- into.m_hedge_wins + m.m_hedge_wins;
  into.m_deadline_miss <- into.m_deadline_miss + m.m_deadline_miss;
  into.m_acked <- into.m_acked + m.m_acked;
  into.m_gave_up <- into.m_gave_up + m.m_gave_up;
  into.m_dup_suppressed <- into.m_dup_suppressed + m.m_dup_suppressed;
  into.m_fault_drops <- into.m_fault_drops + m.m_fault_drops;
  into.m_fault_dups <- into.m_fault_dups + m.m_fault_dups;
  into.m_fault_delays <- into.m_fault_delays + m.m_fault_delays

let metrics_json (m : metrics) =
  J.Obj
    [
      ("retries", J.Int m.m_retries);
      ("sheds", J.Int m.m_sheds);
      ("overloads", J.Int m.m_overloads);
      ("breaker_trips", J.Int m.m_breaker_trips);
      ("hedges", J.Int m.m_hedges);
      ("hedge_wins", J.Int m.m_hedge_wins);
      ("deadline_miss", J.Int m.m_deadline_miss);
      ("acked", J.Int m.m_acked);
      ("gave_up", J.Int m.m_gave_up);
      ("dup_suppressed", J.Int m.m_dup_suppressed);
      ("fault_drops", J.Int m.m_fault_drops);
      ("fault_dups", J.Int m.m_fault_dups);
      ("fault_delays", J.Int m.m_fault_delays);
    ]

let config_json (c : config) =
  J.Obj
    [
      ("enabled", J.Bool c.enabled);
      ("deadline", J.Int c.deadline);
      ("poll_gap", J.Int c.poll_gap);
      ( "retry",
        J.Obj
          [
            ("max_attempts", J.Int c.retry.max_attempts);
            ("backoff_base", J.Int c.retry.backoff_base);
            ("backoff_mult", J.Int c.retry.backoff_mult);
            ("jitter", J.Int c.retry.jitter);
          ] );
      ("dedup_window", J.Int c.dedup_window);
      ( "breaker",
        match c.breaker with
        | None -> J.Null
        | Some b ->
            J.Obj
              [
                ("trip_after", J.Int b.trip_after);
                ("cooldown", J.Int b.cooldown);
                ("probes", J.Int b.probes);
              ] );
      ("hedge_after", J.Int c.hedge_after);
      ("staleness_bound", J.Int c.staleness_bound);
    ]

(* ------------------------------------------------------------------ *)
(* Idempotency tokens                                                  *)
(* ------------------------------------------------------------------ *)

(** Cluster-unique idempotency token for logical request [seq] of client
    [tid].  [seq] starts at 1, so 0 is free to mean "no token" (the
    legacy fire-and-forget path). *)
let token ~tid ~seq = (tid lsl 24) + seq

(** Drainer-side dedup window: remembers the last [cap] applied tokens
    (FIFO eviction), so a duplicated delivery inside the window is
    recognized and suppressed.  Owned by the shard's active drainer —
    never shared. *)
type window = { w_cap : int; w_fifo : int Queue.t; w_seen : (int, unit) Hashtbl.t }

let mk_window cap = { w_cap = cap; w_fifo = Queue.create (); w_seen = Hashtbl.create (max 16 cap) }

let window_mem w tok = w.w_cap > 0 && Hashtbl.mem w.w_seen tok

let window_add w tok =
  if w.w_cap > 0 && not (Hashtbl.mem w.w_seen tok) then begin
    Hashtbl.replace w.w_seen tok ();
    Queue.push tok w.w_fifo;
    if Queue.length w.w_fifo > w.w_cap then Hashtbl.remove w.w_seen (Queue.pop w.w_fifo)
  end
