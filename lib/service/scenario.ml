(** The service scenario matrix: named client-population shapes for the
    sharded KV service, from steady read-mostly traffic to a zipf
    hot-key flash crowd and rolling shard restarts.

    A scenario fixes everything about a run except the seed and the
    coherence model: structure algorithm, shard/client topology, session
    population, key population, update mix, queue/batch sizing, and
    whether shard primaries are crash-stopped mid-run (standby workers
    then take over their queues — the service-level reuse of the chaos
    engine's [F_crash] fault plans). *)

module W = Ascy_harness.Workload
module X = Ascy_util.Xorshift

type keydist =
  | Uniform  (** uniform over [1, key_range] *)
  | Hot of { hot_keys : int; hot_pct : int; shift_at : int option }
      (** zipf-like: [hot_pct]% of requests hit a [hot_keys]-wide window,
          the rest are uniform over the complement.  [shift_at = Some r]
          teleports the window to mid-range after round [r] of every
          session — the "flash crowd" moving to a new hot set. *)
  | Pinned of { shard : int; pct : int }
      (** [pct]% of requests are remapped onto keys owned by [shard]
          (requires [Mod] routing) — deliberate shard skew. *)

type t = {
  name : string;
  algo : string;  (** registry algorithm behind every shard *)
  nshards : int;
  nclients : int;  (** client (load-generator) threads *)
  sessions : int;  (** simulated client sessions, multiplexed over the client threads *)
  ops_per_session : int;
  key_range : int;
  initial : int;  (** keys prefilled across the cluster before the run *)
  update_pct : int;
  keydist : keydist;
  routing : Router.policy;
  queue_cap : int;
  batch_max : int;  (** requests a worker drains per dispatch *)
  standby : bool;  (** provision a standby worker per shard *)
  restarts : bool;  (** crash every primary mid-run (staggered); implies [standby] *)
}

let total_ops sc = sc.sessions * sc.ops_per_session
let workers sc = sc.nshards * if sc.standby || sc.restarts then 2 else 1
let nthreads sc = sc.nclients + workers sc

(* ------------------------------------------------------------------ *)
(* Samplers                                                            *)
(* ------------------------------------------------------------------ *)

(** Key for one request of session round [round].  Deterministic per rng
    state; cold draws never land in the hot window (same semantics as
    the fixed {!Ascy_harness.Workload.pick_key_skewed}). *)
let sample_key sc ~round rng =
  match sc.keydist with
  | Uniform -> 1 + X.below rng sc.key_range
  | Hot { hot_keys; hot_pct; shift_at } ->
      let hot = min hot_keys sc.key_range in
      if hot >= sc.key_range then 1 + X.below rng sc.key_range
      else
        let off =
          match shift_at with
          | Some r when round >= r -> (sc.key_range - hot) / 2
          | _ -> 0
        in
        if X.below rng 100 < hot_pct then 1 + off + X.below rng hot
        else
          let c = X.below rng (sc.key_range - hot) in
          1 + (if c < off then c else c + hot)
  | Pinned { shard; pct } ->
      let k = 1 + X.below rng sc.key_range in
      if X.below rng 100 >= pct then k
      else
        (* snap onto [shard]'s residue class under Mod routing *)
        let k' = (k / sc.nshards * sc.nshards) + shard in
        if k' < 1 then k' + sc.nshards
        else if k' > sc.key_range then k' - sc.nshards
        else k'

(** The update mix reuses the (bias-fixed) workload op picker. *)
let workload_of sc = W.make ~key_range:sc.key_range ~initial:sc.initial ~update_pct:sc.update_pct ()

let sample_op sc rng = W.pick_op (workload_of sc) rng

(* ------------------------------------------------------------------ *)
(* The matrix                                                          *)
(* ------------------------------------------------------------------ *)

(** Run-size preset: [Smoke] keeps CI and unit tests in seconds; [Full]
    is the million-key / thousands-of-sessions configuration the
    north-star asks for (minutes on the MESI model, use [-model flat]
    for quick sweeps). *)
type scale = Smoke | Full

let scale_name = function Smoke -> "smoke" | Full -> "full"

let base scale =
  match scale with
  | Full ->
      {
        name = "";
        algo = "ht-clht-lb";
        nshards = 8;
        nclients = 4;
        sessions = 2_000;
        ops_per_session = 24;
        key_range = 2_000_000;
        initial = 1_000_000;
        update_pct = 10;
        keydist = Uniform;
        routing = Router.Mult;
        queue_cap = 64;
        batch_max = 8;
        standby = false;
        restarts = false;
      }
  | Smoke ->
      {
        name = "";
        algo = "ht-clht-lb";
        nshards = 4;
        nclients = 2;
        sessions = 64;
        ops_per_session = 12;
        key_range = 8_192;
        initial = 4_096;
        update_pct = 10;
        keydist = Uniform;
        routing = Router.Mult;
        queue_cap = 32;
        batch_max = 8;
        standby = false;
        restarts = false;
      }

(** Zipf hot-key flash crowd: 90% of traffic on a tiny window that
    jumps mid-run. *)
let flash_crowd scale =
  let b = base scale in
  {
    b with
    name = "flash-crowd";
    keydist =
      Hot
        {
          hot_keys = (match scale with Full -> 64 | Smoke -> 16);
          hot_pct = 90;
          shift_at = Some (b.ops_per_session / 2);
        };
    update_pct = 25;
  }

(** Read-mostly steady state (the paper's low-update setting). *)
let read_mostly scale = { (base scale) with name = "read-mostly"; update_pct = 1 }

(** Churn-heavy: every other request is an update. *)
let churn_heavy scale = { (base scale) with name = "churn-heavy"; update_pct = 50 }

(** Shard skew: Mod routing plus 60% of requests pinned to shard 0's
    residue class — one hot shard, the rest idling. *)
let shard_skew scale =
  {
    (base scale) with
    name = "shard-skew";
    routing = Router.Mod;
    keydist = Pinned { shard = 0; pct = 60 };
  }

(** Rolling restarts: every shard primary is crash-stopped mid-run
    (staggered, F_crash), standbys take over the lease and drain.  Uses
    the lock-free CLHT so a primary killed mid-operation cannot leave a
    lock behind for its standby to block on (declared and chaos-verified
    Non_blocking); smaller key range keeps the post-run conservation
    sweep cheap. *)
let rolling_restart scale =
  let b = base scale in
  {
    b with
    name = "rolling-restart";
    algo = "ht-clht-lf";
    update_pct = 20;
    key_range = (match scale with Full -> 100_000 | Smoke -> 4_096);
    initial = (match scale with Full -> 50_000 | Smoke -> 2_048);
    standby = true;
    restarts = true;
  }

let matrix scale =
  [
    flash_crowd scale;
    read_mostly scale;
    churn_heavy scale;
    shard_skew scale;
    rolling_restart scale;
  ]

let by_name scale name =
  match List.find_opt (fun sc -> sc.name = name) (matrix scale) with
  | Some sc -> sc
  | None ->
      invalid_arg
        (Printf.sprintf "unknown scenario %S (have: %s)" name
           (String.concat ", " (List.map (fun sc -> sc.name) (matrix scale))))

(* ------------------------------------------------------------------ *)
(* Serialization (BENCH_service.json meta)                             *)
(* ------------------------------------------------------------------ *)

module J = Ascy_util.Json

let keydist_json = function
  | Uniform -> J.Obj [ ("kind", J.String "uniform") ]
  | Hot { hot_keys; hot_pct; shift_at } ->
      J.Obj
        [
          ("kind", J.String "hot");
          ("hot_keys", J.Int hot_keys);
          ("hot_pct", J.Int hot_pct);
          ("shift_at", match shift_at with Some r -> J.Int r | None -> J.Null);
        ]
  | Pinned { shard; pct } ->
      J.Obj [ ("kind", J.String "pinned"); ("shard", J.Int shard); ("pct", J.Int pct) ]

let to_json sc =
  J.Obj
    [
      ("name", J.String sc.name);
      ("algo", J.String sc.algo);
      ("nshards", J.Int sc.nshards);
      ("nclients", J.Int sc.nclients);
      ("sessions", J.Int sc.sessions);
      ("ops_per_session", J.Int sc.ops_per_session);
      ("key_range", J.Int sc.key_range);
      ("initial", J.Int sc.initial);
      ("update_pct", J.Int sc.update_pct);
      ("keydist", keydist_json sc.keydist);
      ("routing", J.String (Router.policy_name sc.routing));
      ("queue_cap", J.Int sc.queue_cap);
      ("batch_max", J.Int sc.batch_max);
      ("standby", J.Bool (sc.standby || sc.restarts));
      ("restarts", J.Bool sc.restarts);
    ]
