(** Key -> shard routing for the sharded KV service.

    Two policies:
    - [Mult]: Fibonacci/Knuth multiplicative hashing over the key bits.
      Spreads any key population (including contiguous hot prefixes)
      evenly across shards — the production default.
    - [Mod]: plain [key mod nshards].  Deliberately skew-prone: keys that
      share a residue class all land on one shard, which is exactly what
      the shard-skew scenario needs to model an unbalanced cluster.

    Routing is pure and deterministic — clients, workers, and the
    post-run checkers must all agree on the owner of a key without
    communicating. *)

type policy = Mult | Mod

let policy_name = function Mult -> "mult" | Mod -> "mod"

let policy_of_name = function
  | "mult" -> Mult
  | "mod" -> Mod
  | s -> invalid_arg ("Router.policy_of_name: " ^ s)

(* 2^62 / golden ratio, odd — the classic multiplicative-hash constant
   trimmed to OCaml's 63-bit native ints. *)
let mult_const = 0x2545F4914F6CDD1D

let route policy ~nshards key =
  if nshards <= 0 then invalid_arg "Router.route: nshards must be positive";
  match policy with
  | Mod -> ((key mod nshards) + nshards) mod nshards
  | Mult -> key * mult_const land max_int mod nshards
