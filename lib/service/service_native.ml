(** Run a service scenario natively on OCaml 5 domains — the real-domain
    smoke mode.  The identical cluster code executes with
    {!Ascy_mem.Mem_native} cells; there is no virtual clock, no fault
    injection, and no standby (a standby's staleness heuristic is only
    sound under the simulator's fair clocks), so the run measures
    wall-clock service throughput plus the post-run validation and
    conservation oracles. *)

module Registry = Ascylib.Registry

type result = {
  scenario : Scenario.t;
  algorithm : string;
  nthreads : int;
  seed : int;
  ops_requested : int;
  ops_applied : int;
  seconds : float;
  throughput_mops : float;
  per_shard_applied : int array;
  enq_waits : int;
  violation : string option;
  final_size : int;
}

let run ?(seed = 1) (sc : Scenario.t) =
  if sc.Scenario.restarts then
    invalid_arg "Service_native.run: rolling restarts are simulator-only (fault injection)";
  let sc = { sc with Scenario.standby = false } in
  let (module A : Ascy_core.Set_intf.MAKER) = (Registry.by_name sc.Scenario.algo).Registry.maker in
  let module C = Cluster.Make (Ascy_mem.Mem_native) (A) in
  let t = C.create sc in
  C.prefill t ~seed;
  let bodies = C.bodies t ~knobs:Cluster.default_knobs ~seed in
  let t0 = Unix.gettimeofday () in
  let domains = Array.map Domain.spawn bodies in
  Array.iter Domain.join domains;
  let seconds = Unix.gettimeofday () -. t0 in
  let applied = C.total_applied t in
  {
    scenario = sc;
    algorithm = C.M.name;
    nthreads = Scenario.nthreads sc;
    seed;
    ops_requested = Scenario.total_ops sc;
    ops_applied = applied;
    seconds;
    throughput_mops = (if seconds > 0.0 then float_of_int applied /. seconds /. 1e6 else 0.0);
    per_shard_applied = Array.map (fun (sh : C.shard) -> sh.C.s_applied) t.C.shards;
    enq_waits = Array.fold_left ( + ) 0 t.C.c_waits;
    violation = C.check t ~crashed_inflight:[];
    final_size = C.total_size t;
  }
