(** The sharded async KV cluster: N registry sets behind a hash router,
    one bounded request ring per shard, batched single-drainer dispatch,
    and lease-based fail-over from a crashed primary to its standby.

    A functor over {!Ascy_mem.Memory.S} x {!Ascy_core.Set_intf.MAKER},
    so the identical service code runs inside the simulator (every queue
    and structure access priced by the coherence model, crash faults
    injectable) and natively on OCaml 5 domains for real-machine smoke
    runs.  All cross-thread control state — queues, routed counters,
    close flags, heartbeats, leases — lives in [Mem] cells; per-shard
    measurement state (histograms, per-class counters, the conservation
    ledger) is host-side and only ever written by the shard's active
    drainer, so it is single-writer in both backends.

    The per-shard async pipeline follows the per-shard async API shape
    of succinct-cpp's [SuccinctShardAsync] (SNIPPETS.md 1): clients
    submit and move on; completions are observed by the shard worker,
    which stamps the sojourn (enqueue -> completion) latency. *)

module W = Ascy_harness.Workload
module H = Ascy_util.Histogram
module X = Ascy_util.Xorshift

(** Runtime knobs the scenario does not fix: virtual-time source and
    latency unit (simulator) or neither (native), optional per-op
    history recording, fail-over staleness tuning, and the
    message-fault source for the queue-layer fault matrix. *)
type knobs = {
  now : unit -> int;  (** calling thread's clock, cycles; [fun () -> 0] natively *)
  cycle_ns : float;  (** ns per cycle for latency histograms; [<= 0.] disables them *)
  record :
    (sid:int -> op:W.op -> key:int -> ok:bool -> inv:int -> res:int -> unit) option;
      (** linearizability spot-check hook, called at apply time *)
  hb_gap : int;  (** standby poll gap, cycles of local work *)
  hb_polls : int;  (** stale heartbeat polls before a standby takes the lease *)
  poll_fault : unit -> Ascy_mem.Simtypes.msg_fault option;
      (** polled once per client send boundary; the returned token is
          enacted on that message.  The simulator binding is
          [Sim.poll_msg_fault]; the default never faults (native runs,
          fault-free simulations) *)
}

let default_knobs =
  {
    now = (fun () -> 0);
    cycle_ns = 0.0;
    record = None;
    hb_gap = 5_000;
    hb_polls = 8;
    poll_fault = (fun () -> None);
  }

(** Thread ids are laid out clients first, then primaries, then (when
    provisioned) standbys — the coordinate system fault plans target. *)
let primary_tid (sc : Scenario.t) sid = sc.Scenario.nclients + sid

module Make (Mem : Ascy_mem.Memory.S) (A : Ascy_core.Set_intf.MAKER) = struct
  module M = A (Mem)
  module Q = Shard_queue.Make (Mem)

  type request = {
    rq_op : W.op;
    rq_key : int;
    rq_enq : int;  (** client clock at submit, cycles *)
    rq_token : int;  (** idempotency token; 0 = untracked (legacy path) *)
    rq_deadline : int;  (** absolute deadline, cycles; 0 = none *)
    rq_ack : int Mem.r option;
        (** completion cell shared by every attempt of a logical request:
            0 pending, 1 applied (result false), 2 applied (result true).
            [None] on the legacy fire-and-forget path, which therefore
            allocates no extra lines and stays bit-for-bit identical *)
  }

  type shard = {
    sid : int;
    set : int M.t;
    queue : request Q.t;
    closed : bool Mem.r;  (** no further requests will arrive *)
    hb : int Mem.r;  (** drainer heartbeat *)
    lease : int Mem.r;  (** 0 = primary owns the shard, 1 = standby took over *)
    done_flag : bool Mem.r;  (** drainer exited after emptying a closed queue *)
    (* host-side measurement, active-drainer-owned *)
    mutable s_applied : int;
    mutable s_search_ok : int;
    mutable s_search_miss : int;
    mutable s_insert_ok : int;
    mutable s_insert_fail : int;
    mutable s_remove_ok : int;
    mutable s_remove_fail : int;
    mutable s_batches : int;
    mutable s_max_batch : int;
    mutable s_takeovers : int;
    mutable s_inflight : (W.op * int) option;
        (** the request being applied; survives a drainer crash for the
            conservation oracle's +-1 slack *)
    mutable s_crash_inflight : (W.op * int) list;
        (** in-flight markers captured from a dead primary at takeover
            (the standby then overwrites [s_inflight] with its own) *)
    s_net : (int, int) Hashtbl.t;  (** recorded per-key membership delta *)
    s_tokens : (int, int * int * int) Hashtbl.t;
        (** token -> (applies, ack code, apply clock): the delivery
            oracles' ground truth.  Host-side and written only by the
            shard's active drainer; unlike the dedup window it is never
            evicted, so duplicate applications are always visible *)
    s_window : Resilience.window;  (** drainer-side idempotency dedup window *)
    s_sojourn : H.t;  (** enqueue -> completion, ns *)
    s_service : H.t;  (** apply time alone, ns *)
  }

  type t = {
    sc : Scenario.t;
    resil : Resilience.config;
    shards : shard array;
    active_clients : int Mem.r;
    prefilled : (int, unit) Hashtbl.t;
    c_waits : int array;  (** full-ring wait iterations, per client thread *)
    c_routed : int array;  (** requests submitted, per client thread *)
    c_metrics : Resilience.metrics array;  (** per client thread *)
    d_metrics : Resilience.metrics array;  (** per shard (active drainer) *)
    c_acked : (int, int * int * bool) Hashtbl.t array;
        (** per client: token -> (submit clock, shard, hedged) of every
            acknowledged logical request — the no-lost-ack /
            bounded-staleness oracle input *)
  }

  let route t key = Router.route t.sc.Scenario.routing ~nshards:t.sc.Scenario.nshards key

  let create ?(resil = Resilience.disabled) (sc : Scenario.t) =
    Resilience.validate resil;
    let mk_shard sid =
      {
        sid;
        set = M.create ~hint:(max 8 (sc.Scenario.initial / max 1 sc.Scenario.nshards)) ();
        queue = Q.create ~cap:sc.Scenario.queue_cap;
        closed = Mem.make_fresh false;
        hb = Mem.make_fresh 0;
        lease = Mem.make_fresh 0;
        done_flag = Mem.make_fresh false;
        s_applied = 0;
        s_search_ok = 0;
        s_search_miss = 0;
        s_insert_ok = 0;
        s_insert_fail = 0;
        s_remove_ok = 0;
        s_remove_fail = 0;
        s_batches = 0;
        s_max_batch = 0;
        s_takeovers = 0;
        s_inflight = None;
        s_crash_inflight = [];
        s_net = Hashtbl.create 256;
        s_tokens = Hashtbl.create 256;
        s_window = Resilience.mk_window resil.Resilience.dedup_window;
        s_sojourn = H.create ();
        s_service = H.create ();
      }
    in
    {
      sc;
      resil;
      shards = Array.init sc.Scenario.nshards mk_shard;
      active_clients = Mem.make_fresh sc.Scenario.nclients;
      prefilled = Hashtbl.create (max 16 sc.Scenario.initial);
      c_waits = Array.make sc.Scenario.nclients 0;
      c_routed = Array.make sc.Scenario.nclients 0;
      c_metrics = Array.init sc.Scenario.nclients (fun _ -> Resilience.fresh_metrics ());
      d_metrics = Array.init sc.Scenario.nshards (fun _ -> Resilience.fresh_metrics ());
      c_acked = Array.init sc.Scenario.nclients (fun _ -> Hashtbl.create 64);
    }

  (** Prefill [sc.initial] distinct keys, routed to their owning shards.
      Call before the run starts (outside simulated time). *)
  let prefill t ~seed =
    let sc = t.sc in
    let rng = X.create ((seed * 31) + 7) in
    let filled = ref 0 in
    while !filled < sc.Scenario.initial do
      let k = 1 + X.below rng sc.Scenario.key_range in
      if M.insert t.shards.(route t k).set k 0 then begin
        incr filled;
        Hashtbl.replace t.prefilled k ()
      end
    done

  (* ---------------------------------------------------------------- *)
  (* Client side                                                       *)
  (* ---------------------------------------------------------------- *)

  (** Load-generator thread [tid]: multiplexes its share of the session
      population round-robin (every session advances one request per
      round, like an event-loop frontend), routes each request, and
      submits it to the owning shard's ring.  The last client to finish
      closes every shard. *)
  let client_body t ~knobs ~seed tid () =
    let sc = t.sc in
    let sessions =
      (* sessions are dealt round-robin: tid, tid + nclients, ... *)
      let n = ref 0 in
      for s = 0 to sc.Scenario.sessions - 1 do
        if s mod sc.Scenario.nclients = tid then incr n
      done;
      Array.init !n (fun i ->
          let sid = tid + (i * sc.Scenario.nclients) in
          X.create ((seed * 2654435761) + (sid * 40503) + 17))
    in
    for round = 0 to sc.Scenario.ops_per_session - 1 do
      Array.iter
        (fun rng ->
          let op = Scenario.sample_op sc rng in
          let key = Scenario.sample_key sc ~round rng in
          let rq =
            {
              rq_op = op;
              rq_key = key;
              rq_enq = knobs.now ();
              rq_token = 0;
              rq_deadline = 0;
              rq_ack = None;
            }
          in
          let waits = Q.enqueue t.shards.(route t key).queue rq in
          t.c_waits.(tid) <- t.c_waits.(tid) + waits;
          t.c_routed.(tid) <- t.c_routed.(tid) + 1)
        sessions
    done;
    if Mem.fetch_and_add t.active_clients (-1) = 1 then
      Array.iter (fun sh -> Mem.set sh.closed true) t.shards

  (** Resilient load generator: same session layout and close protocol
      as {!client_body}, but every logical request gets an idempotency
      token, an absolute deadline and a shared ack cell, is submitted
      with explicit backpressure ({!Shard_queue.try_enqueue}), and is
      retried with seeded exponential backoff on deadline miss or
      rejection.  Per-shard circuit breakers (client-local — each client
      trips on its own observations, so no cross-thread state) shed
      requests while a shard looks unhealthy; reads still unacked after
      [hedge_after] race a duplicate submission (safe under the
      drainer's dedup window).  The per-client retry/jitter stream is
      derived from the run seed via [Xorshift.split], so the entire
      retry/hedge schedule replays bit-for-bit.

      Message faults: each fresh send polls [knobs.poll_fault] and
      enacts the token on that one message — drop (never enqueued),
      dup (enqueued twice), delay (held back until [n] later send
      boundaries by this client have passed). *)
  let resilient_client_body t ~knobs ~seed tid () =
    let sc = t.sc in
    let r = t.resil in
    let m = t.c_metrics.(tid) in
    let acked_log = t.c_acked.(tid) in
    let sessions =
      let n = ref 0 in
      for s = 0 to sc.Scenario.sessions - 1 do
        if s mod sc.Scenario.nclients = tid then incr n
      done;
      Array.init !n (fun i ->
          let sid = tid + (i * sc.Scenario.nclients) in
          X.create ((seed * 2654435761) + (sid * 40503) + 17))
    in
    let jrng = X.split (X.create ((seed * 2654435761) + (tid * 48611) + 29)) in
    let breakers =
      match r.Resilience.breaker with
      | Some bc -> Some (Array.init sc.Scenario.nshards (fun _ -> Resilience.mk_breaker bc))
      | None -> None
    in
    let seq = ref 0 in
    let delayed = ref [] (* (sends until delivery, sid, request) *) in
    (* One send boundary: held messages age by one send, due ones are
       delivered (best-effort — a full ring loses them, like any drop). *)
    let age_delayed () =
      let due, still = List.partition (fun (n, _, _) -> n <= 1) !delayed in
      delayed := List.map (fun (n, s, rq) -> (n - 1, s, rq)) still;
      List.iter
        (fun (_, s, rq) ->
          match Q.try_enqueue t.shards.(s).queue rq with
          | Shard_queue.Enqueued _ -> ()
          | Shard_queue.Overloaded -> m.Resilience.m_overloads <- m.Resilience.m_overloads + 1)
        due
    in
    (* Send one copy, enacting a pending message-fault token.  [`Sent]
       means the client should wait for the ack (a dropped or delayed
       message looks sent — that is the point); [`Overloaded] is the
       explicit queue-full rejection. *)
    let send sid rq =
      age_delayed ();
      match knobs.poll_fault () with
      | Some Ascy_mem.Simtypes.Msg_drop ->
          m.Resilience.m_fault_drops <- m.Resilience.m_fault_drops + 1;
          `Sent
      | Some Ascy_mem.Simtypes.Msg_dup -> (
          m.Resilience.m_fault_dups <- m.Resilience.m_fault_dups + 1;
          match Q.try_enqueue t.shards.(sid).queue rq with
          | Shard_queue.Overloaded -> `Overloaded
          | Shard_queue.Enqueued _ -> (
              match Q.try_enqueue t.shards.(sid).queue rq with
              | Shard_queue.Enqueued _ | Shard_queue.Overloaded -> `Sent))
      | Some (Ascy_mem.Simtypes.Msg_delay n) ->
          m.Resilience.m_fault_delays <- m.Resilience.m_fault_delays + 1;
          delayed := (max 1 n, sid, rq) :: !delayed;
          `Sent
      | None -> (
          match Q.try_enqueue t.shards.(sid).queue rq with
          | Shard_queue.Enqueued _ -> `Sent
          | Shard_queue.Overloaded -> `Overloaded)
    in
    let do_request op key =
      let sid = route t key in
      incr seq;
      let tok = Resilience.token ~tid ~seq:!seq in
      let submit0 = knobs.now () in
      let admitted =
        match breakers with Some bs -> Resilience.allow bs.(sid) ~now:submit0 | None -> true
      in
      if not admitted then m.Resilience.m_sheds <- m.Resilience.m_sheds + 1
      else begin
        let ack = Mem.make_fresh 0 in
        let fail_step nowc =
          match breakers with Some bs -> Resilience.on_failure bs.(sid) ~now:nowc | None -> ()
        in
        let rec attempt i =
          let nowc = knobs.now () in
          let deadline = nowc + r.Resilience.deadline in
          let rq =
            {
              rq_op = op;
              rq_key = key;
              rq_enq = nowc;
              rq_token = tok;
              rq_deadline = deadline;
              rq_ack = Some ack;
            }
          in
          t.c_routed.(tid) <- t.c_routed.(tid) + 1;
          let retry_or_give_up () =
            if i < r.Resilience.retry.Resilience.max_attempts then begin
              m.Resilience.m_retries <- m.Resilience.m_retries + 1;
              Mem.work (Resilience.backoff r.Resilience.retry ~attempt:i ~rng:jrng);
              attempt (i + 1)
            end
            else m.Resilience.m_gave_up <- m.Resilience.m_gave_up + 1
          in
          match send sid rq with
          | `Overloaded ->
              m.Resilience.m_overloads <- m.Resilience.m_overloads + 1;
              fail_step nowc;
              retry_or_give_up ()
          | `Sent ->
              let hedged = ref false in
              let rec poll () =
                if Mem.get ack <> 0 then `Acked
                else begin
                  let c = knobs.now () in
                  if c >= deadline then `Miss
                  else begin
                    if
                      (not !hedged)
                      && r.Resilience.hedge_after > 0
                      && op = W.Search
                      && c - nowc >= r.Resilience.hedge_after
                    then begin
                      hedged := true;
                      m.Resilience.m_hedges <- m.Resilience.m_hedges + 1;
                      ignore (send sid rq)
                    end;
                    Mem.work r.Resilience.poll_gap;
                    poll ()
                  end
                end
              in
              (match poll () with
              | `Acked ->
                  m.Resilience.m_acked <- m.Resilience.m_acked + 1;
                  if !hedged then m.Resilience.m_hedge_wins <- m.Resilience.m_hedge_wins + 1;
                  Hashtbl.replace acked_log tok (submit0, sid, !hedged);
                  (match breakers with Some bs -> Resilience.on_success bs.(sid) | None -> ())
              | `Miss ->
                  m.Resilience.m_deadline_miss <- m.Resilience.m_deadline_miss + 1;
                  fail_step (knobs.now ());
                  retry_or_give_up ())
        in
        attempt 1
      end
    in
    for round = 0 to sc.Scenario.ops_per_session - 1 do
      Array.iter
        (fun rng ->
          let op = Scenario.sample_op sc rng in
          let key = Scenario.sample_key sc ~round rng in
          do_request op key)
        sessions
    done;
    (match breakers with
    | Some bs ->
        Array.iter
          (fun b ->
            m.Resilience.m_breaker_trips <- m.Resilience.m_breaker_trips + b.Resilience.b_trips)
          bs
    | None -> ());
    if Mem.fetch_and_add t.active_clients (-1) = 1 then
      Array.iter (fun sh -> Mem.set sh.closed true) t.shards

  (* ---------------------------------------------------------------- *)
  (* Shard workers                                                     *)
  (* ---------------------------------------------------------------- *)

  let apply_fresh sh ~knobs (rq : request) =
    sh.s_inflight <- Some (rq.rq_op, rq.rq_key);
    let t0 = knobs.now () in
    let ok =
      match rq.rq_op with
      | W.Search -> M.search sh.set rq.rq_key <> None
      | W.Insert -> M.insert sh.set rq.rq_key (1 + sh.sid)
      | W.Remove -> M.remove sh.set rq.rq_key
    in
    M.op_done sh.set;
    let t1 = knobs.now () in
    (match (rq.rq_op, ok) with
    | W.Search, true -> sh.s_search_ok <- sh.s_search_ok + 1
    | W.Search, false -> sh.s_search_miss <- sh.s_search_miss + 1
    | W.Insert, true ->
        sh.s_insert_ok <- sh.s_insert_ok + 1;
        Hashtbl.replace sh.s_net rq.rq_key
          (1 + (try Hashtbl.find sh.s_net rq.rq_key with Not_found -> 0))
    | W.Insert, false -> sh.s_insert_fail <- sh.s_insert_fail + 1
    | W.Remove, true ->
        sh.s_remove_ok <- sh.s_remove_ok + 1;
        Hashtbl.replace sh.s_net rq.rq_key
          ((try Hashtbl.find sh.s_net rq.rq_key with Not_found -> 0) - 1)
    | W.Remove, false -> sh.s_remove_fail <- sh.s_remove_fail + 1);
    sh.s_applied <- sh.s_applied + 1;
    if knobs.cycle_ns > 0.0 then begin
      H.add sh.s_service (float_of_int (t1 - t0) *. knobs.cycle_ns);
      H.add sh.s_sojourn (float_of_int (max 0 (t1 - rq.rq_enq)) *. knobs.cycle_ns)
    end;
    (match knobs.record with
    | Some f -> f ~sid:sh.sid ~op:rq.rq_op ~key:rq.rq_key ~ok ~inv:t0 ~res:t1
    | None -> ());
    (* token bookkeeping (host-side, hence atomic with respect to
       crash-stop, which only lands at memory-effect boundaries): the
       oracle table and the dedup window move together, so a standby
       re-draining this request after a crash below is recognized as a
       duplicate *)
    if rq.rq_token <> 0 then begin
      let applies =
        match Hashtbl.find_opt sh.s_tokens rq.rq_token with Some (a, _, _) -> a | None -> 0
      in
      Hashtbl.replace sh.s_tokens rq.rq_token (applies + 1, (if ok then 2 else 1), t1);
      Resilience.window_add sh.s_window rq.rq_token
    end;
    (match rq.rq_ack with Some ack -> Mem.set ack (if ok then 2 else 1) | None -> ());
    (* the commit makes the application durable: a crash before this
       point re-applies the request under the standby, a crash after it
       loses nothing *)
    Q.commit sh.queue;
    sh.s_inflight <- None

  (** Dispatch one peeked request: dedup-suppress duplicates inside the
      window, shed requests that expired in the queue, apply the rest. *)
  let apply_one sh ~knobs ~resil ~dm (rq : request) =
    if rq.rq_token <> 0 && Resilience.window_mem sh.s_window rq.rq_token then begin
      (* duplicate delivery inside the dedup window (retransmit, hedge,
         injected dup, or a standby re-draining a committed-but-unacked
         request): suppress the apply, re-acknowledge idempotently with
         the recorded outcome.  This is what makes retries
         at-most-once-applied. *)
      dm.Resilience.m_dup_suppressed <- dm.Resilience.m_dup_suppressed + 1;
      (match (rq.rq_ack, Hashtbl.find_opt sh.s_tokens rq.rq_token) with
      | Some ack, Some (_, code, _) -> Mem.set ack code
      | Some ack, None -> Mem.set ack 1 (* unreachable: window entries are recorded tokens *)
      | None, _ -> ());
      Q.commit sh.queue
    end
    else if resil.Resilience.enabled && rq.rq_deadline > 0 && knobs.now () > rq.rq_deadline
    then begin
      (* expired in the queue: shed without applying — the client has
         already declared the miss and (re)tried; serving the corpse
         would waste shard time under exactly the overload that made it
         late.  Never acked, so the no-lost-ack oracle is untouched. *)
      dm.Resilience.m_sheds <- dm.Resilience.m_sheds + 1;
      Q.commit sh.queue
    end
    else apply_fresh sh ~knobs rq

  (** Drain loop shared by the primary and a post-takeover standby:
      batched dispatch (up to [batch_max] per wakeup), heartbeat bump
      per request, exit once the shard is closed and the ring is dry. *)
  let drain_loop t sh ~knobs =
    let sc = t.sc in
    let running = ref true in
    while !running do
      Mem.set sh.hb (Mem.get sh.hb + 1);
      let n = ref 0 in
      let continue = ref true in
      while !continue && !n < sc.Scenario.batch_max do
        match Q.peek sh.queue with
        | Some rq ->
            apply_one sh ~knobs ~resil:t.resil ~dm:t.d_metrics.(sh.sid) rq;
            Mem.set sh.hb (Mem.get sh.hb + 1);
            incr n
        | None -> continue := false
      done;
      if !n > 0 then begin
        sh.s_batches <- sh.s_batches + 1;
        if !n > sh.s_max_batch then sh.s_max_batch <- !n
      end
      else if Mem.get sh.closed && Q.is_empty sh.queue then begin
        Mem.set sh.done_flag true;
        running := false
      end
      else Mem.cpu_relax ()
    done

  let primary_body t sh ~knobs () = drain_loop t sh ~knobs

  (** Standby worker: watch the primary's heartbeat; after [hb_polls]
      stale observations, take the lease and drain the shard to
      completion.  The lease CAS keeps at most one takeover even if the
      protocol ever grows more standbys. *)
  let standby_body t sh ~knobs () =
    let rec watch last stale =
      if Mem.get sh.done_flag then ()
      else begin
        Mem.work knobs.hb_gap;
        let h = Mem.get sh.hb in
        if h <> last then watch h 0
        else if stale + 1 >= knobs.hb_polls then begin
          if Mem.cas sh.lease 0 1 then begin
            sh.s_takeovers <- sh.s_takeovers + 1;
            (* freeze the corpse's in-flight marker before our own
               draining overwrites it — the conservation oracle widens
               its slack by exactly this request *)
            (match sh.s_inflight with
            | Some x -> sh.s_crash_inflight <- x :: sh.s_crash_inflight
            | None -> ());
            drain_loop t sh ~knobs
          end
          else watch h 0
        end
        else watch h (stale + 1)
      end
    in
    watch (Mem.get sh.hb) 0

  (** Thread bodies in tid order: clients, then primaries, then (when
      provisioned) standbys — see {!primary_tid}. *)
  let bodies t ~knobs ~seed =
    let sc = t.sc in
    let nc = sc.Scenario.nclients and ns = sc.Scenario.nshards in
    let client = if t.resil.Resilience.enabled then resilient_client_body else client_body in
    Array.init (Scenario.nthreads sc) (fun tid ->
        if tid < nc then client t ~knobs ~seed tid
        else if tid < nc + ns then primary_body t t.shards.(tid - nc) ~knobs
        else standby_body t t.shards.(tid - nc - ns) ~knobs)

  let primary_tid sc sid = sc.Scenario.nclients + sid

  (* ---------------------------------------------------------------- *)
  (* Post-run oracles                                                  *)
  (* ---------------------------------------------------------------- *)

  (** Structural validation plus per-key conservation from the recorded
      completion ledger, with +-1 slack on the in-flight request of any
      crashed drainer (its application may have landed on either side of
      the crash; a standby may also have re-applied it — both legal).
      [crashed_inflight] lists the (op, key) pairs left in flight by
      crashed workers.  Returns [None] when everything checks out. *)
  let check t ~crashed_inflight =
    let structural =
      Array.fold_left
        (fun acc sh ->
          match acc with
          | Some _ -> acc
          | None -> (
              match M.validate sh.set with
              | Ok () -> None
              | Error msg -> Some (Printf.sprintf "shard %d invalid: %s" sh.sid msg)))
        None t.shards
    in
    match structural with
    | Some _ as v -> v
    | None ->
        let bad = ref [] in
        let check_key sh k net =
          let wanted = (if Hashtbl.mem t.prefilled k then 1 else 0) + net in
          let lo = ref 0 and hi = ref 0 in
          List.iter
            (fun (op, k') ->
              if k' = k then
                match op with W.Insert -> incr hi | W.Remove -> decr lo | W.Search -> ())
            crashed_inflight;
          let got = if M.search sh.set k <> None then 1 else 0 in
          if got < wanted + !lo || got > wanted + !hi then
            bad :=
              Printf.sprintf
                "shard %d key %d: net %d from recorded ops (slack %+d..%+d), membership %d"
                sh.sid k wanted !lo !hi got
              :: !bad
        in
        Array.iter (fun sh -> Hashtbl.iter (check_key sh) sh.s_net) t.shards;
        (* keys only touched by a crashed in-flight op have no ledger
           entry; check them against their owning shard too *)
        List.iter
          (fun (op, k) ->
            if op <> W.Search then
              let sh = t.shards.(route t k) in
              if not (Hashtbl.mem sh.s_net k) then check_key sh k 0)
          crashed_inflight;
        (match !bad with
        | [] -> None
        | l -> Some ("conservation violated: " ^ String.concat "; " (List.rev l)))

  (** End-to-end delivery oracles for resilient runs, checked against
      the drainers' token tables and the clients' ack logs:

      - {e at-most-once} (armed when the dedup window is on): no
        idempotency token was applied more than once, no matter how many
        copies — retries, hedges, injected duplicates, standby re-drains
        — reached a drainer;
      - {e no-lost-ack}: every acknowledgment a client observed is backed
        by an application recorded on the owning shard;
      - {e bounded staleness}: an acknowledged {e hedged} read was
        applied by its owning shard no earlier than [staleness_bound]
        cycles before its submission (per-thread clocks are only loosely
        coupled, hence the slack; the structural guarantee is that
        hedges are served by the same authoritative drainer, never a
        stale replica).

      Returns [None] when everything holds, or a message naming the
      first few violations. *)
  let check_delivery t =
    if not t.resil.Resilience.enabled then None
    else begin
      let bad = ref [] in
      let report msg = if List.length !bad < 8 then bad := msg :: !bad in
      (* At-most-once is checked unconditionally: with the dedup window
         disabled the config *declares* may-apply-duplicates, and this
         oracle is exactly what detects that a duplicated delivery (or a
         crash re-apply) really did apply twice — the teeth the fault
         matrix tests bite with. *)
      Array.iter
        (fun sh ->
          Hashtbl.iter
            (fun tok (applies, _, _) ->
              if applies > 1 then
                report
                  (Printf.sprintf "at-most-once: token %d applied %d times on shard %d" tok
                     applies sh.sid))
            sh.s_tokens)
        t.shards;
      Array.iter
        (fun acked ->
          Hashtbl.iter
            (fun tok (submit, sid, hedged) ->
              match Hashtbl.find_opt t.shards.(sid).s_tokens tok with
              | None ->
                  report
                    (Printf.sprintf "no-lost-ack: token %d acked but never applied on shard %d"
                       tok sid)
              | Some (_, _, t_apply) ->
                  if hedged && t_apply + t.resil.Resilience.staleness_bound < submit then
                    report
                      (Printf.sprintf
                         "bounded-staleness: hedged read token %d applied at %d, submitted at %d"
                         tok t_apply submit))
            acked)
        t.c_acked;
      match !bad with
      | [] -> None
      | l -> Some ("delivery violated: " ^ String.concat "; " (List.rev l))
    end

  (** All per-client and per-drainer resilience counters of the run,
      merged. *)
  let resil_metrics t =
    let total = Resilience.fresh_metrics () in
    Array.iter (fun m -> Resilience.merge_into ~into:total m) t.c_metrics;
    Array.iter (fun m -> Resilience.merge_into ~into:total m) t.d_metrics;
    total

  let total_applied t = Array.fold_left (fun a sh -> a + sh.s_applied) 0 t.shards
  let total_size t = Array.fold_left (fun a sh -> a + M.size sh.set) 0 t.shards
end
