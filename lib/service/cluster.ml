(** The sharded async KV cluster: N registry sets behind a hash router,
    one bounded request ring per shard, batched single-drainer dispatch,
    and lease-based fail-over from a crashed primary to its standby.

    A functor over {!Ascy_mem.Memory.S} x {!Ascy_core.Set_intf.MAKER},
    so the identical service code runs inside the simulator (every queue
    and structure access priced by the coherence model, crash faults
    injectable) and natively on OCaml 5 domains for real-machine smoke
    runs.  All cross-thread control state — queues, routed counters,
    close flags, heartbeats, leases — lives in [Mem] cells; per-shard
    measurement state (histograms, per-class counters, the conservation
    ledger) is host-side and only ever written by the shard's active
    drainer, so it is single-writer in both backends.

    The per-shard async pipeline follows the per-shard async API shape
    of succinct-cpp's [SuccinctShardAsync] (SNIPPETS.md 1): clients
    submit and move on; completions are observed by the shard worker,
    which stamps the sojourn (enqueue -> completion) latency. *)

module W = Ascy_harness.Workload
module H = Ascy_util.Histogram
module X = Ascy_util.Xorshift

(** Runtime knobs the scenario does not fix: virtual-time source and
    latency unit (simulator) or neither (native), optional per-op
    history recording, and fail-over staleness tuning. *)
type knobs = {
  now : unit -> int;  (** calling thread's clock, cycles; [fun () -> 0] natively *)
  cycle_ns : float;  (** ns per cycle for latency histograms; [<= 0.] disables them *)
  record :
    (sid:int -> op:W.op -> key:int -> ok:bool -> inv:int -> res:int -> unit) option;
      (** linearizability spot-check hook, called at apply time *)
  hb_gap : int;  (** standby poll gap, cycles of local work *)
  hb_polls : int;  (** stale heartbeat polls before a standby takes the lease *)
}

let default_knobs = { now = (fun () -> 0); cycle_ns = 0.0; record = None; hb_gap = 5_000; hb_polls = 8 }

(** Thread ids are laid out clients first, then primaries, then (when
    provisioned) standbys — the coordinate system fault plans target. *)
let primary_tid (sc : Scenario.t) sid = sc.Scenario.nclients + sid

module Make (Mem : Ascy_mem.Memory.S) (A : Ascy_core.Set_intf.MAKER) = struct
  module M = A (Mem)
  module Q = Shard_queue.Make (Mem)

  type request = { rq_op : W.op; rq_key : int; rq_enq : int (* client clock at submit, cycles *) }

  type shard = {
    sid : int;
    set : int M.t;
    queue : request Q.t;
    closed : bool Mem.r;  (** no further requests will arrive *)
    hb : int Mem.r;  (** drainer heartbeat *)
    lease : int Mem.r;  (** 0 = primary owns the shard, 1 = standby took over *)
    done_flag : bool Mem.r;  (** drainer exited after emptying a closed queue *)
    (* host-side measurement, active-drainer-owned *)
    mutable s_applied : int;
    mutable s_search_ok : int;
    mutable s_search_miss : int;
    mutable s_insert_ok : int;
    mutable s_insert_fail : int;
    mutable s_remove_ok : int;
    mutable s_remove_fail : int;
    mutable s_batches : int;
    mutable s_max_batch : int;
    mutable s_takeovers : int;
    mutable s_inflight : (W.op * int) option;
        (** the request being applied; survives a drainer crash for the
            conservation oracle's +-1 slack *)
    mutable s_crash_inflight : (W.op * int) list;
        (** in-flight markers captured from a dead primary at takeover
            (the standby then overwrites [s_inflight] with its own) *)
    s_net : (int, int) Hashtbl.t;  (** recorded per-key membership delta *)
    s_sojourn : H.t;  (** enqueue -> completion, ns *)
    s_service : H.t;  (** apply time alone, ns *)
  }

  type t = {
    sc : Scenario.t;
    shards : shard array;
    active_clients : int Mem.r;
    prefilled : (int, unit) Hashtbl.t;
    c_waits : int array;  (** full-ring wait iterations, per client thread *)
    c_routed : int array;  (** requests submitted, per client thread *)
  }

  let route t key = Router.route t.sc.Scenario.routing ~nshards:t.sc.Scenario.nshards key

  let create (sc : Scenario.t) =
    let mk_shard sid =
      {
        sid;
        set = M.create ~hint:(max 8 (sc.Scenario.initial / max 1 sc.Scenario.nshards)) ();
        queue = Q.create ~cap:sc.Scenario.queue_cap;
        closed = Mem.make_fresh false;
        hb = Mem.make_fresh 0;
        lease = Mem.make_fresh 0;
        done_flag = Mem.make_fresh false;
        s_applied = 0;
        s_search_ok = 0;
        s_search_miss = 0;
        s_insert_ok = 0;
        s_insert_fail = 0;
        s_remove_ok = 0;
        s_remove_fail = 0;
        s_batches = 0;
        s_max_batch = 0;
        s_takeovers = 0;
        s_inflight = None;
        s_crash_inflight = [];
        s_net = Hashtbl.create 256;
        s_sojourn = H.create ();
        s_service = H.create ();
      }
    in
    {
      sc;
      shards = Array.init sc.Scenario.nshards mk_shard;
      active_clients = Mem.make_fresh sc.Scenario.nclients;
      prefilled = Hashtbl.create (max 16 sc.Scenario.initial);
      c_waits = Array.make sc.Scenario.nclients 0;
      c_routed = Array.make sc.Scenario.nclients 0;
    }

  (** Prefill [sc.initial] distinct keys, routed to their owning shards.
      Call before the run starts (outside simulated time). *)
  let prefill t ~seed =
    let sc = t.sc in
    let rng = X.create ((seed * 31) + 7) in
    let filled = ref 0 in
    while !filled < sc.Scenario.initial do
      let k = 1 + X.below rng sc.Scenario.key_range in
      if M.insert t.shards.(route t k).set k 0 then begin
        incr filled;
        Hashtbl.replace t.prefilled k ()
      end
    done

  (* ---------------------------------------------------------------- *)
  (* Client side                                                       *)
  (* ---------------------------------------------------------------- *)

  (** Load-generator thread [tid]: multiplexes its share of the session
      population round-robin (every session advances one request per
      round, like an event-loop frontend), routes each request, and
      submits it to the owning shard's ring.  The last client to finish
      closes every shard. *)
  let client_body t ~knobs ~seed tid () =
    let sc = t.sc in
    let sessions =
      (* sessions are dealt round-robin: tid, tid + nclients, ... *)
      let n = ref 0 in
      for s = 0 to sc.Scenario.sessions - 1 do
        if s mod sc.Scenario.nclients = tid then incr n
      done;
      Array.init !n (fun i ->
          let sid = tid + (i * sc.Scenario.nclients) in
          X.create ((seed * 2654435761) + (sid * 40503) + 17))
    in
    for round = 0 to sc.Scenario.ops_per_session - 1 do
      Array.iter
        (fun rng ->
          let op = Scenario.sample_op sc rng in
          let key = Scenario.sample_key sc ~round rng in
          let rq = { rq_op = op; rq_key = key; rq_enq = knobs.now () } in
          let waits = Q.enqueue t.shards.(route t key).queue rq in
          t.c_waits.(tid) <- t.c_waits.(tid) + waits;
          t.c_routed.(tid) <- t.c_routed.(tid) + 1)
        sessions
    done;
    if Mem.fetch_and_add t.active_clients (-1) = 1 then
      Array.iter (fun sh -> Mem.set sh.closed true) t.shards

  (* ---------------------------------------------------------------- *)
  (* Shard workers                                                     *)
  (* ---------------------------------------------------------------- *)

  let apply_one sh ~knobs (rq : request) =
    sh.s_inflight <- Some (rq.rq_op, rq.rq_key);
    let t0 = knobs.now () in
    let ok =
      match rq.rq_op with
      | W.Search -> M.search sh.set rq.rq_key <> None
      | W.Insert -> M.insert sh.set rq.rq_key (1 + sh.sid)
      | W.Remove -> M.remove sh.set rq.rq_key
    in
    M.op_done sh.set;
    let t1 = knobs.now () in
    (match (rq.rq_op, ok) with
    | W.Search, true -> sh.s_search_ok <- sh.s_search_ok + 1
    | W.Search, false -> sh.s_search_miss <- sh.s_search_miss + 1
    | W.Insert, true ->
        sh.s_insert_ok <- sh.s_insert_ok + 1;
        Hashtbl.replace sh.s_net rq.rq_key
          (1 + (try Hashtbl.find sh.s_net rq.rq_key with Not_found -> 0))
    | W.Insert, false -> sh.s_insert_fail <- sh.s_insert_fail + 1
    | W.Remove, true ->
        sh.s_remove_ok <- sh.s_remove_ok + 1;
        Hashtbl.replace sh.s_net rq.rq_key
          ((try Hashtbl.find sh.s_net rq.rq_key with Not_found -> 0) - 1)
    | W.Remove, false -> sh.s_remove_fail <- sh.s_remove_fail + 1);
    sh.s_applied <- sh.s_applied + 1;
    if knobs.cycle_ns > 0.0 then begin
      H.add sh.s_service (float_of_int (t1 - t0) *. knobs.cycle_ns);
      H.add sh.s_sojourn (float_of_int (max 0 (t1 - rq.rq_enq)) *. knobs.cycle_ns)
    end;
    (match knobs.record with
    | Some f -> f ~sid:sh.sid ~op:rq.rq_op ~key:rq.rq_key ~ok ~inv:t0 ~res:t1
    | None -> ());
    (* the commit makes the application durable: a crash before this
       point re-applies the request under the standby, a crash after it
       loses nothing *)
    Q.commit sh.queue;
    sh.s_inflight <- None

  (** Drain loop shared by the primary and a post-takeover standby:
      batched dispatch (up to [batch_max] per wakeup), heartbeat bump
      per request, exit once the shard is closed and the ring is dry. *)
  let drain_loop t sh ~knobs =
    let sc = t.sc in
    let running = ref true in
    while !running do
      Mem.set sh.hb (Mem.get sh.hb + 1);
      let n = ref 0 in
      let continue = ref true in
      while !continue && !n < sc.Scenario.batch_max do
        match Q.peek sh.queue with
        | Some rq ->
            apply_one sh ~knobs rq;
            Mem.set sh.hb (Mem.get sh.hb + 1);
            incr n
        | None -> continue := false
      done;
      if !n > 0 then begin
        sh.s_batches <- sh.s_batches + 1;
        if !n > sh.s_max_batch then sh.s_max_batch <- !n
      end
      else if Mem.get sh.closed && Q.is_empty sh.queue then begin
        Mem.set sh.done_flag true;
        running := false
      end
      else Mem.cpu_relax ()
    done

  let primary_body t sh ~knobs () = drain_loop t sh ~knobs

  (** Standby worker: watch the primary's heartbeat; after [hb_polls]
      stale observations, take the lease and drain the shard to
      completion.  The lease CAS keeps at most one takeover even if the
      protocol ever grows more standbys. *)
  let standby_body t sh ~knobs () =
    let rec watch last stale =
      if Mem.get sh.done_flag then ()
      else begin
        Mem.work knobs.hb_gap;
        let h = Mem.get sh.hb in
        if h <> last then watch h 0
        else if stale + 1 >= knobs.hb_polls then begin
          if Mem.cas sh.lease 0 1 then begin
            sh.s_takeovers <- sh.s_takeovers + 1;
            (* freeze the corpse's in-flight marker before our own
               draining overwrites it — the conservation oracle widens
               its slack by exactly this request *)
            (match sh.s_inflight with
            | Some x -> sh.s_crash_inflight <- x :: sh.s_crash_inflight
            | None -> ());
            drain_loop t sh ~knobs
          end
          else watch h 0
        end
        else watch h (stale + 1)
      end
    in
    watch (Mem.get sh.hb) 0

  (** Thread bodies in tid order: clients, then primaries, then (when
      provisioned) standbys — see {!primary_tid}. *)
  let bodies t ~knobs ~seed =
    let sc = t.sc in
    let nc = sc.Scenario.nclients and ns = sc.Scenario.nshards in
    Array.init (Scenario.nthreads sc) (fun tid ->
        if tid < nc then client_body t ~knobs ~seed tid
        else if tid < nc + ns then primary_body t t.shards.(tid - nc) ~knobs
        else standby_body t t.shards.(tid - nc - ns) ~knobs)

  let primary_tid sc sid = sc.Scenario.nclients + sid

  (* ---------------------------------------------------------------- *)
  (* Post-run oracles                                                  *)
  (* ---------------------------------------------------------------- *)

  (** Structural validation plus per-key conservation from the recorded
      completion ledger, with +-1 slack on the in-flight request of any
      crashed drainer (its application may have landed on either side of
      the crash; a standby may also have re-applied it — both legal).
      [crashed_inflight] lists the (op, key) pairs left in flight by
      crashed workers.  Returns [None] when everything checks out. *)
  let check t ~crashed_inflight =
    let structural =
      Array.fold_left
        (fun acc sh ->
          match acc with
          | Some _ -> acc
          | None -> (
              match M.validate sh.set with
              | Ok () -> None
              | Error msg -> Some (Printf.sprintf "shard %d invalid: %s" sh.sid msg)))
        None t.shards
    in
    match structural with
    | Some _ as v -> v
    | None ->
        let bad = ref [] in
        let check_key sh k net =
          let wanted = (if Hashtbl.mem t.prefilled k then 1 else 0) + net in
          let lo = ref 0 and hi = ref 0 in
          List.iter
            (fun (op, k') ->
              if k' = k then
                match op with W.Insert -> incr hi | W.Remove -> decr lo | W.Search -> ())
            crashed_inflight;
          let got = if M.search sh.set k <> None then 1 else 0 in
          if got < wanted + !lo || got > wanted + !hi then
            bad :=
              Printf.sprintf
                "shard %d key %d: net %d from recorded ops (slack %+d..%+d), membership %d"
                sh.sid k wanted !lo !hi got
              :: !bad
        in
        Array.iter (fun sh -> Hashtbl.iter (check_key sh) sh.s_net) t.shards;
        (* keys only touched by a crashed in-flight op have no ledger
           entry; check them against their owning shard too *)
        List.iter
          (fun (op, k) ->
            if op <> W.Search then
              let sh = t.shards.(route t k) in
              if not (Hashtbl.mem sh.s_net k) then check_key sh k 0)
          crashed_inflight;
        (match !bad with
        | [] -> None
        | l -> Some ("conservation violated: " ^ String.concat "; " (List.rev l)))

  let total_applied t = Array.fold_left (fun a sh -> a + sh.s_applied) 0 t.shards
  let total_size t = Array.fold_left (fun a sh -> a + M.size sh.set) 0 t.shards
end
