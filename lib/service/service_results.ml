(** BENCH_service.json — structured results for the sharded KV service,
    written through the existing {!Ascy_harness.Results} sink (schema
    version 1, golden-pinned by [test/test_service.ml]).

    One simulated <run> record:
    {v
    { "label": "...", "kind": "service", "scenario": { ... },
      "algorithm": "ht-clht-lb", "platform": "Xeon20", "nthreads": N,
      "seed": N, "model": "mesi",
      "ops_requested": N, "ops_applied": N,
      "seconds": s, "throughput_mops": x,
      "latency_ns": { "sojourn": <pdist> | null, "service": <pdist> | null },
      "shards": [ { "sid": N, "applied": N, "search_ok": N,
                    "search_miss": N, "insert_ok": N, "insert_fail": N,
                    "remove_ok": N, "remove_fail": N, "batches": N,
                    "max_batch": N, "takeovers": N,
                    "throughput_mops": x, "final_size": N,
                    "sojourn_ns": <pdist> | null }, ... ],
      "enqueue_waits": N, "takeovers": N, "crashed": [tid, ...],
      "faults": N, "checked": b, "violation": str | null,
      "linearizable": b | null, "final_size": N,
      "stats": { <the Results.stats_json counter set> } }
    v}
    where <pdist> is [{ "count": N, "mean": x, "p50": x, "p99": x,
    "p999": x }].  Native smoke records use ["kind": "service-native"]
    and carry only wall-clock throughput plus the oracle verdict. *)

module J = Ascy_util.Json
module Results = Ascy_harness.Results

let shard_json (ss : Service_run.shard_stat) =
  J.Obj
    [
      ("sid", J.Int ss.Service_run.ss_sid);
      ("applied", J.Int ss.Service_run.ss_applied);
      ("search_ok", J.Int ss.Service_run.ss_search_ok);
      ("search_miss", J.Int ss.Service_run.ss_search_miss);
      ("insert_ok", J.Int ss.Service_run.ss_insert_ok);
      ("insert_fail", J.Int ss.Service_run.ss_insert_fail);
      ("remove_ok", J.Int ss.Service_run.ss_remove_ok);
      ("remove_fail", J.Int ss.Service_run.ss_remove_fail);
      ("batches", J.Int ss.Service_run.ss_batches);
      ("max_batch", J.Int ss.Service_run.ss_max_batch);
      ("takeovers", J.Int ss.Service_run.ss_takeovers);
      ("throughput_mops", J.Float ss.Service_run.ss_throughput_mops);
      ("final_size", J.Int ss.Service_run.ss_final_size);
      ("sojourn_ns", Results.percentile_summary_json ss.Service_run.ss_sojourn);
    ]

(** Serialize one simulated service run.  Every field is derived from
    simulated cycles or deterministic counters — same seed, same bytes
    (the only wall-clock field in a BENCH file is the sink's
    [generated_at_unix]). *)
let of_run ?(label = "") (r : Service_run.result) =
  J.Obj
    [
      ("label", J.String label);
      ("kind", J.String "service");
      ("scenario", Scenario.to_json r.Service_run.scenario);
      ("algorithm", J.String r.Service_run.algorithm);
      ("platform", J.String r.Service_run.platform);
      ("nthreads", J.Int r.Service_run.nthreads);
      ("seed", J.Int r.Service_run.seed);
      ("model", J.String r.Service_run.model);
      ("ops_requested", J.Int r.Service_run.ops_requested);
      ("ops_applied", J.Int r.Service_run.ops_applied);
      ("seconds", J.Float r.Service_run.seconds);
      ("throughput_mops", J.Float r.Service_run.throughput_mops);
      ( "latency_ns",
        J.Obj
          [
            ("sojourn", Results.percentile_summary_json r.Service_run.sojourn);
            ("service", Results.percentile_summary_json r.Service_run.service);
          ] );
      ("shards", J.List (Array.to_list (Array.map shard_json r.Service_run.shard_stats)));
      ("enqueue_waits", J.Int r.Service_run.enq_waits);
      ("takeovers", J.Int r.Service_run.takeovers);
      ("crashed", J.List (List.map (fun tid -> J.Int tid) r.Service_run.crashed));
      ("faults", J.Int (List.length r.Service_run.faults));
      ("checked", J.Bool r.Service_run.checked);
      ( "violation",
        match r.Service_run.violation with Some v -> J.String v | None -> J.Null );
      ( "linearizable",
        match r.Service_run.linearizable with Some b -> J.Bool b | None -> J.Null );
      ("final_size", J.Int r.Service_run.final_size);
      ("stats", Results.stats_json r.Service_run.stats);
    ]

(** Serialize one native (real-domains) smoke run.  Wall-clock timing:
    not deterministic, and excluded from byte-identity claims. *)
let of_native_run ?(label = "") (r : Service_native.result) =
  J.Obj
    [
      ("label", J.String label);
      ("kind", J.String "service-native");
      ("scenario", Scenario.to_json r.Service_native.scenario);
      ("algorithm", J.String r.Service_native.algorithm);
      ("nthreads", J.Int r.Service_native.nthreads);
      ("seed", J.Int r.Service_native.seed);
      ("ops_requested", J.Int r.Service_native.ops_requested);
      ("ops_applied", J.Int r.Service_native.ops_applied);
      ("seconds", J.Float r.Service_native.seconds);
      ("throughput_mops", J.Float r.Service_native.throughput_mops);
      ( "per_shard_applied",
        J.List (Array.to_list (Array.map (fun n -> J.Int n) r.Service_native.per_shard_applied))
      );
      ("enqueue_waits", J.Int r.Service_native.enq_waits);
      ( "violation",
        match r.Service_native.violation with Some v -> J.String v | None -> J.Null );
      ("final_size", J.Int r.Service_native.final_size);
    ]
