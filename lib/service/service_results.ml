(** BENCH_service.json — structured results for the sharded KV service,
    written through the existing {!Ascy_harness.Results} sink (schema
    version 1, golden-pinned by [test/test_service.ml]).

    One simulated <run> record:
    {v
    { "label": "...", "kind": "service", "scenario": { ... },
      "algorithm": "ht-clht-lb", "platform": "Xeon20", "nthreads": N,
      "seed": N, "model": "mesi",
      "ops_requested": N, "ops_applied": N,
      "seconds": s, "throughput_mops": x,
      "latency_ns": { "sojourn": <pdist> | null, "service": <pdist> | null },
      "shards": [ { "sid": N, "applied": N, "search_ok": N,
                    "search_miss": N, "insert_ok": N, "insert_fail": N,
                    "remove_ok": N, "remove_fail": N, "batches": N,
                    "max_batch": N, "takeovers": N,
                    "throughput_mops": x, "final_size": N,
                    "sojourn_ns": <pdist> | null }, ... ],
      "enqueue_waits": N, "takeovers": N, "crashed": [tid, ...],
      "faults": N, "checked": b, "violation": str | null,
      "linearizable": b | null, "final_size": N,
      "stats": { <the Results.stats_json counter set> } }
    v}
    where <pdist> is [{ "count": N, "mean": x, "p50": x, "p99": x,
    "p999": x }].  Native smoke records use ["kind": "service-native"]
    and carry only wall-clock throughput plus the oracle verdict.

    Runs with the resilient request layer enabled additionally carry
    {v
      "resilience": { "config": { ...Resilience.config_json... },
                      "metrics": { ...Resilience.metrics_json... } }
    v}
    — and only those, so legacy records stay byte-identical.

    This module also owns RESIL_matrix.json (schema version 1), the
    fault-matrix artifact of [ascy_serve -resil]: one record per
    (scenario x fault kind) cell with the composed fault plan, the
    declared vs observed delivery semantics, the oracle verdict, the
    resilience counters, and the inline bit-for-bit replay verdict:
    {v
    { "version": 1, "kind": "ascy-resil-matrix", "seed": N, "model": s,
      "scale": s,
      "runs": [
        { "scenario": s, "fault": s, "declared_semantics": s,
          "faults": [ <Replay fault events, decision-indexed> ],
          "ops_requested": N, "ops_applied": N,
          "violation": str | null, "replay_identical": b,
          "resilience": { "config": {...}, "metrics": {...} } }, ... ] }
    v} *)

module J = Ascy_util.Json
module Results = Ascy_harness.Results

let shard_json (ss : Service_run.shard_stat) =
  J.Obj
    [
      ("sid", J.Int ss.Service_run.ss_sid);
      ("applied", J.Int ss.Service_run.ss_applied);
      ("search_ok", J.Int ss.Service_run.ss_search_ok);
      ("search_miss", J.Int ss.Service_run.ss_search_miss);
      ("insert_ok", J.Int ss.Service_run.ss_insert_ok);
      ("insert_fail", J.Int ss.Service_run.ss_insert_fail);
      ("remove_ok", J.Int ss.Service_run.ss_remove_ok);
      ("remove_fail", J.Int ss.Service_run.ss_remove_fail);
      ("batches", J.Int ss.Service_run.ss_batches);
      ("max_batch", J.Int ss.Service_run.ss_max_batch);
      ("takeovers", J.Int ss.Service_run.ss_takeovers);
      ("throughput_mops", J.Float ss.Service_run.ss_throughput_mops);
      ("final_size", J.Int ss.Service_run.ss_final_size);
      ("sojourn_ns", Results.percentile_summary_json ss.Service_run.ss_sojourn);
    ]

(** Serialize one simulated service run.  Every field is derived from
    simulated cycles or deterministic counters — same seed, same bytes
    (the only wall-clock field in a BENCH file is the sink's
    [generated_at_unix]). *)
let of_run ?(label = "") (r : Service_run.result) =
  J.Obj
    ([
      ("label", J.String label);
      ("kind", J.String "service");
      ("scenario", Scenario.to_json r.Service_run.scenario);
      ("algorithm", J.String r.Service_run.algorithm);
      ("platform", J.String r.Service_run.platform);
      ("nthreads", J.Int r.Service_run.nthreads);
      ("seed", J.Int r.Service_run.seed);
      ("model", J.String r.Service_run.model);
      ("ops_requested", J.Int r.Service_run.ops_requested);
      ("ops_applied", J.Int r.Service_run.ops_applied);
      ("seconds", J.Float r.Service_run.seconds);
      ("throughput_mops", J.Float r.Service_run.throughput_mops);
      ( "latency_ns",
        J.Obj
          [
            ("sojourn", Results.percentile_summary_json r.Service_run.sojourn);
            ("service", Results.percentile_summary_json r.Service_run.service);
          ] );
      ("shards", J.List (Array.to_list (Array.map shard_json r.Service_run.shard_stats)));
      ("enqueue_waits", J.Int r.Service_run.enq_waits);
      ("takeovers", J.Int r.Service_run.takeovers);
      ("crashed", J.List (List.map (fun tid -> J.Int tid) r.Service_run.crashed));
      ("faults", J.Int (List.length r.Service_run.faults));
      ("checked", J.Bool r.Service_run.checked);
      ( "violation",
        match r.Service_run.violation with Some v -> J.String v | None -> J.Null );
      ( "linearizable",
        match r.Service_run.linearizable with Some b -> J.Bool b | None -> J.Null );
      ("final_size", J.Int r.Service_run.final_size);
      ("stats", Results.stats_json r.Service_run.stats);
    ]
    @
    (* only resilient runs carry the block, so legacy records (and the
       golden file pinning them) are byte-identical to schema 1 *)
    (if r.Service_run.resil.Resilience.enabled then
       [
         ( "resilience",
           J.Obj
             [
               ("config", Resilience.config_json r.Service_run.resil);
               ("metrics", Resilience.metrics_json r.Service_run.rmetrics);
             ] );
       ]
     else []))

(** Serialize one native (real-domains) smoke run.  Wall-clock timing:
    not deterministic, and excluded from byte-identity claims. *)
let of_native_run ?(label = "") (r : Service_native.result) =
  J.Obj
    [
      ("label", J.String label);
      ("kind", J.String "service-native");
      ("scenario", Scenario.to_json r.Service_native.scenario);
      ("algorithm", J.String r.Service_native.algorithm);
      ("nthreads", J.Int r.Service_native.nthreads);
      ("seed", J.Int r.Service_native.seed);
      ("ops_requested", J.Int r.Service_native.ops_requested);
      ("ops_applied", J.Int r.Service_native.ops_applied);
      ("seconds", J.Float r.Service_native.seconds);
      ("throughput_mops", J.Float r.Service_native.throughput_mops);
      ( "per_shard_applied",
        J.List (Array.to_list (Array.map (fun n -> J.Int n) r.Service_native.per_shard_applied))
      );
      ("enqueue_waits", J.Int r.Service_native.enq_waits);
      ( "violation",
        match r.Service_native.violation with Some v -> J.String v | None -> J.Null );
      ("final_size", J.Int r.Service_native.final_size);
    ]

(* ------------------------------------------------------------------ *)
(* RESIL_matrix.json (schema v1)                                       *)
(* ------------------------------------------------------------------ *)

(** One (scenario x fault kind) cell of the resilience matrix.
    [replay_identical] is the driver's inline determinism check: the
    same seed and fault plan re-executed and serialized to the same
    bytes. *)
let resil_entry ~fault_kind ~replay_identical (r : Service_run.result) =
  let declared =
    if r.Service_run.resil.Resilience.dedup_window > 0 then "at-most-once-applied"
    else "may-apply-duplicates"
  in
  J.Obj
    [
      ("scenario", J.String r.Service_run.scenario.Scenario.name);
      ("fault", J.String fault_kind);
      ("declared_semantics", J.String declared);
      ("faults", J.List (List.map Ascy_sct.Replay.fault_to_json r.Service_run.faults));
      ("ops_requested", J.Int r.Service_run.ops_requested);
      ("ops_applied", J.Int r.Service_run.ops_applied);
      ("takeovers", J.Int r.Service_run.takeovers);
      ( "violation",
        match r.Service_run.violation with Some v -> J.String v | None -> J.Null );
      ("replay_identical", J.Bool replay_identical);
      ( "resilience",
        J.Obj
          [
            ("config", Resilience.config_json r.Service_run.resil);
            ("metrics", Resilience.metrics_json r.Service_run.rmetrics);
          ] );
    ]

let resil_matrix ~seed ~model ~scale entries =
  J.Obj
    [
      ("version", J.Int 1);
      ("kind", J.String "ascy-resil-matrix");
      ("seed", J.Int seed);
      ("model", J.String model);
      ("scale", J.String scale);
      ("runs", J.List entries);
    ]

(** Write RESIL_matrix.json next to the BENCH files (the
    [ASCY_BENCH_OUT] directory). *)
let write_resil_matrix j =
  let dir = Results.out_dir () in
  (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  let path = Filename.concat dir "RESIL_matrix.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~indent:1 j);
      output_char oc '\n');
  path
