(** BST-TK — BST Ticket (paper §6.2; one of the two algorithms designed
    from scratch with ASCY).

    An external tree whose router nodes carry two small ticket locks
    packed in one word ({!Ascy_locks.Ticket_pair}), one per child edge.
    The parse phase records edge versions on the way down; acquiring a
    lock {e at that version} is simultaneously the validation (Figure 10
    consolidates validate+lock).  A successful insertion acquires one
    lock (the parent edge toward the leaf); a successful removal acquires
    two (both parent edges with one CAS, plus the grandparent edge).
    Unsuccessful updates store nothing (ASCY3); searches are sequential
    (ASCY1). *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module Tp = Ascy_locks.Ticket_pair.Make (Mem)
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  let inf1 = max_int - 1
  let inf2 = max_int

  type 'v node =
    | Leaf of { key : int; value : 'v option; line : Mem.line }
    | Router of 'v router

  and 'v router = {
    key : int;
    line : Mem.line;
    left : 'v node Mem.r;
    right : 'v node Mem.r;
    locks : Tp.t;
  }

  type 'v t = { root : 'v router; ssmem : S.t }

  let name = "bst-tk"

  let mk_leaf key value =
    let line = Mem.new_line () in
    Leaf { key; value; line }

  let mk_router key left right =
    let line = Mem.new_line () in
    { key; line; left = Mem.make line left; right = Mem.make line right; locks = Tp.create line }

  let create ?hint:_ ?read_only_fail:_ () =
    let s = mk_router inf1 (mk_leaf inf1 None) (mk_leaf inf2 None) in
    {
      root = mk_router inf2 (Router s) (mk_leaf inf2 None);
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let side_for (r : 'v router) k : Tp.side = if k < r.key then Tp.L else Tp.R
  let child (r : 'v router) k = if k < r.key then r.left else r.right
  let other_child (r : 'v router) k = if k < r.key then r.right else r.left

  (* Parse down to the leaf; record the grandparent, its version on the
     edge toward the parent, the parent, and both parent edge versions
     (read before reading the child pointer, so a concurrent update is
     caught at lock time). *)
  let seek t k =
    let rec go (g : 'v router) gv (p : 'v router) =
      let pvl, pvr = Tp.versions p.locks in
      match Mem.get (child p k) with
      | Leaf l as lf ->
          Mem.touch l.line;
          (g, gv, p, pvl, pvr, lf)
      | Router r ->
          Mem.touch r.line;
          go p (if k < p.key then pvl else pvr) r
    in
    let v0 = Tp.version t.root.locks (side_for t.root k) in
    match Mem.get (child t.root k) with
    | Router r -> go t.root v0 r
    | Leaf _ -> assert false (* sentinel structure guarantees depth >= 2 *)

  let search t k =
    let rec go (p : 'v router) =
      match Mem.get (child p k) with
      | Leaf l ->
          Mem.touch l.line;
          if l.key = k then l.value else None
      | Router r ->
          Mem.touch r.line;
          go r
    in
    go t.root

  let insert t k v =
    let rec attempt () =
      Mem.emit E.parse;
      let _, _, p, pvl, pvr, lf = seek t k in
      Mem.emit E.parse_end;
      match lf with
      | Leaf l when l.key = k -> false (* ASCY3: read-only failure *)
      | Leaf l ->
          let side = side_for p k in
          let ver = match side with Tp.L -> pvl | Tp.R -> pvr in
          if not (Tp.try_acquire_version p.locks side ver) then begin
            Mem.emit E.restart;
            attempt ()
          end
          else begin
            let nl = mk_leaf k (Some v) in
            let r = if k < l.key then mk_router l.key nl lf else mk_router k lf nl in
            Mem.set (child p k) (Router r);
            Tp.release p.locks side;
            true
          end
      | Router _ -> assert false
    in
    attempt ()

  let remove t k =
    let rec attempt () =
      Mem.emit E.parse;
      let g, gv, p, pvl, pvr, lf = seek t k in
      Mem.emit E.parse_end;
      match lf with
      | Leaf l when l.key = k ->
          let gside = side_for g k in
          if not (Tp.try_acquire_version g.locks gside gv) then begin
            Mem.emit E.restart;
            attempt ()
          end
          else if not (Tp.try_acquire_both p.locks pvl pvr) then begin
            Tp.release g.locks gside;
            Mem.emit E.restart;
            attempt ()
          end
          else begin
            (* both of p's edges are frozen: the sibling cannot change *)
            let sibling = Mem.get (other_child p k) in
            Mem.set (child g k) sibling;
            Tp.release g.locks gside;
            (* p stays locked forever: it is retired, and stragglers that
               parsed through it must fail validation and restart *)
            S.free t.ssmem p;
            S.free t.ssmem lf;
            true
          end
      | _ -> false (* ASCY3 *)
    in
    attempt ()

  let size t =
    let rec go = function
      | Leaf l -> if l.value = None then 0 else 1
      | Router r -> go (Mem.get r.left) + go (Mem.get r.right)
    in
    go (Router t.root)

  let validate t =
    let rec go nd lo hi =
      match nd with
      | Leaf l ->
          if l.value <> None && not (l.key >= lo && l.key < hi) then
            Error "leaf key outside router bounds"
          else Ok ()
      | Router r ->
          if not (r.key > lo && r.key <= hi) then Error "router key outside bounds"
          else (
            match go (Mem.get r.left) lo r.key with
            | Error _ as e -> e
            | Ok () -> go (Mem.get r.right) r.key hi)
    in
    go (Router t.root) min_int max_int

  let op_done t = S.quiesce t.ssmem
end
