(** Natarajan & Mittal's lock-free external BST (Table 1 "natarajan";
    PPoPP 2014, "Fast Concurrent Lock-free Binary Search Trees").

    The algorithm that minimizes atomic operations per update (~2 for a
    removal) by placing its marks on {e edges} (child pointers) rather
    than nodes, and by parsing optimistically with no helping on the
    search path.  A removal (1) flags the parent->leaf edge, (2) tags the
    parent->sibling edge so it cannot change, then (3) swings the
    grandparent edge to the sibling with one CAS, carrying over the
    sibling edge's flag bit so an in-progress removal of the sibling
    survives the move.  Insertions are a single CAS on a clean edge.
    Failed CASes help complete the interfering removal, then retry.

    Edge state lives in an immutable [edge] record ({i flag}, {i tag},
    target) swapped by physical-equality CAS — the OCaml rendering of the
    paper's pointer-stealing bits. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  let inf1 = max_int - 1
  let inf2 = max_int

  type 'v node =
    | Leaf of { key : int; value : 'v option; line : Mem.line }
    | Router of 'v router

  and 'v router = { key : int; line : Mem.line; left : 'v edge Mem.r; right : 'v edge Mem.r }

  and 'v edge = { flag : bool; tag : bool; target : 'v node }

  type 'v t = { root : 'v router; ssmem : S.t }

  let name = "bst-natarajan"

  let clean target = { flag = false; tag = false; target }

  let mk_leaf key value =
    let line = Mem.new_line () in
    Leaf { key; value; line }

  let mk_router key left right =
    let line = Mem.new_line () in
    { key; line; left = Mem.make line (clean left); right = Mem.make line (clean right) }

  let create ?hint:_ ?read_only_fail:_ () =
    let s = mk_router inf1 (mk_leaf inf1 None) (mk_leaf inf2 None) in
    {
      root = mk_router inf2 (Router s) (mk_leaf inf2 None);
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let child_cell (r : 'v router) k = if k < r.key then r.left else r.right
  let sibling_cell (r : 'v router) k = if k < r.key then r.right else r.left

  (* Optimistic parse: grandparent, parent, and the leaf's edge as read. *)
  let seek t k =
    let rec go (g : 'v router) (p : 'v router) =
      let e = Mem.get (child_cell p k) in
      match e.target with
      | Leaf l ->
          Mem.touch l.line;
          (g, p, e)
      | Router r ->
          Mem.touch r.line;
          go p r
    in
    match (Mem.get (child_cell t.root k)).target with
    | Router r -> go t.root r
    | Leaf _ -> assert false (* sentinels guarantee depth >= 2 *)

  (* ASCY1-style search: pure descent, no stores, no retries. *)
  let search t k =
    let rec go (p : 'v router) =
      match (Mem.get (child_cell p k)).target with
      | Leaf l ->
          Mem.touch l.line;
          if l.key = k then l.value else None
      | Router r ->
          Mem.touch r.line;
          go r
    in
    go t.root

  (* Complete the removal whose flag sits on the [victim_left] edge of
     [p]: tag the sibling edge, then swing [g]'s edge from [p] to the
     sibling, inheriting the sibling edge's flag bit.  Returns true iff
     this call performed the swing. *)
  let cleanup t (g : 'v router) (p : 'v router) ~victim_left =
    let victim_cell = if victim_left then p.left else p.right in
    let sib_cell = if victim_left then p.right else p.left in
    let ve = Mem.get victim_cell in
    if not ve.flag then false (* nothing to help *)
    else begin
      (* tag the sibling edge (preserving its flag) so it freezes *)
      let rec tag () =
        let se = Mem.get sib_cell in
        if se.tag then se
        else if Mem.cas sib_cell se { se with tag = true } then { se with tag = true }
        else begin
          Mem.emit E.cas_fail;
          tag ()
        end
      in
      let se = tag () in
      (* swing the grandparent edge (located by identity, as the original
         algorithm does with recorded addresses); inherit the sibling's
         flag *)
      let gcell =
        if match (Mem.get g.left).target with Router r -> r == p | Leaf _ -> false then g.left
        else g.right
      in
      let ge = Mem.get gcell in
      if (match ge.target with Router r -> r == p | Leaf _ -> false) && not ge.tag && not ge.flag
      then begin
        if Mem.cas gcell ge { flag = se.flag; tag = false; target = se.target } then begin
          S.free t.ssmem p;
          S.free t.ssmem ve.target;
          true
        end
        else begin
          Mem.emit E.cas_fail;
          false
        end
      end
      else false
    end

  let insert t k v =
    let rec attempt () =
      Mem.emit E.parse;
      let g, p, e = seek t k in
      match e.target with
      | Leaf l when l.key = k -> false (* ASCY3: no stores on failure *)
      | Leaf l as lf ->
          if e.flag || e.tag then begin
            (* an unfinished removal is parked here: help, then retry.
               A flag on our edge means our leaf is the victim; a tag
               means the victim is on p's other side. *)
            Mem.emit E.help;
            ignore (cleanup t g p ~victim_left:(if e.flag then k < p.key else k >= p.key));
            attempt ()
          end
          else begin
            Mem.emit E.parse_end;
            let nl = mk_leaf k (Some v) in
            let r = if k < l.key then mk_router l.key nl lf else mk_router k lf nl in
            if Mem.cas (child_cell p k) e (clean (Router r)) then true
            else begin
              Mem.emit E.cas_fail;
              attempt ()
            end
          end
      | Router _ -> assert false
    in
    attempt ()

  let remove t k =
    (* phase 1: claim the leaf by flagging its incoming edge *)
    let rec claim () =
      Mem.emit E.parse;
      let g, p, e = seek t k in
      match e.target with
      | Leaf l when l.key = k ->
          if e.flag then None (* another remove owns this leaf: ASCY3 *)
          else if e.tag then begin
            (* our side is the frozen sibling of an unfinished removal on
               p's other side: help it, then retry *)
            Mem.emit E.help;
            ignore (cleanup t g p ~victim_left:(k >= p.key));
            claim ()
          end
          else begin
            Mem.emit E.parse_end;
            if Mem.cas (child_cell p k) e { e with flag = true } then Some (g, p, e.target)
            else begin
              Mem.emit E.cas_fail;
              claim ()
            end
          end
      | _ -> None
    in
    match claim () with
    | None -> false
    | Some (g, p, mine) ->
        (* phase 2: detach; keep helping through fresh parses until our
           leaf is no longer reachable *)
        let rec detach g p =
          if not (cleanup t g p ~victim_left:(k < p.key)) then begin
            (* a fresh parse either still reaches our claimed leaf (retry
               with up-to-date coordinates) or proves it detached: no two
               leaves with the same key can be reachable at once *)
            let g', p', e = seek t k in
            if e.target == mine then detach g' p'
          end
        in
        detach g p;
        true

  let size t =
    let rec go = function
      | Leaf l -> if l.value = None then 0 else 1
      | Router r -> go (Mem.get r.left).target + go (Mem.get r.right).target
    in
    go (Router t.root)

  let validate t =
    let rec go nd lo hi =
      match nd with
      | Leaf l ->
          if l.value <> None && not (l.key >= lo && l.key < hi) then
            Error "leaf key outside router bounds"
          else Ok ()
      | Router r ->
          if not (r.key > lo && r.key <= hi) then Error "router key outside bounds"
          else (
            match go (Mem.get r.left).target lo r.key with
            | Error _ as e -> e
            | Ok () -> go (Mem.get r.right).target r.key hi)
    in
    go (Router t.root) min_int max_int

  let op_done t = S.quiesce t.ssmem
end
