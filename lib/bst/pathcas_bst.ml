(** PathCAS external BST (Brown et al., PPoPP 2022, arXiv 2212.09851)
    over {!Ascy_mem.Memory.S.kcas} — the {!Seq_ext_bst} shape made
    concurrent by per-router version stamps and one k-CAS per update.

    Routers carry a version stamp; leaves are immutable (no cells).  The
    seek reads each router's stamp {e before} following its child
    pointer, so a stamp unchanged at commit time revalidates the pointer
    read after it.  Updates then commit with a single k-CAS that bumps
    the stamps of the routers the update structurally depends on and
    swings one child pointer:

    Stamps carry the same parity discipline as {!Pathcas_ll}: a router
    that survives an update has its stamp bumped by [+2] (stays even),
    the splice sets the unlinked router's stamp odd ([+1]) — a permanent
    tombstone, routers are never re-linked — and the seek restarts when
    it reads an odd stamp.  An even recorded stamp therefore belongs to
    a router that was still reachable when the stamp was read, closing
    the window between following a child pointer and reading the child's
    stamp (otherwise the recorded stamp could be the post-splice value
    and the commit would validate an already-unlinked router).

    - insert at leaf under parent [p]:
      [kcas {p.ver +2; p.child: leaf -> Router{leaf', leaf}}];
    - remove leaf under [p] (grandparent [g]): splice [p] out —
      [kcas {g.ver +2; p.ver +1; g.child: p -> sibling}].  The odd
      [p.ver] tombstones [p] and invalidates any update whose recorded
      parent (or whose sibling read) was [p]; the [g.ver] bump
      invalidates updates about to splice {e around} [g].

    A spliced-out subtree (the sibling) moves wholesale under [g];
    operations already below it are unaffected — its internal routers
    and their stamps are untouched, the standard external-BST argument.
    Searches are pure traversals (ASCY1): each child pointer is read
    from a router that was reachable when its parent's pointer was read,
    and splices replace one reachable pointer by another atomically. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node =
    | Leaf of { key : int; value : 'v option; line : Mem.line }
    | Router of 'v router

  and 'v router = {
    key : int;
    line : Mem.line;
    ver : int Mem.r;
    left : 'v node Mem.r;
    right : 'v node Mem.r;
  }

  (* Sentinel keys: all user keys are smaller (Set_intf caps user keys at
     max_int - 2). *)
  let inf1 = max_int - 1
  let inf2 = max_int

  type 'v t = { root : 'v router; rof : bool; ssmem : S.t }

  let name = "bst-pathcas"

  let mk_leaf key value =
    let line = Mem.new_line () in
    Leaf { key; value; line }

  let mk_router key left right =
    let line = Mem.new_line () in
    {
      key;
      line;
      ver = Mem.make line 0;
      left = Mem.make line left;
      right = Mem.make line right;
    }

  let create ?hint:_ ?(read_only_fail = true) () =
    (* natarajan-style initialization: R(inf2) -> S(inf1) + leaf(inf2);
       S -> leaf(inf1) + leaf(inf2); user data grows under S.left, so a
       user key's parent router is never the root and always has a
       router grandparent *)
    let s = mk_router inf1 (mk_leaf inf1 None) (mk_leaf inf2 None) in
    {
      root = mk_router inf2 (Router s) (mk_leaf inf2 None);
      rof = read_only_fail;
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let go_left r k = k < r.key

  type 'v found = {
    g : 'v router;  (** grandparent of the leaf *)
    gv : int;  (** [g.ver], read before [gcell] *)
    gcell : 'v node Mem.r;  (** [g]'s child cell that held [Router p] *)
    pnode : 'v node;  (** the witnessed [Router p] value in [gcell] *)
    p : 'v router;
    pv : int;  (** [p.ver], read before [cell] *)
    cell : 'v node Mem.r;  (** [p]'s child cell that held the leaf *)
    lf : 'v node;  (** the witnessed leaf *)
  }

  (* Version-stamped seek: at every level the router's stamp is read
     before its child pointer, so the stamps recorded in the result
     vouch for the pointers; an odd stamp (the router was spliced out
     between our reading the pointer to it and its stamp) abandons the
     attempt and starts a fresh one, with the same
     parse_end/restart/parse event shape as a failed commit — the seek
     learned the commit cannot succeed, one step earlier than the k-CAS
     would.  Each restart witnesses a fresh splice, so restarts
     terminate.  The initial g-slots are placeholders; user keys are at
     depth >= 2 (see [create]), so they are always overwritten before
     the leaf is reached. *)
  let seek t k =
    let rec restart () =
      Mem.emit E.parse;
      (* the root is never spliced out, so its stamp is always even *)
      let rv = Mem.get t.root.ver in
      match
        go t.root rv
          (if go_left t.root k then t.root.left else t.root.right)
          (Router t.root) t.root rv
      with
      | Some s -> s
      | None ->
          Mem.emit E.parse_end;
          Mem.emit E.restart;
          restart ()
    and go g gv gcell pnode p pv =
      let cell = if go_left p k then p.left else p.right in
      match Mem.get cell with
      | Leaf l as lf ->
          Mem.touch l.line;
          Some { g; gv; gcell; pnode; p; pv; cell; lf }
      | Router r as nd ->
          Mem.touch r.line;
          let rv = Mem.get r.ver in
          if rv land 1 = 1 then None else go p pv cell nd r rv
    in
    restart ()

  let search t k =
    let rec go nd =
      match nd with
      | Leaf l -> if l.key = k then l.value else None
      | Router r ->
          Mem.touch r.line;
          go (Mem.get (if go_left r k then r.left else r.right))
    in
    go (Router t.root)

  (* read_only_fail = false: re-validate the stamp justifying the
     failure with a 1-CAS before reporting it. *)
  let validate_failure ver v attempt =
    if Mem.kcas [ Mem.kcas_op ver ~expected:v ~desired:v ] then false
    else begin
      Mem.emit E.cas_fail;
      Mem.emit E.restart;
      attempt ()
    end

  let insert t k v =
    let rec attempt () =
      let s = seek t k in
      Mem.emit E.parse_end;
      match s.lf with
      | Leaf l when l.key = k ->
          if t.rof then false else validate_failure s.p.ver s.pv attempt
      | Leaf l ->
          let nl = mk_leaf k (Some v) in
          let r = if k < l.key then mk_router l.key nl s.lf else mk_router k s.lf nl in
          if
            Mem.kcas
              [
                Mem.kcas_op s.p.ver ~expected:s.pv ~desired:(s.pv + 2);
                Mem.kcas_op s.cell ~expected:s.lf ~desired:(Router r);
              ]
          then true
          else begin
            Mem.emit E.cas_fail;
            Mem.emit E.restart;
            attempt ()
          end
      | Router _ -> assert false
    in
    attempt ()

  let remove t k =
    let rec attempt () =
      let s = seek t k in
      Mem.emit E.parse_end;
      match s.lf with
      | Leaf l when l.key = k ->
          (* the sibling read is vouched for by [p.ver] at commit *)
          let sibling = Mem.get (if go_left s.p k then s.p.right else s.p.left) in
          if
            Mem.kcas
              [
                Mem.kcas_op s.g.ver ~expected:s.gv ~desired:(s.gv + 2);
                Mem.kcas_op s.p.ver ~expected:s.pv ~desired:(s.pv + 1);
                Mem.kcas_op s.gcell ~expected:s.pnode ~desired:sibling;
              ]
          then begin
            S.free t.ssmem s.pnode;
            S.free t.ssmem s.lf;
            true
          end
          else begin
            Mem.emit E.cas_fail;
            Mem.emit E.restart;
            attempt ()
          end
      | _ -> if t.rof then false else validate_failure s.p.ver s.pv attempt
    in
    attempt ()

  let size t =
    let rec go nd =
      match nd with
      | Leaf l -> if l.value = None then 0 else 1
      | Router r -> go (Mem.get r.left) + go (Mem.get r.right)
    in
    go (Router t.root)

  let validate t =
    let rec go nd lo hi =
      match nd with
      | Leaf l ->
          if l.value <> None && not (l.key >= lo && l.key < hi) then
            Error "leaf key outside router bounds"
          else Ok ()
      | Router r ->
          if not (r.key > lo && r.key <= hi) then Error "router key outside bounds"
          else (
            match go (Mem.get r.left) lo r.key with
            | Error _ as e -> e
            | Ok () -> go (Mem.get r.right) r.key hi)
    in
    go (Router t.root) min_int max_int

  let op_done t = S.quiesce t.ssmem
end
