(** Drachsler, Vechev & Yahav's internal BST with logical ordering
    (Table 1 "drachsler"; PPoPP 2014).

    Every node sits both in the tree and in a sorted doubly-linked
    {e overlay} list (pred/succ) — the logical ordering.  Searches
    descend the tree to a candidate without any synchronization, then
    correct along the overlay, so reads are sequential (ASCY1-ish) even
    while the tree is being restructured.  The overlay, guarded by
    per-edge succ-locks, is the source of truth for membership; tree
    surgery (splice / relocate-successor) happens afterwards under
    per-node tree-locks, acquired with try-lock + full release to stay
    deadlock-free.  Removals take the pred's succ-lock, the victim's
    succ-lock and 2-4 tree locks — the ">= 3 locks per removal" of
    Table 1.

    [read_only_fail] applies ASCY3 as the paper does for drachsler. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info

  and 'v info = {
    key : int;
    line : Mem.line;
    value : 'v option;
    marked : bool Mem.r;
    pred : 'v node Mem.r; (* overlay: always a Node for linked nodes *)
    succ : 'v node Mem.r;
    succ_lock : L.t;
    left : 'v node Mem.r;
    right : 'v node Mem.r;
    parent : 'v node Mem.r;
    tree_lock : L.t;
  }

  type 'v t = { head : 'v info; tail : 'v info; rof : bool; ssmem : S.t }

  let name = "bst-drachsler"

  let mk_info key value =
    let line = Mem.new_line () in
    {
      key;
      line;
      value;
      marked = Mem.make line false;
      pred = Mem.make line Nil;
      succ = Mem.make line Nil;
      succ_lock = L.create line;
      left = Mem.make line Nil;
      right = Mem.make line Nil;
      parent = Mem.make line Nil;
      tree_lock = L.create line;
    }

  let create ?hint:_ ?(read_only_fail = true) () =
    let head = mk_info min_int None in
    let tail = mk_info max_int None in
    Mem.set head.succ (Node tail);
    Mem.set tail.pred (Node head);
    (* tree: head is the root, tail its right child *)
    Mem.set head.right (Node tail);
    Mem.set tail.parent (Node head);
    {
      head;
      tail;
      rof = read_only_fail;
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let info = function Node n -> n | Nil -> assert false

  (* Tree descent to a candidate (no synchronization), then overlay
     correction to the node with the largest key <= k. *)
  let locate t k =
    let rec descend (n : 'v info) =
      let c = if k < n.key then Mem.get n.left else Mem.get n.right in
      match c with
      | Nil -> n
      | Node m ->
          Mem.touch m.line;
          descend m
    in
    let c = descend t.head in
    let rec back (c : 'v info) =
      if c.key > k then back (info (Mem.get c.pred)) else c
    in
    let rec fwd (c : 'v info) =
      match Mem.get c.succ with
      | Node s when s.key <= k ->
          Mem.touch s.line;
          fwd s
      | _ -> c
    in
    fwd (back c)

  let search t k =
    let c = locate t k in
    if c.key = k && not (Mem.get c.marked) then c.value else None

  (* -------------------- overlay (logical) layer -------------------- *)

  (* Lock pred's succ-lock such that pred is live and pred.succ.key > k
     (with pred.key <= k); retries in place. *)
  let rec lock_pred t k =
    let p = locate t k in
    let p = if p.key = k then info (Mem.get p.pred) else p in
    L.acquire p.succ_lock;
    if Mem.get p.marked then begin
      L.release p.succ_lock;
      Mem.emit E.restart;
      lock_pred t k
    end
    else
      let s = info (Mem.get p.succ) in
      if p.key < k && s.key >= k then (p, s)
      else begin
        L.release p.succ_lock;
        Mem.emit E.restart;
        lock_pred t k
      end

  (* ---------------------- tree (physical) layer -------------------- *)

  (* In an internal BST, the attach point of a key is always its current
     in-order predecessor (right child free) or successor (left child
     free).  Drachsler exploits this: attach only under the node's
     *overlay* neighbours, whose tree locks serialize against their own
     relocation — an unsynchronized descent could land deep on a spine
     that a concurrent successor-relocation is about to move. *)
  let rec tree_attach t (n : 'v info) =
    let try_under (c : 'v info) cell =
      L.acquire c.tree_lock;
      let in_tree =
        c == t.head
        || (match Mem.get c.parent with
           | Node m -> (
               match Mem.get (if c.key < m.key then m.left else m.right) with
               | Node cc -> cc == c
               | Nil -> false)
           | Nil -> false)
      in
      let ok = in_tree && (match Mem.get cell with Nil -> true | Node _ -> false) in
      if ok then begin
        Mem.set cell (Node n);
        Mem.set n.parent (Node c)
      end;
      L.release c.tree_lock;
      ok
    in
    let p = info (Mem.get n.pred) in
    if (not (Mem.get p.marked)) && try_under p p.right then ()
    else begin
      let s = info (Mem.get n.succ) in
      if (not (Mem.get s.marked)) && try_under s s.left then ()
      else begin
        Mem.emit E.restart;
        Mem.cpu_relax ();
        tree_attach t n
      end
    end

  let child_cell (p : 'v info) (x : 'v info) =
    match Mem.get p.left with Node m when m == x -> p.left | _ -> p.right

  let is_child (p : 'v info) (x : 'v info) =
    match Mem.get (child_cell p x) with Node m -> m == x | Nil -> false

  (* Remove [x] from the tree.  Retries with try-locks until it wins. *)
  let rec tree_detach t (x : 'v info) =
    let with_locks locks f =
      let rec grab = function
        | [] -> true
        | (l : L.t) :: rest ->
            if L.try_acquire l then
              if grab rest then true
              else begin
                L.release l;
                false
              end
            else false
      in
      if grab locks then begin
        let r = f () in
        List.iter L.release locks;
        r
      end
      else false
    in
    let retry () =
      Mem.emit E.restart;
      Mem.cpu_relax ();
      tree_detach t x
    in
    (* a freshly inserted victim may not be attached to the tree yet;
       wait for its inserter to finish *)
    let rec parent_of () =
      match Mem.get x.parent with
      | Node p -> p
      | Nil ->
          Mem.emit E.wait;
          Mem.cpu_relax ();
          parent_of ()
    in
    let p = parent_of () in
    match (Mem.get x.left, Mem.get x.right) with
    | Nil, _ | _, Nil ->
        (* splice x out (its only child, if any, moves up) *)
        let ok =
          with_locks [ p.tree_lock; x.tree_lock ] (fun () ->
              if not (is_child p x) then false
              else begin
                match (Mem.get x.left, Mem.get x.right) with
                | Node _, Node _ -> false (* gained a child: relocate instead *)
                | (Nil, o | o, Nil) ->
                    Mem.set (child_cell p x) o;
                    (match o with Node om -> Mem.set om.parent (Node p) | Nil -> ());
                    true
              end)
        in
        if ok then S.free t.ssmem x else retry ()
    | Node _, Node _ ->
        (* two children: relocate x's in-order successor into x's slot *)
        let rec leftmost (m : 'v info) =
          match Mem.get m.left with Nil -> m | Node l -> leftmost l
        in
        let sm = leftmost (info (Mem.get x.right)) in
        let smp = info (Mem.get sm.parent) in
        let locks =
          if smp == x then [ p.tree_lock; x.tree_lock; sm.tree_lock ]
          else [ p.tree_lock; x.tree_lock; smp.tree_lock; sm.tree_lock ]
        in
        let ok =
          with_locks locks (fun () ->
              (* validate the whole constellation *)
              if
                is_child p x
                && (match Mem.get sm.parent with Node m -> m == smp | Nil -> false)
                && (match Mem.get sm.left with Nil -> true | Node _ -> false)
                (* sm must still hang where we found it — including when
                   its parent is x itself (a spliced-out node keeps its
                   stale parent pointer, so the parent check alone is not
                   enough) *)
                && is_child smp sm
                && (match Mem.get x.parent with Node m -> m == p | Nil -> false)
              then begin
                (* unhook sm (it has no left child) *)
                let smr = Mem.get sm.right in
                if smp == x then begin
                  (* sm is x.right: keep its right subtree in place *)
                  Mem.set sm.left (Mem.get x.left);
                  (match Mem.get x.left with Node l -> Mem.set l.parent (Node sm) | Nil -> ());
                  Mem.set (child_cell p x) (Node sm);
                  Mem.set sm.parent (Node p)
                end
                else begin
                  Mem.set (child_cell smp sm) smr;
                  (match smr with Node r -> Mem.set r.parent (Node smp) | Nil -> ());
                  Mem.set sm.left (Mem.get x.left);
                  Mem.set sm.right (Mem.get x.right);
                  (match Mem.get x.left with Node l -> Mem.set l.parent (Node sm) | Nil -> ());
                  (match Mem.get x.right with Node r -> Mem.set r.parent (Node sm) | Nil -> ());
                  Mem.set (child_cell p x) (Node sm);
                  Mem.set sm.parent (Node p)
                end;
                true
              end
              else false)
        in
        if ok then S.free t.ssmem x else retry ()

  (* ------------------------- operations --------------------------- *)

  let insert t k v =
    let quick_present () =
      let c = locate t k in
      c.key = k && not (Mem.get c.marked)
    in
    Mem.emit E.parse;
    let doomed = t.rof && quick_present () in
    Mem.emit E.parse_end;
    if doomed then false
    else begin
      let rec attempt () =
        let p, s = lock_pred t k in
        if s.key = k && not (Mem.get s.marked) then begin
          L.release p.succ_lock;
          false
        end
        else if s.key = k then begin
          (* marked duplicate still linked: wait for it to go *)
          L.release p.succ_lock;
          Mem.emit E.wait;
          Mem.cpu_relax ();
          attempt ()
        end
        else begin
          let n = mk_info k (Some v) in
          Mem.set n.pred (Node p);
          Mem.set n.succ (Node s);
          Mem.set s.pred (Node n);
          Mem.set p.succ (Node n);
          L.release p.succ_lock;
          tree_attach t n;
          true
        end
      in
      attempt ()
    end

  let remove t k =
    let quick_absent () =
      let c = locate t k in
      not (c.key = k && not (Mem.get c.marked))
    in
    Mem.emit E.parse;
    let doomed = t.rof && quick_absent () in
    Mem.emit E.parse_end;
    if doomed then false
    else begin
      let attempt () =
        let p, s = lock_pred t k in
        if not (s.key = k) then begin
          L.release p.succ_lock;
          false
        end
        else begin
          (* s is the victim; it cannot become marked while we hold the
             pred's succ-lock (marking requires that same lock) *)
          L.acquire s.succ_lock;
          if Mem.get s.marked then begin
            L.release s.succ_lock;
            L.release p.succ_lock;
            false
          end
          else begin
            Mem.set s.marked true;
            (* tree surgery FIRST, while the victim is still in the
               overlay: inserters whose overlay neighbour is the marked
               victim wait, so no key can attach under a stale pred while
               the victim still routes in the tree *)
            tree_detach t s;
            (* now unlink from the ordering list (locks still held);
               reverse the victim's succ so traversals standing on it
               retreat to the predecessor *)
            let nx = info (Mem.get s.succ) in
            Mem.set s.succ (Node p);
            Mem.set nx.pred (Node p);
            Mem.set p.succ (Node nx);
            L.release s.succ_lock;
            L.release p.succ_lock;
            true
          end
        end
      in
      attempt ()
    end

  let size t =
    let rec go (n : 'v info) acc =
      match Mem.get n.succ with
      | Node s when s == t.tail -> acc
      | Node s -> go s (acc + 1)
      | Nil -> acc
    in
    go t.head 0

  let validate t =
    (* overlay sorted + consistent back links; tree order sane *)
    let rec overlay (n : 'v info) last =
      match Mem.get n.succ with
      | Nil -> Error "overlay broken: missing tail"
      | Node s when s == t.tail -> Ok ()
      | Node s ->
          if s.key <= last then Error "overlay keys not increasing"
          else if not (info (Mem.get s.pred) == n) then Error "overlay pred/succ mismatch"
          else overlay s s.key
    in
    let rec tree nd lo hi =
      match nd with
      | Nil -> Ok ()
      | Node n ->
          if n.key <= lo || n.key > hi then Error "tree order violated"
          else (
            match tree (Mem.get n.left) lo n.key with
            | Error _ as e -> e
            | Ok () -> tree (Mem.get n.right) n.key hi)
    in
    match overlay t.head min_int with
    | Error _ as e -> e
    | Ok () -> tree (Mem.get t.head.right) min_int max_int

  let op_done t = S.quiesce t.ssmem
end
