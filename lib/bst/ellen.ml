(** Ellen, Fatourou, Ruppert & van Breugel's non-blocking external BST
    (Table 1 "ellen"; PODC 2010).

    Each internal node carries an [update] field: a state (clean /
    insert-flagged / delete-flagged / marked) plus a pointer to an info
    record describing the pending operation.  Updates flag the nodes they
    intend to modify and {e help} any pending operation they encounter —
    the helping overhead the paper contrasts with natarajan's design.

    Insert: flag parent (IFlag) -> CAS the child edge -> unflag.
    Delete: flag grandparent (DFlag) -> mark parent -> CAS grandparent's
    child edge to the sibling -> unflag; a failed mark backtracks
    (unflags the grandparent) and retries. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  let inf1 = max_int - 1
  let inf2 = max_int

  type 'v node =
    | Leaf of { key : int; value : 'v option; line : Mem.line }
    | Internal of 'v internal

  and 'v internal = {
    key : int;
    line : Mem.line;
    left : 'v node Mem.r;
    right : 'v node Mem.r;
    update : 'v update Mem.r;
  }

  (* The update field is never the same block twice: completed
     operations leave a unique [IDone]/[DDone] state behind (the paper's
     info-pointer-with-state-bits), which is what protects the flag
     CASes from ABA. *)
  and 'v update =
    | Init
    | IFlag of 'v iinfo
    | DFlag of 'v dinfo
    | Mark of 'v dinfo
    | IDone of 'v iinfo
    | DDone of 'v dinfo

  and 'v iinfo = { ip : 'v internal; inew : 'v internal; il : 'v node }

  and 'v dinfo = { dg : 'v internal; dp : 'v internal; dl : 'v node; pupdate : 'v update }

  type 'v t = { root : 'v internal; ssmem : S.t }

  let name = "bst-ellen"

  let mk_leaf key value =
    let line = Mem.new_line () in
    Leaf { key; value; line }

  let mk_internal key left right =
    let line = Mem.new_line () in
    {
      key;
      line;
      left = Mem.make line left;
      right = Mem.make line right;
      update = Mem.make line Init;
    }

  let create ?hint:_ ?read_only_fail:_ () =
    let s = mk_internal inf1 (mk_leaf inf1 None) (mk_leaf inf2 None) in
    {
      root = mk_internal inf2 (Internal s) (mk_leaf inf2 None);
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let child_cell (n : 'v internal) k = if k < n.key then n.left else n.right

  (* CAS-replace the child of [p] matched by [is_old] with [nw] (the
     paper's ichild / dchild CAS).  The expected value must be the block
     actually stored in the cell — a freshly allocated [Internal _]
     wrapper would never be physically equal — so we read the cell and
     CAS against that exact read. *)
  let cas_child (p : 'v internal) ~is_old nw =
    let l = Mem.get p.left in
    if is_old l then ignore (Mem.cas p.left l nw)
    else begin
      let r = Mem.get p.right in
      if is_old r then ignore (Mem.cas p.right r nw)
    end

  let is_clean = function
    | Init | IDone _ | DDone _ -> true
    | IFlag _ | DFlag _ | Mark _ -> false

  (* help_insert: finish the ichild CAS and unflag.  [u] must be the
     stored IFlag block (CAS uses physical equality); the new state is a
     fresh unique block, preventing ABA on later flag CASes. *)
  let help_insert (u : 'v update) (op : 'v iinfo) =
    cas_child op.ip ~is_old:(fun nd -> nd == op.il) (Internal op.inew);
    ignore (Mem.cas op.ip.update u (IDone op))

  (* help_marked: the parent is marked; swing the grandparent's edge to
     the sibling of the deleted leaf and unflag the grandparent. *)
  let help_marked t (op : 'v dinfo) =
    let sibling =
      let l = Mem.get op.dp.left in
      if l == op.dl then Mem.get op.dp.right else l
    in
    cas_child op.dg
      ~is_old:(fun nd -> match nd with Internal i -> i == op.dp | Leaf _ -> false)
      sibling;
    (* unflag against the stored DFlag block for this very operation *)
    match Mem.get op.dg.update with
    | DFlag m as u when m == op ->
        if Mem.cas op.dg.update u (DDone op) then begin
          S.free t.ssmem op.dp;
          S.free t.ssmem op.dl
        end
    | _ -> ()

  (* help_delete: try to mark the parent; on success complete via
     help_marked, otherwise backtrack (unflag the grandparent). *)
  let rec help t (u : 'v update) =
    Mem.emit E.help;
    match u with
    | IFlag op as u -> help_insert u op
    | DFlag op -> ignore (help_delete t op)
    | Mark op -> help_marked t op
    | Init | IDone _ | DDone _ -> ()

  and help_delete t (op : 'v dinfo) =
    if Mem.cas op.dp.update op.pupdate (Mark op) then begin
      help_marked t op;
      true
    end
    else begin
      let u = Mem.get op.dp.update in
      if (match u with Mark m -> m == op | _ -> false) then begin
        (* already marked for this very operation (we or a helper won) *)
        help_marked t op;
        true
      end
      else begin
        (* failed to mark: help whatever is there, then backtrack by
           unflagging our own stored DFlag *)
        help t u;
        (match Mem.get op.dg.update with
        | DFlag m as dgu when m == op -> ignore (Mem.cas op.dg.update dgu (DDone op))
        | _ -> ());
        false
      end
    end

  (* Search returns (gp, gpupdate, p, pupdate, leaf). *)
  let seek t k =
    let rec go (gp : 'v internal) gpu (p : 'v internal) pu =
      match Mem.get (child_cell p k) with
      | Leaf l as lf ->
          Mem.touch l.line;
          (gp, gpu, p, pu, lf)
      | Internal i ->
          Mem.touch i.line;
          go p pu i (Mem.get i.update)
    in
    match Mem.get (child_cell t.root k) with
    | Internal i -> go t.root (Mem.get t.root.update) i (Mem.get i.update)
    | Leaf _ -> assert false

  let search t k =
    let rec go (p : 'v internal) =
      match Mem.get (child_cell p k) with
      | Leaf l ->
          Mem.touch l.line;
          if l.key = k then l.value else None
      | Internal i ->
          Mem.touch i.line;
          go i
    in
    go t.root

  let insert t k v =
    let rec attempt () =
      Mem.emit E.parse;
      let _, _, p, pu, lf = seek t k in
      match lf with
      | Leaf l when l.key = k -> false
      | Leaf l ->
          if not (is_clean pu) then begin
            help t pu;
            attempt ()
          end
          else begin
            Mem.emit E.parse_end;
            let nl = mk_leaf k (Some v) in
            let ni =
              if k < l.key then mk_internal l.key nl lf else mk_internal k lf nl
            in
            let op = { ip = p; inew = ni; il = lf } in
            let flag = IFlag op in
            if Mem.cas p.update pu flag then begin
              help_insert flag op;
              true
            end
            else begin
              Mem.emit E.cas_fail;
              help t (Mem.get p.update);
              attempt ()
            end
          end
      | Internal _ -> assert false
    in
    attempt ()

  let remove t k =
    let rec attempt () =
      Mem.emit E.parse;
      let gp, gpu, p, pu, lf = seek t k in
      match lf with
      | Leaf l when l.key <> k -> false
      | Leaf _ ->
          if not (is_clean gpu) then begin
            help t gpu;
            attempt ()
          end
          else if not (is_clean pu) then begin
            help t pu;
            attempt ()
          end
          else begin
            Mem.emit E.parse_end;
            let op = { dg = gp; dp = p; dl = lf; pupdate = pu } in
            if Mem.cas gp.update gpu (DFlag op) then begin
              if help_delete t op then true
              else begin
                Mem.emit E.restart;
                attempt ()
              end
            end
            else begin
              Mem.emit E.cas_fail;
              help t (Mem.get gp.update);
              attempt ()
            end
          end
      | Internal _ -> assert false
    in
    attempt ()

  let size t =
    let rec go = function
      | Leaf l -> if l.value = None then 0 else 1
      | Internal i -> go (Mem.get i.left) + go (Mem.get i.right)
    in
    go (Internal t.root)

  let validate t =
    let rec go nd lo hi =
      match nd with
      | Leaf l ->
          if l.value <> None && not (l.key >= lo && l.key < hi) then
            Error "leaf key outside router bounds"
          else Ok ()
      | Internal i ->
          if not (i.key > lo && i.key <= hi) then Error "internal key outside bounds"
          else (
            match go (Mem.get i.left) lo i.key with
            | Error _ as e -> e
            | Ok () -> go (Mem.get i.right) i.key hi)
    in
    go (Internal t.root) min_int max_int

  let op_done t = S.quiesce t.ssmem
end
