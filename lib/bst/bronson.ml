(** Bronson, Casper, Chafi & Olukotun's practical concurrent BST
    (Table 1 "bronson"; PPoPP 2010), partially external variant.

    An internal tree with per-node version numbers and locks, traversed
    optimistically: a reader records a node's version, reads the child
    pointer, and re-checks the version; while a structural {e shrink} is
    in progress the version is odd and readers {b block-wait} (the
    behaviour Table 1 calls out: "a search/parse can block waiting for a
    concurrent update to complete").

    Partially external: deleting a node with two children merely clears
    its value, leaving it as a routing node (no rotation of the key like
    a plain internal tree); routing nodes with at most one child are
    spliced out under locks, bumping the version.  Insertion of an
    existing routing key revives the node in place. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info

  and 'v info = {
    key : int;
    line : Mem.line;
    value : 'v option Mem.r; (* None = routing node *)
    version : int Mem.r; (* odd while shrinking *)
    lock : L.t;
    left : 'v node Mem.r;
    right : 'v node Mem.r;
    unlinked : bool Mem.r;
  }

  type 'v t = { root : 'v info; ssmem : S.t }

  let name = "bst-bronson"

  let mk_info key value =
    let line = Mem.new_line () in
    {
      key;
      line;
      value = Mem.make line value;
      version = Mem.make line 0;
      lock = L.create line;
      left = Mem.make line Nil;
      right = Mem.make line Nil;
      unlinked = Mem.make line false;
    }

  (* root sentinel routes everything to its left *)
  let create ?hint:_ ?read_only_fail:_ () =
    { root = mk_info max_int None; ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold () }

  let child (n : 'v info) k = if k < n.key then n.left else n.right

  (* Wait until [n]'s version is even (no shrink in flight), return it. *)
  let stable_version (n : 'v info) =
    let rec go () =
      let v = Mem.get n.version in
      if v land 1 = 1 then begin
        Mem.emit E.wait;
        Mem.cpu_relax ();
        go ()
      end
      else v
    in
    go ()

  exception Retry

  (* Optimistic hand-over-hand descent; raises Retry on version change. *)
  let search t k =
    let rec attempt () =
      match
        let rec go (n : 'v info) =
          if n.key = k then (if Mem.get n.unlinked then raise Retry else Mem.get n.value)
          else begin
            let v = stable_version n in
            let c = Mem.get (child n k) in
            if Mem.get n.version <> v then raise Retry;
            match c with
            | Nil ->
                (* validate the miss: the edge must still be current *)
                if Mem.get n.version <> v then raise Retry;
                None
            | Node m ->
                Mem.touch m.line;
                go m
          end
        in
        go t.root
      with
      | r -> r
      | exception Retry ->
          Mem.emit E.restart;
          attempt ()
    in
    attempt ()

  let insert t k v =
    let rec attempt () =
      Mem.emit E.parse;
      match
        let rec go (n : 'v info) =
          if n.key = k then begin
            (* revive or fail on the existing (possibly routing) node *)
            Mem.emit E.parse_end;
            L.acquire n.lock;
            if Mem.get n.unlinked then begin
              L.release n.lock;
              raise Retry
            end
            else begin
              let r =
                match Mem.get n.value with
                | Some _ -> false
                | None ->
                    Mem.set n.value (Some v);
                    true
              in
              L.release n.lock;
              r
            end
          end
          else begin
            let ver = stable_version n in
            match Mem.get (child n k) with
            | Node m ->
                if Mem.get n.version <> ver then raise Retry;
                Mem.touch m.line;
                go m
            | Nil ->
                Mem.emit E.parse_end;
                L.acquire n.lock;
                if Mem.get n.unlinked || Mem.get (child n k) <> Nil then begin
                  L.release n.lock;
                  raise Retry
                end
                else begin
                  Mem.set (child n k) (Node (mk_info k (Some v)));
                  L.release n.lock;
                  true
                end
          end
        in
        go t.root
      with
      | r -> r
      | exception Retry ->
          Mem.emit E.restart;
          attempt ()
    in
    attempt ()

  (* Splice a routing node with <= 1 child out of the tree: lock parent
     and node, mark the node shrinking (odd version), redirect, publish. *)
  let try_unlink t (p : 'v info) (n : 'v info) =
    L.acquire p.lock;
    L.acquire n.lock;
    let ok =
      (not (Mem.get p.unlinked))
      && (not (Mem.get n.unlinked))
      && Mem.get n.value = None
      &&
      let cell = child p n.key in
      match Mem.get cell with
      | Node m when m == n -> (
          match (Mem.get n.left, Mem.get n.right) with
          | Nil, only | only, Nil ->
              let v = Mem.get n.version in
              Mem.set n.version (v + 1) (* shrinking: readers at n wait *);
              Mem.set cell only;
              Mem.set n.unlinked true;
              Mem.set n.version (v + 2);
              true
          | Node _, Node _ -> false)
      | _ -> false
    in
    L.release n.lock;
    L.release p.lock;
    if ok then S.free t.ssmem n;
    ok

  let remove t k =
    let rec attempt () =
      Mem.emit E.parse;
      match
        let rec go (p : 'v info) (n : 'v info) =
          if n.key = k then begin
            Mem.emit E.parse_end;
            L.acquire n.lock;
            if Mem.get n.unlinked then begin
              L.release n.lock;
              raise Retry
            end
            else begin
              match Mem.get n.value with
              | None ->
                  L.release n.lock;
                  false
              | Some _ ->
                  Mem.set n.value None;
                  L.release n.lock;
                  (* opportunistically splice if it became a <=1-child
                     routing node *)
                  (match (Mem.get n.left, Mem.get n.right) with
                  | Node _, Node _ -> ()
                  | _ -> ignore (try_unlink t p n));
                  true
            end
          end
          else begin
            let ver = stable_version n in
            match Mem.get (child n k) with
            | Node m ->
                if Mem.get n.version <> ver then raise Retry;
                Mem.touch m.line;
                go n m
            | Nil ->
                if Mem.get n.version <> ver then raise Retry;
                false
          end
        in
        go t.root t.root
      with
      | r -> r
      | exception Retry ->
          Mem.emit E.restart;
          attempt ()
    in
    attempt ()

  let size t =
    let rec go = function
      | Nil -> 0
      | Node n ->
          (if Mem.get n.value = None then 0 else 1) + go (Mem.get n.left) + go (Mem.get n.right)
    in
    go (Mem.get t.root.left)

  let validate t =
    let rec go nd lo hi =
      match nd with
      | Nil -> Ok ()
      | Node n ->
          if n.key <= lo || n.key >= hi then Error "BST order violated"
          else (
            match go (Mem.get n.left) lo n.key with
            | Error _ as e -> e
            | Ok () -> go (Mem.get n.right) n.key hi)
    in
    go (Mem.get t.root.left) min_int max_int

  let op_done t = S.quiesce t.ssmem
end
