(** Internal lock-free BST with operation records and helping, after
    Howley & Jones (Table 1 "howley"; SPAA 2012).

    Every child-pointer mutation goes through the owning node's [op]
    field: a thread claims the node with a CAS installing a [ChildCAS]
    record, performs the child CAS, publishes the outcome in the record
    and releases the node — and {e any} thread that encounters a pending
    record helps complete it, searches included ("all three operations
    perform helping and might need to restart", exactly the ASCY1/2
    violations the paper quantifies on this algorithm).  Three atomic
    operations per structural update, against natarajan's ~two.

    Faithful simplification (documented in DESIGN.md): where Howley
    relocates the successor's key into a deleted two-child node, we
    tombstone the node in place (its [value] cell becomes [None], equal
    keys route right) and splice tombstones with at most one child; the
    synchronization structure — op claiming, helping, restarts — is the
    algorithm's. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info

  and 'v info = {
    key : int;
    line : Mem.line;
    value : 'v option Mem.r; (* None = tombstone (routing) *)
    op : 'v op Mem.r;
    left : 'v node Mem.r;
    right : 'v node Mem.r;
  }

  and 'v op =
    | Clean
    | Dead (* spliced out (unlinked): terminal *)
    | ChildCAS of 'v ccas
    | Splice of 'v splice
        (* frozen for splicing — a full operation record, so any thread
           that encounters it (the owner may have crash-stopped) can
           finish or abort the splice instead of spinning behind it *)

  and 'v ccas = {
    cell : 'v node Mem.r;
    expected : 'v node;
    update : 'v node;
    outcome : int Mem.r; (* 0 pending / 1 success / 2 failure *)
  }

  and 'v splice = {
    s_parent : 'v info;
    s_cell : 'v node Mem.r; (* parent cell observed to hold the node *)
    s_expected : 'v node; (* the stored [Node n] block in that cell *)
    s_state : int Mem.r; (* 0 undecided / 1 commit / 2 abort *)
    s_done : int Mem.r;
        (* shared unlink outcome (the [ccas.outcome] every helper's
           child-CAS submission carries): 0 pending / 1 landed / 2 never.
           One cell for the whole record — a helper that loses the race
           can still tell the unlink landed after the parent cell has
           moved on, where a private outcome cell would misread that as
           "never happened" and wrongly release the freeze *)
  }

  type 'v t = { root : 'v info; ssmem : S.t }

  let name = "bst-howley"

  let mk_info key value =
    let line = Mem.new_line () in
    {
      key;
      line;
      value = Mem.make line value;
      op = Mem.make line Clean;
      left = Mem.make line Nil;
      right = Mem.make line Nil;
    }

  (* root sentinel: routes every user key to its left *)
  let create ?hint:_ ?read_only_fail:_ () =
    { root = mk_info max_int None; ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold () }

  (* Equal keys route right (tombstones are routers). *)
  let child (n : 'v info) k = if k < n.key then n.left else n.right

  (* Complete a claimed ChildCAS: perform the swap, publish the outcome,
     release the owner.  Within the claim window the cell can only change
     through this record, and [update] is a unique block, so reading the
     cell disambiguates who won. *)
  let perform (owner : 'v info) (u : 'v op) (c : 'v ccas) =
    if Mem.cas c.cell c.expected c.update then ignore (Mem.cas c.outcome 0 1)
    else if Mem.get c.cell == c.update then ignore (Mem.cas c.outcome 0 1)
    else ignore (Mem.cas c.outcome 0 2);
    (* release against the stored ChildCAS block [u] (physical CAS) *)
    ignore (Mem.cas owner.op u Clean)

  (* help / execute / resolve are mutually recursive: completing a
     splice claims the parent, which may require helping the parent's
     own pending operation first. *)
  let rec help (owner : 'v info) (u : 'v op) =
    match u with
    | ChildCAS c ->
        Mem.emit E.help;
        perform owner u c
    | Splice s ->
        Mem.emit E.help;
        ignore (resolve owner u s)
    | Clean | Dead -> ()

  (* Claim [owner] and run [c]; true iff the child CAS took effect. *)
  and execute (owner : 'v info) (c : 'v ccas) =
    match Mem.get owner.op with
    | Clean ->
        let u = ChildCAS c in
        if Mem.cas owner.op Clean u then begin
          perform owner u c;
          Mem.get c.outcome = 1
        end
        else begin
          Mem.emit E.cas_fail;
          execute owner c
        end
    | (ChildCAS _ | Splice _) as u ->
        help owner u;
        execute owner c
    | Dead -> false (* owner is (terminally) spliced *)

  (* Complete or abort a splice frozen into [n.op].  Callable by any
     thread — the freezing thread may have crash-stopped — and
     idempotent: the [s_state] CAS decides once, every helper then acts
     on the decided state.  While the record is installed [n]'s children
     are frozen (child mutations claim [n.op]), so the decision and the
     only-child read are stable; [n.value] only ever transitions
     [Some _ -> None], so a commit decision cannot be invalidated.
     Returns true iff the caller both won the terminal transition and
     saw the unlink land — the owner of the deferred free. *)
  and resolve (n : 'v info) (u : 'v op) (s : 'v splice) =
    if Mem.get s.s_state = 0 then
      (match (Mem.get n.left, Mem.get n.right) with
      | Node _, Node _ -> ignore (Mem.cas s.s_state 0 2) (* gained a 2nd child *)
      | _ ->
          if Mem.get n.value <> None then ignore (Mem.cas s.s_state 0 2)
          else ignore (Mem.cas s.s_state 0 1));
    match Mem.get s.s_state with
    | 2 ->
        ignore (Mem.cas n.op u Clean);
        false
    | _ ->
        (* commit: unlink [n] via its parent's op protocol.  [only] and
           the expected block come from frozen cells, so every helper
           submits the identical transition — carrying the record's
           {e shared} [s_done] outcome — and the cell moves
           [s_expected -> only] at most once. *)
        let only = match (Mem.get n.left, Mem.get n.right) with Nil, r -> r | l, _ -> l in
        let c = { cell = s.s_cell; expected = s.s_expected; update = only; outcome = s.s_done } in
        if execute s.s_parent c || Mem.get s.s_done = 1 then begin
          (* unlinked: [Dead] is terminal, and winning the transition
             confers ownership of the deferred free.  The [s_done] check
             covers a helper whose [execute] lost without performing
             (e.g. the recorded parent died after the unlink landed):
             the unlink happened, so the node must still go [Dead] — a
             private per-helper outcome cell here once let a late helper
             misread "cell moved past the unlink" as "unlink never
             happened" and resurrect an unlinked node to [Clean], where
             an insert could attach a child and lose it. *)
          Mem.cas n.op u Dead
        end
        else begin
          (* the recorded parent went stale (or is itself dead) before
             the unlink landed — [s_done] still pending proves it never
             will: the cell can no longer hold [s_expected].  Release
             the freeze instead of marking [Dead] — the node stays a
             linked routing tombstone (same as any skipped physical
             cleanup) and nobody blocks behind it.  Keeping
             [Dead => unlinked] is what rules out reachable dead nodes,
             which would wedge inserts routed into them. *)
          ignore (Mem.cas n.op u Clean);
          false
        end

  (* Descent that helps pending operations it encounters. *)
  let descend t k ~helping =
    let rec go (p : 'v info) (n : 'v info) =
      (if helping then
         match Mem.get n.op with
         | (ChildCAS _ | Splice _) as u -> help n u
         | Clean | Dead -> ());
      if n.key = k && Mem.get n.value <> None then `Found (p, n)
      else
        match Mem.get (child n k) with
        | Nil -> `Missing (p, n)
        | Node m ->
            Mem.touch m.line;
            go n m
    in
    go t.root t.root

  let search t k =
    match descend t k ~helping:true with
    | `Found (_, n) -> Mem.get n.value
    | `Missing _ -> None

  (* Try to splice tombstone [n] (child of [p], <= 1 child) out.  The
     freeze installs a full [Splice] record — never a bare state only
     its owner could undo — so if this thread crash-stops mid-splice any
     later traverser helps the operation to completion via [resolve]. *)
  let try_splice t (p : 'v info) (n : 'v info) =
    if n != t.root then begin
      let cell = match Mem.get p.left with Node m when m == n -> p.left | _ -> p.right in
      match Mem.get cell with
      | Node m as stored when m == n -> (
          (* the expected value must be the stored block, not a fresh
             [Node n] wrapper *)
          let s =
            {
              s_parent = p;
              s_cell = cell;
              s_expected = stored;
              s_state = Mem.make_fresh 0;
              s_done = Mem.make_fresh 0;
            }
          in
          let u = Splice s in
          match Mem.get n.op with
          | Clean ->
              if Mem.cas n.op Clean u then
                if resolve n u s then S.free t.ssmem n
          | _ -> () (* busy: the pending op's helpers will get to it *))
      | _ -> () (* p is stale *)
    end

  (* [Dead] implies unlinked, so a descent that lands on a dead node
     raced the splice (it read the child cell before the unlink).  The
     retry's fresh descent routes past it; this belt-and-braces unlink
     through the *current* parent additionally guarantees progress if a
     dead node were ever still linked — an insert routed into one would
     otherwise restart forever. *)
  let unlink_dead (p : 'v info) (n : 'v info) =
    let only = match (Mem.get n.left, Mem.get n.right) with Nil, r -> r | l, _ -> l in
    let splice cell stored =
      ignore (execute p { cell; expected = stored; update = only; outcome = Mem.make_fresh 0 })
    in
    match Mem.get p.left with
    | Node m as stored when m == n -> splice p.left stored
    | _ -> (
        match Mem.get p.right with
        | Node m as stored when m == n -> splice p.right stored
        | _ -> () (* already unlinked, or p went stale too *))

  let insert t k v =
    let rec attempt () =
      Mem.emit E.parse;
      match descend t k ~helping:true with
      | `Found _ -> false
      | `Missing (p, n) ->
          let cell = child n k in
          let c =
            {
              cell;
              expected = Nil;
              update = Node (mk_info k (Some v));
              outcome = Mem.make_fresh 0;
            }
          in
          if execute n c then true
          else begin
            (match Mem.get n.op with Dead -> unlink_dead p n | _ -> ());
            Mem.emit E.restart;
            attempt ()
          end
    in
    attempt ()

  (* No parse_end in this file: howley has no clean parse/modify split —
     the decision CASes run through the same op-claiming machinery as
     helping, so the whole operation is one (storing) parse.  That is the
     declared ASCY2 violation. *)
  let remove t k =
    Mem.emit E.parse;
    match descend t k ~helping:true with
    | `Missing _ -> false
    | `Found (p, n) -> (
        match Mem.get n.value with
        | None -> false
        | Some _ as v ->
            if Mem.cas n.value v None then begin
              (* physical cleanup when it is cheap *)
              (match (Mem.get n.left, Mem.get n.right) with
              | Node _, Node _ -> () (* stays as a routing tombstone *)
              | _ -> try_splice t p n);
              true
            end
            else false (* another remove won *))

  let size t =
    let rec go = function
      | Nil -> 0
      | Node n ->
          (if Mem.get n.value = None then 0 else 1) + go (Mem.get n.left) + go (Mem.get n.right)
    in
    go (Mem.get t.root.left)

  let validate t =
    (* equal keys route right: lo is inclusive for tombstone duplicates *)
    let rec go nd lo hi =
      match nd with
      | Nil -> Ok ()
      | Node n ->
          if n.key < lo || n.key >= hi then Error "BST order violated"
          else (
            match go (Mem.get n.left) lo n.key with
            | Error _ as e -> e
            | Ok () -> go (Mem.get n.right) n.key hi)
    in
    go (Mem.get t.root.left) min_int max_int

  let op_done t = S.quiesce t.ssmem
end
