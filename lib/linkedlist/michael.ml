(** Michael's lock-free linked list (Table 1, "michael"; SPAA 2002).

    A refactoring of Harris's list that unlinks logically-deleted nodes
    {e one at a time} so that each physically-removed node can be handed
    to the memory allocator immediately — the property that makes the
    algorithm compatible with non-blocking reclamation (here SSMEM).
    Any failed clean-up CAS restarts the traversal from the head. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of { key : int; value : 'v; line : Mem.line; next : 'v link Mem.r }
  and 'v link = { mark : bool; succ : 'v node }

  type 'v t = { head : 'v link Mem.r; ssmem : S.t }

  let name = "ll-michael"

  let create ?hint:_ ?read_only_fail:_ () =
    {
      head = Mem.make_fresh { mark = false; succ = Nil };
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let mk_node key value succ =
    let line = Mem.new_line () in
    Node { key; value; line; next = Mem.make line { mark = false; succ } }

  (* Michael's find: (prev_cell, prev_link, curr) with prev_link unmarked,
     read from prev_cell, and prev_link.succ == curr. *)
  let rec find t k =
    let rec go cell (link : 'v link) =
      match link.succ with
      | Nil -> (cell, link, Nil)
      | Node n as nd ->
          Mem.touch n.line;
          let nl = Mem.get n.next in
          if nl.mark then begin
            (* unlink this single node or start over *)
            let repl = { mark = false; succ = nl.succ } in
            if Mem.cas cell link repl then begin
              Mem.emit E.cleanup;
              S.free t.ssmem nd;
              go cell repl
            end
            else begin
              Mem.emit E.cas_fail;
              Mem.emit E.restart;
              find t k
            end
          end
          else if n.key < k then go n.next nl
          else (cell, link, nd)
    in
    go t.head (Mem.get t.head)

  let search t k =
    match find t k with _, _, Node n when n.key = k -> Some n.value | _ -> None

  let rec insert t k v =
    Mem.emit E.parse;
    let cell, link, right = find t k in
    Mem.emit E.parse_end;
    match right with
    | Node n when n.key = k -> false
    | _ ->
        if Mem.cas cell link { mark = false; succ = mk_node k v right } then true
        else begin
          Mem.emit E.cas_fail;
          insert t k v
        end

  let rec remove t k =
    Mem.emit E.parse;
    let cell, link, right = find t k in
    Mem.emit E.parse_end;
    match right with
    | Node n when n.key = k ->
        let nl = Mem.get n.next in
        if nl.mark then remove t k
        else if Mem.cas n.next nl { mark = true; succ = nl.succ } then begin
          (if Mem.cas cell link { mark = false; succ = nl.succ } then S.free t.ssmem right
           else ignore (find t k));
          true
        end
        else begin
          Mem.emit E.cas_fail;
          remove t k
        end
    | _ -> false

  let size t =
    let rec go (l : 'v link) acc =
      match l.succ with
      | Nil -> acc
      | Node n ->
          let nl = Mem.get n.next in
          go nl (if nl.mark then acc else acc + 1)
    in
    go (Mem.get t.head) 0

  let validate t =
    let rec go (l : 'v link) last =
      match l.succ with
      | Nil -> Ok ()
      | Node n ->
          let nl = Mem.get n.next in
          if nl.mark then go nl last
          else if n.key <= last then Error "live keys not strictly increasing"
          else go nl n.key
    in
    go (Mem.get t.head) min_int

  let op_done t = S.quiesce t.ssmem
end
