(** Copy-on-write list (Table 1 "copy"; java.util.concurrent's
    CopyOnWriteArrayList).

    The element set lives in an immutable sorted array published through a
    single shared pointer.  Searches read the pointer and binary-search
    the array — extremely cheap, serial accesses (the behaviour §5/ASCY1
    highlights).  Updates take a global lock and copy the whole array, so
    they do O(n) stores and serialize — the two limitations the paper
    calls out.  [read_only_fail] makes failing updates return after a
    lock-free binary search (ASCY3); "copy-no" locks first. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module E = Ascy_mem.Event

  (* Keys/values in plain immutable arrays; [lines] models their cache
     footprint (8 words per line) for the simulator. *)
  type 'v snap = { keys : int array; vals : 'v array; lines : Mem.line array }

  type 'v t = { root : 'v snap Mem.r; lock : L.t; rof : bool }

  let name = "ll-copy"

  let mk_snap keys vals =
    let nlines = max 1 ((Array.length keys + 7) / 8) in
    let lines = Array.init nlines (fun _ -> Mem.new_line ()) in
    (* copying into a fresh array = one store per line *)
    Array.iter (fun l -> ignore (Mem.make l 0)) lines;
    { keys; vals; lines }

  let create ?hint:_ ?(read_only_fail = true) () =
    let line = Mem.new_line () in
    { root = Mem.make line (mk_snap [||] [||]); lock = L.create line; rof = read_only_fail }

  let touch_slot s i = if Array.length s.lines > 0 then Mem.touch s.lines.(i lsr 3)

  (* Binary search for k; Some index if found, else None (insertion point
     via [lower_bound]). *)
  let lower_bound s k =
    let lo = ref 0 and hi = ref (Array.length s.keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      touch_slot s mid;
      if s.keys.(mid) < k then lo := mid + 1 else hi := mid
    done;
    !lo

  let found s i k = i < Array.length s.keys && s.keys.(i) = k

  let search t k =
    let s = Mem.get t.root in
    let i = lower_bound s k in
    if found s i k then Some s.vals.(i) else None

  let insert t k v =
    Mem.emit E.parse;
    let quick_fail =
      t.rof
      &&
      let s = Mem.get t.root in
      found s (lower_bound s k) k
    in
    Mem.emit E.parse_end;
    if quick_fail then false
    else begin
      L.acquire t.lock;
      let s = Mem.get t.root in
      let i = lower_bound s k in
      if found s i k then begin
        L.release t.lock;
        false
      end
      else begin
        let n = Array.length s.keys in
        let keys = Array.make (n + 1) k and vals = Array.make (n + 1) v in
        Array.blit s.keys 0 keys 0 i;
        Array.blit s.vals 0 vals 0 i;
        Array.blit s.keys i keys (i + 1) (n - i);
        Array.blit s.vals i vals (i + 1) (n - i);
        Mem.set t.root (mk_snap keys vals);
        L.release t.lock;
        true
      end
    end

  let remove t k =
    Mem.emit E.parse;
    let quick_fail =
      t.rof
      &&
      let s = Mem.get t.root in
      not (found s (lower_bound s k) k)
    in
    Mem.emit E.parse_end;
    if quick_fail then false
    else begin
      L.acquire t.lock;
      let s = Mem.get t.root in
      let i = lower_bound s k in
      if not (found s i k) then begin
        L.release t.lock;
        false
      end
      else begin
        let n = Array.length s.keys in
        let keys = Array.make (max (n - 1) 0) 0 in
        let vals = Array.make (max (n - 1) 0) s.vals.(0) in
        Array.blit s.keys 0 keys 0 i;
        Array.blit s.vals 0 vals 0 i;
        Array.blit s.keys (i + 1) keys i (n - 1 - i);
        Array.blit s.vals (i + 1) vals i (n - 1 - i);
        Mem.set t.root (mk_snap keys vals);
        L.release t.lock;
        true
      end
    end

  let size t = Array.length (Mem.get t.root).keys

  let validate t =
    let s = Mem.get t.root in
    let ok = ref (Ok ()) in
    for i = 1 to Array.length s.keys - 1 do
      if s.keys.(i - 1) >= s.keys.(i) then ok := Error "keys not strictly increasing"
    done;
    !ok

  let op_done _ = ()
end
