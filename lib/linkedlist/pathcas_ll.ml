(** PathCAS linked list (Brown et al., PPoPP 2022 — "PathCAS: an
    efficient middle ground for concurrent search data structures",
    arXiv 2212.09851), instantiated over {!Ascy_mem.Memory.S.kcas}.

    The PathCAS recipe: traverse optimistically, recording a {e version
    stamp} for every node the update will depend on (read the stamp
    {e before} following the node's pointer), then commit the whole
    update as one multi-word CAS that simultaneously {e validates} the
    stamps (by bumping them) and performs the pointer swing.  Any
    concurrent update through a recorded node bumps its stamp, so the
    k-CAS fails and the operation restarts — no locks, no marks, no
    per-node helping protocol in the algorithm itself (helping lives in
    the k-CAS, on the native backend).

    Stamps carry a {e parity discipline}: a node that survives an update
    has its stamp bumped by [+2] (stays even), while the unlink of a
    node sets its stamp odd ([+1]) — a permanent tombstone, since nodes
    are never re-linked.  The parity closes the window between following
    a pointer to a node and reading its stamp: if the node was unlinked
    in that window the stamp we read is odd and the traversal restarts,
    so a recorded (even) stamp always belongs to a node that was still
    linked when the stamp was read.  Without it, the recorded stamp
    could be the {e post}-unlink value and the commit would validate an
    already-unlinked predecessor — hanging the new node off a dead one
    (a lost insert) or swinging a dead pointer (a lost remove).

    - insert after [pred]: [kcas {pred.ver +2; pred.next: curr -> node}].
    - remove [curr]: [kcas {pred.ver +2; curr.ver +1; pred.next: curr ->
      succ}].  The odd [curr.ver] tombstones [curr] and invalidates
      operations whose recorded path goes through it (an insert after
      it, a removal of its successor); [succ] — read after [curr.ver] —
      is revalidated by the same bump.
    - search: a pure traversal (ASCY1).  Unlinking is a single atomic
      pointer swing and a removed node's [next] is never changed
      afterwards, so every step of the traversal walks a pointer that
      was reachable when read — the hand-over-hand reachability argument
      of the external-BST searches, with the version stamps never read.

    Version stamps only grow (ints, never reused), so there is no ABA;
    the [next] expected values are fresh heap blocks, physical equality
    as everywhere else.

    [prepare_insert]/[prepare_remove] expose one attempt's triples
    without committing, so two structures can be composed into a single
    atomic transaction (see [examples/kcas_transfer.ml]). *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info

  and 'v info = {
    key : int;
    value : 'v option;
    line : Mem.line;
    ver : int Mem.r;
    next : 'v node Mem.r;
  }

  type 'v t = { head : 'v node; rof : bool; ssmem : S.t }

  let name = "ll-pathcas"

  let mk_node key value next_node =
    let line = Mem.new_line () in
    Node { key; value; line; ver = Mem.make line 0; next = Mem.make line next_node }

  let create ?hint:_ ?(read_only_fail = true) () =
    {
      head = mk_node min_int None Nil;
      rof = read_only_fail;
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let fields = function Node n -> n | Nil -> assert false

  (* Optimistic parse: last node with key < k, its version stamp as of
     before its [next] was followed, the candidate and its stamp.  Two
     rules make the recorded stamps trustworthy: the stamp is read
     before the node's [next] is followed (stamp unchanged at commit =>
     the pointer read after it is still current), and an odd stamp —
     the node was unlinked between our reading the pointer to it and
     its stamp — abandons the attempt and starts a fresh one (the same
     parse_end/restart/parse event shape as a failed commit: the parse
     learned the commit cannot succeed, one step earlier than the k-CAS
     would).  Restarts terminate: each one witnesses a fresh unlink
     event, and every node is unlinked at most once. *)
  let parse t k =
    let rec restart () =
      Mem.emit E.parse;
      (* head is never unlinked, so its stamp is always even *)
      match go t.head (Mem.get (fields t.head).ver) with
      | Some r -> r
      | None ->
          Mem.emit E.parse_end;
          Mem.emit E.restart;
          restart ()
    and go pred pv =
      match Mem.get (fields pred).next with
      | Nil -> Some (pred, pv, Nil, 0)
      | Node n as nd ->
          Mem.touch n.line;
          let nv = Mem.get n.ver in
          if nv land 1 = 1 then None
          else if n.key < k then go nd nv
          else Some (pred, pv, nd, nv)
    in
    restart ()

  let search t k =
    let rec go nd =
      match Mem.get (fields nd).next with
      | Nil -> None
      | Node n as x ->
          Mem.touch n.line;
          if n.key < k then go x else if n.key = k then n.value else None
    in
    go t.head

  let present curr k = match curr with Node n when n.key = k -> true | _ -> false

  (* The "lazy-no"-style variant (read_only_fail = false) re-validates
     the stamp that justifies the failure before reporting it, paying a
     1-CAS instead of a lock acquisition. *)
  let validate_failure ver v attempt =
    if Mem.kcas [ Mem.kcas_op ver ~expected:v ~desired:v ] then false
    else begin
      Mem.emit E.cas_fail;
      Mem.emit E.restart;
      attempt ()
    end

  let insert t k v =
    let rec attempt () =
      let pred, pv, curr, cv = parse t k in
      Mem.emit E.parse_end;
      if present curr k then
        if t.rof then false else validate_failure (fields curr).ver cv attempt
      else begin
        let p = fields pred in
        let nd = mk_node k (Some v) curr in
        if
          Mem.kcas
            [
              Mem.kcas_op p.ver ~expected:pv ~desired:(pv + 2);
              Mem.kcas_op p.next ~expected:curr ~desired:nd;
            ]
        then true
        else begin
          Mem.emit E.cas_fail;
          Mem.emit E.restart;
          attempt ()
        end
      end
    in
    attempt ()

  let remove t k =
    let rec attempt () =
      let pred, pv, curr, cv = parse t k in
      Mem.emit E.parse_end;
      match curr with
      | Node n when n.key = k ->
          let succ = Mem.get n.next in
          let p = fields pred in
          if
            Mem.kcas
              [
                Mem.kcas_op p.ver ~expected:pv ~desired:(pv + 2);
                Mem.kcas_op n.ver ~expected:cv ~desired:(cv + 1);
                Mem.kcas_op p.next ~expected:curr ~desired:succ;
              ]
          then begin
            S.free t.ssmem curr;
            true
          end
          else begin
            Mem.emit E.cas_fail;
            Mem.emit E.restart;
            attempt ()
          end
      | _ -> if t.rof then false else validate_failure (fields pred).ver pv attempt
    in
    attempt ()

  (* One attempt's commit triples, not committed: [None] when the
     operation cannot succeed right now.  Composable across structures
     into one [Mem.kcas] (all-or-nothing transfer). *)
  let prepare_insert t k v =
    let pred, pv, curr, _cv = parse t k in
    Mem.emit E.parse_end;
    if present curr k then None
    else
      let p = fields pred in
      let nd = mk_node k (Some v) curr in
      Some
        [
          Mem.kcas_op p.ver ~expected:pv ~desired:(pv + 2);
          Mem.kcas_op p.next ~expected:curr ~desired:nd;
        ]

  let prepare_remove t k =
    let pred, pv, curr, cv = parse t k in
    Mem.emit E.parse_end;
    match curr with
    | Node n when n.key = k ->
        let succ = Mem.get n.next in
        let p = fields pred in
        Some
          [
            Mem.kcas_op p.ver ~expected:pv ~desired:(pv + 2);
            Mem.kcas_op n.ver ~expected:cv ~desired:(cv + 1);
            Mem.kcas_op p.next ~expected:curr ~desired:succ;
          ]
    | _ -> None

  let size t =
    let rec go nd acc =
      match Mem.get (fields nd).next with Nil -> acc | Node _ as x -> go x (acc + 1)
    in
    go t.head 0

  let validate t =
    let rec go nd last =
      match Mem.get (fields nd).next with
      | Nil -> Ok ()
      | Node n as x -> if n.key <= last then Error "keys not strictly increasing" else go x n.key
    in
    go t.head min_int

  let op_done t = S.quiesce t.ssmem
end
