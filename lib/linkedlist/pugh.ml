(** Pugh's concurrent linked list (Table 1, "pugh"; Pugh 1990, restricted
    to one level).

    Hybrid lock-based.  Searches and parses are completely optimistic (no
    stores — ASCY1/2).  An update locks the predecessor and re-stabilizes
    it in place (moving forward, or backward through reversed pointers)
    instead of restarting.  Removal uses {e pointer reversal}: the victim's
    next pointer is redirected to its predecessor, so any traversal
    standing on the victim falls back and finds a correct path. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info

  and 'v info = {
    key : int;
    value : 'v option;
    line : Mem.line;
    lock : L.t;
    deleted : bool Mem.r;
    next : 'v node Mem.r;
  }

  type 'v t = { head : 'v node; rof : bool; ssmem : S.t }

  let name = "ll-pugh"

  let mk_node key value next_node =
    let line = Mem.new_line () in
    Node
      {
        key;
        value;
        line;
        lock = L.create line;
        deleted = Mem.make line false;
        next = Mem.make line next_node;
      }

  let create ?hint:_ ?(read_only_fail = true) () =
    {
      head = mk_node min_int None Nil;
      rof = read_only_fail;
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let fields = function Node n -> n | Nil -> assert false

  (* Optimistic parse; tolerates reversed pointers (a deleted node's next
     leads back to its predecessor, whose key is < k, so the loop simply
     keeps going). *)
  let parse t k =
    let rec go pred =
      match Mem.get (fields pred).next with
      | Nil -> (pred, Nil)
      | Node n as nd ->
          Mem.touch n.line;
          if n.key < k then go nd else (pred, nd)
    in
    go t.head

  let search t k =
    let rec go nd =
      match Mem.get (fields nd).next with
      | Nil -> None
      | Node n as x ->
          Mem.touch n.line;
          if n.key < k then go x
          else if n.key = k && not (Mem.get n.deleted) then n.value
          else None
    in
    go t.head

  (* With [pred] locked, slide to the node that is (a) alive and (b) the
     last with key < k; Pugh's getLock.  Returns the locked predecessor. *)
  let rec stabilize t k pred =
    let p = fields pred in
    if Mem.get p.deleted then begin
      (* reversed pointer leads to the true predecessor *)
      let back = Mem.get p.next in
      L.release p.lock;
      Mem.emit E.restart;
      let back = match back with Nil -> t.head | Node _ -> back in
      L.acquire (fields back).lock;
      stabilize t k back
    end
    else
      match Mem.get p.next with
      | Node n as nd when n.key < k ->
          L.acquire n.lock;
          L.release p.lock;
          stabilize t k nd
      | _ -> pred

  let present curr k =
    match curr with Node n when n.key = k -> not (Mem.get n.deleted) | _ -> false

  let insert t k v =
    Mem.emit E.parse;
    let pred0, curr0 = parse t k in
    Mem.emit E.parse_end;
    if t.rof && present curr0 k then false
    else begin
      L.acquire (fields pred0).lock;
      let pred = stabilize t k pred0 in
      let p = fields pred in
      match Mem.get p.next with
      | Node n when n.key = k ->
          (* alive: pred is locked, so n cannot be mid-removal *)
          L.release p.lock;
          false
      | curr ->
          Mem.set p.next (mk_node k (Some v) curr);
          L.release p.lock;
          true
    end

  let remove t k =
    Mem.emit E.parse;
    let pred0, curr0 = parse t k in
    Mem.emit E.parse_end;
    if t.rof && not (present curr0 k) then false
    else begin
      L.acquire (fields pred0).lock;
      let pred = stabilize t k pred0 in
      let p = fields pred in
      match Mem.get p.next with
      | Node n as victim when n.key = k ->
          L.acquire n.lock;
          let succ = Mem.get n.next in
          Mem.set n.deleted true;
          (* pointer reversal: concurrent readers standing on n fall back *)
          Mem.set n.next pred;
          Mem.set p.next succ;
          L.release n.lock;
          L.release p.lock;
          S.free t.ssmem victim;
          true
      | _ ->
          L.release p.lock;
          false
    end

  let size t =
    let rec go nd acc =
      match Mem.get (fields nd).next with
      | Nil -> acc
      | Node n as x -> go x (if Mem.get n.deleted then acc else acc + 1)
    in
    go t.head 0

  let validate t =
    let rec go nd last steps =
      if steps > 10_000_000 then Error "traversal does not terminate"
      else
        match Mem.get (fields nd).next with
        | Nil -> Ok ()
        | Node n as x ->
            if n.key <= last then Error "keys not strictly increasing" else go x n.key (steps + 1)
    in
    go t.head min_int 0

  let op_done t = S.quiesce t.ssmem
end
