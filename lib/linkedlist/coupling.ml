(** Linked list with hand-over-hand (lock-coupling) locking (Table 1,
    "coupling"; Herlihy & Shavit).  Fully lock-based: all three operations
    hold two node locks while traversing, so even searches store to shared
    memory on every step — the canonical anti-ASCY baseline. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info
  and 'v info = { key : int; value : 'v option; line : Mem.line; lock : L.t; next : 'v node Mem.r }

  type 'v t = { head : 'v node; ssmem : S.t }

  let name = "ll-coupling"

  let mk_node key value next_node =
    let line = Mem.new_line () in
    Node { key; value; line; lock = L.create line; next = Mem.make line next_node }

  let create ?hint:_ ?read_only_fail:_ () =
    { head = mk_node min_int None Nil; ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold () }

  let fields = function
    | Node n -> n
    | Nil -> assert false

  (* Traverse with coupled locks until the successor of the locked [pred]
     has key >= k (or is Nil); returns [pred] still locked. *)
  let locate t k =
    let pred = t.head in
    L.acquire (fields pred).lock;
    let rec go pred =
      let p = fields pred in
      match Mem.get p.next with
      | Nil -> (pred, Nil)
      | Node n as nd ->
          Mem.touch n.line;
          if n.key < k then begin
            L.acquire n.lock;
            L.release p.lock;
            go nd
          end
          else (pred, nd)
    in
    go pred

  let search t k =
    let pred, curr = locate t k in
    let res = match curr with Node n when n.key = k -> n.value | _ -> None in
    L.release (fields pred).lock;
    res

  let insert t k v =
    Mem.emit E.parse;
    let pred, curr = locate t k in
    Mem.emit E.parse_end;
    let p = fields pred in
    match curr with
    | Node n when n.key = k ->
        L.release p.lock;
        false
    | _ ->
        Mem.set p.next (mk_node k (Some v) curr);
        L.release p.lock;
        true

  let remove t k =
    Mem.emit E.parse;
    let pred, curr = locate t k in
    Mem.emit E.parse_end;
    let p = fields pred in
    match curr with
    | Node n when n.key = k ->
        L.acquire n.lock;
        Mem.set p.next (Mem.get n.next);
        L.release n.lock;
        L.release p.lock;
        S.free t.ssmem curr;
        true
    | _ ->
        L.release p.lock;
        false

  let size t =
    let rec go nd acc =
      match Mem.get (fields nd).next with Nil -> acc | Node _ as n -> go n (acc + 1)
    in
    go t.head 0

  let validate t =
    let rec go nd last =
      match Mem.get (fields nd).next with
      | Nil -> Ok ()
      | Node n as x -> if n.key <= last then Error "keys not strictly increasing" else go x n.key
    in
    go t.head min_int

  let op_done t = S.quiesce t.ssmem
end
