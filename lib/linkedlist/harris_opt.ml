(** Harris's list re-engineered with ASCY1-2 (paper §5, "harris-opt").

    Two changes with respect to {!Harris}:
    - the {b search} is a pure wait-free traversal: it ignores marked
      nodes, performs no stores and never restarts (ASCY1);
    - the {b parse} of an update still unlinks marked nodes it passes
      (clean-up stores are allowed) but a failed clean-up CAS does not
      restart the operation — the parse re-reads locally and keeps going
      (ASCY2).

    Failed updates naturally perform no stores (ASCY3), and updates use
    the same two CASes as the sequential algorithm plus marking (ASCY4).
    Single-node unlinking is safe without Harris's restart because both
    marking a node and inserting after it CAS the same cell, so a stale
    predecessor always makes the final CAS fail and only the modify phase
    retries. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of { key : int; value : 'v; line : Mem.line; next : 'v link Mem.r }
  and 'v link = { mark : bool; succ : 'v node }

  type 'v t = { head : 'v link Mem.r; ssmem : S.t }

  let name = "ll-harris-opt"

  let create ?hint:_ ?read_only_fail:_ () =
    {
      head = Mem.make_fresh { mark = false; succ = Nil };
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let mk_node key value succ =
    let line = Mem.new_line () in
    Node { key; value; line; next = Mem.make line { mark = false; succ } }

  (* ASCY1 search: no stores, no waiting, no restarts. *)
  let search t k =
    let rec walk (l : 'v link) =
      match l.succ with
      | Nil -> None
      | Node n ->
          Mem.touch n.line;
          let nl = Mem.get n.next in
          if nl.mark || n.key < k then walk nl
          else if n.key = k then Some n.value
          else None
    in
    walk (Mem.get t.head)

  (* ASCY2 parse: cleans up marked nodes opportunistically; on a failed
     clean-up it re-reads the predecessor cell and continues — never
     restarts from the head. *)
  let parse t k =
    Mem.emit E.parse;
    let rec go cell (link : 'v link) =
      if link.mark then
        (* our predecessor was deleted under us; re-anchor via its succ
           (the chain through marked nodes stays intact) *)
        match link.succ with
        | Nil -> (cell, link, Nil)
        | Node n ->
            Mem.touch n.line;
            let nl = Mem.get n.next in
            if n.key < k then go n.next nl else (cell, link, Node n)
      else
        match link.succ with
        | Nil -> (cell, link, Nil)
        | Node n as nd ->
            Mem.touch n.line;
            let nl = Mem.get n.next in
            if nl.mark then begin
              let repl = { mark = false; succ = nl.succ } in
              if Mem.cas cell link repl then begin
                Mem.emit E.cleanup;
                S.free t.ssmem nd;
                go cell repl
              end
              else begin
                Mem.emit E.cas_fail;
                go cell (Mem.get cell) (* local re-read, no restart *)
              end
            end
            else if n.key < k then go n.next nl
            else (cell, link, nd)
    in
    go t.head (Mem.get t.head)

  let rec insert t k v =
    let cell, link, right = parse t k in
    Mem.emit E.parse_end;
    match right with
    | Node n when n.key = k -> false (* read-only fail: ASCY3 *)
    | _ ->
        if (not link.mark) && Mem.cas cell link { mark = false; succ = mk_node k v right } then
          true
        else begin
          Mem.emit E.cas_fail;
          insert t k v
        end

  let rec remove t k =
    let cell, link, right = parse t k in
    Mem.emit E.parse_end;
    match right with
    | Node n when n.key = k ->
        let nl = Mem.get n.next in
        if nl.mark then false (* concurrently deleted: read-only fail *)
        else if Mem.cas n.next nl { mark = true; succ = nl.succ } then begin
          (* single optional unlink; never retried *)
          (if (not link.mark) && Mem.cas cell link { mark = false; succ = nl.succ } then
             S.free t.ssmem right);
          true
        end
        else begin
          Mem.emit E.cas_fail;
          remove t k
        end
    | _ -> false

  let size t =
    let rec go (l : 'v link) acc =
      match l.succ with
      | Nil -> acc
      | Node n ->
          let nl = Mem.get n.next in
          go nl (if nl.mark then acc else acc + 1)
    in
    go (Mem.get t.head) 0

  let validate t =
    let rec go (l : 'v link) last =
      match l.succ with
      | Nil -> Ok ()
      | Node n ->
          let nl = Mem.get n.next in
          if nl.mark then go nl last
          else if n.key <= last then Error "live keys not strictly increasing"
          else go nl n.key
    in
    go (Mem.get t.head) min_int

  let op_done t = S.quiesce t.ssmem
end
