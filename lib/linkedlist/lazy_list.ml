(** Lazy linked list (Heller et al., Table 1 "lazy").

    Hybrid lock-based.  Nodes are removed in two steps — logical marking,
    then physical unlinking — both under the predecessor/victim locks.
    Searches traverse without any synchronization and simply check the
    mark of the candidate node (ASCY1).  With [read_only_fail] (default),
    updates whose parse shows they cannot succeed return without taking
    any lock (ASCY3); with [~read_only_fail:false] this is the paper's
    "lazy-no" variant, which locks and validates before failing. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info

  and 'v info = {
    key : int;
    value : 'v option;
    line : Mem.line;
    lock : L.t;
    marked : bool Mem.r;
    next : 'v node Mem.r;
  }

  type 'v t = { head : 'v node; rof : bool; ssmem : S.t }

  let name = "ll-lazy"

  let mk_node key value next_node =
    let line = Mem.new_line () in
    Node
      {
        key;
        value;
        line;
        lock = L.create line;
        marked = Mem.make line false;
        next = Mem.make line next_node;
      }

  let create ?hint:_ ?(read_only_fail = true) () =
    {
      head = mk_node min_int None Nil;
      rof = read_only_fail;
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let fields = function Node n -> n | Nil -> assert false

  (* Unsynchronized parse: last node with key < k and its successor. *)
  let parse t k =
    Mem.emit E.parse;
    let rec go pred =
      match Mem.get (fields pred).next with
      | Nil -> (pred, Nil)
      | Node n as nd ->
          Mem.touch n.line;
          if n.key < k then go nd else (pred, nd)
    in
    go t.head

  let search t k =
    let rec go nd =
      match Mem.get (fields nd).next with
      | Nil -> None
      | Node n as x ->
          Mem.touch n.line;
          if n.key < k then go x
          else if n.key = k && not (Mem.get n.marked) then n.value
          else None
    in
    go t.head

  (* Validation under pred's lock: pred alive and still pointing at curr. *)
  let valid pred curr =
    let p = fields pred in
    (not (Mem.get p.marked)) && Mem.get p.next == curr

  let present curr k =
    match curr with Node n when n.key = k -> not (Mem.get n.marked) | _ -> false

  let insert t k v =
    let rec attempt () =
      let pred, curr = parse t k in
      Mem.emit E.parse_end;
      if t.rof && present curr k then false
      else begin
        let p = fields pred in
        L.acquire p.lock;
        if not (valid pred curr) then begin
          L.release p.lock;
          Mem.emit E.restart;
          attempt ()
        end
        else begin
          match curr with
          | Node n when n.key = k ->
              (* validation + pred lock imply curr is alive *)
              L.release p.lock;
              false
          | _ ->
              Mem.set p.next (mk_node k (Some v) curr);
              L.release p.lock;
              true
        end
      end
    in
    attempt ()

  let remove t k =
    let rec attempt () =
      let pred, curr = parse t k in
      Mem.emit E.parse_end;
      if t.rof && not (present curr k) then false
      else begin
        let p = fields pred in
        L.acquire p.lock;
        if not (valid pred curr) then begin
          L.release p.lock;
          Mem.emit E.restart;
          attempt ()
        end
        else begin
          match curr with
          | Node n when n.key = k ->
              L.acquire n.lock;
              Mem.set n.marked true;
              Mem.set p.next (Mem.get n.next);
              L.release n.lock;
              L.release p.lock;
              S.free t.ssmem curr;
              true
          | _ ->
              (* "lazy-no" pays the locking even though the update fails *)
              L.release p.lock;
              false
        end
      end
    in
    attempt ()

  let size t =
    let rec go nd acc =
      match Mem.get (fields nd).next with
      | Nil -> acc
      | Node n as x -> go x (if Mem.get n.marked then acc else acc + 1)
    in
    go t.head 0

  let validate t =
    let rec go nd last =
      match Mem.get (fields nd).next with
      | Nil -> Ok ()
      | Node n as x -> if n.key <= last then Error "keys not strictly increasing" else go x n.key
    in
    go t.head min_int

  let op_done t = S.quiesce t.ssmem
end
