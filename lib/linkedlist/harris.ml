(** Harris's lock-free linked list (Table 1, "harris"; DISC 2001).

    Nodes are deleted in two steps: the victim's next pointer is marked
    with a CAS (logical deletion), then a second CAS snips the whole
    marked run out of the list.  Every operation — including search —
    goes through [find], which performs the snipping and {e restarts from
    the head} when a clean-up CAS fails or the candidate is marked.
    Those restarts/stores in the search path are exactly what ASCY1
    forbids; see {!Harris_opt} for the re-engineered version.

    Representation: a node's next cell holds an immutable [link] record
    [{ mark; succ }]; marking or redirecting swaps the whole record with a
    physical-equality CAS (the OCaml equivalent of pointer tagging). *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of { key : int; value : 'v; line : Mem.line; next : 'v link Mem.r }
  and 'v link = { mark : bool; succ : 'v node }

  type 'v t = { head : 'v link Mem.r; ssmem : S.t }

  let name = "ll-harris"

  let create ?hint:_ ?read_only_fail:_ () =
    {
      head = Mem.make_fresh { mark = false; succ = Nil };
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let mk_node key value succ =
    let line = Mem.new_line () in
    Node { key; value; line; next = Mem.make line { mark = false; succ } }

  let is_marked = function Nil -> false | Node n -> (Mem.get n.next).mark

  let free_run t from until =
    let rec go nd =
      if nd != until then
        match nd with
        | Nil -> ()
        | Node n ->
            S.free t.ssmem nd;
            go (Mem.get n.next).succ
    in
    go from

  (* Harris's find: left/right with all marked nodes in between snipped
     out.  Postcondition: the returned [left_link] was read from
     [left_cell], is unmarked, and [left_link.succ == right]. *)
  let rec find t k =
    let left_cell = ref t.head in
    let left_link = ref (Mem.get t.head) in
    let rec walk (cur : 'v link) =
      match cur.succ with
      | Nil -> Nil
      | Node n as nd ->
          Mem.touch n.line;
          let nl = Mem.get n.next in
          if nl.mark then walk nl (* traverse through the marked run *)
          else if n.key < k then begin
            left_cell := n.next;
            left_link := nl;
            walk nl
          end
          else nd
    in
    let right = walk !left_link in
    if !left_link.succ == right then
      if is_marked right then begin
        Mem.emit E.restart;
        find t k
      end
      else (!left_cell, !left_link, right)
    else begin
      (* snip the marked run between left and right *)
      let repl = { mark = false; succ = right } in
      if Mem.cas !left_cell !left_link repl then begin
        Mem.emit E.cleanup;
        free_run t !left_link.succ right;
        if is_marked right then begin
          Mem.emit E.restart;
          find t k
        end
        else (!left_cell, !left_link, right)
      end
      else begin
        Mem.emit E.cas_fail;
        Mem.emit E.restart;
        find t k
      end
    end

  let search t k =
    match find t k with _, _, Node n when n.key = k -> Some n.value | _ -> None

  let rec insert t k v =
    Mem.emit E.parse;
    let cell, link, right = find t k in
    Mem.emit E.parse_end;
    match right with
    | Node n when n.key = k -> false
    | _ ->
        if Mem.cas cell link { mark = false; succ = mk_node k v right } then true
        else begin
          Mem.emit E.cas_fail;
          insert t k v
        end

  let rec remove t k =
    Mem.emit E.parse;
    let cell, link, right = find t k in
    Mem.emit E.parse_end;
    match right with
    | Node n when n.key = k ->
        let nl = Mem.get n.next in
        if nl.mark then remove t k
        else if Mem.cas n.next nl { mark = true; succ = nl.succ } then begin
          (* one shot at physical removal; find() cleans up otherwise *)
          (if Mem.cas cell link { mark = false; succ = nl.succ } then S.free t.ssmem right
           else ignore (find t k));
          true
        end
        else begin
          Mem.emit E.cas_fail;
          remove t k
        end
    | _ -> false

  let size t =
    let rec go (l : 'v link) acc =
      match l.succ with
      | Nil -> acc
      | Node n ->
          let nl = Mem.get n.next in
          go nl (if nl.mark then acc else acc + 1)
    in
    go (Mem.get t.head) 0

  let validate t =
    let rec go (l : 'v link) last =
      match l.succ with
      | Nil -> Ok ()
      | Node n ->
          let nl = Mem.get n.next in
          if nl.mark then go nl last (* marked nodes may duplicate live keys *)
          else if n.key <= last then Error "live keys not strictly increasing"
          else go nl n.key
    in
    go (Mem.get t.head) min_int

  let op_done t = S.quiesce t.ssmem
end
