(** Operation-history recording and linearizability checking for small
    traced runs.

    The simulator gives every operation an invocation and a response
    cycle stamp (per-thread clocks advance as accesses are charged, and
    the scheduler interleaves threads by clock, so cycle stamps are the
    simulated real-time order).  An execution is linearizable iff every
    operation can be assigned a linearization point between its
    invocation and response such that the resulting sequential history
    satisfies the set semantics.

    Set operations on distinct keys commute and their results depend
    only on that key's membership, so the search is decomposed per key:
    each key's sub-history is checked independently against a single
    boolean membership state with the classic Wing&Gong recursion
    (repeatedly linearize some minimal pending operation whose result
    matches the sequential semantics), memoizing visited
    (linearized-set, membership) states.  This is exact — sound and
    complete — for set histories, and fast for the small per-key
    histories the conformance tests record. *)

type op_kind = Search | Insert | Remove

let kind_name = function Search -> "search" | Insert -> "insert" | Remove -> "remove"

type event = {
  tid : int;
  kind : op_kind;
  key : int;
  result : bool;  (** search: found; insert/remove: succeeded *)
  inv : int;  (** invocation cycle stamp *)
  res : int;  (** response cycle stamp *)
}

type t = { mutable events : event list; mutable nevents : int; initial : (int, unit) Hashtbl.t }

let create () = { events = []; nevents = 0; initial = Hashtbl.create 64 }

(** Declare [key] present before the measured run (prefill). *)
let add_initial t key = Hashtbl.replace t.initial key ()

let record t ~tid ~kind ~key ~result ~inv ~res =
  t.events <- { tid; kind; key; result; inv; res } :: t.events;
  t.nevents <- t.nevents + 1

let length t = t.nevents

type violation = { v_key : int; v_detail : string }

let pp_violation v = Printf.sprintf "key %d: %s" v.v_key v.v_detail

exception Too_large of int

(* Cap on operations per key: the checker is worst-case exponential, so
   refuse histories far beyond what the memoized search handles fast. *)
let max_ops_per_key = 62

(* Check one key's sub-history. [ops] is an array of events on this key;
   [initial] is the key's starting membership. *)
let check_key ~key ~initial ops =
  let n = Array.length ops in
  if n > max_ops_per_key then raise (Too_large n);
  let full = (1 lsl n) - 1 in
  (* Memoize states that already failed: membership is a bool, so a
     state is (linearized mask, membership). *)
  let seen = Hashtbl.create 256 in
  let rec go mask present =
    mask = full
    || (not (Hashtbl.mem seen (mask, present)))
       && begin
            Hashtbl.add seen (mask, present) ();
            (* earliest response among pending ops: anything invoked after
               it cannot be linearized next *)
            let min_res = ref max_int in
            for i = 0 to n - 1 do
              if mask land (1 lsl i) = 0 && ops.(i).res < !min_res then min_res := ops.(i).res
            done;
            let ok = ref false in
            let i = ref 0 in
            while (not !ok) && !i < n do
              let idx = !i in
              incr i;
              if mask land (1 lsl idx) = 0 && ops.(idx).inv <= !min_res then begin
                let op = ops.(idx) in
                let expected, present' =
                  match op.kind with
                  | Search -> (present, present)
                  | Insert -> (not present, true)
                  | Remove -> (present, false)
                in
                if op.result = expected && go (mask lor (1 lsl idx)) present' then ok := true
              end
            done;
            !ok
          end
  in
  if go 0 initial then Ok ()
  else
    Error
      {
        v_key = key;
        v_detail =
          Printf.sprintf
            "no linearization of %d operation(s) matches set semantics (initial=%b): %s" n initial
            (String.concat "; "
               (List.map
                  (fun o ->
                    Printf.sprintf "t%d %s->%b @[%d,%d]" o.tid (kind_name o.kind) o.result o.inv
                      o.res)
                  (Array.to_list ops)));
      }

(** [check t] returns [Ok ()] iff the recorded history is linearizable
    with respect to the sequential set semantics, [Error v] naming a key
    whose sub-history admits no valid linearization.  Raises {!Too_large}
    if some key has more than {!max_ops_per_key} operations. *)
let check t =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let l = try Hashtbl.find by_key e.key with Not_found -> [] in
      Hashtbl.replace by_key e.key (e :: l))
    t.events;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) by_key [] in
  let rec loop = function
    | [] -> Ok ()
    | k :: rest -> (
        let ops = Array.of_list (Hashtbl.find by_key k) in
        (* sort by invocation for deterministic search order *)
        Array.sort (fun a b -> compare (a.inv, a.res) (b.inv, b.res)) ops;
        match check_key ~key:k ~initial:(Hashtbl.mem t.initial k) ops with
        | Ok () -> loop rest
        | Error _ as e -> e)
  in
  loop (List.sort compare keys)

let linearizable t = match check t with Ok () -> true | Error _ -> false
