(** Workload definitions matching the paper's experimental settings (§4):
    the structure is initialized with [initial] elements; operations pick
    keys uniformly in [1 .. 2*initial] so on average half the operations
    are successful and the size stays near [initial]; the update
    percentage is split between insertions and removals. *)

type t = {
  initial : int;
  key_range : int;
  update_pct : int; (* 0..100; half inserts, half removes *)
}

let make ?key_range ~initial ~update_pct () =
  {
    initial;
    key_range = (match key_range with Some r -> r | None -> 2 * initial);
    update_pct;
  }

(* The three contention levels of Figure 2. *)
let average = make ~initial:4096 ~update_pct:10 ()
let high = make ~initial:512 ~update_pct:25 ()
let low = make ~initial:16384 ~update_pct:10 ()

type op = Search | Insert | Remove

(** Zipf-like skewed key popularity (for the paper's brief "non-uniform
    workloads" experiments): exactly a fraction [hot_pct] of accesses hit
    the [hot_keys]-sized prefix of the key range; the rest are uniform
    over the remaining (cold) keys.  When [hot_keys >= key_range] every
    key is hot and the distribution degenerates to uniform. *)
type skew = { hot_keys : int; hot_pct : int }

let pick_key_skewed w skew rng =
  let hot = min skew.hot_keys w.key_range in
  if hot >= w.key_range || Ascy_util.Xorshift.below rng 100 < skew.hot_pct then
    1 + Ascy_util.Xorshift.below rng hot
  else (* cold keys come from the complement of the hot prefix, so the
          effective hot fraction is exactly [hot_pct] *)
    1 + hot + Ascy_util.Xorshift.below rng (w.key_range - hot)

let pick_op w rng =
  (* One draw over [0, 200) so the update range has an even number of
     values for any [update_pct]: splitting [0, update_pct) by parity
     favors inserts whenever [update_pct] is odd (13 even vs 12 odd
     values at the high-contention 25%), drifting the set size upward. *)
  let r = Ascy_util.Xorshift.below rng 200 in
  if r >= 2 * w.update_pct then Search else if r land 1 = 0 then Insert else Remove

let pick_key w rng = 1 + Ascy_util.Xorshift.below rng w.key_range
