(** Run one CSDS workload inside the multicore simulator and collect the
    paper's four scalability dimensions: throughput, average latency,
    latency distribution, and power (plus the memory-event counters used
    by Figures 3 and 7). *)

module Sim = Ascy_mem.Sim
module P = Ascy_platform.Platform
module H = Ascy_util.Histogram

type latency_class = {
  search_hit : H.t;
  search_miss : H.t;
  insert_ok : H.t;
  insert_fail : H.t;
  remove_ok : H.t;
  remove_fail : H.t;
}

let fresh_latencies () =
  {
    search_hit = H.create ();
    search_miss = H.create ();
    insert_ok = H.create ();
    insert_fail = H.create ();
    remove_ok = H.create ();
    remove_fail = H.create ();
  }

type result = {
  algorithm : string;
  platform : string;
  nthreads : int;
  seed : int;
  ops_per_thread : int;
  workload : Workload.t;
  ops : int;
  updates_attempted : int;
  updates_successful : int;
  seconds : float;
  throughput_mops : float;
  stats : Sim.run_stats;
  thread_stats : Sim.thread_stats array;
  latencies : latency_class;
  final_size : int;
}

(* Trace op codes used with Sim.Trace.op_start/op_end. *)
let op_code = function Workload.Search -> 0 | Workload.Insert -> 1 | Workload.Remove -> 2
let op_name = function 0 -> "search" | 1 -> "insert" | 2 -> "remove" | c -> string_of_int c

(** [run ?seed ?latency ?history ?trace_capacity ?model (module A)
    ~platform ~nthreads ~workload ~ops_per_thread] executes the workload
    deterministically on the simulated machine and returns every metric
    of one experiment point.  [latency = true] records a per-operation
    latency sample (ns).  [history] records every operation's
    invocation/response cycle stamps and result for linearizability
    checking ({!History.check}); prefilled keys are registered as the
    history's initial state.  [trace_capacity] enables the simulator's
    per-thread trace rings ({!Ascy_mem.Sim.Trace}).  [model] selects the
    coherence cost model (default MESI; measurements under [flat] are
    meaningless by construction — see {!Ascy_mem.Coh_flat}). *)
let run ?(seed = 1) ?(latency = false) ?history ?(trace_capacity = 0)
    ?(model = Sim.default_model) (module A : Ascy_core.Set_intf.MAKER) ~platform ~nthreads
    ~(workload : Workload.t) ~ops_per_thread () =
  let module M = A (Sim.Mem) in
  let cfg = { (Engine.default ~platform ~nthreads) with seed; trace_capacity; model } in
  Engine.with_session cfg (fun session ->
      let sim = session.Engine.sim in
      (* build + prefill happen outside simulated time *)
      let t = M.create ~hint:workload.Workload.initial () in
      let rng0 = Ascy_util.Xorshift.create (seed * 31 + 7) in
      let filled = ref 0 in
      while !filled < workload.Workload.initial do
        let k = Workload.pick_key workload rng0 in
        if M.insert t k 0 then begin
          incr filled;
          match history with Some h -> History.add_initial h k | None -> ()
        end
      done;
      Sim.warm sim;
      let lat = fresh_latencies () in
      let upd_att = Array.make nthreads 0 in
      let upd_ok = Array.make nthreads 0 in
      let ghz = platform.P.ghz in
      let timed = latency || history <> None in
      let body tid () =
        let rng = Ascy_util.Xorshift.create ((seed * 7919) + (tid * 104729) + 13) in
        for _ = 1 to ops_per_thread do
          let k = Workload.pick_key workload rng in
          let op = Workload.pick_op workload rng in
          Sim.Trace.op_start (op_code op);
          let t0 = if timed then Sim.now () else 0 in
          let ok =
            match op with
            | Workload.Search -> M.search t k <> None
            | Workload.Insert ->
                upd_att.(tid) <- upd_att.(tid) + 1;
                let r = M.insert t k tid in
                if r then upd_ok.(tid) <- upd_ok.(tid) + 1;
                r
            | Workload.Remove ->
                upd_att.(tid) <- upd_att.(tid) + 1;
                let r = M.remove t k in
                if r then upd_ok.(tid) <- upd_ok.(tid) + 1;
                r
          in
          if timed then begin
            let t1 = Sim.now () in
            if latency then begin
              let h =
                match (op, ok) with
                | Workload.Search, true -> lat.search_hit
                | Workload.Search, false -> lat.search_miss
                | Workload.Insert, true -> lat.insert_ok
                | Workload.Insert, false -> lat.insert_fail
                | Workload.Remove, true -> lat.remove_ok
                | Workload.Remove, false -> lat.remove_fail
              in
              H.add h (float_of_int (t1 - t0) /. ghz)
            end;
            match history with
            | Some h ->
                let kind =
                  match op with
                  | Workload.Search -> History.Search
                  | Workload.Insert -> History.Insert
                  | Workload.Remove -> History.Remove
                in
                History.record h ~tid ~kind ~key:k ~result:ok ~inv:t0 ~res:t1
            | None -> ()
          end;
          Sim.Trace.op_end (op_code op);
          M.op_done t
        done
      in
      let makespan = Engine.run session (Array.init nthreads body) in
      let stats = Sim.stats sim ~makespan in
      let thread_stats = Sim.per_thread_stats sim in
      let ops = nthreads * ops_per_thread in
      {
        algorithm = M.name;
        platform = platform.P.name;
        nthreads;
        seed;
        ops_per_thread;
        workload;
        ops;
        updates_attempted = Array.fold_left ( + ) 0 upd_att;
        updates_successful = Array.fold_left ( + ) 0 upd_ok;
        seconds = stats.Sim.seconds;
        throughput_mops =
          (if stats.Sim.seconds > 0.0 then float_of_int ops /. stats.Sim.seconds /. 1e6 else 0.0);
        stats;
        thread_stats;
        latencies = lat;
        final_size = M.size t;
      })

(** Misses per operation — Figure 3's metric. *)
let misses_per_op r = float_of_int (Sim.misses r.stats) /. float_of_int (max r.ops 1)

(** Atomic (RMW) operations per successful update — Figure 7's metric. *)
let atomics_per_update r =
  float_of_int r.stats.Sim.atomics /. float_of_int (max r.updates_successful 1)

(** Stores (plain + RMW) per successful update — the paper's
    stores-per-operation metric, from the always-on counters. *)
let stores_per_update r =
  float_of_int (r.stats.Sim.stores + r.stats.Sim.atomics)
  /. float_of_int (max r.updates_successful 1)

(** Extra parses beyond one per update, as a percentage — §5's
    fraser vs fraser-opt numbers. *)
let extra_parse_pct r =
  let parses = r.stats.Sim.events.(Ascy_mem.Event.parse) in
  if parses = 0 then 0.0
  else
    100.0
    *. float_of_int (parses - r.updates_attempted)
    /. float_of_int (max r.updates_attempted 1)
