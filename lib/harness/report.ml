(** Plain-text tables and latency-distribution rows for the bench
    output, echoing the layout of the paper's figures. *)

let hr width = String.make width '-'

(** Print a table: header row + rows of string cells. *)
let table ~title headers rows =
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) headers;
  List.iter
    (fun row -> List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) row)
    rows;
  let pad i s = Printf.sprintf "%-*s" widths.(i) s in
  let line cells = "| " ^ String.concat " | " (List.mapi pad cells) ^ " |" in
  let total = Array.fold_left ( + ) 0 widths + (3 * ncols) + 1 in
  Printf.printf "\n%s\n%s\n" title (hr total);
  print_endline (line headers);
  print_endline (hr total);
  List.iter (fun r -> print_endline (line r)) rows;
  print_endline (hr total)

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x

(** "p1/p25/p50/p75/p99" latency summary in the figures' style. *)
let percentiles h =
  if Ascy_util.Histogram.count h = 0 then "-"
  else
    let p = Ascy_util.Histogram.summary h in
    Printf.sprintf "%.0f/%.0f/%.0f/%.0f/%.0f" p.(0) p.(1) p.(2) p.(3) p.(4)

(** Ratio-to-baseline formatted as the paper's relative-power plots. *)
let ratio x base = if base = 0.0 then "-" else f3 (x /. base)
