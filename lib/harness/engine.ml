(** The unified simulator-session configuration behind every harness
    entry point.

    {!Sim_run} (free-running measurement), {!Sct_run} (systematic
    schedule exploration) and {!Fault_run} (chaos/fault injection) used
    to each assemble their own ad-hoc combination of seed, platform,
    scheduler, fault plan, observers and race detector before calling
    {!Ascy_mem.Sim} — three slightly different copies of the same
    wiring.  [Engine] is that wiring, once: a {!config} record names
    every knob of a simulated execution, {!with_session} turns it into
    an installed simulation with the requested instrumentation attached,
    and {!run} executes thread bodies under the configured scheduler and
    fault plan.

    The config is also where the pluggable coherence model surfaces in
    the harness: [model] selects {!Ascy_mem.Models.mesi} (default,
    bit-for-bit the historical behavior), [flat] (O(1) costs for
    SCT/analysis volume) or [moesi] (Opteron-style shape reproduction),
    and replay files record it so counterexamples re-arm the model they
    were found under. *)

module Sim = Ascy_mem.Sim
module P = Ascy_platform.Platform
module Race = Ascy_analysis.Race

type config = {
  platform : P.t;
  nthreads : int;
  seed : int;  (** simulator RNG seed (jitter, nothing else) *)
  jitter : int;  (** max per-access schedule jitter, cycles; 0 = off *)
  trace_capacity : int;  (** per-thread trace-ring entries; 0 = rings off *)
  model : Sim.model;  (** coherence cost model *)
  scheduler : Sim.scheduler option;  (** [None] = free-running (smallest clock) *)
  faults : Sim.fault_event list;  (** injected fault plan; [[]] = none *)
  races : bool;  (** attach a happens-before race detector *)
  observer : Sim.observer option;  (** extra analysis observer *)
  policy : Ascy_sct.Explorer.policy;
      (** how the exploration drivers ({!Sct_run.explore},
          {!Fault_run.explore_crash}, [bin/ascy_explore]) pick
          schedules; {!with_session} itself runs one execution and
          ignores it *)
  domains : int;
      (** worker domains those drivers partition exploration across;
          1 = sequential (the byte-identical historical path) *)
}

(** The baseline configuration: free-running, MESI, seed 1, no faults,
    no instrumentation — what {!Sim_run} historically did. *)
let default ~platform ~nthreads =
  {
    platform;
    nthreads;
    seed = 1;
    jitter = 0;
    trace_capacity = 0;
    model = Sim.default_model;
    scheduler = None;
    faults = [];
    races = false;
    observer = None;
    policy = Ascy_sct.Explorer.Exhaustive;
    domains = 1;
  }

(** One installed simulation plus the instrumentation the config asked
    for.  [race] is the live detector when [cfg.races]; query it after
    {!run} (e.g. via {!race_violation}). *)
type session = {
  cfg : config;
  sim : Sim.t;
  race : Race.t option;
}

(** [with_session cfg f] installs a fresh simulation built from [cfg]
    (so [f] can build structures through [Sim.Mem] and prefill outside
    simulated time), attaches the race detector and/or extra observer,
    runs [f session], and uninstalls everything. *)
let with_session cfg f =
  Sim.with_sim ~seed:cfg.seed ~jitter:cfg.jitter ~trace_capacity:cfg.trace_capacity
    ~model:cfg.model ~platform:cfg.platform ~nthreads:cfg.nthreads (fun sim ->
      let race = if cfg.races then Some (Race.create ~nthreads:cfg.nthreads) else None in
      let observer =
        match (race, cfg.observer) with
        | Some d, Some o -> Some (Sim.compose_observers (Race.observer d) o)
        | Some d, None -> Some (Race.observer d)
        | None, o -> o
      in
      Sim.set_observer sim observer;
      f { cfg; sim; race })

(** Execute [bodies] under the session's scheduler and fault plan;
    returns the makespan ({!Ascy_mem.Sim.run}). *)
let run session bodies =
  Sim.run ?scheduler:session.cfg.scheduler ~faults:session.cfg.faults session.sim bodies

(** The canonical race-oracle description for this session's run, if the
    detector saw any race.  The exact string is part of the replay-file
    contract (counterexample descriptions must reproduce bit-for-bit),
    so every oracle goes through here. *)
let race_violation session =
  match session.race with
  | Some d when Race.total d > 0 ->
      let first = List.hd (Race.races d) in
      Some
        (Printf.sprintf "%d distinct data race(s); first: %s" (Race.total d)
           (Race.describe first))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Model selection in replay metadata                                  *)
(* ------------------------------------------------------------------ *)

let model_key = "model"

(** Metadata fields recording [model] — empty for the default model, so
    files written before models existed (and files found under the
    default) stay byte-identical. *)
let model_meta model =
  if Sim.model_name_of model == Sim.model_name_of Sim.default_model then []
  else [ (model_key, Ascy_util.Json.String (Sim.model_name_of model)) ]

(** The model a replay file's metadata selects (default when absent). *)
let model_of_meta meta =
  match List.assoc_opt model_key meta with
  | Some (Ascy_util.Json.String s) -> Sim.model_of_name s
  | _ -> Sim.default_model
