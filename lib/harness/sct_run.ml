(** Systematic concurrency testing of CSDS implementations: scripted set
    workloads explored schedule-by-schedule ([Ascy_sct.Explorer]), each
    run checked against two oracles, failing schedules minimized and
    serialized for bit-for-bit replay.

    This is the SCT sibling of {!Sim_run}: where [Sim_run] measures one
    free-running execution, [Sct_run] enumerates bounded interleavings of
    a small deterministic workload and checks every one of them.

    Oracles, in the order applied after each run:
    - {e crash}: an exception escaping a simulated thread
      ([Sim.Thread_failure]) is a violation — unless the exception is
      [Sim.Thread_killed], the tag carried by injected crash faults,
      which marks deliberate fault-induced termination, not a bug;
    - {e data race} (opt-in, [~races:true]): the happens-before detector
      ({!Ascy_analysis.Race}) observed two plain writes to the same
      cache line unordered by the run's synchronization;
    - {e structure}: [validate] must pass (ordering/reachability);
    - {e conservation}: for every key, initial membership plus net
      successful inserts/removes must equal final membership;
    - {e linearizability}: the recorded invocation/response history must
      admit a legal linearization ({!History.check}).

    A step-budget overflow under the (fair) controlled scheduler is also
    a violation — that is how the sl-pugh livelock class of bug
    surfaces under SCT. *)

module Sim = Ascy_mem.Sim
module P = Ascy_platform.Platform
module J = Ascy_util.Json
module Explorer = Ascy_sct.Explorer
module Scheduler = Ascy_sct.Scheduler
module Replay = Ascy_sct.Replay

type op = Workload.op = Search | Insert | Remove

(** A fully deterministic workload: the algorithm (by registry name),
    the keys present before the measured run, and one operation script
    per thread.  Schedules are only reproducible against the identical
    spec, so the spec is serialized alongside each counterexample. *)
type spec = {
  name : string;  (** registry name, e.g. ["ll-lazy"] *)
  platform : P.t;
  nthreads : int;
  initial : int list;
  script : (op * int) array array;  (** [script.(tid)] = that thread's ops *)
}

let mk_spec ?(platform = P.xeon20) ~name ~initial ~script () =
  let nthreads = Array.length script in
  if nthreads < 1 then invalid_arg "Sct_run.mk_spec: empty script";
  { name; platform; nthreads; initial; script }

(** Derive a per-thread script from a {!Workload} the same way
    {!Sim_run} draws operations — per-thread RNGs, schedule-independent
    — so fuzz-style workloads can be explored systematically. *)
let script_of_workload ~(workload : Workload.t) ~nthreads ~ops_per_thread ~seed =
  Array.init nthreads (fun tid ->
      let rng = Ascy_util.Xorshift.create ((seed * 7919) + (tid * 104729) + 13) in
      Array.init ops_per_thread (fun _ ->
          let k = Workload.pick_key workload rng in
          let op = Workload.pick_op workload rng in
          (op, k)))

(* Keys a spec can ever touch: initial ∪ scripted. *)
let keys_of spec =
  let tbl = Hashtbl.create 32 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) spec.initial;
  Array.iter (Array.iter (fun (_, k) -> Hashtbl.replace tbl k ())) spec.script;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

(** [run_once maker spec ~sched] executes the spec once under [sched]
    and returns [Some description] iff an oracle rejects the run.
    Deterministic: the same schedule yields the identical result,
    including the description string.  [model] selects the coherence
    cost model: under a controlled scheduler the program's behavior is
    latency-independent, so oracle verdicts are model-invariant — [flat]
    gives the same verdicts faster. *)
let run_once ?(faults = []) ?(races = false) ?(model = Sim.default_model)
    (module A : Ascy_core.Set_intf.MAKER) spec ~sched =
  let module M = A (Sim.Mem) in
  (* History timestamps must reflect the *scheduling order*: [Sim.now]
     is the executing thread's local clock, which tracks global order
     under the default smallest-clock policy but lags arbitrarily for a
     descheduled thread under a controlled schedule.  A counter bumped
     at every scheduling decision is a sound logical clock: a thread
     reads it only while scheduled, so op A's response strictly precedes
     op B's invocation iff A's last step ran before B's first. *)
  let clock = ref 0 in
  let sched runnable =
    incr clock;
    sched runnable
  in
  let cfg =
    {
      (Engine.default ~platform:spec.platform ~nthreads:spec.nthreads) with
      scheduler = Some sched;
      faults;
      races;
      model;
    }
  in
  Engine.with_session cfg (fun session ->
      let sim = session.Engine.sim in
      (* build + prefill outside simulated time, like Sim_run *)
      let t = M.create ~hint:(max 8 (List.length spec.initial)) () in
      List.iter (fun k -> ignore (M.insert t k (-1))) spec.initial;
      Sim.warm sim;
      let h = History.create () in
      List.iter (History.add_initial h) spec.initial;
      let net = Hashtbl.create 32 in
      let bump k d = Hashtbl.replace net k (d + try Hashtbl.find net k with Not_found -> 0) in
      let body tid () =
        Array.iter
          (fun (op, k) ->
            let inv = !clock in
            let ok =
              match op with
              | Search -> M.search t k <> None
              | Insert ->
                  let r = M.insert t k tid in
                  if r then bump k 1;
                  r
              | Remove ->
                  let r = M.remove t k in
                  if r then bump k (-1);
                  r
            in
            let res = !clock in
            let kind =
              match op with
              | Search -> History.Search
              | Insert -> History.Insert
              | Remove -> History.Remove
            in
            History.record h ~tid ~kind ~key:k ~result:ok ~inv ~res;
            M.op_done t)
          spec.script.(tid)
      in
      match Engine.run session (Array.init spec.nthreads body) with
      | exception Sim.Thread_failure (_, Sim.Thread_killed, _) ->
          (* fault-induced termination that resurfaced through wrapping
             test code: deliberate, not a bug *)
          None
      | exception Sim.Thread_failure (tid, e, _) ->
          Some (Printf.sprintf "thread %d crashed: %s" tid (Printexc.to_string e))
      | _ -> (
          match Engine.race_violation session with
          | Some desc -> Some desc
          | None -> (
          match M.validate t with
          | Error msg -> Some (Printf.sprintf "structural invariant broken: %s" msg)
          | Ok () -> (
              let bad =
                List.filter_map
                  (fun k ->
                    let wanted =
                      (if List.mem k spec.initial then 1 else 0)
                      + (try Hashtbl.find net k with Not_found -> 0)
                    in
                    let got = if M.search t k <> None then 1 else 0 in
                    if wanted <> got then
                      Some
                        (Printf.sprintf "key %d: net count %d (initial + successful updates), membership %d"
                           k wanted got)
                    else None)
                  (keys_of spec)
              in
              match bad with
              | _ :: _ ->
                  Some ("set conservation violated: " ^ String.concat "; " bad)
              | [] -> (
                  match History.check h with
                  | Ok () -> None
                  | Error v -> Some ("not linearizable: " ^ History.pp_violation v))))))

(* A prefix-replay check with its own step budget, so minimizing or
   replaying a livelock counterexample cannot itself livelock. *)
let check_prefix ?races ?model maker spec ~max_steps prefix =
  let steps = ref 0 in
  let inner = Scheduler.prefix_scheduler ~prefix () in
  let sched runnable =
    incr steps;
    if !steps > max_steps then raise (Explorer.Step_limit !steps);
    inner runnable
  in
  try run_once ?races ?model maker spec ~sched
  with Explorer.Step_limit d ->
    Some (Printf.sprintf "step limit %d exceeded (possible livelock or starvation)" d)

type finding = {
  violation : string;  (** oracle description from the original failing run *)
  schedule : int array;  (** full failing decision sequence *)
  minimized : int array;  (** shrunk prefix; still fails under replay *)
  min_violation : string;  (** oracle description under the minimized prefix *)
}

(** [explore ?mode ?bounds ?races ?model ?policy ?domains spec]
    systematically explores the spec's schedule space ([~races:true]
    additionally runs the happens-before race detector over every
    schedule).  On failure the counterexample is minimized; the report
    carries exploration statistics either way.  [model] selects the
    coherence model for every run (controlled schedules make verdicts,
    schedule counts and minimized counterexamples model-invariant;
    [flat] explores the same space faster).

    [policy] picks the exploration policy ({!Ascy_sct.Explorer.policy}:
    exhaustive DFS, uniform random, PCT, swarm) and [domains] how many
    worker domains partition the work ({!Ascy_sct.Par_explore}).  The
    default — exhaustive, one domain — is the byte-identical historical
    path.  Findings from every policy and domain count flow through the
    same minimize/replay pipeline, and for a fixed policy seed the
    finding is domain-count invariant. *)
let explore ?mode ?(bounds = Explorer.default_bounds) ?races ?model ?policy ?domains spec =
  let maker = (Ascylib.Registry.by_name spec.name).Ascylib.Registry.maker in
  let report =
    Ascy_sct.Par_explore.dispatch ?mode ~bounds ?policy ?domains
      ~run:(fun ~sched -> run_once ?races ?model maker spec ~sched)
      ()
  in
  let finding =
    match report.Explorer.failure with
    | None -> None
    | Some f ->
        let check = check_prefix ?races ?model maker spec ~max_steps:bounds.Explorer.max_steps in
        let minimized = Replay.minimize ~check f.Explorer.f_schedule in
        let min_violation =
          match check minimized with
          | Some d -> d
          | None -> assert false (* minimize guarantees the prefix fails *)
        in
        Some { violation = f.Explorer.f_desc; schedule = f.Explorer.f_schedule; minimized; min_violation }
  in
  (finding, report)

(** Structured summary of one exploration, for SCT/EXPLORE JSON rows.
    Carries the [incomplete] flag: {!Ascy_sct.Explorer} always computed
    completeness (a [max_schedules]-exhausted DFS is {e not} a proof of
    absence, and a randomized policy never proves anything), but
    summaries used to drop it — a clean verdict and an
    out-of-budget verdict printed identically. *)
let report_json ?(policy = Explorer.Exhaustive) ?(domains = 1) ?violation
    (report : Explorer.report) =
  J.Obj
    [
      ("policy", J.String (Explorer.policy_name policy));
      ("domains", J.Int domains);
      ("schedules", J.Int report.Explorer.schedules);
      ("steps", J.Int report.Explorer.steps);
      ("complete", J.Bool report.Explorer.complete);
      ("incomplete", J.Bool (not report.Explorer.complete));
      ("violation", match violation with Some v -> J.String v | None -> J.Null);
    ]

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let op_tag = function Search -> "s" | Insert -> "i" | Remove -> "r"

let op_of_tag = function
  | "s" -> Search
  | "i" -> Insert
  | "r" -> Remove
  | t -> raise (Replay.Bad_schedule ("unknown op tag: " ^ t))

let spec_meta spec =
  [
    ("algorithm", J.String spec.name);
    ("platform", J.String spec.platform.P.name);
    ("nthreads", J.Int spec.nthreads);
    ("initial", J.List (List.map (fun k -> J.Int k) spec.initial));
    ( "script",
      J.List
        (Array.to_list
           (Array.map
              (fun ops ->
                J.List
                  (Array.to_list
                     (Array.map (fun (op, k) -> J.List [ J.String (op_tag op); J.Int k ]) ops)))
              spec.script)) );
  ]

let spec_of_meta meta =
  let get k =
    match List.assoc_opt k meta with
    | Some v -> v
    | None -> raise (Replay.Bad_schedule ("missing meta field: " ^ k))
  in
  let name = match get "algorithm" with J.String s -> s | _ -> raise (Replay.Bad_schedule "algorithm") in
  let platform =
    match get "platform" with
    | J.String s -> P.by_name s
    | _ -> raise (Replay.Bad_schedule "platform")
  in
  let initial =
    match get "initial" with
    | J.List ks ->
        List.map (function J.Int k -> k | _ -> raise (Replay.Bad_schedule "initial")) ks
    | _ -> raise (Replay.Bad_schedule "initial")
  in
  let script =
    match get "script" with
    | J.List threads ->
        Array.of_list
          (List.map
             (function
               | J.List ops ->
                   Array.of_list
                     (List.map
                        (function
                          | J.List [ J.String tag; J.Int k ] -> (op_of_tag tag, k)
                          | _ -> raise (Replay.Bad_schedule "script op"))
                        ops)
               | _ -> raise (Replay.Bad_schedule "script thread"))
             threads)
    | _ -> raise (Replay.Bad_schedule "script")
  in
  let nthreads = Array.length script in
  (match get "nthreads" with
  | J.Int n when n = nthreads -> ()
  | _ -> raise (Replay.Bad_schedule "nthreads does not match script"));
  { name; platform; nthreads; initial; script }

(** Write a self-contained counterexample file: minimized schedule plus
    everything needed to rebuild the run ({!spec_meta}).  Pass the same
    [?races] and [?model] the finding was explored with: both are stored
    in the file so {!replay_file} re-arms the race oracle and the
    coherence model (the model field is omitted — and the file is
    byte-identical to the pre-model format — when it is the default). *)
let save_finding ?(races = false) ?(model = Sim.default_model) ~path spec finding =
  Replay.save ~path
    ~meta:
      (spec_meta spec
      @ [ ("violation", J.String finding.min_violation); ("races", J.Bool races) ]
      @ Engine.model_meta model)
    ~prefix:finding.minimized ()

(** Load a counterexample file and replay it [times] times; returns the
    violation description of each replay (all identical when the
    reproduction is deterministic) and the stored expected violation. *)
let replay_file ?(times = 2) ?(max_steps = Explorer.default_bounds.Explorer.max_steps) path =
  let prefix, faults, meta = Replay.load path in
  if faults <> [] then
    raise (Replay.Bad_schedule "schedule carries a fault plan: replay it with Fault_run");
  let spec = spec_of_meta meta in
  let expected =
    match List.assoc_opt "violation" meta with Some (J.String s) -> Some s | _ -> None
  in
  let races =
    match List.assoc_opt "races" meta with Some (J.Bool b) -> b | _ -> false
  in
  let model = Engine.model_of_meta meta in
  let maker = (Ascylib.Registry.by_name spec.name).Ascylib.Registry.maker in
  let results =
    List.init times (fun _ -> check_prefix ~races ~model maker spec ~max_steps prefix)
  in
  (spec, expected, results)
