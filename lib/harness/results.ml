(** Structured (JSON) benchmark results.

    Every harness run — simulated ({!Sim_run.result}) or native
    ({!Native_run.result}) — serializes to a stable, versioned JSON
    record: throughput, the p1/p25/p50/p75/p99 latency distribution per
    operation class, the full {!Ascy_mem.Sim.run_stats} counter set,
    derived per-op metrics, and workload/platform metadata.  The bench
    drivers append records to a per-experiment sink which is written to
    [BENCH_<experiment>.json] next to the text tables, giving every
    benchmark run a durable, diffable metrics trail.

    Schema (version 1) — one file per experiment:
    {v
    { "schema_version": 1,
      "experiment": "fig2",
      "generated_at_unix": 1754438400.0,
      "meta": { "mode": "default", ... },
      "runs": [ <run>, ... ] }
    v}
    where each simulated <run> is
    {v
    { "label": "...", "kind": "sim", "algorithm": "ll-lazy",
      "platform": "xeon20", "nthreads": 8, "seed": 1,
      "ops_per_thread": 150, "ops": 1200,
      "updates_attempted": N, "updates_successful": N,
      "seconds": s, "throughput_mops": x, "final_size": N,
      "workload": { "initial": N, "key_range": N, "update_pct": N },
      "stats": { "makespan_cycles": N, "accesses": N, "hits_l1": N,
                 "hits_llc": N, "transfers_local": N,
                 "transfers_remote": N, "fetch_remote": N,
                 "misses_mem": N, "atomics": N, "stores": N, "energy_j": x,
                 "power_w": x, "events": { "restart": N, ... } },
      "thread_stats": [ { "tid": N, "accesses": N, "l1": N, "llc": N,
                          "c2c_local": N, "c2c_remote": N,
                          "llc_remote": N, "mem": N, "atomics": N,
                          "stores": N }, ... ],
      "derived": { "misses_per_op": x, "atomics_per_update": x,
                   "stores_per_update": x, "extra_parse_pct": x },
      "latency_ns": { "search_hit": <dist> | null, ...,
                      "ops_ok": <dist> | null } }
    v}
    and <dist> is
    [{ "count": N, "mean": x, "p1": x, "p25": x, "p50": x, "p75": x,
       "p99": x }] (null when no samples were recorded). *)

module J = Ascy_util.Json
module H = Ascy_util.Histogram
module Sim = Ascy_mem.Sim

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Serializers                                                         *)
(* ------------------------------------------------------------------ *)

let histogram_json h =
  if H.count h = 0 then J.Null
  else
    let p = H.summary h in
    J.Obj
      [
        ("count", J.Int (H.count h));
        ("mean", J.Float (H.mean h));
        ("p1", J.Float p.(0));
        ("p25", J.Float p.(1));
        ("p50", J.Float p.(2));
        ("p75", J.Float p.(3));
        ("p99", J.Float p.(4));
      ]

(** count/mean plus an arbitrary percentile set — the service layer's
    p50/p99/p999 sojourn and service-time rows ([Ascy_service]).  The
    fixed five-percentile figure layout above keeps using
    {!histogram_json}. *)
let percentile_summary_json ?(ps = [ (50.0, "p50"); (99.0, "p99"); (99.9, "p999") ]) h =
  if H.count h = 0 then J.Null
  else
    J.Obj
      (("count", J.Int (H.count h))
      :: ("mean", J.Float (H.mean h))
      :: List.map (fun (p, name) -> (name, J.Float (H.percentile h p))) ps)

let events_json events =
  J.Obj (List.init Ascy_mem.Event.count (fun i -> (Ascy_mem.Event.name i, J.Int events.(i))))

let stats_json (st : Sim.run_stats) =
  J.Obj
    [
      ("makespan_cycles", J.Int st.Sim.makespan_cycles);
      ("accesses", J.Int st.Sim.accesses);
      ("hits_l1", J.Int st.Sim.hits_l1);
      ("hits_llc", J.Int st.Sim.hits_llc);
      ("transfers_local", J.Int st.Sim.transfers_local);
      ("transfers_remote", J.Int st.Sim.transfers_remote);
      ("fetch_remote", J.Int st.Sim.fetch_remote);
      ("misses_mem", J.Int st.Sim.misses_mem);
      ("misses", J.Int (Sim.misses st));
      ("atomics", J.Int st.Sim.atomics);
      ("stores", J.Int st.Sim.stores);
      ("energy_j", J.Float st.Sim.energy_j);
      ("power_w", J.Float st.Sim.power_w);
      ("events", events_json st.Sim.events);
    ]

(* Per-thread coherence service-class counters (the Tc_* classes), live
   even with tracing off — paper Fig. 4/10-style breakdowns. *)
let thread_stats_json (ts : Sim.thread_stats array) =
  J.List
    (Array.to_list
       (Array.map
          (fun (t : Sim.thread_stats) ->
            J.Obj
              [
                ("tid", J.Int t.Sim.t_tid);
                ("accesses", J.Int t.Sim.t_accesses);
                ("l1", J.Int t.Sim.t_l1);
                ("llc", J.Int t.Sim.t_llc);
                ("c2c_local", J.Int t.Sim.t_c2c_local);
                ("c2c_remote", J.Int t.Sim.t_c2c_remote);
                ("llc_remote", J.Int t.Sim.t_llc_remote);
                ("mem", J.Int t.Sim.t_mem);
                ("atomics", J.Int t.Sim.t_atomics);
                ("stores", J.Int t.Sim.t_stores);
              ])
          ts))

let workload_json (w : Workload.t) =
  J.Obj
    [
      ("initial", J.Int w.Workload.initial);
      ("key_range", J.Int w.Workload.key_range);
      ("update_pct", J.Int w.Workload.update_pct);
    ]

let latencies_json (lat : Sim_run.latency_class) =
  let ops_ok = H.create () in
  let ops_ok = H.merge ops_ok lat.Sim_run.search_hit in
  let ops_ok = H.merge ops_ok lat.Sim_run.insert_ok in
  let ops_ok = H.merge ops_ok lat.Sim_run.remove_ok in
  J.Obj
    [
      ("search_hit", histogram_json lat.Sim_run.search_hit);
      ("search_miss", histogram_json lat.Sim_run.search_miss);
      ("insert_ok", histogram_json lat.Sim_run.insert_ok);
      ("insert_fail", histogram_json lat.Sim_run.insert_fail);
      ("remove_ok", histogram_json lat.Sim_run.remove_ok);
      ("remove_fail", histogram_json lat.Sim_run.remove_fail);
      ("ops_ok", histogram_json ops_ok);
    ]

(** Serialize one simulated experiment point.  [label] distinguishes
    several points of one figure (panel, contention level, ...). *)
let of_sim_run ?(label = "") (r : Sim_run.result) =
  J.Obj
    [
      ("label", J.String label);
      ("kind", J.String "sim");
      ("algorithm", J.String r.Sim_run.algorithm);
      ("platform", J.String r.Sim_run.platform);
      ("nthreads", J.Int r.Sim_run.nthreads);
      ("seed", J.Int r.Sim_run.seed);
      ("ops_per_thread", J.Int r.Sim_run.ops_per_thread);
      ("ops", J.Int r.Sim_run.ops);
      ("updates_attempted", J.Int r.Sim_run.updates_attempted);
      ("updates_successful", J.Int r.Sim_run.updates_successful);
      ("seconds", J.Float r.Sim_run.seconds);
      ("throughput_mops", J.Float r.Sim_run.throughput_mops);
      ("final_size", J.Int r.Sim_run.final_size);
      ("workload", workload_json r.Sim_run.workload);
      ("stats", stats_json r.Sim_run.stats);
      ("thread_stats", thread_stats_json r.Sim_run.thread_stats);
      ( "derived",
        J.Obj
          [
            ("misses_per_op", J.Float (Sim_run.misses_per_op r));
            ("atomics_per_update", J.Float (Sim_run.atomics_per_update r));
            ("stores_per_update", J.Float (Sim_run.stores_per_update r));
            ("extra_parse_pct", J.Float (Sim_run.extra_parse_pct r));
          ] );
      ("latency_ns", latencies_json r.Sim_run.latencies);
    ]

(** Serialize one native (OCaml-domains) experiment point. *)
let of_native_run ?(label = "") (r : Native_run.result) =
  J.Obj
    [
      ("label", J.String label);
      ("kind", J.String "native");
      ("algorithm", J.String r.Native_run.algorithm);
      ("nthreads", J.Int r.Native_run.nthreads);
      ("ops", J.Int r.Native_run.ops);
      ("seconds", J.Float r.Native_run.seconds);
      ("throughput_mops", J.Float r.Native_run.throughput_mops);
      ("final_size", J.Int r.Native_run.final_size);
    ]

(* ------------------------------------------------------------------ *)
(* Per-experiment sinks                                                *)
(* ------------------------------------------------------------------ *)

(* The bench process runs experiments sequentially, so one current sink
   suffices; [record] outside any sink is a silent no-op so experiment
   drivers also work standalone. *)
let sink : (string * J.t list ref) option ref = ref None

let out_dir () = match Sys.getenv_opt "ASCY_BENCH_OUT" with Some d -> d | None -> "."

(* A missing ASCY_BENCH_OUT directory must not lose the run's results
   at sink-close time — create it instead. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let filename experiment =
  let dir = out_dir () in
  mkdir_p dir;
  Filename.concat dir ("BENCH_" ^ experiment ^ ".json")

let open_sink experiment = sink := Some (experiment, ref [])

(** Append one run record to the open sink (no-op without one). *)
let record j = match !sink with Some (_, runs) -> runs := j :: !runs | None -> ()

(** Convenience: serialize and record a simulated run. *)
let record_sim ?label r = record (of_sim_run ?label r)

(** Close the sink; if any runs were recorded, write
    [BENCH_<experiment>.json] and return its path. *)
let close_sink ?(meta = []) () =
  match !sink with
  | None -> None
  | Some (experiment, runs) ->
      sink := None;
      if !runs = [] then None
      else begin
        let doc =
          J.Obj
            [
              ("schema_version", J.Int schema_version);
              ("experiment", J.String experiment);
              ("generated_at_unix", J.Float (Unix.gettimeofday ()));
              ("meta", J.Obj meta);
              ("runs", J.List (List.rev !runs));
            ]
        in
        let path = filename experiment in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (J.to_string ~indent:1 doc);
            output_char oc '\n');
        Some path
      end

(** [with_sink ?meta experiment f] runs [f ()] with an open sink and
    writes the collected records afterwards (even if [f] raises). *)
let with_sink ?meta experiment f =
  open_sink experiment;
  Fun.protect
    ~finally:(fun () ->
      match close_sink ?meta () with
      | Some path -> Printf.printf "[%s: structured results -> %s]\n%!" experiment path
      | None -> ())
    f
