(** Chaos testing of CSDS implementations: scripted workloads executed
    under injected fault plans ({!Ascy_mem.Sim.fault_event}) and checked
    with {e progress oracles} — does everyone else still finish when one
    thread crash-stops holding a lock, mid-CAS, or simply stalls?

    This is the fault-injection sibling of {!Sct_run}: where [Sct_run]
    enumerates interleavings of a correct execution, [Fault_run] holds
    the schedule (default policy, or any explored prefix) and perturbs
    the {e execution} itself.  Both live in the same coordinate system —
    scheduler decision indices — so a fault plan composes with a
    schedule prefix and serializes into the same replay file format
    ({!Ascy_sct.Replay}, schema v2).

    Oracles:
    - {e global-progress watchdog}: some thread completes an operation
      within a bounded number of scheduling decisions, or the run is
      declared wedged and the watchdog reports what every surviving
      thread was spinning on (for a lock-holder crash: the owning lock's
      cache line);
    - {e per-thread starvation}: the largest decision gap between any
      one thread's consecutive operation completions;
    - {e structural validation} + {e per-key conservation} after runs
      that complete: net membership from {e completed} operations only,
      widened by ±1 on the keys of crashed threads' in-flight ops (a
      crash-stopped insert may or may not have taken effect — both are
      legal; anything beyond that slack is corruption).

    {!classify} turns this into a verdict per algorithm: crash the
    victim after each of its store/CAS commits in turn (covering
    crash-holding-lock for lock-based designs and crash-mid-CAS for
    lock-free ones) and observe whether any placement wedges the
    survivors — the {e observed} progress class, checked against the
    declared Table-1 guarantee ({!Ascylib.Registry.entry.progress}) by
    [bin/ascy_chaos] and CI. *)

module Sim = Ascy_mem.Sim
module J = Ascy_util.Json
module Explorer = Ascy_sct.Explorer
module Scheduler = Ascy_sct.Scheduler
module Replay = Ascy_sct.Replay
module Registry = Ascylib.Registry
module Ascy = Ascy_core.Ascy

type op = Workload.op = Search | Insert | Remove
type spec = Sct_run.spec

(** Re-exported so chaos callers need only this module. *)
let mk_spec = Sct_run.mk_spec

(** [true] iff [e] is the exception tag carried by injected crash
    faults — deliberate termination, to be exempted from crash oracles. *)
let is_injected = function Sim.Thread_killed -> true | _ -> false

let action_str = function
  | Sim.A_start -> "not started"
  | Sim.A_work n -> Printf.sprintf "work(%d)" n
  | Sim.A_access (k, line) ->
      Printf.sprintf "%s@line%d"
        (match k with Sim.Read -> "read" | Sim.Write -> "write" | Sim.Rmw -> "rmw")
        line
  | Sim.A_kcas lines ->
      Printf.sprintf "kcas@lines[%s]"
        (String.concat "," (Array.to_list (Array.map string_of_int lines)))

let fault_str fe =
  match fe.Sim.fe_fault with
  | Sim.F_crash -> Printf.sprintf "crash(t%d)@%d" fe.Sim.fe_tid fe.Sim.fe_at
  | Sim.F_stall n -> Printf.sprintf "stall(t%d,%d)@%d" fe.Sim.fe_tid n fe.Sim.fe_at
  | Sim.F_numa_slow { factor; window } ->
      Printf.sprintf "numa-slow(s%d,x%.1f,%d)@%d" fe.Sim.fe_tid factor window fe.Sim.fe_at
  | Sim.F_msg Sim.Msg_drop -> Printf.sprintf "drop(t%d)@%d" fe.Sim.fe_tid fe.Sim.fe_at
  | Sim.F_msg Sim.Msg_dup -> Printf.sprintf "dup(t%d)@%d" fe.Sim.fe_tid fe.Sim.fe_at
  | Sim.F_msg (Sim.Msg_delay n) ->
      Printf.sprintf "delay(t%d,%d)@%d" fe.Sim.fe_tid n fe.Sim.fe_at

let plan_str faults = String.concat " " (List.map fault_str faults)

(* Watchdog trip, raised from inside the scheduler callback. *)
exception Wedged_exn of { at : int; spun : (int * string) list }

type verdict =
  | Completed  (** every non-crashed thread ran its whole script *)
  | Wedged of { at : int; spun : (int * string) list }
      (** the watchdog tripped: no operation completed for a full window;
          [spun] is what each surviving unfinished thread was blocked on *)

type outcome = {
  verdict : verdict;
  violation : string option;
      (** the failure, if any: the watchdog description for a wedge, an
          oracle description for a completed-but-corrupted run *)
  starved : (int * int) list;
      (** per-thread starvation report: [(tid, max decision gap between
          its consecutive op completions)], worst first *)
  crashed : int list;  (** tids crash-stopped by the plan *)
  done_ops : int array;  (** operations completed, per thread *)
}

let crash_tids_of faults =
  List.filter_map
    (fun fe -> match fe.Sim.fe_fault with Sim.F_crash -> Some fe.Sim.fe_tid | _ -> None)
    faults

(* ------------------------------------------------------------------ *)
(* One chaos run                                                       *)
(* ------------------------------------------------------------------ *)

(** [run_spec ?prefix ?watchdog ?check ~faults spec] executes the spec
    once under the controlled default policy (after the optional
    schedule [prefix]) with [faults] injected, and applies the progress
    oracles.  [check = false] skips post-run validation/conservation —
    required when the structure may be left mid-update behind a corpse's
    lock (declared-blocking designs under crash), where even reading it
    back could spin forever.  Deterministic: identical inputs give the
    identical outcome, including description strings. *)
let run_spec ?(prefix = [||]) ?sched ?(watchdog = 2_000) ?(max_steps = 200_000)
    ?(check = true) ?on_step ?(model = Sim.default_model) ~faults (spec : spec) =
  let nthreads = spec.Sct_run.nthreads in
  let crash_tids = crash_tids_of faults in
  let done_ops = Array.make nthreads 0 in
  let last_done = Array.make nthreads 0 in
  let max_gap = Array.make nthreads 0 in
  let net = Hashtbl.create 16 in
  let bump k d = Hashtbl.replace net k (d + try Hashtbl.find net k with Not_found -> 0) in
  let decisions = ref 0 in
  let last_progress = ref 0 in
  let inner =
    match sched with Some s -> s | None -> Scheduler.prefix_scheduler ?on_step ~prefix ()
  in
  let sched runnable =
    incr decisions;
    if !decisions - !last_progress > watchdog || !decisions > max_steps then
      raise
        (Wedged_exn
           {
             at = !decisions;
             spun =
               (let spun = ref [] in
                for i = Sim.runnable_count runnable - 1 downto 0 do
                  let tid = Sim.runnable_tid runnable i in
                  if not (List.mem tid crash_tids) then
                    spun := (tid, action_str (Sim.runnable_action runnable i)) :: !spun
                done;
                !spun);
           });
    inner runnable
  in
  let (module A : Ascy_core.Set_intf.MAKER) = (Registry.by_name spec.Sct_run.name).Registry.maker in
  let module M = A (Sim.Mem) in
  let cfg =
    {
      (Engine.default ~platform:spec.Sct_run.platform ~nthreads) with
      scheduler = Some sched;
      faults;
      model;
    }
  in
  Engine.with_session cfg (fun session ->
      let sim = session.Engine.sim in
      (* build + prefill outside simulated time, like Sct_run *)
      let t = M.create ~hint:(max 8 (List.length spec.Sct_run.initial)) () in
      List.iter (fun k -> ignore (M.insert t k (-1))) spec.Sct_run.initial;
      Sim.warm sim;
      let body tid () =
        Array.iter
          (fun (op, k) ->
            (match op with
            | Search -> ignore (M.search t k)
            | Insert -> if M.insert t k tid then bump k 1
            | Remove -> if M.remove t k then bump k (-1));
            M.op_done t;
            done_ops.(tid) <- done_ops.(tid) + 1;
            let gap = !decisions - last_done.(tid) in
            if gap > max_gap.(tid) then max_gap.(tid) <- gap;
            last_done.(tid) <- !decisions;
            last_progress := !decisions)
          spec.Sct_run.script.(tid)
      in
      let fail =
        match Engine.run session (Array.init nthreads body) with
        | _ -> None
        | exception Wedged_exn { at; spun } ->
            Some
              ( Wedged { at; spun },
                Printf.sprintf
                  "watchdog: no operation completed for %d decisions (tripped at %d); %s"
                  watchdog at
                  (String.concat ", "
                     (List.map (fun (tid, a) -> Printf.sprintf "t%d blocked on %s" tid a) spun))
              )
        | exception Sim.Thread_failure (_, e, _) when is_injected e ->
            (* an injected kill resurfaced through wrapping code; the run
               is aborted but this is fault-induced, not a bug *)
            Some (Completed, "injected kill escaped the simulated body")
        | exception Sim.Thread_failure (tid, e, _) ->
            Some
              (Completed, Printf.sprintf "thread %d crashed: %s" tid (Printexc.to_string e))
      in
      let starved =
        let l = ref [] in
        Array.iteri (fun tid g -> if g > 0 then l := (tid, g) :: !l) max_gap;
        List.sort (fun (_, a) (_, b) -> compare b a) !l
      in
      let crashed = Sim.crashed_tids sim in
      let mk verdict violation = { verdict; violation; starved; crashed; done_ops } in
      match fail with
      | Some (verdict, desc) -> mk verdict (Some desc)
      | None ->
          if not check then mk Completed None
          else
            (* post-fault structural validation ... *)
            let violation =
              match M.validate t with
              | Error msg -> Some (Printf.sprintf "structural invariant broken: %s" msg)
              | Ok () ->
                  (* ... and per-key conservation over completed ops, with
                     ±1 slack on the keys of crashed threads' in-flight
                     ops (the crash may have landed either side of the
                     linearization point — both outcomes are legal) *)
                  let inflight tid =
                    if done_ops.(tid) < Array.length spec.Sct_run.script.(tid) then
                      Some spec.Sct_run.script.(tid).(done_ops.(tid))
                    else None
                  in
                  let bad =
                    List.filter_map
                      (fun k ->
                        let wanted =
                          (if List.mem k spec.Sct_run.initial then 1 else 0)
                          + (try Hashtbl.find net k with Not_found -> 0)
                        in
                        let lo = ref 0 and hi = ref 0 in
                        List.iter
                          (fun tid ->
                            match inflight tid with
                            | Some (Insert, k') when k' = k -> incr hi
                            | Some (Remove, k') when k' = k -> decr lo
                            | _ -> ())
                          crashed;
                        let got = if M.search t k <> None then 1 else 0 in
                        if got < wanted + !lo || got > wanted + !hi then
                          Some
                            (Printf.sprintf
                               "key %d: net count %d from completed ops (slack %+d..%+d), membership %d"
                               k wanted !lo !hi got)
                        else None)
                      (Sct_run.keys_of spec)
                  in
                  (match bad with
                  | [] -> None
                  | _ -> Some ("conservation violated: " ^ String.concat "; " bad))
            in
            mk Completed violation)

(* ------------------------------------------------------------------ *)
(* Crash-point discovery                                               *)
(* ------------------------------------------------------------------ *)

(** Decision indices at which crashing [victim] catches it right after a
    store or CAS commit — mid-critical-section for lock-based designs
    (the acquire is an RMW), mid-protocol for lock-free ones.  Derived
    from a fault-free probe run under the same (default) schedule, so
    the indices are exact for subsequent fault runs. *)
let crash_candidates ?(max_candidates = 48) ?model ~victim (spec : spec) =
  let cands = ref [] in
  let on_step ~step ~runnable ~chosen =
    if chosen = victim && List.length !cands < max_candidates then
      match Scheduler.action_of chosen runnable with
      | Sim.A_access ((Sim.Write | Sim.Rmw), _) | Sim.A_kcas _ -> cands := (step + 1) :: !cands
      | _ -> ()
  in
  ignore (run_spec ~on_step ~check:false ?model ~faults:[] spec);
  List.rev !cands

(* ------------------------------------------------------------------ *)
(* Classification: observed vs declared progress                       *)
(* ------------------------------------------------------------------ *)

(** The adversarial chaos workload: three threads hammer updates on one
    key, so a corpse holding that key's lock (or bucket, or segment)
    provably stands in every survivor's way. *)
let chaos_spec ?platform name =
  Sct_run.mk_spec ?platform ~name ~initial:[ 2 ]
    ~script:
      [|
        [| (Insert, 1); (Remove, 1); (Insert, 1) |];
        [| (Insert, 1); (Remove, 1); (Insert, 1); (Remove, 1) |];
        [| (Remove, 1); (Insert, 1); (Remove, 1); (Insert, 1) |];
      |]
    ()

type report = {
  entry : Registry.entry;
  observed : Ascy.progress;  (** from the crash sweep *)
  witness : (Sim.fault_event list * string) option;
      (** the plan (and watchdog description) that wedged the survivors —
          present iff [observed = Blocking] *)
  crash_probes : int;  (** crash placements tried *)
  oracle_failures : (Sim.fault_event list * string) list;
      (** completed crash runs that corrupted the structure *)
  stall_ok : bool;  (** finite stall: everyone completed, oracles clean *)
  stall_violation : string option;
  stall_plan : Sim.fault_event list;
}

(** Does the observed behavior honor the declared guarantee?  A declared
    non-blocking design must never wedge and never corrupt; a declared
    blocking one must actually wedge for at least one lock-holder crash
    (otherwise the declaration is wrong too).  Finite stalls must always
    be survived. *)
let matches r =
  r.observed = r.entry.Registry.progress && r.oracle_failures = [] && r.stall_ok

(** Crash the victim after each of its commit points in turn, then stall
    it; observe.  For declared-blocking designs the sweep stops at the
    first wedge (the expected outcome); declared-non-blocking designs
    must survive every placement, so all are run. *)
let classify ?(watchdog = 2_000) ?(max_candidates = 48) ?(stall = 500) ?model
    (entry : Registry.entry) =
  let spec = chaos_spec entry.Registry.name in
  let victim = 0 in
  let declared = entry.Registry.progress in
  (* correctness oracles only where they are sound: a corpse inside a
     blocking design legitimately leaves the structure mid-update (and
     reading it back could spin on the held lock); asynchronized
     structures are incorrect under any concurrency by design *)
  let check_crash = declared = Ascy.Non_blocking && not entry.Registry.asynchronized in
  let cands = crash_candidates ~max_candidates ?model ~victim spec in
  let witness = ref None in
  let oracle_failures = ref [] in
  let probes = ref 0 in
  (try
     List.iter
       (fun d ->
         let faults = [ { Sim.fe_at = d; fe_tid = victim; fe_fault = Sim.F_crash } ] in
         incr probes;
         let out = run_spec ~watchdog ~check:check_crash ?model ~faults spec in
         match (out.verdict, out.violation) with
         | Wedged _, _ ->
             witness := Some (faults, Option.value ~default:"wedged" out.violation);
             raise Exit
         | Completed, Some v -> oracle_failures := (faults, v) :: !oracle_failures
         | Completed, None -> ())
       cands
   with Exit -> ());
  let observed = if !witness <> None then Ascy.Blocking else Ascy.Non_blocking in
  (* a stall is finite: everyone must finish, and with no corpse at the
     end the exact oracles are sound for every non-asynchronized entry *)
  let stall_at = match cands with d :: _ -> d | [] -> 1 in
  let stall_plan = [ { Sim.fe_at = stall_at; fe_tid = victim; fe_fault = Sim.F_stall stall } ] in
  let stall_out =
    run_spec ~watchdog:(watchdog + (2 * stall))
      ~check:(not entry.Registry.asynchronized)
      ?model ~faults:stall_plan spec
  in
  {
    entry;
    observed;
    witness = !witness;
    crash_probes = !probes;
    oracle_failures = List.rev !oracle_failures;
    stall_ok = stall_out.verdict = Completed && stall_out.violation = None;
    stall_violation = stall_out.violation;
    stall_plan;
  }

(* ------------------------------------------------------------------ *)
(* Exploring fault points × schedules                                  *)
(* ------------------------------------------------------------------ *)

(** Product exploration: for each candidate crash decision, explore the
    schedule space with that crash injected — the SCT explorer placing
    interleavings {e and} the fault systematically.  The oracle is the
    progress watchdog.  Returns the first (plan, finding) that wedges,
    with the finding's schedule replayable alongside the plan.
    [policy]/[domains] select the exploration policy and worker domains
    exactly as in {!Sct_run.explore} (default: sequential exhaustive
    DFS, byte-identical to the historical behavior). *)
let explore_crash ?mode ?(bounds = Explorer.default_bounds) ?(watchdog = 1_000)
    ?(max_candidates = 8) ?model ?policy ?domains ~victim (spec : spec) =
  let cands = crash_candidates ~max_candidates ?model ~victim spec in
  List.find_map
    (fun d ->
      let faults = [ { Sim.fe_at = d; fe_tid = victim; fe_fault = Sim.F_crash } ] in
      let run ~sched = (run_spec ~sched ~watchdog ~check:false ?model ~faults spec).violation in
      let report = Ascy_sct.Par_explore.dispatch ?mode ~bounds ?policy ?domains ~run () in
      match report.Explorer.failure with Some f -> Some (faults, f) | None -> None)
    cands

(* ------------------------------------------------------------------ *)
(* Serialization: FAULT_*.json (Replay schema v2)                      *)
(* ------------------------------------------------------------------ *)

(** Write a self-contained chaos counterexample: the fault plan, the
    (possibly empty) schedule prefix, the spec, and the expected
    violation.  Loadable by {!replay_file} and [bin/sct_replay]. *)
let save_finding ~path ?(prefix = [||]) ?(watchdog = 2_000) ?(check = false)
    ?(model = Sim.default_model) (spec : spec) ~faults ~violation =
  Replay.save ~path ~faults ~prefix
    ~meta:
      (Sct_run.spec_meta spec
      @ [
          ("violation", J.String violation);
          ("watchdog", J.Int watchdog);
          ("oracles", J.Bool check);
        ]
      @ Engine.model_meta model)
    ()

(** Load a chaos counterexample and replay it [times] times; returns the
    spec, the stored expected violation, and each replay's violation
    (all identical when the reproduction is deterministic). *)
let replay_file ?(times = 2) path =
  let prefix, faults, meta = Replay.load path in
  let spec = Sct_run.spec_of_meta meta in
  let expected =
    match List.assoc_opt "violation" meta with Some (J.String s) -> Some s | _ -> None
  in
  let watchdog =
    match List.assoc_opt "watchdog" meta with Some (J.Int w) -> w | _ -> 2_000
  in
  let check = match List.assoc_opt "oracles" meta with Some (J.Bool b) -> b | _ -> false in
  let model = Engine.model_of_meta meta in
  let results =
    List.init times (fun _ -> (run_spec ~prefix ~watchdog ~check ~model ~faults spec).violation)
  in
  (spec, faults, expected, results)
