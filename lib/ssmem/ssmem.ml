(** SSMEM: an epoch-based memory reclamation scheme (paper §3).

    Freed nodes are not reusable until a garbage-collection pass proves
    that no thread can still hold a reference, using per-thread activity
    timestamps (quiescent-state-based reclamation, as in the C SSMEM):

    - every thread bumps its own timestamp between operations
      ([quiesce], wired to [Set_intf.op_done]);
    - [free] buffers garbage in the calling thread's current batch;
    - once [gc_threshold] objects have accumulated, the batch is stamped
      with a snapshot of all timestamps and parked; parked batches whose
      every stamp has since advanced are reclaimed.

    In OCaml the runtime GC already guarantees memory safety and ABA
    freedom, so "reclaiming" here feeds a statistics channel and an
    optional recycler rather than a raw allocator; what is preserved from
    the paper is the *behaviour*: deferred reuse, configurable garbage
    thresholds (the Tilera runs use 128 instead of 512), GC-pass counts,
    and the non-blocking design based on per-thread counters.

    QSBR's classic liability rides along: a thread that stops quiescing
    — crashed, stalled, or just descheduled forever — freezes its
    activity timestamp, and every batch parked after that point waits on
    it forever.  Garbage then grows without bound while nothing is ever
    reclaimed unsafely.  {!stuck_epochs} detects exactly this (which
    threads are pinning how much parked garbage) and {!detach} is the
    administrative escape hatch: once a thread is declared dead its
    frozen stamp no longer pins batches, and {!collect_all} drains
    whatever became reclaimable. *)

(* ascy-lint: allow-mutable-record — [thread_state] is the calling
   thread's private allocator state (indexed by [Mem.self ()]); only the
   activity timestamps are shared, and those live in [Mem.r] cells. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  type garbage = Garbage : 'a -> garbage

  type batch = { stamp : int array; items : garbage list; size : int }

  type thread_state = {
    mutable current : garbage list;
    mutable current_size : int;
    mutable parked : batch list;
    mutable freed : int;
    mutable reclaimed : int;
    mutable gc_passes : int;
  }

  type t = {
    gc_threshold : int;
    ts : int Mem.r array; (* per-thread activity timestamps *)
    states : thread_state option array; (* lazily created, owner-only *)
    reclaimer : (garbage -> unit) option;
    detached : bool array;
        (* administrative (not simulated memory): [detached.(i)] declares
           thread [i] dead — its frozen timestamp no longer pins batches *)
  }

  let create ?(gc_threshold = 512) ?reclaimer () =
    let n = Mem.max_threads () in
    {
      gc_threshold;
      ts = Array.init n (fun _ -> Mem.make_fresh 0);
      states = Array.make n None;
      reclaimer;
      detached = Array.make n false;
    }

  let state t =
    let me = Mem.self () in
    match t.states.(me) with
    | Some s -> s
    | None ->
        let s =
          { current = []; current_size = 0; parked = []; freed = 0; reclaimed = 0; gc_passes = 0 }
        in
        t.states.(me) <- Some s;
        s

  let snapshot t = Array.map Mem.get t.ts

  (* A parked batch is safe once every thread's timestamp moved past the
     one recorded when the batch was parked (threads that never registered
     stay at their initial value only if they never run operations; they
     hold no references, so a strictly-greater check on changed entries
     suffices: we require ts > stamp OR stamp = ts = 0 meaning idle). *)
  let batch_safe t b =
    let ok = ref true in
    Array.iteri
      (fun i s -> if not (Mem.get t.ts.(i) > s || s = 0 || t.detached.(i)) then ok := false)
      b.stamp;
    !ok

  let collect t s =
    s.gc_passes <- s.gc_passes + 1;
    Mem.emit Ascy_mem.Event.gc_pass;
    let ready, still = List.partition (batch_safe t) s.parked in
    s.parked <- still;
    List.iter
      (fun b ->
        s.reclaimed <- s.reclaimed + b.size;
        match t.reclaimer with
        | Some r -> List.iter r b.items
        | None -> ())
      ready

  (** Announce a quiescent point: the calling thread holds no references
      into any structure using this allocator.  Call between operations. *)
  let quiesce t =
    let me = Mem.self () in
    Mem.set t.ts.(me) (Mem.get t.ts.(me) + 1);
    (* opportunistically retire parked batches, as the C allocator does on
       its allocation path *)
    match t.states.(me) with
    | Some s when s.parked <> [] -> collect t s
    | _ -> ()


  (** Defer [x] for reclamation. *)
  let free t x =
    let s = state t in
    s.current <- Garbage x :: s.current;
    s.current_size <- s.current_size + 1;
    s.freed <- s.freed + 1;
    if s.current_size >= t.gc_threshold then begin
      let stamp = snapshot t in
      (* mark our own slot as always-safe: we are parking, not reading *)
      stamp.(Mem.self ()) <- 0;
      s.parked <- { stamp; items = s.current; size = s.current_size } :: s.parked;
      s.current <- [];
      s.current_size <- 0;
      collect t s
    end

  (** Per-thread stuck-epoch report: thread [tid]'s activity timestamp
      has not moved past [batches] parked batches holding [items]
      deferred objects — they can never be reclaimed while it stays
      frozen.  [since] is the frozen timestamp value. *)
  type stuck = { tid : int; since : int; batches : int; items : int }

  (** Which threads are pinning parked garbage right now, and how much.
      A thread appears iff it is not detached and at least one parked
      batch (any owner's) is waiting on its timestamp.  Under faults
      this is the bounded-garbage-growth report: a crashed thread shows
      up here with a monotonically growing [items] count. *)
  let stuck_epochs t =
    let n = Array.length t.ts in
    let batches = Array.make n 0 and items = Array.make n 0 in
    Array.iter
      (function
        | None -> ()
        | Some (s : thread_state) ->
            List.iter
              (fun b ->
                Array.iteri
                  (fun i st ->
                    if (not (Mem.get t.ts.(i) > st || st = 0 || t.detached.(i))) then begin
                      batches.(i) <- batches.(i) + 1;
                      items.(i) <- items.(i) + b.size
                    end)
                  b.stamp)
              s.parked)
      t.states;
    let out = ref [] in
    for i = n - 1 downto 0 do
      if batches.(i) > 0 then
        out := { tid = i; since = Mem.get t.ts.(i); batches = batches.(i); items = items.(i) } :: !out
    done;
    !out

  (** Declare thread [tid] dead: its frozen activity timestamp stops
      pinning parked batches.  Administrative — call it only once the
      thread can no longer run (crash-stopped, joined, ...); detaching a
      thread that still holds references would allow unsafe reuse,
      exactly as in the C allocator's [ssmem_term]. *)
  let detach t tid = t.detached.(tid) <- true

  (** Run a collection pass over every thread's parked batches (not just
      the caller's), e.g. after {!detach} has unpinned them. *)
  let collect_all t =
    Array.iter (function None -> () | Some s -> if s.parked <> [] then collect t s) t.states

  type stats = { freed : int; reclaimed : int; pending : int; gc_passes : int }

  (** Aggregate statistics across all threads. *)
  let stats t =
    let freed = ref 0 and reclaimed = ref 0 and passes = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some (s : thread_state) ->
            freed := !freed + s.freed;
            reclaimed := !reclaimed + s.reclaimed;
            passes := !passes + s.gc_passes)
      t.states;
    { freed = !freed; reclaimed = !reclaimed; pending = !freed - !reclaimed; gc_passes = !passes }
end
