(** A minimal, dependency-free JSON representation: enough to emit the
    harness's structured benchmark results ({!Ascy_harness.Results}) and
    to parse them back for golden-file round-trip tests.  Not a
    general-purpose JSON library — no streaming, no unicode escapes
    beyond [\uXXXX] decoding, integers distinguished from floats so
    counter values survive a round trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr x =
  if Float.is_nan x then "null" (* NaN has no JSON representation *)
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

(** [write ?indent b v] appends the serialization of [v] to [b].
    [indent > 0] pretty-prints with that step; the default is compact. *)
let write ?(indent = 0) b v =
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (indent * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int x -> Buffer.add_string b (string_of_int x)
    | Float x -> Buffer.add_string b (float_repr x)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            pad (depth + 1);
            go (depth + 1) x)
          xs;
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            pad (depth + 1);
            escape_string b k;
            Buffer.add_char b ':';
            if indent > 0 then Buffer.add_char b ' ';
            go (depth + 1) x)
          kvs;
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 v

let to_string ?indent v =
  let b = Buffer.create 256 in
  write ?indent b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type parser_state = { s : string; mutable pos : int }

let fail p msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let peek p = if p.pos < String.length p.s then Some p.s.[p.pos] else None

let skip_ws p =
  while
    p.pos < String.length p.s
    && match p.s.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> p.pos <- p.pos + 1
  | _ -> fail p (Printf.sprintf "expected '%c'" c)

let parse_literal p lit v =
  if
    p.pos + String.length lit <= String.length p.s
    && String.sub p.s p.pos (String.length lit) = lit
  then begin
    p.pos <- p.pos + String.length lit;
    v
  end
  else fail p ("expected " ^ lit)

let parse_string_raw p =
  expect p '"';
  let b = Buffer.create 16 in
  let rec go () =
    if p.pos >= String.length p.s then fail p "unterminated string";
    let c = p.s.[p.pos] in
    p.pos <- p.pos + 1;
    if c = '"' then Buffer.contents b
    else if c = '\\' then begin
      (if p.pos >= String.length p.s then fail p "unterminated escape";
       let e = p.s.[p.pos] in
       p.pos <- p.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | 't' -> Buffer.add_char b '\t'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' ->
           if p.pos + 4 > String.length p.s then fail p "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub p.s p.pos 4) in
           p.pos <- p.pos + 4;
           (* only BMP code points below 0x80 emitted by us; store others raw *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
       | _ -> fail p "bad escape");
      go ()
    end
    else begin
      Buffer.add_char b c;
      go ()
    end
  in
  go ()

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while p.pos < String.length p.s && is_num_char p.s.[p.pos] do
    p.pos <- p.pos + 1
  done;
  let lit = String.sub p.s start (p.pos - start) in
  match int_of_string_opt lit with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail p ("bad number: " ^ lit))

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' -> String (parse_string_raw p)
  | Some '[' ->
      expect p '[';
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else begin
        let xs = ref [ parse_value p ] in
        skip_ws p;
        while peek p = Some ',' do
          p.pos <- p.pos + 1;
          xs := parse_value p :: !xs;
          skip_ws p
        done;
        expect p ']';
        List (List.rev !xs)
      end
  | Some '{' ->
      expect p '{';
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws p;
          let k = parse_string_raw p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          (k, v)
        in
        let kvs = ref [ field () ] in
        skip_ws p;
        while peek p = Some ',' do
          p.pos <- p.pos + 1;
          kvs := field () :: !kvs;
          skip_ws p
        done;
        expect p '}';
        Obj (List.rev !kvs)
      end
  | Some _ -> parse_number p

(** [of_string s] parses one JSON value; raises {!Parse_error} on
    malformed input or trailing garbage. *)
let of_string s =
  let p = { s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail p "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and downstream tooling)                        *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float_opt = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
