(** Latency histograms with exact percentile support for moderate sample
    counts.

    The harness records one sample per measured operation (or a sampled
    subset); percentiles are computed by sorting the raw samples, matching
    how the paper reports 1/25/50/75/99-percentile latency distributions.
    The sample vector is sorted lazily: [add] marks it dirty and the first
    subsequent percentile query re-sorts it, so a [summary] (five
    percentile queries) costs one sort, not five. *)

type t = {
  samples : float Vec.t;
  mutable sum : float;
  mutable count : int;
  mutable sorted : bool; (* samples are in nondecreasing order *)
}

let create () = { samples = Vec.create ~capacity:1024 0.0; sum = 0.0; count = 0; sorted = true }

let add t x =
  Vec.push t.samples x;
  t.sum <- t.sum +. x;
  t.count <- t.count + 1;
  t.sorted <- false

let count t = t.count

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let ensure_sorted t =
  if not t.sorted then begin
    Vec.sort compare t.samples;
    t.sorted <- true
  end

(** [percentile t p] returns the [p]-th percentile (0 <= p <= 100) using the
    nearest-rank method; 0 when the histogram is empty. *)
let percentile t p =
  if t.count = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let idx = max 0 (min (t.count - 1) (rank - 1)) in
    Vec.get t.samples idx
  end

(** The five percentiles the paper plots: 1, 25, 50, 75, 99. *)
let summary t =
  [| percentile t 1.0; percentile t 25.0; percentile t 50.0; percentile t 75.0; percentile t 99.0 |]

(** [merge a b] adds every sample of [b] into [a] and returns [a]; [b] is
    unchanged.  [merge a a] is a no-op (merging a histogram into itself
    would double-count every sample). *)
let merge a b =
  if a != b then Vec.iter (fun x -> add a x) b.samples;
  a
