(** Xorshift128+ pseudo-random number generator.

    A small, fast, seedable PRNG used by workload generators and by the
    simulator's deterministic choices.  Not cryptographic.  Each generator is
    an independent state, so per-thread generators never contend. *)

type t = { mutable s0 : int64; mutable s1 : int64 }

let create seed =
  (* SplitMix64 to spread the seed over both words. *)
  let z = ref (Int64.of_int (seed lxor 0x9E3779B9)) in
  let next () =
    z := Int64.add !z 0x9E3779B97F4A7C15L;
    let x = !z in
    let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
    let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
    Int64.logxor x (Int64.shift_right_logical x 31)
  in
  let s0 = next () in
  let s1 = next () in
  let s1 = if s0 = 0L && s1 = 0L then 1L else s1 in
  { s0; s1 }

let next_int64 t =
  let s1 = t.s0 and s0 = t.s1 in
  t.s0 <- s0;
  let s1 = Int64.logxor s1 (Int64.shift_left s1 23) in
  let s1 =
    Int64.logxor (Int64.logxor s1 (Int64.shift_right_logical s1 17))
      (Int64.logxor s0 (Int64.shift_right_logical s0 26))
  in
  t.s1 <- s1;
  Int64.add s1 s0

(** [next t] returns a non-negative random [int]. *)
let next t = Int64.to_int (next_int64 t) land max_int

(** [below t n] returns a uniform integer in [\[0, n)].  Requires [n > 0].

    Uses rejection sampling: a plain [next t mod n] is modulo-biased
    whenever [n] does not divide [max_int + 1] (for large [n] the low
    residues are visibly more likely).  Draws whose residue class is
    over-represented are redrawn, so every value in [\[0, n)] is exactly
    equally likely.  Still deterministic per seed: the same seed consumes
    the same draw sequence and yields the same values. *)
let below t n =
  if n <= 0 then invalid_arg "Xorshift.below: n must be positive";
  (* [next] is uniform over the [max_int + 1] values in [0, max_int];
     the top [(max_int + 1) mod n] residues would be hit once more than
     the rest, so reject draws above the largest multiple-of-n cutoff. *)
  let r = ((max_int mod n) + 1) mod n in
  if r = 0 then next t mod n
  else begin
    let cutoff = max_int - r in
    let x = ref (next t) in
    while !x > cutoff do
      x := next t
    done;
    !x mod n
  end

(** [float t] returns a uniform float in [\[0, 1)]. *)
let float t = float_of_int (next t) /. (float_of_int max_int +. 1.)

(** [bool t p] is [true] with probability [p]. *)
let bool t p = float t < p

(** [copy t] is an independent generator starting from [t]'s current
    state: both produce the same stream from here, and advancing one
    never affects the other. *)
let copy t = { s0 = t.s0; s1 = t.s1 }

(** [split t] derives a child generator from one draw of [t] (advancing
    [t] by exactly one step).  The child is re-seeded through the same
    SplitMix64 spread as {!create}, so consecutive children of one
    parent — and the parent's own continuation — are statistically
    unrelated streams.  Splitting a master generator [k] times is the
    deterministic way to hand [k] workers independent streams: child [i]
    depends only on the seed and [i], never on who consumes it. *)
let split t = create (Int64.to_int (next_int64 t) land max_int)

(* The xorshift128+ jump polynomial (Vigna): xor together the states
   reached at the 1-bits of these two words while stepping the
   generator 128 times. *)
let jump_coeffs = [| 0x8a5cd789635d2dffL; 0x121fd2155c472f96L |]

(** [jump t] advances [t] by 2{^64} steps of {!next_int64} in O(128)
    work, in place.  Jumping a copy [k] times yields [k]
    non-overlapping subsequences of one seed's stream — the classic
    alternative to {!split} when overlap-freedom must be guaranteed
    rather than statistical. *)
let jump t =
  let s0 = ref 0L and s1 = ref 0L in
  Array.iter
    (fun coeff ->
      for b = 0 to 63 do
        if Int64.logand coeff (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1
        end;
        ignore (next_int64 t)
      done)
    jump_coeffs;
  t.s0 <- !s0;
  t.s1 <- !s1
