(** Growable arrays (OCaml 5.1 predates [Stdlib.Dynarray]).

    Only what the simulator and statistics code need: amortized O(1) push,
    O(1) random access, in-place iteration. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) dummy =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len

let clear t = t.len <- 0

(** [truncate t n] drops every element at index [>= n]; [n] must not
    exceed the current length.  O(1): slots are kept for reuse. *)
let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate";
  t.len <- n

let push t x =
  if t.len = Array.length t.data then begin
    let data = Array.make (2 * t.len) t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

(** [ensure t n f] grows the vector to length at least [n], filling new
    slots with [f index]. *)
let ensure t n f =
  while t.len < n do
    push t (f t.len)
  done

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let of_array a dummy = { data = (if Array.length a = 0 then [| dummy |] else Array.copy a); len = Array.length a; dummy }

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
