(** Partial-order-reduction primitives: the dependency relation, sleep
    sets, and conflict lookup over executed steps.

    Two interleavings that only commute {e independent} steps (different
    lines, or same line but read/read) reach the same memory state and
    return the same results, so exploring both is wasted work.  The
    explorer prunes with the two classic mechanisms:

    - {e backtrack points} (Flanagan & Godefroid DPOR): after a run,
      for each executed access find the latest earlier step by another
      thread it conflicts with; the conflicting pair might matter in the
      other order, so the other thread is scheduled for exploration at
      the earlier decision point;
    - {e sleep sets}: a choice fully explored at a node is put to sleep;
      it stays asleep in the subtrees of the node's later choices until
      a dependent step wakes it, and sleeping choices are never
      re-explored.

    The dependency relation is exactly the per-line read/write conflict
    information the coherence model already tracks
    ({!Ascy_mem.Sim.dependent}). *)

module Sim = Ascy_mem.Sim

let dependent = Sim.dependent

(* ------------------------------------------------------------------ *)
(* Sleep sets                                                          *)
(* ------------------------------------------------------------------ *)

type sleep = (int * Sim.action) list

let empty_sleep : sleep = []
let in_sleep tid (s : sleep) = List.exists (fun (t, _) -> t = tid) s

let add_sleep tid action (s : sleep) : sleep =
  if in_sleep tid s then s else (tid, action) :: s

(** Taking [action] wakes every sleeping thread whose pending action
    depends on it (the commutation argument no longer applies). *)
let wake action (s : sleep) : sleep = List.filter (fun (_, a) -> not (dependent a action)) s

(* ------------------------------------------------------------------ *)
(* Conflict lookup                                                     *)
(* ------------------------------------------------------------------ *)

(** [last_conflict ?skip steps i] — the latest [j < i] whose step was
    executed by a different thread and conflicts with step [i], skipping
    steps for which [skip j] holds.  [steps] gives the (tid, performed
    action) of every executed step. *)
let last_conflict ?(skip = fun _ -> false) (steps : (int * Sim.action) array) i =
  let tid_i, a_i = steps.(i) in
  let rec go j =
    if j < 0 then None
    else begin
      let tid_j, a_j = steps.(j) in
      if tid_j <> tid_i && (not (skip j)) && dependent a_j a_i then Some j else go (j - 1)
    end
  in
  go (i - 1)

(* ------------------------------------------------------------------ *)
(* Spin-loop (stutter) reduction                                       *)
(* ------------------------------------------------------------------ *)

(** [stutter_flags steps] marks the no-progress steps of spin loops:
    step [i] is a {e stutter} when its thread re-reads the line its own
    previous access read, and nobody wrote that line in between — the
    read is guaranteed to observe the same value, so the thread made no
    progress (a TTAS iteration finding the lock still held, a seqlock
    retry seeing an odd sequence again, ...).

    Stutters are excluded from backtrack-point computation, on both
    sides: reordering a conflicting write around the k-th spin read is
    Mazurkiewicz-equivalent (up to spin count, which no oracle observes)
    to reordering it around the first read of the spin, and that first
    read is not a stutter, so the representative interleaving is still
    explored.  Without this reduction every spin iteration against a
    held lock is a fresh conflict site and DPOR's schedule count grows
    without bound on lock-based structures (the classic SCT spin-loop
    problem, cf. CHESS's yield-aware reduction).  Backoff work steps
    ([A_work]) touch no memory and do not break a spin. *)
let stutter_flags (steps : (int * Sim.action) array) =
  let n = Array.length steps in
  let flags = Array.make n false in
  (* line -> write version; tid -> (line read, version seen) of the
     thread's latest access, if it was a read *)
  let version = Hashtbl.create 64 in
  let wver l = try Hashtbl.find version l with Not_found -> 0 in
  let last_read = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let tid, a = steps.(i) in
    match a with
    | Sim.A_access (Sim.Read, l) ->
        let v = wver l in
        (match Hashtbl.find_opt last_read tid with
        | Some (l', v') when l' = l && v' = v -> flags.(i) <- true
        | _ -> ());
        Hashtbl.replace last_read tid (l, v)
    | Sim.A_access ((Sim.Write | Sim.Rmw), l) ->
        Hashtbl.replace version l (wver l + 1);
        Hashtbl.remove last_read tid
    | Sim.A_kcas lines ->
        (* a k-CAS commit writes every touched line *)
        Array.iter (fun l -> Hashtbl.replace version l (wver l + 1)) lines;
        Hashtbl.remove last_read tid
    | Sim.A_start | Sim.A_work _ -> ()
  done;
  flags
