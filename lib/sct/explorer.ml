(** Systematic schedule exploration: a bounded DFS over the simulator's
    resume decisions, optionally pruned with DPOR-style backtrack points
    and sleep sets.

    The explorer is re-execution based: it never snapshots simulator
    state.  Each iteration runs the program from scratch under a
    controlled scheduler that follows the choices recorded on the DFS
    stack and extends them with the default policy
    ({!Scheduler.default_choice}); the simulator's determinism guarantees
    the replayed prefix reaches exactly the same decision points.  After
    each run the deepest stack node with an unexplored alternative is
    switched and everything below it is discarded.

    Exploration is bounded by:
    - [preemptions]: schedules may deschedule a runnable thread mid-slice
      at most this many times (slice-expiry rotations are free — they are
      the default policy, required for fairness, not exploration);
    - [delays]: total deviation from the default candidate order (the sum
      over all decisions of how many better-ranked candidates the choice
      skipped, cf. delay-bounded scheduling, Emmi et al. POPL'11).  The
      delay bound must be finite for lock-based structures: continuing a
      spinning thread past its slice expiry costs no preemption, so with
      unbounded delays each explored schedule can delay the lock holder
      by one more spin iteration than the last and the space never
      closes.  A finite delay bound restores termination: past the
      budget, the fair rotation forces the holder to run;
    - [max_steps]: per-run step budget; exceeding it under the (fair)
      controlled scheduler indicates livelock or starvation and is
      reported as a failure;
    - [max_schedules]: total run budget, after which exploration stops
      and the report is marked incomplete.

    In [Dpor] mode, branching happens only where it can matter: after
    each run, every executed access is paired with the latest earlier
    conflicting access by another thread ({!Dpor.last_conflict}), and the
    later thread is scheduled for exploration at the earlier decision
    point; choices whose subtrees are fully explored go to sleep and are
    only woken by dependent steps.  [Naive] mode branches on every
    runnable thread at every step (within bounds) — exhaustive but
    exponentially larger; it exists as the ground truth the pruning is
    validated against.

    Caveat (shared with all bounded DPOR implementations, cf. dejafu's
    BPOR): with finite bounds, DPOR's backtrack points are computed from
    in-bound runs only, so the combination is a heuristic — it can miss
    interleavings a conservative bound-aware analysis would add.  With no
    bounds set it explores one schedule per Mazurkiewicz trace of every
    terminating execution. *)

module Sim = Ascy_mem.Sim
module Vec = Ascy_util.Vec

type mode = Naive | Dpor

type bounds = {
  preemptions : int option;
  delays : int option;
  max_steps : int;
  max_schedules : int option;
}

let default_bounds =
  { preemptions = Some 2; delays = Some 6; max_steps = 50_000; max_schedules = Some 50_000 }

(** Raised by the controlled scheduler when a single run exceeds
    [bounds.max_steps].  [run] callbacks must let it propagate. *)
exception Step_limit of int

(* One decision point on the DFS stack.  [prev]/[run_len]/[preempts]/
   [delays] snapshot the scheduling state *before* the decision, so
   candidate costs can be recomputed when alternatives are expanded. *)
type node = {
  runnable : Sim.runnable;  (* detached snapshot (the simulator reuses its record) *)
  prev : int;
  run_len : int;
  preempts : int;
  delays : int;
  mutable chosen : int;
  mutable action : Sim.action;  (* lookahead action of [chosen] = the step performed *)
  mutable todo : int list;  (* alternatives still to explore *)
  mutable sleep : Dpor.sleep;
  mutable explored : int list;  (* choices whose subtrees are done *)
}

type failure = {
  f_desc : string;  (** what the oracle reported *)
  f_schedule : int array;  (** the failing run's full decision sequence *)
}

type report = {
  failure : failure option;
  schedules : int;  (** complete runs executed *)
  steps : int;  (** decisions taken across all runs *)
  complete : bool;  (** the whole in-bound schedule space was explored *)
}

let dummy_node =
  {
    runnable = { Sim.rn = 0; r_tids = [||]; r_acts = [||] };
    prev = -1;
    run_len = 0;
    preempts = 0;
    delays = 0;
    chosen = -1;
    action = Sim.A_start;
    todo = [];
    sleep = Dpor.empty_sleep;
    explored = [];
  }

(** [explore ?mode ?bounds ~run ()] — [run ~sched] must execute the
    program under test from scratch inside a fresh simulation driven by
    [sched], then evaluate its oracle: [None] for a passing run, [Some
    desc] for a violation.  Exploration stops at the first failure.

    The remaining optionals turn one call into a {e task} of a
    partitioned exploration (see {!Par_explore}); all default to the
    historical whole-space behavior, byte-identically:
    - [prefix] pins the first decisions: the task owns the subtree under
      that prefix and never backtracks above it;
    - [window] bounds how deep below the prefix this task branches
      locally.  Backtrack points above the prefix or beyond the window
      are handed to [on_defer] as fully-forced prefixes (one new task
      each, deduplicated within this task) instead of being explored
      here;
    - [stop] is polled between runs: when it turns true the task
      abandons the rest of its subtree and reports incomplete (used to
      cancel siblings once any task has found a failure). *)
let explore ?(mode = Dpor) ?(bounds = default_bounds) ?(prefix = [||]) ?window ?on_defer
    ?stop ~run () =
  let stack = Vec.create ~capacity:256 dummy_node in
  let plen = Array.length prefix in
  let wlimit = match window with Some w -> plen + w | None -> max_int in
  let deferred = Hashtbl.create 16 in
  (* Hand [stack.(0..j-1); p] to the coordinator as a new task's prefix.
     Dedup by content: distinct runs of this task rediscover the same
     out-of-window backtrack points. *)
  let defer j p =
    match on_defer with
    | None -> ()
    | Some emit ->
        let pfx = Array.init (j + 1) (fun i -> if i = j then p else (Vec.get stack i).chosen) in
        let key = String.concat "," (Array.to_list (Array.map string_of_int pfx)) in
        if not (Hashtbl.mem deferred key) then begin
          Hashtbl.add deferred key ();
          emit pfx
        end
  in
  let nsched = ref 0 in
  let nsteps = ref 0 in
  let failure = ref None in
  let complete = ref true in
  let finished = ref false in
  let state_of nd = { Scheduler.prev = nd.prev; run_len = nd.run_len } in
  let in_bounds nd tid =
    (match bounds.preemptions with
    | Some p -> nd.preempts + Scheduler.preempt_cost (state_of nd) nd.runnable tid <= p
    | None -> true)
    && (match bounds.delays with
       | Some d -> nd.delays + Scheduler.delay_cost (state_of nd) nd.runnable tid <= d
       | None -> true)
  in
  let current_schedule () = Array.init (Vec.length stack) (fun i -> (Vec.get stack i).chosen) in
  while not !finished do
    (* ---- one run: follow the stack's choices, then default policy ---- *)
    let st = Scheduler.fresh_state () in
    let depth = ref 0 in
    let sched runnable =
      let d = !depth in
      incr depth;
      if d >= bounds.max_steps then raise (Step_limit d);
      let tid =
        if d < Vec.length stack then (Vec.get stack d).chosen
        else begin
          let chosen =
            if d < plen then prefix.(d) else Scheduler.default_choice st runnable
          in
          let parent = if d = 0 then None else Some (Vec.get stack (d - 1)) in
          let cost f =
            match parent with
            | None -> 0
            | Some p -> f (state_of p) p.runnable p.chosen
          in
          let node =
            {
              runnable = Sim.runnable_copy runnable;
              prev = st.Scheduler.prev;
              run_len = st.Scheduler.run_len;
              preempts =
                (match parent with None -> 0 | Some p -> p.preempts)
                + cost Scheduler.preempt_cost;
              delays =
                (match parent with None -> 0 | Some p -> p.delays) + cost Scheduler.delay_cost;
              chosen;
              action = Scheduler.action_of chosen runnable;
              todo = [];
              sleep =
                (match (mode, parent) with
                | Dpor, Some p -> Dpor.wake p.action p.sleep
                | _ -> Dpor.empty_sleep);
              explored = [];
            }
          in
          (match mode with
          | Naive when d >= plen ->
              let todo = ref [] in
              for i = Sim.runnable_count runnable - 1 downto 0 do
                let t = Sim.runnable_tid runnable i in
                if t <> chosen && in_bounds node t then
                  if d >= wlimit then defer d t else todo := t :: !todo
              done;
              node.todo <- !todo
          | Naive | Dpor -> ());
          Vec.push stack node;
          chosen
        end
      in
      Scheduler.note st tid;
      tid
    in
    let desc =
      try run ~sched
      with Step_limit d ->
        Some (Printf.sprintf "step limit %d exceeded (possible livelock or starvation)" d)
    in
    incr nsched;
    nsteps := !nsteps + Vec.length stack;
    (match desc with
    | Some d ->
        failure := Some { f_desc = d; f_schedule = current_schedule () };
        complete := false;
        finished := true
    | None -> (
        (* ---- DPOR: add backtrack points from this run's conflicts ---- *)
        (if mode = Dpor then begin
           let n = Vec.length stack in
           let steps =
             Array.init n (fun i ->
                 let nd = Vec.get stack i in
                 (nd.chosen, nd.action))
           in
           let stutters = Dpor.stutter_flags steps in
           for i = 1 to n - 1 do
             let ni = Vec.get stack i in
             match ni.action with
             | Sim.A_access _ when not stutters.(i) -> (
                 match Dpor.last_conflict ~skip:(fun j -> stutters.(j)) steps i with
                 | Some j ->
                     let nj = Vec.get stack j in
                     let p = ni.chosen in
                     if
                       p <> nj.chosen
                       && Scheduler.index_of p nj.runnable >= 0
                       && in_bounds nj p
                     then
                       if j < plen || j >= wlimit then defer j p
                       else if
                         (not (List.mem p nj.explored)) && not (List.mem p nj.todo)
                       then nj.todo <- p :: nj.todo
                 | None -> ())
             | _ -> ()
           done
         end);
        (match bounds.max_schedules with
        | Some budget when !nsched >= budget ->
            complete := false;
            finished := true
        | _ -> ());
        (match stop with
        | Some cancelled when cancelled () ->
            complete := false;
            finished := true
        | _ -> ());
        (* ---- backtrack: deepest node with a live alternative ---- *)
        if not !finished then begin
          let rec backtrack d =
            if d < plen then None
            else begin
              let nd = Vec.get stack d in
              nd.explored <- nd.chosen :: nd.explored;
              if mode = Dpor then nd.sleep <- Dpor.add_sleep nd.chosen nd.action nd.sleep;
              let rec pick () =
                match nd.todo with
                | [] -> None
                | t :: rest ->
                    nd.todo <- rest;
                    if mode = Dpor && Dpor.in_sleep t nd.sleep then pick () else Some t
              in
              match pick () with
              | Some t ->
                  nd.chosen <- t;
                  nd.action <- Scheduler.action_of t nd.runnable;
                  Vec.truncate stack (d + 1);
                  Some ()
              | None -> backtrack (d - 1)
            end
          in
          match backtrack (Vec.length stack - 1) with
          | Some () -> ()
          | None -> finished := true (* in-bound space exhausted *)
        end))
  done;
  { failure = !failure; schedules = !nsched; steps = !nsteps; complete = !complete }

(* ------------------------------------------------------------------ *)
(* Exploration policies                                                 *)
(* ------------------------------------------------------------------ *)

(** How schedules are chosen.  [Exhaustive] is the DFS above (DPOR or
    naive, per [?mode]) — it proves a bounded space clean.  The
    randomized policies trade that proof for volume: each draws
    [schedules] schedules from a seeded distribution, so coverage per
    wall-clock second scales with budget (and, through {!Par_explore},
    with domain count) on spaces far too large to close.

    Every randomized schedule is recorded in full, so counterexamples
    flow through the same minimize/replay pipeline as exhaustive ones.
    Determinism contract: the outcome of schedule index [i] is a
    function of the policy's seed and [i] alone — per-index RNG streams
    are derived with {!Ascy_util.Xorshift.split} in a fixed chunked
    order — so verdicts and counterexamples are identical no matter how
    many domains execute the budget, and a multi-index failure always
    reports the {e lowest} failing index. *)
type policy =
  | Exhaustive
  | Random of { seed : int; schedules : int }
      (** uniform choice among non-spinning runnable threads *)
  | Pct of { seed : int; depth : int; schedules : int }
      (** priority-based with [depth - 1] change points
          ({!Scheduler.pct_chooser}); finds bugs of depth [depth] with
          probability >= 1/(n·k^(depth-1)) per schedule *)
  | Swarm of { seeds : int list; schedules : int }
      (** [schedules] sticky-random schedules per seed, each seed with
          its own temperament ({!Scheduler.sticky_chooser}) *)

let policy_name = function
  | Exhaustive -> "exhaustive"
  | Random _ -> "random"
  | Pct _ -> "pct"
  | Swarm _ -> "swarm"

(** Schedule indices are planned in fixed chunks of this size; each
    chunk is one unit of parallel work.  Part of the determinism
    contract — chunk [c]'s RNG stream is the [c]-th split of the
    policy seed's master generator, whoever executes it. *)
let chunk_size = 32

type rand_kind =
  | R_uniform
  | R_pct of { depth : int; length : int }
  | R_sticky of float

type rand_task = {
  rt_base : int;  (** global index of the chunk's first schedule *)
  rt_count : int;
  rt_stream : Ascy_util.Xorshift.t;  (** chunk stream; one split per index *)
  rt_kind : rand_kind;
}

(* Swarm temperaments: each seed draws its continue-probability from
   this palette, spanning churn-heavy to quasi-sequential. *)
let swarm_palette = [| 0.0; 0.3; 0.6; 0.9 |]

(** The full, deterministic chunk plan of a randomized policy.
    [probe_len] is the default-policy run length (PCT's [k] estimate,
    from {!probe_run}). *)
let rand_plan ~policy ~probe_len =
  let chunks ~base ~total ~master ~kind =
    let rec go start acc =
      if start >= total then List.rev acc
      else begin
        let count = min chunk_size (total - start) in
        let stream = Ascy_util.Xorshift.split master in
        go (start + count)
          ({ rt_base = base + start; rt_count = count; rt_stream = stream; rt_kind = kind }
          :: acc)
      end
    in
    go 0 []
  in
  match policy with
  | Exhaustive -> invalid_arg "Explorer.rand_plan: Exhaustive has no random plan"
  | Random { seed; schedules } ->
      chunks ~base:0 ~total:schedules ~master:(Ascy_util.Xorshift.create seed) ~kind:R_uniform
  | Pct { seed; depth; schedules } ->
      chunks ~base:0 ~total:schedules
        ~master:(Ascy_util.Xorshift.create seed)
        ~kind:(R_pct { depth; length = probe_len })
  | Swarm { seeds; schedules } ->
      List.concat
        (List.mapi
           (fun si seed ->
             let master = Ascy_util.Xorshift.create seed in
             let p =
               swarm_palette.(Ascy_util.Xorshift.below master (Array.length swarm_palette))
             in
             chunks ~base:(si * schedules) ~total:schedules ~master ~kind:(R_sticky p))
           seeds)

(* One recorded run under [chooser]: the failure description (if any),
   the full decision sequence, and the step count. *)
let controlled_run ~bounds ~chooser ~run =
  let trace = Vec.create ~capacity:256 0 in
  let sched runnable =
    let d = Vec.length trace in
    if d >= bounds.max_steps then raise (Step_limit d);
    let tid = chooser runnable in
    Vec.push trace tid;
    tid
  in
  let desc =
    try run ~sched
    with Step_limit d ->
      Some (Printf.sprintf "step limit %d exceeded (possible livelock or starvation)" d)
  in
  (desc, Vec.to_array trace, Vec.length trace)

(** One run under the default policy: the randomized planner's
    run-length estimate, and a free verdict on the default schedule
    (counted as schedule index "probe", before index 0). *)
let probe_run ~bounds ~run =
  controlled_run ~bounds ~chooser:(Scheduler.prefix_scheduler ~prefix:[||] ()) ~run

type rand_result = {
  rr_failure : (int * failure) option;
      (** lowest failing schedule index within the chunk, with its run *)
  rr_schedules : int;
  rr_steps : int;
}

(** Execute one chunk.  Index [rt_base + i] runs under a chooser built
    from the [i]-th split of the chunk stream, so each index's outcome
    is independent of every other index and of who executes the chunk.
    Indices run in ascending order and the chunk stops at its first
    failure; [skip_from] prunes indices already beaten by a lower
    failing index found elsewhere. *)
let exec_rand_task ?(skip_from = fun () -> max_int) ~bounds ~run task =
  let failure = ref None in
  let nsched = ref 0 and nsteps = ref 0 in
  (try
     for i = 0 to task.rt_count - 1 do
       let rng = Ascy_util.Xorshift.split task.rt_stream in
       let idx = task.rt_base + i in
       if idx >= skip_from () then raise Exit;
       let chooser =
         match task.rt_kind with
         | R_uniform -> Scheduler.uniform_chooser rng
         | R_pct { depth; length } -> Scheduler.pct_chooser rng ~depth ~length
         | R_sticky p -> Scheduler.sticky_chooser rng ~p_continue:p
       in
       let desc, sched, steps = controlled_run ~bounds ~chooser ~run in
       incr nsched;
       nsteps := !nsteps + steps;
       match desc with
       | Some d ->
           failure := Some (idx, { f_desc = d; f_schedule = sched });
           raise Exit
       | None -> ()
     done
   with Exit -> ());
  { rr_failure = !failure; rr_schedules = !nsched; rr_steps = !nsteps }

(** [explore_policy ?mode ?bounds ~policy ~run ()] — the sequential
    policy driver: [Exhaustive] delegates to {!explore}; a randomized
    policy runs one default-policy probe and then the planned indices
    in ascending order, stopping at the first failure.  Randomized
    exploration never proves a space exhausted, so its report is always
    marked incomplete. *)
let explore_policy ?(mode = Dpor) ?(bounds = default_bounds) ~policy ~run () =
  match policy with
  | Exhaustive -> explore ~mode ~bounds ~run ()
  | _ -> (
      let probe_desc, probe_sched, probe_steps = probe_run ~bounds ~run in
      match probe_desc with
      | Some d ->
          {
            failure = Some { f_desc = d; f_schedule = probe_sched };
            schedules = 1;
            steps = probe_steps;
            complete = false;
          }
      | None ->
          let failure = ref None in
          let nsched = ref 1 and nsteps = ref probe_steps in
          List.iter
            (fun task ->
              if !failure = None then begin
                let r = exec_rand_task ~bounds ~run task in
                nsched := !nsched + r.rr_schedules;
                nsteps := !nsteps + r.rr_steps;
                match r.rr_failure with Some (_, f) -> failure := Some f | None -> ()
              end)
            (rand_plan ~policy ~probe_len:probe_steps);
          { failure = !failure; schedules = !nsched; steps = !nsteps; complete = false })
