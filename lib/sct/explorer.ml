(** Systematic schedule exploration: a bounded DFS over the simulator's
    resume decisions, optionally pruned with DPOR-style backtrack points
    and sleep sets.

    The explorer is re-execution based: it never snapshots simulator
    state.  Each iteration runs the program from scratch under a
    controlled scheduler that follows the choices recorded on the DFS
    stack and extends them with the default policy
    ({!Scheduler.default_choice}); the simulator's determinism guarantees
    the replayed prefix reaches exactly the same decision points.  After
    each run the deepest stack node with an unexplored alternative is
    switched and everything below it is discarded.

    Exploration is bounded by:
    - [preemptions]: schedules may deschedule a runnable thread mid-slice
      at most this many times (slice-expiry rotations are free — they are
      the default policy, required for fairness, not exploration);
    - [delays]: total deviation from the default candidate order (the sum
      over all decisions of how many better-ranked candidates the choice
      skipped, cf. delay-bounded scheduling, Emmi et al. POPL'11).  The
      delay bound must be finite for lock-based structures: continuing a
      spinning thread past its slice expiry costs no preemption, so with
      unbounded delays each explored schedule can delay the lock holder
      by one more spin iteration than the last and the space never
      closes.  A finite delay bound restores termination: past the
      budget, the fair rotation forces the holder to run;
    - [max_steps]: per-run step budget; exceeding it under the (fair)
      controlled scheduler indicates livelock or starvation and is
      reported as a failure;
    - [max_schedules]: total run budget, after which exploration stops
      and the report is marked incomplete.

    In [Dpor] mode, branching happens only where it can matter: after
    each run, every executed access is paired with the latest earlier
    conflicting access by another thread ({!Dpor.last_conflict}), and the
    later thread is scheduled for exploration at the earlier decision
    point; choices whose subtrees are fully explored go to sleep and are
    only woken by dependent steps.  [Naive] mode branches on every
    runnable thread at every step (within bounds) — exhaustive but
    exponentially larger; it exists as the ground truth the pruning is
    validated against.

    Caveat (shared with all bounded DPOR implementations, cf. dejafu's
    BPOR): with finite bounds, DPOR's backtrack points are computed from
    in-bound runs only, so the combination is a heuristic — it can miss
    interleavings a conservative bound-aware analysis would add.  With no
    bounds set it explores one schedule per Mazurkiewicz trace of every
    terminating execution. *)

module Sim = Ascy_mem.Sim
module Vec = Ascy_util.Vec

type mode = Naive | Dpor

type bounds = {
  preemptions : int option;
  delays : int option;
  max_steps : int;
  max_schedules : int option;
}

let default_bounds =
  { preemptions = Some 2; delays = Some 6; max_steps = 50_000; max_schedules = Some 50_000 }

(** Raised by the controlled scheduler when a single run exceeds
    [bounds.max_steps].  [run] callbacks must let it propagate. *)
exception Step_limit of int

(* One decision point on the DFS stack.  [prev]/[run_len]/[preempts]/
   [delays] snapshot the scheduling state *before* the decision, so
   candidate costs can be recomputed when alternatives are expanded. *)
type node = {
  runnable : Sim.runnable;  (* detached snapshot (the simulator reuses its record) *)
  prev : int;
  run_len : int;
  preempts : int;
  delays : int;
  mutable chosen : int;
  mutable action : Sim.action;  (* lookahead action of [chosen] = the step performed *)
  mutable todo : int list;  (* alternatives still to explore *)
  mutable sleep : Dpor.sleep;
  mutable explored : int list;  (* choices whose subtrees are done *)
}

type failure = {
  f_desc : string;  (** what the oracle reported *)
  f_schedule : int array;  (** the failing run's full decision sequence *)
}

type report = {
  failure : failure option;
  schedules : int;  (** complete runs executed *)
  steps : int;  (** decisions taken across all runs *)
  complete : bool;  (** the whole in-bound schedule space was explored *)
}

let dummy_node =
  {
    runnable = { Sim.rn = 0; r_tids = [||]; r_acts = [||] };
    prev = -1;
    run_len = 0;
    preempts = 0;
    delays = 0;
    chosen = -1;
    action = Sim.A_start;
    todo = [];
    sleep = Dpor.empty_sleep;
    explored = [];
  }

(** [explore ?mode ?bounds ~run ()] — [run ~sched] must execute the
    program under test from scratch inside a fresh simulation driven by
    [sched], then evaluate its oracle: [None] for a passing run, [Some
    desc] for a violation.  Exploration stops at the first failure. *)
let explore ?(mode = Dpor) ?(bounds = default_bounds) ~run () =
  let stack = Vec.create ~capacity:256 dummy_node in
  let nsched = ref 0 in
  let nsteps = ref 0 in
  let failure = ref None in
  let complete = ref true in
  let finished = ref false in
  let state_of nd = { Scheduler.prev = nd.prev; run_len = nd.run_len } in
  let in_bounds nd tid =
    (match bounds.preemptions with
    | Some p -> nd.preempts + Scheduler.preempt_cost (state_of nd) nd.runnable tid <= p
    | None -> true)
    && (match bounds.delays with
       | Some d -> nd.delays + Scheduler.delay_cost (state_of nd) nd.runnable tid <= d
       | None -> true)
  in
  let current_schedule () = Array.init (Vec.length stack) (fun i -> (Vec.get stack i).chosen) in
  while not !finished do
    (* ---- one run: follow the stack's choices, then default policy ---- *)
    let st = Scheduler.fresh_state () in
    let depth = ref 0 in
    let sched runnable =
      let d = !depth in
      incr depth;
      if d >= bounds.max_steps then raise (Step_limit d);
      let tid =
        if d < Vec.length stack then (Vec.get stack d).chosen
        else begin
          let chosen = Scheduler.default_choice st runnable in
          let parent = if d = 0 then None else Some (Vec.get stack (d - 1)) in
          let cost f =
            match parent with
            | None -> 0
            | Some p -> f (state_of p) p.runnable p.chosen
          in
          let node =
            {
              runnable = Sim.runnable_copy runnable;
              prev = st.Scheduler.prev;
              run_len = st.Scheduler.run_len;
              preempts =
                (match parent with None -> 0 | Some p -> p.preempts)
                + cost Scheduler.preempt_cost;
              delays =
                (match parent with None -> 0 | Some p -> p.delays) + cost Scheduler.delay_cost;
              chosen;
              action = Scheduler.action_of chosen runnable;
              todo = [];
              sleep =
                (match (mode, parent) with
                | Dpor, Some p -> Dpor.wake p.action p.sleep
                | _ -> Dpor.empty_sleep);
              explored = [];
            }
          in
          (match mode with
          | Naive ->
              let todo = ref [] in
              for i = Sim.runnable_count runnable - 1 downto 0 do
                let t = Sim.runnable_tid runnable i in
                if t <> chosen && in_bounds node t then todo := t :: !todo
              done;
              node.todo <- !todo
          | Dpor -> ());
          Vec.push stack node;
          chosen
        end
      in
      Scheduler.note st tid;
      tid
    in
    let desc =
      try run ~sched
      with Step_limit d ->
        Some (Printf.sprintf "step limit %d exceeded (possible livelock or starvation)" d)
    in
    incr nsched;
    nsteps := !nsteps + Vec.length stack;
    (match desc with
    | Some d ->
        failure := Some { f_desc = d; f_schedule = current_schedule () };
        complete := false;
        finished := true
    | None -> (
        (* ---- DPOR: add backtrack points from this run's conflicts ---- *)
        (if mode = Dpor then begin
           let n = Vec.length stack in
           let steps =
             Array.init n (fun i ->
                 let nd = Vec.get stack i in
                 (nd.chosen, nd.action))
           in
           let stutters = Dpor.stutter_flags steps in
           for i = 1 to n - 1 do
             let ni = Vec.get stack i in
             match ni.action with
             | Sim.A_access _ when not stutters.(i) -> (
                 match Dpor.last_conflict ~skip:(fun j -> stutters.(j)) steps i with
                 | Some j ->
                     let nj = Vec.get stack j in
                     let p = ni.chosen in
                     if
                       p <> nj.chosen
                       && Scheduler.index_of p nj.runnable >= 0
                       && (not (List.mem p nj.explored))
                       && (not (List.mem p nj.todo))
                       && in_bounds nj p
                     then nj.todo <- p :: nj.todo
                 | None -> ())
             | _ -> ()
           done
         end);
        (match bounds.max_schedules with
        | Some budget when !nsched >= budget ->
            complete := false;
            finished := true
        | _ -> ());
        (* ---- backtrack: deepest node with a live alternative ---- *)
        if not !finished then begin
          let rec backtrack d =
            if d < 0 then None
            else begin
              let nd = Vec.get stack d in
              nd.explored <- nd.chosen :: nd.explored;
              if mode = Dpor then nd.sleep <- Dpor.add_sleep nd.chosen nd.action nd.sleep;
              let rec pick () =
                match nd.todo with
                | [] -> None
                | t :: rest ->
                    nd.todo <- rest;
                    if mode = Dpor && Dpor.in_sleep t nd.sleep then pick () else Some t
              in
              match pick () with
              | Some t ->
                  nd.chosen <- t;
                  nd.action <- Scheduler.action_of t nd.runnable;
                  Vec.truncate stack (d + 1);
                  Some ()
              | None -> backtrack (d - 1)
            end
          in
          match backtrack (Vec.length stack - 1) with
          | Some () -> ()
          | None -> finished := true (* in-bound space exhausted *)
        end))
  done;
  { failure = !failure; schedules = !nsched; steps = !nsteps; complete = !complete }
