(** Parallel schedule exploration: the DPOR backtracking frontier (or a
    randomized policy's schedule budget) partitioned across OCaml 5
    domains.

    The explorer is re-execution based and never snapshots simulator
    state, so any subtree of the DFS is reproducible from its root
    prefix alone — that is the unit of parallel work.  A {e task} is a
    fully-forced decision prefix; a worker explores the subtree under it
    with {!Explorer.explore}, branching locally only within a bounded
    window below the prefix and handing every other backtrack point
    (above the prefix, or deeper than the window) back to the shared
    frontier as a new task.  The task set is therefore a deterministic
    least fixed point of the defer relation: which tasks exist — and
    what each contributes, since a task's exploration depends only on
    its prefix — is invariant under worker count and scheduling order.
    Verdicts {e and} schedule-space sizes are identical at 1 and N
    domains; only wall-clock changes.

    Two deliberate deviations from the sequential explorer, both sound:
    - sleep sets and visited state are merged only at task boundaries
      (the spawn-side dedup table); sleep-set pruning {e within} a task
      cannot see sibling tasks' history, so the partitioned exploration
      may visit more Mazurkiewicz representatives than the sequential
      DFS — never fewer;
    - [bounds.max_schedules] applies per task, not globally (a global
      cutoff would make counts depend on completion order).

    When any task fails, siblings are cancelled and the {e canonical}
    counterexample is recomputed by the plain sequential explorer —
    sleep-set pruning only ever skips schedules trace-equivalent to an
    explored one, so a space with a reachable failure fails sequentially
    too, and every domain count reports the byte-identical finding.

    Randomized policies parallelize by chunk ({!Explorer.rand_task}):
    per-index RNG streams are pre-split from the policy seed in a fixed
    order, so each schedule index's outcome is independent of who runs
    it; workers race only on {e which} failing index is the lowest, and
    losers are cancelled, so the reported counterexample is again
    domain-count invariant.

    The frontier itself is per-worker queues behind one lock with
    steal-on-empty — at this task granularity (a task re-executes whole
    program runs, milliseconds each) lock traffic is noise and a
    lock-free Chase-Lev deque would buy nothing. *)

module Explorer = Explorer

type preport = {
  p_report : Explorer.report;
  p_tasks : int;  (** units of work executed (subtree prefixes or chunks) *)
  p_domains : int;
}

(** Default local-branching window: how many decisions below its prefix
    a task branches without deferring.  Deep enough that leaf subtrees
    amortize a run's cost, shallow enough that the frontier fans out. *)
let default_window = 6

(* ------------------------------------------------------------------ *)
(* Work pool                                                           *)
(* ------------------------------------------------------------------ *)

(* Run [process] over [seed_tasks] and everything it pushes, on
   [domains] workers.  With one domain everything runs inline on the
   calling domain — no spawn, same fixed point.  Worker exceptions are
   captured, the pool drains, and the first exception re-raises on the
   caller. *)
let run_pool ~domains ~seed_tasks ~process =
  if domains <= 1 then begin
    let stack = ref seed_tasks in
    let push t = stack := t :: !stack in
    let rec loop () =
      match !stack with
      | [] -> ()
      | t :: rest ->
          stack := rest;
          process ~push t;
          loop ()
    in
    loop ()
  end
  else begin
    let m = Mutex.create () in
    let cv = Condition.create () in
    let queues = Array.init domains (fun _ -> Queue.create ()) in
    let pending = ref 0 in
    let failed : exn option ref = ref None in
    List.iteri
      (fun i t ->
        incr pending;
        Queue.push t queues.(i mod domains))
      seed_tasks;
    (* own queue first, then steal round-robin *)
    let take w =
      Mutex.lock m;
      let rec wait () =
        if !failed <> None then None
        else begin
          let rec scan i =
            if i >= domains then None
            else begin
              let q = queues.((w + i) mod domains) in
              if Queue.is_empty q then scan (i + 1) else Some (Queue.pop q)
            end
          in
          match scan 0 with
          | Some t -> Some t
          | None ->
              if !pending = 0 then None
              else begin
                Condition.wait cv m;
                wait ()
              end
        end
      in
      let r = wait () in
      Mutex.unlock m;
      r
    in
    let push w t =
      Mutex.lock m;
      incr pending;
      Queue.push t queues.(w);
      Condition.signal cv;
      Mutex.unlock m
    in
    let finish_one () =
      Mutex.lock m;
      decr pending;
      if !pending = 0 then Condition.broadcast cv;
      Mutex.unlock m
    in
    let worker w () =
      let rec loop () =
        match take w with
        | None -> ()
        | Some t ->
            (try process ~push:(push w) t
             with e ->
               Mutex.lock m;
               if !failed = None then failed := Some e;
               Condition.broadcast cv;
               Mutex.unlock m);
            finish_one ();
            loop ()
      in
      loop ()
    in
    let ds = Array.init domains (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join ds;
    match !failed with Some e -> raise e | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Partitioned exploration                                             *)
(* ------------------------------------------------------------------ *)

let prefix_key pfx = String.concat "," (Array.to_list (Array.map string_of_int pfx))

(* Exhaustive (DPOR/naive) partitioned over subtree-prefix tasks. *)
let explore_exhaustive ~mode ~bounds ~domains ~window ~run =
  let m = Mutex.create () in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.add visited "" ();
  let nsched = ref 0 and nsteps = ref 0 and ntasks = ref 0 in
  let all_complete = ref true in
  let found = Atomic.make false in
  let first_failure = ref None in
  let process ~push prefix =
    let on_defer pfx =
      let key = prefix_key pfx in
      Mutex.lock m;
      let fresh = not (Hashtbl.mem visited key) in
      if fresh then Hashtbl.add visited key ();
      Mutex.unlock m;
      if fresh then push pfx
    in
    let r =
      Explorer.explore ~mode ~bounds ~prefix ~window ~on_defer
        ~stop:(fun () -> Atomic.get found)
        ~run ()
    in
    Mutex.lock m;
    incr ntasks;
    nsched := !nsched + r.Explorer.schedules;
    nsteps := !nsteps + r.Explorer.steps;
    if not r.Explorer.complete then all_complete := false;
    (match r.Explorer.failure with
    | Some f ->
        if !first_failure = None then first_failure := Some f;
        Atomic.set found true
    | None -> ());
    Mutex.unlock m
  in
  run_pool ~domains ~seed_tasks:[ [||] ] ~process;
  let report =
    if Atomic.get found then begin
      (* canonical counterexample: recompute sequentially, so the
         finding (and the whole report) is domain-count invariant *)
      let r = Explorer.explore ~mode ~bounds ~run () in
      match r.Explorer.failure with
      | Some _ -> r
      | None ->
          (* bounded-budget edge: the parallel partition reached a
             failure the sequential budget did not; keep the parallel
             witness rather than mask it *)
          {
            Explorer.failure = !first_failure;
            schedules = !nsched;
            steps = !nsteps;
            complete = false;
          }
    end
    else
      {
        Explorer.failure = None;
        schedules = !nsched;
        steps = !nsteps;
        complete = !all_complete;
      }
  in
  { p_report = report; p_tasks = !ntasks; p_domains = domains }

(* A randomized policy partitioned over its (pre-split) chunk plan. *)
let explore_random ~bounds ~policy ~domains ~run =
  let probe_desc, probe_sched, probe_steps = Explorer.probe_run ~bounds ~run in
  match probe_desc with
  | Some d ->
      {
        p_report =
          {
            Explorer.failure = Some { Explorer.f_desc = d; f_schedule = probe_sched };
            schedules = 1;
            steps = probe_steps;
            complete = false;
          };
        p_tasks = 0;
        p_domains = domains;
      }
  | None ->
      let tasks = Explorer.rand_plan ~policy ~probe_len:probe_steps in
      let m = Mutex.create () in
      let min_idx = Atomic.make max_int in
      let failures = ref [] in
      let nsched = ref 1 and nsteps = ref probe_steps and ntasks = ref 0 in
      let process ~push:_ task =
        if task.Explorer.rt_base < Atomic.get min_idx then begin
          let r =
            Explorer.exec_rand_task
              ~skip_from:(fun () -> Atomic.get min_idx)
              ~bounds ~run task
          in
          Mutex.lock m;
          incr ntasks;
          nsched := !nsched + r.Explorer.rr_schedules;
          nsteps := !nsteps + r.Explorer.rr_steps;
          (match r.Explorer.rr_failure with
          | Some (idx, f) ->
              failures := (idx, f) :: !failures;
              (* fetch-min: losers at higher indices get cancelled *)
              let rec shrink () =
                let cur = Atomic.get min_idx in
                if idx < cur && not (Atomic.compare_and_set min_idx cur idx) then shrink ()
              in
              shrink ()
          | None -> ());
          Mutex.unlock m
        end
      in
      run_pool ~domains ~seed_tasks:tasks ~process;
      let failure =
        match List.sort (fun (a, _) (b, _) -> compare a b) !failures with
        | (_, f) :: _ -> Some f
        | [] -> None
      in
      {
        p_report =
          { Explorer.failure; schedules = !nsched; steps = !nsteps; complete = false };
        p_tasks = !ntasks;
        p_domains = domains;
      }

(** [explore ?mode ?bounds ?policy ?domains ?window ~run ()] — the
    partitioned exploration engine.  Always runs the task machinery
    (inline when [domains = 1]), so 1-vs-N determinism is testable;
    callers that want the plain sequential explorer for [domains = 1]
    should go through {!dispatch}. *)
let explore ?(mode = Explorer.Dpor) ?(bounds = Explorer.default_bounds)
    ?(policy = Explorer.Exhaustive) ?(domains = 1) ?(window = default_window) ~run () =
  match policy with
  | Explorer.Exhaustive -> explore_exhaustive ~mode ~bounds ~domains ~window ~run
  | _ -> explore_random ~bounds ~policy ~domains ~run

(** [dispatch ?mode ?bounds ?policy ?domains ~run ()] — the harness
    entry point: route a (policy, domains) configuration to the
    cheapest engine that honors it.  Single-domain exhaustive runs use
    the plain sequential explorer byte-identically (no task machinery,
    no per-task budget semantics); single-domain randomized runs use
    the sequential policy driver; everything else is partitioned. *)
let dispatch ?mode ?bounds ?(policy = Explorer.Exhaustive) ?(domains = 1) ~run () =
  match (policy, domains) with
  | Explorer.Exhaustive, d when d <= 1 -> Explorer.explore ?mode ?bounds ~run ()
  | _, d when d <= 1 -> Explorer.explore_policy ?mode ?bounds ~policy ~run ()
  | _ -> (explore ?mode ?bounds ~policy ~domains ~run ()).p_report
