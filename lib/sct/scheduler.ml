(** Controlled schedules for systematic concurrency testing.

    A schedule is the sequence of thread ids resumed at each of the
    simulator's decision points ({!Ascy_mem.Sim.run} with [~scheduler]).
    This module defines:

    - the {e default policy} every explorer and replayer falls back to
      beyond its explicit prefix: continue the current thread until its
      time slice expires, then rotate to the next runnable thread in
      cyclic tid order.  The slice keeps the policy fair — a thread
      spinning on a lock is eventually descheduled so the holder can run
      — while keeping context switches rare enough that preemption
      bounding is meaningful (slice-expiry rotations are "free": they
      are the default, not a preemption);
    - the candidate order at one decision point, which also defines the
      {e delay} cost of a non-default choice (its index in that order)
      and the {e preemption} cost (1 for switching away from a runnable
      thread mid-slice);
    - prefix schedulers ([follow prefix, then default policy]) and the
      run-length-encoded chunk form used to serialize schedules. *)

module Sim = Ascy_mem.Sim

(** Steps a thread runs uninterrupted before the default policy rotates
    to the next runnable thread.  Small enough that spin loops cannot
    starve the system, large enough that a whole CSDS operation usually
    fits in one slice. *)
let time_slice = 50

(** Scheduling state threaded through one execution: the thread resumed
    at the previous decision and the length of its current run. *)
type state = { mutable prev : int; mutable run_len : int }

let fresh_state () = { prev = -1; run_len = 0 }

let note st tid =
  if tid = st.prev then st.run_len <- st.run_len + 1
  else begin
    st.prev <- tid;
    st.run_len <- 1
  end

let index_of tid (runnable : Sim.runnable) = Sim.runnable_find runnable tid

let action_of tid runnable =
  match index_of tid runnable with
  | -1 -> invalid_arg "Scheduler.action_of: thread not runnable"
  | i -> Sim.runnable_action runnable i

(** The candidate order at one decision point, best (default) first:
    the previous thread while its slice lasts, then the other runnable
    threads in cyclic tid order starting after it.  The position of a
    choice in this list is its delay cost. *)
let candidate_order st (runnable : Sim.runnable) =
  let n = Sim.runnable_count runnable in
  if n = 0 then []
  else begin
    let prev_idx = if st.prev >= 0 then index_of st.prev runnable else -1 in
    let continue_first = prev_idx >= 0 && st.run_len < time_slice in
    (* rotation: tids strictly after prev in cyclic order *)
    let start =
      if prev_idx >= 0 then (prev_idx + 1) mod n
      else begin
        (* no live previous thread: start from the first tid above it *)
        let rec first i =
          if i >= n then 0 else if Sim.runnable_tid runnable i > st.prev then i else first (i + 1)
        in
        first 0
      end
    in
    let rest = ref [] in
    for k = n - 1 downto 0 do
      let i = (start + k) mod n in
      if i <> prev_idx then rest := Sim.runnable_tid runnable i :: !rest
    done;
    if prev_idx < 0 then !rest
    else if continue_first then st.prev :: !rest
    else !rest @ [ st.prev ]
  end

let default_choice st runnable =
  match candidate_order st runnable with
  | tid :: _ -> tid
  | [] -> invalid_arg "Scheduler.default_choice: no runnable thread"

(** Preemption cost of resuming [tid]: 1 iff it deschedules a previous
    thread that is still runnable mid-slice.  Slice-expiry rotations and
    switches forced by thread completion are free. *)
let preempt_cost st runnable tid =
  if st.prev >= 0 && tid <> st.prev && st.run_len < time_slice && index_of st.prev runnable >= 0
  then 1
  else 0

(** Delay cost of resuming [tid]: how many better-ranked candidates the
    choice skips (0 for the default choice). *)
let delay_cost st runnable tid =
  let rec go i = function
    | [] -> invalid_arg "Scheduler.delay_cost: thread not runnable"
    | t :: _ when t = tid -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (candidate_order st runnable)

(* ------------------------------------------------------------------ *)
(* Randomized choosers (uniform / sticky / PCT)                        *)
(* ------------------------------------------------------------------ *)

(* Online spin detection, the scheduling-time analogue of
   {!Dpor.stutter_flags}: a thread whose next action re-reads a line it
   already read, unchanged since, is spinning and cannot make progress
   by being scheduled.  Randomized policies need this because, unlike
   the slice-rotating default policy, they are not inherently fair: a
   uniform or priority-driven chooser happily feeds a spin loop forever
   while the lock holder starves, turning every lock-based algorithm
   into a bogus step-limit "livelock".  Demoting spinners (preferring
   threads whose next step can change state) restores the fairness the
   step-limit oracle assumes, without forbidding any genuinely
   interesting interleaving: scheduling a stutter read commutes with
   everything. *)
module Spin = struct
  type t = {
    versions : (int, int) Hashtbl.t;  (* line -> write serial *)
    last_read : (int, int * int * int) Hashtbl.t;
        (* tid -> (line, version seen, consecutive reads of it) *)
  }

  let create () = { versions = Hashtbl.create 64; last_read = Hashtbl.create 8 }

  let version t line = try Hashtbl.find t.versions line with Not_found -> 0

  (* A thread counts as spinning only once it has *performed* two
     consecutive reads of the same unchanged line and is about to issue
     a third: algorithms legitimately read a location twice in a row
     (validate-then-use), and demoting on the first repeat starves such
     a thread forever if everyone else is parked on a line it guards.
     Backoff/work steps between the reads do not reset the count — a
     TTAS waiter alternates read and backoff, and it is exactly the
     thread this detector exists to demote. *)
  let spin_threshold = 2

  (** Would resuming [tid], whose lookahead action is [act], merely
      re-read an unchanged line it has already re-read? *)
  let stutters t tid act =
    match act with
    | Sim.A_access (Sim.Read, line) -> (
        match Hashtbl.find_opt t.last_read tid with
        | Some (l, v, n) -> l = line && v = version t line && n >= spin_threshold
        | None -> false)
    | _ -> false

  (** Record the committed choice: [tid] was resumed to perform [act]. *)
  let note t tid act =
    match act with
    | Sim.A_access (Sim.Read, line) ->
        let v = version t line in
        let n =
          match Hashtbl.find_opt t.last_read tid with
          | Some (l, v', n) when l = line && v' = v -> n + 1
          | _ -> 1
        in
        Hashtbl.replace t.last_read tid (line, v, n)
    | Sim.A_access ((Sim.Write | Sim.Rmw), line) ->
        Hashtbl.replace t.versions line (version t line + 1);
        Hashtbl.remove t.last_read tid
    | Sim.A_kcas lines ->
        (* a k-CAS commit writes every touched line: spinners parked on
           any of them must be re-promoted *)
        Array.iter (fun line -> Hashtbl.replace t.versions line (version t line + 1)) lines;
        Hashtbl.remove t.last_read tid
    | _ -> ()  (* work/backoff steps keep the read streak alive *)
end

(* Indices of runnable threads whose next step is not a spin-stutter;
   all of them when everyone spins (a genuine livelock — any choice is
   as good as any other and the step limit will trip). *)
let live_indices spin (runnable : Sim.runnable) =
  let n = Sim.runnable_count runnable in
  let live = ref [] in
  for i = n - 1 downto 0 do
    if not (Spin.stutters spin (Sim.runnable_tid runnable i) (Sim.runnable_action runnable i))
    then live := i :: !live
  done;
  match !live with [] -> List.init n Fun.id | l -> l

(** [uniform_chooser rng] picks uniformly among the non-spinning
    runnable threads at every decision.  Deterministic per [rng]
    stream. *)
let uniform_chooser rng : Sim.scheduler =
  let spin = Spin.create () in
  fun runnable ->
    let cands = live_indices spin runnable in
    let i = List.nth cands (Ascy_util.Xorshift.below rng (List.length cands)) in
    let tid = Sim.runnable_tid runnable i in
    Spin.note spin tid (Sim.runnable_action runnable i);
    tid

(** [sticky_chooser rng ~p_continue] continues the previous thread with
    probability [p_continue] (when it is runnable and not spinning) and
    otherwise picks uniformly among the other non-spinning threads —
    one point in the swarm's temperament space: high [p_continue]
    yields long quasi-sequential runs, low values yield churn. *)
let sticky_chooser rng ~p_continue : Sim.scheduler =
  let spin = Spin.create () in
  let st = fresh_state () in
  fun runnable ->
    let cands = live_indices spin runnable in
    let prev_live =
      st.prev >= 0
      && List.exists (fun i -> Sim.runnable_tid runnable i = st.prev) cands
    in
    let i =
      if prev_live && Ascy_util.Xorshift.bool rng p_continue then
        index_of st.prev runnable
      else begin
        let others =
          if not prev_live then cands
          else
            match List.filter (fun i -> Sim.runnable_tid runnable i <> st.prev) cands with
            | [] -> cands
            | l -> l
        in
        List.nth others (Ascy_util.Xorshift.below rng (List.length others))
      end
    in
    let tid = Sim.runnable_tid runnable i in
    Spin.note spin tid (Sim.runnable_action runnable i);
    note st tid;
    tid

(** [pct_chooser rng ~depth ~length] — probabilistic concurrency
    testing (Burckhardt et al., ASPLOS'10).  Each thread gets a random
    distinct initial priority; the scheduler always runs the
    highest-priority non-spinning runnable thread; at [depth - 1]
    change points drawn uniformly over the estimated run length, the
    currently-running thread's priority drops below everyone's.  A bug
    whose manifestation needs [depth] ordering constraints is found
    with probability >= 1/(n·k^(d-1)) per schedule — [length] is the
    [k] estimate, from a probe run under the default policy.

    Deviations from the default candidate order are exactly what the
    explorer's delay/preemption accounting prices; PCT spends that
    budget through its own coin (the [depth - 1] change points plus
    priority inversions), so {!Explorer} does not additionally bound
    PCT runs.

    Strict priorities need one liveness backstop beyond {!Spin}: spin
    demotion only catches read-only wait loops, not {e effect-ful}
    spins — a lock/validate/unlock retry or a failed-CAS loop writes on
    every iteration and is indistinguishable from progress to any local
    detector, so the top-priority thread can monopolize the scheduler
    until the step-limit oracle reports a bogus livelock (observed on
    sl-herlihy's marked-node retry and bst-tk's version-lock retry).
    The backstop is priority aging: a thread given [stall_limit]
    consecutive decisions while others are runnable drops below every
    other priority — an off-budget change point, as in fair-PCT
    implementations.  Legit monopolies (a thread running its whole
    script undisturbed) are an order of magnitude shorter in these
    specs, and a true global livelock still trips the step limit:
    rotation by itself creates no progress. *)
let stall_limit = 1_000

let pct_chooser rng ~depth ~length : Sim.scheduler =
  let spin = Spin.create () in
  let prio : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let inited = ref false in
  let change =
    let k = max 1 length in
    let a = Array.init (max 0 (depth - 1)) (fun _ -> 1 + Ascy_util.Xorshift.below rng k) in
    Array.sort compare a;
    a
  in
  let nchange = Array.length change in
  let applied = ref 0 in
  let last = ref (-1) in
  let step = ref 0 in
  (* priority aging: [floor] sits below every initial priority and
     every change-point value, and drops once per forced demotion so
     successive monopolists keep rotating; [mono] counts consecutive
     decisions given to [last] *)
  let floor = ref (depth - nchange) in
  let mono = ref 0 in
  fun runnable ->
    incr step;
    if not !inited then begin
      (* random distinct priorities in [depth, depth + n): all above the
         values change points assign, so a demoted thread stays demoted *)
      inited := true;
      let n = Sim.runnable_count runnable in
      let perm = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Ascy_util.Xorshift.below rng (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      for i = 0 to n - 1 do
        Hashtbl.replace prio (Sim.runnable_tid runnable i) (depth + perm.(i))
      done
    end;
    while !applied < nchange && change.(!applied) <= !step do
      (* change point: the running thread falls below every initial
         priority, and below all earlier change points' assignments *)
      if !last >= 0 then Hashtbl.replace prio !last (depth - 1 - !applied);
      incr applied
    done;
    if !mono >= stall_limit && Sim.runnable_count runnable > 1 && !last >= 0 then begin
      floor := !floor - 1;
      Hashtbl.replace prio !last !floor;
      mono := 0
    end;
    let cands = live_indices spin runnable in
    let pr i = try Hashtbl.find prio (Sim.runnable_tid runnable i) with Not_found -> -1 in
    let best =
      List.fold_left
        (fun best i -> match best with Some b when pr b >= pr i -> best | _ -> Some i)
        None cands
    in
    let i = Option.get best in
    let tid = Sim.runnable_tid runnable i in
    Spin.note spin tid (Sim.runnable_action runnable i);
    if tid = !last then incr mono else mono := 1;
    last := tid;
    tid

(* ------------------------------------------------------------------ *)
(* Prefix schedulers                                                   *)
(* ------------------------------------------------------------------ *)

(** [prefix_scheduler ?on_step ~prefix ()] is a {!Ascy_mem.Sim.scheduler}
    that follows [prefix] (an array of tids, one per decision point) and
    then continues with the default policy until the program finishes.
    A recorded tid that is no longer runnable — truncating a schedule
    during minimization can diverge from the run that recorded it, e.g.
    when the cut makes a thread finish or crash earlier — falls back to
    the default policy deterministically instead of faulting the
    simulator; exact replays of complete prefixes never hit this path.
    [on_step] observes every decision: the step index, the runnable set
    and the chosen tid.  The runnable record is the simulator's reused
    one — callbacks that retain it must take a {!Sim.runnable_copy}. *)
let prefix_scheduler ?on_step ~prefix () : Sim.scheduler =
  let st = fresh_state () in
  let step = ref 0 in
  fun runnable ->
    let k = !step in
    incr step;
    let tid =
      if k < Array.length prefix && Sim.runnable_find runnable prefix.(k) >= 0 then prefix.(k)
      else default_choice st runnable
    in
    (match on_step with Some f -> f ~step:k ~runnable ~chosen:tid | None -> ());
    note st tid;
    tid

(* ------------------------------------------------------------------ *)
(* Run-length-encoded schedules                                        *)
(* ------------------------------------------------------------------ *)

(** [(tid, len)] chunks: [to_chunks [|0;0;1;0|] = [(0,2);(1,1);(0,1)]]. *)
let to_chunks (sched : int array) =
  let rec go i acc =
    if i >= Array.length sched then List.rev acc
    else begin
      let tid = sched.(i) in
      let j = ref i in
      while !j < Array.length sched && sched.(!j) = tid do
        incr j
      done;
      go !j ((tid, !j - i) :: acc)
    end
  in
  go 0 []

let of_chunks chunks =
  let total = List.fold_left (fun acc (_, len) -> acc + len) 0 chunks in
  let sched = Array.make total 0 in
  let i = ref 0 in
  List.iter
    (fun (tid, len) ->
      if len < 0 then invalid_arg "Scheduler.of_chunks: negative length";
      for _ = 1 to len do
        sched.(!i) <- tid;
        incr i
      done)
    chunks;
  sched
