(** Controlled schedules for systematic concurrency testing.

    A schedule is the sequence of thread ids resumed at each of the
    simulator's decision points ({!Ascy_mem.Sim.run} with [~scheduler]).
    This module defines:

    - the {e default policy} every explorer and replayer falls back to
      beyond its explicit prefix: continue the current thread until its
      time slice expires, then rotate to the next runnable thread in
      cyclic tid order.  The slice keeps the policy fair — a thread
      spinning on a lock is eventually descheduled so the holder can run
      — while keeping context switches rare enough that preemption
      bounding is meaningful (slice-expiry rotations are "free": they
      are the default, not a preemption);
    - the candidate order at one decision point, which also defines the
      {e delay} cost of a non-default choice (its index in that order)
      and the {e preemption} cost (1 for switching away from a runnable
      thread mid-slice);
    - prefix schedulers ([follow prefix, then default policy]) and the
      run-length-encoded chunk form used to serialize schedules. *)

module Sim = Ascy_mem.Sim

(** Steps a thread runs uninterrupted before the default policy rotates
    to the next runnable thread.  Small enough that spin loops cannot
    starve the system, large enough that a whole CSDS operation usually
    fits in one slice. *)
let time_slice = 50

(** Scheduling state threaded through one execution: the thread resumed
    at the previous decision and the length of its current run. *)
type state = { mutable prev : int; mutable run_len : int }

let fresh_state () = { prev = -1; run_len = 0 }

let note st tid =
  if tid = st.prev then st.run_len <- st.run_len + 1
  else begin
    st.prev <- tid;
    st.run_len <- 1
  end

let index_of tid (runnable : Sim.runnable) = Sim.runnable_find runnable tid

let action_of tid runnable =
  match index_of tid runnable with
  | -1 -> invalid_arg "Scheduler.action_of: thread not runnable"
  | i -> Sim.runnable_action runnable i

(** The candidate order at one decision point, best (default) first:
    the previous thread while its slice lasts, then the other runnable
    threads in cyclic tid order starting after it.  The position of a
    choice in this list is its delay cost. *)
let candidate_order st (runnable : Sim.runnable) =
  let n = Sim.runnable_count runnable in
  if n = 0 then []
  else begin
    let prev_idx = if st.prev >= 0 then index_of st.prev runnable else -1 in
    let continue_first = prev_idx >= 0 && st.run_len < time_slice in
    (* rotation: tids strictly after prev in cyclic order *)
    let start =
      if prev_idx >= 0 then (prev_idx + 1) mod n
      else begin
        (* no live previous thread: start from the first tid above it *)
        let rec first i =
          if i >= n then 0 else if Sim.runnable_tid runnable i > st.prev then i else first (i + 1)
        in
        first 0
      end
    in
    let rest = ref [] in
    for k = n - 1 downto 0 do
      let i = (start + k) mod n in
      if i <> prev_idx then rest := Sim.runnable_tid runnable i :: !rest
    done;
    if prev_idx < 0 then !rest
    else if continue_first then st.prev :: !rest
    else !rest @ [ st.prev ]
  end

let default_choice st runnable =
  match candidate_order st runnable with
  | tid :: _ -> tid
  | [] -> invalid_arg "Scheduler.default_choice: no runnable thread"

(** Preemption cost of resuming [tid]: 1 iff it deschedules a previous
    thread that is still runnable mid-slice.  Slice-expiry rotations and
    switches forced by thread completion are free. *)
let preempt_cost st runnable tid =
  if st.prev >= 0 && tid <> st.prev && st.run_len < time_slice && index_of st.prev runnable >= 0
  then 1
  else 0

(** Delay cost of resuming [tid]: how many better-ranked candidates the
    choice skips (0 for the default choice). *)
let delay_cost st runnable tid =
  let rec go i = function
    | [] -> invalid_arg "Scheduler.delay_cost: thread not runnable"
    | t :: _ when t = tid -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (candidate_order st runnable)

(* ------------------------------------------------------------------ *)
(* Prefix schedulers                                                   *)
(* ------------------------------------------------------------------ *)

(** [prefix_scheduler ?on_step ~prefix ()] is a {!Ascy_mem.Sim.scheduler}
    that follows [prefix] (an array of tids, one per decision point) and
    then continues with the default policy until the program finishes.
    A recorded tid that is no longer runnable — truncating a schedule
    during minimization can diverge from the run that recorded it, e.g.
    when the cut makes a thread finish or crash earlier — falls back to
    the default policy deterministically instead of faulting the
    simulator; exact replays of complete prefixes never hit this path.
    [on_step] observes every decision: the step index, the runnable set
    and the chosen tid.  The runnable record is the simulator's reused
    one — callbacks that retain it must take a {!Sim.runnable_copy}. *)
let prefix_scheduler ?on_step ~prefix () : Sim.scheduler =
  let st = fresh_state () in
  let step = ref 0 in
  fun runnable ->
    let k = !step in
    incr step;
    let tid =
      if k < Array.length prefix && Sim.runnable_find runnable prefix.(k) >= 0 then prefix.(k)
      else default_choice st runnable
    in
    (match on_step with Some f -> f ~step:k ~runnable ~chosen:tid | None -> ());
    note st tid;
    tid

(* ------------------------------------------------------------------ *)
(* Run-length-encoded schedules                                        *)
(* ------------------------------------------------------------------ *)

(** [(tid, len)] chunks: [to_chunks [|0;0;1;0|] = [(0,2);(1,1);(0,1)]]. *)
let to_chunks (sched : int array) =
  let rec go i acc =
    if i >= Array.length sched then List.rev acc
    else begin
      let tid = sched.(i) in
      let j = ref i in
      while !j < Array.length sched && sched.(!j) = tid do
        incr j
      done;
      go !j ((tid, !j - i) :: acc)
    end
  in
  go 0 []

let of_chunks chunks =
  let total = List.fold_left (fun acc (_, len) -> acc + len) 0 chunks in
  let sched = Array.make total 0 in
  let i = ref 0 in
  List.iter
    (fun (tid, len) ->
      if len < 0 then invalid_arg "Scheduler.of_chunks: negative length";
      for _ = 1 to len do
        sched.(!i) <- tid;
        incr i
      done)
    chunks;
  sched
