(** Serializable, replayable schedules.

    A counterexample found by the explorer is just an array of thread
    ids — one per simulator decision point.  Because the simulator is
    deterministic, (program, schedule prefix) reproduces a failure
    bit-for-bit: replaying follows the prefix and continues with the
    default policy, which is exactly how the explorer ran it.

    The on-disk format is JSON.  Schema version 1:
    {v
    {
      "version": 1,
      "kind": "ascy-sct-schedule",
      "prefix": [[tid, len], ...],   // run-length encoded decisions
      "meta": { ... }                // caller-defined replay context
    }
    v}
    Schema version 2 (written only when a fault plan is present) adds a
    ["faults"] array of fault events in the same decision coordinate
    system as the prefix:
    {v
      "faults": [
        {"at": D, "tid": T, "fault": "crash"},
        {"at": D, "tid": T, "fault": "stall", "decisions": N},
        {"at": D, "socket": S, "fault": "numa-slow",
         "factor": F, "window": W},
        {"at": D, "tid": T, "fault": "drop"},
        {"at": D, "tid": T, "fault": "dup"},
        {"at": D, "tid": T, "fault": "delay", "sends": N}, ...
      ]
    v}
    A file with no faults is always written as (and byte-identical to)
    schema version 1, so pre-fault tooling and golden files are
    untouched.  [meta] is opaque to this module; [Ascy_harness.Sct_run]
    and [Ascy_harness.Fault_run] store the algorithm name, platform,
    thread count, per-thread operation scripts and the violation message
    there, so a schedule file is a complete, self-contained reproduction
    recipe. *)

module J = Ascy_util.Json
module Sim = Ascy_mem.Sim

let schema_version = 1
let schema_version_faults = 2
let kind = "ascy-sct-schedule"

let fault_to_json fe =
  match fe.Sim.fe_fault with
  | Sim.F_crash ->
      J.Obj
        [ ("at", J.Int fe.Sim.fe_at); ("tid", J.Int fe.Sim.fe_tid); ("fault", J.String "crash") ]
  | Sim.F_stall n ->
      J.Obj
        [
          ("at", J.Int fe.Sim.fe_at);
          ("tid", J.Int fe.Sim.fe_tid);
          ("fault", J.String "stall");
          ("decisions", J.Int n);
        ]
  | Sim.F_numa_slow { factor; window } ->
      J.Obj
        [
          ("at", J.Int fe.Sim.fe_at);
          ("socket", J.Int fe.Sim.fe_tid);
          ("fault", J.String "numa-slow");
          ("factor", J.Float factor);
          ("window", J.Int window);
        ]
  | Sim.F_msg Sim.Msg_drop ->
      J.Obj
        [ ("at", J.Int fe.Sim.fe_at); ("tid", J.Int fe.Sim.fe_tid); ("fault", J.String "drop") ]
  | Sim.F_msg Sim.Msg_dup ->
      J.Obj
        [ ("at", J.Int fe.Sim.fe_at); ("tid", J.Int fe.Sim.fe_tid); ("fault", J.String "dup") ]
  | Sim.F_msg (Sim.Msg_delay n) ->
      J.Obj
        [
          ("at", J.Int fe.Sim.fe_at);
          ("tid", J.Int fe.Sim.fe_tid);
          ("fault", J.String "delay");
          ("sends", J.Int n);
        ]

let to_json ?(meta = []) ?(faults = []) ~prefix () =
  J.Obj
    (("version", J.Int (if faults = [] then schema_version else schema_version_faults))
     :: ("kind", J.String kind)
     :: ( "prefix",
          J.List
            (List.map
               (fun (tid, len) -> J.List [ J.Int tid; J.Int len ])
               (Scheduler.to_chunks prefix)) )
     :: (if faults = [] then [] else [ ("faults", J.List (List.map fault_to_json faults)) ])
    @ [ ("meta", J.Obj meta) ])

exception Bad_schedule of string

let fail msg = raise (Bad_schedule msg)

let fault_of_json j =
  let int k = match J.member k j with Some (J.Int v) -> v | _ -> fail "malformed fault event" in
  let at = int "at" in
  if at < 0 then fail "malformed fault event";
  match J.member "fault" j with
  | Some (J.String "crash") -> { Sim.fe_at = at; fe_tid = int "tid"; fe_fault = Sim.F_crash }
  | Some (J.String "stall") ->
      { Sim.fe_at = at; fe_tid = int "tid"; fe_fault = Sim.F_stall (int "decisions") }
  | Some (J.String "numa-slow") ->
      let factor =
        match J.member "factor" j with
        | Some (J.Float f) -> f
        | Some (J.Int i) -> float_of_int i
        | _ -> fail "malformed fault event"
      in
      {
        Sim.fe_at = at;
        fe_tid = int "socket";
        fe_fault = Sim.F_numa_slow { factor; window = int "window" };
      }
  | Some (J.String "drop") ->
      { Sim.fe_at = at; fe_tid = int "tid"; fe_fault = Sim.F_msg Sim.Msg_drop }
  | Some (J.String "dup") -> { Sim.fe_at = at; fe_tid = int "tid"; fe_fault = Sim.F_msg Sim.Msg_dup }
  | Some (J.String "delay") ->
      { Sim.fe_at = at; fe_tid = int "tid"; fe_fault = Sim.F_msg (Sim.Msg_delay (int "sends")) }
  | _ -> fail "unknown fault kind"

(** [of_json j] returns the decision prefix, the fault plan (empty for
    schema v1 files) and the caller meta object.  Raises {!Bad_schedule}
    on malformed or wrong-version input. *)
let of_json j =
  (match J.member "kind" j with
  | Some (J.String k) when k = kind -> ()
  | _ -> fail "not an ascy-sct-schedule");
  (match J.member "version" j with
  | Some (J.Int v) when v = schema_version || v = schema_version_faults -> ()
  | _ -> fail "unsupported schedule schema version");
  let prefix =
    match J.member "prefix" j with
    | Some (J.List chunks) ->
        Scheduler.of_chunks
          (List.map
             (function
               | J.List [ J.Int tid; J.Int len ] when tid >= 0 && len >= 0 -> (tid, len)
               | _ -> fail "malformed prefix chunk")
             chunks)
    | _ -> fail "missing prefix"
  in
  let faults =
    match J.member "faults" j with
    | Some (J.List fs) -> List.map fault_of_json fs
    | Some _ -> fail "malformed faults"
    | None -> []
  in
  let meta = match J.member "meta" j with Some (J.Obj kvs) -> kvs | _ -> [] in
  (prefix, faults, meta)

let save ~path ?meta ?faults ~prefix () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~indent:1 (to_json ?meta ?faults ~prefix ()));
      output_string oc "\n")

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_json (J.of_string s))

(* ------------------------------------------------------------------ *)
(* Minimization                                                        *)
(* ------------------------------------------------------------------ *)

(* Flatten the first [k] chunks plus [extra] steps of chunk [k]. *)
let take chunks k extra =
  let rec go i acc = function
    | [] -> List.rev acc
    | (tid, len) :: rest ->
        if i < k then go (i + 1) ((tid, len) :: acc) rest
        else if extra > 0 then List.rev ((tid, min extra len) :: acc)
        else List.rev acc
  in
  Scheduler.of_chunks (go 0 [] chunks)

(** [minimize ~check schedule] shrinks a failing schedule to a short
    prefix that still fails.  [check prefix] replays [prefix ^ default
    policy] and returns [Some desc] iff the oracle still reports a
    violation.  Shrinking is best-effort (the property is not monotone in
    the prefix): a doubling-then-binary search finds a short failing
    chunk prefix, the last chunk is trimmed, and a greedy pass drops
    whole chunks that turn out to be unnecessary.  [check schedule] must
    fail; the result is guaranteed to fail under [check]. *)
let minimize ~check (schedule : int array) =
  if check schedule = None then
    invalid_arg "Replay.minimize: schedule does not reproduce the failure";
  let fails p = check p <> None in
  let chunks = Scheduler.to_chunks schedule in
  let nch = List.length chunks in
  (* doubling scan for a failing chunk count *)
  let rec grow k = if k >= nch then nch else if fails (take chunks k 0) then k else grow (2 * k) in
  let hi = if fails (take chunks 0 0) then 0 else grow 1 in
  (* binary refinement below it (quasi-monotone heuristic) *)
  let lo = ref (hi / 2) and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fails (take chunks mid 0) then hi := mid else lo := mid + 1
  done;
  let k = !hi in
  (* trim the last kept chunk *)
  let best = ref (take chunks k 0) in
  if k > 0 then begin
    let last_len = List.nth chunks (k - 1) |> snd in
    let lo = ref 1 and hi = ref last_len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fails (take chunks (k - 1) mid) then hi := mid else lo := mid + 1
    done;
    if !hi < last_len && fails (take chunks (k - 1) !hi) then best := take chunks (k - 1) !hi
  end;
  (* greedy chunk removal (bounded) *)
  let cur = ref (Scheduler.to_chunks !best) in
  if List.length !cur <= 64 then begin
    let i = ref 0 in
    while !i < List.length !cur do
      let without = List.filteri (fun j _ -> j <> !i) !cur in
      if fails (Scheduler.of_chunks without) then cur := without else incr i
    done
  end;
  let result = Scheduler.of_chunks !cur in
  if fails result then result else !best
