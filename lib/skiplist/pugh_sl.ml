(** Pugh's concurrent skip list (Table 1 "pugh"; Pugh, "Concurrent
    Maintenance of Skip Lists", 1990).

    Hybrid lock-based: several levels of Pugh lists.  Searches and parses
    are optimistic and store-free; updates take per-level predecessor
    locks one level at a time (never the whole tower at once), and
    removal reverses the victim's forward pointers level by level so
    concurrent traversals standing on it retreat to the predecessor.

    An insert holds the new node's own lock for the whole tower build
    (Pugh's check-the-flag protocol): a remove of the same key
    serializes behind it, so a victim is always linked at every level
    of its tower when its removal starts.  Without this, removal's
    per-level scan can run before an upper level is linked, leaving the
    node behind as a permanently-linked logically-deleted router — and
    [get_lock] livelocks retreating from it forever. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module Lg = Level_gen.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info

  and 'v info = {
    key : int;
    value : 'v option;
    line : Mem.line;
    lock : L.t;
    deleted : bool Mem.r;
    nexts : 'v node Mem.r array;
  }

  type 'v t = { head : 'v info; levels : Lg.t; rof : bool; ssmem : S.t }

  let name = "sl-pugh"

  let mk_info key value height =
    let line = Mem.new_line () in
    {
      key;
      value;
      line;
      lock = L.create line;
      deleted = Mem.make line false;
      nexts = Array.init height (fun _ -> Mem.make line Nil);
    }

  let create ?hint ?(read_only_fail = true) () =
    let max_level = Lg.max_for_hint (Option.value hint ~default:1024) in
    {
      head = mk_info min_int None max_level;
      levels = Lg.create max_level;
      rof = read_only_fail;
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let height t = Array.length t.head.nexts

  let search t k =
    let rec go info lvl =
      if lvl < 0 then None
      else
        match Mem.get info.nexts.(lvl) with
        | Node n when n.key < k ->
            Mem.touch n.line;
            go n lvl
        | Node n when n.key = k && not (Mem.get n.deleted) -> n.value
        | _ -> go info (lvl - 1)
    in
    go t.head (height t - 1)

  (* Optimistic parse for lock hints. *)
  let parse t k =
    let preds = Array.make (height t) t.head in
    let rec go info lvl =
      if lvl < 0 then preds
      else
        match Mem.get info.nexts.(lvl) with
        | Node n when n.key < k ->
            Mem.touch n.line;
            go n lvl
        | _ ->
            preds.(lvl) <- info;
            go info (lvl - 1)
    in
    go t.head (height t - 1)

  (* Pugh's getLock at one level: lock the last live node with key < k,
     re-stabilizing in place.  A locked-but-deleted candidate sends us
     back to the head (its pointers may already be reversed). *)
  let rec get_lock t k lvl start =
    let rec advance info =
      match Mem.get info.nexts.(lvl) with
      | Node n when n.key < k -> advance n
      | _ -> info
    in
    let cand = advance start in
    L.acquire cand.lock;
    if Mem.get cand.deleted then begin
      (* follow the reversed pointer back to a live region instead of
         rescanning from the head (Pugh's retreat); a not-yet-reversed
         forward pointer falls back to the head *)
      let back =
        match Mem.get cand.nexts.(lvl) with
        | Node p when p.key < k -> p
        | _ -> t.head
      in
      L.release cand.lock;
      Mem.emit E.restart;
      get_lock t k lvl back
    end
    else
      match Mem.get cand.nexts.(lvl) with
      | Node n when n.key < k ->
          L.release cand.lock;
          get_lock t k lvl cand
      | _ -> cand

  let insert t k v =
    Mem.emit E.parse;
    let preds = parse t k in
    let quick_present =
      match Mem.get preds.(0).nexts.(0) with
      | Node n when n.key = k -> not (Mem.get n.deleted)
      | _ -> false
    in
    Mem.emit E.parse_end;
    if t.rof && quick_present then false
    else begin
      let h = Lg.next t.levels in
      let x = mk_info k (Some v) h in
      (* Hold x's own lock across the whole tower build: a concurrent
         remove of k serializes behind it (remove locks its victim
         before marking it deleted), so the victim of any removal is
         fully linked — no level can be skipped by the unlink scan and
         left behind as a permanent deleted router.  Lock order stays
         descending (x.key = k, then predecessors with keys < k). *)
      L.acquire x.lock;
      let rec link lvl =
        if lvl >= h then true
        else begin
          let pred = get_lock t k lvl preds.(min lvl (height t - 1)) in
          if lvl = 0 then begin
            match Mem.get pred.nexts.(0) with
            | Node n when n.key = k && not (Mem.get n.deleted) ->
                L.release pred.lock;
                false (* duplicate *)
            | succ ->
                Mem.set x.nexts.(0) succ;
                Mem.set pred.nexts.(0) (Node x);
                L.release pred.lock;
                link 1
          end
          else begin
            Mem.set x.nexts.(lvl) (Mem.get pred.nexts.(lvl));
            Mem.set pred.nexts.(lvl) (Node x);
            L.release pred.lock;
            link (lvl + 1)
          end
        end
      in
      let linked = link 0 in
      L.release x.lock;
      linked
    end

  (* Find-and-lock the predecessor of [x] at [lvl], starting from a
     parse hint (falling back to the head when the hint went stale);
     None if x is not linked at this level. *)
  let rec pred_of_victim t x lvl start =
    let rec find info =
      match Mem.get info.nexts.(lvl) with
      | Node n when n == x -> Some info
      | Node n when n.key <= x.key && not (n == x) ->
          Mem.touch n.line;
          find n
      | _ -> None
    in
    match find start with
    | None -> if start == t.head then None else pred_of_victim t x lvl t.head
    | Some pred ->
        L.acquire pred.lock;
        if Mem.get pred.deleted then begin
          L.release pred.lock;
          Mem.emit E.restart;
          pred_of_victim t x lvl t.head
        end
        else
          (match Mem.get pred.nexts.(lvl) with
          | Node n when n == x -> Some pred
          | _ ->
              L.release pred.lock;
              Mem.emit E.restart;
              pred_of_victim t x lvl t.head)

  let remove t k =
    Mem.emit E.parse;
    let preds = parse t k in
    (* Re-advance from the parse hint rather than trusting one re-read:
       preds.(0) may since have been removed — its level-0 pointer then
       points *backward* (reversal) — or a smaller key may have been
       inserted in the gap.  Either way a single read of
       preds.(0).nexts.(0) can return a key < k node and miss a live
       victim; walking re-converges onto the current list. *)
    let rec candidate info =
      match Mem.get info.nexts.(0) with
      | Node n when n.key < k ->
          Mem.touch n.line;
          candidate n
      | c -> c
    in
    let cand = candidate preds.(0) in
    let quick_absent =
      match cand with Node n when n.key = k -> Mem.get n.deleted | _ -> true
    in
    Mem.emit E.parse_end;
    if t.rof && quick_absent then false
    else begin
      (* lock the victim first (larger key), then predecessors (smaller
         keys): every operation acquires locks in descending key order, so
         no deadlock is possible.  The candidate comes straight from the
         tower parse (no linear level-0 rescan). *)
      match cand with
      | Node x when x.key = k ->
          L.acquire x.lock;
          if Mem.get x.deleted then begin
            (* the k we saw is gone; a fresh k may exist, but there was an
               instant with no live k, which linearizes this failure *)
            L.release x.lock;
            false
          end
          else begin
            Mem.set x.deleted true;
            (* unlink top-down with pointer reversal, starting each level
               scan from the optimistic parse hints *)
            for lvl = Array.length x.nexts - 1 downto 0 do
              let hint = if lvl < Array.length preds then preds.(lvl) else t.head in
              match pred_of_victim t x lvl hint with
              | None -> () (* never linked at this level *)
              | Some pred ->
                  let succ = Mem.get x.nexts.(lvl) in
                  Mem.set x.nexts.(lvl) (Node pred);
                  Mem.set pred.nexts.(lvl) succ;
                  L.release pred.lock
            done;
            L.release x.lock;
            S.free t.ssmem x;
            true
          end
      | _ -> false
    end

  let size t =
    let rec go info acc steps =
      if steps > 50_000_000 then acc
      else
        match Mem.get info.nexts.(0) with
        | Nil -> acc
        | Node n -> go n (if Mem.get n.deleted then acc else acc + 1) (steps + 1)
    in
    go t.head 0 0

  let validate t =
    let rec go info last steps =
      if steps > 10_000_000 then Error "level-0 traversal does not terminate"
      else
        match Mem.get info.nexts.(0) with
        | Nil -> Ok ()
        | Node n ->
            if Mem.get n.deleted then Error "deleted node still linked at level 0"
            else if n.key <= last then Error "keys not strictly increasing"
            else go n n.key (steps + 1)
    in
    go t.head min_int 0

  let op_done t = S.quiesce t.ssmem
end
