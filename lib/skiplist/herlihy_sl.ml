(** Optimistic lazy skip list (Table 1 "herlihy"; Herlihy, Lev,
    Luchangco & Shavit, SIROCCO 2007).

    Searches traverse the tower with no synchronization; membership is
    [found && fully_linked && not marked].  Updates parse optimistically,
    lock the predecessors at every level, validate, and link/unlink.
    Removal marks the victim (logical deletion) before unlinking top-down
    under the locks.

    [read_only_fail] (ASCY3, applied by the paper to this algorithm)
    makes an update whose parse shows failure return with no stores; with
    [~read_only_fail:false] the update performs the lock-validate dance
    before failing. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module L = Ascy_locks.Ttas.Make (Mem)
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module Lg = Level_gen.Make (Mem)
  module E = Ascy_mem.Event

  type 'v node = Nil | Node of 'v info

  and 'v info = {
    key : int;
    value : 'v option;
    line : Mem.line;
    lock : L.t;
    marked : bool Mem.r;
    fully_linked : bool Mem.r;
    nexts : 'v node Mem.r array;
  }

  type 'v t = { head : 'v info; levels : Lg.t; rof : bool; ssmem : S.t }

  let name = "sl-herlihy"

  let mk_info key value height =
    let line = Mem.new_line () in
    {
      key;
      value;
      line;
      lock = L.create line;
      marked = Mem.make line false;
      fully_linked = Mem.make line false;
      nexts = Array.init height (fun _ -> Mem.make line Nil);
    }

  let create ?hint ?(read_only_fail = true) () =
    let max_level = Lg.max_for_hint (Option.value hint ~default:1024) in
    let head = mk_info min_int None max_level in
    Mem.set head.fully_linked true;
    {
      head;
      levels = Lg.create max_level;
      rof = read_only_fail;
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let height t = Array.length t.head.nexts

  (* Optimistic parse: fills preds/succs, returns the highest level at
     which the key was found (-1 if absent). *)
  let find t k preds succs =
    Mem.emit E.parse;
    let lfound = ref (-1) in
    let rec go info lvl =
      if lvl < 0 then !lfound
      else
        match Mem.get info.nexts.(lvl) with
        | Node n when n.key < k ->
            Mem.touch n.line;
            go n lvl
        | succ ->
            (match succ with
            | Node n when n.key = k && !lfound < 0 -> lfound := lvl
            | _ -> ());
            preds.(lvl) <- info;
            succs.(lvl) <- succ;
            go info (lvl - 1)
    in
    go t.head (height t - 1)

  let search t k =
    let rec go info lvl =
      if lvl < 0 then None
      else
        match Mem.get info.nexts.(lvl) with
        | Node n when n.key < k ->
            Mem.touch n.line;
            go n lvl
        | Node n when n.key = k ->
            if Mem.get n.fully_linked && not (Mem.get n.marked) then n.value else None
        | _ -> go info (lvl - 1)
    in
    go t.head (height t - 1)

  (* Lock preds.(0..top); avoids double-locking repeated preds.  Returns
     the list of locked infos (to unlock) and the validation verdict. *)
  let lock_preds preds succs top ~victim =
    let locked = ref [] in
    let valid = ref true in
    (try
       let prev = ref None in
       for lvl = 0 to top do
         let pred = preds.(lvl) in
         (match !prev with
         | Some p when p == pred -> ()
         | _ ->
             L.acquire pred.lock;
             locked := pred :: !locked;
             prev := Some pred);
         let succ_ok =
           match victim with
           | Some v -> (match Mem.get pred.nexts.(lvl) with Node n -> n == v | Nil -> false)
           | None -> Mem.get pred.nexts.(lvl) == succs.(lvl)
         in
         if Mem.get pred.marked || not succ_ok then begin
           valid := false;
           raise Exit
         end
       done
     with Exit -> ());
    (!locked, !valid)

  let unlock_all locked = List.iter (fun (p : 'v info) -> L.release p.lock) locked

  let insert t k v =
    let h = height t in
    let preds = Array.make h t.head and succs = Array.make h Nil in
    let rec attempt () =
      let lfound = find t k preds succs in
      Mem.emit E.parse_end;
      if lfound >= 0 then begin
        match succs.(lfound) with
        | Node n when not (Mem.get n.marked) ->
            if not t.rof then begin
              (* "-no" variant: lock + validate before failing *)
              let locked, _ = lock_preds preds succs 0 ~victim:None in
              unlock_all locked
            end;
            (* wait for a concurrent insert of the same key to finish *)
            while not (Mem.get n.fully_linked) do
              Mem.emit E.wait;
              Mem.cpu_relax ()
            done;
            false
        | _ ->
            Mem.emit E.restart;
            attempt () (* found but marked: being removed, retry *)
      end
      else begin
        let top_layer = Lg.next t.levels in
        let locked, valid = lock_preds preds succs (top_layer - 1) ~victim:None in
        if not valid then begin
          unlock_all locked;
          Mem.emit E.restart;
          attempt ()
        end
        else begin
          let n = mk_info k (Some v) top_layer in
          for lvl = 0 to top_layer - 1 do
            Mem.set n.nexts.(lvl) succs.(lvl)
          done;
          for lvl = 0 to top_layer - 1 do
            Mem.set preds.(lvl).nexts.(lvl) (Node n)
          done;
          Mem.set n.fully_linked true;
          unlock_all locked;
          true
        end
      end
    in
    attempt ()

  let remove t k =
    let h = height t in
    let preds = Array.make h t.head and succs = Array.make h Nil in
    let victim_locked = ref None in
    let finish r =
      (match !victim_locked with Some (v : 'v info) -> L.release v.lock | None -> ());
      r
    in
    let rec attempt () =
      let lfound = find t k preds succs in
      Mem.emit E.parse_end;
      let candidate =
        match (!victim_locked, lfound) with
        | Some v, _ -> Some v
        | None, -1 -> None
        | None, l -> (
            match succs.(l) with
            | Node n
              when Mem.get n.fully_linked
                   && Array.length n.nexts - 1 = l
                   && not (Mem.get n.marked) ->
                Some n
            | _ -> None)
      in
      match candidate with
      | None ->
          if (not t.rof) && lfound >= 0 then begin
            let locked, _ = lock_preds preds succs 0 ~victim:None in
            unlock_all locked
          end;
          finish false
      | Some victim ->
          if (match !victim_locked with None -> true | Some _ -> false) then begin
            L.acquire victim.lock;
            if Mem.get victim.marked then begin
              L.release victim.lock;
              finish false
            end
            else begin
              Mem.set victim.marked true;
              victim_locked := Some victim;
              proceed victim
            end
          end
          else proceed victim
    and proceed victim =
      let top = Array.length victim.nexts - 1 in
      let locked, valid = lock_preds preds succs top ~victim:(Some victim) in
      if not valid then begin
        unlock_all locked;
        Mem.emit E.restart;
        attempt ()
      end
      else begin
        for lvl = top downto 0 do
          Mem.set preds.(lvl).nexts.(lvl) (Mem.get victim.nexts.(lvl))
        done;
        unlock_all locked;
        S.free t.ssmem victim;
        finish true
      end
    in
    attempt ()

  let size t =
    let rec go info acc =
      match Mem.get info.nexts.(0) with
      | Nil -> acc
      | Node n ->
          go n (if Mem.get n.marked || not (Mem.get n.fully_linked) then acc else acc + 1)
    in
    go t.head 0

  let validate t =
    let rec level0 info last =
      match Mem.get info.nexts.(0) with
      | Nil -> Ok ()
      | Node n -> if n.key <= last then Error "keys not strictly increasing" else level0 n n.key
    in
    level0 t.head min_int

  let op_done t = S.quiesce t.ssmem
end
