(** Fraser's skip list re-engineered with ASCY1-2 (paper §5,
    "fraser-opt", based on Herlihy-Lev-Shavit's wait-free contains).

    - The {b search} is a pure traversal: marked nodes are skipped in
      place, nothing is written, nothing restarts (ASCY1).
    - The {b parse} of an update unlinks marked nodes it passes, but a
      failed clean-up CAS only re-reads locally and continues; the parse
      never restarts from the head (ASCY2).  Stale predecessors are
      caught by the final modification CAS, which alone retries.

    The paper measures this re-engineering at up to 8% better throughput
    than fraser with an order-of-magnitude fewer extra parses (§5,
    ASCY2 discussion). *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module Lg = Level_gen.Make (Mem)
  module E = Ascy_mem.Event
  module T = Tower.Make (Mem)
  open T

  type 'v t = { head : 'v info; levels : Lg.t; ssmem : S.t }

  let name = "sl-fraser-opt"

  let create ?hint ?read_only_fail:_ () =
    let max_level = Lg.max_for_hint (Option.value hint ~default:1024) in
    {
      head = mk_info min_int None max_level;
      levels = Lg.create max_level;
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let height t = Array.length t.head.nexts

  (* ASCY1 search: no stores, no waiting, no restarts. *)
  let search t k =
    let rec level anchor lvl =
      if lvl < 0 then None
      else begin
        let rec walk anchor (l : 'v link) =
          match l.succ with
          | Nil -> level anchor (lvl - 1)
          | Node n ->
              Mem.touch n.line;
              let nl = Mem.get n.nexts.(lvl) in
              if nl.mark then walk anchor nl (* skip logically deleted *)
              else if n.key < k then walk n nl
              else if lvl = 0 then (if n.key = k then n.value else None)
              else level anchor (lvl - 1)
        in
        walk anchor (Mem.get anchor.nexts.(lvl))
      end
    in
    level t.head (height t - 1)

  (* ASCY2 parse: clean up opportunistically, never restart.
     [quiet] suppresses the parse event for post-update clean-up passes,
     which are not parses of an update. *)
  let parse ?(quiet = false) t k preds plinks succs =
    if not quiet then Mem.emit E.parse;
    let rec level anchor lvl =
      if lvl >= 0 then begin
        let rec walk pred (l : 'v link) =
          match l.succ with
          | Nil ->
              preds.(lvl) <- pred;
              plinks.(lvl) <- l;
              succs.(lvl) <- Nil;
              level pred (lvl - 1)
          | Node n ->
              Mem.touch n.line;
              let nl = Mem.get n.nexts.(lvl) in
              if nl.mark then begin
                if l.mark then walk pred nl (* stale pred: read through *)
                else begin
                  let repl = { mark = false; succ = nl.succ } in
                  if Mem.cas pred.nexts.(lvl) l repl then begin
                    Mem.emit E.cleanup;
                    if lvl = 0 then S.free t.ssmem n;
                    walk pred repl
                  end
                  else begin
                    (* local re-read; no restart *)
                    Mem.emit E.cas_fail;
                    walk pred (Mem.get pred.nexts.(lvl))
                  end
                end
              end
              else if n.key < k then walk n nl
              else begin
                preds.(lvl) <- pred;
                plinks.(lvl) <- l;
                succs.(lvl) <- Node n;
                level pred (lvl - 1)
              end
        in
        walk anchor (Mem.get anchor.nexts.(lvl))
      end
    in
    level t.head (height t - 1)

  let mk_arrays t =
    ( Array.make (height t) t.head,
      Array.make (height t) { mark = false; succ = Nil },
      Array.make (height t) Nil )

  let insert t k v =
    let preds, plinks, succs = mk_arrays t in
    let rec attempt () =
      parse t k preds plinks succs;
      Mem.emit E.parse_end;
      match succs.(0) with
      | Node n when n.key = k -> false (* ASCY3: read-only failure *)
      | _ ->
          let h = Lg.next t.levels in
          let node = mk_info k (Some v) h in
          for lvl = 0 to h - 1 do
            Mem.set node.nexts.(lvl) { mark = false; succ = succs.(lvl) }
          done;
          if
            plinks.(0).mark
            || not (Mem.cas preds.(0).nexts.(0) plinks.(0) { mark = false; succ = Node node })
          then begin
            Mem.emit E.cas_fail;
            attempt ()
          end
          else begin
            let rec link lvl =
              if lvl < h then begin
                let cur = Mem.get node.nexts.(lvl) in
                if cur.mark then ()
                else if (match succs.(lvl) with Node s -> s == node | Nil -> false) then
                  link (lvl + 1)
                else begin
                  if cur.succ != succs.(lvl) then
                    ignore (Mem.cas node.nexts.(lvl) cur { mark = false; succ = succs.(lvl) });
                  let cur = Mem.get node.nexts.(lvl) in
                  if cur.mark then ()
                  else if
                    (not plinks.(lvl).mark)
                    && Mem.cas preds.(lvl).nexts.(lvl) plinks.(lvl)
                         { mark = false; succ = Node node }
                  then link (lvl + 1)
                  else begin
                    Mem.emit E.cas_fail;
                    parse t k preds plinks succs;
                    Mem.emit E.parse_end;
                    link lvl
                  end
                end
              end
            in
            link 1;
            true
          end
    in
    attempt ()

  let remove t k =
    let preds, plinks, succs = mk_arrays t in
    parse t k preds plinks succs;
    Mem.emit E.parse_end;
    match succs.(0) with
    | Node n when n.key = k ->
        let h = Array.length n.nexts in
        for lvl = h - 1 downto 1 do
          let rec mark () =
            let l = Mem.get n.nexts.(lvl) in
            if not l.mark then
              if not (Mem.cas n.nexts.(lvl) l { mark = true; succ = l.succ }) then begin
                Mem.emit E.cas_fail;
                mark ()
              end
          in
          mark ()
        done;
        let rec mark0 () =
          let l = Mem.get n.nexts.(0) in
          if l.mark then false
          else if Mem.cas n.nexts.(0) l { mark = true; succ = l.succ } then true
          else begin
            Mem.emit E.cas_fail;
            mark0 ()
          end
        in
        if mark0 () then begin
          (* one opportunistic clean-up pass; no retries *)
          parse ~quiet:true t k preds plinks succs;
          true
        end
        else false (* a concurrent remove won: read-only failure (ASCY3) *)
    | _ -> false

  let size t = size_of t.head
  let validate t = validate_of t.head
  let op_done t = S.quiesce t.ssmem
end
