(** Fraser's lock-free skip list (Table 1 "fraser"; Fraser's PhD, 2004).

    Updates CAS at each level; deletion marks every level of the victim's
    tower top-down.  The traversal ([find]) physically unlinks marked
    nodes as it goes and — the behaviour ASCY1/2 later remove — {e
    restarts from the head} whenever a clean-up CAS fails or it lands on
    a marked node when switching levels.  Every operation, including
    search, runs through [find]. *)

module Make (Mem : Ascy_mem.Memory.S) = struct
  module S = Ascy_ssmem.Ssmem.Make (Mem)
  module Lg = Level_gen.Make (Mem)
  module E = Ascy_mem.Event
  module T = Tower.Make (Mem)
  open T

  type 'v t = { head : 'v info; levels : Lg.t; ssmem : S.t }

  let name = "sl-fraser"

  let create ?hint ?read_only_fail:_ () =
    let max_level = Lg.max_for_hint (Option.value hint ~default:1024) in
    {
      head = mk_info min_int None max_level;
      levels = Lg.create max_level;
      ssmem = S.create ~gc_threshold:!Ascy_core.Config.ssmem_threshold ();
    }

  let height t = Array.length t.head.nexts

  exception Restart

  (* Fraser's find: fills preds/pred-links/succs for every level, snipping
     marked nodes; restarts from scratch on any inconsistency. *)
  let find t k preds plinks succs =
    let h = height t in
    let rec attempt () =
      match
        let rec level info lvl =
          if lvl < 0 then ()
          else begin
            let cell = info.nexts.(lvl) in
            let l = Mem.get cell in
            if l.mark then raise Restart;
            match l.succ with
            | Node n ->
                Mem.touch n.line;
                let nl = Mem.get n.nexts.(lvl) in
                if nl.mark then begin
                  (* snip the marked node at this level *)
                  if Mem.cas cell l { mark = false; succ = nl.succ } then begin
                    Mem.emit E.cleanup;
                    if lvl = 0 then S.free t.ssmem n;
                    level info lvl
                  end
                  else begin
                    Mem.emit E.cas_fail;
                    raise Restart
                  end
                end
                else if n.key < k then level n lvl
                else begin
                  preds.(lvl) <- info;
                  plinks.(lvl) <- l;
                  succs.(lvl) <- l.succ;
                  level info (lvl - 1)
                end
            | Nil ->
                preds.(lvl) <- info;
                plinks.(lvl) <- l;
                succs.(lvl) <- Nil;
                level info (lvl - 1)
          end
        in
        level t.head (h - 1)
      with
      | () -> ()
      | exception Restart ->
          (* a restarted traversal is a whole extra parse (the ASCY2
             overhead the paper quantifies) *)
          Mem.emit E.restart;
          Mem.emit E.parse;
          attempt ()
    in
    attempt ()

  let mk_arrays t = (Array.make (height t) t.head, Array.make (height t) { mark = false; succ = Nil }, Array.make (height t) Nil)

  let search t k =
    let preds, plinks, succs = mk_arrays t in
    find t k preds plinks succs;
    match succs.(0) with Node n when n.key = k -> n.value | _ -> None

  let insert t k v =
    Mem.emit E.parse;
    let preds, plinks, succs = mk_arrays t in
    let rec attempt () =
      find t k preds plinks succs;
      Mem.emit E.parse_end;
      match succs.(0) with
      | Node n when n.key = k -> false
      | _ ->
          let h = Lg.next t.levels in
          let node = mk_info k (Some v) h in
          for lvl = 0 to h - 1 do
            Mem.set node.nexts.(lvl) { mark = false; succ = succs.(lvl) }
          done;
          if not (Mem.cas preds.(0).nexts.(0) plinks.(0) { mark = false; succ = Node node }) then begin
            Mem.emit E.cas_fail;
            Mem.emit E.parse;
            attempt ()
          end
          else begin
            (* link the upper levels; abandon if the node gets deleted *)
            let rec link lvl =
              if lvl < h then begin
                let cur = Mem.get node.nexts.(lvl) in
                if cur.mark then () (* concurrently deleted *)
                else if
                  (match succs.(lvl) with Node s -> s == node | Nil -> false)
                  (* find can return the node itself once it is linked *)
                then link (lvl + 1)
                else begin
                  if cur.succ != succs.(lvl) then
                    ignore (Mem.cas node.nexts.(lvl) cur { mark = false; succ = succs.(lvl) });
                  let cur = Mem.get node.nexts.(lvl) in
                  if cur.mark then ()
                  else if
                    Mem.cas preds.(lvl).nexts.(lvl) plinks.(lvl) { mark = false; succ = Node node }
                  then link (lvl + 1)
                  else begin
                    Mem.emit E.cas_fail;
                    find t k preds plinks succs;
                    Mem.emit E.parse_end;
                    link lvl
                  end
                end
              end
            in
            link 1;
            true
          end
    in
    attempt ()

  let remove t k =
    Mem.emit E.parse;
    let preds, plinks, succs = mk_arrays t in
    find t k preds plinks succs;
    Mem.emit E.parse_end;
    match succs.(0) with
    | Node n when n.key = k ->
        (* mark the tower top-down; level 0 decides success *)
        let h = Array.length n.nexts in
        for lvl = h - 1 downto 1 do
          let rec mark () =
            let l = Mem.get n.nexts.(lvl) in
            if not l.mark then
              if not (Mem.cas n.nexts.(lvl) l { mark = true; succ = l.succ }) then begin
                Mem.emit E.cas_fail;
                mark ()
              end
          in
          mark ()
        done;
        let rec mark0 () =
          let l = Mem.get n.nexts.(0) in
          if l.mark then false
          else if Mem.cas n.nexts.(0) l { mark = true; succ = l.succ } then true
          else begin
            Mem.emit E.cas_fail;
            mark0 ()
          end
        in
        if mark0 () then begin
          (* physical clean-up via a fresh traversal *)
          find t k preds plinks succs;
          true
        end
        else false
    | _ -> false

  let size t = size_of t.head
  let validate t = validate_of t.head
  let op_done t = S.quiesce t.ssmem
end
