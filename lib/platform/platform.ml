(** Models of the six machines used in the paper's evaluation.

    Each platform is a parameter record consumed by the simulator
    ({!Ascy_mem.Sim}): topology (cores, sockets, SMT threads per core),
    clock frequency, cache geometry, and the latency (in cycles) of each
    class of memory access.  Latency values follow the same authors'
    published cross-platform measurements (David, Guerraoui, Trigonakis,
    "Everything you always wanted to know about synchronization but were
    afraid to ask", SOSP 2013), rounded; they set the *relative* cost of
    local vs. remote cache-line transfers, which is what drives the
    scalability shapes the paper reports. *)

type t = {
  name : string;
  cores : int;  (** physical cores *)
  smt : int;  (** hardware threads per core *)
  sockets : int;  (** dies/sockets reachable only via interconnect *)
  ghz : float;  (** clock frequency, for cycles -> seconds *)
  l1_lines : int;  (** private cache capacity, in 64B lines (L1+L2 combined) *)
  llc_lines : int;  (** per-socket shared LLC capacity in lines *)
  c_l1 : int;  (** private-cache hit *)
  c_llc : int;  (** hit in the local socket's LLC *)
  c_c2c_local : int;  (** dirty-line transfer from a core in the same socket *)
  c_c2c_remote : int;  (** dirty-line transfer across sockets *)
  c_llc_remote : int;  (** clean-line fetch from a remote socket *)
  c_mem : int;  (** DRAM access *)
  c_instr : int;  (** fixed per-access instruction overhead *)
  c_atomic : int;  (** extra cycles charged by an atomic RMW *)
  smt_penalty : float;
      (** multiplier on instruction overhead per extra busy hardware thread
          sharing the core (models issue-bandwidth sharing) *)
}

let hw_threads p = p.cores * p.smt
let cores_per_socket p = p.cores / p.sockets

(** Thread placement used by the paper: pin threads filling one socket's
    physical cores first, then the next socket, and use SMT contexts only
    once all physical cores are busy.  [core_of p thread] returns the
    physical core a given thread index runs on. *)
let core_of p thread =
  assert (thread >= 0 && thread < hw_threads p);
  thread mod p.cores

let socket_of p thread = core_of p thread / cores_per_socket p

(* 48-core AMD Opteron: four 2-die MCMs = 8 NUMA nodes of 6 cores.  Even
   "local" dirty transfers are expensive (non-inclusive LLC; probes go
   through memory controllers), which is why it scales worst in the paper. *)
let opteron =
  {
    name = "Opteron";
    cores = 48;
    smt = 1;
    sockets = 8;
    ghz = 2.1;
    l1_lines = 9216 (* 64K L1 + 512K L2 *);
    llc_lines = 81920 (* 5M per die *);
    c_l1 = 3;
    c_llc = 40;
    c_c2c_local = 110;
    c_c2c_remote = 310;
    c_llc_remote = 220;
    c_mem = 350;
    c_instr = 5;
    c_atomic = 35;
    smt_penalty = 0.0;
  }

(* 20-core (40 hw threads) 2-socket Ivy-Bridge Xeon. *)
let xeon20 =
  {
    name = "Xeon20";
    cores = 20;
    smt = 2;
    sockets = 2;
    ghz = 2.8;
    l1_lines = 4608 (* 32K L1 + 256K L2 *);
    llc_lines = 409600 (* 25M *);
    c_l1 = 2;
    c_llc = 40;
    c_c2c_local = 60;
    c_c2c_remote = 160;
    c_llc_remote = 130;
    c_mem = 230;
    c_instr = 4;
    c_atomic = 22;
    smt_penalty = 0.55;
  }

(* 40-core (80 hw threads) 4-socket Westmere-EX Xeon. *)
let xeon40 =
  {
    name = "Xeon40";
    cores = 40;
    smt = 2;
    sockets = 4;
    ghz = 2.13;
    l1_lines = 4608;
    llc_lines = 491520 (* 30M *);
    c_l1 = 3;
    c_llc = 45;
    c_c2c_local = 75;
    c_c2c_remote = 250;
    c_llc_remote = 190;
    c_mem = 300;
    c_instr = 5;
    c_atomic = 28;
    smt_penalty = 0.55;
  }

(* Tilera TILE-Gx36: 36 simple cores, one chip, mesh-distributed LLC.
   Uniform but slow-ish; low clock. *)
let tilera =
  {
    name = "Tilera";
    cores = 36;
    smt = 1;
    sockets = 1;
    ghz = 1.2;
    l1_lines = 4608;
    llc_lines = 147456 (* 9M distributed *);
    c_l1 = 2;
    c_llc = 45;
    c_c2c_local = 55;
    c_c2c_remote = 55;
    c_llc_remote = 45;
    c_mem = 130;
    c_instr = 7 (* simple in-order cores *);
    c_atomic = 20;
    smt_penalty = 0.0;
  }

(* Oracle SPARC T4-4: 4 sockets x 8 cores x 8 threads = 256 hw threads.
   Heavily multithreaded narrow cores: big SMT penalty, decent caches. *)
let t44 =
  {
    name = "T4-4";
    cores = 32;
    smt = 8;
    sockets = 4;
    ghz = 3.0;
    l1_lines = 4352 (* 16K L1 + 256K L2 *);
    llc_lines = 65536 (* 4M per die *);
    c_l1 = 3;
    c_llc = 25;
    c_c2c_local = 55;
    c_c2c_remote = 145;
    c_llc_remote = 120;
    c_mem = 200;
    c_instr = 6;
    c_atomic = 18;
    smt_penalty = 0.35;
  }

(* 4-core desktop Haswell with TSX, used only for the HTM experiment. *)
let haswell =
  {
    name = "Haswell";
    cores = 4;
    smt = 2;
    sockets = 1;
    ghz = 3.4;
    l1_lines = 4608;
    llc_lines = 131072 (* 8M *);
    c_l1 = 2;
    c_llc = 34;
    c_c2c_local = 50;
    c_c2c_remote = 50;
    c_llc_remote = 34;
    c_mem = 200;
    c_instr = 4;
    c_atomic = 20;
    smt_penalty = 0.55;
  }

(** The five platforms of the main evaluation (Figure 2, 8, 9). *)
let main_five = [ opteron; xeon20; xeon40; tilera; t44 ]

let all = main_five @ [ haswell ]

let by_name name =
  match List.find_opt (fun p -> String.lowercase_ascii p.name = String.lowercase_ascii name) all with
  | Some p -> p
  | None -> invalid_arg ("unknown platform: " ^ name)

(** Name of the coherence-model variant that best matches [p]'s real
    cache hierarchy ("moesi" for the Opteron's non-inclusive HT-probed
    LLC, "mesi" for everything else).  A {e hint} for cross-platform
    shape experiments — resolvable via [Ascy_mem.Sim.model_of_name];
    plain string so this bottom-layer module does not depend on the
    memory layer.  Every default stays "mesi" regardless. *)
let preferred_model p = if p.name = opteron.name then "moesi" else "mesi"

(** Energy model parameters (nanojoules per event; watts static per active
    core).  Used to reproduce the paper's relative-power plots: power grows
    with cache-line transfers, so algorithms with more coherence traffic
    both run slower and burn more energy. *)
type energy = {
  nj_instr : float;
  nj_l1 : float;
  nj_llc : float;
  nj_transfer : float;  (** any core-to-core or cross-socket line transfer *)
  nj_mem : float;
  w_static_core : float;
}

let energy_model =
  { nj_instr = 0.15; nj_l1 = 0.35; nj_llc = 2.2; nj_transfer = 6.5; nj_mem = 14.0; w_static_core = 1.4 }
