module Sim = Ascy_mem.Sim
module Mem = Ascy_mem.Sim.Mem
module P = Ascy_platform.Platform
module Race = Ascy_analysis.Race

let races_of ~nthreads body =
  Sim.with_sim ~seed:7 ~platform:P.xeon20 ~nthreads (fun sim ->
      let setup = body () in
      Sim.warm sim;
      let d = Race.create ~nthreads in
      Sim.set_observer sim (Some (Race.observer d));
      ignore (Sim.run sim (Array.init nthreads setup));
      Race.total d)

let () =
  (* each thread's ONLY store is the racy plain write *)
  let n1 =
    races_of ~nthreads:2 (fun () ->
        let c = Mem.make_fresh 0 in
        fun tid () -> Mem.set c tid)
  in
  Printf.printf "single first-write race detected: %d (expected >0)\n" n1;
  (* same but each thread writes twice *)
  let n2 =
    races_of ~nthreads:2 (fun () ->
        let c = Mem.make_fresh 0 in
        fun tid () -> Mem.set c tid; Mem.set c (tid + 10))
  in
  Printf.printf "double-write race detected: %d (expected >0)\n" n2
