(* ascy_bench: run one CSDS experiment point from the command line.

     ascy_bench --algo ht-clht-lb --threads 20 --platform xeon20 \
                --initial 4096 --updates 20
     ascy_bench --list
     ascy_bench --algo ll-lazy --mode native --duration 1.0

   Simulated runs report the paper's metrics (throughput, latency
   percentiles, power, misses/op, atomics/update); native runs report
   wall-clock throughput on real domains. *)

open Cmdliner

let run list_algos algo mode platform threads initial updates ops latency seed duration model =
  if list_algos then begin
    List.iter
      (fun (x : Ascylib.Registry.entry) ->
        Printf.printf "%-14s %-11s %-4s ASCY:%s  %s\n" x.Ascylib.Registry.name
          (Ascy_core.Ascy.family_to_string x.Ascylib.Registry.family)
          (Ascy_core.Ascy.sync_to_string x.Ascylib.Registry.sync)
          (Ascy_core.Ascy.to_string x.Ascylib.Registry.ascy)
          x.Ascylib.Registry.desc)
      Ascylib.Registry.all;
    `Ok ()
  end
  else
    match Ascylib.Registry.by_name algo with
    | exception Invalid_argument msg -> `Error (false, msg)
    | entry -> (
        let wl = Ascy_harness.Workload.make ~initial ~update_pct:updates () in
        match mode with
        | `Native ->
            let r =
              Ascy_harness.Native_run.run ~seed entry.Ascylib.Registry.maker ~nthreads:threads
                ~workload:wl ~duration ()
            in
            Printf.printf "%s  native  %d domains  %.2fs\n" r.Ascy_harness.Native_run.algorithm
              r.Ascy_harness.Native_run.nthreads r.Ascy_harness.Native_run.seconds;
            Printf.printf "  ops: %d   throughput: %.3f Mops/s   final size: %d\n"
              r.Ascy_harness.Native_run.ops r.Ascy_harness.Native_run.throughput_mops
              r.Ascy_harness.Native_run.final_size;
            `Ok ()
        | `Sim -> (
            match Ascy_platform.Platform.by_name platform with
            | exception Invalid_argument msg -> `Error (false, msg)
            | p -> (
                match
                  match model with
                  | "auto" ->
                      Ascy_mem.Sim.model_of_name (Ascy_platform.Platform.preferred_model p)
                  | m -> Ascy_mem.Sim.model_of_name m
                with
                | exception Invalid_argument msg -> `Error (false, msg)
                | m ->
                let module R = Ascy_harness.Sim_run in
                let r =
                  R.run ~seed ~latency ~model:m entry.Ascylib.Registry.maker ~platform:p
                    ~nthreads:threads ~workload:wl ~ops_per_thread:ops ()
                in
                Printf.printf "%s on simulated %s, %d threads, %d ops%s\n" r.R.algorithm
                  r.R.platform r.R.nthreads r.R.ops
                  (let mn = Ascy_mem.Sim.model_name_of m in
                   if mn = Ascy_mem.Sim.model_name_of Ascy_mem.Sim.default_model then ""
                   else " [model " ^ mn ^ "]");
                Printf.printf "  throughput : %.3f Mops/s (simulated %.2f ms)\n" r.R.throughput_mops
                  (r.R.seconds *. 1e3);
                Printf.printf "  misses/op  : %.2f   atomics/update: %.2f   extra parses: %.2f%%\n"
                  (R.misses_per_op r) (R.atomics_per_update r) (R.extra_parse_pct r);
                Printf.printf "  power      : %.2f W   energy: %.4f J\n"
                  r.R.stats.Ascy_mem.Sim.power_w r.R.stats.Ascy_mem.Sim.energy_j;
                if latency then begin
                  let pr name h =
                    if Ascy_util.Histogram.count h > 0 then
                      Printf.printf "  %-11s: mean %.0f ns   p1/25/50/75/99 = %s\n" name
                        (Ascy_util.Histogram.mean h)
                        (Ascy_harness.Report.percentiles h)
                  in
                  pr "search hit" r.R.latencies.R.search_hit;
                  pr "search miss" r.R.latencies.R.search_miss;
                  pr "insert ok" r.R.latencies.R.insert_ok;
                  pr "insert fail" r.R.latencies.R.insert_fail;
                  pr "remove ok" r.R.latencies.R.remove_ok;
                  pr "remove fail" r.R.latencies.R.remove_fail
                end;
                Printf.printf "  final size : %d   events: " r.R.final_size;
                Array.iteri
                  (fun i v -> if v > 0 then Printf.printf "%s=%d " (Ascy_mem.Event.name i) v)
                  r.R.stats.Ascy_mem.Sim.events;
                print_newline ();
                `Ok ())))

let list_t = Arg.(value & flag & info [ "list" ] ~doc:"List all implementations and exit.")
let algo = Arg.(value & opt string "ht-clht-lb" & info [ "a"; "algo" ] ~doc:"Algorithm name.")

let mode =
  Arg.(
    value
    & opt (enum [ ("sim", `Sim); ("native", `Native) ]) `Sim
    & info [ "m"; "mode" ] ~doc:"sim (modeled multicore) or native (real domains).")

let platform =
  Arg.(value & opt string "xeon20" & info [ "p"; "platform" ] ~doc:"Simulated platform.")

let threads = Arg.(value & opt int 20 & info [ "t"; "threads" ] ~doc:"Thread count.")
let initial = Arg.(value & opt int 1024 & info [ "i"; "initial" ] ~doc:"Initial elements.")
let updates = Arg.(value & opt int 10 & info [ "u"; "updates" ] ~doc:"Update percentage.")
let ops = Arg.(value & opt int 300 & info [ "o"; "ops" ] ~doc:"Operations per thread (sim).")
let latency = Arg.(value & flag & info [ "l"; "latency" ] ~doc:"Record latency percentiles.")
let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Deterministic seed.")
let duration = Arg.(value & opt float 1.0 & info [ "d"; "duration" ] ~doc:"Native run seconds.")

let model =
  Arg.(
    value
    & opt string "mesi"
    & info [ "model" ]
        ~doc:
          "Coherence cost model: mesi (default, inclusive-LLC directory), moesi \
           (Opteron-style non-inclusive), flat (uniform cost; not meaningful for \
           measurement), or auto (the platform's preferred variant).")

let cmd =
  let info_ = Cmd.info "ascy_bench" ~doc:"Run one ASCYLIB-OCaml experiment point" in
  Cmd.v info_
    Term.(
      ret
        (const run $ list_t $ algo $ mode $ platform $ threads $ initial $ updates $ ops $ latency
       $ seed $ duration $ model))

let () = exit (Cmd.eval cmd)
