(* Flat-vs-MESI conformance check + simulator throughput baseline.

   Usage: ascy_perf [-out DIR] [-threshold X] [-soft] [NAME ...]

   For every registry algorithm (or just the NAMEs given), run the same
   bounded DPOR exploration — the 3-thread adversarial script of
   examples/schedule_fuzz — twice: once under the default MESI directory
   model and once under the O(1) flat uniform-cost model.  Controlled
   scheduling makes program behavior latency-independent, so the two
   sweeps must agree exactly: same schedule count, same decision count,
   same completeness, same verdict, per algorithm.  Any disagreement is
   a bug in a coherence model (or in the claim) and fails the run.

   The aggregate wall-clock of each sweep gives the repo's sim-steps/sec
   baseline; both, plus the flat/MESI speedup, are written to
   DIR/PERF_SIM.json.  Exit 1 on any conformance mismatch, or when the
   speedup falls below the threshold (default 2.0) — soften the latter
   to a warning with -soft for noisy CI machines. *)

module Sct = Ascy_harness.Sct_run
module Explorer = Ascy_sct.Explorer
module Registry = Ascylib.Registry
module Sim = Ascy_mem.Sim
module J = Ascy_util.Json

let spec name =
  Sct.mk_spec ~name ~initial:[ 2 ]
    ~script:
      [|
        [| (Sct.Insert, 1); (Sct.Remove, 2); (Sct.Insert, 3) |];
        [| (Sct.Insert, 1); (Sct.Insert, 2); (Sct.Remove, 3) |];
        [| (Sct.Remove, 1); (Sct.Insert, 2) |];
      |]
    ()

type probe = {
  p_schedules : int;
  p_steps : int;
  p_complete : bool;
  p_violation : string option;
}

let sweep model entries =
  let t0 = Unix.gettimeofday () in
  let probes =
    List.map
      (fun (e : Registry.entry) ->
        let finding, report =
          Sct.explore ~mode:Explorer.Dpor ~model (spec e.Registry.name)
        in
        {
          p_schedules = report.Explorer.schedules;
          p_steps = report.Explorer.steps;
          p_complete = report.Explorer.complete;
          p_violation = Option.map (fun (f : Sct.finding) -> f.Sct.violation) finding;
        })
      entries
  in
  (probes, Unix.gettimeofday () -. t0)

let model_json probes seconds =
  let schedules = List.fold_left (fun a p -> a + p.p_schedules) 0 probes in
  let steps = List.fold_left (fun a p -> a + p.p_steps) 0 probes in
  J.Obj
    [
      ("seconds", J.Float seconds);
      ("schedules", J.Int schedules);
      ("steps", J.Int steps);
      ("steps_per_sec", J.Float (if seconds > 0. then float_of_int steps /. seconds else 0.));
    ]

let () =
  let out_dir = ref "." in
  let threshold = ref 2.0 in
  let soft = ref false in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "-out" :: d :: rest ->
        out_dir := d;
        parse rest
    | "-threshold" :: x :: rest ->
        threshold := float_of_string x;
        parse rest
    | "-soft" :: rest ->
        soft := true;
        parse rest
    | ("-h" | "-help" | "--help") :: _ ->
        print_endline "usage: ascy_perf [-out DIR] [-threshold X] [-soft] [NAME ...]";
        exit 0
    | name :: rest ->
        names := name :: !names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let entries =
    match !names with
    | [] -> Registry.all
    | names -> List.map Registry.by_name (List.rev names)
  in
  Printf.printf "model-conformance sweep: %d algorithms, bounded DPOR under mesi then flat\n\n"
    (List.length entries);
  Printf.printf "%-14s %9s %9s %9s %9s  %s\n" "name" "m.scheds" "f.scheds" "m.steps" "f.steps"
    "verdict";
  let mesi, mesi_s = sweep (Sim.model_of_name "mesi") entries in
  let flat, flat_s = sweep (Sim.model_of_name "flat") entries in
  let mismatches = ref 0 in
  let rows =
    List.map2
      (fun (e : Registry.entry) (m, f) ->
        let same =
          m.p_schedules = f.p_schedules && m.p_steps = f.p_steps
          && m.p_complete = f.p_complete && m.p_violation = f.p_violation
        in
        if not same then incr mismatches;
        Printf.printf "%-14s %9d %9d %9d %9d  %s\n%!" e.Registry.name m.p_schedules f.p_schedules
          m.p_steps f.p_steps
          (if same then "ok" else "MISMATCH");
        J.Obj
          [
            ("name", J.String e.Registry.name);
            ("schedules", J.Int m.p_schedules);
            ("steps", J.Int m.p_steps);
            ("complete", J.Bool m.p_complete);
            ( "violation",
              match m.p_violation with Some v -> J.String v | None -> J.Null );
            ("match", J.Bool same);
          ])
      entries
      (List.combine mesi flat)
  in
  let speedup = if flat_s > 0. then mesi_s /. flat_s else 0. in
  Printf.printf "\nmesi: %.2fs   flat: %.2fs   speedup: %.2fx (threshold %.2fx)\n" mesi_s flat_s
    speedup !threshold;
  let json =
    J.Obj
      [
        ("schema_version", J.Int 1);
        ("algorithms", J.Int (List.length entries));
        ( "bounds",
          let b = Explorer.default_bounds in
          J.Obj
            [
              ( "preemptions",
                match b.Explorer.preemptions with Some p -> J.Int p | None -> J.Null );
              ("delays", match b.Explorer.delays with Some d -> J.Int d | None -> J.Null);
              ("max_steps", J.Int b.Explorer.max_steps);
              ( "max_schedules",
                match b.Explorer.max_schedules with Some s -> J.Int s | None -> J.Null );
            ] );
        ( "models",
          J.Obj [ ("mesi", model_json mesi mesi_s); ("flat", model_json flat flat_s) ] );
        ("speedup_flat_over_mesi", J.Float speedup);
        ("threshold", J.Float !threshold);
        ("conformant", J.Bool (!mismatches = 0));
        ("per_algorithm", J.List rows);
      ]
  in
  let path = Filename.concat !out_dir "PERF_SIM.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~indent:1 json);
      output_char oc '\n');
  Printf.printf "[baseline -> %s]\n" path;
  if !mismatches > 0 then begin
    Printf.printf "%d conformance mismatch(es): flat and mesi disagree under controlled scheduling\n"
      !mismatches;
    exit 1
  end;
  if speedup < !threshold then
    if !soft then
      Printf.printf "warning: flat speedup %.2fx below threshold %.2fx (soft mode)\n" speedup
        !threshold
    else begin
      Printf.printf "FAIL: flat speedup %.2fx below threshold %.2fx\n" speedup !threshold;
      exit 1
    end;
  print_endline "flat and mesi agree on every schedule space"
